package harness

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"testing"
	"time"

	"haccrg/internal/journal"
)

// installManifest makes m the process-wide sweep manifest for one test.
func installManifest(t *testing.T, m *Manifest) {
	t.Helper()
	SetManifest(m)
	t.Cleanup(func() { SetManifest(nil) })
}

// resumeTestConfigs is a sweep long enough to interrupt partway: the
// mixed workload of sweepTestConfigs at several scales, all distinct
// (the manifest keys on the whole config).
func resumeTestConfigs() []RunConfig {
	var cfgs []RunConfig
	for scale := 1; scale <= 3; scale++ {
		for _, rc := range sweepTestConfigs() {
			rc.Scale = scale
			cfgs = append(cfgs, rc)
		}
	}
	return cfgs
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.manifest")
	m, s, err := OpenManifest(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.Records != 0 {
		t.Errorf("fresh manifest salvage = %+v", s)
	}
	rc := RunConfig{Bench: "scan", Detector: DetSharedGlobal, GPU: testGPU(), SingleBlock: true}
	res, err := sweepRun(rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Append(applySweepDefaults(rc), res); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, s2, err := OpenManifest(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if s2.Truncated || s2.Records != 1 {
		t.Fatalf("reopen salvage = %+v, want 1 clean record", s2)
	}
	got, ok := m2.Lookup(applySweepDefaults(rc))
	if !ok {
		t.Fatal("completed run not found on reopen")
	}
	if renderResults(t, []*RunResult{got}) != renderResults(t, []*RunResult{res}) {
		t.Error("manifest round trip changed the result")
	}
}

// TestManifestTornTailRecovery: a manifest with a torn final record
// (the crash case) reopens with the intact prefix, drops the tail, and
// accepts new appends that read back cleanly.
func TestManifestTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.manifest")
	m, _, err := OpenManifest(path, false)
	if err != nil {
		t.Fatal(err)
	}
	rcA := RunConfig{Bench: "scan", Detector: DetOff, GPU: testGPU(), SingleBlock: true}
	resA, err := sweepRun(rcA)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Append(applySweepDefaults(rcA), resA); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Tear the tail: half of a would-be next record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2, s, err := OpenManifest(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Truncated || s.Records != 1 {
		t.Fatalf("torn manifest salvage = %+v, want 1 record with truncation", s)
	}
	if _, ok := m2.Lookup(applySweepDefaults(rcA)); !ok {
		t.Fatal("intact entry lost to the torn tail")
	}
	rcB := RunConfig{Bench: "reduce", Detector: DetOff, GPU: testGPU()}
	resB, err := sweepRun(rcB)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Append(applySweepDefaults(rcB), resB); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	m2.Close()

	m3, s3, err := OpenManifest(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if s3.Truncated || m3.Len() != 2 {
		t.Errorf("final manifest: %d entries, salvage %+v; want 2 clean", m3.Len(), s3)
	}
}

// TestSweepResumeDeterminism is the crash-safety invariant: a sweep
// cancelled partway and resumed from its manifest produces results
// byte-identical to an uninterrupted sweep, without re-running the
// completed configurations.
func TestSweepResumeDeterminism(t *testing.T) {
	setParallelism(t, 4)
	cfgs := resumeTestConfigs()

	ref, err := sweepAll(cfgs) // uninterrupted, no manifest
	if err != nil {
		t.Fatal(err)
	}
	want := renderResults(t, ref)

	path := filepath.Join(t.TempDir(), "sweep.manifest")
	m, _, err := OpenManifest(path, false)
	if err != nil {
		t.Fatal(err)
	}
	installManifest(t, m)

	// Cancel the sweep once roughly half the runs have committed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for m.Len() < len(cfgs)/2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	if _, err := sweepAllCtx(ctx, cfgs); err == nil {
		t.Log("sweep finished before the cancellation landed; resume path still exercised")
	}
	m.Close()

	m2, s, err := OpenManifest(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if s.Truncated {
		t.Fatalf("per-entry synced manifest reopened torn: %+v", s)
	}
	completed := m2.Len()
	if completed == 0 {
		t.Fatal("no runs committed before cancellation")
	}
	SetManifest(m2)

	// Expected fresh executions: the attempts the reference run needed
	// for every configuration the manifest does not already hold.
	var expected int64
	for i, rc := range cfgs {
		if _, ok := m2.Lookup(applySweepDefaults(rc)); !ok {
			expected += int64(ref[i].Attempts)
		}
	}
	before := SweepExecutions()
	res, err := sweepAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	executed := SweepExecutions() - before
	if got := renderResults(t, res); got != want {
		t.Errorf("resumed sweep diverged from uninterrupted sweep:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", want, got)
	}
	if executed != expected {
		t.Errorf("resumed sweep executed %d simulations, want %d (%d of %d runs were already completed)",
			executed, expected, completed, len(cfgs))
	}
}

// TestJournalIOErrorNotRetried: a manifest append failure is a journal
// I/O error — retrying the simulation cannot fix the disk, so the
// runner must fail once even for a fault-injected (normally retried)
// configuration.
func TestJournalIOErrorNotRetried(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.manifest")
	m, _, err := OpenManifest(path, false)
	if err != nil {
		t.Fatal(err)
	}
	m.Close() // every append now fails with an IOError
	installManifest(t, m)

	rc := RunConfig{
		Bench: "scan", Detector: DetSharedGlobal, GPU: testGPU(), SingleBlock: true,
		FaultPlan: "flip:rate=2e-4", FaultSeed: 7,
	}
	before := SweepExecutions()
	_, err = sweepRun(rc)
	if err == nil {
		t.Fatal("sweep run succeeded with a closed manifest")
	}
	if !journal.IsIO(err) {
		t.Fatalf("manifest failure surfaced as %v, want a journal I/O error", err)
	}
	if got := SweepExecutions() - before; got != 1 {
		t.Errorf("journal I/O failure was retried: %d executions, want 1", got)
	}
}

// TestSweepSignalInterrupt is the kill-mid-sweep integration test: a
// helper process runs a manifest-backed sweep under a real SIGINT
// handler; the parent interrupts it partway and checks that it exits
// with the resumable-state code and leaves a clean, non-empty
// manifest behind.
func TestSweepSignalInterrupt(t *testing.T) {
	if os.Getenv("HACCRG_SWEEP_HELPER") == "1" {
		runSweepHelper()
		return
	}
	if testing.Short() {
		t.Skip("spawns a helper process")
	}
	path := filepath.Join(t.TempDir(), "sweep.manifest")
	cmd := exec.Command(os.Args[0], "-test.run=TestSweepSignalInterrupt$")
	cmd.Env = append(os.Environ(), "HACCRG_SWEEP_HELPER=1", "HACCRG_SWEEP_MANIFEST="+path)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Interrupt as soon as at least one run has committed.
	deadline := time.Now().Add(60 * time.Second)
	signalled := false
	for time.Now().Before(deadline) {
		if st, err := os.Stat(path); err == nil && st.Size() > 64 {
			if err := cmd.Process.Signal(os.Interrupt); err == nil {
				signalled = true
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	err := cmd.Wait()
	if !signalled {
		t.Fatalf("helper never produced a manifest entry; output:\n%s", out.String())
	}
	switch ee, ok := err.(*exec.ExitError); {
	case err == nil:
		t.Log("helper finished before the signal landed; manifest checks still apply")
	case ok && ee.ExitCode() == 5:
		// interrupted with resumable state: the expected outcome
	default:
		t.Fatalf("helper exited with %v, want code 5; output:\n%s", err, out.String())
	}

	m, s, err := OpenManifest(path, true)
	if err != nil {
		t.Fatalf("interrupted manifest unreadable: %v", err)
	}
	defer m.Close()
	if s.Truncated {
		t.Errorf("interrupted manifest has a torn tail: %+v (appends are synced per entry)", s)
	}
	if m.Len() == 0 {
		t.Error("interrupted manifest holds no completed runs")
	}
}

// runSweepHelper is the child side of TestSweepSignalInterrupt: a
// miniature haccrg-bench — signal-aware context, manifest-backed
// sweep, exit code 5 on interruption.
func runSweepHelper() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	m, _, err := OpenManifest(os.Getenv("HACCRG_SWEEP_MANIFEST"), true)
	if err != nil {
		os.Exit(1)
	}
	SetManifest(m)
	SetParallelism(2)
	_, err = sweepAllCtx(ctx, resumeTestConfigs())
	m.Close()
	switch {
	case err != nil && ctx.Err() != nil:
		os.Exit(5) // interrupted: resumable state on disk
	case err != nil:
		os.Exit(1)
	}
	os.Exit(0)
}
