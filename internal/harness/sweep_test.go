package harness

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// setParallelism installs a sweep worker count for one test and
// restores the default afterwards.
func setParallelism(t *testing.T, n int) {
	t.Helper()
	SetParallelism(n)
	t.Cleanup(func() { SetParallelism(0) })
}

// renderResults serializes everything an experiment table could be
// built from — stats, races, health — so two sweeps can be compared
// byte for byte.
func renderResults(t *testing.T, rs []*RunResult) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteHealthCSV(&buf, rs); err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		fmt.Fprintf(&buf, "%s/%s cycles=%d dram=%.6f attempts=%d\n",
			r.Config.Bench, r.Config.Detector, r.Stats.Cycles, r.Stats.DRAMUtil, r.Attempts)
		for _, race := range r.Races {
			fmt.Fprintf(&buf, "  %+v\n", *race)
		}
	}
	return buf.String()
}

// sweepTestConfigs is a mixed workload: several benchmarks and
// detector kinds, including fault-injected runs whose results depend
// on the (plan, seed) PRNG stream.
func sweepTestConfigs() []RunConfig {
	var cfgs []RunConfig
	for _, bench := range []string{"scan", "reduce", "hash"} {
		for _, kind := range []DetectorKind{DetOff, DetSharedGlobal} {
			cfgs = append(cfgs, RunConfig{
				Bench: bench, Detector: kind, GPU: testGPU(), SingleBlock: bench == "scan",
			})
		}
		cfgs = append(cfgs, RunConfig{
			Bench: bench, Detector: DetSharedGlobal, GPU: testGPU(),
			SingleBlock: bench == "scan",
			FaultPlan:   "flip:rate=2e-4;queue:cap=8,drain=1", FaultSeed: 42,
		})
	}
	return cfgs
}

// TestSweepParallelMatchesSerial is the engine's determinism
// invariant: a parallel sweep must be byte-identical to Parallelism=1
// on the same configurations, fault-injected runs included.
func TestSweepParallelMatchesSerial(t *testing.T) {
	cfgs := sweepTestConfigs()

	setParallelism(t, 1)
	serial, err := sweepAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	want := renderResults(t, serial)

	for _, workers := range []int{4, 2 * runtime.GOMAXPROCS(0)} {
		SetParallelism(workers)
		par, err := sweepAll(cfgs)
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		if got := renderResults(t, par); got != want {
			t.Errorf("parallelism %d diverged from serial sweep:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, want, got)
		}
	}
}

// TestSweepResultOrder checks input-order assembly: results[i] must
// belong to cfgs[i] regardless of completion order.
func TestSweepResultOrder(t *testing.T) {
	setParallelism(t, 8)
	cfgs := sweepTestConfigs()
	results, err := sweepAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cfgs) {
		t.Fatalf("got %d results for %d configs", len(results), len(cfgs))
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("result %d is nil", i)
		}
		if r.Config.Bench != cfgs[i].Bench || r.Config.Detector != cfgs[i].Detector ||
			r.Config.FaultPlan != cfgs[i].FaultPlan {
			t.Errorf("result %d is for %s/%s/%q, want %s/%s/%q", i,
				r.Config.Bench, r.Config.Detector, r.Config.FaultPlan,
				cfgs[i].Bench, cfgs[i].Detector, cfgs[i].FaultPlan)
		}
	}
}

// TestFaultStudyParallelDeterminism lifts the invariant to a full
// experiment driver: the rendered fault-study table under a fixed seed
// must not depend on the worker count.
func TestFaultStudyParallelDeterminism(t *testing.T) {
	setParallelism(t, 1)
	_, serialTxt, err := FaultStudy(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(6)
	_, parTxt, err := FaultStudy(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if serialTxt != parTxt {
		t.Errorf("fault-study table depends on parallelism:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialTxt, parTxt)
	}
}

// TestSweepErrorSerial: with one worker the engine reports the first
// failure in input order and stops, like the old serial loops.
func TestSweepErrorSerial(t *testing.T) {
	setParallelism(t, 1)
	cfgs := []RunConfig{
		{Bench: "scan", Detector: DetOff, GPU: testGPU(), SingleBlock: true},
		{Bench: "no-such-bench-a"},
		{Bench: "no-such-bench-b"},
	}
	_, err := sweepAll(cfgs)
	if err == nil {
		t.Fatal("sweep with unknown benchmark succeeded")
	}
	if !strings.Contains(err.Error(), "no-such-bench-a") {
		t.Errorf("serial sweep reported %v, want the first failing config", err)
	}
}

// TestSweepErrorParallel: a failure anywhere surfaces as a genuine
// error (never a cancellation casualty) and fails the whole sweep.
func TestSweepErrorParallel(t *testing.T) {
	setParallelism(t, 4)
	cfgs := []RunConfig{
		{Bench: "scan", Detector: DetOff, GPU: testGPU(), SingleBlock: true},
		{Bench: "reduce", Detector: DetOff, GPU: testGPU()},
		{Bench: "no-such-bench"},
		{Bench: "hash", Detector: DetOff, GPU: testGPU()},
	}
	res, err := sweepAll(cfgs)
	if err == nil {
		t.Fatal("sweep with unknown benchmark succeeded")
	}
	if !strings.Contains(err.Error(), "unknown benchmark") {
		t.Errorf("sweep reported %v, want the unknown-benchmark error", err)
	}
	if res != nil {
		t.Errorf("failed sweep returned results: %v", res)
	}
}

// TestSweepCancelled: an already-cancelled context fails fast without
// running anything.
func TestSweepCancelled(t *testing.T) {
	setParallelism(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sweepAllCtx(ctx, sweepTestConfigs()); err == nil {
		t.Fatal("cancelled sweep succeeded")
	}
}

// TestParallelismResolution pins the setter/getter contract.
func TestParallelismResolution(t *testing.T) {
	setParallelism(t, 0)
	if got := Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default parallelism = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	SetParallelism(5)
	if got := Parallelism(); got != 5 {
		t.Errorf("Parallelism() = %d after SetParallelism(5)", got)
	}
	SetParallelism(-3)
	if got := Parallelism(); got < 1 {
		t.Errorf("Parallelism() = %d, want >= 1", got)
	}
}
