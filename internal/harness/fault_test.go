package harness

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"haccrg/internal/core"
	"haccrg/internal/gpu"
)

// raceFingerprint summarizes a run's findings by stable identity
// (space/kind/PC/granule/accessors), deliberately ignoring Cycle and
// Count: a fault that merely shifts timing is not a divergence, one
// that adds or removes a finding is.
func raceFingerprint(races []*core.Race) string {
	keys := make([]string, 0, len(races))
	for _, r := range races {
		keys = append(keys, fmt.Sprintf("%s/%s/%s/pc%d/g%d/b%dt%d-b%dt%d",
			r.Space, r.Kind, r.Kernel, r.PC, r.Granule,
			r.FirstBlock, r.FirstTid, r.SecondBlock, r.SecondTid))
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// TestFaultPlansNeverDivergeSilently is the central robustness
// property: for every catalogued fault plan, either the findings match
// the fault-free baseline, or the run is flagged Degraded. A fault may
// change results, but never silently.
func TestFaultPlansNeverDivergeSilently(t *testing.T) {
	for _, bench := range faultStudyBenches {
		base, err := Run(RunConfig{Bench: bench, Detector: DetSharedGlobal, GPU: testGPU()})
		if err != nil {
			t.Fatalf("%s baseline: %v", bench, err)
		}
		if base.Health == nil {
			t.Fatalf("%s baseline: detector reported no health", bench)
		}
		if base.Health.Degraded {
			t.Fatalf("%s baseline degraded with no fault plan: %s", bench, base.Health)
		}
		baseFP := raceFingerprint(base.Races)
		for _, fp := range FaultStudyPlans {
			for seed := int64(1); seed <= 3; seed++ {
				res, err := Run(RunConfig{
					Bench: bench, Detector: DetSharedGlobal, GPU: testGPU(),
					FaultPlan: fp.Plan, FaultSeed: seed,
				})
				if err != nil {
					t.Fatalf("%s %s seed %d: %v", bench, fp.Label, seed, err)
				}
				if res.Health == nil {
					t.Fatalf("%s %s: faulted run has no health report", bench, fp.Label)
				}
				if got := raceFingerprint(res.Races); got != baseFP && !res.Health.Degraded {
					t.Errorf("%s %s seed %d: findings diverged from baseline but Degraded=false\nhealth: %s\nbase:\n%s\ngot:\n%s",
						bench, fp.Label, seed, res.Health, baseFP, got)
				}
			}
		}
	}
}

// TestFaultDeterminism: same plan + same seed must reproduce the run
// byte for byte — health counters and the race report alike.
func TestFaultDeterminism(t *testing.T) {
	rc := RunConfig{
		Bench: "hash", Detector: DetSharedGlobal, GPU: testGPU(),
		FaultPlan: "queue:cap=8,drain=1;flip:rate=2e-4;spike:extra=300,period=16",
		FaultSeed: 42,
	}
	a, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if ha, hb := fmt.Sprintf("%+v", *a.Health), fmt.Sprintf("%+v", *b.Health); ha != hb {
		t.Errorf("health not reproducible:\n%s\n%s", ha, hb)
	}
	fpa, fpb := raceFingerprint(a.Races), raceFingerprint(b.Races)
	if fpa != fpb {
		t.Errorf("races not reproducible:\n%s\nvs\n%s", fpa, fpb)
	}
	if a.Stats.Cycles != b.Stats.Cycles {
		t.Errorf("cycles not reproducible: %d vs %d", a.Stats.Cycles, b.Stats.Cycles)
	}
	// A different seed with an aggressive plan should perturb at least
	// the health counters (the PRNG stream differs).
	rc.FaultSeed = 43
	c, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", *c.Health) == fmt.Sprintf("%+v", *a.Health) &&
		c.Stats.Cycles == a.Stats.Cycles {
		t.Log("seed 43 reproduced seed 42 exactly (possible but suspicious)")
	}
}

// TestEmptyPlanIsFaultFree: a run with no plan must be identical to
// the seed behaviour — same cycles, same races, health "ok" — even
// when a seed or degradation policy is set.
func TestEmptyPlanIsFaultFree(t *testing.T) {
	plain, err := Run(RunConfig{Bench: "reduce", Detector: DetSharedGlobal, GPU: testGPU()})
	if err != nil {
		t.Fatal(err)
	}
	cfgd, err := Run(RunConfig{
		Bench: "reduce", Detector: DetSharedGlobal, GPU: testGPU(),
		FaultSeed: 99, Degradation: "reinit",
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Cycles != cfgd.Stats.Cycles {
		t.Errorf("cycles differ without a fault plan: %d vs %d", plain.Stats.Cycles, cfgd.Stats.Cycles)
	}
	if a, b := raceFingerprint(plain.Races), raceFingerprint(cfgd.Races); a != b {
		t.Errorf("races differ without a fault plan:\n%s\nvs\n%s", a, b)
	}
	if cfgd.Health.Degraded {
		t.Errorf("degraded without a fault plan: %s", cfgd.Health)
	}
}

// TestReinitPolicy runs the stuck-cell plan under both degradation
// policies; both must flag Degraded via their respective counters.
func TestReinitPolicy(t *testing.T) {
	for _, pol := range []string{"quarantine", "reinit"} {
		res, err := Run(RunConfig{
			Bench: "scan", Detector: DetSharedGlobal, GPU: testGPU(), SingleBlock: true,
			FaultPlan: "stuck:perki=32,ecc", FaultSeed: 7, Degradation: pol,
		})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		h := res.Health
		if !h.Degraded {
			t.Errorf("%s: stuck cells at 32/Ki not degraded: %s", pol, h)
			continue
		}
		switch pol {
		case "quarantine":
			if h.QuarantinedGranules == 0 {
				t.Errorf("quarantine policy quarantined nothing: %s", h)
			}
		case "reinit":
			if h.ReinitGranules == 0 {
				t.Errorf("reinit policy reinitialized nothing: %s", h)
			}
		}
	}
	if _, err := Run(RunConfig{
		Bench: "scan", Detector: DetSharedGlobal, GPU: testGPU(),
		Degradation: "explode",
	}); err == nil {
		t.Error("bogus degradation policy accepted")
	}
}

// TestMaxCyclesGuardRail: an exhausted cycle budget surfaces as a
// structured HangError with the partial result still attached.
func TestMaxCyclesGuardRail(t *testing.T) {
	res, err := Run(RunConfig{
		Bench: "hash", Detector: DetSharedGlobal, GPU: testGPU(), MaxCycles: 50,
	})
	if err == nil {
		t.Fatal("50-cycle budget did not abort the run")
	}
	var hang *gpu.HangError
	if !errors.As(err, &hang) {
		t.Fatalf("error %T is not *gpu.HangError: %v", err, err)
	}
	if hang.Reason != gpu.HangCycleBudget {
		t.Errorf("reason = %q, want %q", hang.Reason, gpu.HangCycleBudget)
	}
	if res == nil || res.Stats == nil {
		t.Fatal("no partial result alongside the guard-rail error")
	}
	if res.Stats.Cycles <= 0 {
		t.Errorf("partial stats have no cycles: %+v", res.Stats)
	}
	// A generous budget must not trip.
	if _, err := Run(RunConfig{
		Bench: "hash", Detector: DetSharedGlobal, GPU: testGPU(), MaxCycles: 1 << 40,
	}); err != nil {
		t.Errorf("generous budget aborted: %v", err)
	}
}

func TestFaultStudyRenders(t *testing.T) {
	rows, txt, err := FaultStudy(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(faultStudyBenches)*len(FaultStudyPlans) {
		t.Errorf("rows = %d, want %d", len(rows), len(faultStudyBenches)*len(FaultStudyPlans))
	}
	for _, want := range []string{"bench", "queue-overflow", "bloom-saturation", "DEGRADED"} {
		if !strings.Contains(txt, want) {
			t.Errorf("fault study output missing %q:\n%s", want, txt)
		}
	}
	var buf bytes.Buffer
	if err := WriteFaultStudyCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "benchmark,") || !strings.Contains(buf.String(), "degraded") {
		t.Errorf("fault study CSV header malformed:\n%s", buf.String())
	}
}

func TestHealthCSV(t *testing.T) {
	res, err := Run(RunConfig{
		Bench: "scan", Detector: DetSharedGlobal, GPU: testGPU(), SingleBlock: true,
		FaultPlan: "flip:rate=2e-4", FaultSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHealthCSV(&buf, []*RunResult{res}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("health CSV has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Errorf("header has %d columns, row has %d", len(header), len(row))
	}
	for _, col := range []string{"fault_plan", "injected_flips", "degraded", "bloom_fill_pct"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("health CSV header missing %q: %s", col, lines[0])
		}
	}
}
