package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"haccrg/internal/gpu"
)

// FaultStudyPlans are the canned fault plans the robustness study
// sweeps: one per fault class the injector models, plus an ECC
// variant showing the scrub converting silent corruption into
// counted degradation.
var FaultStudyPlans = []struct {
	Label string
	Plan  string
}{
	{"queue-overflow", "queue:cap=8,drain=1"},
	{"bit-flips", "flip:rate=2e-4"},
	{"bit-flips+ecc", "flip:rate=2e-4,ecc"},
	{"stuck-cells", "stuck:perki=8"},
	{"stuck-cells+ecc", "stuck:perki=8,ecc"},
	{"bloom-saturation", "bloom:fill=0.9"},
	{"fetch-spikes", "spike:extra=500,period=32"},
}

// faultStudyBenches are the workloads the study runs: SCAN (a real
// cross-block race to preserve or lose), REDUCE (barrier-heavy shared
// traffic) and HASH (atomics exercising the lockset/Bloom path).
var faultStudyBenches = []string{"scan", "reduce", "hash"}

// FaultStudyRow is one (benchmark, plan) outcome.
type FaultStudyRow struct {
	Bench     string
	Label     string
	Plan      string
	BaseRaces int // distinct races with no faults
	Races     int // distinct races under the plan
	Result    *RunResult
}

// FaultStudy measures graceful degradation: every benchmark runs
// fault-free for a baseline, then once per fault plan at the given
// seed. The invariant on display — and the one the property test
// enforces — is that a run whose findings diverge from baseline always
// reports Degraded health, never a silent divergence.
func FaultStudy(scale int, seed int64) ([]FaultStudyRow, string, error) {
	stride := 1 + len(FaultStudyPlans) // baseline + one run per plan
	cfgs := make([]RunConfig, 0, len(faultStudyBenches)*stride)
	for _, bench := range faultStudyBenches {
		cfgs = append(cfgs, RunConfig{Bench: bench, Detector: DetSharedGlobal, Scale: scale})
		for _, fp := range FaultStudyPlans {
			cfgs = append(cfgs, RunConfig{
				Bench: bench, Detector: DetSharedGlobal, Scale: scale,
				FaultPlan: fp.Plan, FaultSeed: seed,
			})
		}
	}
	results, err := sweepAll(cfgs)
	if err != nil {
		return nil, "", err
	}
	var rows []FaultStudyRow
	var txt [][]string
	for i, bench := range faultStudyBenches {
		base := results[i*stride]
		for j, fp := range FaultStudyPlans {
			r := results[i*stride+1+j]
			row := FaultStudyRow{
				Bench: bench, Label: fp.Label, Plan: fp.Plan,
				BaseRaces: len(base.Races), Races: len(r.Races), Result: r,
			}
			rows = append(rows, row)
			degraded := "ok"
			if r.Health != nil && r.Health.Degraded {
				degraded = "DEGRADED"
			}
			txt = append(txt, []string{
				bench, fp.Label,
				fmt.Sprintf("%d -> %d", row.BaseRaces, row.Races),
				degraded,
				fmt.Sprintf("%.2f%%", r.Health.EstFalseNegPct()),
				fmt.Sprintf("%.1f%%", r.Health.BloomFillPct),
			})
		}
	}
	return rows, table([]string{"benchmark", "fault plan", "races", "health", "est false-neg", "bloom fill"}, txt), nil
}

// WriteHealthCSV exports per-run detector-health columns, one row per
// RunResult (the CSV side of the DetectorHealth report).
func WriteHealthCSV(w io.Writer, rows []*RunResult) error {
	cw := csv.NewWriter(w)
	head := []string{
		"benchmark", "detector", "fault_plan", "fault_seed", "degradation",
		"cycles", "blocks_retired", "races",
		"dropped_checks", "injected_flips", "corrected_flips", "stuck_reads",
		"quarantined_granules", "quarantine_skips", "reinit_granules",
		"saturated_sigs", "latency_spikes", "total_checks",
		"bloom_fill_pct", "est_false_neg_pct", "degraded",
	}
	if err := cw.Write(head); err != nil {
		return err
	}
	for _, r := range rows {
		if r == nil {
			continue
		}
		h := r.Health
		if h == nil {
			h = &gpu.DetectorHealth{}
		}
		deg := r.Config.Degradation
		if deg == "" {
			deg = "quarantine"
		}
		rec := []string{
			r.Config.Bench, string(r.Config.Detector),
			r.Config.FaultPlan, strconv.FormatInt(r.Config.FaultSeed, 10), deg,
			strconv.FormatInt(r.Stats.Cycles, 10),
			strconv.FormatInt(r.Stats.BlocksRetired, 10),
			strconv.Itoa(len(r.Races)),
			strconv.FormatInt(h.DroppedChecks, 10),
			strconv.FormatInt(h.InjectedFlips, 10),
			strconv.FormatInt(h.CorrectedFlips, 10),
			strconv.FormatInt(h.StuckReads, 10),
			strconv.FormatInt(h.QuarantinedGranules, 10),
			strconv.FormatInt(h.QuarantineSkips, 10),
			strconv.FormatInt(h.ReinitGranules, 10),
			strconv.FormatInt(h.SaturatedSigs, 10),
			strconv.FormatInt(h.LatencySpikes, 10),
			strconv.FormatInt(h.TotalChecks, 10),
			strconv.FormatFloat(h.BloomFillPct, 'f', 3, 64),
			strconv.FormatFloat(h.EstFalseNegPct(), 'f', 3, 64),
			strconv.FormatBool(h.Degraded),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFaultStudyCSV exports the fault-study rows with their health
// columns.
func WriteFaultStudyCSV(w io.Writer, rows []FaultStudyRow) error {
	results := make([]*RunResult, len(rows))
	for i := range rows {
		results[i] = rows[i].Result
	}
	return WriteHealthCSV(w, results)
}
