package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// The sweep engine: every experiment driver enumerates its RunConfigs
// up front and hands them to sweepAll, which fans them across a
// bounded worker pool. Each run owns its Device and Detector, so runs
// share no mutable state; results are assembled in input order, which
// keeps every table and figure byte-identical to a serial sweep — the
// determinism invariant the harness tests enforce.

var (
	parallelismMu sync.RWMutex
	parallelismN  int // 0 = resolve to GOMAXPROCS at sweep time
)

var (
	sweepStateMu  sync.RWMutex
	sweepManifest *Manifest
	sweepCtx      context.Context
)

// SetManifest installs the process-wide sweep manifest: completed runs
// are appended to it, and configurations it already holds are served
// from it instead of re-simulated — the crash-safe resume path. nil
// disables manifest use.
func SetManifest(m *Manifest) {
	sweepStateMu.Lock()
	sweepManifest = m
	sweepStateMu.Unlock()
}

// ActiveManifest returns the installed sweep manifest (nil if none).
func ActiveManifest() *Manifest {
	sweepStateMu.RLock()
	defer sweepStateMu.RUnlock()
	return sweepManifest
}

// SetSweepContext installs the base context every sweep runs under —
// how the CLIs thread SIGINT/SIGTERM cancellation through the prebuilt
// experiment drivers, which take no context of their own. nil restores
// context.Background().
func SetSweepContext(ctx context.Context) {
	sweepStateMu.Lock()
	sweepCtx = ctx
	sweepStateMu.Unlock()
}

func baseSweepContext() context.Context {
	sweepStateMu.RLock()
	defer sweepStateMu.RUnlock()
	if sweepCtx != nil {
		return sweepCtx
	}
	return context.Background()
}

// sweepExecutions counts actual simulations (manifest hits excluded);
// the resume tests use it to prove completed runs are not re-run.
var sweepExecutions atomic.Int64

// SweepExecutions returns how many sweep runs were actually simulated
// (as opposed to served from the manifest) since process start.
func SweepExecutions() int64 { return sweepExecutions.Load() }

// SetParallelism sets the process-wide sweep worker count. n <= 0
// restores the default (GOMAXPROCS); n == 1 forces serial sweeps.
func SetParallelism(n int) {
	parallelismMu.Lock()
	if n < 0 {
		n = 0
	}
	parallelismN = n
	parallelismMu.Unlock()
}

// Parallelism returns the resolved sweep worker count (always >= 1).
func Parallelism() int {
	parallelismMu.RLock()
	n := parallelismN
	parallelismMu.RUnlock()
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// sweepAll runs every configuration through sweepRun across the worker
// pool and returns the results in input order. The first failure
// cancels the remaining runs; among the failures of a cancelled sweep
// the lowest-index real error (not a cancellation casualty) is
// returned, so the reported error does not depend on goroutine timing.
//
// Caveat: when several configurations would fail even serially, the
// serial engine reports the first and never starts the rest, while the
// pool may have several in flight; the returned error is then the
// lowest-index one among those that actually ran. Success paths are
// byte-identical to serial by construction.
func sweepAll(cfgs []RunConfig) ([]*RunResult, error) {
	return sweepAllCtx(baseSweepContext(), cfgs)
}

func sweepAllCtx(ctx context.Context, cfgs []RunConfig) ([]*RunResult, error) {
	return Sweep(ctx, cfgs, ActiveManifest())
}

// Sweep runs every configuration through the bounded worker pool
// against an explicit manifest (nil = no manifest) and returns results
// in input order — the entry point for callers like the haccrg-server
// job workers that execute several manifest-backed sweeps concurrently
// in one process and cannot share the global ActiveManifest. Completed
// configurations the manifest already holds are served from it instead
// of re-simulated; fresh completions are appended and synced before
// being returned, so a kill at any point leaves resumable state.
func Sweep(ctx context.Context, cfgs []RunConfig, m *Manifest) ([]*RunResult, error) {
	n := len(cfgs)
	results := make([]*RunResult, n)
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range cfgs {
			r, err := sweepRunManifest(ctx, cfgs[i], m)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				r, err := sweepRunManifest(ctx, cfgs[i], m)
				if err != nil {
					errs[i] = err
					cancel() // first failure stops the sweep
					continue
				}
				results[i] = r
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	// Prefer the lowest-index genuine failure; cancellation errors are
	// secondary casualties of it.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// The caller's context was cancelled before any run could fail on
	// its own: surface that instead of a result slice with holes.
	if err := parent.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
