package harness

import (
	"encoding/json"
	"testing"

	"haccrg/internal/kernels"
)

// filterFingerprint renders a run's findings and timing for byte-exact
// comparison between filter-on and filter-off runs. Unlike the fault
// suite's raceFingerprint, cycles and shadow traffic are included: the
// filter must not perturb timing at all.
func filterFingerprint(t *testing.T, r *RunResult) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Races       interface{}
		Cycles      int64
		SharedSites int
		GlobalSites int
		ShadowR     int64
		ShadowW     int64
	}{r.Races, r.Stats.Cycles, r.SharedSites, r.GlobalSites,
		r.DetectorStats.ShadowReads, r.DetectorStats.ShadowWrites})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestStaticFilterDifferential is the filter's correctness oracle:
// for every benchmark, on both the serial and the sharded engine, and
// both fault-free and under a fault plan, findings and cycle counts
// with the static filter on must be byte-identical to filter off.
func TestStaticFilterDifferential(t *testing.T) {
	plans := []string{"", "queue:cap=16,drain=1"}
	for _, bm := range kernels.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			for _, parallel := range []bool{false, true} {
				for _, fp := range plans {
					base := RunConfig{
						Bench: bm.Name, Detector: DetSharedGlobal,
						GPU: testGPU(), DetectParallel: parallel,
						FaultPlan: fp, FaultSeed: 7,
						MaxCycles: 40_000_000,
					}
					off, err := Run(base)
					if err != nil {
						t.Fatalf("parallel=%v plan=%q off: %v", parallel, fp, err)
					}
					on := base
					on.StaticFilter = true
					res, err := Run(on)
					if err != nil {
						t.Fatalf("parallel=%v plan=%q on: %v", parallel, fp, err)
					}
					if got, want := filterFingerprint(t, res), filterFingerprint(t, off); got != want {
						t.Errorf("parallel=%v plan=%q: findings diverged\n on: %s\noff: %s",
							parallel, fp, got, want)
					}
					if fp != "" && res.DetectorStats.FilteredChecks != 0 {
						t.Errorf("parallel=%v plan=%q: filter engaged under a fault plan (%d skips)",
							parallel, fp, res.DetectorStats.FilteredChecks)
					}
				}
			}
		})
	}
}

// TestStaticFilterSavesWork pins the acceptance criterion: at least
// two benchmarks must show a non-zero FilteredChecks count — real
// shadow-check work the prover removed.
func TestStaticFilterSavesWork(t *testing.T) {
	saved := 0
	for _, bm := range kernels.All() {
		res, err := Run(RunConfig{
			Bench: bm.Name, Detector: DetSharedGlobal,
			GPU: testGPU(), StaticFilter: true, MaxCycles: 40_000_000,
		})
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		if res.DetectorStats.FilteredChecks > 0 {
			saved++
			t.Logf("%-8s filtered %d checks (%d shared / %d global remained)",
				bm.Name, res.DetectorStats.FilteredChecks,
				res.DetectorStats.SharedChecks, res.DetectorStats.GlobalChecks)
		}
	}
	if saved < 2 {
		t.Fatalf("filter saved work on %d benchmarks, want >= 2", saved)
	}
}

// TestStaticFilterRejectsSoftwareKinds: the filter contract is defined
// against the hardware RDU engines only.
func TestStaticFilterRejectsSoftwareKinds(t *testing.T) {
	for _, k := range []DetectorKind{DetOff, DetSoftware, DetGRace} {
		_, err := Run(RunConfig{
			Bench: "scan", Detector: k, GPU: testGPU(),
			SingleBlock: true, StaticFilter: true,
		})
		if err == nil {
			t.Errorf("detector %s accepted the static filter", k)
		}
	}
}
