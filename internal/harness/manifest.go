package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"haccrg/internal/journal"
	"haccrg/internal/vfs"
)

// Manifest is the sweep engine's durable completion log: every
// finished RunConfig's full result, appended as one CRC-framed JSON
// record in the journal format. A sweep killed mid-flight leaves a
// manifest whose intact prefix is exactly the completed runs; opened
// with resume, those runs are served from the manifest instead of
// re-simulated, and the torn tail (if any) is truncated away so new
// appends stay well-framed.
type Manifest struct {
	mu      sync.Mutex
	f       vfs.File
	w       *journal.Writer
	entries map[string]*RunResult
	path    string
}

// manifestEntry is one journaled completion.
type manifestEntry struct {
	Config RunConfig  `json:"config"`
	Result *RunResult `json:"result"`
}

// configKey canonicalizes a RunConfig for manifest lookup. JSON of the
// struct is deterministic (fixed field order, sorted maps), so equal
// configs always collide and different configs never do.
func configKey(rc RunConfig) (string, error) {
	b, err := json.Marshal(rc)
	if err != nil {
		return "", fmt.Errorf("harness: manifest key: %w", err)
	}
	return string(b), nil
}

// OpenManifest opens (or creates) a sweep manifest at path on the real
// filesystem. See OpenManifestFS.
func OpenManifest(path string, resume bool) (*Manifest, journal.Salvage, error) {
	return OpenManifestFS(nil, path, resume)
}

// OpenManifestFS opens (or creates) a sweep manifest at path on fsys
// (vfs.OS when nil — the seam exists so chaos campaigns can run the
// manifest over a fault-injecting filesystem). With resume false any
// existing file is truncated and a fresh journal started. With resume
// true the intact prefix of an existing file is loaded — completed
// runs become lookup hits — and the file is truncated to the last
// intact record so appends continue cleanly; the returned Salvage
// says what was recovered.
func OpenManifestFS(fsys vfs.FS, path string, resume bool) (*Manifest, journal.Salvage, error) {
	fsys = vfs.Default(fsys)
	var salvage journal.Salvage
	m := &Manifest{entries: map[string]*RunResult{}, path: path}
	if !resume {
		f, err := fsys.Create(path)
		if err != nil {
			return nil, salvage, &journal.IOError{Op: "create manifest", Err: err}
		}
		w, err := journal.NewWriter(f)
		if err != nil {
			f.Close()
			return nil, salvage, err
		}
		m.f, m.w = f, w
		return m, salvage, nil
	}

	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, salvage, &journal.IOError{Op: "open manifest", Err: err}
	}
	r, err := journal.NewReader(f)
	if err != nil {
		// Empty or header-corrupt file: start it over. Anything the
		// header damage hid is unrecoverable either way.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, salvage, &journal.IOError{Op: "truncate manifest", Err: err}
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, salvage, &journal.IOError{Op: "rewind manifest", Err: err}
		}
		w, err := journal.NewWriter(f)
		if err != nil {
			f.Close()
			return nil, salvage, err
		}
		m.f, m.w = f, w
		return m, salvage, nil
	}
	for {
		payload, err := r.Next()
		if err != nil {
			break // clean EOF or salvage stop
		}
		var e manifestEntry
		if err := json.Unmarshal(payload, &e); err != nil || e.Result == nil {
			// CRC-intact but undecodable: stop trusting the file here.
			break
		}
		key, err := configKey(e.Config)
		if err != nil {
			break
		}
		m.entries[key] = e.Result
	}
	salvage = r.Salvage()
	// Drop the torn tail (and anything after an undecodable record) so
	// the next append starts at a frame boundary.
	if err := f.Truncate(salvage.Bytes); err != nil {
		f.Close()
		return nil, salvage, &journal.IOError{Op: "truncate manifest tail", Err: err}
	}
	if _, err := f.Seek(salvage.Bytes, io.SeekStart); err != nil {
		f.Close()
		return nil, salvage, &journal.IOError{Op: "seek manifest", Err: err}
	}
	m.f, m.w = f, journal.ResumeWriter(f)
	return m, salvage, nil
}

// Path returns the manifest's file path.
func (m *Manifest) Path() string { return m.path }

// Len returns how many completed runs the manifest holds.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Lookup returns the stored result for a completed configuration.
func (m *Manifest) Lookup(rc RunConfig) (*RunResult, bool) {
	key, err := configKey(rc)
	if err != nil {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.entries[key]
	return r, ok
}

// Append journals one completed run under rc — the configuration as
// the sweep requested it, before any retry re-seeding — and syncs it
// to stable storage, so a kill arriving any time later cannot lose it.
// An fsync failure is a hard write failure: the entry is not admitted
// to the in-memory index and the error is surfaced as a journal I/O
// error — non-retryable by the sweep runner.
func (m *Manifest) Append(rc RunConfig, res *RunResult) error {
	key, err := configKey(rc)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(&manifestEntry{Config: rc, Result: res})
	if err != nil {
		return fmt.Errorf("harness: manifest entry: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w == nil {
		return &journal.IOError{Op: "append", Err: errors.New("manifest closed")}
	}
	if err := m.w.Append(payload); err != nil {
		return err
	}
	if m.f != nil {
		if err := m.f.Sync(); err != nil {
			return &journal.IOError{Op: "sync manifest", Err: err}
		}
	}
	m.entries[key] = res
	return nil
}

// Close flushes and closes the manifest file. The in-memory entries
// stay readable (Lookup) after Close; appends fail.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.w = nil
	if m.f == nil {
		return nil
	}
	err := m.f.Close()
	m.f = nil
	if err != nil {
		return &journal.IOError{Op: "close manifest", Err: err}
	}
	return nil
}
