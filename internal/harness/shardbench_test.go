package harness

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func testReport(mod func(*ShardBenchReport)) *ShardBenchReport {
	rep := &ShardBenchReport{
		Schema:     shardBenchSchema,
		GoMaxProcs: 4,
		NumCPU:     4,
		Scale:      1,
		Rows: []ShardBenchRow{
			{Bench: "scan", Races: 256, SerialMS: 10, ParallelMS: 8, Match: true},
			{Bench: "psum", Races: 0, SerialMS: 20, ParallelMS: 18, Match: true},
		},
	}
	if mod != nil {
		mod(rep)
	}
	return rep
}

func TestShardBenchJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rows := testReport(nil).Rows
	if err := WriteShardBenchJSON(&buf, 1, rows); err != nil {
		t.Fatalf("write: %v", err)
	}
	rep, err := ReadShardBenchJSON(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(rep.Rows) != len(rows) || rep.Rows[0].Bench != "scan" {
		t.Fatalf("round trip lost rows: %+v", rep.Rows)
	}
	if _, err := ReadShardBenchJSON(strings.NewReader(`{"schema":"other/9"}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func TestCompareShardBenchGate(t *testing.T) {
	base := testReport(nil)

	// Identical report: clean pass, timing compared.
	reg, notes := CompareShardBench(base, testReport(nil), 0.10)
	if len(reg) != 0 || len(notes) != 0 {
		t.Fatalf("identical reports: regressions %v notes %v", reg, notes)
	}

	// Findings drift is always fatal.
	reg, _ = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.Rows[0].Races = 255
	}), 0.10)
	if len(reg) != 1 || !strings.Contains(reg[0], "findings changed") {
		t.Fatalf("race-count drift: regressions %v", reg)
	}
	reg, _ = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.Rows[1].Match = false
	}), 0.10)
	if len(reg) != 1 || !strings.Contains(reg[0], "diverged") {
		t.Fatalf("match drift: regressions %v", reg)
	}
	reg, _ = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.Rows = r.Rows[:1]
	}), 0.10)
	if len(reg) != 1 || !strings.Contains(reg[0], "missing") {
		t.Fatalf("missing bench: regressions %v", reg)
	}

	// Timing past tolerance fails on the same machine shape...
	reg, _ = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.Rows[0].SerialMS = 11.5 // +15% over 10
	}), 0.10)
	if len(reg) != 1 || !strings.Contains(reg[0], "serial time") {
		t.Fatalf("timing regression: regressions %v", reg)
	}
	// ...and within tolerance passes.
	reg, _ = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.Rows[0].SerialMS = 10.9
	}), 0.10)
	if len(reg) != 0 {
		t.Fatalf("within-tolerance timing flagged: %v", reg)
	}

	// A different machine shape skips the timing gate (with a note)
	// but still enforces findings.
	reg, notes = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.NumCPU = 16
		r.Rows[0].SerialMS = 100 // would fail the timing gate
		r.Rows[1].Races = 3      // findings drift must still fail
	}), 0.10)
	if len(notes) != 1 || !strings.Contains(notes[0], "timing gate skipped") {
		t.Fatalf("cross-machine comparison: notes %v", notes)
	}
	if len(reg) != 1 || !strings.Contains(reg[0], "findings changed") {
		t.Fatalf("cross-machine comparison: regressions %v", reg)
	}
}

// TestSweepRunCancellationClassified pins the retry-loop fix: a sweep
// run cut down by context cancellation must surface an error that
// errors.Is classifies as the cancellation, not as a genuine run
// failure — SIGTERM during a retrying sweep is resumable state.
func TestSweepRunCancellationClassified(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rc := RunConfig{Bench: "psum", Detector: DetSharedGlobal, GPU: testGPU()}
	if _, err := sweepRunManifest(ctx, rc, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep run: err = %v, want context.Canceled classification", err)
	}
}
