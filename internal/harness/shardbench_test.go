package harness

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func testReport(mod func(*ShardBenchReport)) *ShardBenchReport {
	rep := &ShardBenchReport{
		Schema:     shardBenchSchema,
		GoMaxProcs: 4,
		NumCPU:     4,
		Scale:      1,
		Rows: []ShardBenchRow{
			{Bench: "scan", Races: 256, SerialMS: 10, ParallelMS: 8, Match: true, FullMS: 7, FullMatch: true},
			{Bench: "psum", Races: 0, SerialMS: 20, ParallelMS: 18, Match: true, FullMS: 16, FullMatch: true},
		},
	}
	if mod != nil {
		mod(rep)
	}
	return rep
}

func TestShardBenchJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rows := testReport(nil).Rows
	if err := WriteShardBenchJSON(&buf, 1, rows); err != nil {
		t.Fatalf("write: %v", err)
	}
	rep, err := ReadShardBenchJSON(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(rep.Rows) != len(rows) || rep.Rows[0].Bench != "scan" {
		t.Fatalf("round trip lost rows: %+v", rep.Rows)
	}
	if _, err := ReadShardBenchJSON(strings.NewReader(`{"schema":"other/9"}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
	// Schema /1 baselines (pre-shared-engine) must stay readable; their
	// Full* fields decode zero so the full-pipeline gates skip them.
	old, err := ReadShardBenchJSON(strings.NewReader(
		`{"schema":"haccrg-shardbench/1","rows":[{"bench":"scan","races":1,"serial_ms":10,"parallel_ms":8,"match":true}]}`))
	if err != nil {
		t.Fatalf("schema/1 baseline rejected: %v", err)
	}
	if old.Rows[0].FullMS != 0 || old.Rows[0].FullMatch {
		t.Fatalf("schema/1 row grew Full* values: %+v", old.Rows[0])
	}
}

func TestCompareShardBenchGate(t *testing.T) {
	base := testReport(nil)

	// Identical report: clean pass, timing compared.
	reg, notes := CompareShardBench(base, testReport(nil), 0.10)
	if len(reg) != 0 || len(notes) != 0 {
		t.Fatalf("identical reports: regressions %v notes %v", reg, notes)
	}

	// Findings drift is always fatal.
	reg, _ = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.Rows[0].Races = 255
	}), 0.10)
	if len(reg) != 1 || !strings.Contains(reg[0], "findings changed") {
		t.Fatalf("race-count drift: regressions %v", reg)
	}
	reg, _ = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.Rows[1].Match = false
	}), 0.10)
	if len(reg) != 1 || !strings.Contains(reg[0], "diverged") {
		t.Fatalf("match drift: regressions %v", reg)
	}
	reg, _ = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.Rows[0].FullMatch = false
	}), 0.10)
	if len(reg) != 1 || !strings.Contains(reg[0], "fully-sharded findings diverged") {
		t.Fatalf("full-match drift: regressions %v", reg)
	}
	reg, _ = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.Rows = r.Rows[:1]
	}), 0.10)
	if len(reg) != 1 || !strings.Contains(reg[0], "missing") {
		t.Fatalf("missing bench: regressions %v", reg)
	}

	// Timing past tolerance fails on the same machine shape...
	reg, _ = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.Rows[0].SerialMS = 11.5 // +15% over 10
	}), 0.10)
	if len(reg) != 1 || !strings.Contains(reg[0], "serial time") {
		t.Fatalf("timing regression: regressions %v", reg)
	}
	// ...and within tolerance passes.
	reg, _ = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.Rows[0].SerialMS = 10.9
	}), 0.10)
	if len(reg) != 0 {
		t.Fatalf("within-tolerance timing flagged: %v", reg)
	}

	// The fully-sharded pipeline is timed the same way — but only when
	// both reports carry the measurement (a /1 baseline has FullMS 0).
	reg, _ = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.Rows[0].FullMS = 9 // +28% over 7
	}), 0.10)
	if len(reg) != 1 || !strings.Contains(reg[0], "fully-sharded time") {
		t.Fatalf("full timing regression: regressions %v", reg)
	}
	v1base := testReport(func(r *ShardBenchReport) {
		for i := range r.Rows {
			r.Rows[i].FullMS, r.Rows[i].FullMatch = 0, false
		}
	})
	reg, _ = CompareShardBench(v1base, testReport(func(r *ShardBenchReport) {
		r.Rows[0].FullMS = 9999
	}), 0.10)
	if len(reg) != 0 {
		t.Fatalf("full timing gated against a /1 baseline without the measurement: %v", reg)
	}

	// Improvements surface as notes, never as regressions.
	reg, notes = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.Rows[0].SerialMS = 5 // 2x faster than baseline's 10
	}), 0.10)
	if len(reg) != 0 {
		t.Fatalf("improvement flagged as regression: %v", reg)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "serial time improved") {
		t.Fatalf("improvement note missing: %v", notes)
	}

	// A different machine shape skips the timing gate (with a note)
	// but still enforces findings.
	reg, notes = CompareShardBench(base, testReport(func(r *ShardBenchReport) {
		r.NumCPU = 16
		r.Rows[0].SerialMS = 100 // would fail the timing gate
		r.Rows[1].Races = 3      // findings drift must still fail
	}), 0.10)
	if len(notes) != 1 || !strings.Contains(notes[0], "timing gate skipped") {
		t.Fatalf("cross-machine comparison: notes %v", notes)
	}
	if len(reg) != 1 || !strings.Contains(reg[0], "findings changed") {
		t.Fatalf("cross-machine comparison: regressions %v", reg)
	}
}

// TestSweepRunCancellationClassified pins the retry-loop fix: a sweep
// run cut down by context cancellation must surface an error that
// errors.Is classifies as the cancellation, not as a genuine run
// failure — SIGTERM during a retrying sweep is resumable state.
func TestSweepRunCancellationClassified(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rc := RunConfig{Bench: "psum", Detector: DetSharedGlobal, GPU: testGPU()}
	if _, err := sweepRunManifest(ctx, rc, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep run: err = %v, want context.Canceled classification", err)
	}
}
