package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"text/tabwriter"

	"haccrg/internal/bloom"
	"haccrg/internal/core"
	"haccrg/internal/gpu"
	"haccrg/internal/kernels"
)

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	fmt.Fprintln(w, strings.Join(dashes(header), "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return sb.String()
}

func dashes(hs []string) []string {
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = strings.Repeat("-", len(h))
	}
	return out
}

// Table1 renders the simulated GPU's hardware parameters (paper
// Table I).
func Table1(cfg gpu.Config) string {
	rows := [][]string{
		{"# SMs", fmt.Sprint(cfg.NumSMs)},
		{"SIMD pipeline width / warp size", fmt.Sprintf("%d / %d", cfg.SIMDWidth, cfg.WarpSize)},
		{"# threads / registers per SM", fmt.Sprintf("%d / %d", cfg.MaxThreadsPerSM, cfg.RegistersPerSM)},
		{"warp scheduling", "round robin"},
		{"shared memory per SM", fmt.Sprintf("%dKB, %d banks", cfg.Shared.SizeBytes>>10, cfg.Shared.Banks)},
		{"L1 data cache per SM", fmt.Sprintf("%dKB / %d-way / %dB line",
			cfg.L1.SizeBytes>>10, cfg.L1.Assoc, cfg.L1.LineBytes)},
		{"unified L2 cache", fmt.Sprintf("%dKB per memory slice / %d-way / %dB line",
			cfg.Partition.L2.SizeBytes>>10, cfg.Partition.L2.Assoc, cfg.Partition.L2.LineBytes)},
		{"# memory slices", fmt.Sprint(cfg.NumPartitions)},
		{"DRAM timing", fmt.Sprintf("CAS %d cycles, burst %d, %dB rows",
			cfg.Partition.DRAM.CASLatency, cfg.Partition.DRAM.BurstCycles, 1<<cfg.Partition.DRAM.RowBits)},
		{"interconnect", fmt.Sprintf("%dB flits, %d-cycle latency",
			cfg.NoC.FlitBytes, cfg.NoC.LatencyCycles)},
	}
	return table([]string{"parameter", "value"}, rows)
}

// Table2Row is one benchmark's characterization.
type Table2Row struct {
	Bench        string
	Input        string
	SharedReadPc float64
	GlobalReadPc float64
	Cycles       int64
}

// Table2 runs every benchmark with detection off and reports the
// instruction mix (paper Table II's shared/global read percentages).
func Table2(scale int) ([]Table2Row, string, error) {
	bms := kernels.All()
	cfgs := make([]RunConfig, len(bms))
	for i, bm := range bms {
		cfgs[i] = RunConfig{Bench: bm.Name, Detector: DetOff, Scale: scale}
	}
	results, err := sweepAll(cfgs)
	if err != nil {
		return nil, "", err
	}
	var rows []Table2Row
	var txt [][]string
	for i, bm := range bms {
		r := results[i]
		row := Table2Row{
			Bench: bm.Name, Input: bm.Input,
			SharedReadPc: r.Stats.SharedReadPct(),
			GlobalReadPc: r.Stats.GlobalReadPct(),
			Cycles:       r.Stats.Cycles,
		}
		rows = append(rows, row)
		txt = append(txt, []string{bm.Name, bm.Input,
			fmt.Sprintf("%.2f%%", row.SharedReadPc),
			fmt.Sprintf("%.2f%%", row.GlobalReadPc),
			fmt.Sprint(row.Cycles)})
	}
	return rows, table([]string{"benchmark", "inputs", "shared reads", "global reads", "cycles"}, txt), nil
}

// Table3Row gives a benchmark's false-race counts across tracking
// granularities for one memory space. Sites counts distinct racy
// granules; Reports counts dynamic race reports (which keep growing
// with granularity even as sites merge).
type Table3Row struct {
	Bench   string
	False   map[int]int // granularity bytes -> false race sites
	Reports map[int]int64
}

// Table3Granularities are the sweep points of paper Table III.
var Table3Granularities = []int{4, 8, 16, 32, 64}

// Table3 sweeps tracking granularity and counts false races: for the
// shared space every reported race is false (no benchmark has a real
// shared race); for the global space the 4-byte run is the truth
// baseline, as in the paper.
func Table3(scale int) (shared, global []Table3Row, text string, err error) {
	bms := kernels.All()
	ng := len(Table3Granularities)
	cfgs := make([]RunConfig, 0, len(bms)*ng)
	for _, bm := range bms {
		for _, g := range Table3Granularities {
			cfgs = append(cfgs, RunConfig{
				Bench: bm.Name, Detector: DetSharedGlobal, Scale: scale,
				SharedGranularity: g, GlobalGranularity: g,
			})
		}
	}
	results, err := sweepAll(cfgs)
	if err != nil {
		return nil, nil, "", err
	}
	var sharedTxt, globalTxt [][]string
	for i, bm := range bms {
		sr := Table3Row{Bench: bm.Name, False: map[int]int{}, Reports: map[int]int64{}}
		gr := Table3Row{Bench: bm.Name, False: map[int]int{}, Reports: map[int]int64{}}
		baselineGlobal := -1
		for j, g := range Table3Granularities {
			r := results[i*ng+j]
			sr.False[g] = r.SharedSites
			sr.Reports[g] = r.DetectorStats.SharedReports
			if baselineGlobal < 0 {
				baselineGlobal = r.GlobalSites
			}
			f := r.GlobalSites - baselineGlobal
			if f < 0 {
				f = 0
			}
			gr.False[g] = f
		}
		shared = append(shared, sr)
		global = append(global, gr)
		sharedTxt = append(sharedTxt, granRow(bm.Name, sr))
		globalTxt = append(globalTxt, granRow(bm.Name, gr))
	}
	head := []string{"benchmark"}
	for _, g := range Table3Granularities {
		head = append(head, fmt.Sprintf("%dB", g))
	}
	text = "False shared-memory races vs tracking granularity (sites / dynamic reports):\n" +
		table(head, sharedTxt) +
		"\nFalse global-memory races vs tracking granularity (4B = truth):\n" +
		table(head, globalTxt)
	return shared, global, text, nil
}

func granRow(name string, r Table3Row) []string {
	row := []string{name}
	for _, g := range Table3Granularities {
		if len(r.Reports) > 0 && r.Reports[g] > 0 {
			row = append(row, fmt.Sprintf("%d/%d", r.False[g], r.Reports[g]))
		} else {
			row = append(row, fmt.Sprint(r.False[g]))
		}
	}
	return row
}

// Table4 reports the global shadow-memory footprint per benchmark at
// 4-byte granularity (paper Table IV).
func Table4(scale int) (map[string]int64, string, error) {
	opt := core.DefaultOptions()
	out := map[string]int64{}
	var rows [][]string
	for _, bm := range kernels.All() {
		// AppBytes comes from building the plan (it depends on scale).
		dev, err := gpu.NewDevice(gpu.TestConfig(), bm.GlobalBytes(scale), nil)
		if err != nil {
			return nil, "", err
		}
		plan, err := bm.Build(dev, kernels.Params{Scale: scale})
		if err != nil {
			return nil, "", err
		}
		bytes := core.GlobalShadowBytes(plan.AppBytes, opt)
		out[bm.Name] = bytes
		rows = append(rows, []string{bm.Name, fmtBytes(int64(plan.AppBytes)), fmtBytes(bytes)})
	}
	return out, table([]string{"benchmark", "app data", "shadow overhead"}, rows), nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// Fig7Row holds one benchmark's normalized execution times.
type Fig7Row struct {
	Bench        string
	BaseCycles   int64
	Shared       float64 // shared-only HAccRG, normalized
	SharedGlobal float64 // shared+global HAccRG
	Software     float64 // software HAccRG
	GRace        float64 // GRace-addr
}

// Fig7 measures the performance impact of every detector configuration
// (paper Figure 7 plus the Section VI-B software comparison).
func Fig7(scale int) ([]Fig7Row, string, error) {
	bms := kernels.All()
	kinds := []DetectorKind{DetOff, DetShared, DetSharedGlobal, DetSoftware, DetGRace}
	cfgs := make([]RunConfig, 0, len(bms)*len(kinds))
	for _, bm := range bms {
		for _, kind := range kinds {
			cfgs = append(cfgs, RunConfig{Bench: bm.Name, Detector: kind, Scale: scale})
		}
	}
	results, err := sweepAll(cfgs)
	if err != nil {
		return nil, "", err
	}
	var rows []Fig7Row
	var txt [][]string
	for i, bm := range bms {
		base := results[i*len(kinds)]
		row := Fig7Row{Bench: bm.Name, BaseCycles: base.Stats.Cycles}
		for j, dst := range []*float64{&row.Shared, &row.SharedGlobal, &row.Software, &row.GRace} {
			r := results[i*len(kinds)+1+j]
			*dst = float64(r.Stats.Cycles) / float64(base.Stats.Cycles)
		}
		rows = append(rows, row)
		txt = append(txt, []string{bm.Name,
			fmt.Sprintf("%.3f", row.Shared),
			fmt.Sprintf("%.3f", row.SharedGlobal),
			fmt.Sprintf("%.2fx", row.Software),
			fmt.Sprintf("%.1fx", row.GRace)})
	}
	gm := func(f func(Fig7Row) float64) float64 {
		p := 1.0
		for _, r := range rows {
			p *= f(r)
		}
		return math.Pow(p, 1/float64(len(rows)))
	}
	txt = append(txt, []string{"geomean",
		fmt.Sprintf("%.3f", gm(func(r Fig7Row) float64 { return r.Shared })),
		fmt.Sprintf("%.3f", gm(func(r Fig7Row) float64 { return r.SharedGlobal })),
		fmt.Sprintf("%.2fx", gm(func(r Fig7Row) float64 { return r.Software })),
		fmt.Sprintf("%.1fx", gm(func(r Fig7Row) float64 { return r.GRace }))})
	return rows, table([]string{"benchmark", "hw shared", "hw shared+global", "sw-haccrg", "grace-addr"}, txt), nil
}

// Fig8Row compares hardware shared shadow entries against
// shared-shadow-in-global-memory (paper Figure 8).
type Fig8Row struct {
	Bench    string
	Hardware float64 // shared+global, normalized to detection-off
	Software float64 // shared shadow in global memory
}

// Fig8 runs the shared-shadow placement experiment.
func Fig8(scale int) ([]Fig8Row, string, error) {
	bms := kernels.All()
	kinds := []DetectorKind{DetOff, DetSharedGlobal, DetFig8}
	cfgs := make([]RunConfig, 0, len(bms)*len(kinds))
	for _, bm := range bms {
		for _, kind := range kinds {
			cfgs = append(cfgs, RunConfig{Bench: bm.Name, Detector: kind, Scale: scale})
		}
	}
	results, err := sweepAll(cfgs)
	if err != nil {
		return nil, "", err
	}
	var rows []Fig8Row
	var txt [][]string
	for i, bm := range bms {
		base, hw, sw := results[i*3], results[i*3+1], results[i*3+2]
		row := Fig8Row{
			Bench:    bm.Name,
			Hardware: float64(hw.Stats.Cycles) / float64(base.Stats.Cycles),
			Software: float64(sw.Stats.Cycles) / float64(base.Stats.Cycles),
		}
		rows = append(rows, row)
		txt = append(txt, []string{bm.Name,
			fmt.Sprintf("%.3f", row.Hardware), fmt.Sprintf("%.3f", row.Software)})
	}
	return rows, table([]string{"benchmark", "hw shadow", "shadow in global mem"}, txt), nil
}

// Fig9Row holds DRAM bandwidth utilization per configuration.
type Fig9Row struct {
	Bench        string
	Off          float64
	Shared       float64
	SharedGlobal float64
}

// Fig9 measures average DRAM bandwidth utilization (paper Figure 9).
func Fig9(scale int) ([]Fig9Row, string, error) {
	bms := kernels.All()
	kinds := []DetectorKind{DetOff, DetShared, DetSharedGlobal}
	cfgs := make([]RunConfig, 0, len(bms)*len(kinds))
	for _, bm := range bms {
		for _, kind := range kinds {
			cfgs = append(cfgs, RunConfig{Bench: bm.Name, Detector: kind, Scale: scale})
		}
	}
	results, err := sweepAll(cfgs)
	if err != nil {
		return nil, "", err
	}
	var rows []Fig9Row
	var txt [][]string
	for i, bm := range bms {
		row := Fig9Row{Bench: bm.Name}
		for j, dst := range []*float64{&row.Off, &row.Shared, &row.SharedGlobal} {
			*dst = results[i*len(kinds)+j].Stats.DRAMUtil
		}
		rows = append(rows, row)
		txt = append(txt, []string{bm.Name,
			pct(row.Off), pct(row.Shared), pct(row.SharedGlobal)})
	}
	return rows, table([]string{"benchmark", "no detection", "shared", "shared+global"}, txt), nil
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// RealRaceReport summarizes the effectiveness study (Section VI-A).
type RealRaceReport struct {
	Bench       string
	SharedSites int
	GlobalSites int
	Categories  map[string]int
}

// RealRaces runs the effectiveness evaluation at word granularity.
func RealRaces(scale int) ([]RealRaceReport, string, error) {
	bms := kernels.All()
	cfgs := make([]RunConfig, len(bms))
	for i, bm := range bms {
		cfgs[i] = RunConfig{
			Bench: bm.Name, Detector: DetSharedGlobal, Scale: scale,
			SharedGranularity: 4, GlobalGranularity: 4,
		}
	}
	results, err := sweepAll(cfgs)
	if err != nil {
		return nil, "", err
	}
	var reps []RealRaceReport
	var txt [][]string
	for i, bm := range bms {
		r := results[i]
		rep := RealRaceReport{
			Bench: bm.Name, SharedSites: r.SharedSites,
			GlobalSites: r.GlobalSites, Categories: r.Groups,
		}
		reps = append(reps, rep)
		txt = append(txt, []string{bm.Name,
			fmt.Sprint(rep.SharedSites), fmt.Sprint(rep.GlobalSites), groupString(r.Groups)})
	}
	return reps, table([]string{"benchmark", "shared races", "global races", "groups"}, txt), nil
}

func groupString(groups map[string]int) string {
	if len(groups) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, groups[k])
	}
	return strings.Join(parts, " ")
}

// InjectedResult records one injection site's outcome.
type InjectedResult struct {
	Site     kernels.Site
	Detected bool
}

// Injected runs the 41-site injection study (Section VI-A). Sites are
// injected one at a time into otherwise race-free configurations.
func Injected(scale int) ([]InjectedResult, string, error) {
	clean := func(name string) RunConfig {
		rc := RunConfig{
			Bench: name, Detector: DetSharedGlobal, Scale: scale,
			SharedGranularity: 4, GlobalGranularity: 4,
		}
		if name == "scan" || name == "kmeans" {
			rc.SingleBlock = true
		}
		return rc
	}
	// One combined sweep: the per-benchmark baselines first, then every
	// injection run — 10 + 41 configurations fanned out together.
	bms := kernels.All()
	cfgs := make([]RunConfig, 0, len(bms))
	for _, bm := range bms {
		cfgs = append(cfgs, clean(bm.Name))
	}
	type siteRef struct {
		bench string
		site  kernels.Site
	}
	var refs []siteRef
	for _, bm := range bms {
		for _, site := range bm.Sites {
			rc := clean(bm.Name)
			rc.Inject = []string{site.ID}
			cfgs = append(cfgs, rc)
			refs = append(refs, siteRef{bench: bm.Name, site: site})
		}
	}
	results, err := sweepAll(cfgs)
	if err != nil {
		return nil, "", err
	}
	type base struct {
		sites  int
		groups map[string]int
	}
	baselines := map[string]base{}
	for i, bm := range bms {
		r := results[i]
		baselines[bm.Name] = base{sites: r.SharedSites + r.GlobalSites, groups: r.Groups}
	}
	var out []InjectedResult
	var txt [][]string
	detected := 0
	for k, ref := range refs {
		r := results[len(bms)+k]
		b := baselines[ref.bench]
		hit := r.SharedSites+r.GlobalSites > b.sites
		for g := range r.Groups {
			if b.groups[g] == 0 {
				hit = true
			}
		}
		if hit {
			detected++
		}
		out = append(out, InjectedResult{Site: ref.site, Detected: hit})
		mark := "MISSED"
		if hit {
			mark = "detected"
		}
		txt = append(txt, []string{ref.site.ID, ref.site.Kind.String(), mark})
	}
	summary := fmt.Sprintf("\n%d of %d injected races detected\n", detected, len(out))
	return out, table([]string{"site", "kind", "result"}, txt) + summary, nil
}

// BloomStress reproduces the Section VI-A2 signature stress test.
func BloomStress() string {
	var rows [][]string
	for _, size := range []int{8, 16, 32} {
		for _, bins := range []int{2, 4} {
			cfg := bloom.Config{SizeBits: size, Bins: bins}
			if cfg.Validate() != nil {
				continue
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d-bit / %d bins", size, bins),
				fmt.Sprintf("%.2f%%", 100*cfg.AliasProbability()),
			})
		}
	}
	return table([]string{"signature", "missed races"}, rows)
}

// IDUsage reports the observed logical-clock maxima (Section VI-A2's
// sync/fence-ID sizing argument).
func IDUsage(scale int) (string, error) {
	bms := kernels.All()
	cfgs := make([]RunConfig, len(bms))
	for i, bm := range bms {
		cfgs[i] = RunConfig{Bench: bm.Name, Detector: DetSharedGlobal, Scale: scale}
	}
	results, err := sweepAll(cfgs)
	if err != nil {
		return "", err
	}
	var rows [][]string
	for i, bm := range bms {
		r := results[i]
		rows = append(rows, []string{bm.Name,
			fmt.Sprint(r.Stats.MaxSyncID), fmt.Sprint(r.Stats.MaxFenceID)})
	}
	return table([]string{"benchmark", "max sync ID", "max fence ID"}, rows), nil
}

// HardwareCost renders the Section VI-C2 overhead arithmetic.
func HardwareCost() string {
	cfg := gpu.DefaultConfig()
	c := core.ComputeHardwareCost(&cfg, core.DefaultOptions())
	rows := [][]string{
		{"shared shadow entry", fmt.Sprintf("%d bits", c.SharedEntryBits)},
		{"shared shadow storage per SM", fmtBytes(int64(c.SharedShadowBytesPerSM))},
		{"shared comparators per SM", fmt.Sprint(c.SharedComparatorsPerSM)},
		{"global entry (base/fence/atomic)", fmt.Sprintf("%d/%d/%d bits",
			c.GlobalEntryBitsBase, c.GlobalEntryBitsFence, c.GlobalEntryBitsAtomic)},
		{"comparators per memory slice", fmt.Sprintf("%d base + %d ID", c.GlobalComparatorsPerSlice, c.IDComparatorsPerSlice)},
		{"ID storage per SM", fmtBytes(int64(c.IDBytesPerSM))},
		{"race register file per slice", fmtBytes(int64(c.RaceRegisterFileBytes))},
	}
	return table([]string{"resource", "cost"}, rows)
}
