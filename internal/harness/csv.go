package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteTable2CSV exports the benchmark characterization rows.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "inputs", "shared_read_pct", "global_read_pct", "cycles"}); err != nil {
		return err
	}
	for _, r := range rows {
		err := cw.Write([]string{
			r.Bench, r.Input,
			strconv.FormatFloat(r.SharedReadPc, 'f', 4, 64),
			strconv.FormatFloat(r.GlobalReadPc, 'f', 4, 64),
			strconv.FormatInt(r.Cycles, 10),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig7CSV exports the normalized execution-time series.
func WriteFig7CSV(w io.Writer, rows []Fig7Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "base_cycles", "hw_shared", "hw_shared_global", "sw_haccrg", "grace_addr"}); err != nil {
		return err
	}
	for _, r := range rows {
		err := cw.Write([]string{
			r.Bench,
			strconv.FormatInt(r.BaseCycles, 10),
			strconv.FormatFloat(r.Shared, 'f', 4, 64),
			strconv.FormatFloat(r.SharedGlobal, 'f', 4, 64),
			strconv.FormatFloat(r.Software, 'f', 4, 64),
			strconv.FormatFloat(r.GRace, 'f', 4, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig9CSV exports the DRAM bandwidth-utilization series.
func WriteFig9CSV(w io.Writer, rows []Fig9Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "off", "shared", "shared_global"}); err != nil {
		return err
	}
	for _, r := range rows {
		err := cw.Write([]string{
			r.Bench,
			strconv.FormatFloat(r.Off, 'f', 5, 64),
			strconv.FormatFloat(r.Shared, 'f', 5, 64),
			strconv.FormatFloat(r.SharedGlobal, 'f', 5, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3CSV exports false-race counts per granularity for one
// memory space.
func WriteTable3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	head := []string{"benchmark"}
	for _, g := range Table3Granularities {
		head = append(head, fmt.Sprintf("false_%dB", g))
	}
	if err := cw.Write(head); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Bench}
		for _, g := range Table3Granularities {
			rec = append(rec, strconv.Itoa(r.False[g]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
