package harness

import (
	"strings"
	"testing"

	"haccrg/internal/gpu"
	"haccrg/internal/kernels"
)

// testGPU returns a small device so harness tests stay fast.
func testGPU() *gpu.Config {
	cfg := gpu.TestConfig()
	return &cfg
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run(RunConfig{Bench: "nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := Run(RunConfig{Bench: "scan", Detector: "bogus"}); err == nil {
		t.Fatal("unknown detector accepted")
	}
}

func TestRunAllDetectorKinds(t *testing.T) {
	kinds := []DetectorKind{DetOff, DetShared, DetGlobal, DetSharedGlobal, DetFig8, DetSoftware, DetGRace}
	for _, k := range kinds {
		r, err := Run(RunConfig{Bench: "scan", Detector: k, GPU: testGPU(), SingleBlock: true})
		if err != nil {
			t.Fatalf("detector %s: %v", k, err)
		}
		if r.Stats.Cycles <= 0 {
			t.Errorf("detector %s: no cycles", k)
		}
	}
}

func TestDetectionOverheadOrdering(t *testing.T) {
	// For a shared-memory benchmark: off <= shared-hw <= software, and
	// GRace slowest of all.
	var cycles []int64
	for _, k := range []DetectorKind{DetOff, DetShared, DetSoftware, DetGRace} {
		r, err := Run(RunConfig{Bench: "scan", Detector: k, GPU: testGPU(), SingleBlock: true})
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, r.Stats.Cycles)
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i] < cycles[i-1] {
			t.Fatalf("overhead ordering violated: %v", cycles)
		}
	}
	if float64(cycles[3]) < 5*float64(cycles[2]) {
		t.Errorf("GRace (%d cycles) should be far slower than sw-haccrg (%d)", cycles[3], cycles[2])
	}
}

func TestVerifyHelper(t *testing.T) {
	if err := Verify("reduce", 1, false); err != nil {
		t.Fatalf("reduce verify: %v", err)
	}
	if err := Verify("scan", 1, true); err != nil {
		t.Fatalf("scan single-block verify: %v", err)
	}
	if err := Verify("nope", 1, false); err == nil {
		t.Fatal("unknown benchmark verified")
	}
}

func TestTable1Renders(t *testing.T) {
	txt := Table1(gpu.DefaultConfig())
	for _, want := range []string{"# SMs", "30", "shared memory per SM", "16KB"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Table1 missing %q:\n%s", want, txt)
		}
	}
}

func TestBloomStressRenders(t *testing.T) {
	txt := BloomStress()
	for _, want := range []string{"8-bit / 2 bins", "25.00%", "16-bit / 2 bins", "12.50%", "6.25%"} {
		if !strings.Contains(txt, want) {
			t.Errorf("BloomStress missing %q:\n%s", want, txt)
		}
	}
}

func TestHardwareCostRenders(t *testing.T) {
	txt := HardwareCost()
	// 39/49/52 mirror the packed global word: base fields, +fence ID,
	// +atomic bloom signature (see internal/core/packed.go).
	for _, want := range []string{"12 bits", "39/49/52 bits", "race register file"} {
		if !strings.Contains(txt, want) {
			t.Errorf("HardwareCost missing %q:\n%s", want, txt)
		}
	}
}

func TestInjectedSmallDevice(t *testing.T) {
	// The full 41-site study on the big device is exercised by the
	// kernels package tests; here just spot-check the harness flow on
	// one site per kind.
	sites := map[string]kernels.InjectKind{
		"scan.bar0":   kernels.InjRemoveBarrier,
		"psum.fence0": kernels.InjRemoveFence,
		"hash.crit0":  kernels.InjDummyCritical,
		"hist.dummy0": kernels.InjDummyCross,
	}
	for id := range sites {
		bench := strings.SplitN(id, ".", 2)[0]
		rc := RunConfig{
			Bench: bench, Detector: DetSharedGlobal, GPU: testGPU(),
			SharedGranularity: 4, GlobalGranularity: 4,
			Inject: []string{id},
		}
		if bench == "scan" {
			rc.SingleBlock = true
		}
		r, err := Run(rc)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if r.SharedSites+r.GlobalSites == 0 {
			t.Errorf("injection %s produced no races", id)
		}
	}
}

func TestWarpRegroupStudy(t *testing.T) {
	aware, regroup, txt, err := WarpRegroupStudy()
	if err != nil {
		t.Fatal(err)
	}
	if aware != 0 {
		t.Errorf("warp-aware mode reported %d races for lockstep accesses, want 0", aware)
	}
	if regroup == 0 {
		t.Error("re-grouping mode should report intra-warp granule sharing")
	}
	if txt == "" {
		t.Error("empty study text")
	}
}

func TestBloomEndToEnd(t *testing.T) {
	txt, err := BloomEndToEnd()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(txt, "(!)") {
		t.Errorf("detection counts not monotone in signature size:\n%s", txt)
	}
}

func TestSyncIDGatingStudy(t *testing.T) {
	txt, err := SyncIDGatingStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "scan") {
		t.Errorf("study missing benchmarks:\n%s", txt)
	}
}

func TestTLBStudy(t *testing.T) {
	results, txt, err := TLBStudy(1, tlbDefault())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 || txt == "" {
		t.Fatalf("expected 10 benchmark rows, got %d", len(results))
	}
	for _, r := range results {
		if r.Accesses == 0 {
			t.Errorf("%s: empty address trace", r.Bench)
		}
		if r.Separate.Cycles > r.Appended.Cycles {
			t.Errorf("%s: separate shadow TLB slower than appended-bit (%d vs %d)",
				r.Bench, r.Separate.Cycles, r.Appended.Cycles)
		}
	}
}

func TestSchedulerStudy(t *testing.T) {
	txt, err := SchedulerStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "round-robin") {
		t.Fatalf("study output malformed:\n%s", txt)
	}
}

func TestCSVExports(t *testing.T) {
	t2 := []Table2Row{{Bench: "scan", Input: "256", SharedReadPc: 10.9, GlobalReadPc: 0.7, Cycles: 5000}}
	f7 := []Fig7Row{{Bench: "scan", BaseCycles: 5000, Shared: 1.01, SharedGlobal: 1.02, Software: 4.9, GRace: 532}}
	f9 := []Fig9Row{{Bench: "scan", Off: 0.005, Shared: 0.004, SharedGlobal: 0.013}}
	t3 := []Table3Row{{Bench: "hist", False: map[int]int{4: 0, 8: 0, 16: 1219, 32: 716, 64: 379}}}
	for name, f := range map[string]func(*strings.Builder) error{
		"table2": func(sb *strings.Builder) error { return WriteTable2CSV(sb, t2) },
		"fig7":   func(sb *strings.Builder) error { return WriteFig7CSV(sb, f7) },
		"fig9":   func(sb *strings.Builder) error { return WriteFig9CSV(sb, f9) },
		"table3": func(sb *strings.Builder) error { return WriteTable3CSV(sb, t3) },
	} {
		var sb strings.Builder
		if err := f(&sb); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
		if len(lines) != 2 {
			t.Fatalf("%s: %d lines, want header + row:\n%s", name, len(lines), sb.String())
		}
		if !strings.Contains(lines[1], "scan") && !strings.Contains(lines[1], "hist") {
			t.Fatalf("%s: row missing benchmark name: %s", name, lines[1])
		}
	}
}
