package harness

import (
	"fmt"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
	"haccrg/internal/kernels"
	"haccrg/internal/tlb"
)

// traceDetector records the global-memory address stream of a run; it
// feeds the Section IV-B virtual-memory study.
type traceDetector struct {
	addrs []uint64
	limit int
}

func (t *traceDetector) Name() string                            { return "trace" }
func (t *traceDetector) KernelStart(gpu.Env, string)             {}
func (t *traceDetector) KernelEnd()                              {}
func (t *traceDetector) BlockStart(int, int, int)                {}
func (t *traceDetector) Barrier(int, int, int, int, int64) int64 { return 0 }

func (t *traceDetector) WarpMem(ev *gpu.WarpMemEvent) int64 {
	if ev.Space != isa.SpaceGlobal || len(t.addrs) >= t.limit {
		return 0
	}
	for i := range ev.Lanes {
		if len(t.addrs) >= t.limit {
			break
		}
		t.addrs = append(t.addrs, ev.Lanes[i].Addr)
	}
	return 0
}

// TLBResult compares the paper's two shadow-translation mechanisms
// over one benchmark's real global-address trace.
type TLBResult struct {
	Bench    string
	Accesses int
	Appended tlb.Stats
	Separate tlb.Stats
}

// TLBStudy captures each benchmark's global-memory address trace and
// evaluates Section IV-B's two TLB designs over it: the appended-tag-
// bit shared TLB versus the dedicated shadow TLB.
func TLBStudy(scale int, cfg tlb.Config) ([]TLBResult, string, error) {
	var out []TLBResult
	var txt [][]string
	for _, bm := range kernels.All() {
		tr := &traceDetector{limit: 1 << 20}
		dev, err := gpu.NewDevice(gpu.DefaultConfig(), bm.GlobalBytes(scale), tr)
		if err != nil {
			return nil, "", err
		}
		plan, err := bm.Build(dev, kernels.Params{Scale: scale})
		if err != nil {
			return nil, "", err
		}
		if _, err := plan.Run(dev); err != nil {
			return nil, "", err
		}
		shadowBase := dev.ShadowBase()
		shadowOf := func(addr uint64) uint64 { return shadowBase + (addr/4)*8 }
		app, sep, err := tlb.Compare(cfg, tr.addrs, shadowOf, true)
		if err != nil {
			return nil, "", err
		}
		res := TLBResult{Bench: bm.Name, Accesses: len(tr.addrs), Appended: app, Separate: sep}
		out = append(out, res)
		speedup := 0.0
		if sep.Cycles > 0 {
			speedup = float64(app.Cycles) / float64(sep.Cycles)
		}
		txt = append(txt, []string{
			bm.Name,
			fmt.Sprint(res.Accesses),
			fmt.Sprintf("%.2f%%", 100*app.MissRate()),
			fmt.Sprintf("%.2f%%", 100*sep.MissRate()),
			fmt.Sprintf("%.2fx", speedup),
		})
	}
	return out, table(
		[]string{"benchmark", "accesses", "appended-bit miss", "separate-TLB miss", "translation speedup"},
		txt), nil
}

// tlbDefault re-exports the model's default configuration for tests
// and the bench harness.
func tlbDefault() tlb.Config { return tlb.DefaultConfig }
