package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// This file is the wall-clock study of the sharded RDU engines: the
// same benchmark runs with the serial engine, with the per-partition
// global engine, and with the full pipeline (global per partition +
// shared per SM), and the three are compared for speed (the point of
// the sharding) and for findings (which the engine contract says must
// be byte-identical).

// shardBenchBenches are the workloads timed: the detection-heavy end
// of the suite (global-memory traffic dominating the event stream), so
// the measured speedup reflects the detector, not the simulator.
var shardBenchBenches = []string{"scan", "psum", "hash", "reduce"}

// shardBenchReps is how many times each configuration runs; the fastest
// repetition is reported, discarding scheduler and allocator noise.
const shardBenchReps = 3

// ShardBenchRow is one benchmark's serial-vs-sharded comparison.
type ShardBenchRow struct {
	Bench      string  `json:"bench"`
	Races      int     `json:"races"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	// Match is true when the sharded run's findings — sorted races and
	// detector stats — are identical to the serial run's.
	Match bool `json:"match"`
	// QueuePeak is the deepest any partition's event ring got during
	// the sharded run (at ring capacity the sim thread was
	// backpressured; see gpu.LaunchStats.DetectQueuePeak).
	QueuePeak int `json:"queue_peak"`

	// Full* describe the fully-sharded pipeline (global engine per
	// partition AND shared engine per SM) against the same serial
	// baseline. Zero-valued in schema/1 reports, which predate the
	// shared engine.
	FullMS        float64 `json:"full_ms,omitempty"`
	FullSpeedup   float64 `json:"full_speedup,omitempty"`
	FullMatch     bool    `json:"full_match,omitempty"`
	FullQueuePeak int     `json:"full_queue_peak,omitempty"`
}

// ShardBenchReport is the machine-readable result set the -json flag
// of haccrg-bench emits (and CI archives as an artifact).
type ShardBenchReport struct {
	Schema     string `json:"schema"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// NumCPU is the host's logical CPU count. Speedup numbers are only
	// meaningful relative to it: on a single-core host the sharded
	// engine timeshares with its producer, so the measured ratio is
	// total-CPU overhead, not the pipeline speedup available on real
	// multi-core hardware.
	NumCPU int             `json:"num_cpu"`
	Scale  int             `json:"scale"`
	Rows   []ShardBenchRow `json:"rows"`
}

// shardBenchSchema versions the JSON layout so downstream tooling can
// reject files it does not understand. Schema /2 adds the Full* row
// fields (fully-sharded pipeline); /1 reports remain readable — their
// Full* fields decode zero and the comparators skip them.
const (
	shardBenchSchema   = "haccrg-shardbench/2"
	shardBenchSchemaV1 = "haccrg-shardbench/1"
)

// ShardBench times the serial, global-sharded and fully-sharded RDU
// engines on detection-bound benchmarks and verifies their findings
// agree. The runs execute on this goroutine (never through the sweep
// manifest, which would serve cached results and destroy the timing).
func ShardBench(scale int) ([]ShardBenchRow, string, error) {
	var rows []ShardBenchRow
	var txt [][]string
	for _, bench := range shardBenchBenches {
		rc := RunConfig{Bench: bench, Detector: DetSharedGlobal, Scale: scale}
		serial, serialT, err := shardBenchRun(rc)
		if err != nil {
			return nil, "", fmt.Errorf("harness: shardbench %s serial: %w", bench, err)
		}
		rc.DetectParallel = true
		par, parT, err := shardBenchRun(rc)
		if err != nil {
			return nil, "", fmt.Errorf("harness: shardbench %s sharded: %w", bench, err)
		}
		rc.DetectParallelShared = true
		full, fullT, err := shardBenchRun(rc)
		if err != nil {
			return nil, "", fmt.Errorf("harness: shardbench %s fully-sharded: %w", bench, err)
		}
		row := ShardBenchRow{
			Bench:         bench,
			Races:         len(serial.Races),
			SerialMS:      float64(serialT.Microseconds()) / 1e3,
			ParallelMS:    float64(parT.Microseconds()) / 1e3,
			Match:         shardBenchMatch(serial, par),
			QueuePeak:     par.Stats.DetectQueuePeak,
			FullMS:        float64(fullT.Microseconds()) / 1e3,
			FullMatch:     shardBenchMatch(serial, full),
			FullQueuePeak: full.Stats.DetectQueuePeak,
		}
		if parT > 0 {
			row.Speedup = float64(serialT) / float64(parT)
		}
		if fullT > 0 {
			row.FullSpeedup = float64(serialT) / float64(fullT)
		}
		rows = append(rows, row)
		match := "identical"
		if !row.Match || !row.FullMatch {
			match = "DIVERGED"
		}
		txt = append(txt, []string{
			bench,
			fmt.Sprintf("%.1f", row.SerialMS),
			fmt.Sprintf("%.1f", row.ParallelMS),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%.1f", row.FullMS),
			fmt.Sprintf("%.2fx", row.FullSpeedup),
			fmt.Sprintf("%d", row.QueuePeak),
			fmt.Sprintf("%d", row.Races),
			match,
		})
	}
	return rows, table(
		[]string{"benchmark", "serial ms", "sharded ms", "speedup", "full ms", "full x", "queue peak", "races", "findings"},
		txt), nil
}

// shardBenchRun executes one configuration shardBenchReps times and
// returns the (deterministic) result with the fastest wall-clock time.
func shardBenchRun(rc RunConfig) (*RunResult, time.Duration, error) {
	var best time.Duration
	var res *RunResult
	ctx := baseSweepContext()
	for i := 0; i < shardBenchReps; i++ {
		start := time.Now()
		r, err := RunContext(ctx, rc)
		elapsed := time.Since(start)
		if err != nil {
			return nil, 0, err
		}
		if res == nil || elapsed < best {
			res, best = r, elapsed
		}
	}
	return res, best, nil
}

// shardBenchMatch reports whether two runs reached identical findings:
// the same sorted races (string for string), the same detector
// counters, and the same simulated clock.
func shardBenchMatch(a, b *RunResult) bool {
	if len(a.Races) != len(b.Races) {
		return false
	}
	for i := range a.Races {
		if a.Races[i].String() != b.Races[i].String() {
			return false
		}
	}
	return a.DetectorStats == b.DetectorStats && a.Stats.Cycles == b.Stats.Cycles
}

// ReadShardBenchJSON parses a report previously written by
// WriteShardBenchJSON, rejecting unknown schemas. Both schema versions
// are accepted: /1 baselines (BENCH_PR4..PR6) stay comparable, with
// their Full* columns decoding zero.
func ReadShardBenchJSON(r io.Reader) (*ShardBenchReport, error) {
	var rep ShardBenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("harness: shardbench report: %w", err)
	}
	if rep.Schema != shardBenchSchema && rep.Schema != shardBenchSchemaV1 {
		return nil, fmt.Errorf("harness: shardbench report schema %q, want %q", rep.Schema, shardBenchSchema)
	}
	return &rep, nil
}

// CompareShardBench gates a fresh shardbench report against a pinned
// baseline (the BENCH_PR*.json trajectory). Findings are compared
// exactly — the race counts and the serial/sharded/fully-sharded match
// bits are machine-independent invariants, so any drift is a
// regression.
// Wall-clock throughput is compared only when both reports came from
// the same machine shape (equal NumCPU and GOMAXPROCS): cross-machine
// millisecond deltas measure the hardware, not the code. When timing
// is comparable, each benchmark's serial and sharded times may exceed
// the baseline by at most tolerance (e.g. 0.10 for +10%).
//
// The returned regressions are human-readable failures (empty = gate
// passed); notes report comparisons that were skipped and why.
func CompareShardBench(baseline, current *ShardBenchReport, tolerance float64) (regressions, notes []string) {
	cur := make(map[string]ShardBenchRow, len(current.Rows))
	for _, r := range current.Rows {
		cur[r.Bench] = r
	}
	timing := baseline.NumCPU == current.NumCPU && baseline.GoMaxProcs == current.GoMaxProcs &&
		baseline.Scale == current.Scale
	if !timing {
		notes = append(notes, fmt.Sprintf(
			"timing gate skipped: baseline ran on %d CPU / GOMAXPROCS %d at scale %d, current on %d / %d at scale %d",
			baseline.NumCPU, baseline.GoMaxProcs, baseline.Scale,
			current.NumCPU, current.GoMaxProcs, current.Scale))
	}
	for _, b := range baseline.Rows {
		c, ok := cur[b.Bench]
		if !ok {
			regressions = append(regressions, fmt.Sprintf(
				"%s: present in baseline but missing from current report", b.Bench))
			continue
		}
		if c.Races != b.Races {
			regressions = append(regressions, fmt.Sprintf(
				"%s: findings changed: %d race(s), baseline %d", b.Bench, c.Races, b.Races))
		}
		if b.Match && !c.Match {
			regressions = append(regressions, fmt.Sprintf(
				"%s: sharded findings diverged from serial (baseline matched)", b.Bench))
		}
		if b.FullMatch && !c.FullMatch {
			regressions = append(regressions, fmt.Sprintf(
				"%s: fully-sharded findings diverged from serial (baseline matched)", b.Bench))
		}
		if !timing {
			continue
		}
		limit := 1 + tolerance
		if b.SerialMS > 0 && c.SerialMS > b.SerialMS*limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: serial time %.1fms exceeds baseline %.1fms by more than %.0f%%",
				b.Bench, c.SerialMS, b.SerialMS, tolerance*100))
		}
		if b.ParallelMS > 0 && c.ParallelMS > b.ParallelMS*limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: sharded time %.1fms exceeds baseline %.1fms by more than %.0f%%",
				b.Bench, c.ParallelMS, b.ParallelMS, tolerance*100))
		}
		if b.FullMS > 0 && c.FullMS > 0 && c.FullMS > b.FullMS*limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: fully-sharded time %.1fms exceeds baseline %.1fms by more than %.0f%%",
				b.Bench, c.FullMS, b.FullMS, tolerance*100))
		}
		// Improvements are informational: they chart the trajectory
		// across the BENCH_PR*.json series (e.g. the packed-word
		// encodings shrinking serial time against a pre-packing
		// baseline) without ever failing the gate.
		if b.SerialMS > 0 && c.SerialMS > 0 && c.SerialMS < b.SerialMS/limit {
			notes = append(notes, fmt.Sprintf(
				"%s: serial time improved %.1fms -> %.1fms (%.2fx)",
				b.Bench, b.SerialMS, c.SerialMS, b.SerialMS/c.SerialMS))
		}
		if b.ParallelMS > 0 && c.ParallelMS > 0 && c.ParallelMS < b.ParallelMS/limit {
			notes = append(notes, fmt.Sprintf(
				"%s: sharded time improved %.1fms -> %.1fms (%.2fx)",
				b.Bench, b.ParallelMS, c.ParallelMS, b.ParallelMS/c.ParallelMS))
		}
	}
	return regressions, notes
}

// WriteShardBenchJSON emits the machine-readable report (indented, one
// trailing newline) — the file CI uploads and BENCH_PR4.json pins.
func WriteShardBenchJSON(w io.Writer, scale int, rows []ShardBenchRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(NewShardBenchReport(scale, rows))
}

// NewShardBenchReport wraps measured rows in the versioned report
// envelope, stamping the machine shape the numbers were taken on.
func NewShardBenchReport(scale int, rows []ShardBenchRow) *ShardBenchReport {
	return &ShardBenchReport{
		Schema:     shardBenchSchema,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      scale,
		Rows:       rows,
	}
}
