package harness

import (
	"fmt"

	"haccrg/internal/bloom"
	"haccrg/internal/core"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// WarpRegroupStudy contrasts warp-aware race reporting (the default)
// with the re-grouping mode of Section III-A, where threads that
// originally belonged to different warps may share one, so HAccRG
// must report races regardless of warp membership. The probe kernel
// makes lanes of one warp write the same shadow granule: warp-aware
// detection stays silent, re-grouping mode reports.
func WarpRegroupStudy() (awareRaces, regroupRaces int, text string, err error) {
	probe := func(warpAware bool) (int, error) {
		opt := core.DefaultOptions()
		opt.Global = false
		opt.DetectStaleL1 = false
		opt.SharedGranularity = 64
		opt.WarpAware = warpAware
		det, err := core.New(opt)
		if err != nil {
			return 0, err
		}
		dev, err := gpu.NewDevice(gpu.TestConfig(), 1<<16, det)
		if err != nil {
			return 0, err
		}
		b := isa.NewBuilder("regroup-probe")
		b.Sreg(1, isa.SregTid)
		b.Muli(2, 1, 4)
		b.St(isa.SpaceShared, 2, 0, 1, 4) // one warp, adjacent words, shared granules at 64B
		b.Exit()
		k := &gpu.Kernel{Name: "regroup-probe", Prog: b.MustBuild(),
			GridDim: 1, BlockDim: 32, SharedBytes: 256}
		if _, err := dev.Launch(k); err != nil {
			return 0, err
		}
		return len(det.Races()), nil
	}
	awareRaces, err = probe(true)
	if err != nil {
		return
	}
	regroupRaces, err = probe(false)
	if err != nil {
		return
	}
	text = fmt.Sprintf(
		"warp-aware (default): %d races reported\nre-grouping mode:     %d races reported\n"+
			"Intra-warp lockstep accesses to one coarse granule are implicitly\n"+
			"ordered, so warp-aware reporting suppresses them; with dynamic warp\n"+
			"re-grouping that guarantee disappears and HAccRG reports them all.\n",
		awareRaces, regroupRaces)
	return
}

// BloomEndToEnd measures, in full simulation rather than analytically,
// how signature size changes lockset detection: many threads update
// one word under *distinct* locks (every pair is a race); small
// signatures alias distinct locks and miss a fraction close to the
// configured layout's alias probability.
func BloomEndToEnd() (string, error) {
	run := func(cfg bloom.Config) (detected int, pairs int, err error) {
		opt := core.DefaultOptions()
		opt.Shared = false
		opt.DetectStaleL1 = false
		opt.Bloom = cfg
		det, err := core.New(opt)
		if err != nil {
			return 0, 0, err
		}
		gcfg := gpu.TestConfig()
		gcfg.Bloom = cfg
		dev, err := gpu.NewDevice(gcfg, 1<<20, det)
		if err != nil {
			return 0, 0, err
		}
		const threads = 64                      // one per block: every pair uses different locks
		locks, err := dev.Malloc(threads * 256) // spread lock addresses
		if err != nil {
			return 0, 0, err
		}
		data, err := dev.Malloc(4)
		if err != nil {
			return 0, 0, err
		}
		b := isa.NewBuilder("bloom-e2e")
		b.Sreg(1, isa.SregCtaid)
		b.Ldp(2, 0) // locks
		b.Ldp(3, 1) // data
		// lock address = locks + ((bid*37) % 256)*4: distinct per block
		// with pseudo-uniform low-order word bits, so signature
		// aliasing follows the layout's analytical rate instead of a
		// stride artifact.
		b.Muli(4, 1, 37)
		b.Remi(4, 4, 256)
		b.Muli(4, 4, 4)
		b.Add(4, 2, 4)
		// Acquire own lock (uncontended: CAS succeeds immediately).
		b.Movi(5, 0)
		b.Movi(6, 1)
		b.Atom(7, isa.AtomCAS, isa.SpaceGlobal, 4, 0, 5, 6)
		b.AcqMark(4)
		b.Ld(8, isa.SpaceGlobal, 3, 0, 4)
		b.Addi(8, 8, 1)
		b.St(isa.SpaceGlobal, 3, 0, 8, 4)
		b.Membar()
		b.RelMark()
		b.Movi(5, 0)
		b.Atom(7, isa.AtomExch, isa.SpaceGlobal, 4, 0, 5, 0)
		b.Exit()
		k := &gpu.Kernel{Name: "bloom-e2e", Prog: b.MustBuild(),
			GridDim: threads, BlockDim: 1, Params: []uint64{locks, data}}
		if _, err := dev.Launch(k); err != nil {
			return 0, 0, err
		}
		// Each successive accessor races with the previous one unless
		// their signatures alias: threads-1 consecutive pairs.
		var reports int64
		reports = det.Stats().Reports
		return int(reports), threads - 1, nil
	}
	var rows [][]string
	prev := -1
	for _, cfg := range []bloom.Config{{SizeBits: 8, Bins: 2}, {SizeBits: 16, Bins: 2}, {SizeBits: 32, Bins: 2}} {
		detected, _, err := run(cfg)
		if err != nil {
			return "", err
		}
		note := ""
		if prev >= 0 && detected < prev {
			note = " (!)"
		}
		prev = detected
		rows = append(rows, []string{
			fmt.Sprintf("%d-bit / %d bins", cfg.SizeBits, cfg.Bins),
			fmt.Sprint(detected) + note,
			fmt.Sprintf("%.2f%%", 100*cfg.AliasProbability()),
		})
	}
	return table([]string{"signature", "dynamic lockset reports", "analytical alias rate"}, rows) +
		"\nLarger signatures distinguish more lock pairs, so detection counts\n" +
		"grow with signature size while the alias (miss) rate shrinks —\n" +
		"the Section VI-A2 trade-off, measured end-to-end in simulation.\n", nil
}

// SyncIDGatingStudy quantifies the paper's optimization of bumping a
// block's sync ID only when it touched global memory since its last
// barrier: without the gate, shared-memory-heavy kernels burn through
// the 8-bit counters far faster.
func SyncIDGatingStudy(scale int) (string, error) {
	benches := []string{"scan", "sortnw", "fwalsh", "reduce"}
	bumpCfg := gpu.DefaultConfig()
	bumpCfg.AlwaysBumpSyncID = true
	cfgs := make([]RunConfig, 0, 2*len(benches))
	for _, bench := range benches {
		cfgs = append(cfgs,
			RunConfig{Bench: bench, Detector: DetSharedGlobal, Scale: scale},
			// RunContext copies the shared config, so the pointer is safe
			// to reuse across concurrent runs.
			RunConfig{Bench: bench, Detector: DetSharedGlobal, Scale: scale, GPU: &bumpCfg})
	}
	results, err := sweepAll(cfgs)
	if err != nil {
		return "", err
	}
	var rows [][]string
	for i, bench := range benches {
		gated, ungated := results[2*i], results[2*i+1]
		rows = append(rows, []string{bench,
			fmt.Sprint(gated.Stats.MaxSyncID),
			fmt.Sprint(ungated.Stats.MaxSyncID),
			fmt.Sprint(gated.Stats.Barriers)})
	}
	return table([]string{"benchmark", "max sync ID (gated)", "max sync ID (every barrier)", "barrier episodes"}, rows), nil
}

// SchedulerStudy compares round-robin warp scheduling (the paper's
// Table I configuration) against greedy-then-oldest across the suite:
// a simulator-credibility ablation showing the engine reacts to
// scheduling policy, with functional results unchanged.
func SchedulerStudy(scale int) (string, error) {
	benches := []string{"mcarlo", "fwalsh", "hist", "sortnw", "reduce", "psum"}
	gtoCfg := gpu.DefaultConfig()
	gtoCfg.Scheduler = gpu.SchedGTO
	cfgs := make([]RunConfig, 0, 2*len(benches))
	for _, bench := range benches {
		cfgs = append(cfgs,
			RunConfig{Bench: bench, Detector: DetOff, Scale: scale},
			RunConfig{Bench: bench, Detector: DetOff, Scale: scale, GPU: &gtoCfg})
	}
	results, err := sweepAll(cfgs)
	if err != nil {
		return "", err
	}
	var rows [][]string
	for i, bench := range benches {
		rr, gto := results[2*i], results[2*i+1]
		if rr.Stats.ThreadInstrs != gto.Stats.ThreadInstrs {
			return "", fmt.Errorf("harness: scheduler changed executed work on %s", bench)
		}
		rows = append(rows, []string{bench,
			fmt.Sprint(rr.Stats.Cycles),
			fmt.Sprint(gto.Stats.Cycles),
			fmt.Sprintf("%.3f", float64(gto.Stats.Cycles)/float64(rr.Stats.Cycles)),
			fmt.Sprintf("%.0f%% / %.0f%%",
				100*rr.Stats.IssueUtilization(), 100*gto.Stats.IssueUtilization()),
		})
	}
	return table([]string{"benchmark", "round-robin cycles", "gto cycles", "gto/rr", "issue util rr/gto"}, rows), nil
}
