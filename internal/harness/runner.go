// Package harness runs the paper's experiments: it sweeps benchmarks
// across detector configurations and regenerates every table and
// figure of the evaluation section (Tables I-IV, Figures 7-9, the
// effectiveness studies of Section VI-A, and the hardware-overhead
// arithmetic of Section VI-C).
package harness

import (
	"fmt"

	"haccrg/internal/core"
	"haccrg/internal/gpu"
	"haccrg/internal/grace"
	"haccrg/internal/isa"
	"haccrg/internal/kernels"
	"haccrg/internal/swdetect"
)

// DetectorKind selects the detection configuration of a run.
type DetectorKind string

// Detector configurations used across the experiments.
const (
	DetOff          DetectorKind = "off"
	DetShared       DetectorKind = "shared"
	DetGlobal       DetectorKind = "global"
	DetSharedGlobal DetectorKind = "shared+global"
	DetFig8         DetectorKind = "shared-shadow-in-global"
	DetSoftware     DetectorKind = "sw-haccrg"
	DetGRace        DetectorKind = "grace-addr"
)

// RunConfig describes one simulation run.
type RunConfig struct {
	Bench    string
	Detector DetectorKind
	Scale    int

	// SharedGranularity / GlobalGranularity override the detector's
	// tracking granularities when non-zero.
	SharedGranularity int
	GlobalGranularity int

	SingleBlock bool
	Inject      []string

	// GPU overrides the device configuration (nil = paper's Table I).
	GPU *gpu.Config
}

// RunResult captures one run's outcome.
type RunResult struct {
	Config RunConfig
	Stats  *gpu.LaunchStats

	Races       []*core.Race
	SharedSites int
	GlobalSites int
	Groups      map[string]int

	DetectorStats core.Stats
	// Software-detector extras (zero for hardware runs).
	InstrStall int64
	LogBytes   int64
}

// detectorFor builds the run's detector; the second return value
// yields the underlying core engine for race extraction (nil for off).
func detectorFor(rc RunConfig) (gpu.Detector, *core.Detector, *swdetect.Detector, *grace.Detector, error) {
	opt := core.DefaultOptions()
	if rc.SharedGranularity > 0 {
		opt.SharedGranularity = rc.SharedGranularity
	}
	if rc.GlobalGranularity > 0 {
		opt.GlobalGranularity = rc.GlobalGranularity
	}
	switch rc.Detector {
	case DetOff, "":
		return gpu.NopDetector{}, nil, nil, nil, nil
	case DetShared:
		opt.Global = false
		opt.DetectStaleL1 = false
	case DetGlobal:
		opt.Shared = false
	case DetSharedGlobal:
		// defaults
	case DetFig8:
		opt.SharedShadowInGlobal = true
	case DetSoftware:
		d, err := swdetect.New(opt, swdetect.DefaultCostModel)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return d, d.Inner(), d, nil, nil
	case DetGRace:
		d, err := grace.New(opt, grace.DefaultCostModel)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return d, nil, nil, d, nil
	default:
		return nil, nil, nil, nil, fmt.Errorf("harness: unknown detector %q", rc.Detector)
	}
	d, err := core.New(opt)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return d, d, nil, nil, nil
}

// Run executes one configuration to completion.
func Run(rc RunConfig) (*RunResult, error) {
	bm := kernels.Get(rc.Bench)
	if bm == nil {
		return nil, fmt.Errorf("harness: unknown benchmark %q", rc.Bench)
	}
	if rc.Scale < 1 {
		rc.Scale = 1
	}
	det, coreDet, swDet, grDet, err := detectorFor(rc)
	if err != nil {
		return nil, err
	}
	cfg := gpu.DefaultConfig()
	if rc.GPU != nil {
		cfg = *rc.GPU
	}
	switch rc.Detector {
	case DetGlobal, DetSharedGlobal, DetFig8:
		// Request packets carry sync, fence and atomic IDs.
		cfg.NoC.RDUMetaEnabled = true
	}
	dev, err := gpu.NewDevice(cfg, bm.GlobalBytes(rc.Scale), det)
	if err != nil {
		return nil, err
	}
	p := kernels.Params{Scale: rc.Scale, SingleBlock: rc.SingleBlock}
	if len(rc.Inject) > 0 {
		p.Inject = make(map[string]bool, len(rc.Inject))
		for _, id := range rc.Inject {
			p.Inject[id] = true
		}
	}
	plan, err := bm.Build(dev, p)
	if err != nil {
		return nil, err
	}
	stats, err := plan.Run(dev)
	if err != nil {
		return nil, err
	}
	res := &RunResult{Config: rc, Stats: stats}
	if coreDet != nil {
		res.Races = coreDet.SortedRaces()
		res.SharedSites = coreDet.SiteCount(isa.SpaceShared)
		res.GlobalSites = coreDet.SiteCount(isa.SpaceGlobal)
		res.Groups = coreDet.RaceGroups()
		res.DetectorStats = coreDet.Stats()
	}
	if swDet != nil {
		res.InstrStall = swDet.InstrStallCycles
	}
	if grDet != nil {
		res.InstrStall = grDet.InstrStallCycles
		res.LogBytes = grDet.LogBytes
		res.Races = grDet.Races()
	}
	return res, nil
}

// MustRun is Run panicking on error (for benchmark harness code paths
// whose configurations are static).
func MustRun(rc RunConfig) *RunResult {
	r, err := Run(rc)
	if err != nil {
		panic(err)
	}
	return r
}

// Verify runs a benchmark without detection and checks its output
// against the host reference (where defined).
func Verify(bench string, scale int, singleBlock bool) error {
	bm := kernels.Get(bench)
	if bm == nil {
		return fmt.Errorf("harness: unknown benchmark %q", bench)
	}
	dev, err := gpu.NewDevice(gpu.DefaultConfig(), bm.GlobalBytes(scale), nil)
	if err != nil {
		return err
	}
	plan, err := bm.Build(dev, kernels.Params{Scale: scale, SingleBlock: singleBlock})
	if err != nil {
		return err
	}
	if _, err := plan.Run(dev); err != nil {
		return err
	}
	if plan.Verify == nil {
		return nil
	}
	return plan.Verify(dev)
}
