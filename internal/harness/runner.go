// Package harness runs the paper's experiments: it sweeps benchmarks
// across detector configurations and regenerates every table and
// figure of the evaluation section (Tables I-IV, Figures 7-9, the
// effectiveness studies of Section VI-A, and the hardware-overhead
// arithmetic of Section VI-C).
package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"haccrg/internal/core"
	"haccrg/internal/fault"
	"haccrg/internal/gpu"
	"haccrg/internal/grace"
	"haccrg/internal/isa"
	"haccrg/internal/journal"
	"haccrg/internal/kernels"
	"haccrg/internal/staticrace"
	"haccrg/internal/swdetect"
	"haccrg/internal/trace"
)

// DetectorKind selects the detection configuration of a run.
type DetectorKind string

// Detector configurations used across the experiments.
const (
	DetOff          DetectorKind = "off"
	DetShared       DetectorKind = "shared"
	DetGlobal       DetectorKind = "global"
	DetSharedGlobal DetectorKind = "shared+global"
	DetFig8         DetectorKind = "shared-shadow-in-global"
	DetSoftware     DetectorKind = "sw-haccrg"
	DetGRace        DetectorKind = "grace-addr"
)

// RunConfig describes one simulation run.
type RunConfig struct {
	Bench    string
	Detector DetectorKind
	Scale    int

	// SharedGranularity / GlobalGranularity override the detector's
	// tracking granularities when non-zero.
	SharedGranularity int
	GlobalGranularity int

	SingleBlock bool
	Inject      []string

	// DetectParallel runs the global-memory RDUs as sharded
	// per-partition engines on their own goroutines (see
	// core.Options.Parallel). Findings are byte-identical to the serial
	// engine; only wall-clock time changes.
	DetectParallel bool

	// DetectParallelShared does the same for the shared-memory RDUs:
	// one engine per SM (see core.Options.ParallelShared). The omitempty
	// tag keeps manifest keys of shared-serial configs stable across
	// versions.
	DetectParallelShared bool `json:"DetectParallelShared,omitempty"`

	// StaticFilter analyzes the plan's kernels with the static race
	// prover (internal/staticrace) and lets the RDUs skip checks at
	// provably race-free sites. Findings and cycle counts stay
	// byte-identical; only check work drops. Hardware detector kinds
	// only. The omitempty tag keeps manifest keys of filter-off configs
	// stable across versions.
	StaticFilter bool `json:"StaticFilter,omitempty"`

	// WitnessSeed pre-seeds detector quarantine with the static
	// analyzer's verified race witnesses (see core.Options.WitnessSeeds):
	// statically-proven racy global granules report on first touch with
	// StaticWitness provenance. Hardware detector kinds only. The
	// omitempty tag keeps manifest keys of seed-off configs stable
	// across versions.
	WitnessSeed bool `json:"WitnessSeed,omitempty"`

	// SentinelEvery arms the core engine's online divergence sentinel:
	// every Nth kernel of a parallel run is cross-checked against a
	// serial reference, and on mismatch the detector degrades to the
	// serial engine with the incident in its health report (see
	// core.Options.SentinelEvery). 0 = off. omitempty keeps manifest
	// keys of sentinel-free configs stable across versions.
	SentinelEvery int `json:"SentinelEvery,omitempty"`

	// GPU overrides the device configuration (nil = paper's Table I).
	GPU *gpu.Config

	// FaultPlan is an internal/fault plan spec (e.g.
	// "queue:cap=16,drain=1;flip:rate=1e-5,ecc"); empty = fault-free.
	FaultPlan string
	// FaultSeed seeds the fault injector: the same plan and seed
	// reproduce the same run byte for byte.
	FaultSeed int64
	// Degradation is the corrupt-granule policy: "quarantine" (default)
	// or "reinit".
	Degradation string

	// MaxCycles bounds each run's simulated cycles (0 = unlimited);
	// exceeding it aborts with a *gpu.HangError.
	MaxCycles int64
	// Timeout is the wall-clock watchdog per run (0 = none).
	Timeout time.Duration
}

// RunResult captures one run's outcome.
type RunResult struct {
	Config RunConfig
	Stats  *gpu.LaunchStats

	Races       []*core.Race
	SharedSites int
	GlobalSites int
	Groups      map[string]int

	DetectorStats core.Stats
	// Software-detector extras (zero for hardware runs).
	InstrStall int64
	LogBytes   int64

	// Health is the detector's degradation report (nil when the
	// detector does not track health, e.g. detection off).
	Health *gpu.DetectorHealth
	// Attempts is how many tries the sweep runner needed (1 for a
	// first-try success; only fault-injected runs are retried).
	Attempts int

	// Report is the machine-readable detection summary (nil when
	// detection is off). It is derived state — excluded from the
	// manifest encoding, so resumed results carry a nil Report while
	// every serialized field stays byte-identical.
	Report *core.Report `json:"-"`
	// TraceRec is the recorded event timeline (nil unless
	// ExecOptions.Trace); like Report it is in-process state only.
	TraceRec *trace.Recorder `json:"-"`
}

// detectorFor builds the run's detector; the second return value
// yields the underlying core engine for race extraction (nil for off).
func detectorFor(rc RunConfig) (gpu.Detector, *core.Detector, *swdetect.Detector, *grace.Detector, error) {
	opt := core.DefaultOptions()
	if rc.SharedGranularity > 0 {
		opt.SharedGranularity = rc.SharedGranularity
	}
	if rc.GlobalGranularity > 0 {
		opt.GlobalGranularity = rc.GlobalGranularity
	}
	opt.Parallel = rc.DetectParallel
	opt.ParallelShared = rc.DetectParallelShared
	opt.SentinelEvery = rc.SentinelEvery
	if rc.FaultPlan != "" {
		p, err := fault.Parse(rc.FaultPlan)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		opt.Fault = p
		opt.FaultSeed = rc.FaultSeed
	}
	switch rc.Degradation {
	case "", "quarantine":
		opt.Degradation = core.DegradeQuarantine
	case "reinit":
		opt.Degradation = core.DegradeReinit
	default:
		return nil, nil, nil, nil, fmt.Errorf("harness: unknown degradation policy %q (want quarantine or reinit)", rc.Degradation)
	}
	switch rc.Detector {
	case DetOff, "":
		return gpu.NopDetector{}, nil, nil, nil, nil
	case DetShared:
		opt.Global = false
		opt.DetectStaleL1 = false
	case DetGlobal:
		opt.Shared = false
	case DetSharedGlobal:
		// defaults
	case DetFig8:
		opt.SharedShadowInGlobal = true
	case DetSoftware:
		d, err := swdetect.New(opt, swdetect.DefaultCostModel)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return d, d.Inner(), d, nil, nil
	case DetGRace:
		d, err := grace.New(opt, grace.DefaultCostModel)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return d, nil, nil, d, nil
	default:
		return nil, nil, nil, nil, fmt.Errorf("harness: unknown detector %q", rc.Detector)
	}
	d, err := core.New(opt)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return d, d, nil, nil, nil
}

// DetectorFor builds the detector a configuration would run under —
// how the replay tool reconstructs a recorded run's detector (or a
// deliberately different one) without a device attached.
func DetectorFor(rc RunConfig) (gpu.Detector, error) {
	det, _, _, _, err := detectorFor(rc)
	return det, err
}

// Run executes one configuration to completion. It is RunContext with
// no external cancellation (the config's own Timeout still applies).
func Run(rc RunConfig) (*RunResult, error) {
	return RunContext(context.Background(), rc)
}

// RunContext executes one configuration under a context. The config's
// Timeout (wall clock) and MaxCycles (simulated) guard rails turn
// runaway simulations into structured *gpu.HangError returns; a panic
// anywhere in the pipeline is recovered into an error so one bad run
// cannot take down a whole sweep. On an aborted launch the returned
// RunResult is non-nil alongside the error, carrying the partial stats
// and whatever races were found before the abort.
func RunContext(ctx context.Context, rc RunConfig) (*RunResult, error) {
	return ExecContext(ctx, rc, ExecOptions{})
}

// ExecOptions carries the per-run extras that are not part of a
// RunConfig's serializable identity: the facade's arbitrary detector
// options, output verification, event tracing, and journal recording.
// Every execution path in the system — the haccrg facade, the five
// CLIs, the experiment sweeps, and the haccrg-server job workers —
// funnels through ExecContext with some ExecOptions, so they all run
// the exact same job core.
type ExecOptions struct {
	// Detection, when non-nil, builds the detector from these explicit
	// core options instead of deriving them from rc.Detector (the
	// facade path, which admits configurations — custom Bloom layouts,
	// shared-shadow-in-global with odd granularities — that no
	// DetectorKind names). rc's FaultPlan/FaultSeed, Degradation and
	// DetectParallel/DetectParallelShared are still merged in.
	Detection *core.Options
	// Verify checks kernel output against the host reference where the
	// benchmark defines one.
	Verify bool
	// Trace records an event timeline alongside the run (returned as
	// RunResult.TraceRec).
	Trace bool
	// Record writes a durable event journal of the run in the
	// internal/journal frame format (nil = no journal).
	Record io.Writer
}

// execDetector builds the run's detector from explicit core options,
// merging the RunConfig's fault/degradation/parallel knobs exactly as
// detectorFor does for kind-derived runs.
func execDetector(rc RunConfig, opt core.Options) (*core.Detector, error) {
	if rc.DetectParallel {
		opt.Parallel = true
	}
	if rc.DetectParallelShared {
		opt.ParallelShared = true
	}
	if rc.SentinelEvery > 0 {
		opt.SentinelEvery = rc.SentinelEvery
	}
	if rc.FaultPlan != "" {
		p, err := fault.Parse(rc.FaultPlan)
		if err != nil {
			return nil, err
		}
		opt.Fault = p
		opt.FaultSeed = rc.FaultSeed
	}
	switch rc.Degradation {
	case "", "quarantine":
		opt.Degradation = core.DegradeQuarantine
	case "reinit":
		opt.Degradation = core.DegradeReinit
	default:
		return nil, fmt.Errorf("harness: unknown degradation policy %q (want quarantine or reinit)", rc.Degradation)
	}
	return core.New(opt)
}

// execMeta describes a run for the journal header so replay can
// rebuild an equivalent detector without out-of-band knowledge.
func execMeta(rc RunConfig, coreDet *core.Detector) *journal.Meta {
	m := &journal.Meta{
		Bench: rc.Bench, Detector: string(rc.Detector),
		Scale: rc.Scale, SingleBlock: rc.SingleBlock, Inject: rc.Inject,
		FaultPlan: rc.FaultPlan, FaultSeed: rc.FaultSeed, Degradation: rc.Degradation,
	}
	if m.Detector == "" {
		m.Detector = string(DetOff)
	}
	if coreDet != nil {
		m.SharedGranularity = coreDet.Options().SharedGranularity
		m.GlobalGranularity = coreDet.Options().GlobalGranularity
	}
	return m
}

// ExecContext is the shared job core: it executes one configuration
// under a context with the given extras. See RunContext for the
// guard-rail and partial-result semantics.
func ExecContext(ctx context.Context, rc RunConfig, xo ExecOptions) (res *RunResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("harness: run %s/%s panicked: %v", rc.Bench, rc.Detector, r)
		}
	}()
	bm := kernels.Get(rc.Bench)
	if bm == nil {
		return nil, fmt.Errorf("harness: unknown benchmark %q", rc.Bench)
	}
	if rc.Scale < 1 {
		rc.Scale = 1
	}
	var (
		det     gpu.Detector
		coreDet *core.Detector
		swDet   *swdetect.Detector
		grDet   *grace.Detector
	)
	if xo.Detection != nil {
		d, derr := execDetector(rc, *xo.Detection)
		if derr != nil {
			return nil, derr
		}
		det, coreDet = d, d
	} else {
		det, coreDet, swDet, grDet, err = detectorFor(rc)
		if err != nil {
			return nil, err
		}
	}
	var traceRec *trace.Recorder
	if xo.Trace {
		traceRec = trace.New(det)
		det = traceRec
	}
	var jrec *journal.Recorder
	if xo.Record != nil {
		// Journal outermost so it sees the raw device event stream
		// before any inner wrapper consumes it.
		jr, jerr := journal.NewRecorder(xo.Record, det)
		if jerr != nil {
			return nil, jerr
		}
		if jerr := jr.SetMeta(execMeta(rc, coreDet)); jerr != nil {
			return nil, jerr
		}
		jrec = jr
		det = jr
	}
	cfg := gpu.DefaultConfig()
	if rc.GPU != nil {
		cfg = *rc.GPU
	}
	if xo.Detection != nil {
		// Request packets carry sync, fence and atomic IDs whenever the
		// global-memory RDUs are on — same rule as the kind switch below.
		if o := coreDet.Options(); o.Global || o.SharedShadowInGlobal {
			cfg.NoC.RDUMetaEnabled = true
		}
	} else {
		switch rc.Detector {
		case DetGlobal, DetSharedGlobal, DetFig8:
			// Request packets carry sync, fence and atomic IDs.
			cfg.NoC.RDUMetaEnabled = true
		}
	}
	dev, err := gpu.NewDevice(cfg, bm.GlobalBytes(rc.Scale), det)
	if err != nil {
		return nil, err
	}
	p := kernels.Params{Scale: rc.Scale, SingleBlock: rc.SingleBlock}
	if len(rc.Inject) > 0 {
		p.Inject = make(map[string]bool, len(rc.Inject))
		for _, id := range rc.Inject {
			p.Inject[id] = true
		}
	}
	plan, err := bm.Build(dev, p)
	if err != nil {
		return nil, err
	}
	if rc.StaticFilter || rc.WitnessSeed {
		if xo.Detection == nil {
			switch rc.Detector {
			case DetShared, DetGlobal, DetSharedGlobal, DetFig8:
			default:
				return nil, fmt.Errorf("harness: static filter requires a hardware HAccRG detector, got %q", rc.Detector)
			}
		}
		if coreDet == nil {
			return nil, fmt.Errorf("harness: static filter requires a hardware HAccRG detector")
		}
		sconf := staticrace.Config{
			WarpSize:          cfg.WarpSize,
			SharedGranularity: coreDet.Options().SharedGranularity,
			GlobalGranularity: coreDet.Options().GlobalGranularity,
			WarpAware:         coreDet.Options().WarpAware,
		}
		f, err := staticrace.NewFilter(sconf, plan.Kernels...)
		if err != nil {
			return nil, fmt.Errorf("harness: static analysis of %s: %w", rc.Bench, err)
		}
		if rc.StaticFilter {
			coreDet.SetStaticFilter(f)
		}
		if rc.WitnessSeed {
			coreDet.SetWitnessSeeds(witnessSeeder{f})
		}
	}
	if rc.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rc.Timeout)
		defer cancel()
	}
	stats, runErr := plan.RunContext(ctx, dev, gpu.LaunchLimits{MaxCycles: rc.MaxCycles})
	if stats == nil {
		return nil, runErr
	}
	if runErr == nil && xo.Verify && plan.Verify != nil {
		if err := plan.Verify(dev); err != nil {
			return nil, err
		}
	}
	res = &RunResult{Config: rc, Stats: stats, Health: stats.Health, Attempts: 1, TraceRec: traceRec}
	if coreDet != nil {
		res.Races = coreDet.SortedRaces()
		res.SharedSites = coreDet.SiteCount(isa.SpaceShared)
		res.GlobalSites = coreDet.SiteCount(isa.SpaceGlobal)
		res.Groups = coreDet.RaceGroups()
		res.DetectorStats = coreDet.Stats()
		res.Report = coreDet.Report()
	}
	if swDet != nil {
		res.InstrStall = swDet.InstrStallCycles
	}
	if grDet != nil {
		res.InstrStall = grDet.InstrStallCycles
		res.LogBytes = grDet.LogBytes
		res.Races = grDet.Races()
	}
	// A journal write failure never aborts the simulation (the detector
	// interface has no error path), but it must not pass silently: the
	// run succeeded, the recording did not.
	if runErr == nil && jrec != nil && jrec.Err() != nil {
		return res, fmt.Errorf("harness: journal recording failed: %w", jrec.Err())
	}
	return res, runErr
}

// MustRun is Run panicking on error (kept for static test setups; the
// CLIs report errors through exit codes instead).
func MustRun(rc RunConfig) *RunResult {
	r, err := Run(rc)
	if err != nil {
		panic(err)
	}
	return r
}

// SweepDefaults are fault/guard-rail settings merged into every
// experiment sweep run whose own config leaves them unset — how the
// CLIs thread -fault-plan/-seed/-timeout/-max-cycles through the
// prebuilt experiment drivers.
type SweepDefaults struct {
	FaultPlan   string
	FaultSeed   int64
	Degradation string
	MaxCycles   int64
	Timeout     time.Duration
}

var sweepDefaults SweepDefaults

// SetSweepDefaults installs the process-wide sweep defaults.
func SetSweepDefaults(d SweepDefaults) { sweepDefaults = d }

// WithSweepDefaults returns rc with the process-wide sweep defaults
// merged in — the form under which the sweep engine keys manifests.
// Callers that inspect a manifest directly (e.g. the haccrg-server
// resume path asking which runs a checkpoint already holds) must look
// up this canonical form, not the raw config.
func WithSweepDefaults(rc RunConfig) RunConfig { return applySweepDefaults(rc) }

func applySweepDefaults(rc RunConfig) RunConfig {
	if rc.FaultPlan == "" {
		rc.FaultPlan = sweepDefaults.FaultPlan
		if rc.FaultSeed == 0 {
			rc.FaultSeed = sweepDefaults.FaultSeed
		}
	}
	if rc.Degradation == "" {
		rc.Degradation = sweepDefaults.Degradation
	}
	if rc.MaxCycles == 0 {
		rc.MaxCycles = sweepDefaults.MaxCycles
	}
	if rc.Timeout == 0 {
		rc.Timeout = sweepDefaults.Timeout
	}
	return rc
}

// sweepRetries bounds sweepRun's attempts per configuration.
const sweepRetries = 3

// sweepRun is the experiment drivers' Run: it merges the process-wide
// sweep defaults and retries failed fault-injected runs with backoff
// under a salted seed (a different fault sequence each attempt). A
// fault-free simulation is deterministic, so its failures are not
// retried — they would fail identically.
func sweepRun(rc RunConfig) (*RunResult, error) {
	return sweepRunCtx(baseSweepContext(), rc)
}

// sweepRunCtx is sweepRun under a context: cancellation cuts both the
// in-flight simulation (through RunContext) and the retry backoff, so
// a failed sweep winds down promptly instead of finishing doomed runs.
// When a sweep manifest is installed, configurations it already holds
// are served from it without re-simulation, and each fresh completion
// is appended (and synced) before being returned — the crash-safe
// resume contract.
func sweepRunCtx(ctx context.Context, rc RunConfig) (*RunResult, error) {
	return sweepRunManifest(ctx, rc, ActiveManifest())
}

// cancelErr wraps a cancellation observed during the retry loop so the
// caller classifies the run as an interruption casualty — errors.Is
// reports context.Canceled (or DeadlineExceeded) — while still naming
// the last real failure the retries were fighting.
func cancelErr(ctx context.Context, rc RunConfig, attempt int, lastErr error) error {
	if lastErr == nil {
		return ctx.Err()
	}
	return fmt.Errorf("harness: run %s/%s interrupted after %d attempt(s) (last error: %v): %w",
		rc.Bench, rc.Detector, attempt, lastErr, ctx.Err())
}

// sweepRunManifest is sweepRunCtx against an explicit manifest (nil =
// no manifest) — the entry point for callers like the haccrg-server
// job workers that run several manifest-backed sweeps concurrently in
// one process and cannot share the global ActiveManifest.
func sweepRunManifest(ctx context.Context, rc RunConfig, manifest *Manifest) (*RunResult, error) {
	rc = applySweepDefaults(rc)
	if manifest != nil {
		if res, ok := manifest.Lookup(rc); ok {
			return res, nil
		}
	}
	requested := rc // manifest key: before any retry re-seeding
	var lastErr error
	for attempt := 1; attempt <= sweepRetries; attempt++ {
		// A cancellation that landed between runs (or during a previous
		// attempt) ends the retry budget immediately: the sweep is
		// winding down to resumable state, not fighting for a result.
		if ctx.Err() != nil {
			return nil, cancelErr(ctx, rc, attempt-1, lastErr)
		}
		if attempt > 1 {
			rc.FaultSeed += 1_000_003 // salt: explore a different sequence
			select {
			case <-ctx.Done():
				return nil, cancelErr(ctx, rc, attempt-1, lastErr)
			case <-time.After(time.Duration(attempt-1) * 50 * time.Millisecond):
			}
		}
		sweepExecutions.Add(1)
		res, err := ExecContext(ctx, rc, ExecOptions{})
		if err == nil {
			res.Attempts = attempt
			if manifest != nil {
				// A manifest append failure is a journal I/O error:
				// retrying the simulation cannot fix the disk, so it is
				// returned as-is (and classified non-retryable below).
				if aerr := manifest.Append(requested, res); aerr != nil {
					return nil, aerr
				}
			}
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, cancelErr(ctx, rc, attempt, lastErr)
		}
		if rc.FaultPlan == "" || journal.IsIO(err) {
			break
		}
	}
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	return nil, lastErr
}

// Verify runs a benchmark without detection and checks its output
// against the host reference (where defined).
func Verify(bench string, scale int, singleBlock bool) error {
	bm := kernels.Get(bench)
	if bm == nil {
		return fmt.Errorf("harness: unknown benchmark %q", bench)
	}
	dev, err := gpu.NewDevice(gpu.DefaultConfig(), bm.GlobalBytes(scale), nil)
	if err != nil {
		return err
	}
	plan, err := bm.Build(dev, kernels.Params{Scale: scale, SingleBlock: singleBlock})
	if err != nil {
		return err
	}
	if _, err := plan.Run(dev); err != nil {
		return err
	}
	if plan.Verify == nil {
		return nil
	}
	return plan.Verify(dev)
}

// witnessSeeder adapts the static analyzer's verified global race
// witnesses to core.WitnessSeeder (the adapter lives here because
// staticrace must not import core).
type witnessSeeder struct{ f *staticrace.Filter }

func (s witnessSeeder) WitnessSeeds(kernel string) []core.SeedWitness {
	var out []core.SeedWitness
	for _, w := range s.f.RaceSeeds(kernel) {
		out = append(out, core.SeedWitness{
			Space:   isa.SpaceGlobal,
			Granule: w.Granule,
			Class:   w.Class,
			PC:      w.PC, PC2: w.PC2,
			Block: w.Block, Tid: w.Tid,
			Block2: w.Block2, Tid2: w.Tid2,
		})
	}
	return out
}
