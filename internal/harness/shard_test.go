package harness

import (
	"fmt"
	"testing"
)

// diffShardedSerial runs one configuration under both global-RDU
// engines and requires byte-identical outcomes: the sharded engine's
// determinism contract is exact equality, not fingerprint equality —
// race order, dynamic counts, cycle counts, detector stats and health
// accounting all included.
func diffShardedSerial(t *testing.T, label string, rc RunConfig) {
	t.Helper()
	rc.DetectParallel = false
	serial, err := Run(rc)
	if err != nil {
		t.Fatalf("%s serial: %v", label, err)
	}
	rc.DetectParallel = true
	sharded, err := Run(rc)
	if err != nil {
		t.Fatalf("%s sharded: %v", label, err)
	}
	if a, b := len(serial.Races), len(sharded.Races); a != b {
		t.Fatalf("%s: serial found %d race(s), sharded %d", label, a, b)
	}
	for i := range serial.Races {
		if a, b := serial.Races[i].String(), sharded.Races[i].String(); a != b {
			t.Errorf("%s race %d:\nserial  %s\nsharded %s", label, i, a, b)
		}
		if a, b := serial.Races[i].Count, sharded.Races[i].Count; a != b {
			t.Errorf("%s race %d: dynamic count %d vs %d", label, i, a, b)
		}
	}
	if serial.DetectorStats != sharded.DetectorStats {
		t.Errorf("%s detector stats diverged:\nserial  %+v\nsharded %+v",
			label, serial.DetectorStats, sharded.DetectorStats)
	}
	if serial.Stats.Cycles != sharded.Stats.Cycles {
		t.Errorf("%s: cycles %d vs %d — the sharded engine must not perturb timing",
			label, serial.Stats.Cycles, sharded.Stats.Cycles)
	}
	ha, hb := fmt.Sprintf("%+v", serial.Health), fmt.Sprintf("%+v", sharded.Health)
	if serial.Health != nil && sharded.Health != nil {
		ha, hb = fmt.Sprintf("%+v", *serial.Health), fmt.Sprintf("%+v", *sharded.Health)
	}
	if ha != hb {
		t.Errorf("%s health diverged:\nserial  %s\nsharded %s", label, ha, hb)
	}
}

// TestShardedRDUMatchesSerial is the differential acceptance sweep for
// the sharded per-partition engine: kernels × fault plans ×
// degradation policies, every outcome byte-identical to the serial
// engine. The fault plans force the shard-local injector streams
// (admission, flips, stuck cells) and the degradation policies force
// the quarantine/reinit paths through the per-partition state.
func TestShardedRDUMatchesSerial(t *testing.T) {
	plans := []struct{ label, plan string }{
		{"fault-free", ""},
		{"queue+flip", "queue:cap=8,drain=1;flip:rate=2e-4"},
		{"stuck-ecc", "stuck:perki=32,ecc"},
	}
	for _, bench := range []string{"scan", "psum", "hash", "reduce"} {
		for _, pl := range plans {
			for _, degr := range []string{"quarantine", "reinit"} {
				if pl.plan == "" && degr == "reinit" {
					continue // no faults: the policy is never consulted
				}
				label := fmt.Sprintf("%s/%s/%s", bench, pl.label, degr)
				diffShardedSerial(t, label, RunConfig{
					Bench: bench, Detector: DetSharedGlobal, GPU: testGPU(),
					FaultPlan: pl.plan, FaultSeed: 7, Degradation: degr,
				})
			}
		}
	}
}

// TestShardedRDUMatchesSerialRacy extends the differential sweep to
// runs that actually report races — injected defects covering each
// detection mechanism the shards replicate: missing barrier
// (happens-before machine), missing fence (the fence-ID mirror), and
// a dummy critical section (the lockset path).
func TestShardedRDUMatchesSerialRacy(t *testing.T) {
	sites := []struct {
		id          string
		singleBlock bool
	}{
		{"scan.bar0", true},
		{"psum.fence0", false},
		{"hash.crit0", false},
	}
	for _, s := range sites {
		rc := RunConfig{
			Bench: benchOf(s.id), Detector: DetSharedGlobal, GPU: testGPU(),
			SharedGranularity: 4, GlobalGranularity: 4,
			Inject: []string{s.id}, SingleBlock: s.singleBlock,
		}
		diffShardedSerial(t, s.id, rc)
		rc.DetectParallel = true
		res, err := Run(rc)
		if err != nil {
			t.Fatalf("%s: %v", s.id, err)
		}
		if len(res.Races) == 0 {
			t.Errorf("%s: injected defect produced no races under the sharded engine", s.id)
		}
	}
}

func benchOf(injectID string) string {
	for i := range injectID {
		if injectID[i] == '.' {
			return injectID[:i]
		}
	}
	return injectID
}
