package kernels

import (
	"fmt"
	"sort"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// SORTNW: bitonic sorting network over per-block tiles in shared
// memory. Each block loads 2*blockDim keys, runs the full bitonic
// schedule (size doubling, stride halving) with a barrier between
// steps, and stores the sorted tile back. Tiles are independent, so a
// correct run has no races at all.
const (
	snBlockDim = 128
	snTile     = 2 * snBlockDim
	snTiles    = 8 // per Scale unit
)

func init() {
	register(&Benchmark{
		Name:  "sortnw",
		Desc:  "bitonic sorting network (CUDA SDK sortingNetworks)",
		Input: fmt.Sprintf("%d keys in %d tiles of %d", snTile*snTiles, snTiles, snTile),
		Sites: []Site{
			{ID: "sortnw.bar0", Kind: InjRemoveBarrier, Desc: "barrier after the tile load"},
			{ID: "sortnw.bar1", Kind: InjRemoveBarrier, Desc: "barrier between compare-exchange steps"},
			{ID: "sortnw.bar2", Kind: InjRemoveBarrier, Desc: "barrier before the tile store"},
			{ID: "sortnw.dummy0", Kind: InjDummyCross, Desc: "cross-block store after the tile store"},
		},
		GlobalBytes: func(scale int) int { return snTile*snTiles*scale*4 + dummyBytes + 4096 },
		Build:       buildSortnw,
	})
}

func buildSortnw(d *gpu.Device, p Params) (*Plan, error) {
	tiles := snTiles * p.scale()
	n := snTile * tiles
	data, err := d.Malloc(n * 4)
	if err != nil {
		return nil, err
	}
	dummy, err := d.Malloc(dummyBytes)
	if err != nil {
		return nil, err
	}
	host := make([]uint32, n)
	x := uint32(99)
	for i := 0; i < n; i++ {
		x = x*1664525 + 1013904223
		host[i] = x % 10000
		d.Global.SetU32(int(data)/4+i, host[i])
	}

	prog := memoProgram("sortnw", &p, func() *isa.Program {
		b := isa.NewBuilder("sortnw")
		preamble(b)
		b.Ldp(rA, 0)
		b.Muli(rB, rBid, int64(snTile*4))
		b.Add(rA, rA, rB) // tile base
		for _, off := range []int64{0, int64(snBlockDim)} {
			b.Addi(rC, rTid, off)
			b.Muli(rD, rC, 4)
			b.Add(rE, rA, rD)
			b.Ld(rF, isa.SpaceGlobal, rE, 0, 4)
			b.St(isa.SpaceShared, rD, 0, rF, 4)
		}
		bar(b, &p, "sortnw.bar0")

		// for size = 2; size <= tile; size <<= 1
		//   for stride = size/2; stride >= 1; stride >>= 1
		//     compare-exchange (one pair per thread), barrier
		b.Movi(rI, 2) // size
		b.Setpi(0, isa.CmpLE, rI, snTile)
		b.While(0)
		b.Shri(rJ, rI, 1) // stride
		b.Setpi(1, isa.CmpGE, rJ, 1)
		b.While(1)
		// pos = 2*stride*(tid/stride) + tid%stride
		b.Div(rC, rTid, rJ)
		b.Mul(rC, rC, rJ)
		b.Muli(rC, rC, 2)
		b.Rem(rD, rTid, rJ)
		b.Add(rC, rC, rD) // pos
		// ascending = ((pos & size) == 0)
		b.And(rE, rC, rI)
		b.Setpi(2, isa.CmpEQ, rE, 0)
		b.Muli(rD, rC, 4)
		b.Muli(rE, rJ, 4)
		b.Add(rE, rD, rE)
		b.Ld(rF, isa.SpaceShared, rD, 0, 4) // a
		b.Ld(rG, isa.SpaceShared, rE, 0, 4) // b
		// keep = asc ? min : max ; other = asc ? max : min
		b.Min(rH, rF, rG)
		b.Max(rK, rF, rG)
		b.Selp(rL, 2, rH, rK)
		b.Selp(rM, 2, rK, rH)
		b.St(isa.SpaceShared, rD, 0, rL, 4)
		b.St(isa.SpaceShared, rE, 0, rM, 4)
		// Inter-step barrier, skipped after the very last step of the
		// schedule (the pre-store barrier covers that one) so that both
		// barriers order real cross-warp dependences. The skip condition
		// is uniform across the block.
		b.Setpi(3, isa.CmpEQ, rI, snTile)
		b.Setpi(4, isa.CmpEQ, rJ, 1)
		b.Movi(rN, 0)
		b.Movi(rO, 1)
		b.Selp(rP, 3, rO, rN)
		b.Selp(rN, 4, rP, rN)
		b.Setpi(5, isa.CmpEQ, rN, 0)
		b.If(5)
		bar(b, &p, "sortnw.bar1")
		b.EndIf()
		b.Shri(rJ, rJ, 1)
		b.Setpi(1, isa.CmpGE, rJ, 1)
		b.EndWhile()
		b.Shli(rI, rI, 1)
		b.Setpi(0, isa.CmpLE, rI, snTile)
		b.EndWhile()
		bar(b, &p, "sortnw.bar2")

		for _, off := range []int64{0, int64(snBlockDim)} {
			b.Addi(rC, rTid, off)
			b.Muli(rD, rC, 4)
			b.Ld(rF, isa.SpaceShared, rD, 0, 4)
			b.Add(rE, rA, rD)
			b.St(isa.SpaceGlobal, rE, 0, rF, 4)
		}
		dummyCross(b, &p, "sortnw.dummy0", 1)
		b.Exit()
		return b.MustBuild()
	})

	k := &gpu.Kernel{
		Name: "sortnw", Prog: prog,
		GridDim: tiles, BlockDim: snBlockDim,
		SharedBytes: snTile * 4,
		Params:      []uint64{data, dummy},
	}
	verify := func(d *gpu.Device) error {
		for t := 0; t < tiles; t++ {
			want := make([]uint32, snTile)
			copy(want, host[t*snTile:(t+1)*snTile])
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := 0; i < snTile; i++ {
				if got := d.Global.U32(int(data)/4 + t*snTile + i); got != want[i] {
					return fmt.Errorf("sortnw: tile %d elem %d = %d, want %d", t, i, got, want[i])
				}
			}
		}
		return nil
	}
	return &Plan{Kernels: []*gpu.Kernel{k}, AppBytes: n * 4, Verify: verify}, nil
}
