package kernels

import (
	"fmt"
	"math"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// OFFT: the spectrum-generation stage of an FFT-based ocean-surface
// simulation over a W x H mesh. Each thread computes the spectrum
// value for its mesh point from wave parameters (a strided shared
// staging step models twiddle-factor handling — the stride is what
// makes OFFT the outlier of Figure 8) and writes out[y*W + x].
//
// Documented bug (Section VI-A): threads in column 0 also fill the
// conjugate "wrap" entry, but the mirror index is computed as W - x
// instead of (W - x) % W, so for x == 0 it lands on (y+1)*W — the
// primary output of a *different* thread. The wrap fill reads the slot
// before accumulating into it, producing the write-after-read race the
// paper reports.
const (
	ofMeshW    = 64
	ofMeshH    = 32 // rows per Scale unit
	ofBlockDim = 64
	ofStride   = 9 // words between staged twiddle entries (bank-friendly, granule-hostile)
)

func init() {
	register(&Benchmark{
		Name:  "offt",
		Desc:  "ocean simulation spectrum generation (CUDA SDK oceanFFT), with its address-calculation bug",
		Input: fmt.Sprintf("mesh %dx%d", ofMeshW, ofMeshH),
		Sites: []Site{
			{ID: "offt.bar0", Kind: InjRemoveBarrier, Desc: "barrier after staging twiddles in shared"},
			{ID: "offt.bar1", Kind: InjRemoveBarrier, Desc: "barrier between the two twiddle staging passes"},
			{ID: "offt.dummy0", Kind: InjDummyCross, Desc: "cross-block store after the spectrum store"},
		},
		GlobalBytes: func(scale int) int {
			n := ofMeshW * ofMeshH * scale
			return n*4*2 + ofMeshW*scale*4 + dummyBytes + 4096
		},
		Build: buildOfft,
	})
}

func buildOfft(d *gpu.Device, p Params) (*Plan, error) {
	h := ofMeshH * p.scale()
	n := ofMeshW * h
	in, err := d.Malloc(n * 4)
	if err != nil {
		return nil, err
	}
	out, err := d.Malloc((n + ofMeshW) * 4) // slack for the buggy wrap writes
	if err != nil {
		return nil, err
	}
	dummy, err := d.Malloc(dummyBytes)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		d.Global.SetF32(int(in)/4+i, float32(i%17)*0.25)
	}

	tileWords := int64(ofBlockDim * ofStride)
	prog := memoProgram("offt", &p, func() *isa.Program {
		b := isa.NewBuilder("offt")
		preamble(b)
		// Stage "twiddle" values into shared with a 9-word stride: thread
		// t writes shared[t*stride] and, after the barrier, reads its
		// neighbour's entry shared[((t+1)%dim)*stride] — bank-conflict-free
		// but scattered across shadow granules, which is what makes OFFT
		// the Figure 8 outlier.
		b.Muli(rA, rTid, ofStride)
		b.Remi(rA, rA, tileWords)
		b.Muli(rA, rA, 4)
		b.ItoF(rB, rTid)
		b.StF(isa.SpaceShared, rA, 0, rB)
		bar(b, &p, "offt.bar0")
		b.Addi(rO, rTid, 1)
		b.Remi(rO, rO, ofBlockDim)
		b.Muli(rO, rO, ofStride)
		b.Muli(rO, rO, 4)
		b.LdF(rC, isa.SpaceShared, rO, 0) // neighbour's staged value
		b.Bar()                           // the second pass overwrites slots other threads just read
		// Second staging pass: accumulate the neighbour value into this
		// thread's slot, then read the next neighbour after a barrier.
		b.StF(isa.SpaceShared, rA, 0, rC)
		bar(b, &p, "offt.bar1")
		b.Addi(rO, rTid, 17)
		b.Remi(rO, rO, ofBlockDim)
		b.Muli(rO, rO, ofStride)
		b.Muli(rO, rO, 4)
		b.LdF(rP, isa.SpaceShared, rO, 0)
		b.FAdd(rC, rC, rP)

		// Spectrum value: v = sin(w*k) * exp(-k/64) + staged, over the
		// wave parameter w = in[gtid].
		b.Ldp(rD, 0)
		b.Muli(rE, rGtid, 4)
		b.Add(rD, rD, rE)
		b.LdF(rF, isa.SpaceGlobal, rD, 0)
		b.ItoF(rG, rGtid)
		b.MovF(rH, 1.0/64.0)
		b.FMul(rH, rG, rH)
		b.FMul(rI, rF, rG)
		b.FSin(rI, rI)
		b.MovF(rJ, -1.0)
		b.FMul(rH, rH, rJ)
		b.FExp(rH, rH)
		b.FMul(rI, rI, rH)
		b.FAdd(rI, rI, rC)
		// out[y*W + x] = v, where y*W + x == gtid.
		b.Ldp(rK, 1)
		b.Muli(rE, rGtid, 4)
		b.Add(rL, rK, rE)
		b.StF(isa.SpaceGlobal, rL, 0, rI)
		dummyCross(b, &p, "offt.dummy0", 2)

		// Wrap fill for column 0: mirror = y*W + (W - x). For x == 0 that
		// is (y+1)*W — another thread's primary slot. The fill accumulates
		// (read-modify-write), so the collision is a WAR then WAW.
		b.Remi(rM, rGtid, ofMeshW) // x
		b.Setpi(0, isa.CmpEQ, rM, 0)
		b.If(0)
		b.Divi(rN, rGtid, ofMeshW) // y
		b.Muli(rN, rN, ofMeshW)
		b.Addi(rN, rN, ofMeshW) // y*W + (W - 0)  <- the bug: not mod W
		b.Muli(rN, rN, 4)
		b.Add(rN, rK, rN)
		b.Note("wrap-entry read at y*W + (W-x): miscalculated mirror index")
		b.LdF(rE, isa.SpaceGlobal, rN, 0)
		b.FAdd(rE, rE, rI)
		b.Note("wrap-entry write collides with the next row's spectrum store")
		b.StF(isa.SpaceGlobal, rN, 0, rE)
		b.EndIf()
		b.Exit()
		return b.MustBuild()
	})

	k := &gpu.Kernel{
		Name: "offt", Prog: prog,
		GridDim: n / ofBlockDim, BlockDim: ofBlockDim,
		SharedBytes: int(tileWords) * 4,
		Params:      []uint64{in, out, dummy},
	}
	// Partial verification: the documented bug only corrupts column-0
	// slots (the wrap targets at (y+1)*W); every other output is
	// deterministic and must match the host computation exactly.
	verify := func(d *gpu.Device) error {
		for gtid := 0; gtid < n; gtid++ {
			if gtid%ofMeshW == 0 {
				continue // wrap-write target or producer: race-dependent
			}
			tid := gtid % ofBlockDim
			// Staged twiddle contribution: neighbours' pass-2 values.
			c1 := float64((tid + 1) % ofBlockDim)
			c2 := float64((tid + 18) % ofBlockDim)
			rc := c1 + c2
			w := float64(float32(gtid%17) * 0.25)
			g := float64(gtid)
			v := math.Sin(w*g)*math.Exp(-(g*(1.0/64.0))) + rc
			want := float32(v)
			if got := d.Global.F32(int(out)/4 + gtid); got != want {
				return fmt.Errorf("offt: out[%d] = %v, want %v", gtid, got, want)
			}
		}
		return nil
	}
	return &Plan{Kernels: []*gpu.Kernel{k}, AppBytes: n * 8, Verify: verify}, nil
}
