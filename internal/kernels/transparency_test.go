package kernels

// Detector transparency: race detection observes execution but must
// never change functional results — the paper's RDUs "do not alter
// memory accesses originated from the cores". Every benchmark with a
// host reference must verify identically under every detector
// configuration, and the final device-memory image must match the
// detection-off run bit for bit.

import (
	"bytes"
	"testing"

	"haccrg/internal/core"
	"haccrg/internal/gpu"
	"haccrg/internal/grace"
	"haccrg/internal/swdetect"
)

// runImage executes a benchmark under det and returns the final global
// memory image.
func runImage(t *testing.T, name string, det gpu.Detector) []byte {
	t.Helper()
	bm := Get(name)
	dev, err := gpu.NewDevice(gpu.TestConfig(), bm.GlobalBytes(1), det)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	if name == "scan" || name == "kmeans" {
		p.SingleBlock = true
	}
	plan, err := bm.Build(dev, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Run(dev); err != nil {
		t.Fatal(err)
	}
	if plan.Verify != nil {
		if err := plan.Verify(dev); err != nil {
			t.Fatalf("%s under %s: output corrupted: %v", name, det.Name(), err)
		}
	}
	img := make([]byte, dev.Global.Size())
	copy(img, dev.Global.Bytes())
	return img
}

func detectors(t *testing.T) map[string]func() gpu.Detector {
	t.Helper()
	opt := core.DefaultOptions()
	opt.SharedGranularity = 4
	fig8 := opt
	fig8.SharedShadowInGlobal = true
	return map[string]func() gpu.Detector{
		"off":     func() gpu.Detector { return gpu.NopDetector{} },
		"haccrg":  func() gpu.Detector { return core.MustNew(opt) },
		"fig8":    func() gpu.Detector { return core.MustNew(fig8) },
		"swimpl":  func() gpu.Detector { return swdetect.MustNew(opt, swdetect.DefaultCostModel) },
		"graceim": func() gpu.Detector { return grace.MustNew(opt, grace.DefaultCostModel) },
	}
}

func TestDetectorsAreFunctionallyTransparent(t *testing.T) {
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			if bm.Name == "offt" {
				// OFFT races by design (its documented bug): the wrap
				// entries' final values depend on access interleaving,
				// and detectors legitimately shift timing. A divergent
				// image here is the race *manifesting*, not a detector
				// defect — exactly why the bug matters.
				t.Skip("output is race-dependent by design")
			}
			var baseline []byte
			for _, name := range []string{"off", "haccrg", "fig8", "swimpl", "graceim"} {
				img := runImage(t, bm.Name, detectors(t)[name]())
				if baseline == nil {
					baseline = img
					continue
				}
				if !bytes.Equal(baseline, img) {
					t.Fatalf("%s: detector %q changed the final memory image", bm.Name, name)
				}
			}
		})
	}
}

// TestRacyOutputIsScheduleDependent pins down why OFFT is excluded
// above: its final image is a function of timing, which is the
// observable consequence of the data race the detector reports.
func TestRacyOutputIsScheduleDependent(t *testing.T) {
	off := runImage(t, "offt", gpu.NopDetector{})
	opt := core.DefaultOptions()
	opt.SharedGranularity = 4
	under := runImage(t, "offt", core.MustNew(opt))
	if bytes.Equal(off, under) {
		t.Log("note: offt produced identical images under both schedules this run")
	}
}
