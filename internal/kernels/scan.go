package kernels

import (
	"fmt"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// SCAN: inclusive parallel prefix sum (Hillis-Steele) in shared
// memory. The kernel is written for a single thread-block scanning one
// array in place; the benchmark suite launches it with several blocks
// "to scale up the workload", so all blocks read and write the same
// global array — the documented bug whose cross-block races the paper
// detects (Section VI-A). Params.SingleBlock launches the designed-for
// configuration, which must be race-free.
const (
	scanBlockDim  = 256
	scanBugBlocks = 4
)

func init() {
	register(&Benchmark{
		Name:  "scan",
		Desc:  "parallel prefix sum (CUDA SDK scan), single-block kernel launched multi-block",
		Input: fmt.Sprintf("%d elements", scanBlockDim),
		Sites: []Site{
			{ID: "scan.bar0", Kind: InjRemoveBarrier, Desc: "barrier after the global->shared load"},
			{ID: "scan.bar1", Kind: InjRemoveBarrier, Desc: "barrier between the gather and scatter of each scan step"},
			{ID: "scan.bar2", Kind: InjRemoveBarrier, Desc: "barrier at the end of each scan step"},
			{ID: "scan.dummy0", Kind: InjDummyCross, Desc: "cross-block store after the result store"},
		},
		GlobalBytes: func(scale int) int { return scanBlockDim*8*scale + dummyBytes + 4096 },
		Build:       buildScan,
	})
}

func buildScan(d *gpu.Device, p Params) (*Plan, error) {
	n := scanBlockDim // elements, one per thread
	in, err := d.Malloc(n * 4)
	if err != nil {
		return nil, err
	}
	out, err := d.Malloc(n * 4)
	if err != nil {
		return nil, err
	}
	dummy, err := d.Malloc(dummyBytes)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		d.Global.SetU32(int(in)/4+i, uint32(i%7+1))
	}

	prog := memoProgram("scan", &p, func() *isa.Program {
		b := isa.NewBuilder("scan")
		preamble(b)
		// shared[tid] = in[tid]  (no bid offset: the documented bug).
		b.Ldp(rA, 0)
		b.Muli(rB, rTid, 4)
		b.Add(rA, rA, rB)
		b.Note("load in[tid] (all blocks read the same array)")
		b.Ld(rC, isa.SpaceGlobal, rA, 0, 4)
		b.Muli(rD, rTid, 4)
		b.St(isa.SpaceShared, rD, 0, rC, 4)
		bar(b, &p, "scan.bar0")

		// Hillis-Steele: for d = 1; d < n; d <<= 1.
		b.Movi(rI, 1)
		b.Setpi(0, isa.CmpLT, rI, int64(n))
		b.While(0)
		// Gather: t = tid >= d ? shared[tid-d] : 0.
		b.Movi(rE, 0)
		b.Setp(1, isa.CmpGE, rTid, rI)
		b.If(1)
		b.Sub(rF, rTid, rI)
		b.Muli(rF, rF, 4)
		b.Ld(rE, isa.SpaceShared, rF, 0, 4)
		b.EndIf()
		bar(b, &p, "scan.bar1")
		// Scatter: shared[tid] += t (for tid >= d).
		b.Setp(1, isa.CmpGE, rTid, rI)
		b.If(1)
		b.Muli(rF, rTid, 4)
		b.Ld(rG, isa.SpaceShared, rF, 0, 4)
		b.Add(rG, rG, rE)
		b.St(isa.SpaceShared, rF, 0, rG, 4)
		b.EndIf()
		bar(b, &p, "scan.bar2")
		b.Shli(rI, rI, 1)
		b.Setpi(0, isa.CmpLT, rI, int64(n))
		b.EndWhile()

		// out[tid] = shared[tid]  (again no bid offset).
		b.Muli(rD, rTid, 4)
		b.Ld(rC, isa.SpaceShared, rD, 0, 4)
		b.Ldp(rA, 1)
		b.Muli(rB, rTid, 4)
		b.Add(rA, rA, rB)
		b.Note("store out[tid] (all blocks write the same array)")
		b.St(isa.SpaceGlobal, rA, 0, rC, 4)
		dummyCross(b, &p, "scan.dummy0", 2)
		b.Exit()
		return b.MustBuild()
	})

	grid := scanBugBlocks * p.scale()
	if p.SingleBlock {
		grid = 1
	}
	k := &gpu.Kernel{
		Name: "scan", Prog: prog,
		GridDim: grid, BlockDim: scanBlockDim,
		SharedBytes: scanBlockDim * 4,
		Params:      []uint64{in, out, dummy},
	}
	var verify func(d *gpu.Device) error
	if p.SingleBlock {
		verify = func(d *gpu.Device) error {
			var run uint32
			for i := 0; i < n; i++ {
				run += uint32(i%7 + 1)
				if got := d.Global.U32(int(out)/4 + i); got != run {
					return fmt.Errorf("scan: out[%d] = %d, want %d", i, got, run)
				}
			}
			return nil
		}
	}
	return &Plan{Kernels: []*gpu.Kernel{k}, AppBytes: n * 8, Verify: verify}, nil
}
