package kernels

import (
	"testing"

	"haccrg/internal/gpu"
)

// buildPlan builds one benchmark plan on a fresh device without
// running it.
func buildPlan(t *testing.T, name string, p Params) *Plan {
	t.Helper()
	bm := Get(name)
	if bm == nil {
		t.Fatalf("benchmark %s not registered", name)
	}
	dev, err := gpu.NewDevice(gpu.TestConfig(), bm.GlobalBytes(p.Scale), nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bm.Build(dev, p)
	if err != nil {
		t.Fatalf("%s build: %v", name, err)
	}
	return plan
}

// TestProgramCacheHit: rebuilding a benchmark with identical Params
// must reuse the assembled programs (pointer-equal), across devices.
func TestProgramCacheHit(t *testing.T) {
	for _, bm := range All() {
		p := Params{Scale: 1}
		a := buildPlan(t, bm.Name, p)
		b := buildPlan(t, bm.Name, p)
		if len(a.Kernels) != len(b.Kernels) {
			t.Fatalf("%s: kernel count changed between builds", bm.Name)
		}
		for i := range a.Kernels {
			if a.Kernels[i].Prog != b.Kernels[i].Prog {
				t.Errorf("%s kernel %d: identical params rebuilt the program", bm.Name, i)
			}
			if a.Kernels[i].Params != nil && len(a.Kernels[i].Params) > 0 &&
				&a.Kernels[i].Params[0] == &b.Kernels[i].Params[0] {
				t.Errorf("%s kernel %d: param slots shared across builds", bm.Name, i)
			}
		}
	}
}

// TestProgramCacheMiss: any Params field that shapes emission must
// split the cache entry.
func TestProgramCacheMiss(t *testing.T) {
	base := buildPlan(t, "reduce", Params{Scale: 1})
	scaled := buildPlan(t, "reduce", Params{Scale: 2})
	if base.Kernels[0].Prog == scaled.Kernels[0].Prog {
		t.Error("scale change reused the program (loop bounds are scale-dependent)")
	}
	injected := buildPlan(t, "reduce", Params{Scale: 1, Inject: map[string]bool{"reduce.fence0": true}})
	if base.Kernels[0].Prog == injected.Kernels[0].Prog {
		t.Error("injection reused the fault-free program")
	}
	// An inactive injection entry is not part of the parameterization.
	off := buildPlan(t, "reduce", Params{Scale: 1, Inject: map[string]bool{"reduce.fence0": false}})
	if base.Kernels[0].Prog != off.Kernels[0].Prog {
		t.Error("inactive injection split the cache entry")
	}

	single := buildPlan(t, "scan", Params{Scale: 1, SingleBlock: true})
	multi := buildPlan(t, "scan", Params{Scale: 1})
	if single.Kernels[0].GridDim == multi.Kernels[0].GridDim {
		t.Fatal("SingleBlock did not change the launch shape")
	}
}

// TestProgramCacheKey pins the canonicalization: injection-ID order
// must not matter, and every emission-relevant field must appear.
func TestProgramCacheKey(t *testing.T) {
	a := progCacheKey("hash", &Params{Scale: 2, Inject: map[string]bool{"x": true, "y": true}})
	b := progCacheKey("hash", &Params{Scale: 2, Inject: map[string]bool{"y": true, "x": true}})
	if a != b {
		t.Errorf("key depends on injection map order: %q vs %q", a, b)
	}
	c := progCacheKey("hash", &Params{Scale: 2, SingleBlock: true, Inject: map[string]bool{"x": true}})
	d := progCacheKey("hash", &Params{Scale: 2, Inject: map[string]bool{"x": true}})
	if c == d {
		t.Error("SingleBlock missing from the cache key")
	}
}
