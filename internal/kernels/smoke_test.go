package kernels

import (
	"testing"

	"haccrg/internal/gpu"
)

// runBench builds and runs one benchmark on a fresh test device,
// verifying output where the benchmark defines a reference.
func runBench(t *testing.T, name string, p Params) *gpu.LaunchStats {
	t.Helper()
	bm := Get(name)
	if bm == nil {
		t.Fatalf("benchmark %s not registered", name)
	}
	dev, err := gpu.NewDevice(gpu.TestConfig(), bm.GlobalBytes(p.Scale), nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bm.Build(dev, p)
	if err != nil {
		t.Fatalf("%s build: %v", name, err)
	}
	st, err := plan.Run(dev)
	if err != nil {
		t.Fatalf("%s run: %v", name, err)
	}
	if plan.Verify != nil {
		if err := plan.Verify(dev); err != nil {
			t.Fatalf("%s verify: %v", name, err)
		}
	}
	return st
}

func TestAllBenchmarksRunAndVerify(t *testing.T) {
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			p := DefaultParams()
			if bm.Name == "scan" || bm.Name == "kmeans" {
				p.SingleBlock = true // verify the designed-for configuration
			}
			st := runBench(t, bm.Name, p)
			t.Logf("%s: %d cycles, %d warp instrs, shared-rd %.2f%%, global-rd %.2f%%",
				bm.Name, st.Cycles, st.WarpInstrs, st.SharedReadPct(), st.GlobalReadPct())
		})
	}
}
