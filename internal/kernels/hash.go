package kernels

import (
	"fmt"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// HASH: every thread inserts elements into a bucketed hash table under
// per-bucket CAS locks, using the GPU-safe retry-loop locking pattern
// (the winner of each round executes the critical section while the
// losers sit masked out). The critical section is bracketed by the
// paper's marker instructions (AcqMark/RelMark) and ends with a fence
// before the lock release — the correct discipline of Figure 2(b).
//
// The two InjDummyCritical sites reproduce Section VI-A's "dummy
// memory accesses inside and outside the critical sections": each
// injection adds an unprotected access and a protected access to the
// same dummy word from different threads, a lockset race.
const (
	haBuckets  = 256
	haSlots    = 4 // key slots per bucket
	haBlockDim = 64
	haBlocks   = 4 // per Scale unit
	haPerThr   = 2 // insertions per thread
)

func init() {
	register(&Benchmark{
		Name:  "hash",
		Desc:  "hash table with per-bucket CAS locks and fenced releases",
		Input: fmt.Sprintf("%d-bucket table, %d insertions", haBuckets, haBlocks*haBlockDim*haPerThr),
		Sites: []Site{
			{ID: "hash.crit0", Kind: InjDummyCritical, Desc: "protected write inside the critical section vs unprotected read outside"},
			{ID: "hash.crit1", Kind: InjDummyCritical, Desc: "unprotected write outside the critical section vs protected read inside"},
			{ID: "hash.dummy0", Kind: InjDummyCross, Desc: "cross-block store after the insert loop"},
		},
		GlobalBytes: func(scale int) int {
			return haBuckets*4*2 + haBuckets*haSlots*4 + dummyBytes + 4096
		},
		Build: buildHash,
	})
}

func buildHash(d *gpu.Device, p Params) (*Plan, error) {
	locks, err := d.Malloc(haBuckets * 4)
	if err != nil {
		return nil, err
	}
	counts, err := d.Malloc(haBuckets * 4)
	if err != nil {
		return nil, err
	}
	slots, err := d.Malloc(haBuckets * haSlots * 4)
	if err != nil {
		return nil, err
	}
	dummy, err := d.Malloc(dummyBytes)
	if err != nil {
		return nil, err
	}

	blocks := haBlocks * p.scale()
	inserts := blocks * haBlockDim * haPerThr

	prog := memoProgram("hash", &p, func() *isa.Program {
		b := isa.NewBuilder("hash")
		preamble(b)
		b.Ldp(rA, 0) // locks
		b.Ldp(rB, 1) // counts
		b.Ldp(rC, 2) // slots

		// Injected mixed-protection partners execute before the insert
		// loop: crit0 reads the dummy word unprotected here; crit1 writes
		// it unprotected here.
		if p.inj("hash.crit0") {
			b.Ldp(rInj0, 3)
			b.Ld(rInj1, isa.SpaceGlobal, rInj0, 0, 4)
		}
		if p.inj("hash.crit1") {
			b.Ldp(rInj0, 3)
			b.St(isa.SpaceGlobal, rInj0, 4, rGtid, 4)
		}

		// Insert loop: key = hash(gtid, e); bucket = key % buckets.
		b.Movi(rI, 0)
		b.Setpi(0, isa.CmpLT, rI, haPerThr)
		b.While(0)
		// key = (gtid*2654435761 + e*40503) & 0xFFFFFF
		b.Muli(rD, rGtid, 2654435761)
		b.Muli(rE, rI, 40503)
		b.Add(rD, rD, rE)
		b.Andi(rD, rD, 0xFFFFFF) // key
		b.Remi(rE, rD, haBuckets)
		b.Muli(rF, rE, 4)
		b.Add(rF, rA, rF) // &locks[bucket]

		// Lock acquire (retry loop; winners run the body masked-in).
		b.Movi(rG, 0) // done
		b.Setpi(1, isa.CmpEQ, rG, 0)
		b.While(1)
		b.Movi(rH, 0)
		b.Movi(rJ, 1)
		b.Atom(rK, isa.AtomCAS, isa.SpaceGlobal, rF, 0, rH, rJ)
		b.Setpi(2, isa.CmpEQ, rK, 0)
		b.If(2)
		b.AcqMark(rF)
		// Critical section: n = counts[bucket]; if n < slots:
		// slots[bucket*S+n] = key; counts[bucket] = n+1.
		b.Muli(rL, rE, 4)
		b.Add(rL, rB, rL) // &counts[bucket]
		b.Note("read counts[bucket] inside the critical section")
		b.Ld(rM, isa.SpaceGlobal, rL, 0, 4)
		b.Setpi(3, isa.CmpLT, rM, haSlots)
		b.If(3)
		b.Muli(rN, rE, haSlots)
		b.Add(rN, rN, rM)
		b.Muli(rN, rN, 4)
		b.Add(rN, rC, rN)
		b.St(isa.SpaceGlobal, rN, 0, rD, 4)
		b.EndIf()
		b.Addi(rM, rM, 1)
		b.St(isa.SpaceGlobal, rL, 0, rM, 4)
		dummyCritical(b, &p, "hash.crit0", 3)
		if p.inj("hash.crit1") {
			b.Ldp(rInj0, 3)
			b.Ld(rInj1, isa.SpaceGlobal, rInj0, 4, 4)
		}
		b.Membar() // write visibility before the release (Figure 2(b))
		b.RelMark()
		b.Movi(rH, 0)
		b.Atom(rK, isa.AtomExch, isa.SpaceGlobal, rF, 0, rH, 0)
		b.Movi(rG, 1)
		b.EndIf()
		b.Setpi(1, isa.CmpEQ, rG, 0)
		b.EndWhile()

		b.Addi(rI, rI, 1)
		b.Setpi(0, isa.CmpLT, rI, haPerThr)
		b.EndWhile()
		dummyCross(b, &p, "hash.dummy0", 3)
		b.Exit()
		return b.MustBuild()
	})

	k := &gpu.Kernel{
		Name: "hash", Prog: prog,
		GridDim: blocks, BlockDim: haBlockDim,
		Params: []uint64{locks, counts, slots, dummy},
	}
	verify := func(d *gpu.Device) error {
		var total uint32
		for bu := 0; bu < haBuckets; bu++ {
			total += d.Global.U32(int(counts)/4 + bu)
			if lock := d.Global.U32(int(locks)/4 + bu); lock != 0 {
				return fmt.Errorf("hash: bucket %d lock left held", bu)
			}
		}
		if total != uint32(inserts) {
			return fmt.Errorf("hash: %d insertions recorded, want %d", total, inserts)
		}
		return nil
	}
	return &Plan{
		Kernels:  []*gpu.Kernel{k},
		AppBytes: haBuckets*8 + haBuckets*haSlots*4,
		Verify:   verify,
	}, nil
}
