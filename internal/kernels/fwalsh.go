package kernels

import (
	"fmt"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// FWALSH: fast Walsh-Hadamard transform over an integer array, done in
// place. Stages with stride >= the per-block tile run as separate
// global-memory kernel launches (the kernel boundary is the global
// synchronization, as in the SDK version); the remaining stages run in
// shared memory inside one block with barriers between stages.
// Integer butterflies (a+b, a-b) keep host verification exact.
const (
	fwBlockDim = 128
	fwN        = 2048 // elements per Scale unit (power of two)
)

func init() {
	register(&Benchmark{
		Name:  "fwalsh",
		Desc:  "fast Walsh transform (CUDA SDK fastWalshTransform)",
		Input: fmt.Sprintf("%d elements, %d threads/block", fwN, fwBlockDim),
		Sites: []Site{
			{ID: "fwalsh.bar0", Kind: InjRemoveBarrier, Desc: "barrier after the tile load into shared"},
			{ID: "fwalsh.bar1", Kind: InjRemoveBarrier, Desc: "barrier between shared-memory butterfly stages"},
			{ID: "fwalsh.bar2", Kind: InjRemoveBarrier, Desc: "barrier before the tile store"},
			{ID: "fwalsh.dummy0", Kind: InjDummyCross, Desc: "cross-block store in the global-stage kernel"},
		},
		GlobalBytes: func(scale int) int { return fwN*scale*4 + dummyBytes + 4096 },
		Build:       buildFwalsh,
	})
}

func buildFwalsh(d *gpu.Device, p Params) (*Plan, error) {
	n := fwN * p.scale()
	data, err := d.Malloc(n * 4)
	if err != nil {
		return nil, err
	}
	dummy, err := d.Malloc(dummyBytes)
	if err != nil {
		return nil, err
	}
	host := make([]int32, n)
	for i := 0; i < n; i++ {
		v := int32(i%13 - 6)
		host[i] = v
		d.Global.SetU32(int(data)/4+i, uint32(v))
	}

	tile := 2 * fwBlockDim // elements handled per block in the shared kernel

	// Global-stage kernel: one butterfly per thread at stride given by
	// param 1. pos = (i/stride)*2*stride + i%stride.
	globalProg := memoProgram("fwalsh-global", &p, func() *isa.Program {
		gb := isa.NewBuilder("fwalsh-global")
		preamble(gb)
		gb.Ldp(rA, 0) // data
		gb.Ldp(rB, 1) // stride (elements)
		gb.Div(rC, rGtid, rB)
		gb.Muli(rC, rC, 2)
		gb.Mul(rC, rC, rB)
		gb.Rem(rD, rGtid, rB)
		gb.Add(rC, rC, rD) // pos
		gb.Muli(rD, rC, 4)
		gb.Add(rD, rA, rD) // &data[pos]
		gb.Muli(rE, rB, 4)
		gb.Add(rE, rD, rE) // &data[pos+stride]
		gb.Ld(rF, isa.SpaceGlobal, rD, 0, 4)
		gb.Ld(rG, isa.SpaceGlobal, rE, 0, 4)
		gb.Add(rH, rF, rG)
		gb.Sub(rI, rF, rG)
		gb.St(isa.SpaceGlobal, rD, 0, rH, 4)
		gb.St(isa.SpaceGlobal, rE, 0, rI, 4)
		dummyCross(gb, &p, "fwalsh.dummy0", 2)
		gb.Exit()
		return gb.MustBuild()
	})

	// Shared-stage kernel: each block loads a tile of 2*blockDim
	// elements and runs the remaining stages with barriers.
	sharedProg := memoProgram("fwalsh-shared", &p, func() *isa.Program {
		sb := isa.NewBuilder("fwalsh-shared")
		preamble(sb)
		sb.Ldp(rA, 0)
		sb.Muli(rB, rBid, int64(tile*4))
		sb.Add(rA, rA, rB) // tile base in global
		// Load two consecutive elements per thread (2*tid, 2*tid+1); the
		// first butterfly stage reads (tid, tid+blockDim), so the barrier
		// after the load orders cross-warp producer/consumer pairs.
		sb.Muli(rC, rTid, 8)
		for _, off := range []int64{0, 4} {
			sb.Add(rE, rA, rC)
			sb.Ld(rF, isa.SpaceGlobal, rE, off, 4)
			sb.St(isa.SpaceShared, rC, off, rF, 4)
		}
		bar(sb, &p, "fwalsh.bar0")
		// Stages: stride = tile/2 down to 1.
		sb.Movi(rI, int64(tile/2))
		sb.Setpi(0, isa.CmpGE, rI, 1)
		sb.While(0)
		// One butterfly per thread: i = tid.
		sb.Div(rC, rTid, rI)
		sb.Muli(rC, rC, 2)
		sb.Mul(rC, rC, rI)
		sb.Rem(rD, rTid, rI)
		sb.Add(rC, rC, rD)
		sb.Muli(rD, rC, 4) // pos*4
		sb.Muli(rE, rI, 4)
		sb.Add(rE, rD, rE) // (pos+stride)*4
		sb.Ld(rF, isa.SpaceShared, rD, 0, 4)
		sb.Ld(rG, isa.SpaceShared, rE, 0, 4)
		sb.Add(rH, rF, rG)
		sb.Sub(rJ, rF, rG)
		sb.St(isa.SpaceShared, rD, 0, rH, 4)
		sb.St(isa.SpaceShared, rE, 0, rJ, 4)
		// Inter-stage barrier, skipped after the stride-1 stage (the
		// pre-store barrier covers it); uniform condition.
		sb.Setpi(1, isa.CmpGT, rI, 1)
		sb.If(1)
		bar(sb, &p, "fwalsh.bar1")
		sb.EndIf()
		sb.Shri(rI, rI, 1)
		sb.Setpi(0, isa.CmpGE, rI, 1)
		sb.EndWhile()
		bar(sb, &p, "fwalsh.bar2")
		// Store the tile back.
		for _, off := range []int64{0, int64(fwBlockDim)} {
			sb.Addi(rC, rTid, off)
			sb.Muli(rD, rC, 4)
			sb.Ld(rF, isa.SpaceShared, rD, 0, 4)
			sb.Add(rE, rA, rD)
			sb.St(isa.SpaceGlobal, rE, 0, rF, 4)
		}
		sb.Exit()
		return sb.MustBuild()
	})

	var launches []*gpu.Kernel
	// Global stages first: stride from n/2 down to tile.
	for stride := n / 2; stride >= tile; stride /= 2 {
		launches = append(launches, &gpu.Kernel{
			Name: "fwalsh-global", Prog: globalProg,
			GridDim: (n / 2) / fwBlockDim, BlockDim: fwBlockDim,
			Params: []uint64{data, uint64(stride), dummy},
		})
	}
	launches = append(launches, &gpu.Kernel{
		Name: "fwalsh-shared", Prog: sharedProg,
		GridDim: n / tile, BlockDim: fwBlockDim,
		SharedBytes: tile * 4,
		Params:      []uint64{data, 0, dummy},
	})

	verify := func(d *gpu.Device) error {
		want := walshHost(host)
		for i := 0; i < n; i++ {
			if got := int32(d.Global.U32(int(data)/4 + i)); got != want[i] {
				return fmt.Errorf("fwalsh: data[%d] = %d, want %d", i, got, want[i])
			}
		}
		return nil
	}
	return &Plan{Kernels: launches, AppBytes: n * 4, Verify: verify}, nil
}

// walshHost computes the Walsh-Hadamard transform with the same
// stage order as the device kernels.
func walshHost(in []int32) []int32 {
	n := len(in)
	x := make([]int32, n)
	copy(x, in)
	for stride := n / 2; stride >= 1; stride /= 2 {
		for i := 0; i < n/2; i++ {
			pos := (i/stride)*2*stride + i%stride
			a, c := x[pos], x[pos+stride]
			x[pos], x[pos+stride] = a+c, a-c
		}
	}
	return x
}
