package kernels

import (
	"fmt"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// HIST: 64-bin histogram of byte data. Each thread owns a private
// byte-counter column per bin in shared memory; the column order is
// shuffled so that warps interleave at 8-byte chunks (a bank-spreading
// layout in the spirit of the SDK histogram's threadPos shuffle). A
// 4-byte word therefore stays within one warp — no false races at
// word granularity — but any coarser shadow granule spans columns of
// several warps, which is why the paper reports high false-race
// counts for HIST as tracking granularity grows (its data elements
// are one byte). After a barrier, threads sum the per-thread columns
// of one bin each and merge into the global histogram with atomics.
const (
	histBins     = 64
	histBlockDim = 128
	histBytes    = 32 << 10 // input bytes per Scale unit
	histRow      = histBlockDim
	histChunk    = 8 // bytes of consecutive columns owned by one warp
)

func init() {
	register(&Benchmark{
		Name:  "hist",
		Desc:  "64-bin byte histogram (CUDA SDK histogram64)",
		Input: fmt.Sprintf("%d KB of bytes, %d bins, %d threads/block", histBytes>>10, histBins, histBlockDim),
		Sites: []Site{
			{ID: "hist.bar0", Kind: InjRemoveBarrier, Desc: "barrier after clearing the per-thread counters"},
			{ID: "hist.bar1", Kind: InjRemoveBarrier, Desc: "barrier before the per-bin merge"},
			{ID: "hist.dummy0", Kind: InjDummyCross, Desc: "cross-block store after counting"},
			{ID: "hist.dummy1", Kind: InjDummyCross, Desc: "cross-block store after the merge"},
		},
		GlobalBytes: func(scale int) int { return histBytes*scale + histBins*4 + dummyBytes + 4096 },
		Build:       buildHist,
	})
}

func buildHist(d *gpu.Device, p Params) (*Plan, error) {
	total := histBytes * p.scale()
	in, err := d.Malloc(total)
	if err != nil {
		return nil, err
	}
	out, err := d.Malloc(histBins * 4)
	if err != nil {
		return nil, err
	}
	dummy, err := d.Malloc(dummyBytes)
	if err != nil {
		return nil, err
	}
	hostHist := make([]uint32, histBins)
	data := d.Global.Bytes()[in : in+uint64(total)]
	x := uint32(123456789)
	for i := range data {
		x = x*1664525 + 1013904223
		v := byte((x >> 13) % histBins)
		data[i] = v
		hostHist[v]++
	}

	blocks := 8 * p.scale()
	perThread := total / (blocks * histBlockDim)
	sharedBytes := histBins * histRow // byte counters

	prog := memoProgram("hist", &p, func() *isa.Program {
		b := isa.NewBuilder("hist")
		preamble(b)
		// This thread's shuffled byte column:
		// col = (lane/8)*(warps*8) + warp*8 + lane%8.
		b.Remi(rO, rTid, 32) // lane
		b.Divi(rN, rTid, 32) // warp
		b.Divi(rM, rO, histChunk)
		b.Muli(rM, rM, (histBlockDim/32)*histChunk)
		b.Muli(rN, rN, histChunk)
		b.Add(rM, rM, rN)
		b.Remi(rO, rO, histChunk)
		b.Add(rO, rM, rO) // rO = col, live for the whole kernel

		// Clear the counter array with word stores, grid-strided across
		// the block: thread t clears words t, t+blockDim, ...
		b.Mov(rI, rTid)
		b.Setpi(0, isa.CmpLT, rI, histBins*histRow/4)
		b.While(0)
		b.Muli(rA, rI, 4)
		b.Movi(rB, 0)
		b.St(isa.SpaceShared, rA, 0, rB, 4)
		b.Addi(rI, rI, histBlockDim)
		b.Setpi(0, isa.CmpLT, rI, histBins*histRow/4)
		b.EndWhile()
		bar(b, &p, "hist.bar0")

		// Count: threads read the input as coalesced 32-bit words in a
		// grid-stride pattern (as the SDK histogram does) and process the
		// four packed byte values of each word.
		totalThreads := blocks * histBlockDim
		wordsPerThread := perThread / 4
		b.Ldp(rA, 0) // input base
		b.Movi(rI, 0)
		b.Setpi(0, isa.CmpLT, rI, int64(wordsPerThread))
		b.While(0)
		b.Muli(rC, rI, int64(totalThreads))
		b.Add(rC, rC, rGtid)
		b.Muli(rC, rC, 4)
		b.Add(rC, rA, rC)
		b.Ld(rD, isa.SpaceGlobal, rC, 0, 4) // four packed bytes
		for byteIdx := 0; byteIdx < 4; byteIdx++ {
			b.Shri(rE, rD, int64(8*byteIdx))
			b.Andi(rE, rE, 0xFF) // bin
			b.Muli(rE, rE, histRow)
			b.Add(rE, rE, rO) // s[bin*row + col]
			b.Ld(rF, isa.SpaceShared, rE, 0, 1)
			b.Addi(rF, rF, 1)
			b.St(isa.SpaceShared, rE, 0, rF, 1)
		}
		b.Addi(rI, rI, 1)
		b.Setpi(0, isa.CmpLT, rI, int64(wordsPerThread))
		b.EndWhile()
		dummyCross(b, &p, "hist.dummy0", 2)
		bar(b, &p, "hist.bar1")

		// Merge: threads with tid < bins sum their bin's row and atomically
		// add into the global histogram.
		b.Setpi(1, isa.CmpLT, rTid, histBins)
		b.If(1)
		b.Movi(rG, 0) // sum
		b.Movi(rI, 0)
		b.Setpi(2, isa.CmpLT, rI, histBlockDim)
		b.While(2)
		b.Muli(rA, rTid, histRow)
		b.Add(rA, rA, rI)
		b.Ld(rF, isa.SpaceShared, rA, 0, 1)
		b.Add(rG, rG, rF)
		b.Addi(rI, rI, 1)
		b.Setpi(2, isa.CmpLT, rI, histBlockDim)
		b.EndWhile()
		b.Ldp(rB, 1)
		b.Muli(rC, rTid, 4)
		b.Add(rB, rB, rC)
		b.Atom(rD, isa.AtomAdd, isa.SpaceGlobal, rB, 0, rG, 0)
		b.EndIf()
		dummyCross(b, &p, "hist.dummy1", 2)
		b.Exit()
		return b.MustBuild()
	})

	k := &gpu.Kernel{
		Name: "hist", Prog: prog,
		GridDim: blocks, BlockDim: histBlockDim,
		SharedBytes: sharedBytes,
		Params:      []uint64{in, out, dummy},
	}
	verify := func(d *gpu.Device) error {
		for bin := 0; bin < histBins; bin++ {
			if got := d.Global.U32(int(out)/4 + bin); got != hostHist[bin] {
				return fmt.Errorf("hist: bin %d = %d, want %d", bin, got, hostHist[bin])
			}
		}
		return nil
	}
	return &Plan{Kernels: []*gpu.Kernel{k}, AppBytes: total + histBins*4, Verify: verify}, nil
}
