package kernels

import (
	"fmt"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// PSUM: the threadfence microbenchmark patterned on the CUDA
// programming guide example the paper's Figure 1 is built from. Every
// thread computes a partial sum of a slice of the input and writes it
// to out[gtid]; a memory fence makes the partial visible; an atomicInc
// on a completion counter elects the last thread, which reads all
// partials and produces the final sum. Global-memory dominated (the
// paper reports 87% global reads), with one removable fence.
const (
	psBlockDim = 64
	psBlocks   = 8   // per Scale unit
	psPerThr   = 128 // input elements per thread
)

func init() {
	register(&Benchmark{
		Name:  "psum",
		Desc:  "partial-sum threadfence microbenchmark (CUDA guide threadfence example)",
		Input: fmt.Sprintf("%d elements, %d threads", psBlocks*psBlockDim*psPerThr, psBlocks*psBlockDim),
		Sites: []Site{
			{ID: "psum.bar0", Kind: InjRemoveBarrier, Desc: "barrier before thread 0 scans the block's partials in shared"},
			{ID: "psum.fence0", Kind: InjRemoveFence, Desc: "fence between the partial store and the done-counter increment"},
			{ID: "psum.dummy0", Kind: InjDummyCross, Desc: "cross-block store after the partial store"},
		},
		GlobalBytes: func(scale int) int {
			nt := psBlocks * scale * psBlockDim
			return nt*psPerThr*4 + nt*4 + dummyBytes + 4096
		},
		Build: buildPsum,
	})
}

func buildPsum(d *gpu.Device, p Params) (*Plan, error) {
	blocks := psBlocks * p.scale()
	threads := blocks * psBlockDim
	n := threads * psPerThr
	in, err := d.Malloc(n * 4)
	if err != nil {
		return nil, err
	}
	out, err := d.Malloc(threads * 4)
	if err != nil {
		return nil, err
	}
	blockMax, err := d.Malloc(blocks * 4)
	if err != nil {
		return nil, err
	}
	result, err := d.Malloc(4)
	if err != nil {
		return nil, err
	}
	counter, err := d.Malloc(4)
	if err != nil {
		return nil, err
	}
	dummy, err := d.Malloc(dummyBytes)
	if err != nil {
		return nil, err
	}
	var want uint64
	for i := 0; i < n; i++ {
		v := uint32(i%31 + 1)
		d.Global.SetU32(int(in)/4+i, v)
		want += uint64(v)
	}
	want &= 0xFFFFFFFF

	prog := memoProgram("psum", &p, func() *isa.Program {
		b := isa.NewBuilder("psum")
		preamble(b)
		b.Ldp(rA, 0) // in
		// Coalesced grid-stride slice: sum = Σ in[gtid + k*threads].
		b.Movi(rG, 0)
		b.Movi(rI, 0)
		b.Setpi(0, isa.CmpLT, rI, psPerThr)
		b.While(0)
		b.Muli(rC, rI, int64(threads))
		b.Add(rC, rC, rGtid)
		b.Muli(rC, rC, 4)
		b.Add(rC, rA, rC)
		b.Ld(rD, isa.SpaceGlobal, rC, 0, 4)
		b.Add(rG, rG, rD)
		b.Addi(rI, rI, 1)
		b.Setpi(0, isa.CmpLT, rI, psPerThr)
		b.EndWhile()
		// out[gtid] = sum.
		b.Ldp(rB, 1)
		b.Muli(rC, rGtid, 4)
		b.Add(rB, rB, rC)
		b.Note("store out[gtid]; must be fenced before atomicInc")
		b.St(isa.SpaceGlobal, rB, 0, rG, 4)
		dummyCross(b, &p, "psum.dummy0", 4)
		// Diagnostic: thread 0 records the block's largest partial.
		b.Muli(rC, rTid, 4)
		b.St(isa.SpaceShared, rC, 0, rG, 4)
		bar(b, &p, "psum.bar0")
		b.Setpi(3, isa.CmpEQ, rTid, 0)
		b.If(3)
		b.Movi(rH, 0)
		b.Movi(rI, 0)
		b.Setpi(4, isa.CmpLT, rI, psBlockDim)
		b.While(4)
		b.Muli(rC, rI, 4)
		b.Ld(rD, isa.SpaceShared, rC, 0, 4)
		b.Max(rH, rH, rD)
		b.Addi(rI, rI, 1)
		b.Setpi(4, isa.CmpLT, rI, psBlockDim)
		b.EndWhile()
		b.Ldp(rC, 5)
		b.Muli(rD, rBid, 4)
		b.Add(rC, rC, rD)
		b.St(isa.SpaceGlobal, rC, 0, rH, 4)
		b.EndIf()
		fence(b, &p, "psum.fence0")
		// old = atomicInc(counter, threads); last thread finishes.
		b.Ldp(rE, 3)
		b.Movi(rF, int64(threads))
		b.Atom(rK, isa.AtomInc, isa.SpaceGlobal, rE, 0, rF, 0)
		b.Setpi(1, isa.CmpEQ, rK, int64(threads-1))
		b.If(1)
		b.Movi(rG, 0)
		b.Movi(rI, 0)
		b.Setpi(2, isa.CmpLT, rI, int64(threads))
		b.While(2)
		b.Ldp(rB, 1)
		b.Muli(rC, rI, 4)
		b.Add(rB, rB, rC)
		b.Note("last thread consumes out[i]")
		b.Ld(rD, isa.SpaceGlobal, rB, 0, 4)
		b.Add(rG, rG, rD)
		b.Addi(rI, rI, 1)
		b.Setpi(2, isa.CmpLT, rI, int64(threads))
		b.EndWhile()
		b.Ldp(rB, 2)
		b.St(isa.SpaceGlobal, rB, 0, rG, 4)
		b.EndIf()
		b.Exit()
		return b.MustBuild()
	})

	k := &gpu.Kernel{
		Name: "psum", Prog: prog,
		GridDim: blocks, BlockDim: psBlockDim,
		SharedBytes: psBlockDim * 4,
		Params:      []uint64{in, out, result, counter, dummy, blockMax},
	}
	verify := func(d *gpu.Device) error {
		if got := uint64(d.Global.U32(int(result) / 4)); got != want {
			return fmt.Errorf("psum: result = %d, want %d", got, want)
		}
		for blk := 0; blk < blocks; blk++ {
			var wantMax uint32
			for t := 0; t < psBlockDim; t++ {
				gtid := blk*psBlockDim + t
				var sum uint32
				for k := 0; k < psPerThr; k++ {
					sum += uint32((k*threads+gtid)%31 + 1)
				}
				if sum > wantMax {
					wantMax = sum
				}
			}
			if got := d.Global.U32(int(blockMax)/4 + blk); got != wantMax {
				return fmt.Errorf("psum: blockMax[%d] = %d, want %d", blk, got, wantMax)
			}
		}
		return nil
	}
	return &Plan{Kernels: []*gpu.Kernel{k}, AppBytes: n*4 + threads*4 + blocks*4 + 8, Verify: verify}, nil
}
