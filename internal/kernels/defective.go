package kernels

import (
	"fmt"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// Deliberately-defective kernels: true-positive fixtures for the
// static analyzer (internal/staticrace). Each one carries exactly the
// defect its name says — a barrier under a divergent tid-dependent
// branch, the psum election idiom with the fence deleted, and a shared
// store that provably escapes the declared shared segment. They are
// registered Defective, so All() and every bench sweep skip them;
// badoob in particular would fail its launch (shared OOB is a hard
// device error), and baddiv would trip the hang guard rail.

const (
	defBlockDim = 64
	defBlocks   = 2
)

func init() {
	register(&Benchmark{
		Name:      "baddiv",
		Desc:      "DEFECTIVE: barrier inside a tid-divergent branch (deadlocks half the block)",
		Input:     fmt.Sprintf("%d threads", defBlocks*defBlockDim),
		Defective: true,
		GlobalBytes: func(scale int) int {
			return 4096
		},
		Build: buildBadDiv,
	})
	register(&Benchmark{
		Name:      "badfence",
		Desc:      "DEFECTIVE: psum election idiom with the MEMBAR removed (partials read unfenced)",
		Input:     fmt.Sprintf("%d threads", defBlocks*defBlockDim),
		Defective: true,
		GlobalBytes: func(scale int) int {
			nt := defBlocks * defBlockDim
			return nt*4 + dummyBytes + 4096
		},
		Build: buildBadFence,
	})
	register(&Benchmark{
		Name:      "badoob",
		Desc:      "DEFECTIVE: shared store strides past the declared shared segment",
		Input:     fmt.Sprintf("%d threads", defBlocks*defBlockDim),
		Defective: true,
		GlobalBytes: func(scale int) int {
			return 4096
		},
		Build: buildBadOOB,
	})
}

// buildBadDiv: BAR guarded by tid < BlockDim/2. The bottom half of
// every block never reaches the barrier, so the launch deadlocks; the
// barrier-divergence lint must prove it without running anything.
func buildBadDiv(d *gpu.Device, p Params) (*Plan, error) {
	prog := memoProgram("baddiv", &p, func() *isa.Program {
		b := isa.NewBuilder("baddiv")
		preamble(b)
		b.Muli(rA, rTid, 4)
		b.St(isa.SpaceShared, rA, 0, rTid, 4)
		b.Setpi(0, isa.CmpLT, rTid, defBlockDim/2)
		b.If(0)
		b.Bar()
		b.Ld(rB, isa.SpaceShared, rA, 0, 4)
		b.EndIf()
		b.Exit()
		return b.MustBuild()
	})
	k := &gpu.Kernel{
		Name: "baddiv", Prog: prog,
		GridDim: defBlocks * p.scale(), BlockDim: defBlockDim,
		SharedBytes: defBlockDim * 4,
	}
	return &Plan{Kernels: []*gpu.Kernel{k}}, nil
}

// buildBadFence is psum's election tail with the fence deleted: store
// out[gtid], atomicInc the done counter, and let the elected thread
// read every partial back — unfenced, so the read can observe stale
// values. The fence-misuse lint must connect the three sites.
func buildBadFence(d *gpu.Device, p Params) (*Plan, error) {
	blocks := defBlocks * p.scale()
	threads := blocks * defBlockDim
	out, err := d.Malloc(threads * 4)
	if err != nil {
		return nil, err
	}
	result, err := d.Malloc(4)
	if err != nil {
		return nil, err
	}
	counter, err := d.Malloc(4)
	if err != nil {
		return nil, err
	}
	prog := memoProgram("badfence", &p, func() *isa.Program {
		b := isa.NewBuilder("badfence")
		preamble(b)
		// out[gtid] = gtid (stands in for the partial sum).
		b.Ldp(rA, 0)
		b.Muli(rC, rGtid, 4)
		b.Add(rC, rA, rC)
		b.Note("partial store; a MEMBAR is missing below")
		b.St(isa.SpaceGlobal, rC, 0, rGtid, 4)
		// old = atomicInc(counter, threads) — no fence before this.
		b.Ldp(rE, 2)
		b.Movi(rF, int64(threads))
		b.Atom(rK, isa.AtomInc, isa.SpaceGlobal, rE, 0, rF, 0)
		b.Setpi(1, isa.CmpEQ, rK, int64(threads-1))
		b.If(1)
		b.Movi(rG, 0)
		b.Movi(rI, 0)
		b.Setpi(2, isa.CmpLT, rI, int64(threads))
		b.While(2)
		b.Ldp(rA, 0)
		b.Muli(rC, rI, 4)
		b.Add(rC, rA, rC)
		b.Note("elected thread consumes the unfenced partials")
		b.Ld(rD, isa.SpaceGlobal, rC, 0, 4)
		b.Add(rG, rG, rD)
		b.Addi(rI, rI, 1)
		b.Setpi(2, isa.CmpLT, rI, int64(threads))
		b.EndWhile()
		b.Ldp(rB, 1)
		b.St(isa.SpaceGlobal, rB, 0, rG, 4)
		b.EndIf()
		b.Exit()
		return b.MustBuild()
	})
	k := &gpu.Kernel{
		Name: "badfence", Prog: prog,
		GridDim: blocks, BlockDim: defBlockDim,
		Params: []uint64{out, result, counter},
	}
	return &Plan{Kernels: []*gpu.Kernel{k}}, nil
}

// buildBadOOB: shared[tid*8] with BlockDim*4 shared bytes — the top
// half of each block stores past the segment. Launching would fail
// with a hard shared-OOB device error; the lint proves it statically.
func buildBadOOB(d *gpu.Device, p Params) (*Plan, error) {
	prog := memoProgram("badoob", &p, func() *isa.Program {
		b := isa.NewBuilder("badoob")
		preamble(b)
		b.Muli(rA, rTid, 8)
		b.Note("stride-8 store into a stride-4-sized segment")
		b.St(isa.SpaceShared, rA, 0, rTid, 4)
		b.Exit()
		return b.MustBuild()
	})
	k := &gpu.Kernel{
		Name: "badoob", Prog: prog,
		GridDim: defBlocks * p.scale(), BlockDim: defBlockDim,
		SharedBytes: defBlockDim * 4,
	}
	return &Plan{Kernels: []*gpu.Kernel{k}}, nil
}
