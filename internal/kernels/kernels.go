// Package kernels implements the paper's ten CUDA benchmarks against
// the simulator's ISA: MCARLO, SCAN, FWALSH, HIST, SORTNW, REDUCE,
// PSUM, OFFT, KMEANS and HASH (Table II), including the documented
// bugs the paper's detector finds (SCAN and KMEANS are single-block
// kernels launched with multiple blocks; OFFT miscalculates an
// address), plus the race-injection framework of Section VI-A with
// its 41 sites: 23 removable barriers, 13 cross-block dummy accesses,
// 3 removable fences and 2 critical-section dummy accesses.
package kernels

import (
	"context"
	"fmt"
	"sort"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// Shared register conventions for all benchmark kernels.
const (
	rTid    = isa.Reg(1)
	rNtid   = isa.Reg(2)
	rBid    = isa.Reg(3)
	rNctaid = isa.Reg(4)
	rGtid   = isa.Reg(5)
	rA      = isa.Reg(6)
	rB      = isa.Reg(7)
	rC      = isa.Reg(8)
	rD      = isa.Reg(9)
	rE      = isa.Reg(10)
	rF      = isa.Reg(11)
	rG      = isa.Reg(12)
	rH      = isa.Reg(13)
	rI      = isa.Reg(14)
	rJ      = isa.Reg(15)
	rK      = isa.Reg(16)
	rL      = isa.Reg(17)
	rM      = isa.Reg(18)
	rN      = isa.Reg(19)
	rO      = isa.Reg(20)
	rP      = isa.Reg(21)

	// Registers reserved for injected code so injections never perturb
	// benchmark state.
	rInj0 = isa.Reg(28)
	rInj1 = isa.Reg(29)
	rInj2 = isa.Reg(30)
)

// InjectKind classifies an injection site (Section VI-A).
type InjectKind uint8

// Injection kinds with the paper's site counts.
const (
	InjRemoveBarrier InjectKind = iota // 23 sites
	InjDummyCross                      // 13 sites
	InjRemoveFence                     // 3 sites
	InjDummyCritical                   // 2 sites
)

func (k InjectKind) String() string {
	switch k {
	case InjRemoveBarrier:
		return "remove-barrier"
	case InjDummyCross:
		return "dummy-cross-block"
	case InjRemoveFence:
		return "remove-fence"
	case InjDummyCritical:
		return "dummy-critical-section"
	}
	return "inject?"
}

// Site is one declared injection point.
type Site struct {
	ID   string // "<benchmark>.<label>"
	Kind InjectKind
	Desc string
}

// Params configures a benchmark build.
type Params struct {
	// Scale multiplies input sizes (1 = scaled-down paper defaults).
	Scale int
	// Inject activates injection sites by ID.
	Inject map[string]bool
	// SingleBlock launches SCAN and KMEANS in their designed-for
	// single-block configuration, removing their documented bugs.
	SingleBlock bool
}

// DefaultParams returns the standard configuration.
func DefaultParams() Params { return Params{Scale: 1} }

func (p *Params) scale() int {
	if p.Scale < 1 {
		return 1
	}
	return p.Scale
}

func (p *Params) inj(id string) bool { return p.Inject[id] }

// Plan is a prepared benchmark: kernels to launch in order, the
// application data footprint (Table IV), and an optional output check.
type Plan struct {
	Kernels  []*gpu.Kernel
	AppBytes int
	// Verify checks kernel output against a host computation; nil for
	// benchmarks whose documented bugs make output undefined.
	Verify func(d *gpu.Device) error
}

// Run launches the plan's kernels in order, accumulating stats. It is
// RunContext with no cancellation or cycle budget.
func (p *Plan) Run(d *gpu.Device) (*gpu.LaunchStats, error) {
	return p.RunContext(context.Background(), d, gpu.LaunchLimits{})
}

// RunContext launches the plan's kernels in order under a context and
// a cumulative cycle budget (lim.MaxCycles spans the whole plan, not
// each kernel). On an aborted launch the accumulated stats so far —
// including the aborted kernel's partial stats — are returned
// alongside the error, which is a *gpu.HangError for guard-rail trips.
func (p *Plan) RunContext(ctx context.Context, d *gpu.Device, lim gpu.LaunchLimits) (*gpu.LaunchStats, error) {
	if len(p.Kernels) == 0 {
		return nil, fmt.Errorf("kernels: empty plan")
	}
	total := &gpu.LaunchStats{Kernel: p.Kernels[0].Name}
	remaining := lim.MaxCycles
	for _, k := range p.Kernels {
		var kl gpu.LaunchLimits
		if lim.MaxCycles > 0 {
			if remaining < 1 {
				// Budget already spent: a 1-cycle allowance makes the
				// next launch trip the guard rail with full diagnostics
				// instead of silently running unbounded.
				remaining = 1
			}
			kl.MaxCycles = remaining
		}
		st, err := d.LaunchContext(ctx, k, kl)
		if st != nil {
			total.Add(st)
			remaining -= st.Cycles
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Benchmark describes one workload.
type Benchmark struct {
	Name  string
	Desc  string
	Input string // human-readable input description at Scale 1
	Sites []Site
	Build func(d *gpu.Device, p Params) (*Plan, error)
	// GlobalBytes returns the device-memory requirement at a scale.
	GlobalBytes func(scale int) int
	// Defective marks a deliberately-broken kernel kept as a static
	// analyzer true-positive fixture. Defective benchmarks are
	// excluded from All() and hence from every bench sweep.
	Defective bool
}

// Site returns the benchmark's site with the given suffix.
func (b *Benchmark) Site(suffix string) *Site {
	id := b.Name + "." + suffix
	for i := range b.Sites {
		if b.Sites[i].ID == id {
			return &b.Sites[i]
		}
	}
	return nil
}

var registry = map[string]*Benchmark{}

func register(b *Benchmark) *Benchmark {
	if _, dup := registry[b.Name]; dup {
		panic("kernels: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
	return b
}

// Get returns a benchmark by name (nil if unknown).
func Get(name string) *Benchmark { return registry[name] }

// All returns every runnable benchmark in the paper's Table II order.
// Deliberately-defective analyzer fixtures are excluded; use
// AllIncludingDefective to see those too.
func All() []*Benchmark {
	out := make([]*Benchmark, 0, len(registry))
	for _, b := range AllIncludingDefective() {
		if !b.Defective {
			out = append(out, b)
		}
	}
	return out
}

// AllIncludingDefective returns every registered benchmark — Table II
// order first, then extras sorted by name — including the defective
// static-analyzer fixtures that All() hides from sweeps.
func AllIncludingDefective() []*Benchmark {
	order := []string{"mcarlo", "scan", "fwalsh", "hist", "sortnw",
		"reduce", "psum", "offt", "kmeans", "hash"}
	out := make([]*Benchmark, 0, len(registry))
	for _, n := range order {
		if b, ok := registry[n]; ok {
			out = append(out, b)
		}
	}
	// Append any extras deterministically (future benchmarks).
	var extra []string
	for n := range registry {
		found := false
		for _, o := range order {
			if n == o {
				found = true
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		out = append(out, registry[n])
	}
	return out
}

// AllSites returns every injection site of every benchmark.
func AllSites() []Site {
	var out []Site
	for _, b := range All() {
		out = append(out, b.Sites...)
	}
	return out
}

// SiteCounts tallies sites by kind (the paper's 23/13/3/2).
func SiteCounts() map[InjectKind]int {
	m := make(map[InjectKind]int)
	for _, s := range AllSites() {
		m[s.Kind]++
	}
	return m
}

// --- emission helpers shared by the benchmarks ---

// preamble loads the standard special registers.
func preamble(b *isa.Builder) {
	b.Sreg(rTid, isa.SregTid)
	b.Sreg(rNtid, isa.SregNtid)
	b.Sreg(rBid, isa.SregCtaid)
	b.Sreg(rNctaid, isa.SregNctaid)
	b.Sreg(rGtid, isa.SregGtid)
}

// bar emits a barrier unless the (remove-barrier) site is injected.
func bar(b *isa.Builder, p *Params, siteID string) {
	if p.inj(siteID) {
		return
	}
	b.Bar()
}

// fence emits a memory fence unless the (remove-fence) site is injected.
func fence(b *isa.Builder, p *Params, siteID string) {
	if p.inj(siteID) {
		return
	}
	b.Membar()
}

// dummyCross emits, when the site is injected, a global store that
// crosses thread-block access boundaries: every block writes the same
// small region, racing with the other blocks. dummyParam is the param
// slot holding the dummy region's base address.
func dummyCross(b *isa.Builder, p *Params, siteID string, dummyParam int64) {
	if !p.inj(siteID) {
		return
	}
	b.Ldp(rInj0, dummyParam)
	b.Remi(rInj1, rTid, 8)
	b.Muli(rInj1, rInj1, 4)
	b.Add(rInj0, rInj0, rInj1)
	b.St(isa.SpaceGlobal, rInj0, 0, rTid, 4)
}

// dummyCritical emits, when the site is injected, an access to the
// dummy region from inside (or outside) a critical section; combined
// with the unprotected accesses the same region receives elsewhere,
// it produces a lockset race.
func dummyCritical(b *isa.Builder, p *Params, siteID string, dummyParam int64) {
	if !p.inj(siteID) {
		return
	}
	b.Ldp(rInj0, dummyParam)
	b.Ld(rInj1, isa.SpaceGlobal, rInj0, 0, 4)
	b.Addi(rInj1, rInj1, 1)
	b.St(isa.SpaceGlobal, rInj0, 0, rInj1, 4)
}

// dummyBytes is the size of the per-workload dummy region used by
// injection sites.
const dummyBytes = 64
