package kernels

import (
	"testing"

	"haccrg/internal/core"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// detectOptions mirrors the paper's effectiveness evaluation: both
// RDUs on, word (4-byte) tracking granularity in both spaces.
func detectOptions() core.Options {
	opt := core.DefaultOptions()
	opt.SharedGranularity = 4
	return opt
}

// runWithDetector builds and runs one benchmark under a fresh HAccRG
// detector and returns it.
func runWithDetector(t *testing.T, name string, p Params, opt core.Options) *core.Detector {
	t.Helper()
	bm := Get(name)
	if bm == nil {
		t.Fatalf("unknown benchmark %s", name)
	}
	det := core.MustNew(opt)
	dev, err := gpu.NewDevice(gpu.TestConfig(), bm.GlobalBytes(p.Scale), det)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bm.Build(dev, p)
	if err != nil {
		t.Fatalf("%s build: %v", name, err)
	}
	if _, err := plan.Run(dev); err != nil {
		t.Fatalf("%s run: %v", name, err)
	}
	return det
}

// TestRealRaces reproduces Section VI-A's effectiveness result: no
// shared-memory races anywhere; global-memory races exactly in SCAN,
// KMEANS (single-block kernels launched multi-block) and OFFT (the
// address-calculation bug); the other seven benchmarks clean.
func TestRealRaces(t *testing.T) {
	buggy := map[string]bool{"scan": true, "kmeans": true, "offt": true}
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			det := runWithDetector(t, bm.Name, DefaultParams(), detectOptions())
			shared := det.SiteCount(isa.SpaceShared)
			global := det.SiteCount(isa.SpaceGlobal)
			if shared != 0 {
				t.Errorf("%s: %d shared race sites, want 0 (races: %v)",
					bm.Name, shared, firstRaces(det, 3))
			}
			if buggy[bm.Name] && global == 0 {
				t.Errorf("%s: documented bug not detected", bm.Name)
			}
			if !buggy[bm.Name] && global != 0 {
				t.Errorf("%s: %d unexpected global race sites (races: %v)",
					bm.Name, global, firstRaces(det, 3))
			}
		})
	}
}

func firstRaces(det *core.Detector, n int) []*core.Race {
	rs := det.Races()
	if len(rs) > n {
		rs = rs[:n]
	}
	return rs
}

// TestDesignedForSingleBlockIsClean verifies the paper's control: "no
// data race is reported when both SCAN and KMEANS are executed with a
// single thread-block".
func TestDesignedForSingleBlockIsClean(t *testing.T) {
	for _, name := range []string{"scan", "kmeans"} {
		p := DefaultParams()
		p.SingleBlock = true
		det := runWithDetector(t, name, p, detectOptions())
		if n := len(det.Races()); n != 0 {
			t.Errorf("%s single-block: %d races, want 0 (first: %v)",
				name, n, firstRaces(det, 3))
		}
	}
}

// TestOFFTRaceIsWAR checks the documented OFFT bug manifests with a
// write-after-read component, as the paper describes.
func TestOFFTRaceIsWAR(t *testing.T) {
	det := runWithDetector(t, "offt", DefaultParams(), detectOptions())
	for _, r := range det.Races() {
		if r.Kind == core.KindWAR || r.Kind == core.KindWAW {
			return
		}
	}
	t.Fatalf("offt: no WAR/WAW among %v", det.Races())
}

// TestSiteInventory verifies the paper's 41 injection sites:
// 23 removable barriers, 13 cross-block dummies, 3 removable fences,
// 2 critical-section dummies.
func TestSiteInventory(t *testing.T) {
	counts := SiteCounts()
	want := map[InjectKind]int{
		InjRemoveBarrier: 23,
		InjDummyCross:    13,
		InjRemoveFence:   3,
		InjDummyCritical: 2,
	}
	total := 0
	for kind, n := range want {
		if counts[kind] != n {
			t.Errorf("%v sites = %d, want %d", kind, counts[kind], n)
		}
		total += n
	}
	if got := len(AllSites()); got != total {
		t.Errorf("total sites = %d, want %d", got, total)
	}
	seen := map[string]bool{}
	for _, s := range AllSites() {
		if seen[s.ID] {
			t.Errorf("duplicate site id %s", s.ID)
		}
		seen[s.ID] = true
		if s.Desc == "" {
			t.Errorf("site %s has no description", s.ID)
		}
	}
}

// TestInjectedRaces41 reproduces the paper's injection study: HAccRG
// detects every one of the 41 injected races. Each site is injected
// alone; detection means the run exposes races beyond the benchmark's
// baseline — a larger set of race sites or a new (space, kind,
// category) group.
func TestInjectedRaces41(t *testing.T) {
	// Following the paper's method, races are injected into runs that
	// do not already race: SCAN and KMEANS use their designed-for
	// single-block launches. OFFT keeps its real bug; injections must
	// still stand out against it.
	cleanParams := func(name string) Params {
		p := DefaultParams()
		if name == "scan" || name == "kmeans" {
			p.SingleBlock = true
		}
		return p
	}
	type baselineInfo struct {
		sites  int
		groups map[string]int
	}
	baselines := map[string]baselineInfo{}
	for _, bm := range All() {
		det := runWithDetector(t, bm.Name, cleanParams(bm.Name), detectOptions())
		baselines[bm.Name] = baselineInfo{
			sites:  det.SiteCount(isa.SpaceShared) + det.SiteCount(isa.SpaceGlobal),
			groups: det.RaceGroups(),
		}
	}

	detected := 0
	for _, bm := range All() {
		for _, site := range bm.Sites {
			site := site
			t.Run(site.ID, func(t *testing.T) {
				p := cleanParams(bm.Name)
				p.Inject = map[string]bool{site.ID: true}
				det := runWithDetector(t, bm.Name, p, detectOptions())
				base := baselines[bm.Name]
				sites := det.SiteCount(isa.SpaceShared) + det.SiteCount(isa.SpaceGlobal)
				newGroup := false
				for g := range det.RaceGroups() {
					if base.groups[g] == 0 {
						newGroup = true
					}
				}
				if sites <= base.sites && !newGroup {
					t.Errorf("injection %s (%v) not detected: %d sites vs baseline %d, groups %v vs %v",
						site.ID, site.Kind, sites, base.sites, det.RaceGroups(), base.groups)
					return
				}
				detected++
			})
		}
	}
	if !t.Failed() && detected != 41 {
		t.Errorf("detected %d injected races, want 41", detected)
	}
}
