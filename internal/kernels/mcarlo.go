package kernels

import (
	"fmt"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// MCARLO: Monte Carlo option pricing. One block prices one option:
// each thread simulates paths with a 32-bit LCG and accumulates an
// integer payoff; per-thread sums land in shared memory and a
// barrier-synchronized tree reduction produces the block result.
// Integer payoffs keep host verification exact.
const (
	mcBlockDim = 128
	mcOptions  = 16 // blocks per Scale unit
	mcPaths    = 64 // paths per thread per Scale unit
)

func init() {
	register(&Benchmark{
		Name:  "mcarlo",
		Desc:  "Monte Carlo option pricing (CUDA SDK MonteCarlo)",
		Input: fmt.Sprintf("%d options, %d paths/thread, %d threads/block", mcOptions, mcPaths, mcBlockDim),
		Sites: []Site{
			{ID: "mcarlo.bar0", Kind: InjRemoveBarrier, Desc: "barrier after per-thread sums land in shared"},
			{ID: "mcarlo.bar1", Kind: InjRemoveBarrier, Desc: "barrier inside the tree-reduction loop"},
			{ID: "mcarlo.dummy0", Kind: InjDummyCross, Desc: "cross-block store after the block result"},
		},
		GlobalBytes: func(scale int) int { return mcOptions*scale*8 + dummyBytes + 4096 },
		Build:       buildMcarlo,
	})
}

// mcarloRand steps the LCG used on both device and host.
func mcarloRand(x uint32) uint32 { return x*1664525 + 1013904223 }

// mcarloSeed gives thread t of block b its deterministic seed.
func mcarloSeed(b, t int) uint32 { return uint32(b*mcBlockDim+t)*2654435761 + 12345 }

func buildMcarlo(d *gpu.Device, p Params) (*Plan, error) {
	blocks := mcOptions * p.scale()
	in, err := d.Malloc(blocks * 4)
	if err != nil {
		return nil, err
	}
	out, err := d.Malloc(blocks * 4)
	if err != nil {
		return nil, err
	}
	dummy, err := d.Malloc(dummyBytes)
	if err != nil {
		return nil, err
	}
	for i := 0; i < blocks; i++ {
		d.Global.SetU32(int(in)/4+i, uint32(90+i%40)) // spot prices
	}

	prog := memoProgram("mcarlo", &p, func() *isa.Program {
		b := isa.NewBuilder("mcarlo")
		preamble(b)
		// Load this option's spot price.
		b.Ldp(rA, 0) // in base
		b.Muli(rB, rBid, 4)
		b.Add(rA, rA, rB)
		b.Ld(rD, isa.SpaceGlobal, rA, 0, 4) // rD = spot

		// LCG seed = gtid*2654435761 + 12345 (32-bit).
		b.Muli(rE, rGtid, 2654435761)
		b.Addi(rE, rE, 12345)
		b.Movi(rF, 0xFFFFFFFF)
		b.And(rE, rE, rF)

		// Path loop: sum += max(spot + ((x>>16)&0xFF) - 128, 0).
		b.Movi(rG, 0)                        // sum
		b.Movi(rI, 0)                        // i
		b.Movi(rJ, int64(mcPaths*p.scale())) // paths
		b.Setp(0, isa.CmpLT, rI, rJ)
		b.While(0)
		b.Muli(rE, rE, 1664525)
		b.Addi(rE, rE, 1013904223)
		b.And(rE, rE, rF)
		b.Shri(rH, rE, 16)
		b.Andi(rH, rH, 0xFF)
		b.Add(rH, rH, rD)
		b.Subi(rH, rH, 128)
		b.Movi(rK, 0)
		b.Max(rH, rH, rK)
		b.Add(rG, rG, rH)
		b.Addi(rI, rI, 1)
		b.Setp(0, isa.CmpLT, rI, rJ)
		b.EndWhile()

		// shared[tid] = sum.
		b.Muli(rA, rTid, 4)
		b.St(isa.SpaceShared, rA, 0, rG, 4)
		bar(b, &p, "mcarlo.bar0")

		// Tree reduction: for s = ntid/2; s >= 1; s >>= 1.
		b.Shri(rI, rNtid, 1)
		b.Setpi(0, isa.CmpGE, rI, 1)
		b.While(0)
		b.Setp(1, isa.CmpLT, rTid, rI)
		b.If(1)
		b.Add(rB, rTid, rI)
		b.Muli(rB, rB, 4)
		b.Ld(rC, isa.SpaceShared, rB, 0, 4)
		b.Muli(rA, rTid, 4)
		b.Ld(rH, isa.SpaceShared, rA, 0, 4)
		b.Add(rH, rH, rC)
		b.St(isa.SpaceShared, rA, 0, rH, 4)
		b.EndIf()
		bar(b, &p, "mcarlo.bar1")
		b.Shri(rI, rI, 1)
		b.Setpi(0, isa.CmpGE, rI, 1)
		b.EndWhile()

		// Thread 0 stores the block result.
		b.Setpi(2, isa.CmpEQ, rTid, 0)
		b.If(2)
		b.Movi(rA, 0)
		b.Ld(rH, isa.SpaceShared, rA, 0, 4)
		b.Ldp(rB, 1)
		b.Muli(rC, rBid, 4)
		b.Add(rB, rB, rC)
		b.St(isa.SpaceGlobal, rB, 0, rH, 4)
		b.EndIf()
		dummyCross(b, &p, "mcarlo.dummy0", 2)
		b.Exit()
		return b.MustBuild()
	})

	k := &gpu.Kernel{
		Name: "mcarlo", Prog: prog,
		GridDim: blocks, BlockDim: mcBlockDim,
		SharedBytes: mcBlockDim * 4,
		Params:      []uint64{in, out, dummy},
	}
	paths := mcPaths * p.scale()
	verify := func(d *gpu.Device) error {
		for blk := 0; blk < blocks; blk++ {
			spot := uint32(90 + blk%40)
			var want uint32
			for t := 0; t < mcBlockDim; t++ {
				x := mcarloSeed(blk, t)
				var sum uint32
				for i := 0; i < paths; i++ {
					x = mcarloRand(x)
					v := int32((x>>16)&0xFF) + int32(spot) - 128
					if v > 0 {
						sum += uint32(v)
					}
				}
				want += sum
			}
			if got := d.Global.U32(int(out)/4 + blk); got != want {
				return fmt.Errorf("mcarlo: option %d = %d, want %d", blk, got, want)
			}
		}
		return nil
	}
	return &Plan{Kernels: []*gpu.Kernel{k}, AppBytes: blocks * 8, Verify: verify}, nil
}
