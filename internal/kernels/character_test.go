package kernels

// Characterization tests: the Table II qualitative structure of the
// benchmark suite must hold — which benchmarks lean on shared memory,
// which on global memory, which synchronize with fences, and which
// avoid shared memory entirely.

import (
	"testing"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

func statsFor(t *testing.T, name string, p Params) *gpu.LaunchStats {
	t.Helper()
	return runBench(t, name, p)
}

func TestSharedHeavyBenchmarks(t *testing.T) {
	// SCAN and HIST are the suite's shared-memory-dominated workloads.
	for _, name := range []string{"scan", "hist"} {
		p := DefaultParams()
		if name == "scan" {
			p.SingleBlock = true
		}
		st := statsFor(t, name, p)
		if st.SharedReadPct() < 5 {
			t.Errorf("%s: shared reads %.2f%%, expected shared-heavy (>5%%)", name, st.SharedReadPct())
		}
		if st.GlobalReadPct() > st.SharedReadPct() {
			t.Errorf("%s: global reads (%.2f%%) outweigh shared (%.2f%%)",
				name, st.GlobalReadPct(), st.SharedReadPct())
		}
	}
}

func TestGlobalHeavyBenchmarks(t *testing.T) {
	// PSUM and REDUCE stream global memory.
	for _, name := range []string{"psum", "reduce"} {
		st := statsFor(t, name, DefaultParams())
		if st.GlobalReadPct() < 5 {
			t.Errorf("%s: global reads %.2f%%, expected global-heavy (>5%%)", name, st.GlobalReadPct())
		}
		if st.SharedReadPct() > st.GlobalReadPct() {
			t.Errorf("%s: shared reads (%.2f%%) outweigh global (%.2f%%)",
				name, st.SharedReadPct(), st.GlobalReadPct())
		}
	}
}

func TestHashUsesNoSharedMemory(t *testing.T) {
	// Table II lists HASH at 0% shared reads.
	st := statsFor(t, "hash", DefaultParams())
	if st.SharedReads != 0 || st.SharedWrites != 0 {
		t.Errorf("hash touched shared memory: %d reads, %d writes", st.SharedReads, st.SharedWrites)
	}
}

func TestFenceUsers(t *testing.T) {
	// The paper: REDUCE, PSUM and KMEANS use memory fencing for
	// inter-thread-block communication; HASH fences before releases.
	for _, name := range []string{"reduce", "psum", "kmeans", "hash"} {
		p := DefaultParams()
		if name == "kmeans" {
			p.SingleBlock = true
		}
		st := statsFor(t, name, p)
		if st.Fences == 0 {
			t.Errorf("%s executed no fences", name)
		}
	}
	// The independent-tile benchmarks use none.
	for _, name := range []string{"mcarlo", "scan", "fwalsh", "hist", "sortnw", "offt"} {
		p := DefaultParams()
		if name == "scan" {
			p.SingleBlock = true
		}
		st := statsFor(t, name, p)
		if st.Fences != 0 {
			t.Errorf("%s executed %d fences, expected none", name, st.Fences)
		}
	}
}

func TestBarrierUsers(t *testing.T) {
	// Every benchmark except PSUM-lite patterns synchronizes with
	// barriers; HASH synchronizes only with locks.
	for _, name := range []string{"mcarlo", "scan", "fwalsh", "hist", "sortnw", "reduce", "offt", "kmeans", "psum"} {
		p := DefaultParams()
		if name == "scan" || name == "kmeans" {
			p.SingleBlock = true
		}
		st := statsFor(t, name, p)
		if st.Barriers == 0 {
			t.Errorf("%s executed no barriers", name)
		}
	}
	st := statsFor(t, "hash", DefaultParams())
	if st.Barriers != 0 {
		t.Errorf("hash executed %d barriers, expected lock-only synchronization", st.Barriers)
	}
}

func TestHashUsesCriticalSections(t *testing.T) {
	// HASH must exercise the lockset machinery: count critical-section
	// accesses through a probe detector.
	probe := &critProbe{}
	bm := Get("hash")
	dev, err := gpu.NewDevice(gpu.TestConfig(), bm.GlobalBytes(1), probe)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bm.Build(dev, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Run(dev); err != nil {
		t.Fatal(err)
	}
	if probe.critAccesses == 0 {
		t.Fatal("hash performed no in-critical-section accesses")
	}
	if probe.protectedSigs == 0 {
		t.Fatal("hash critical sections carried no lockset signatures")
	}
}

type critProbe struct {
	gpu.NopDetector
	critAccesses  int
	protectedSigs int
}

func (c *critProbe) WarpMem(ev *gpu.WarpMemEvent) int64 {
	if ev.Space != isa.SpaceGlobal || ev.Atomic {
		return 0
	}
	for i := range ev.Lanes {
		if ev.Lanes[i].InCrit {
			c.critAccesses++
			if ev.Lanes[i].AtomicSig != 0 {
				c.protectedSigs++
			}
		}
	}
	return 0
}

func TestScaleGrowsWork(t *testing.T) {
	// Scale must grow the executed work for every benchmark.
	for _, bm := range All() {
		p1 := DefaultParams()
		p4 := DefaultParams()
		p4.Scale = 4
		if bm.Name == "scan" || bm.Name == "kmeans" {
			p1.SingleBlock = true
			p4.SingleBlock = true
		}
		s1 := statsFor(t, bm.Name, p1)
		s4 := statsFor(t, bm.Name, p4)
		if bm.Name == "scan" {
			continue // scan's element count is fixed by its (buggy) design
		}
		if s4.ThreadInstrs <= s1.ThreadInstrs {
			t.Errorf("%s: scale 4 ran %d thread instrs vs %d at scale 1",
				bm.Name, s4.ThreadInstrs, s1.ThreadInstrs)
		}
	}
}

func TestGlobalBytesSufficient(t *testing.T) {
	// Every benchmark's GlobalBytes estimate must cover its allocations
	// at several scales.
	for _, bm := range All() {
		for _, scale := range []int{1, 3} {
			dev, err := gpu.NewDevice(gpu.TestConfig(), bm.GlobalBytes(scale), nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := bm.Build(dev, Params{Scale: scale}); err != nil {
				t.Errorf("%s at scale %d: %v", bm.Name, scale, err)
			}
		}
	}
}
