package kernels

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"haccrg/internal/isa"
)

// Program cache: kernel assembly is a pure function of the program
// name and the build Params — device addresses reach the program
// through param slots (Ldp), never as embedded immediates — and an
// assembled isa.Program is read-only during execution. Each distinct
// (name, Scale, SingleBlock, active injections) tuple is therefore
// assembled once and shared by every subsequent build, including
// concurrent builds on the sweep engine's worker pool.
var progCache sync.Map // string -> *isa.Program

// progCacheKey canonicalizes a parameterization; injection IDs are
// sorted so map iteration order cannot split cache entries.
func progCacheKey(name string, p *Params) string {
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(p.scale()))
	if p.SingleBlock {
		sb.WriteString("|1block")
	}
	if len(p.Inject) > 0 {
		ids := make([]string, 0, len(p.Inject))
		for id, on := range p.Inject {
			if on {
				ids = append(ids, id)
			}
		}
		sort.Strings(ids)
		for _, id := range ids {
			sb.WriteByte('|')
			sb.WriteString(id)
		}
	}
	return sb.String()
}

// memoProgram returns the assembled program for (name, p), invoking
// build only the first time a parameterization is seen. Programs are
// validated before they enter the cache: a malformed program would be
// shared by every subsequent launch of the parameterization, so the
// cache is the chokepoint where isa.Program.Validate must hold.
func memoProgram(name string, p *Params, build func() *isa.Program) *isa.Program {
	key := progCacheKey(name, p)
	if v, ok := progCache.Load(key); ok {
		return v.(*isa.Program)
	}
	built := build()
	if err := built.Validate(); err != nil {
		panic("kernels: " + key + ": " + err.Error())
	}
	prog, _ := progCache.LoadOrStore(key, built)
	return prog.(*isa.Program)
}
