package kernels

import (
	"fmt"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// KMEANS: one iteration of k-means clustering over integer points.
// Two kernels: assignment (each thread finds the nearest centroid for
// its point, centroids staged in shared memory) and update (per-cluster
// sums recomputed, then centroids averaged, with a fence before the
// completion count). The update kernel is *designed for one
// thread-block* — each cluster's accumulation is owned by a single
// thread — but the benchmark launches it with several blocks to scale
// up the workload, so every block performs the same unsynchronized
// read-modify-writes on the shared accumulators: the documented bug.
// Params.SingleBlock restores the designed-for launch.
const (
	kmPoints   = 512 // per Scale unit
	kmDims     = 4
	kmClusters = 8
	kmBlockDim = 64
	kmBugGrid  = 4 // blocks for the buggy update launch
)

func init() {
	register(&Benchmark{
		Name:  "kmeans",
		Desc:  "k-means clustering iteration, single-block update kernel launched multi-block",
		Input: fmt.Sprintf("%d points, %d dims, %d clusters", kmPoints, kmDims, kmClusters),
		Sites: []Site{
			{ID: "kmeans.bar0", Kind: InjRemoveBarrier, Desc: "barrier after staging centroids in shared (assign)"},
			{ID: "kmeans.bar1", Kind: InjRemoveBarrier, Desc: "barrier after clearing the accumulators (update)"},
			{ID: "kmeans.bar2", Kind: InjRemoveBarrier, Desc: "barrier after accumulation (update)"},
			{ID: "kmeans.bar3", Kind: InjRemoveBarrier, Desc: "barrier after averaging (update)"},
			{ID: "kmeans.fence0", Kind: InjRemoveFence, Desc: "fence between the centroid writes and the done counter"},
			{ID: "kmeans.dummy0", Kind: InjDummyCross, Desc: "cross-block store in the assign kernel"},
			{ID: "kmeans.dummy1", Kind: InjDummyCross, Desc: "cross-block store in the update kernel"},
		},
		GlobalBytes: func(scale int) int {
			pts := kmPoints * scale
			return pts*kmDims*4 + pts*4 + kmClusters*kmDims*4*2 + kmClusters*4 + dummyBytes + 8192
		},
		Build: buildKmeans,
	})
}

func buildKmeans(d *gpu.Device, p Params) (*Plan, error) {
	pts := kmPoints * p.scale()
	points, err := d.Malloc(pts * kmDims * 4)
	if err != nil {
		return nil, err
	}
	member, err := d.Malloc(pts * 4)
	if err != nil {
		return nil, err
	}
	centroids, err := d.Malloc(kmClusters * kmDims * 4)
	if err != nil {
		return nil, err
	}
	sums, err := d.Malloc(kmClusters * kmDims * 4)
	if err != nil {
		return nil, err
	}
	counts, err := d.Malloc(kmClusters * 4)
	if err != nil {
		return nil, err
	}
	done, err := d.Malloc(8)
	if err != nil {
		return nil, err
	}
	dummy, err := d.Malloc(dummyBytes)
	if err != nil {
		return nil, err
	}

	hostPts := make([]int32, pts*kmDims)
	x := uint32(7)
	for i := range hostPts {
		x = x*1664525 + 1013904223
		hostPts[i] = int32(x % 100)
		d.Global.SetU32(int(points)/4+i, uint32(hostPts[i]))
	}
	hostCent := make([]int32, kmClusters*kmDims)
	for i := range hostCent {
		hostCent[i] = int32((i * 13) % 100)
		d.Global.SetU32(int(centroids)/4+i, uint32(hostCent[i]))
	}

	// --- assign kernel ---
	assignProg := memoProgram("kmeans-assign", &p, func() *isa.Program {
		ab := isa.NewBuilder("kmeans-assign")
		preamble(ab)
		// Stage centroids in shared: threads with tid < K*D copy one word.
		ab.Ldp(rA, 0) // centroids
		ab.Setpi(0, isa.CmpLT, rTid, kmClusters*kmDims)
		ab.If(0)
		ab.Muli(rB, rTid, 4)
		ab.Add(rC, rA, rB)
		ab.Ld(rD, isa.SpaceGlobal, rC, 0, 4)
		ab.St(isa.SpaceShared, rB, 0, rD, 4)
		ab.EndIf()
		bar(ab, &p, "kmeans.bar0")
		// Nearest centroid for point gtid.
		ab.Ldp(rE, 1) // points
		ab.Muli(rF, rGtid, kmDims*4)
		ab.Add(rE, rE, rF) // &points[gtid][0]
		ab.Movi(rG, 1<<40) // best distance
		ab.Movi(rH, 0)     // best cluster
		ab.Movi(rI, 0)     // c
		ab.Setpi(1, isa.CmpLT, rI, kmClusters)
		ab.While(1)
		ab.Movi(rJ, 0) // dist
		ab.Movi(rK, 0) // d
		ab.Setpi(2, isa.CmpLT, rK, kmDims)
		ab.While(2)
		ab.Muli(rL, rK, 4)
		ab.Add(rM, rE, rL)
		ab.Ld(rM, isa.SpaceGlobal, rM, 0, 4) // point[d]
		ab.Muli(rN, rI, kmDims*4)
		ab.Add(rN, rN, rL)
		ab.Ld(rN, isa.SpaceShared, rN, 0, 4) // centroid[c][d]
		ab.Sub(rM, rM, rN)
		ab.Mul(rM, rM, rM)
		ab.Add(rJ, rJ, rM)
		ab.Addi(rK, rK, 1)
		ab.Setpi(2, isa.CmpLT, rK, kmDims)
		ab.EndWhile()
		ab.Setp(3, isa.CmpLT, rJ, rG)
		ab.If(3)
		ab.Mov(rG, rJ)
		ab.Mov(rH, rI)
		ab.EndIf()
		ab.Addi(rI, rI, 1)
		ab.Setpi(1, isa.CmpLT, rI, kmClusters)
		ab.EndWhile()
		ab.Ldp(rA, 2) // member
		ab.Muli(rB, rGtid, 4)
		ab.Add(rA, rA, rB)
		ab.St(isa.SpaceGlobal, rA, 0, rH, 4)
		dummyCross(ab, &p, "kmeans.dummy0", 6)
		ab.Exit()
		return ab.MustBuild()
	})

	// --- update kernel (designed for a single block) ---
	updateProg := memoProgram("kmeans-update", &p, func() *isa.Program {
		ub := isa.NewBuilder("kmeans-update")
		preamble(ub)
		// Clear accumulators. The second warp (tids 32..63) clears, while
		// the first warp later accumulates: the barrier between them is
		// load-bearing across warps.
		ub.Ldp(rA, 3)         // sums
		ub.Ldp(rB, 4)         // counts
		ub.Subi(rO, rTid, 32) // index within the clearing warp
		ub.Setpi(0, isa.CmpGE, rTid, 32)
		ub.If(0)
		ub.Setpi(1, isa.CmpLT, rO, kmClusters*kmDims)
		ub.If(1)
		ub.Muli(rC, rO, 4)
		ub.Add(rC, rA, rC)
		ub.Movi(rD, 0)
		ub.St(isa.SpaceGlobal, rC, 0, rD, 4)
		ub.EndIf()
		ub.Setpi(1, isa.CmpLT, rO, kmClusters)
		ub.If(1)
		ub.Muli(rC, rO, 4)
		ub.Add(rC, rB, rC)
		ub.Movi(rD, 0)
		ub.St(isa.SpaceGlobal, rC, 0, rD, 4)
		ub.EndIf()
		ub.EndIf()
		bar(ub, &p, "kmeans.bar1")
		// Accumulate: thread c < K owns cluster c; scans all points.
		ub.Setpi(2, isa.CmpLT, rTid, kmClusters)
		ub.If(2)
		ub.Ldp(rE, 1) // points
		ub.Ldp(rF, 2) // member
		ub.Movi(rI, 0)
		ub.Setpi(3, isa.CmpLT, rI, int64(pts))
		ub.While(3)
		ub.Muli(rC, rI, 4)
		ub.Add(rC, rF, rC)
		ub.Ld(rD, isa.SpaceGlobal, rC, 0, 4) // member[p]
		ub.Setp(4, isa.CmpEQ, rD, rTid)
		ub.If(4)
		// counts[c]++ and sums[c][d] += point[p][d] — unsynchronized
		// global RMWs, safe only when one block runs them.
		ub.Muli(rC, rTid, 4)
		ub.Add(rC, rB, rC)
		ub.Note("counts[c]++: unsynchronized RMW, single-block by design")
		ub.Ld(rD, isa.SpaceGlobal, rC, 0, 4)
		ub.Addi(rD, rD, 1)
		ub.St(isa.SpaceGlobal, rC, 0, rD, 4)
		ub.Movi(rK, 0)
		ub.Setpi(5, isa.CmpLT, rK, kmDims)
		ub.While(5)
		ub.Muli(rL, rI, kmDims*4)
		ub.Muli(rM, rK, 4)
		ub.Add(rL, rL, rM)
		ub.Add(rL, rE, rL)
		ub.Ld(rL, isa.SpaceGlobal, rL, 0, 4) // point[p][d]
		ub.Muli(rN, rTid, kmDims*4)
		ub.Add(rN, rN, rM)
		ub.Add(rN, rA, rN)
		ub.Ld(rM, isa.SpaceGlobal, rN, 0, 4)
		ub.Add(rM, rM, rL)
		ub.St(isa.SpaceGlobal, rN, 0, rM, 4)
		ub.Addi(rK, rK, 1)
		ub.Setpi(5, isa.CmpLT, rK, kmDims)
		ub.EndWhile()
		ub.EndIf()
		ub.Addi(rI, rI, 1)
		ub.Setpi(3, isa.CmpLT, rI, int64(pts))
		ub.EndWhile()
		ub.EndIf()
		dummyCross(ub, &p, "kmeans.dummy1", 6)
		bar(ub, &p, "kmeans.bar2")
		// Average: the second warp writes centroid[i] = sums[i]/counts[i/D],
		// reading the first warp's accumulation across the barrier.
		ub.Setpi(6, isa.CmpGE, rTid, 32)
		ub.If(6)
		ub.Setpi(7, isa.CmpLT, rO, kmClusters*kmDims)
		ub.If(7)
		ub.Muli(rC, rO, 4)
		ub.Add(rC, rA, rC)
		ub.Ld(rD, isa.SpaceGlobal, rC, 0, 4) // sum
		ub.Divi(rE, rO, kmDims)
		ub.Muli(rE, rE, 4)
		ub.Add(rE, rB, rE)
		ub.Ld(rF, isa.SpaceGlobal, rE, 0, 4) // count
		ub.Movi(rG, 1)                       // avoid division by zero: max(count, 1)
		ub.Max(rF, rF, rG)
		ub.Div(rD, rD, rF)
		ub.Ldp(rH, 0) // centroids
		ub.Muli(rC, rO, 4)
		ub.Add(rH, rH, rC)
		ub.St(isa.SpaceGlobal, rH, 0, rD, 4)
		ub.EndIf()
		ub.EndIf()
		// Every thread fences (the centroid writers' fence clocks must
		// advance), the averaging warp signals completion, and thread 0
		// consumes the centroids once every block has signalled — atomic
		// flag synchronization, not a barrier, so the fence is what makes
		// the consumption safe (Figure 4's pattern).
		fence(ub, &p, "kmeans.fence0")
		ub.Setpi(0, isa.CmpGE, rTid, 32)
		ub.If(0)
		ub.Setpi(1, isa.CmpLT, rO, kmClusters*kmDims)
		ub.If(1)
		ub.Ldp(rC, 5)
		ub.Movi(rD, 1)
		ub.Atom(rE, isa.AtomAdd, isa.SpaceGlobal, rC, 0, rD, 0)
		ub.EndIf()
		ub.EndIf()
		ub.Setpi(2, isa.CmpEQ, rTid, 0)
		ub.If(2)
		// Poll until all blocks' averaging warps have signalled.
		ub.Ldp(rC, 5)
		ub.Movi(rF, kmClusters*kmDims)
		ub.Mul(rF, rF, rNctaid) // expected signals
		ub.Movi(rD, 0)
		ub.Setpi(3, isa.CmpLT, rD, 1) // enter loop
		ub.While(3)
		ub.Movi(rE, 0)
		ub.Atom(rD, isa.AtomAdd, isa.SpaceGlobal, rC, 0, rE, 0)
		ub.Setp(3, isa.CmpLT, rD, rF)
		ub.EndWhile()
		// Consume: checksum the centroids into done[1].
		ub.Ldp(rH, 0)
		ub.Movi(rG, 0)
		ub.Movi(rI, 0)
		ub.Setpi(4, isa.CmpLT, rI, kmClusters*kmDims)
		ub.While(4)
		ub.Muli(rD, rI, 4)
		ub.Add(rD, rH, rD)
		ub.Ld(rE, isa.SpaceGlobal, rD, 0, 4)
		ub.Add(rG, rG, rE)
		ub.Addi(rI, rI, 1)
		ub.Setpi(4, isa.CmpLT, rI, kmClusters*kmDims)
		ub.EndWhile()
		ub.St(isa.SpaceGlobal, rC, 4, rG, 4)
		ub.EndIf()
		bar(ub, &p, "kmeans.bar3")
		// Re-clear the accumulators for a following iteration: the first
		// warp overwrites what the second warp's averaging just read, so
		// the barrier above is load-bearing across warps.
		ub.Setpi(5, isa.CmpLT, rTid, kmClusters*kmDims)
		ub.If(5)
		ub.Muli(rC, rTid, 4)
		ub.Add(rC, rA, rC)
		ub.Movi(rD, 0)
		ub.St(isa.SpaceGlobal, rC, 0, rD, 4)
		ub.EndIf()
		ub.Exit()
		return ub.MustBuild()
	})

	assignGrid := (pts + kmBlockDim - 1) / kmBlockDim
	updateGrid := kmBugGrid
	if p.SingleBlock {
		updateGrid = 1
	}
	kAssign := &gpu.Kernel{
		Name: "kmeans-assign", Prog: assignProg,
		GridDim: assignGrid, BlockDim: kmBlockDim,
		SharedBytes: kmClusters * kmDims * 4,
		Params:      []uint64{centroids, points, member, sums, counts, done, dummy},
	}
	kUpdate := &gpu.Kernel{
		Name: "kmeans-update", Prog: updateProg,
		GridDim: updateGrid, BlockDim: kmBlockDim,
		Params: []uint64{centroids, points, member, sums, counts, done, dummy},
	}

	var verify func(d *gpu.Device) error
	if p.SingleBlock {
		verify = func(d *gpu.Device) error {
			// Host reference: assignment + update over the same data.
			wantCent := make([]int32, kmClusters*kmDims)
			cnt := make([]int32, kmClusters)
			sum := make([]int64, kmClusters*kmDims)
			for pt := 0; pt < pts; pt++ {
				best, bestD := 0, int64(1)<<40
				for c := 0; c < kmClusters; c++ {
					var dist int64
					for dim := 0; dim < kmDims; dim++ {
						diff := int64(hostPts[pt*kmDims+dim] - hostCent[c*kmDims+dim])
						dist += diff * diff
					}
					if dist < bestD {
						bestD, best = dist, c
					}
				}
				cnt[best]++
				for dim := 0; dim < kmDims; dim++ {
					sum[best*kmDims+dim] += int64(hostPts[pt*kmDims+dim])
				}
			}
			for c := 0; c < kmClusters; c++ {
				n := cnt[c]
				if n < 1 {
					n = 1
				}
				for dim := 0; dim < kmDims; dim++ {
					wantCent[c*kmDims+dim] = int32(sum[c*kmDims+dim] / int64(n))
				}
			}
			for i := range wantCent {
				if got := int32(d.Global.U32(int(centroids)/4 + i)); got != wantCent[i] {
					return fmt.Errorf("kmeans: centroid[%d] = %d, want %d", i, got, wantCent[i])
				}
			}
			return nil
		}
	}
	return &Plan{
		Kernels:  []*gpu.Kernel{kAssign, kUpdate},
		AppBytes: pts*kmDims*4 + pts*4 + kmClusters*kmDims*8 + kmClusters*4,
		Verify:   verify,
	}, nil
}
