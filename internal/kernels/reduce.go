package kernels

import (
	"fmt"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// REDUCE: single-kernel parallel sum. Each block reduces its chunk in
// shared memory, writes a partial sum to global memory, executes a
// memory fence, and atomically increments a completion counter; the
// last block to finish reduces the partials into the final value.
// The fence between the partial-sum store and the counter increment is
// exactly what Section III-C's detection protects: removing it (the
// "reduce.fence0" injection) lets the last block consume partials
// before they are guaranteed visible.
const (
	rdBlockDim = 128
	rdBlocks   = 16 // per Scale unit
	rdPerThr   = 16 // elements per thread
)

func init() {
	register(&Benchmark{
		Name:  "reduce",
		Desc:  "parallel reduction with last-block-done fence (CUDA SDK reduction + threadFenceReduction)",
		Input: fmt.Sprintf("%d elements, %d blocks x %d threads", rdBlocks*rdBlockDim*rdPerThr, rdBlocks, rdBlockDim),
		Sites: []Site{
			{ID: "reduce.bar0", Kind: InjRemoveBarrier, Desc: "barrier after per-thread partial sums land in shared"},
			{ID: "reduce.bar1", Kind: InjRemoveBarrier, Desc: "barrier inside the block tree reduction"},
			{ID: "reduce.bar2", Kind: InjRemoveBarrier, Desc: "barrier inside the last block's final reduction"},
			{ID: "reduce.fence0", Kind: InjRemoveFence, Desc: "fence between the partial-sum store and the done-counter increment"},
			{ID: "reduce.dummy0", Kind: InjDummyCross, Desc: "cross-block store while accumulating"},
			{ID: "reduce.dummy1", Kind: InjDummyCross, Desc: "cross-block store in the final reduction"},
		},
		GlobalBytes: func(scale int) int {
			return rdBlocks*scale*rdBlockDim*rdPerThr*4 + rdBlocks*scale*4 + dummyBytes + 4096
		},
		Build: buildReduce,
	})
}

func buildReduce(d *gpu.Device, p Params) (*Plan, error) {
	blocks := rdBlocks * p.scale()
	n := blocks * rdBlockDim * rdPerThr
	in, err := d.Malloc(n * 4)
	if err != nil {
		return nil, err
	}
	partials, err := d.Malloc(blocks * 4)
	if err != nil {
		return nil, err
	}
	result, err := d.Malloc(4)
	if err != nil {
		return nil, err
	}
	counter, err := d.Malloc(4)
	if err != nil {
		return nil, err
	}
	dummy, err := d.Malloc(dummyBytes)
	if err != nil {
		return nil, err
	}
	var want uint64
	for i := 0; i < n; i++ {
		v := uint32(i%97 + 1)
		d.Global.SetU32(int(in)/4+i, v)
		want += uint64(v)
	}
	want &= 0xFFFFFFFF

	prog := memoProgram("reduce", &p, func() *isa.Program {
		b := isa.NewBuilder("reduce")
		preamble(b)
		// Grid-stride accumulation: sum = Σ in[gtid + k*gridSize].
		b.Ldp(rA, 0) // in
		b.Mul(rB, rNtid, rNctaid)
		b.Movi(rG, 0) // sum
		b.Mov(rC, rGtid)
		b.Setpi(0, isa.CmpLT, rC, int64(n))
		b.While(0)
		b.Muli(rD, rC, 4)
		b.Add(rD, rA, rD)
		b.Ld(rE, isa.SpaceGlobal, rD, 0, 4)
		b.Add(rG, rG, rE)
		b.Add(rC, rC, rB)
		b.Setpi(0, isa.CmpLT, rC, int64(n))
		b.EndWhile()
		dummyCross(b, &p, "reduce.dummy0", 4)
		// shared[tid] = sum; tree reduce.
		b.Muli(rD, rTid, 4)
		b.St(isa.SpaceShared, rD, 0, rG, 4)
		bar(b, &p, "reduce.bar0")
		b.Shri(rI, rNtid, 1)
		b.Setpi(0, isa.CmpGE, rI, 1)
		b.While(0)
		b.Setp(1, isa.CmpLT, rTid, rI)
		b.If(1)
		b.Add(rE, rTid, rI)
		b.Muli(rE, rE, 4)
		b.Ld(rF, isa.SpaceShared, rE, 0, 4)
		b.Muli(rD, rTid, 4)
		b.Ld(rH, isa.SpaceShared, rD, 0, 4)
		b.Add(rH, rH, rF)
		b.St(isa.SpaceShared, rD, 0, rH, 4)
		b.EndIf()
		bar(b, &p, "reduce.bar1")
		b.Shri(rI, rI, 1)
		b.Setpi(0, isa.CmpGE, rI, 1)
		b.EndWhile()

		// Thread 0: partials[bid] = shared[0]; fence; old = atomicInc.
		// isLast broadcast through a dedicated flag word *past* the
		// reduction array (aliasing the array would be a real WAR race
		// against the last block's re-use of the slots).
		b.Setpi(2, isa.CmpEQ, rTid, 0)
		b.If(2)
		b.Movi(rD, 0)
		b.Ld(rH, isa.SpaceShared, rD, 0, 4)
		b.Ldp(rB, 1) // partials
		b.Muli(rC, rBid, 4)
		b.Add(rB, rB, rC)
		b.Note("store partials[bid]; must be fenced before the done counter")
		b.St(isa.SpaceGlobal, rB, 0, rH, 4)
		fence(b, &p, "reduce.fence0")
		b.Ldp(rE, 3) // counter
		b.Subi(rF, rNctaid, 0)
		b.Atom(rK, isa.AtomInc, isa.SpaceGlobal, rE, 0, rF, 0)
		// isLast = (old == gridDim-1); stash in shared[1].
		b.Subi(rF, rNctaid, 1)
		b.Setp(3, isa.CmpEQ, rK, rF)
		b.Movi(rL, 0)
		b.Movi(rM, 1)
		b.Selp(rN, 3, rM, rL)
		b.Movi(rD, rdBlockDim*4)
		b.St(isa.SpaceShared, rD, 0, rN, 4)
		b.EndIf()
		b.Bar() // broadcast isLast (not an injection site: removing it
		// would break control flow, not just ordering)
		b.Movi(rD, rdBlockDim*4)
		b.Ld(rN, isa.SpaceShared, rD, 0, 4)
		b.Setpi(4, isa.CmpEQ, rN, 1)
		b.If(4)
		// Last block: load partials into shared and tree-reduce them.
		b.Movi(rG, 0)
		b.Mov(rC, rTid)
		b.Setpi(5, isa.CmpLT, rC, int64(blocks))
		b.While(5)
		b.Ldp(rB, 1)
		b.Muli(rE, rC, 4)
		b.Add(rB, rB, rE)
		b.Note("last block consumes partials[i]")
		b.Ld(rF, isa.SpaceGlobal, rB, 0, 4)
		b.Add(rG, rG, rF)
		b.Add(rC, rC, rNtid)
		b.Setpi(5, isa.CmpLT, rC, int64(blocks))
		b.EndWhile()
		dummyCross(b, &p, "reduce.dummy1", 4)
		b.Muli(rD, rTid, 4)
		b.St(isa.SpaceShared, rD, 0, rG, 4)
		b.Bar() // within the guarded region; uniform per block
		b.Shri(rI, rNtid, 1)
		b.Setpi(5, isa.CmpGE, rI, 1)
		b.While(5)
		b.Setp(6, isa.CmpLT, rTid, rI)
		b.If(6)
		b.Add(rE, rTid, rI)
		b.Muli(rE, rE, 4)
		b.Ld(rF, isa.SpaceShared, rE, 0, 4)
		b.Muli(rD, rTid, 4)
		b.Ld(rH, isa.SpaceShared, rD, 0, 4)
		b.Add(rH, rH, rF)
		b.St(isa.SpaceShared, rD, 0, rH, 4)
		b.EndIf()
		bar(b, &p, "reduce.bar2")
		b.Shri(rI, rI, 1)
		b.Setpi(5, isa.CmpGE, rI, 1)
		b.EndWhile()
		b.Setpi(6, isa.CmpEQ, rTid, 0)
		b.If(6)
		b.Movi(rD, 0)
		b.Ld(rH, isa.SpaceShared, rD, 0, 4)
		b.Ldp(rB, 2) // result
		b.St(isa.SpaceGlobal, rB, 0, rH, 4)
		b.EndIf()
		b.EndIf()
		b.Exit()
		return b.MustBuild()
	})

	k := &gpu.Kernel{
		Name: "reduce", Prog: prog,
		GridDim: blocks, BlockDim: rdBlockDim,
		SharedBytes: (rdBlockDim + 1) * 4,
		Params:      []uint64{in, partials, result, counter, dummy},
	}
	verify := func(d *gpu.Device) error {
		if got := uint64(d.Global.U32(int(result) / 4)); got != want {
			return fmt.Errorf("reduce: result = %d, want %d", got, want)
		}
		return nil
	}
	return &Plan{Kernels: []*gpu.Kernel{k}, AppBytes: n*4 + blocks*4 + 8, Verify: verify}, nil
}
