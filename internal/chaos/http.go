package chaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// HTTP fault clause kinds. Schedules use the same spec grammar as the
// filesystem schedule ("reset:nth=2;burst503:from=3,count=4") with the
// clause set the service client's failure handling must survive:
//
//	reset:nth=N[,path=p]          Nth matching request fails at the
//	                              transport (connection reset)
//	burst503:from=N,count=M[...]  matching requests N..N+M-1 get a
//	                              synthesized 503 + Retry-After
//	stall:nth=N[,path=p]          Nth matching response's body hangs
//	                              until the request context ends
//	corrupt:nth=N[,path=p]        Nth matching response body is
//	                              truncated mid-JSON
const (
	KindReset    = "reset"
	KindBurst503 = "burst503"
	KindStall    = "stall"
	KindCorrupt  = "corrupt"
)

// HTTPClause is one scheduled HTTP fault. Path matches the request
// URL's path by substring (empty = all requests); counters are
// per-clause over matching requests, 1-based.
type HTTPClause struct {
	Kind  string
	Path  string
	Nth   int // reset/stall/corrupt: which matching request fires
	From  int // burst503: first matching request of the burst
	Count int // burst503: burst length

	seen int
}

// String renders the clause in canonical spec form.
func (c *HTTPClause) String() string {
	var parts []string
	if c.Path != "" {
		parts = append(parts, "path="+c.Path)
	}
	if c.Kind == KindBurst503 {
		parts = append(parts, "from="+strconv.Itoa(c.From), "count="+strconv.Itoa(c.Count))
	} else if c.Nth != 1 {
		parts = append(parts, "nth="+strconv.Itoa(c.Nth))
	}
	if len(parts) == 0 {
		return c.Kind
	}
	return c.Kind + ":" + strings.Join(parts, ",")
}

func (c *HTTPClause) validate() error {
	switch c.Kind {
	case KindReset, KindStall, KindCorrupt:
		if c.Nth < 1 {
			return fmt.Errorf("chaos: http clause %s: nth must be >= 1", c.Kind)
		}
	case KindBurst503:
		if c.From < 1 || c.Count < 1 {
			return fmt.Errorf("chaos: burst503 clause needs from>=1 and count>=1")
		}
	default:
		return fmt.Errorf("chaos: unknown http fault clause kind %q", c.Kind)
	}
	return nil
}

// fires says whether this matching request (1-based index n) is hit.
func (c *HTTPClause) fires(n int) bool {
	if c.Kind == KindBurst503 {
		return n >= c.From && n < c.From+c.Count
	}
	return n == c.Nth
}

// HTTPSchedule is an ordered set of HTTP fault clauses.
type HTTPSchedule struct {
	Clauses []*HTTPClause
}

// ParseHTTPSchedule parses an HTTP fault schedule spec; "" is the
// fault-free schedule.
func ParseHTTPSchedule(spec string) (*HTTPSchedule, error) {
	s := &HTTPSchedule{}
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	for _, cs := range strings.Split(spec, ";") {
		cs = strings.TrimSpace(cs)
		if cs == "" {
			continue
		}
		kind, rest, _ := strings.Cut(cs, ":")
		c := &HTTPClause{Kind: strings.TrimSpace(kind), Nth: 1}
		if rest != "" {
			for _, kv := range strings.Split(rest, ",") {
				k, v, ok := strings.Cut(kv, "=")
				k, v = strings.TrimSpace(k), strings.TrimSpace(v)
				if !ok || v == "" {
					return nil, fmt.Errorf("chaos: http clause %q: malformed param %q", cs, kv)
				}
				var err error
				switch k {
				case "path":
					c.Path = v
				case "nth":
					c.Nth, err = strconv.Atoi(v)
				case "from":
					c.From, err = strconv.Atoi(v)
				case "count":
					c.Count, err = strconv.Atoi(v)
				default:
					return nil, fmt.Errorf("chaos: http clause %q: unknown param %q", cs, k)
				}
				if err != nil {
					return nil, fmt.Errorf("chaos: http clause %q: %s: %v", cs, k, err)
				}
			}
		}
		if err := c.validate(); err != nil {
			return nil, err
		}
		s.Clauses = append(s.Clauses, c)
	}
	return s, nil
}

// String renders the schedule in canonical spec form.
func (s *HTTPSchedule) String() string {
	if s == nil || len(s.Clauses) == 0 {
		return ""
	}
	parts := make([]string, len(s.Clauses))
	for i, c := range s.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, ";")
}

func (s *HTTPSchedule) clone() *HTTPSchedule {
	out := &HTTPSchedule{Clauses: make([]*HTTPClause, len(s.Clauses))}
	for i, c := range s.Clauses {
		cc := *c
		cc.seen = 0
		out.Clauses[i] = &cc
	}
	return out
}

// FaultTransport is an http.RoundTripper that injects scheduled faults
// between a service.Client and its daemon. Deterministic: per-clause
// request counters decide what fires, never randomness.
type FaultTransport struct {
	inner http.RoundTripper

	mu    sync.Mutex
	sched *HTTPSchedule
	fired []string
}

// NewFaultTransport wraps inner (http.DefaultTransport when nil) with
// the fault schedule. The schedule's counters are private to this
// transport.
func NewFaultTransport(inner http.RoundTripper, sched *HTTPSchedule) *FaultTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if sched == nil {
		sched = &HTTPSchedule{}
	}
	return &FaultTransport{inner: inner, sched: sched.clone()}
}

// Fired returns the log of fired faults in firing order.
func (t *FaultTransport) Fired() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.fired...)
}

// RoundTrip implements http.RoundTripper. The first clause that fires
// on a request owns it; every matching clause still counts the request
// so schedules compose predictably.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	path := req.URL.Path
	t.mu.Lock()
	var hit *HTTPClause
	for _, c := range t.sched.Clauses {
		if c.Path != "" && !strings.Contains(path, c.Path) {
			continue
		}
		c.seen++
		if hit == nil && c.fires(c.seen) {
			hit = c
			t.fired = append(t.fired, fmt.Sprintf("%s fired on %s %s", c, req.Method, path))
		}
	}
	t.mu.Unlock()
	if hit == nil {
		return t.inner.RoundTrip(req)
	}

	switch hit.Kind {
	case KindReset:
		return nil, fmt.Errorf("%w: connection reset by peer: %s %s", ErrInjected, req.Method, path)
	case KindBurst503:
		body := `{"error":"chaos: injected 503"}`
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header: http.Header{
				"Content-Type": []string{"application/json"},
				"Retry-After":  []string{"0"},
			},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case KindStall:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The headers arrive; the body never does. The reader hangs
		// until the request context ends — exactly the failure a client
		// with no read deadline would hang on forever.
		resp.Body.Close()
		resp.Body = &stalledBody{ctx: req.Context()}
		resp.ContentLength = -1
		return resp, nil
	case KindCorrupt:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		// Truncate mid-payload: syntactically broken JSON the decoder
		// must reject, not quietly mis-parse.
		cut := data[:len(data)/2]
		resp.Body = io.NopCloser(bytes.NewReader(cut))
		resp.ContentLength = int64(len(cut))
		return resp, nil
	}
	return t.inner.RoundTrip(req)
}

// stalledBody blocks every Read until the request context ends.
type stalledBody struct {
	ctx context.Context
}

func (b *stalledBody) Read(p []byte) (int, error) {
	<-b.ctx.Done()
	return 0, fmt.Errorf("%w: stalled body: %v", ErrInjected, b.ctx.Err())
}

func (b *stalledBody) Close() error { return nil }
