// Package chaos is the cross-layer chaos engine: deterministic,
// seeded fault injection composed across every layer of the system —
// the detector's own fault plans (internal/fault), filesystem faults
// under the durability spine (this file), and HTTP faults around the
// service client (http.go) — driven by campaigns (campaign.go) that
// assert the system's four robustness invariants after every step and
// minimize any violation to a one-line repro.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"io/fs"

	"haccrg/internal/vfs"
)

// Injected-fault sentinels. Every error the fault FS manufactures
// wraps ErrInjected, so tests and invariant checkers can tell injected
// damage from a real environmental failure; ErrCrashed marks every
// operation after a crash-point fired.
var (
	ErrInjected = errors.New("chaos: injected fault")
	ErrCrashed  = errors.New("chaos: filesystem crashed")
)

// CrashMode selects what a crash clause does when it fires.
type CrashMode int

const (
	// CrashSimulate models the crash in-process: every file the FS has
	// written is truncated to its last-synced length (unsynced bytes
	// are what a real power cut loses), and every later operation fails
	// with ErrCrashed. The test then reopens the tree with a fresh FS
	// and exercises recovery.
	CrashSimulate CrashMode = iota
	// CrashExit kills the process with exit code 137 — the helper-
	// process mode haccrg-chaos uses so recovery is exercised across a
	// real process boundary, not just a simulated one.
	CrashExit
)

// Fault schedule clause kinds.
const (
	KindShortWrite = "shortwrite" // nth matching write stops halfway and errors
	KindSyncErr    = "syncerr"    // nth matching fsync fails (bytes stay unsynced)
	KindENOSPC     = "enospc"     // matching writes fail once `after` bytes landed
	KindTornRename = "tornrename" // nth matching rename silently half-commits
	KindCrash      = "crash"      // nth matching op crashes the filesystem
)

// crashable ops a crash clause can name.
var crashOps = map[string]bool{
	"create": true, "open": true, "write": true, "sync": true,
	"close": true, "rename": true, "remove": true,
}

// Clause is one scheduled filesystem fault. Matching is by operation
// kind plus Path substring (empty matches every path); Nth counts
// matching operations 1-based, so `syncerr:path=manifest,nth=2` fires
// on the second fsync of any path containing "manifest".
type Clause struct {
	Kind string
	// Op is the crashed operation for crash clauses (create, open,
	// write, sync, close, rename, remove).
	Op string
	// Path is a substring filter on the target path; empty matches all.
	Path string
	// Nth is which matching operation fires the clause, 1-based
	// (default 1). ENOSPC clauses ignore it.
	Nth int
	// After is the ENOSPC byte budget: matching writes fail once the
	// clause has admitted this many bytes.
	After int64

	seen  int   // matching operations observed
	bytes int64 // bytes admitted (enospc)
}

// String renders the clause in canonical spec form — Parse(c.String())
// round-trips.
func (c *Clause) String() string {
	var parts []string
	if c.Op != "" {
		parts = append(parts, "op="+c.Op)
	}
	if c.Path != "" {
		parts = append(parts, "path="+c.Path)
	}
	if c.Kind == KindENOSPC {
		parts = append(parts, "after="+strconv.FormatInt(c.After, 10))
	} else if c.Nth != 1 {
		parts = append(parts, "nth="+strconv.Itoa(c.Nth))
	}
	if len(parts) == 0 {
		return c.Kind
	}
	return c.Kind + ":" + strings.Join(parts, ",")
}

func (c *Clause) validate() error {
	switch c.Kind {
	case KindShortWrite, KindSyncErr, KindENOSPC, KindTornRename:
		if c.Op != "" {
			return fmt.Errorf("chaos: %s clause takes no op", c.Kind)
		}
	case KindCrash:
		if !crashOps[c.Op] {
			return fmt.Errorf("chaos: crash clause needs op= one of create/open/write/sync/close/rename/remove, got %q", c.Op)
		}
	default:
		return fmt.Errorf("chaos: unknown fault clause kind %q", c.Kind)
	}
	if c.Nth < 1 {
		return fmt.Errorf("chaos: clause %s: nth must be >= 1", c.Kind)
	}
	if c.After < 0 {
		return fmt.Errorf("chaos: clause %s: after must be >= 0", c.Kind)
	}
	return nil
}

// Schedule is an ordered set of filesystem fault clauses, parsed from
// and rendered to the semicolon-separated spec form used on repro
// lines: "syncerr:path=manifest,nth=2;crash:op=rename,path=spec".
type Schedule struct {
	Clauses []*Clause
}

// ParseSchedule parses a fault schedule spec. The empty string is the
// empty (fault-free) schedule.
func ParseSchedule(spec string) (*Schedule, error) {
	s := &Schedule{}
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	for _, cs := range strings.Split(spec, ";") {
		cs = strings.TrimSpace(cs)
		if cs == "" {
			continue
		}
		kind, rest, _ := strings.Cut(cs, ":")
		c := &Clause{Kind: strings.TrimSpace(kind), Nth: 1}
		if rest != "" {
			for _, kv := range strings.Split(rest, ",") {
				k, v, ok := strings.Cut(kv, "=")
				k, v = strings.TrimSpace(k), strings.TrimSpace(v)
				if !ok || v == "" {
					return nil, fmt.Errorf("chaos: clause %q: malformed param %q", cs, kv)
				}
				switch k {
				case "op":
					c.Op = v
				case "path":
					c.Path = v
				case "nth":
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("chaos: clause %q: nth: %v", cs, err)
					}
					c.Nth = n
				case "after":
					n, err := strconv.ParseInt(v, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("chaos: clause %q: after: %v", cs, err)
					}
					c.After = n
				default:
					return nil, fmt.Errorf("chaos: clause %q: unknown param %q", cs, k)
				}
			}
		}
		if err := c.validate(); err != nil {
			return nil, err
		}
		s.Clauses = append(s.Clauses, c)
	}
	return s, nil
}

// String renders the schedule in canonical spec form.
func (s *Schedule) String() string {
	if s == nil || len(s.Clauses) == 0 {
		return ""
	}
	parts := make([]string, len(s.Clauses))
	for i, c := range s.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, ";")
}

// clone returns a fresh schedule with zeroed counters — a FaultFS
// consumes counters, so each FS instance needs its own copy.
func (s *Schedule) clone() *Schedule {
	out := &Schedule{Clauses: make([]*Clause, len(s.Clauses))}
	for i, c := range s.Clauses {
		cc := *c
		cc.seen, cc.bytes = 0, 0
		out.Clauses[i] = &cc
	}
	return out
}

// fileState is the crash model's view of one written path: how big the
// file is, and how much of it is on stable storage. A crash truncates
// the real file to the synced length — unsynced bytes are gone.
type fileState struct {
	size   int64
	synced int64
	open   *faultFile // writable handle currently open, if any
}

// FaultFS is a vfs.FS that injects scheduled faults into a real
// filesystem underneath. All faults are deterministic: the schedule's
// counters, not randomness, decide what fires, so a campaign step's
// repro line reproduces byte-for-byte.
type FaultFS struct {
	mu    sync.Mutex
	real  vfs.FS
	sched *Schedule
	mode  CrashMode
	exit  func(int) // CrashExit hook; os.Exit in production

	crashed bool
	files   map[string]*fileState
	fired   []string
}

// NewFaultFS wraps real (vfs.OS when nil) with the fault schedule.
// The schedule's counters are private to this FS instance.
func NewFaultFS(real vfs.FS, sched *Schedule, mode CrashMode) *FaultFS {
	if sched == nil {
		sched = &Schedule{}
	}
	return &FaultFS{
		real:  vfs.Default(real),
		sched: sched.clone(),
		mode:  mode,
		exit:  os.Exit,
		files: map[string]*fileState{},
	}
}

// SetExit replaces the CrashExit process-kill hook (tests).
func (f *FaultFS) SetExit(fn func(int)) { f.exit = fn }

// Crashed reports whether a crash clause has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Fired returns the log of fired faults, in firing order — what a
// campaign prints alongside a violated invariant.
func (f *FaultFS) Fired() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.fired...)
}

// match finds the first armed clause of kind matching path and, if its
// Nth count is reached, fires it. Caller holds f.mu. ENOSPC is handled
// separately (byte-budget, not nth).
func (f *FaultFS) match(kind, op, path string) *Clause {
	for _, c := range f.sched.Clauses {
		if c.Kind != kind || (kind == KindCrash && c.Op != op) {
			continue
		}
		if c.Path != "" && !strings.Contains(path, c.Path) {
			continue
		}
		c.seen++
		if c.seen == c.Nth {
			f.fired = append(f.fired, fmt.Sprintf("%s fired on %s %s", c, op, path))
			return c
		}
		return nil // first matching clause owns the count
	}
	return nil
}

// enospcBudget returns the matching ENOSPC clause and how many more
// bytes it admits (caller holds f.mu); nil when no clause matches.
func (f *FaultFS) enospcClause(path string) *Clause {
	for _, c := range f.sched.Clauses {
		if c.Kind == KindENOSPC && (c.Path == "" || strings.Contains(path, c.Path)) {
			return c
		}
	}
	return nil
}

// crash fires a crash-point: in CrashExit mode the process dies here;
// in CrashSimulate mode every written file is truncated to its synced
// length and the FS goes dead. Caller holds f.mu.
func (f *FaultFS) crash(op, path string) {
	f.fired = append(f.fired, fmt.Sprintf("crash at %s %s", op, path))
	if f.mode == CrashExit {
		f.exit(137)
		// An injected exit hook that returns falls through to the
		// simulated crash, keeping tests runnable in-process.
	}
	f.crashed = true
	for p, st := range f.files {
		if st.open != nil {
			st.open.f.Truncate(st.synced)
			st.open.f.Sync()
			continue
		}
		if h, err := f.real.OpenFile(p, os.O_RDWR, 0o644); err == nil {
			h.Truncate(st.synced)
			h.Sync()
			h.Close()
		}
	}
}

// TouchedPaths returns every path the FS wrote, sorted (tests).
func (f *FaultFS) TouchedPaths() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.files))
	for p := range f.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// faultFile is one open handle. Position is per-handle; size and
// synced length live in the shared fileState (nil for read-only
// handles, which need only the crashed check).
type faultFile struct {
	fs   *FaultFS
	f    vfs.File
	st   *fileState
	path string
	pos  int64
}

// Create implements vfs.FS.
func (f *FaultFS) Create(name string) (vfs.File, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	if c := f.match(KindCrash, "create", name); c != nil {
		f.crash("create", name)
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	f.mu.Unlock()
	h, err := f.real.Create(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	st := &fileState{}
	f.files[name] = st
	ff := &faultFile{fs: f, f: h, st: st, path: name}
	st.open = ff
	f.mu.Unlock()
	return ff, nil
}

// Open implements vfs.FS (read-only; crash check, no fault surface).
func (f *FaultFS) Open(name string) (vfs.File, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	if c := f.match(KindCrash, "open", name); c != nil {
		f.crash("open", name)
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	f.mu.Unlock()
	h, err := f.real.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: h, path: name}, nil
}

// OpenFile implements vfs.FS. Writable opens of existing files treat
// the preexisting bytes as durable (they survived whatever wrote them).
func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	if c := f.match(KindCrash, "open", name); c != nil {
		f.crash("open", name)
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	f.mu.Unlock()
	h, err := f.real.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	writable := flag&(os.O_WRONLY|os.O_RDWR) != 0
	if !writable {
		return &faultFile{fs: f, f: h, path: name}, nil
	}
	size, err := h.Seek(0, io.SeekEnd)
	if err == nil {
		_, err = h.Seek(0, io.SeekStart)
	}
	if err != nil {
		h.Close()
		return nil, err
	}
	f.mu.Lock()
	st := f.files[name]
	if st == nil {
		st = &fileState{size: size, synced: size}
		f.files[name] = st
	} else {
		st.size = size
		if st.synced > size {
			st.synced = size
		}
	}
	ff := &faultFile{fs: f, f: h, st: st, path: name}
	st.open = ff
	f.mu.Unlock()
	return ff, nil
}

// Rename implements vfs.FS — the commit point of every temp-and-rename
// write, and so the highest-value fault site. A torn rename silently
// half-commits: the destination receives only the first half of the
// source's bytes and the call reports success, modeling a broken FS
// whose damage only recovery-time integrity checks (CRC frames, JSON
// parses) can catch.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	if c := f.match(KindCrash, "rename", newpath); c != nil {
		f.crash("rename", newpath)
		f.mu.Unlock()
		return ErrCrashed
	}
	torn := f.match(KindTornRename, "rename", newpath) != nil
	f.mu.Unlock()
	if torn {
		data, err := f.real.ReadFile(oldpath)
		if err != nil {
			return err
		}
		h, err := f.real.Create(newpath)
		if err != nil {
			return err
		}
		if _, err := h.Write(data[:len(data)/2]); err != nil {
			h.Close()
			return err
		}
		if err := h.Close(); err != nil {
			return err
		}
		f.real.Remove(oldpath)
		f.mu.Lock()
		st := f.files[oldpath]
		delete(f.files, oldpath)
		half := int64(len(data) / 2)
		if st == nil {
			st = &fileState{}
		}
		st.size, st.synced, st.open = half, half, nil
		f.files[newpath] = st
		f.mu.Unlock()
		return nil // silent: the writer believes the commit landed
	}
	if err := f.real.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if st := f.files[oldpath]; st != nil {
		delete(f.files, oldpath)
		f.files[newpath] = st
	}
	f.mu.Unlock()
	return nil
}

// Remove implements vfs.FS.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	if c := f.match(KindCrash, "remove", name); c != nil {
		f.crash("remove", name)
		f.mu.Unlock()
		return ErrCrashed
	}
	delete(f.files, name)
	f.mu.Unlock()
	return f.real.Remove(name)
}

// MkdirAll implements vfs.FS.
func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	f.mu.Unlock()
	return f.real.MkdirAll(path, perm)
}

// ReadFile implements vfs.FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	f.mu.Unlock()
	return f.real.ReadFile(name)
}

// Glob implements vfs.FS.
func (f *FaultFS) Glob(pattern string) ([]string, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	f.mu.Unlock()
	return f.real.Glob(pattern)
}

func (ff *faultFile) Read(p []byte) (int, error) {
	ff.fs.mu.Lock()
	if ff.fs.crashed {
		ff.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	ff.fs.mu.Unlock()
	n, err := ff.f.Read(p)
	ff.pos += int64(n)
	return n, err
}

func (ff *faultFile) Write(p []byte) (int, error) {
	fs := ff.fs
	fs.mu.Lock()
	if fs.crashed {
		fs.mu.Unlock()
		return 0, ErrCrashed
	}
	if ff.st == nil {
		fs.mu.Unlock()
		return 0, fmt.Errorf("%w: write to read-only handle %s", ErrInjected, ff.path)
	}
	if c := fs.match(KindCrash, "write", ff.path); c != nil {
		fs.crash("write", ff.path)
		fs.mu.Unlock()
		return 0, ErrCrashed
	}
	limit := len(p)
	var failure error
	if c := fs.enospcClause(ff.path); c != nil {
		room := c.After - c.bytes
		if room < 0 {
			room = 0
		}
		if int64(limit) > room {
			limit = int(room)
			failure = fmt.Errorf("%w: no space left on device (injected after %d bytes): %s", ErrInjected, c.After, ff.path)
			fs.fired = append(fs.fired, fmt.Sprintf("%s fired on write %s", c, ff.path))
		}
		c.bytes += int64(limit)
	}
	if failure == nil {
		if c := fs.match(KindShortWrite, "write", ff.path); c != nil {
			limit = len(p) / 2
			failure = fmt.Errorf("%w: short write (%d of %d bytes): %s", ErrInjected, limit, len(p), ff.path)
		}
	}
	fs.mu.Unlock()

	n, err := ff.f.Write(p[:limit])
	ff.pos += int64(n)
	fs.mu.Lock()
	if ff.pos > ff.st.size {
		ff.st.size = ff.pos
	}
	fs.mu.Unlock()
	if err != nil {
		return n, err
	}
	if failure != nil {
		return n, failure
	}
	return n, nil
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	ff.fs.mu.Lock()
	if ff.fs.crashed {
		ff.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	ff.fs.mu.Unlock()
	pos, err := ff.f.Seek(offset, whence)
	if err == nil {
		ff.pos = pos
	}
	return pos, err
}

func (ff *faultFile) Sync() error {
	fs := ff.fs
	fs.mu.Lock()
	if fs.crashed {
		fs.mu.Unlock()
		return ErrCrashed
	}
	if c := fs.match(KindCrash, "sync", ff.path); c != nil {
		fs.crash("sync", ff.path)
		fs.mu.Unlock()
		return ErrCrashed
	}
	if c := fs.match(KindSyncErr, "sync", ff.path); c != nil {
		// The bytes stay unsynced: a later crash loses them, exactly as
		// a real failed fsync leaves the page cache in doubt.
		fs.mu.Unlock()
		return fmt.Errorf("%w: fsync failed: %s", ErrInjected, ff.path)
	}
	fs.mu.Unlock()
	if err := ff.f.Sync(); err != nil {
		return err
	}
	fs.mu.Lock()
	if ff.st != nil {
		ff.st.synced = ff.st.size
	}
	fs.mu.Unlock()
	return nil
}

func (ff *faultFile) Close() error {
	fs := ff.fs
	fs.mu.Lock()
	if ff.st != nil && ff.st.open == ff {
		ff.st.open = nil
	}
	if fs.crashed {
		fs.mu.Unlock()
		return ErrCrashed
	}
	if c := fs.match(KindCrash, "close", ff.path); c != nil {
		fs.crash("close", ff.path)
		fs.mu.Unlock()
		return ErrCrashed
	}
	fs.mu.Unlock()
	return ff.f.Close()
}

func (ff *faultFile) Truncate(size int64) error {
	fs := ff.fs
	fs.mu.Lock()
	if fs.crashed {
		fs.mu.Unlock()
		return ErrCrashed
	}
	fs.mu.Unlock()
	if err := ff.f.Truncate(size); err != nil {
		return err
	}
	fs.mu.Lock()
	if ff.st != nil {
		ff.st.size = size
		if ff.st.synced > size {
			ff.st.synced = size
		}
	}
	fs.mu.Unlock()
	return nil
}

func (ff *faultFile) Name() string { return ff.path }
