package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"haccrg/internal/bloom"
	"haccrg/internal/core"
	"haccrg/internal/gpu"
	"haccrg/internal/harness"
	"haccrg/internal/isa"
	"haccrg/internal/journal"
	"haccrg/internal/service"
)

// The four invariants every campaign step is checked against. They
// are the system's cross-layer robustness contract — what must hold
// no matter which faults fire.
const (
	// InvNeverSilent: damage is never silent. A fault either leaves
	// behavior unchanged or surfaces as an error / a Degraded health
	// report; findings never quietly diverge from the fault-free truth.
	InvNeverSilent = "never-silent-divergence"
	// InvJobsNeverDropped: a job whose admission was acknowledged
	// survives any crash and is re-admitted on recovery, in original
	// submission order.
	InvJobsNeverDropped = "accepted-jobs-never-dropped"
	// InvCrashResume: a workload killed mid-flight and resumed from its
	// durable state finishes with byte-identical results.
	InvCrashResume = "crash-resume-byte-identical"
	// InvReplayEqualsLive: a successfully recorded journal replays to
	// the live run's exact verdict.
	InvReplayEqualsLive = "replay-equals-live"
)

// InvariantError reports a violated invariant — the only error class a
// scenario treats as a finding rather than an infrastructure failure.
type InvariantError struct {
	Invariant string
	Detail    string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("invariant %s violated: %s", e.Invariant, e.Detail)
}

// Violation is a campaign finding, minimized and ready to reproduce.
type Violation struct {
	Scenario  string
	Step      int
	SubSeed   int64
	Invariant string
	Detail    string
	FSSched   string
	HTTPSched string
	Fired     []string
}

// Repro renders the one-line reproduction command.
func (v *Violation) Repro() string {
	s := fmt.Sprintf("haccrg-chaos -scenario %s -sub-seed %d", v.Scenario, v.SubSeed)
	if v.FSSched != "" {
		s += fmt.Sprintf(" -fs %q", v.FSSched)
	}
	if v.HTTPSched != "" {
		s += fmt.Sprintf(" -http %q", v.HTTPSched)
	}
	return s
}

func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: INVARIANT VIOLATED: %s\n", v.Invariant)
	fmt.Fprintf(&b, "  scenario: %s (step %d, sub-seed %d)\n", v.Scenario, v.Step, v.SubSeed)
	if v.FSSched != "" {
		fmt.Fprintf(&b, "  fs faults:   %s\n", v.FSSched)
	}
	if v.HTTPSched != "" {
		fmt.Fprintf(&b, "  http faults: %s\n", v.HTTPSched)
	}
	for _, f := range v.Fired {
		fmt.Fprintf(&b, "  fired: %s\n", f)
	}
	fmt.Fprintf(&b, "  detail: %s\n", v.Detail)
	fmt.Fprintf(&b, "  repro:  %s\n", v.Repro())
	return b.String()
}

// stepEnv is what one scenario execution sees: a scratch directory, the
// fault schedules chosen for the step, and a deterministic workload
// seed. Scenarios derive every workload decision from Seed alone, so a
// repro line (scenario, sub-seed, schedules) replays byte-for-byte.
type stepEnv struct {
	Seed int64
	Dir  string
	FS   *Schedule
	HTTP *HTTPSchedule

	fsInst *FaultFS        // created lazily; Fired feeds the violation report
	htInst *FaultTransport //
	logf   func(format string, args ...any)
}

// faultFS builds (once) the step's fault filesystem.
func (e *stepEnv) faultFS() *FaultFS {
	if e.fsInst == nil {
		e.fsInst = NewFaultFS(nil, e.FS, CrashSimulate)
	}
	return e.fsInst
}

// transport builds (once) the step's fault HTTP transport.
func (e *stepEnv) transport() *FaultTransport {
	if e.htInst == nil {
		e.htInst = NewFaultTransport(nil, e.HTTP)
	}
	return e.htInst
}

func (e *stepEnv) fired() []string {
	var out []string
	if e.fsInst != nil {
		out = append(out, e.fsInst.Fired()...)
	}
	if e.htInst != nil {
		out = append(out, e.htInst.Fired()...)
	}
	return out
}

// scenarioDef is one registered chaos scenario: schedule generators
// (drawing from the step's PRNG) plus the run body.
type scenarioDef struct {
	name    string
	about   string
	genFS   func(rng *rand.Rand) *Schedule
	genHTTP func(rng *rand.Rand) *HTTPSchedule
	run     func(ctx context.Context, env *stepEnv) error
}

var scenarios = []scenarioDef{
	{
		name:  "manifest",
		about: "sweep-manifest durability: crash mid-sweep, resume byte-identical",
		genFS: genManifestFaults,
		run:   runManifestScenario,
	},
	{
		name:  "spool",
		about: "service spool: acknowledged jobs survive faults, recover FIFO",
		genFS: genSpoolFaults,
		run:   runSpoolScenario,
	},
	{
		name:  "journal",
		about: "event-journal recording under FS faults: salvage + replay oracle",
		genFS: genJournalFaults,
		run:   runJournalScenario,
	},
	{
		name:    "client",
		about:   "service client vs HTTP faults: resets, 503 bursts, stalls, corruption",
		genHTTP: genClientFaults,
		run:     runClientScenario,
	},
	{
		name:  "sentinel",
		about: "engine self-healing: planted divergence / stalled worker must be caught",
		run:   runSentinelScenario,
	},
}

// Scenarios lists the registered scenario names with descriptions, in
// campaign order.
func Scenarios() []string {
	out := make([]string, len(scenarios))
	for i, s := range scenarios {
		out[i] = fmt.Sprintf("%-10s %s", s.name, s.about)
	}
	return out
}

func findScenario(name string) *scenarioDef {
	for i := range scenarios {
		if scenarios[i].name == name {
			return &scenarios[i]
		}
	}
	return nil
}

// Campaign is a seeded chaos soak: Steps rounds over the selected
// scenarios, each round drawing fresh fault schedules from the
// campaign seed. Deterministic end to end — same seed, same faults,
// same outcome.
type Campaign struct {
	// Seed is the campaign master seed; every step's schedules and
	// workload derive from it.
	Seed int64
	// Steps is how many rounds to run (default 1).
	Steps int
	// Scenarios selects a subset by name (nil/empty = all).
	Scenarios []string
	// Log receives narration (nil = quiet).
	Log io.Writer
}

// Report summarizes a finished campaign.
type Report struct {
	Steps        int
	ScenarioRuns int
	FaultsFired  int
	// Violation is the (minimized) first invariant violation, nil when
	// the campaign came up clean.
	Violation *Violation
}

// subSeed derives a step+scenario seed from the master seed via
// splitmix64 — decorrelated streams, reproducible from the repro line.
func subSeed(seed int64, step, scen int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(step*256+scen+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Run executes the campaign. The first invariant violation stops the
// soak, is minimized (greedy clause dropping), and comes back in the
// report; infrastructure failures (not invariant findings) return err.
func (c *Campaign) Run(ctx context.Context) (*Report, error) {
	steps := c.Steps
	if steps <= 0 {
		steps = 1
	}
	logf := func(format string, args ...any) {
		if c.Log != nil {
			fmt.Fprintf(c.Log, "chaos: "+format+"\n", args...)
		}
	}
	selected := make([]*scenarioDef, 0, len(scenarios))
	if len(c.Scenarios) == 0 {
		for i := range scenarios {
			selected = append(selected, &scenarios[i])
		}
	} else {
		for _, name := range c.Scenarios {
			sd := findScenario(name)
			if sd == nil {
				return nil, fmt.Errorf("chaos: unknown scenario %q", name)
			}
			selected = append(selected, sd)
		}
	}
	rep := &Report{Steps: steps}
	for step := 0; step < steps; step++ {
		for si, sd := range selected {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			ss := subSeed(c.Seed, step, si)
			rng := rand.New(rand.NewSource(ss))
			var fsSched *Schedule
			var htSched *HTTPSchedule
			if sd.genFS != nil {
				fsSched = sd.genFS(rng)
			}
			if sd.genHTTP != nil {
				htSched = sd.genHTTP(rng)
			}
			logf("step %d scenario %s sub-seed %d fs=%q http=%q",
				step, sd.name, ss, fsSched.String(), htSched.String())
			rep.ScenarioRuns++
			v, fired, err := runScenarioOnce(ctx, sd, ss, fsSched, htSched, logf)
			rep.FaultsFired += fired
			if err != nil {
				return rep, fmt.Errorf("chaos: scenario %s (sub-seed %d): %w", sd.name, ss, err)
			}
			if v != nil {
				v.Step = step
				logf("violation found; minimizing fault schedule")
				v = minimize(ctx, sd, v, logf)
				rep.Violation = v
				return rep, nil
			}
		}
	}
	return rep, nil
}

// runScenarioOnce executes one scenario under explicit schedules.
// Returns a Violation for invariant findings, err for infrastructure
// failures, and how many faults fired either way.
func runScenarioOnce(ctx context.Context, sd *scenarioDef, seed int64, fsSched *Schedule, htSched *HTTPSchedule, logf func(string, ...any)) (*Violation, int, error) {
	dir, err := os.MkdirTemp("", "haccrg-chaos-*")
	if err != nil {
		return nil, 0, err
	}
	defer os.RemoveAll(dir)
	if fsSched == nil {
		fsSched = &Schedule{}
	}
	if htSched == nil {
		htSched = &HTTPSchedule{}
	}
	env := &stepEnv{Seed: seed, Dir: dir, FS: fsSched, HTTP: htSched, logf: logf}
	rerr := sd.run(ctx, env)
	fired := len(env.fired())
	if rerr == nil {
		return nil, fired, nil
	}
	var ie *InvariantError
	if asInvariant(rerr, &ie) {
		return &Violation{
			Scenario:  sd.name,
			SubSeed:   seed,
			Invariant: ie.Invariant,
			Detail:    ie.Detail,
			FSSched:   fsSched.String(),
			HTTPSched: htSched.String(),
			Fired:     env.fired(),
		}, fired, nil
	}
	return nil, fired, rerr
}

func asInvariant(err error, out **InvariantError) bool {
	for err != nil {
		if ie, ok := err.(*InvariantError); ok {
			*out = ie
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// minimize greedily drops fault clauses one at a time, keeping each
// drop that preserves the violation, until the schedule is 1-minimal —
// the smallest fault set that still breaks the invariant.
func minimize(ctx context.Context, sd *scenarioDef, v *Violation, logf func(string, ...any)) *Violation {
	current := v
	for {
		fsSched, _ := ParseSchedule(current.FSSched)
		htSched, _ := ParseHTTPSchedule(current.HTTPSched)
		improved := false
		for i := 0; i < len(fsSched.Clauses) && !improved; i++ {
			trial := &Schedule{Clauses: append(append([]*Clause{}, fsSched.Clauses[:i]...), fsSched.Clauses[i+1:]...)}
			if nv, _, err := runScenarioOnce(ctx, sd, current.SubSeed, trial, htSched, logf); err == nil && nv != nil && nv.Invariant == current.Invariant {
				nv.Step = current.Step
				current, improved = nv, true
			}
		}
		for i := 0; i < len(htSched.Clauses) && !improved; i++ {
			trial := &HTTPSchedule{Clauses: append(append([]*HTTPClause{}, htSched.Clauses[:i]...), htSched.Clauses[i+1:]...)}
			if nv, _, err := runScenarioOnce(ctx, sd, current.SubSeed, fsSched, trial, logf); err == nil && nv != nil && nv.Invariant == current.Invariant {
				nv.Step = current.Step
				current, improved = nv, true
			}
		}
		if !improved {
			return current
		}
	}
}

// Reproduce replays one scenario from a repro line's parameters and
// returns the violation it finds (nil = did not reproduce).
func Reproduce(ctx context.Context, scenario string, seed int64, fsSpec, httpSpec string, logw io.Writer) (*Violation, error) {
	sd := findScenario(scenario)
	if sd == nil {
		return nil, fmt.Errorf("chaos: unknown scenario %q", scenario)
	}
	fsSched, err := ParseSchedule(fsSpec)
	if err != nil {
		return nil, err
	}
	htSched, err := ParseHTTPSchedule(httpSpec)
	if err != nil {
		return nil, err
	}
	logf := func(format string, args ...any) {
		if logw != nil {
			fmt.Fprintf(logw, "chaos: "+format+"\n", args...)
		}
	}
	v, _, err := runScenarioOnce(ctx, sd, seed, fsSched, htSched, logf)
	return v, err
}

// ---------------------------------------------------------------------------
// Workload helpers

// chaosConfigs is the fast deterministic sweep the durability
// scenarios run: defective single-kernel benchmarks on the 4-SM test
// device, so every step finishes in milliseconds and produces known
// races for the verdict comparisons.
func chaosConfigs() []harness.RunConfig {
	cfg := gpu.TestConfig()
	mk := func(bench string) harness.RunConfig {
		return harness.RunConfig{
			Bench:     bench,
			Detector:  harness.DetSharedGlobal,
			GPU:       &cfg,
			MaxCycles: 2_000_000,
		}
	}
	return []harness.RunConfig{mk("baddiv"), mk("badfence")}
}

// summarize distills a RunResult to the serializable identity the
// byte-identical contracts are stated over.
func summarize(r *harness.RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s cycles=%d attempts-independent\n", r.Config.Bench, r.Config.Detector, r.Stats.Cycles)
	for _, race := range r.Races {
		fmt.Fprintf(&b, "%s count=%d\n", race, race.Count)
	}
	if r.Health != nil && r.Health.Degraded {
		fmt.Fprintf(&b, "degraded\n")
	}
	return b.String()
}

func summarizeAll(rs []*harness.RunResult) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(summarize(r))
	}
	return b.String()
}

// referenceSummaries runs the chaos sweep fault-free, no manifest —
// the ground truth the invariants compare against.
func referenceSummaries(ctx context.Context) (string, error) {
	rs, err := harness.Sweep(ctx, chaosConfigs(), nil)
	if err != nil {
		return "", fmt.Errorf("fault-free reference sweep failed: %w", err)
	}
	return summarizeAll(rs), nil
}

func quietLog() *log.Logger { return log.New(io.Discard, "", 0) }

// ---------------------------------------------------------------------------
// Scenario: manifest

// genManifestFaults draws 1-2 clauses aimed at the sweep manifest.
func genManifestFaults(rng *rand.Rand) *Schedule {
	menu := []func() *Clause{
		func() *Clause { return &Clause{Kind: KindSyncErr, Path: "manifest", Nth: 1 + rng.Intn(3)} },
		func() *Clause { return &Clause{Kind: KindShortWrite, Path: "manifest", Nth: 1 + rng.Intn(3)} },
		func() *Clause { return &Clause{Kind: KindENOSPC, Path: "manifest", After: int64(64 + rng.Intn(4096))} },
		func() *Clause { return &Clause{Kind: KindCrash, Op: "sync", Path: "manifest", Nth: 1 + rng.Intn(3)} },
		func() *Clause { return &Clause{Kind: KindCrash, Op: "write", Path: "manifest", Nth: 1 + rng.Intn(4)} },
	}
	s := &Schedule{}
	for _, i := range rng.Perm(len(menu))[:1+rng.Intn(2)] {
		s.Clauses = append(s.Clauses, menu[i]())
	}
	return s
}

// runManifestScenario: a sweep checkpoints through a manifest on a
// faulty filesystem; whatever happens, reopening the manifest on a
// healthy filesystem and finishing the sweep must produce the
// fault-free results byte for byte — and a sweep that claimed success
// under faults must have actually persisted what it claimed.
func runManifestScenario(ctx context.Context, env *stepEnv) error {
	// Serial sweeps: manifest appends must hit the fault schedule's
	// per-clause counters in one reproducible order.
	prev := harness.Parallelism()
	harness.SetParallelism(1)
	defer harness.SetParallelism(prev)

	want, err := referenceSummaries(ctx)
	if err != nil {
		return err
	}
	cfgs := chaosConfigs()
	path := filepath.Join(env.Dir, "sweep.manifest")

	// Phase A: the faulty run. Any error is acceptable — it is loud.
	ffs := env.faultFS()
	claimedOK := false
	m, _, err := harness.OpenManifestFS(ffs, path, true)
	if err == nil {
		rs, serr := harness.Sweep(ctx, cfgs, m)
		m.Close()
		if serr == nil {
			claimedOK = true
			if got := summarizeAll(rs); got != want {
				return &InvariantError{Invariant: InvNeverSilent,
					Detail: fmt.Sprintf("faulty sweep reported success with divergent results\n--- want\n%s--- got\n%s", want, got)}
			}
		} else {
			env.logf("manifest phase A failed loudly (ok): %v", serr)
		}
	} else {
		env.logf("manifest open failed loudly (ok): %v", err)
	}

	// The never-silent check: a success claim must be backed by a
	// healthy manifest holding every result.
	if claimedOK {
		m2, salvage, err := harness.OpenManifestFS(nil, path, true)
		if err != nil {
			return &InvariantError{Invariant: InvNeverSilent,
				Detail: fmt.Sprintf("sweep claimed success but manifest unreadable: %v", err)}
		}
		if salvage.Truncated {
			m2.Close()
			return &InvariantError{Invariant: InvNeverSilent,
				Detail: fmt.Sprintf("sweep claimed success but manifest was torn (%d bytes salvaged)", salvage.Bytes)}
		}
		for _, rc := range cfgs {
			if _, ok := m2.Lookup(harness.WithSweepDefaults(rc)); !ok {
				m2.Close()
				return &InvariantError{Invariant: InvNeverSilent,
					Detail: fmt.Sprintf("sweep claimed success but manifest misses %s/%s", rc.Bench, rc.Detector)}
			}
		}
		m2.Close()
	}

	// Phase B: recovery on a healthy filesystem. The salvaged prefix
	// plus re-simulation must land on the fault-free results exactly.
	m3, salvage, err := harness.OpenManifestFS(nil, path, true)
	if err != nil {
		return &InvariantError{Invariant: InvCrashResume,
			Detail: fmt.Sprintf("recovery open failed: %v", err)}
	}
	defer m3.Close()
	env.logf("manifest recovery: %d checkpointed run(s) salvaged", salvage.Records)
	rs, err := harness.Sweep(ctx, cfgs, m3)
	if err != nil {
		return &InvariantError{Invariant: InvCrashResume,
			Detail: fmt.Sprintf("recovery sweep failed: %v", err)}
	}
	if got := summarizeAll(rs); got != want {
		return &InvariantError{Invariant: InvCrashResume,
			Detail: fmt.Sprintf("resumed results diverge from fault-free run\n--- want\n%s--- got\n%s", want, got)}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Scenario: spool

// genSpoolFaults draws clauses aimed at the job spool's admission
// writes. Torn renames are deliberately absent here: a silently-torn
// rename is filesystem corruption no spool discipline can survive, and
// the integrity-checked stores (journal, manifest) are where that
// clause earns its keep.
func genSpoolFaults(rng *rand.Rand) *Schedule {
	menu := []func() *Clause{
		func() *Clause { return &Clause{Kind: KindSyncErr, Path: ".spec.json", Nth: 1 + rng.Intn(4)} },
		func() *Clause { return &Clause{Kind: KindShortWrite, Path: ".spec.json", Nth: 1 + rng.Intn(4)} },
		func() *Clause { return &Clause{Kind: KindENOSPC, Path: "jobs", After: int64(128 + rng.Intn(2048))} },
		func() *Clause { return &Clause{Kind: KindCrash, Op: "sync", Path: ".spec.json", Nth: 1 + rng.Intn(4)} },
		func() *Clause {
			return &Clause{Kind: KindCrash, Op: "rename", Path: ".spec.json", Nth: 1 + rng.Intn(4)}
		},
	}
	s := &Schedule{}
	for _, i := range rng.Perm(len(menu))[:1+rng.Intn(2)] {
		s.Clauses = append(s.Clauses, menu[i]())
	}
	return s
}

// runSpoolScenario: jobs are submitted to a daemon whose spool sits on
// a faulty filesystem. Whatever fails, every acknowledged admission
// must be re-admitted by a restarted daemon, in submission order.
func runSpoolScenario(ctx context.Context, env *stepEnv) error {
	tenant := service.TenantConfig{Rate: 1e6, Burst: 1 << 20, MaxConcurrent: 1 << 20}
	srv, err := service.New(service.Config{
		DataDir: env.Dir, FS: env.faultFS(),
		Tenant: tenant, SmallGPU: true, Log: quietLog(),
	})
	var acked []string
	if err != nil {
		// The spool could not even open — loud, nothing acknowledged.
		env.logf("spool daemon 1 failed to start loudly (ok): %v", err)
	} else {
		// Workers are deliberately not started: every accepted job stays
		// queued, so recovery must re-admit all of them.
		spec := &service.JobSpec{Kind: service.JobBench, Benches: []string{"baddiv"}, SmallGPU: true}
		for i := 0; i < 5; i++ {
			id, _, err := srv.Submit("chaos-tenant", spec)
			if err != nil {
				env.logf("submit %d rejected loudly (ok): %v", i, err)
				continue
			}
			acked = append(acked, id)
		}
	}

	// Restart on a healthy filesystem.
	srv2, err := service.New(service.Config{
		DataDir: env.Dir, Tenant: tenant, SmallGPU: true, Log: quietLog(),
	})
	if err != nil {
		return &InvariantError{Invariant: InvJobsNeverDropped,
			Detail: fmt.Sprintf("recovery failed to open the spool: %v", err)}
	}
	rec := srv2.RecoveredOrder()
	if len(rec) != len(acked) {
		return &InvariantError{Invariant: InvJobsNeverDropped,
			Detail: fmt.Sprintf("acknowledged %d job(s) %v, recovered %d %v", len(acked), acked, len(rec), rec)}
	}
	for i := range acked {
		if rec[i] != acked[i] {
			return &InvariantError{Invariant: InvJobsNeverDropped,
				Detail: fmt.Sprintf("recovery order diverges from submission order at %d: submitted %v, recovered %v", i, acked, rec)}
		}
	}
	for _, id := range acked {
		st, ok := srv2.Job(id)
		if !ok || st.State != service.StateQueued {
			return &InvariantError{Invariant: InvJobsNeverDropped,
				Detail: fmt.Sprintf("job %s not queued after recovery (found=%v state=%q)", id, ok, st.State)}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Scenario: journal

// genJournalFaults draws clauses aimed at the event-journal file —
// including torn renames' moral equivalent for append-only files,
// short writes, which the CRC framing must catch at replay.
func genJournalFaults(rng *rand.Rand) *Schedule {
	menu := []func() *Clause{
		func() *Clause { return &Clause{Kind: KindSyncErr, Path: ".journal", Nth: 1} },
		func() *Clause { return &Clause{Kind: KindShortWrite, Path: ".journal", Nth: 1 + rng.Intn(40)} },
		func() *Clause {
			return &Clause{Kind: KindENOSPC, Path: ".journal", After: int64(256 + rng.Intn(1<<15))}
		},
		func() *Clause { return &Clause{Kind: KindCrash, Op: "write", Path: ".journal", Nth: 1 + rng.Intn(40)} },
		func() *Clause { return &Clause{Kind: KindCrash, Op: "sync", Path: ".journal", Nth: 1} },
	}
	s := &Schedule{}
	for _, i := range rng.Perm(len(menu))[:1+rng.Intn(2)] {
		s.Clauses = append(s.Clauses, menu[i]())
	}
	return s
}

// runJournalScenario: a run records its event journal on a faulty
// filesystem. A recording that claims success must replay to the live
// verdict byte for byte; a failed recording must fail loudly, and its
// salvaged prefix must still replay cleanly (matching any verdict that
// survived whole).
func runJournalScenario(ctx context.Context, env *stepEnv) error {
	cfg := gpu.TestConfig()
	rc := harness.RunConfig{
		Bench:    "baddiv",
		Detector: harness.DetSharedGlobal,
		GPU:      &cfg, MaxCycles: 2_000_000,
	}
	path := filepath.Join(env.Dir, "run.journal")
	fw, err := journal.CreateFile(env.faultFS(), path)
	if err != nil {
		env.logf("journal create failed loudly (ok): %v", err)
		return nil
	}
	_, runErr := harness.ExecContext(ctx, rc, harness.ExecOptions{Record: fw})
	closeErr := fw.Close()
	recordedOK := runErr == nil && closeErr == nil
	if !recordedOK {
		env.logf("recording failed loudly (ok): run=%v close=%v", runErr, closeErr)
	}

	// Replay whatever landed on disk, on a healthy filesystem.
	det, err := harness.DetectorFor(rc)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		if recordedOK {
			return &InvariantError{Invariant: InvNeverSilent,
				Detail: fmt.Sprintf("recording claimed success but journal unreadable: %v", err)}
		}
		return nil
	}
	defer f.Close()
	res, err := journal.Replay(f, det)
	if err != nil {
		if recordedOK {
			return &InvariantError{Invariant: InvReplayEqualsLive,
				Detail: fmt.Sprintf("recording claimed success but replay failed: %v", err)}
		}
		// A crashed recording may leave less than a header; that is a
		// loud, documented outcome, not a violation.
		env.logf("salvage replay of failed recording errored (ok for sub-header files): %v", err)
		return nil
	}
	if recordedOK {
		if res.Salvage.Truncated {
			return &InvariantError{Invariant: InvNeverSilent,
				Detail: fmt.Sprintf("recording claimed success but journal was torn after %d record(s): %s", res.Salvage.Records, res.Salvage.Reason)}
		}
		if res.Recorded == nil {
			return &InvariantError{Invariant: InvReplayEqualsLive,
				Detail: "recording claimed success but no verdict record survived"}
		}
	}
	// Single-kernel workload: any surviving verdict record implies all
	// the kernel's events precede it intact, so the oracle must hold
	// even for salvaged prefixes.
	if res.Recorded != nil && !res.Match {
		return &InvariantError{Invariant: InvReplayEqualsLive,
			Detail: fmt.Sprintf("replayed verdict diverges from recorded\n--- recorded\n%s\n--- replayed\n%s",
				strings.Join(res.Recorded, "\n"), strings.Join(res.Replayed, "\n"))}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Scenario: client

// genClientFaults draws 1-3 HTTP fault clauses.
func genClientFaults(rng *rand.Rand) *HTTPSchedule {
	menu := []func() *HTTPClause{
		func() *HTTPClause { return &HTTPClause{Kind: KindReset, Nth: 1 + rng.Intn(4)} },
		func() *HTTPClause {
			return &HTTPClause{Kind: KindBurst503, From: 1 + rng.Intn(3), Count: 1 + rng.Intn(3)}
		},
		func() *HTTPClause { return &HTTPClause{Kind: KindStall, Path: "/v1/jobs", Nth: 1 + rng.Intn(3)} },
		func() *HTTPClause { return &HTTPClause{Kind: KindCorrupt, Nth: 1 + rng.Intn(4)} },
	}
	s := &HTTPSchedule{}
	for _, i := range rng.Perm(len(menu))[:1+rng.Intn(3)] {
		s.Clauses = append(s.Clauses, menu[i]())
	}
	return s
}

// runClientScenario: a client submits jobs through a fault-injecting
// transport. Every submission the client believes succeeded must
// exist on the daemon (no acknowledged job lost in transit), every
// failure must surface as an error within the call's deadline, and
// the daemon must stay healthy throughout.
func runClientScenario(ctx context.Context, env *stepEnv) error {
	tenant := service.TenantConfig{Rate: 1e6, Burst: 1 << 20, MaxConcurrent: 1 << 20}
	srv, err := service.New(service.Config{
		DataDir: env.Dir, Tenant: tenant, SmallGPU: true, Log: quietLog(),
	})
	if err != nil {
		return err
	}
	srv.Start()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	cli := &service.Client{
		BaseURL: hts.URL,
		Tenant:  "chaos-tenant",
		HTTPClient: &http.Client{
			Transport: env.transport(),
			Timeout:   2 * time.Second, // bounds stalled bodies
		},
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
	}
	spec := &service.JobSpec{Kind: service.JobAnalyze, Benches: []string{"baddiv"}, SmallGPU: true}
	var acked []string
	for i := 0; i < 6; i++ {
		callCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
		id, err := cli.Submit(callCtx, spec)
		promptly := callCtx.Err() == nil
		cancel()
		if err != nil {
			if !promptly {
				return &InvariantError{Invariant: InvNeverSilent,
					Detail: fmt.Sprintf("client call %d ran past its deadline before failing: %v", i, err)}
			}
			env.logf("submit %d failed loudly (ok): %v", i, err)
			continue
		}
		if !promptly {
			return &InvariantError{Invariant: InvNeverSilent,
				Detail: fmt.Sprintf("client call %d ran past its deadline", i)}
		}
		acked = append(acked, id)
	}
	for _, id := range acked {
		if _, ok := srv.Job(id); !ok {
			return &InvariantError{Invariant: InvJobsNeverDropped,
				Detail: fmt.Sprintf("client holds acknowledgement for job %s but the daemon does not know it", id)}
		}
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv.Drain(drainCtx)
	// Post-drain: acknowledged jobs must still be accounted for — done,
	// failed, or resumable — never vanished.
	for _, id := range acked {
		if _, ok := srv.Job(id); !ok {
			return &InvariantError{Invariant: InvJobsNeverDropped,
				Detail: fmt.Sprintf("job %s vanished during drain", id)}
		}
	}
	// And the daemon's own books must balance: accepted = terminal +
	// interrupted + still-queued (statsz is the operator's only window).
	st := srv.Stats()
	var b []byte
	b, _ = json.Marshal(st.JobsStates)
	env.logf("client scenario: accepted=%d states=%s", st.Accepted, b)
	return nil
}

// ---------------------------------------------------------------------------
// Scenario: sentinel

// chaosEnv is the minimal gpu.Env the sentinel scenario drives the
// core detector with (no device attached, timing-free).
type chaosEnv struct {
	cfg      gpu.Config
	fenceIDs map[[2]int]uint32
}

func (f *chaosEnv) Config() *gpu.Config                     { return &f.cfg }
func (f *chaosEnv) PartitionFor(addr uint64) int            { return int(addr>>7) % f.cfg.NumPartitions }
func (f *chaosEnv) ShadowTx(int, int64, uint64, bool) int64 { return 0 }
func (f *chaosEnv) InstrTx(int, int64, uint64, bool) int64  { return 0 }
func (f *chaosEnv) InstrAtomicTx(int, int64, uint64) int64  { return 0 }
func (f *chaosEnv) ShadowBase() uint64                      { return 1 << 30 }
func (f *chaosEnv) GlobalMemSize() uint64                   { return 1 << 30 }
func (f *chaosEnv) CurrentFenceID(block, warp int) uint32 {
	return f.fenceIDs[[2]int{block, warp}]
}

// chaosStreamEvent generates one synthetic global-memory warp event —
// the same mixed shapes (full and partial warps, coalesced and
// scattered lanes, atomics, critical sections) the engine's
// determinism tests exercise.
func chaosStreamEvent(rng *rand.Rand, kernel string, cycle int64) *gpu.WarpMemEvent {
	nlanes := 32
	if rng.Intn(8) == 0 {
		nlanes = 1 + rng.Intn(32)
	}
	block := rng.Intn(3)
	warp := rng.Intn(2)
	ev := &gpu.WarpMemEvent{
		Space:       isa.SpaceGlobal,
		Write:       rng.Intn(2) == 0,
		PC:          4 * (1 + rng.Intn(6)),
		SM:          block % 2,
		Block:       block,
		WarpInBlock: warp,
		Kernel:      kernel,
		SyncID:      uint32(rng.Intn(2)),
		Cycle:       cycle,
		Lanes:       make([]gpu.LaneAccess, nlanes),
	}
	if rng.Intn(16) == 0 {
		ev.Atomic = true
		ev.Write = true
	}
	base := uint64(rng.Intn(64)) * 128
	scattered := rng.Intn(4) == 0
	inCrit := rng.Intn(8) == 0
	for l := 0; l < nlanes; l++ {
		tid := warp*32 + l
		addr := base + uint64(l)*4
		if scattered {
			addr = uint64(rng.Intn(2048)) * 4
		}
		ev.Lanes[l] = gpu.LaneAccess{
			Lane: l, Tid: tid, GTid: block*64 + tid,
			Addr: addr, Size: 4, Arrival: cycle,
		}
		if inCrit {
			ev.Lanes[l].InCrit = true
			ev.Lanes[l].AtomicSig = bloom.Sig(1) << (rng.Intn(2) * 7)
		}
	}
	return ev
}

// runStream drives det through kernels× a deterministic event stream.
func runStream(det *core.Detector, seed int64, kernels int) {
	env := &chaosEnv{cfg: gpu.TestConfig()}
	for k := 0; k < kernels; k++ {
		rng := rand.New(rand.NewSource(seed))
		env.fenceIDs = map[[2]int]uint32{}
		kernel := fmt.Sprintf("chaos%d", k)
		det.KernelStart(env, kernel)
		for i := 0; i < 300; i++ {
			cycle := int64(100 + i)
			det.WarpMem(chaosStreamEvent(rng, kernel, cycle))
			if i%97 == 0 {
				block, warp := i%3, i%2
				id := uint32(i/97 + 1)
				env.fenceIDs[[2]int{block, warp}] = id
				det.FenceAdvance(block, warp, id)
			}
			if i%151 == 0 {
				det.Barrier(0, 0, 0, 0, cycle)
			}
		}
		det.KernelEnd()
	}
}

func racesDigest(d *core.Detector) string {
	var b strings.Builder
	for _, r := range d.SortedRaces() {
		fmt.Fprintf(&b, "%s count=%d\n", r, r.Count)
	}
	return b.String()
}

// runSentinelScenario plants an engine-layer failure — a divergent
// reference view or a wedged shard worker — and requires the
// self-healing pipeline to catch it loudly: health Degraded, incident
// counters set, engine degraded to the (correct) serial path, and the
// primary findings never perturbed.
func runSentinelScenario(ctx context.Context, env *stepEnv) error {
	rng := rand.New(rand.NewSource(env.Seed))
	streamSeed := int64(rng.Uint64() >> 1)
	stallMode := rng.Intn(2) == 1

	opt := core.DefaultOptions()
	opt.Shared = false
	opt.ModelTraffic = false
	opt.Parallel = true

	// Serial ground truth.
	refOpt := opt
	refOpt.Parallel = false
	ref, err := core.New(refOpt)
	if err != nil {
		return err
	}
	runStream(ref, streamSeed, 2)
	want := racesDigest(ref)

	if stallMode {
		opt.StallBudget = time.Millisecond
		var stalled atomic.Bool
		opt.Chaos = &core.ChaosHooks{
			WorkerStall: func(part int) {
				if stalled.CompareAndSwap(false, true) {
					time.Sleep(50 * time.Millisecond)
				}
			},
		}
	} else {
		opt.SentinelEvery = 1
		opt.Chaos = &core.ChaosHooks{
			DropSentinelEvent: func(kernel string, n int) bool { return kernel == "chaos0" },
		}
	}
	d, err := core.New(opt)
	if err != nil {
		return err
	}
	runStream(d, streamSeed, 2)
	h := d.Health()
	if stallMode {
		if h.StalledDrains == 0 || !h.Degraded || !d.EngineFallback() {
			return &InvariantError{Invariant: InvNeverSilent,
				Detail: fmt.Sprintf("wedged shard worker not reported: stalls=%d degraded=%v fallback=%v",
					h.StalledDrains, h.Degraded, d.EngineFallback())}
		}
	} else {
		if h.SentinelMismatches == 0 || !h.Degraded || !d.EngineFallback() {
			return &InvariantError{Invariant: InvNeverSilent,
				Detail: fmt.Sprintf("planted engine divergence not caught: mismatches=%d degraded=%v fallback=%v",
					h.SentinelMismatches, h.Degraded, d.EngineFallback())}
		}
	}
	// Self-healing must not perturb the primary findings.
	if got := racesDigest(d); got != want {
		return &InvariantError{Invariant: InvNeverSilent,
			Detail: fmt.Sprintf("self-healing run's findings diverge from serial truth\n--- want\n%s--- got\n%s", want, got)}
	}
	return nil
}
