package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func mustHTTPSchedule(t *testing.T, spec string) *HTTPSchedule {
	t.Helper()
	s, err := ParseHTTPSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func backend(t *testing.T) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"id":"j1","state":"queued"}`)
	}))
	t.Cleanup(hs.Close)
	return hs
}

func TestFaultTransportReset(t *testing.T) {
	hs := backend(t)
	cl := &http.Client{Transport: NewFaultTransport(nil, mustHTTPSchedule(t, "reset:nth=2"))}
	if _, err := cl.Get(hs.URL); err != nil {
		t.Fatalf("request 1: %v", err)
	}
	_, err := cl.Get(hs.URL)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("request 2: want injected reset, got %v", err)
	}
	resp, err := cl.Get(hs.URL)
	if err != nil {
		t.Fatalf("request 3: %v", err)
	}
	resp.Body.Close()
}

func TestFaultTransportBurst503(t *testing.T) {
	hs := backend(t)
	ft := NewFaultTransport(nil, mustHTTPSchedule(t, "burst503:from=1,count=2"))
	cl := &http.Client{Transport: ft}
	for i := 0; i < 2; i++ {
		resp, err := cl.Get(hs.URL)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503", i+1, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "0" {
			t.Fatalf("request %d: Retry-After %q, want 0", i+1, ra)
		}
		resp.Body.Close()
	}
	resp, err := cl.Get(hs.URL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("request 3 after burst: %v %v", resp, err)
	}
	resp.Body.Close()
	if n := len(ft.Fired()); n != 2 {
		t.Fatalf("fired %d faults, want 2: %v", n, ft.Fired())
	}
}

func TestFaultTransportStall(t *testing.T) {
	hs := backend(t)
	cl := &http.Client{Transport: NewFaultTransport(nil, mustHTTPSchedule(t, "stall:nth=1"))}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, hs.URL, nil)
	resp, err := cl.Do(req)
	if err != nil {
		t.Fatalf("headers should arrive: %v", err)
	}
	defer resp.Body.Close()
	start := time.Now()
	_, rerr := io.ReadAll(resp.Body)
	if rerr == nil {
		t.Fatal("stalled body delivered data")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("stalled read did not honor the context deadline")
	}
}

func TestFaultTransportCorrupt(t *testing.T) {
	hs := backend(t)
	cl := &http.Client{Transport: NewFaultTransport(nil, mustHTTPSchedule(t, "corrupt:nth=1"))}
	resp, err := cl.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(string(data), "}") {
		t.Fatalf("body %q should be truncated mid-JSON", data)
	}
}
