package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"haccrg/internal/harness"
	"haccrg/internal/journal"
)

func TestScheduleRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"shortwrite:path=manifest,nth=2",
		"syncerr:path=.journal",
		"enospc:path=jobs,after=4096",
		"tornrename:path=.json,nth=3",
		"crash:op=sync,path=manifest,nth=2",
		"shortwrite:nth=2;crash:op=rename,path=.tmp;enospc:after=128",
	}
	for _, spec := range specs {
		s, err := ParseSchedule(spec)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", spec, err)
		}
		if got := s.String(); got != spec {
			t.Errorf("round trip %q -> %q", spec, got)
		}
	}
	for _, bad := range []string{
		"shortwrite:nth=0",
		"explode:nth=1",
		"crash:nth=1",          // crash needs op
		"crash:op=defrag",      // unknown op
		"enospc:after=-1",      // negative budget
		"shortwrite:nth=horse", // non-numeric
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
}

func TestHTTPScheduleRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"reset:nth=2",
		"burst503:from=3,count=4",
		"stall:path=/v1/jobs,nth=2",
		"corrupt",
		"reset:nth=2;burst503:from=1,count=1;corrupt:path=/v1,nth=3",
	}
	for _, spec := range specs {
		s, err := ParseHTTPSchedule(spec)
		if err != nil {
			t.Fatalf("ParseHTTPSchedule(%q): %v", spec, err)
		}
		if got := s.String(); got != spec {
			t.Errorf("round trip %q -> %q", spec, got)
		}
	}
	for _, bad := range []string{"reset:nth=0", "burst503:from=1", "teleport:nth=1"} {
		if _, err := ParseHTTPSchedule(bad); err == nil {
			t.Errorf("ParseHTTPSchedule(%q) accepted", bad)
		}
	}
}

func mustSchedule(t *testing.T, spec string) *Schedule {
	t.Helper()
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFaultFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, mustSchedule(t, "shortwrite:nth=2"), CrashSimulate)
	f, err := ffs.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	n, err := f.Write([]byte("second"))
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: want injected error, got n=%d err=%v", n, err)
	}
	if n >= len("second") {
		t.Fatalf("short write delivered %d of %d bytes", n, len("second"))
	}
	if len(ffs.Fired()) != 1 {
		t.Fatalf("fired log: %v", ffs.Fired())
	}
}

func TestFaultFSSyncErr(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, mustSchedule(t, "syncerr:nth=1"), CrashSimulate)
	f, err := ffs.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: want injected error, got %v", err)
	}
	if err := f.Sync(); err != nil { // nth=1 fired; next sync is real
		t.Fatalf("sync 2: %v", err)
	}
}

func TestFaultFSENOSPC(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, mustSchedule(t, "enospc:after=10"), CrashSimulate)
	f, err := ffs.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("12345678")); err != nil { // 8 <= 10
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdefgh")) // crosses the 10-byte budget
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("want ENOSPC-style injected error, got n=%d err=%v", n, err)
	}
	if n != 2 {
		t.Fatalf("partial write before ENOSPC: got %d bytes, want 2", n)
	}
}

func TestFaultFSCrashTruncatesToSynced(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	ffs := NewFaultFS(nil, mustSchedule(t, "crash:op=write,nth=3"), CrashSimulate)
	f, err := ffs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable.")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("volatile")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("boom")); err == nil || !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash on 3rd write, got %v", err)
	}
	if !ffs.Crashed() {
		t.Fatal("FS not marked crashed")
	}
	// Post-crash: only the synced prefix survives.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "durable." {
		t.Fatalf("post-crash contents %q, want synced prefix %q", data, "durable.")
	}
	// Every subsequent operation fails: the process is "dead".
	if _, err := ffs.Create(filepath.Join(dir, "y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
}

func TestFaultFSTornRename(t *testing.T) {
	dir := t.TempDir()
	src, dst := filepath.Join(dir, "a.tmp"), filepath.Join(dir, "a.json")
	ffs := NewFaultFS(nil, mustSchedule(t, "tornrename:path=a.json,nth=1"), CrashSimulate)
	f, err := ffs.Create(src)
	if err != nil {
		t.Fatal(err)
	}
	payload := "0123456789abcdef"
	if _, err := f.Write([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The tear is silent: rename reports success.
	if err := ffs.Rename(src, dst); err != nil {
		t.Fatalf("torn rename must be silent, got %v", err)
	}
	data, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != payload[:len(payload)/2] {
		t.Fatalf("torn destination %q, want first half %q", data, payload[:len(payload)/2])
	}
	if _, err := os.Stat(src); !os.IsNotExist(err) {
		t.Fatalf("source should be gone after torn rename: %v", err)
	}
}

// TestManifestFsyncFailureIsHard pins the satellite-2 contract on the
// sweep manifest: a failed fsync makes Append return a hard error and
// the entry is not admitted to the resume index.
func TestManifestFsyncFailureIsHard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.manifest")
	ffs := NewFaultFS(nil, mustSchedule(t, "syncerr:nth=1"), CrashSimulate)
	m, _, err := harness.OpenManifestFS(ffs, path, false)
	if err != nil {
		t.Fatal(err)
	}
	rc := harness.WithSweepDefaults(harness.RunConfig{
		Bench: "baddiv", Detector: harness.DetSharedGlobal,
	})
	res := &harness.RunResult{Config: rc}
	err = m.Append(rc, res)
	if err == nil {
		t.Fatal("Append swallowed an fsync failure")
	}
	var ioe *journal.IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("want *journal.IOError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "sync") {
		t.Fatalf("error does not name the failed sync: %v", err)
	}
	if _, ok := m.Lookup(rc); ok {
		t.Fatal("entry admitted to the index despite failed fsync")
	}
	m.Close()
}

// TestJournalFileWriterFsyncFailureIsSticky pins the satellite-2
// contract on the event journal: a failed fsync is a hard write
// failure and poisons every later operation.
func TestJournalFileWriterFsyncFailureIsSticky(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, mustSchedule(t, "syncerr:nth=1"), CrashSimulate)
	fw, err := journal.CreateFile(ffs, filepath.Join(dir, "j.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	serr := fw.Sync()
	if serr == nil {
		t.Fatal("Sync swallowed an fsync failure")
	}
	var ioe *journal.IOError
	if !errors.As(serr, &ioe) {
		t.Fatalf("want *journal.IOError, got %T: %v", serr, serr)
	}
	if _, err := fw.Write([]byte("more")); err == nil {
		t.Fatal("Write succeeded after failed fsync (not sticky)")
	}
	if err := fw.Close(); err == nil {
		t.Fatal("Close reported success on a journal with a failed fsync")
	}
}
