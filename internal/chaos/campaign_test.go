package chaos

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestCampaignDefaultClean: the shipped campaign must pass all four
// invariants — this is the CI chaos smoke.
func TestCampaignDefaultClean(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	c := &Campaign{Seed: 1, Steps: 2, Log: testLogWriter{t}}
	rep, err := c.Run(ctx)
	if err != nil {
		t.Fatalf("campaign infrastructure failure: %v", err)
	}
	if rep.Violation != nil {
		t.Fatalf("campaign found a violation:\n%s", rep.Violation)
	}
	if rep.ScenarioRuns != 2*len(scenarios) {
		t.Fatalf("ran %d scenario runs, want %d", rep.ScenarioRuns, 2*len(scenarios))
	}
	t.Logf("campaign clean: %d scenario runs, %d faults fired", rep.ScenarioRuns, rep.FaultsFired)
}

// TestCampaignDeterministic: same seed, same campaign, same outcome.
func TestCampaignDeterministic(t *testing.T) {
	ctx := context.Background()
	run := func() string {
		c := &Campaign{Seed: 42, Steps: 1}
		rep, err := c.Run(ctx)
		if err != nil {
			t.Fatalf("campaign failed: %v", err)
		}
		return fmt.Sprintf("runs=%d violation=%v", rep.ScenarioRuns, rep.Violation)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("campaign not deterministic:\n%s\nvs\n%s", a, b)
	}
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// TestViolationDetectionAndMinimization plants a fault outside the
// survivable model — a silently torn rename under the job spool — and
// checks the campaign machinery end to end: the violation is caught,
// attributed to the right invariant, and minimized down to the single
// clause that causes it.
func TestViolationDetectionAndMinimization(t *testing.T) {
	ctx := context.Background()
	sd := findScenario("spool")
	sched := mustSchedule(t, "shortwrite:path=no-such-file,nth=1;tornrename:path=.spec.json,nth=2;syncerr:path=no-such-file,nth=1")
	v, _, err := runScenarioOnce(ctx, sd, 99, sched, nil, t.Logf)
	if err != nil {
		t.Fatalf("infrastructure failure: %v", err)
	}
	if v == nil {
		t.Fatal("silently torn spool rename was not caught")
	}
	if v.Invariant != InvJobsNeverDropped {
		t.Fatalf("invariant = %s, want %s", v.Invariant, InvJobsNeverDropped)
	}
	min := minimize(ctx, sd, v, t.Logf)
	if min.FSSched != "tornrename:path=.spec.json,nth=2" {
		t.Fatalf("minimized schedule = %q, want the torn rename alone", min.FSSched)
	}
	if !strings.Contains(min.Repro(), "-scenario spool -sub-seed 99") {
		t.Fatalf("repro line = %q", min.Repro())
	}
}
