// Package vfs is the filesystem seam under every durability-critical
// writer in the system: the sweep manifest, the service job spool, and
// journal files opened through journal.CreateFile. Production code
// runs on OS (direct os.* calls, zero indirection cost beyond an
// interface dispatch); the chaos engine (internal/chaos) substitutes a
// fault-injecting implementation that models short writes, fsync
// failures, ENOSPC, torn renames and crash-points without patching any
// call site.
//
// The interface is deliberately the small set of operations the
// durability spine actually uses — not a general filesystem. Adding an
// operation here means adding it to the fault matrix in
// internal/chaos, so keep it minimal.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is an open file handle. The durability-relevant calls — Write,
// Sync, Close, Truncate — are exactly the ones a crash can interleave
// with, so a fault FS can perturb each independently.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file to stable storage. Callers MUST treat a
	// Sync error as a hard write failure: the bytes may or may not be
	// durable, and continuing to append would build on quicksand.
	Sync() error
	// Truncate cuts the file to size (the journal salvage path).
	Truncate(size int64) error
	// Name returns the path the file was opened under.
	Name() string
}

// FS is the filesystem operation set the durability spine uses.
type FS interface {
	// Create truncates-or-creates a file for writing.
	Create(name string) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	// OpenFile is the general open (the manifest resume path needs
	// O_RDWR|O_CREATE).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath — the commit
	// point of every temp-and-rename write.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (ignoring whether it exists is the
	// caller's choice).
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// Glob lists paths matching a pattern (spool recovery).
	Glob(pattern string) ([]string, error)
}

// OS is the production FS: direct os.* calls.
type OS struct{}

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FS.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Glob implements FS.
func (OS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

// Default returns fsys, or OS when fsys is nil — the idiom every
// consumer uses to make the seam optional.
func Default(fsys FS) FS {
	if fsys == nil {
		return OS{}
	}
	return fsys
}
