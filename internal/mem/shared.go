package mem

// SharedConfig describes the banked per-SM shared memory (scratchpad).
type SharedConfig struct {
	SizeBytes int // per SM; the paper models 16KB (GT200)
	Banks     int // 16 on GT200
	BankWidth int // bytes served per bank per cycle (4)
}

// DefaultSharedConfig matches the paper's Quadro FX5800 configuration.
var DefaultSharedConfig = SharedConfig{SizeBytes: 16 << 10, Banks: 16, BankWidth: 4}

// Shared is one SM's shared memory: a flat tile plus the bank-conflict
// model. Blocks resident on the same SM receive disjoint static
// partitions of the tile, handled by the execution engine.
type Shared struct {
	cfg SharedConfig
	Mem *Memory

	// Stats.
	Accesses       int64
	ConflictCycles int64
}

// NewShared allocates a shared-memory tile.
func NewShared(cfg SharedConfig) *Shared {
	return &Shared{cfg: cfg, Mem: NewMemory("shared", cfg.SizeBytes)}
}

// Config returns the tile geometry.
func (s *Shared) Config() SharedConfig { return s.cfg }

// ConflictCycles computes how many cycles a warp's shared-memory
// access occupies: the maximum number of distinct words mapped to any
// single bank (accesses to the same word broadcast and count once).
// addrs lists the byte addresses of active lanes only.
func (s *Shared) ConflictCyclesFor(addrs []uint64) int64 {
	if len(addrs) == 0 {
		return 0
	}
	// Per bank, count distinct word addresses.
	type bw struct {
		bank int
		word uint64
	}
	seen := make(map[bw]struct{}, len(addrs))
	perBank := make(map[int]int64, s.cfg.Banks)
	for _, a := range addrs {
		word := a / uint64(s.cfg.BankWidth)
		bank := int(word % uint64(s.cfg.Banks))
		k := bw{bank, word}
		if _, dup := seen[k]; dup {
			continue // broadcast
		}
		seen[k] = struct{}{}
		perBank[bank]++
	}
	var maxC int64 = 1
	for _, c := range perBank {
		if c > maxC {
			maxC = c
		}
	}
	s.Accesses++
	s.ConflictCycles += maxC - 1
	return maxC
}

// Clear zeroes the tile (block launch semantics).
func (s *Shared) Clear(base, size int) {
	b := s.Mem.Bytes()
	for i := base; i < base+size && i < len(b); i++ {
		b[i] = 0
	}
}
