package mem

// Coalesce groups the byte addresses touched by a warp's global/local
// memory instruction into the minimal set of aligned segments
// (transactions) of segBytes each, the way the GPU's coalescing unit
// does. Accesses spanning a segment boundary contribute to both
// segments. The returned slice is sorted by construction order
// (first-touch), which is deterministic for a given warp.
func Coalesce(addrs []uint64, accessBytes int, segBytes int) []uint64 {
	if len(addrs) == 0 {
		return nil
	}
	seg := uint64(segBytes)
	var out []uint64
	seen := make(map[uint64]struct{}, 4)
	add := func(a uint64) {
		base := a &^ (seg - 1)
		if _, dup := seen[base]; !dup {
			seen[base] = struct{}{}
			out = append(out, base)
		}
	}
	for _, a := range addrs {
		add(a)
		if end := a + uint64(accessBytes) - 1; end&^(seg-1) != a&^(seg-1) {
			add(end)
		}
	}
	return out
}
