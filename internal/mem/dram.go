package mem

// DRAMConfig models one GDDR channel behind a memory partition.
type DRAMConfig struct {
	CASLatency  int64 // cycles from service start to first data
	BurstCycles int64 // data-bus occupancy per transaction
	RowBits     int   // log2 of the row size in bytes, for row-hit modelling
	RowHitSave  int64 // cycles saved on a row-buffer hit
	QueueDepth  int   // modelled queue depth (F-R-FCFS approximation)
}

// DefaultDRAMConfig approximates the paper's GDDR3 timing at core clock.
var DefaultDRAMConfig = DRAMConfig{
	CASLatency:  100,
	BurstCycles: 12, // 128B/12cyc x 8 channels ~ 85B/cycle at core clock (GT200-class)
	RowBits:     11, // 2KB rows
	RowHitSave:  60,
	QueueDepth:  32,
}

// DRAM is the reservation-based timing model for one channel. It also
// owns the channel's bandwidth counters, which produce Figure 9's
// DRAM bandwidth-utilization series.
type DRAM struct {
	cfg DRAMConfig

	busFree   int64 // cycle at which the data bus is next free
	openRow   uint64
	rowValid  bool
	queueLoad int64 // outstanding completions for queue modelling

	// Stats.
	BusyCycles int64 // data-bus busy cycles (the utilization numerator)
	Reads      int64
	Writes     int64
}

// NewDRAM builds a channel model.
func NewDRAM(cfg DRAMConfig) *DRAM { return &DRAM{cfg: cfg} }

// Service schedules one transaction (a line read or write) arriving at
// the controller at the given cycle, returning its completion cycle.
func (d *DRAM) Service(arrival int64, addr uint64, write bool) int64 {
	start := arrival
	if d.busFree > start {
		start = d.busFree
	}
	lat := d.cfg.CASLatency
	row := addr >> uint(d.cfg.RowBits)
	if d.rowValid && row == d.openRow {
		lat -= d.cfg.RowHitSave
		if lat < d.cfg.BurstCycles {
			lat = d.cfg.BurstCycles
		}
	}
	d.openRow = row
	d.rowValid = true
	d.busFree = start + d.cfg.BurstCycles
	d.BusyCycles += d.cfg.BurstCycles
	if write {
		d.Writes++
	} else {
		d.Reads++
	}
	return start + lat
}

// Utilization returns the fraction of the data bus occupied over a run
// of totalCycles cycles.
func (d *DRAM) Utilization(totalCycles int64) float64 {
	if totalCycles <= 0 {
		return 0
	}
	u := float64(d.BusyCycles) / float64(totalCycles)
	if u > 1 {
		u = 1
	}
	return u
}

// ResetStats clears counters between kernel launches while keeping
// row-buffer state.
func (d *DRAM) ResetStats() {
	d.BusyCycles = 0
	d.Reads = 0
	d.Writes = 0
}
