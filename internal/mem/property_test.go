package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: a line just accessed is always resident afterwards (reads
// and write-back writes allocate; write-through writes to a resident
// line keep it).
func TestPropertyCacheReadsAllocate(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "p", SizeBytes: 4096, Assoc: 4, LineBytes: 64})
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			addr := uint64(a)
			c.Access(addr, false, 0)
			if !c.Probe(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the cache never holds more distinct lines than its
// capacity, under any access mix.
func TestPropertyCacheCapacityBound(t *testing.T) {
	cfg := CacheConfig{Name: "p", SizeBytes: 1024, Assoc: 2, LineBytes: 64, WriteBack: true}
	capacity := cfg.SizeBytes / cfg.LineBytes
	rng := rand.New(rand.NewSource(3))
	c := MustNewCache(cfg)
	touched := map[uint64]struct{}{}
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(1 << 16))
		c.Access(addr, rng.Intn(2) == 0, int64(i))
		touched[addr&^63] = struct{}{}
	}
	resident := 0
	for line := range touched {
		if c.Probe(line) {
			resident++
		}
	}
	if resident > capacity {
		t.Fatalf("cache holds %d lines, capacity %d", resident, capacity)
	}
}

// Property: hit + miss counters account for every access.
func TestPropertyCacheStatsBalance(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "p", SizeBytes: 2048, Assoc: 2, LineBytes: 128})
	rng := rand.New(rand.NewSource(4))
	const n = 3000
	for i := 0; i < n; i++ {
		c.Access(uint64(rng.Intn(1<<14)), rng.Intn(3) == 0, int64(i))
	}
	if c.Stats.Accesses() != n {
		t.Fatalf("stats account for %d of %d accesses", c.Stats.Accesses(), n)
	}
}

// Property: coalescing covers every accessed byte and never produces
// more segments than 2x the lane count (each access can straddle at
// most one boundary).
func TestPropertyCoalesceCovers(t *testing.T) {
	f := func(raw []uint16, sizeSel uint8) bool {
		size := []int{1, 2, 4, 8}[sizeSel%4]
		var addrs []uint64
		for _, r := range raw {
			addrs = append(addrs, uint64(r))
		}
		segs := Coalesce(addrs, size, 128)
		if len(segs) > 2*len(addrs) {
			return false
		}
		in := func(a uint64) bool {
			for _, s := range segs {
				if a >= s && a < s+128 {
					return true
				}
			}
			return false
		}
		for _, a := range addrs {
			if !in(a) || !in(a+uint64(size)-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: segments are unique and aligned.
func TestPropertyCoalesceAlignedUnique(t *testing.T) {
	f := func(raw []uint16) bool {
		var addrs []uint64
		for _, r := range raw {
			addrs = append(addrs, uint64(r))
		}
		segs := Coalesce(addrs, 4, 128)
		seen := map[uint64]bool{}
		for _, s := range segs {
			if s%128 != 0 || seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: DRAM completion times never precede arrival, and the bus
// never serves two bursts concurrently (busy cycles <= span of use).
func TestPropertyDRAMMonotonicBus(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig)
	rng := rand.New(rand.NewSource(5))
	var arrival int64
	var lastDone int64
	for i := 0; i < 2000; i++ {
		arrival += int64(rng.Intn(20))
		done := d.Service(arrival, uint64(rng.Intn(1<<22)), rng.Intn(2) == 0)
		if done < arrival {
			t.Fatalf("completion %d before arrival %d", done, arrival)
		}
		if done > lastDone {
			lastDone = done
		}
	}
	if d.BusyCycles > lastDone {
		t.Fatalf("bus busy %d cycles in a %d-cycle span", d.BusyCycles, lastDone)
	}
}

// Property: shared-memory conflict cycles are between 1 and the number
// of active lanes.
func TestPropertySharedConflictBounds(t *testing.T) {
	s := NewShared(DefaultSharedConfig)
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var addrs []uint64
		for _, r := range raw {
			addrs = append(addrs, uint64(r)%16384)
		}
		c := s.ConflictCyclesFor(addrs)
		return c >= 1 && c <= int64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: memory round trips preserve values across random sizes and
// alignments without corrupting neighbours.
func TestPropertyMemoryNeighboursUntouched(t *testing.T) {
	m := NewMemory("p", 256)
	f := func(off uint8, v uint32) bool {
		addr := uint64(off) % 248
		// Paint sentinels around the target word.
		for i := uint64(0); i < 256; i++ {
			m.Bytes()[i] = 0xAB
		}
		if err := m.Store(addr, 4, uint64(v)); err != nil {
			return false
		}
		got, err := m.Load(addr, 4)
		if err != nil || uint32(got) != v {
			return false
		}
		for i := uint64(0); i < 256; i++ {
			if i >= addr && i < addr+4 {
				continue
			}
			if m.Bytes()[i] != 0xAB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
