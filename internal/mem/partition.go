package mem

import "fmt"

// PartitionConfig describes one memory partition (the paper's "memory
// slice"): a bank of the unified L2 plus one DRAM channel.
type PartitionConfig struct {
	L2            CacheConfig
	DRAM          DRAMConfig
	L2Latency     int64 // L2 hit latency in cycles
	AtomicLatency int64 // extra cycles for an atomic's read-modify-write at the partition
}

// Partition is one memory slice. Global-memory transactions from all
// SMs arrive here (via the interconnect), probe the L2 bank and fall
// through to DRAM on a miss. The global-memory RDU of the paper lives
// next to this structure and injects shadow-memory transactions
// through the same L2/DRAM path — that shared path is what produces
// the L2-pollution slowdown of Figures 7 and 9.
type Partition struct {
	ID   int
	L2   *Cache
	DRAM *DRAM

	cfg      PartitionConfig
	portFree int64

	// Stats.
	Transactions int64
	Atomics      int64
	ShadowAccess int64 // transactions injected by the race-detection unit
}

// NewPartition builds a memory slice.
func NewPartition(id int, cfg PartitionConfig) (*Partition, error) {
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("mem: partition %d: %w", id, err)
	}
	return &Partition{ID: id, L2: l2, DRAM: NewDRAM(cfg.DRAM), cfg: cfg}, nil
}

// Access services one line transaction arriving at the given cycle and
// returns its completion cycle. atomic requests pay the partition's
// read-modify-write latency; shadow marks RDU-injected traffic for
// accounting (it shares the L2/DRAM datapath with demand traffic).
func (p *Partition) Access(arrival int64, lineAddr uint64, write, atomic, shadow bool) int64 {
	start := arrival
	if p.portFree > start {
		start = p.portFree
	}
	p.portFree = start + 1 // one transaction per cycle through the L2 port
	p.Transactions++
	if shadow {
		p.ShadowAccess++
	}
	if atomic {
		p.Atomics++
	}

	res := p.L2.Access(lineAddr, write, start)
	done := start + p.cfg.L2Latency
	if res.Writeback {
		// Dirty victim drains to DRAM off the critical path; it still
		// occupies the DRAM bus, which is what utilization measures.
		p.DRAM.Service(done, res.WritebackAddr, true)
	}
	if !res.Hit {
		// Miss: the L2 is write-back/write-allocate, so both read and
		// write misses fetch the line from DRAM.
		done = p.DRAM.Service(done, lineAddr, false)
	}
	if atomic {
		done += p.cfg.AtomicLatency
		p.portFree = done // atomics serialize at the partition
	}
	return done
}

// ResetStats clears the per-launch counters (cache stats included).
func (p *Partition) ResetStats() {
	p.Transactions = 0
	p.Atomics = 0
	p.ShadowAccess = 0
	p.L2.Stats = CacheStats{}
	p.DRAM.ResetStats()
}
