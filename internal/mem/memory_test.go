package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryLoadStoreRoundTrip(t *testing.T) {
	m := NewMemory("t", 1024)
	for _, size := range []int{1, 2, 4, 8} {
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		f := func(off uint16, v uint64) bool {
			addr := uint64(off) % uint64(1024-size)
			if err := m.Store(addr, size, v); err != nil {
				return false
			}
			got, err := m.Load(addr, size)
			return err == nil && got == v&mask
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("size %d: %v", size, err)
		}
	}
}

func TestMemoryBounds(t *testing.T) {
	m := NewMemory("t", 64)
	if _, err := m.Load(64, 1); err == nil {
		t.Error("load at size boundary succeeded")
	}
	if _, err := m.Load(61, 4); err == nil {
		t.Error("straddling load succeeded")
	}
	if err := m.Store(^uint64(0), 4, 1); err == nil {
		t.Error("overflowing store succeeded")
	}
	if err := m.Store(60, 4, 1); err != nil {
		t.Errorf("last-word store failed: %v", err)
	}
	if _, err := m.Load(0, 3); err == nil {
		t.Error("3-byte load succeeded")
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory("t", 8)
	if err := m.Store(0, 4, 0x0a0b0c0d); err != nil {
		t.Fatal(err)
	}
	if b := m.Bytes()[0]; b != 0x0d {
		t.Errorf("byte 0 = %#x, want 0x0d", b)
	}
	lo, _ := m.Load(0, 1)
	if lo != 0x0d {
		t.Errorf("Load(0,1) = %#x, want 0x0d", lo)
	}
}

func TestMemoryF32(t *testing.T) {
	m := NewMemory("t", 16)
	if err := m.StoreF32(4, 3.5); err != nil {
		t.Fatal(err)
	}
	got, err := m.LoadF32(4)
	if err != nil || got != 3.5 {
		t.Errorf("LoadF32 = %v, %v; want 3.5", got, err)
	}
	m.SetF32(2, -1.25)
	if m.F32(2) != -1.25 {
		t.Errorf("F32 helper round trip failed: %v", m.F32(2))
	}
}

func TestCacheBasicHitMiss(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "L1", SizeBytes: 1024, Assoc: 2, LineBytes: 64})
	if r := c.Access(0, false, 0); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(32, false, 0); !r.Hit {
		t.Error("same-line access missed")
	}
	if r := c.Access(64, false, 0); r.Hit {
		t.Error("next-line access hit")
	}
	if c.Stats.ReadHits != 1 || c.Stats.ReadMisses != 2 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 sets x 2 ways x 64B lines = 256B.
	c := MustNewCache(CacheConfig{Name: "L1", SizeBytes: 256, Assoc: 2, LineBytes: 64})
	// Set 0 holds lines at 0, 128, 256, ... Fill both ways, touch the
	// first, then force an eviction: the second should be the victim.
	c.Access(0, false, 0)
	c.Access(128, false, 0)
	c.Access(0, false, 0)   // refresh line 0
	c.Access(256, false, 0) // evicts 128
	if !c.Probe(0) {
		t.Error("line 0 was evicted despite being MRU")
	}
	if c.Probe(128) {
		t.Error("line 128 survived; LRU should have evicted it")
	}
	if !c.Probe(256) {
		t.Error("line 256 not present after fill")
	}
}

func TestCacheWriteThroughNoAllocate(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "L1", SizeBytes: 256, Assoc: 2, LineBytes: 64})
	r := c.Access(0, true, 0)
	if r.Hit || r.Fill {
		t.Errorf("write-through write miss should not allocate: %+v", r)
	}
	if c.Probe(0) {
		t.Error("no-allocate cache contains written line")
	}
	// But a write to a resident line updates LRU and counts as a hit.
	c.Access(0, false, 0)
	if r := c.Access(0, true, 0); !r.Hit {
		t.Error("write to resident line missed")
	}
}

func TestCacheWriteBackDirtyEviction(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "L2", SizeBytes: 128, Assoc: 1, LineBytes: 64, WriteBack: true})
	c.Access(0, true, 0) // set 0, dirty
	r := c.Access(128, false, 0)
	if !r.Writeback || r.WritebackAddr != 0 {
		t.Errorf("dirty eviction = %+v, want writeback of line 0", r)
	}
	c.Access(256, false, 0) // clean eviction of 128
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestCacheInvalidateAndFlush(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "L1", SizeBytes: 256, Assoc: 2, LineBytes: 64})
	c.Access(0, false, 0)
	if !c.Invalidate(0) {
		t.Error("Invalidate missed resident line")
	}
	if c.Probe(0) {
		t.Error("line survives invalidation")
	}
	c.Access(0, false, 0)
	c.Access(64, false, 0)
	c.Flush()
	if c.Probe(0) || c.Probe(64) {
		t.Error("lines survive Flush")
	}
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{Name: "x", SizeBytes: 0, Assoc: 1, LineBytes: 64},
		{Name: "x", SizeBytes: 100, Assoc: 1, LineBytes: 60},
		{Name: "x", SizeBytes: 192, Assoc: 1, LineBytes: 64}, // 3 sets
		{Name: "x", SizeBytes: 128, Assoc: 3, LineBytes: 64},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
	}
}

func TestDRAMReservation(t *testing.T) {
	d := NewDRAM(DRAMConfig{CASLatency: 100, BurstCycles: 4, RowBits: 11, RowHitSave: 60})
	t1 := d.Service(0, 0, false)
	if t1 != 100 {
		t.Errorf("first access done at %d, want 100", t1)
	}
	// Same row: row hit saves 60 cycles, but bus reservation delays start to 4.
	t2 := d.Service(0, 64, false)
	if t2 != 4+40 {
		t.Errorf("row-hit access done at %d, want 44", t2)
	}
	// Different row: full CAS, starts when bus frees at 8.
	t3 := d.Service(0, 1<<20, false)
	if t3 != 8+100 {
		t.Errorf("row-miss access done at %d, want 108", t3)
	}
	if d.BusyCycles != 12 {
		t.Errorf("busy cycles = %d, want 12", d.BusyCycles)
	}
	if u := d.Utilization(120); u != 0.1 {
		t.Errorf("utilization = %v, want 0.1", u)
	}
}

func TestDRAMUtilizationClamped(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig)
	for i := 0; i < 100; i++ {
		d.Service(0, uint64(i)*128, true)
	}
	if u := d.Utilization(10); u != 1 {
		t.Errorf("utilization = %v, want clamped to 1", u)
	}
	if d.Writes != 100 {
		t.Errorf("writes = %d", d.Writes)
	}
	d.ResetStats()
	if d.BusyCycles != 0 || d.Writes != 0 {
		t.Error("ResetStats left counters")
	}
}

func TestSharedConflicts(t *testing.T) {
	s := NewShared(SharedConfig{SizeBytes: 16 << 10, Banks: 16, BankWidth: 4})
	// 16 lanes hitting 16 different banks: conflict-free.
	var addrs []uint64
	for i := 0; i < 16; i++ {
		addrs = append(addrs, uint64(i*4))
	}
	if c := s.ConflictCyclesFor(addrs); c != 1 {
		t.Errorf("stride-4 access = %d cycles, want 1", c)
	}
	// All lanes hitting bank 0, different words: fully serialized.
	addrs = addrs[:0]
	for i := 0; i < 8; i++ {
		addrs = append(addrs, uint64(i*16*4))
	}
	if c := s.ConflictCyclesFor(addrs); c != 8 {
		t.Errorf("same-bank access = %d cycles, want 8", c)
	}
	// All lanes reading the same word: broadcast, 1 cycle.
	addrs = addrs[:0]
	for i := 0; i < 32; i++ {
		addrs = append(addrs, 128)
	}
	if c := s.ConflictCyclesFor(addrs); c != 1 {
		t.Errorf("broadcast access = %d cycles, want 1", c)
	}
	if s.ConflictCycles != 7 {
		t.Errorf("accumulated conflict cycles = %d, want 7", s.ConflictCycles)
	}
}

func TestCoalesce(t *testing.T) {
	// Fully coalesced: 32 consecutive words in one 128B segment.
	var addrs []uint64
	for i := 0; i < 32; i++ {
		addrs = append(addrs, uint64(i*4))
	}
	if got := Coalesce(addrs, 4, 128); len(got) != 1 || got[0] != 0 {
		t.Errorf("coalesced = %v, want [0]", got)
	}
	// Strided by 128: one transaction per lane.
	addrs = addrs[:0]
	for i := 0; i < 8; i++ {
		addrs = append(addrs, uint64(i*128))
	}
	if got := Coalesce(addrs, 4, 128); len(got) != 8 {
		t.Errorf("strided coalesce produced %d segments, want 8", len(got))
	}
	// Straddling access spans two segments.
	if got := Coalesce([]uint64{126}, 4, 128); len(got) != 2 {
		t.Errorf("straddling access = %v, want 2 segments", got)
	}
	if Coalesce(nil, 4, 128) != nil {
		t.Error("empty input should coalesce to nil")
	}
}

func TestCoalesceDeterministic(t *testing.T) {
	addrs := []uint64{512, 0, 512, 128, 0}
	got := Coalesce(addrs, 4, 128)
	want := []uint64{512, 0, 128}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v (first-touch order)", got, want)
		}
	}
}

func TestPartitionTiming(t *testing.T) {
	cfg := PartitionConfig{
		L2:            CacheConfig{Name: "L2", SizeBytes: 8 << 10, Assoc: 8, LineBytes: 128, WriteBack: true},
		DRAM:          DRAMConfig{CASLatency: 100, BurstCycles: 4, RowBits: 11, RowHitSave: 60},
		L2Latency:     20,
		AtomicLatency: 8,
	}
	p, err := NewPartition(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cold read: L2 miss -> DRAM.
	done := p.Access(0, 0, false, false, false)
	if done != 0+20+100 {
		t.Errorf("cold read done at %d, want 120", done)
	}
	// Re-read same line: L2 hit.
	done = p.Access(200, 0, false, false, false)
	if done != 220 {
		t.Errorf("warm read done at %d, want 220", done)
	}
	// Atomic to resident line: hit + atomic latency, and serializes the port.
	done = p.Access(300, 0, false, true, false)
	if done != 300+20+8 {
		t.Errorf("atomic done at %d, want 328", done)
	}
	next := p.Access(301, 0, false, false, false)
	if next < 328+20 {
		t.Errorf("post-atomic access done at %d, want >= 348 (serialized)", next)
	}
	if p.Atomics != 1 || p.Transactions != 4 {
		t.Errorf("stats: %+v", *p)
	}
}

func TestPartitionShadowAccounting(t *testing.T) {
	cfg := PartitionConfig{
		L2:        CacheConfig{Name: "L2", SizeBytes: 8 << 10, Assoc: 8, LineBytes: 128, WriteBack: true},
		DRAM:      DefaultDRAMConfig,
		L2Latency: 20,
	}
	p, _ := NewPartition(1, cfg)
	p.Access(0, 4096, false, false, true)
	if p.ShadowAccess != 1 {
		t.Errorf("shadow accesses = %d, want 1", p.ShadowAccess)
	}
	p.ResetStats()
	if p.ShadowAccess != 0 || p.L2.Stats.Accesses() != 0 {
		t.Error("ResetStats left counters")
	}
}

func TestPartitionPortContention(t *testing.T) {
	cfg := PartitionConfig{
		L2:        CacheConfig{Name: "L2", SizeBytes: 64 << 10, Assoc: 8, LineBytes: 128, WriteBack: true},
		DRAM:      DRAMConfig{CASLatency: 10, BurstCycles: 4, RowBits: 11, RowHitSave: 0},
		L2Latency: 5,
	}
	p, _ := NewPartition(0, cfg)
	p.Access(0, 0, false, false, false) // warm the line
	// Two hits arriving the same cycle serialize through the port.
	a := p.Access(100, 0, false, false, false)
	b := p.Access(100, 0, false, false, false)
	if b != a+1 {
		t.Errorf("port contention: %d then %d, want 1 cycle apart", a, b)
	}
}
