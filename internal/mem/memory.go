// Package mem models the GPU memory system: flat byte-addressable
// device memory, banked per-SM shared memory, non-coherent L1 caches,
// banked coherent L2 caches, a DRAM channel timing model with
// bandwidth-utilization accounting, and the memory-access coalescer.
//
// Timing uses resource reservation: each component tracks when it is
// next free, and a request's completion cycle is computed analytically
// as it traverses L1 -> interconnect -> L2 -> DRAM. This reproduces
// queueing and bandwidth saturation without a full event engine.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Memory is a flat byte-addressable memory (device/global memory or a
// shared-memory tile). All multi-byte accesses are little-endian.
type Memory struct {
	data []byte
	name string
}

// NewMemory allocates a memory of the given size in bytes.
func NewMemory(name string, size int) *Memory {
	return &Memory{data: make([]byte, size), name: name}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// Name returns the diagnostic name of this memory.
func (m *Memory) Name() string { return m.name }

// Bytes exposes the backing storage for host-side initialization.
func (m *Memory) Bytes() []byte { return m.data }

func (m *Memory) check(addr uint64, size int) error {
	if addr+uint64(size) > uint64(len(m.data)) || addr+uint64(size) < addr {
		return fmt.Errorf("mem: %s access [%#x, %#x) out of bounds (size %#x)",
			m.name, addr, addr+uint64(size), len(m.data))
	}
	return nil
}

// Load reads size bytes (1, 2, 4 or 8) at addr, zero-extended.
func (m *Memory) Load(addr uint64, size int) (uint64, error) {
	if err := m.check(addr, size); err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return uint64(m.data[addr]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(m.data[addr:])), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.data[addr:])), nil
	case 8:
		return binary.LittleEndian.Uint64(m.data[addr:]), nil
	}
	return 0, fmt.Errorf("mem: %s load of unsupported size %d", m.name, size)
}

// Store writes the low size bytes of v at addr.
func (m *Memory) Store(addr uint64, size int, v uint64) error {
	if err := m.check(addr, size); err != nil {
		return err
	}
	switch size {
	case 1:
		m.data[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.data[addr:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(m.data[addr:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(m.data[addr:], v)
	default:
		return fmt.Errorf("mem: %s store of unsupported size %d", m.name, size)
	}
	return nil
}

// LoadF32 reads a float32 at addr, widened to float64.
func (m *Memory) LoadF32(addr uint64) (float64, error) {
	v, err := m.Load(addr, 4)
	if err != nil {
		return 0, err
	}
	return float64(math.Float32frombits(uint32(v))), nil
}

// StoreF32 writes f as a float32 at addr.
func (m *Memory) StoreF32(addr uint64, f float64) error {
	return m.Store(addr, 4, uint64(math.Float32bits(float32(f))))
}

// SetU32 is a host-side helper: word-indexed 32-bit store (panics on
// out-of-range, as host setup errors are programming errors).
func (m *Memory) SetU32(wordIdx int, v uint32) {
	binary.LittleEndian.PutUint32(m.data[wordIdx*4:], v)
}

// U32 is a host-side helper: word-indexed 32-bit load.
func (m *Memory) U32(wordIdx int) uint32 {
	return binary.LittleEndian.Uint32(m.data[wordIdx*4:])
}

// SetF32 is a host-side helper: word-indexed float32 store.
func (m *Memory) SetF32(wordIdx int, f float32) {
	binary.LittleEndian.PutUint32(m.data[wordIdx*4:], math.Float32bits(f))
}

// F32 is a host-side helper: word-indexed float32 load.
func (m *Memory) F32(wordIdx int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(m.data[wordIdx*4:]))
}
