package mem

import "fmt"

// CacheConfig describes a set-associative cache.
type CacheConfig struct {
	Name      string
	SizeBytes int
	Assoc     int
	LineBytes int
	// WriteBack selects write-back/write-allocate; otherwise the cache
	// is write-through/no-allocate (GPU L1 policy for global data,
	// which is why global stores always reach L2 — the property the
	// paper's shadow-memory design relies on).
	WriteBack bool
}

// Validate checks the configuration for consistency.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("mem: cache %q: non-positive geometry", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("mem: cache %q: size %d not a multiple of line size %d", c.Name, c.SizeBytes, c.LineBytes)
	}
	if lines%c.Assoc != 0 {
		return fmt.Errorf("mem: cache %q: %d lines not divisible by associativity %d", c.Name, lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: cache %q: %d sets not a power of two", c.Name, sets)
	}
	return nil
}

// CacheStats aggregates hit/miss counters.
type CacheStats struct {
	ReadHits    int64
	ReadMisses  int64
	WriteHits   int64
	WriteMisses int64
	Evictions   int64
	Writebacks  int64
}

// Accesses returns the total number of accesses observed.
func (s CacheStats) Accesses() int64 {
	return s.ReadHits + s.ReadMisses + s.WriteHits + s.WriteMisses
}

// HitRate returns the fraction of accesses that hit, or 0 for none.
func (s CacheStats) HitRate() float64 {
	t := s.Accesses()
	if t == 0 {
		return 0
	}
	return float64(s.ReadHits+s.WriteHits) / float64(t)
}

type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch stamp
	fill  int64  // cycle the line's data was last refreshed
}

// Cache is a set-associative tag store with LRU replacement. It tracks
// hit/miss state only; data always lives in the flat Memory (the
// simulator executes functionally at issue).
type Cache struct {
	cfg   CacheConfig
	sets  [][]cacheLine
	stamp uint64
	Stats CacheStats

	lineShift uint
	setMask   uint64
}

// NewCache builds a cache; the configuration must validate.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / cfg.LineBytes / cfg.Assoc
	c := &Cache{cfg: cfg, sets: make([][]cacheLine, sets)}
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, cfg.Assoc)
	}
	for ls := cfg.LineBytes; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	c.setMask = uint64(sets - 1)
	return c, nil
}

// MustNewCache is NewCache panicking on invalid configuration (for
// static device construction).
func MustNewCache(cfg CacheConfig) *Cache {
	c, err := NewCache(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineAddr maps a byte address to its line-aligned address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ (uint64(c.cfg.LineBytes) - 1) }

func (c *Cache) locate(addr uint64) (set []cacheLine, tag uint64) {
	line := addr >> c.lineShift
	return c.sets[line&c.setMask], line >> uint64(len64(c.setMask))
}

func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// AccessResult describes the outcome of a cache access.
type AccessResult struct {
	Hit           bool
	Writeback     bool   // an evicted dirty line must be written downstream
	WritebackAddr uint64 // line address of the writeback victim
	Fill          bool   // the access allocates (miss fill)
}

// Access performs a read or write lookup at the given cycle, updating
// LRU, tag and fill-time state.
//
// Read miss: allocates (fills) the line. Write: on write-back caches,
// allocates and marks dirty; on write-through caches, updates the line
// if present (no allocate) — the write itself always proceeds
// downstream, which the caller models. The fill time records when the
// line's data was last made current; write hits refresh it (the write
// updates the cached copy in place).
func (c *Cache) Access(addr uint64, write bool, cycle int64) AccessResult {
	c.stamp++
	set, tag := c.locate(addr)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.lru = c.stamp
			if write {
				c.Stats.WriteHits++
				l.fill = cycle
				if c.cfg.WriteBack {
					l.dirty = true
				}
			} else {
				c.Stats.ReadHits++
			}
			return AccessResult{Hit: true}
		}
	}
	// Miss.
	if write {
		c.Stats.WriteMisses++
		if !c.cfg.WriteBack {
			return AccessResult{} // no-allocate
		}
	} else {
		c.Stats.ReadMisses++
	}
	res := AccessResult{Fill: true}
	victim := &set[0]
	for i := range set {
		l := &set[i]
		if !l.valid {
			victim = l
			break
		}
		if l.lru < victim.lru {
			victim = l
		}
	}
	if victim.valid {
		c.Stats.Evictions++
		if victim.dirty {
			c.Stats.Writebacks++
			res.Writeback = true
			res.WritebackAddr = c.reconstruct(victim.tag, addr)
		}
	}
	victim.valid = true
	victim.tag = tag
	victim.dirty = write && c.cfg.WriteBack
	victim.lru = c.stamp
	victim.fill = cycle
	return res
}

// FillStamp returns the cycle at which a resident line's data was last
// refreshed; ok is false when the line is absent. The stale-read
// detection of Section IV-B compares this against the shadow entry's
// write time.
func (c *Cache) FillStamp(addr uint64) (int64, bool) {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return set[i].fill, true
		}
	}
	return 0, false
}

// reconstruct rebuilds a victim's line address from its tag and the
// set index of the incoming address (same set by construction).
func (c *Cache) reconstruct(tag, incoming uint64) uint64 {
	setIdx := (incoming >> c.lineShift) & c.setMask
	return (tag<<uint64(len64(c.setMask))|setIdx)<<c.lineShift | 0
}

// Probe reports whether addr is present without touching LRU or stats.
// The global-memory RDU uses this to learn whether a read was an L1
// hit (stale-data race detection, Section IV-B).
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops a line if present (no writeback), returning whether
// it was present.
func (c *Cache) Invalidate(addr uint64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
			set[i].dirty = false
			return true
		}
	}
	return false
}

// Flush invalidates the entire cache (kernel boundary semantics for
// non-coherent L1s).
func (c *Cache) Flush() {
	for s := range c.sets {
		for i := range c.sets[s] {
			c.sets[s][i] = cacheLine{}
		}
	}
}
