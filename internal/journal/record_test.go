package journal

import (
	"reflect"
	"testing"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

func sampleEvent() *gpu.WarpMemEvent {
	return &gpu.WarpMemEvent{
		Space: isa.SpaceGlobal, Write: true, PC: 42,
		SM: 3, Block: 17, WarpInBlock: 1,
		Kernel: "reduce", Stmt: "sum[i] += x",
		SyncID: 5, FenceID: 2, Cycle: 987654,
		Lanes: []gpu.LaneAccess{
			{Lane: 0, Tid: 32, GTid: 544, Addr: 0x1004, Size: 4, AtomicSig: 0xdeadbeef,
				InCrit: true, L1Hit: true, L1Fill: 120, Arrival: 991000},
			{Lane: 31, Tid: 63, GTid: 575, Addr: 0x1ffc, Size: 8, Arrival: -1},
		},
	}
}

func sampleRecords() []*Record {
	cfg := gpu.TestConfig()
	return []*Record{
		{Type: RecMeta, Meta: &Meta{
			Bench: "scan", Detector: "shared+global", Scale: 2, SingleBlock: true,
			Inject: []string{"scan.x"}, SharedGranularity: 16, GlobalGranularity: 4,
			FaultPlan: "flip:rate=2e-4", FaultSeed: 42, Degradation: "quarantine",
		}},
		{Type: RecKernelStart, Kernel: "scan-up",
			Env: &EnvSnapshot{Config: cfg, GlobalMemSize: 1 << 20}},
		{Type: RecBlockStart, SM: 2, SharedBase: 1024, SharedSize: 512},
		{Type: RecWarpMem, Ev: sampleEvent()},
		{Type: RecFence, Block: 7, Warp: 3, FenceID: 11},
		{Type: RecBarrier, SM: 1, Block: 4, SharedBase: 0, SharedSize: 256, Cycle: 5000},
		{Type: RecRace, Cycle: 5100, Race: "WAW race (barrier) in scan-up: ..."},
		{Type: RecKernelEnd, Kernel: "scan-up"},
		{Type: RecVerdict, Verdict: []string{"race a", "race b"}},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, want := range sampleRecords() {
		b, err := AppendRecord(nil, want)
		if err != nil {
			t.Fatalf("%v: encode: %v", want.Type, err)
		}
		got, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
}

// TestRecordDecodeTruncated cuts every encoded record at every length:
// decode must error cleanly, never panic.
func TestRecordDecodeTruncated(t *testing.T) {
	for _, rec := range sampleRecords() {
		b, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut++ {
			if got, err := DecodeRecord(b[:cut]); err == nil {
				// A shorter prefix may still decode (e.g. varint
				// boundaries); it must at least be internally valid.
				if got == nil {
					t.Fatalf("%v cut %d: nil record with nil error", rec.Type, cut)
				}
			}
		}
	}
}

func TestRecordDecodeRejectsTrailingBytes(t *testing.T) {
	b, err := AppendRecord(nil, &Record{Type: RecKernelEnd, Kernel: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRecord(append(b, 0x00)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestRecordDecodeUnknownType(t *testing.T) {
	if _, err := DecodeRecord([]byte{0xee, 1, 2, 3}); err == nil {
		t.Error("unknown record type accepted")
	}
	if _, err := DecodeRecord(nil); err == nil {
		t.Error("empty record accepted")
	}
}
