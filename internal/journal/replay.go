package journal

import (
	"fmt"
	"io"

	"haccrg/internal/gpu"
)

// ReplayResult reports an offline replay: what the journal held, what
// the recorded run concluded, and what the replayed detector
// concluded over the same event stream.
type ReplayResult struct {
	// Salvage describes how much of the journal was intact.
	Salvage Salvage
	// Meta is the journaled run description (nil if the journal
	// predates the meta record or was truncated before it).
	Meta *Meta
	// Kernels and MemEvents count replayed kernel launches and warp
	// memory events.
	Kernels   int
	MemEvents int

	// Recorded is the live run's final verdict (nil when the journal
	// was truncated before any kernel completed — a crashed run).
	Recorded []string
	// Replayed is the replayed detector's final verdict.
	Replayed []string
	// Match is true when Recorded exists and Replayed equals it byte
	// for byte — the replay-equals-live invariant.
	Match bool
}

// Replay feeds a journal back through det — any gpu.Detector: the
// hardware RDU, the software builds, a tracing chain — with no device
// attached; a synthetic Env built from the journaled snapshot stands
// in. The journal's recorded fence responses are served back in
// order, so a detector configured like the recorded one reaches
// byte-identical verdicts. A damaged journal replays its longest
// intact prefix and reports the salvage; only an unreadable header or
// an encoding bug is an error.
func Replay(src io.Reader, det gpu.Detector) (*ReplayResult, error) {
	if det == nil {
		det = gpu.NopDetector{}
	}
	jr, err := NewReader(src)
	if err != nil {
		return nil, err
	}

	// Decode the whole journal first: the fence-response cursor must
	// span records that appear *after* the event that consumes them
	// (responses are journaled as the inner detector queries, mid
	// event).
	var recs []*Record
	fences := &fenceCursor{latest: map[fenceKey]uint32{}}
	for {
		payload, err := jr.Next()
		if err != nil {
			break // clean EOF or salvage stop; both end the scan
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			// A CRC-intact but undecodable record: treat like a torn
			// tail — replay what came before it.
			s := jr.Salvage()
			s.Truncated = true
			s.Reason = err.Error()
			jr.salvage = s
			break
		}
		recs = append(recs, rec)
		if rec.Type == RecFence {
			fences.recs = append(fences.recs, fenceRec{
				key: fenceKey{block: rec.Block, warp: rec.Warp}, id: rec.FenceID,
			})
		}
	}

	res := &ReplayResult{Salvage: jr.Salvage()}
	var env *replayEnv
	inKernel := false
	for _, rec := range recs {
		switch rec.Type {
		case RecMeta:
			res.Meta = rec.Meta
		case RecKernelStart:
			if rec.Env == nil {
				return nil, fmt.Errorf("journal: kernel-start record without env snapshot")
			}
			env = &replayEnv{snap: *rec.Env, fences: fences}
			res.Kernels++
			inKernel = true
			det.KernelStart(env, rec.Kernel)
		case RecKernelEnd:
			if inKernel {
				det.KernelEnd()
				inKernel = false
			}
		case RecBlockStart:
			if inKernel {
				det.BlockStart(rec.SM, rec.SharedBase, rec.SharedSize)
			}
		case RecBarrier:
			if inKernel {
				det.Barrier(rec.SM, rec.Block, rec.SharedBase, rec.SharedSize, rec.Cycle)
			}
		case RecWarpMem:
			if inKernel {
				res.MemEvents++
				det.WarpMem(rec.Ev)
			}
		case RecFence, RecRace:
			// Fence responses are consumed through the cursor; race
			// records are forensic annotations, not replay inputs.
		case RecVerdict:
			// An empty verdict (zero races) is still a verdict; keep
			// Recorded non-nil so it is compared, not skipped.
			res.Recorded = rec.Verdict
			if res.Recorded == nil {
				res.Recorded = []string{}
			}
		}
	}
	// A journal truncated mid-kernel never saw KernelEnd; close the
	// detector so its verdict is well-defined for forensics.
	if inKernel {
		det.KernelEnd()
	}

	res.Replayed = VerdictOf(det)
	res.Match = res.Recorded != nil && equalVerdicts(res.Recorded, res.Replayed)
	return res, nil
}

func equalVerdicts(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type fenceKey struct {
	block, warp int
}

type fenceRec struct {
	key fenceKey
	id  uint32
}

// fenceCursor serves recorded CurrentFenceID responses back to the
// replayed detector. A detector configured like the recorded one
// issues the exact same query sequence, so responses are consumed
// strictly in order. Replaying through a *different* detector may
// query off-sequence; then the cursor falls back to the latest value
// it served for that (block, warp) — approximate, and documented as
// such, since fence-race classification is the only thing it shifts.
type fenceCursor struct {
	recs   []fenceRec
	next   int
	latest map[fenceKey]uint32
}

func (c *fenceCursor) lookup(block, warpInBlock int) uint32 {
	k := fenceKey{block: block, warp: warpInBlock}
	if c.next < len(c.recs) && c.recs[c.next].key == k {
		id := c.recs[c.next].id
		c.next++
		c.latest[k] = id
		return id
	}
	return c.latest[k]
}

// replayEnv implements gpu.Env from a journaled snapshot. Timing
// methods return fixed-latency completions: with no device attached
// there is nothing to contend with, and verdicts never read them.
type replayEnv struct {
	snap   EnvSnapshot
	fences *fenceCursor
}

// Config implements gpu.Env.
func (e *replayEnv) Config() *gpu.Config { return &e.snap.Config }

// PartitionFor implements gpu.Env with the device's line-interleaved
// mapping.
func (e *replayEnv) PartitionFor(addr uint64) int {
	return int((addr / uint64(e.snap.Config.SegmentBytes)) % uint64(e.snap.Config.NumPartitions))
}

// ShadowTx implements gpu.Env (fixed L2-latency completion).
func (e *replayEnv) ShadowTx(part int, cycle int64, addr uint64, write bool) int64 {
	return cycle + e.snap.Config.Partition.L2Latency
}

// InstrTx implements gpu.Env (fixed L1-latency completion).
func (e *replayEnv) InstrTx(sm int, cycle int64, addr uint64, write bool) int64 {
	return cycle + e.snap.Config.L1Latency
}

// InstrAtomicTx implements gpu.Env (fixed atomic-latency completion).
func (e *replayEnv) InstrAtomicTx(sm int, cycle int64, addr uint64) int64 {
	return cycle + e.snap.Config.Partition.AtomicLatency
}

// ShadowBase implements gpu.Env.
func (e *replayEnv) ShadowBase() uint64 { return e.snap.GlobalMemSize }

// GlobalMemSize implements gpu.Env.
func (e *replayEnv) GlobalMemSize() uint64 { return e.snap.GlobalMemSize }

// CurrentFenceID implements gpu.Env from the journaled responses.
func (e *replayEnv) CurrentFenceID(block, warpInBlock int) uint32 {
	return e.fences.lookup(block, warpInBlock)
}
