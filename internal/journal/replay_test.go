package journal_test

import (
	"bytes"
	"sort"
	"testing"

	"haccrg"
	"haccrg/internal/harness"
	"haccrg/internal/journal"
)

// recordRun executes one benchmark on the small test GPU with
// journaling on, returning the journal bytes and the live result.
func recordRun(t *testing.T, bench string, opts haccrg.RunOptions) ([]byte, *haccrg.RunResult) {
	t.Helper()
	var buf bytes.Buffer
	opts.Record = &buf
	small := haccrg.SmallGPU()
	opts.GPU = &small
	res, err := haccrg.RunBenchmark(bench, opts)
	if err != nil {
		t.Fatalf("record %s: %v", bench, err)
	}
	return buf.Bytes(), res
}

// liveVerdict renders a live run's races in the journal's canonical
// verdict form (sorted String()s).
func liveVerdict(res *haccrg.RunResult) []string {
	out := make([]string, len(res.Races))
	for i, r := range res.Races {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func replayThrough(t *testing.T, data []byte, rc harness.RunConfig) *journal.ReplayResult {
	t.Helper()
	det, err := harness.DetectorFor(rc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := journal.Replay(bytes.NewReader(data), det)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestReplayMatchesLiveRDU is the differential oracle: replaying a
// recorded journal through a fresh hardware-RDU detector must
// reproduce the live run's race findings byte for byte.
func TestReplayMatchesLiveRDU(t *testing.T) {
	for _, bench := range []string{"scan", "reduce", "hash"} {
		det := haccrg.DefaultDetection()
		data, live := recordRun(t, bench, haccrg.RunOptions{Detection: &det})
		rep := replayThrough(t, data, harness.RunConfig{Detector: harness.DetSharedGlobal})
		if rep.Salvage.Truncated {
			t.Fatalf("%s: intact journal reported truncated: %+v", bench, rep.Salvage)
		}
		if rep.Recorded == nil {
			t.Fatalf("%s: no recorded verdict in journal", bench)
		}
		if !rep.Match {
			t.Errorf("%s: replay diverged: recorded %d race(s), replayed %d",
				bench, len(rep.Recorded), len(rep.Replayed))
		}
		want := liveVerdict(live)
		if len(rep.Replayed) != len(want) {
			t.Fatalf("%s: replayed %d race(s), live run found %d", bench, len(rep.Replayed), len(want))
		}
		for i := range want {
			if rep.Replayed[i] != want[i] {
				t.Fatalf("%s: replayed race %d = %q, live %q", bench, i, rep.Replayed[i], want[i])
			}
		}
	}
}

// TestReplayUnderFaultPlan extends the oracle to fault injection: the
// injector is a pure function of (plan, seed) and the event stream, so
// a replayed detector built with the same plan reproduces the faulted
// verdict exactly — dropped checks, corruptions and all.
func TestReplayUnderFaultPlan(t *testing.T) {
	const plan = "flip:rate=2e-4;queue:cap=8,drain=1"
	det := haccrg.DefaultDetection()
	data, live := recordRun(t, "reduce", haccrg.RunOptions{
		Detection: &det, Inject: []string{"reduce.nobar"},
		FaultPlan: plan, FaultSeed: 42,
	})
	rep := replayThrough(t, data, harness.RunConfig{
		Detector: harness.DetSharedGlobal, FaultPlan: plan, FaultSeed: 42,
	})
	if rep.Recorded == nil {
		t.Fatal("no recorded verdict in journal")
	}
	if !rep.Match {
		t.Errorf("faulted replay diverged: recorded %d race(s), replayed %d",
			len(rep.Recorded), len(rep.Replayed))
	}
	if got, want := rep.Replayed, liveVerdict(live); len(got) != len(want) {
		t.Errorf("replayed %d race(s), live found %d", len(got), len(want))
	}
}

// TestReplayThroughOtherDetector replays an RDU-recorded journal
// through the GRace software baseline: a heterogeneous replay must run
// to completion with a well-defined verdict (agreement is not
// expected — the baselines detect different race classes).
func TestReplayThroughOtherDetector(t *testing.T) {
	det := haccrg.DefaultDetection()
	data, _ := recordRun(t, "scan", haccrg.RunOptions{Detection: &det})
	rep := replayThrough(t, data, harness.RunConfig{Detector: harness.DetGRace})
	if rep.Recorded == nil {
		t.Fatal("no recorded verdict in journal")
	}
	if rep.Kernels == 0 || rep.MemEvents == 0 {
		t.Errorf("replay saw %d kernels / %d events, want a full stream", rep.Kernels, rep.MemEvents)
	}
}

// TestReplayTruncatedJournal replays a torn journal: the salvaged
// prefix must replay cleanly (forensics on a crashed run), with the
// detector closed so its verdict is well-defined.
func TestReplayTruncatedJournal(t *testing.T) {
	det := haccrg.DefaultDetection()
	data, _ := recordRun(t, "scan", haccrg.RunOptions{Detection: &det})
	cut := len(data) / 2
	rep := replayThrough(t, data[:cut], harness.RunConfig{Detector: harness.DetSharedGlobal})
	if rep.Salvage.Bytes > int64(cut) {
		t.Fatalf("salvage claims %d bytes of a %d-byte prefix", rep.Salvage.Bytes, cut)
	}
	if rep.Kernels == 0 {
		t.Fatal("truncated replay saw no kernel at all")
	}
	if rep.Replayed == nil {
		t.Fatal("truncated replay produced no verdict")
	}
	if rep.Match && rep.Recorded == nil {
		t.Error("match reported without a recorded verdict")
	}
}

// TestReplayParallelRecording closes the loop on the sharded engine's
// determinism contract: a run recorded under the asynchronous
// per-partition engine replays byte-identically through a fresh SERIAL
// detector. The engines must agree not only on the final verdict but
// on the fence-read responses — the recorder appends the sharded
// engine's mirror-served fence log to the journal so the serial
// replay's inline queries are answered identically.
func TestReplayParallelRecording(t *testing.T) {
	for _, bench := range []string{"scan", "psum", "reduce"} {
		det := haccrg.DefaultDetection()
		data, live := recordRun(t, bench, haccrg.RunOptions{
			Detection: &det, DetectParallel: true,
		})
		rep := replayThrough(t, data, harness.RunConfig{Detector: harness.DetSharedGlobal})
		if rep.Recorded == nil {
			t.Fatalf("%s: no recorded verdict in journal", bench)
		}
		if !rep.Match {
			t.Errorf("%s: serial replay diverged from sharded recording: recorded %d race(s), replayed %d",
				bench, len(rep.Recorded), len(rep.Replayed))
		}
		want := liveVerdict(live)
		if len(rep.Replayed) != len(want) {
			t.Fatalf("%s: replayed %d race(s), live sharded run found %d", bench, len(rep.Replayed), len(want))
		}
		for i := range want {
			if rep.Replayed[i] != want[i] {
				t.Fatalf("%s: replayed race %d = %q, live %q", bench, i, rep.Replayed[i], want[i])
			}
		}
	}
}

// TestReplayParallelRecordingUnderFaultPlan: the oracle holds under
// fault injection too — the sharded engine's per-partition injector
// streams must draw the same decisions a serial replay's injector
// draws inline.
func TestReplayParallelRecordingUnderFaultPlan(t *testing.T) {
	const plan = "flip:rate=2e-4;queue:cap=8,drain=1"
	det := haccrg.DefaultDetection()
	data, live := recordRun(t, "reduce", haccrg.RunOptions{
		Detection: &det, DetectParallel: true, Inject: []string{"reduce.nobar"},
		FaultPlan: plan, FaultSeed: 42,
	})
	rep := replayThrough(t, data, harness.RunConfig{
		Detector: harness.DetSharedGlobal, FaultPlan: plan, FaultSeed: 42,
	})
	if rep.Recorded == nil {
		t.Fatal("no recorded verdict in journal")
	}
	if !rep.Match {
		t.Errorf("faulted serial replay diverged from sharded recording: recorded %d race(s), replayed %d",
			len(rep.Recorded), len(rep.Replayed))
	}
	if got, want := rep.Replayed, liveVerdict(live); len(got) != len(want) {
		t.Errorf("replayed %d race(s), live sharded run found %d", len(got), len(want))
	}
}

// TestRecordingIsTransparent: journaling must not change what the
// detector finds — a recorded run and an unrecorded run of the same
// configuration reach identical verdicts.
func TestRecordingIsTransparent(t *testing.T) {
	det := haccrg.DefaultDetection()
	small := haccrg.SmallGPU()
	plain, err := haccrg.RunBenchmark("scan", haccrg.RunOptions{Detection: &det, GPU: &small})
	if err != nil {
		t.Fatal(err)
	}
	_, recorded := recordRun(t, "scan", haccrg.RunOptions{Detection: &det})
	a, b := liveVerdict(plain), liveVerdict(recorded)
	if len(a) != len(b) {
		t.Fatalf("recording changed the verdict: %d vs %d race(s)", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("recording changed race %d: %q vs %q", i, a[i], b[i])
		}
	}
}
