package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"haccrg/internal/bloom"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// RecType tags a journal record.
type RecType uint8

// Record types. The zero value is reserved so a zeroed payload never
// decodes as a valid record.
const (
	// RecMeta carries run metadata (benchmark, detector configuration)
	// as JSON, written once at the head of the journal.
	RecMeta RecType = iota + 1
	// RecKernelStart opens a kernel: its name plus an EnvSnapshot of
	// the device parameters a detector reads through gpu.Env.
	RecKernelStart
	// RecKernelEnd closes a kernel.
	RecKernelEnd
	// RecBlockStart is a Detector.BlockStart call.
	RecBlockStart
	// RecBarrier is a Detector.Barrier call.
	RecBarrier
	// RecWarpMem is one warp memory instruction with all lane accesses.
	RecWarpMem
	// RecFence records an Env.CurrentFenceID response — the one piece
	// of device state a verdict reads outside the event stream, so it
	// must travel in-stream for replay to be exact.
	RecFence
	// RecRace is a race verdict the detector reached mid-run, stamped
	// with the cycle it fired.
	RecRace
	// RecVerdict is the cumulative sorted race findings at a kernel's
	// end — the differential oracle's ground truth.
	RecVerdict
)

func (t RecType) String() string {
	switch t {
	case RecMeta:
		return "meta"
	case RecKernelStart:
		return "kernel-start"
	case RecKernelEnd:
		return "kernel-end"
	case RecBlockStart:
		return "block-start"
	case RecBarrier:
		return "barrier"
	case RecWarpMem:
		return "warp-mem"
	case RecFence:
		return "fence"
	case RecRace:
		return "race"
	case RecVerdict:
		return "verdict"
	}
	return fmt.Sprintf("rec?%d", uint8(t))
}

// Meta describes the run that produced a journal, with enough detail
// for haccrg-replay to rebuild an equivalent detector offline. It
// mirrors the harness RunConfig fields that shape detection.
type Meta struct {
	Bench       string   `json:"bench,omitempty"`
	Detector    string   `json:"detector,omitempty"`
	Scale       int      `json:"scale,omitempty"`
	SingleBlock bool     `json:"single_block,omitempty"`
	Inject      []string `json:"inject,omitempty"`

	SharedGranularity int `json:"shared_granularity,omitempty"`
	GlobalGranularity int `json:"global_granularity,omitempty"`

	FaultPlan   string `json:"fault_plan,omitempty"`
	FaultSeed   int64  `json:"fault_seed,omitempty"`
	Degradation string `json:"degradation,omitempty"`
}

// EnvSnapshot freezes the device parameters a detector observes
// through gpu.Env, so Replay can stand in for the device.
type EnvSnapshot struct {
	Config        gpu.Config `json:"config"`
	GlobalMemSize uint64     `json:"global_mem_size"`
}

// Record is one decoded journal record: a tagged union over the
// record types, with only the fields for its Type populated.
type Record struct {
	Type RecType

	Meta *Meta        // RecMeta
	Env  *EnvSnapshot // RecKernelStart

	Kernel string // RecKernelStart, RecKernelEnd

	SM         int   // RecBlockStart, RecBarrier
	Block      int   // RecBarrier, RecFence
	SharedBase int   // RecBlockStart, RecBarrier
	SharedSize int   // RecBlockStart, RecBarrier
	Cycle      int64 // RecBarrier, RecRace

	Ev *gpu.WarpMemEvent // RecWarpMem

	Warp    int    // RecFence: warp index within the block
	FenceID uint32 // RecFence

	Race    string   // RecRace: canonical race description
	Verdict []string // RecVerdict: sorted canonical race descriptions
}

// --- encoding ---

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendRecord serializes rec onto b and returns the extended slice.
// JSON is used for the rare configuration-carrying records (meta,
// kernel start); the hot warp-memory records are packed varints.
func AppendRecord(b []byte, rec *Record) ([]byte, error) {
	b = append(b, byte(rec.Type))
	switch rec.Type {
	case RecMeta:
		js, err := json.Marshal(rec.Meta)
		if err != nil {
			return nil, fmt.Errorf("journal: encoding meta: %w", err)
		}
		b = binary.AppendUvarint(b, uint64(len(js)))
		b = append(b, js...)
	case RecKernelStart:
		b = appendString(b, rec.Kernel)
		js, err := json.Marshal(rec.Env)
		if err != nil {
			return nil, fmt.Errorf("journal: encoding env snapshot: %w", err)
		}
		b = binary.AppendUvarint(b, uint64(len(js)))
		b = append(b, js...)
	case RecKernelEnd:
		b = appendString(b, rec.Kernel)
	case RecBlockStart:
		b = binary.AppendVarint(b, int64(rec.SM))
		b = binary.AppendVarint(b, int64(rec.SharedBase))
		b = binary.AppendVarint(b, int64(rec.SharedSize))
	case RecBarrier:
		b = binary.AppendVarint(b, int64(rec.SM))
		b = binary.AppendVarint(b, int64(rec.Block))
		b = binary.AppendVarint(b, int64(rec.SharedBase))
		b = binary.AppendVarint(b, int64(rec.SharedSize))
		b = binary.AppendVarint(b, rec.Cycle)
	case RecWarpMem:
		b = appendWarpMem(b, rec.Ev)
	case RecFence:
		b = binary.AppendVarint(b, int64(rec.Block))
		b = binary.AppendVarint(b, int64(rec.Warp))
		b = binary.AppendUvarint(b, uint64(rec.FenceID))
	case RecRace:
		b = binary.AppendVarint(b, rec.Cycle)
		b = appendString(b, rec.Race)
	case RecVerdict:
		b = binary.AppendUvarint(b, uint64(len(rec.Verdict)))
		for _, v := range rec.Verdict {
			b = appendString(b, v)
		}
	default:
		return nil, fmt.Errorf("journal: cannot encode record type %v", rec.Type)
	}
	return b, nil
}

func appendWarpMem(b []byte, ev *gpu.WarpMemEvent) []byte {
	b = append(b, byte(ev.Space))
	var flags byte
	if ev.Write {
		flags |= 1
	}
	if ev.Atomic {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.AppendVarint(b, int64(ev.PC))
	b = binary.AppendVarint(b, int64(ev.SM))
	b = binary.AppendVarint(b, int64(ev.Block))
	b = binary.AppendVarint(b, int64(ev.WarpInBlock))
	b = appendString(b, ev.Kernel)
	b = appendString(b, ev.Stmt)
	b = binary.AppendUvarint(b, uint64(ev.SyncID))
	b = binary.AppendUvarint(b, uint64(ev.FenceID))
	b = binary.AppendVarint(b, ev.Cycle)
	b = binary.AppendUvarint(b, uint64(len(ev.Lanes)))
	for i := range ev.Lanes {
		la := &ev.Lanes[i]
		b = binary.AppendVarint(b, int64(la.Lane))
		b = binary.AppendVarint(b, int64(la.Tid))
		b = binary.AppendVarint(b, int64(la.GTid))
		b = binary.AppendUvarint(b, la.Addr)
		b = append(b, la.Size)
		b = binary.AppendUvarint(b, uint64(la.AtomicSig))
		b = appendBool(b, la.InCrit)
		b = appendBool(b, la.L1Hit)
		b = binary.AppendVarint(b, la.L1Fill)
		b = binary.AppendVarint(b, la.Arrival)
	}
	return b
}

// --- decoding ---

// decoder walks a record payload with bounds-checked reads; any
// overrun surfaces as an error, never a panic.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("journal: truncated %s", what)
	}
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) byteVal(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail(what)
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) boolVal(what string) bool { return d.byteVal(what) != 0 }

func (d *decoder) bytes(what string) []byte {
	n := d.uvarint(what + " length")
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail(what)
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *decoder) stringVal(what string) string { return string(d.bytes(what)) }

// DecodeRecord parses one record payload. The input is normally
// CRC-validated, but decoding is defensive regardless: corrupt bytes
// yield an error, never a panic or unbounded allocation.
func DecodeRecord(payload []byte) (*Record, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("journal: empty record")
	}
	rec := &Record{Type: RecType(payload[0])}
	d := &decoder{b: payload[1:]}
	switch rec.Type {
	case RecMeta:
		js := d.bytes("meta json")
		if d.err == nil {
			rec.Meta = &Meta{}
			if err := json.Unmarshal(js, rec.Meta); err != nil {
				return nil, fmt.Errorf("journal: meta: %w", err)
			}
		}
	case RecKernelStart:
		rec.Kernel = d.stringVal("kernel name")
		js := d.bytes("env snapshot json")
		if d.err == nil {
			rec.Env = &EnvSnapshot{}
			if err := json.Unmarshal(js, rec.Env); err != nil {
				return nil, fmt.Errorf("journal: env snapshot: %w", err)
			}
		}
	case RecKernelEnd:
		rec.Kernel = d.stringVal("kernel name")
	case RecBlockStart:
		rec.SM = int(d.varint("sm"))
		rec.SharedBase = int(d.varint("shared base"))
		rec.SharedSize = int(d.varint("shared size"))
	case RecBarrier:
		rec.SM = int(d.varint("sm"))
		rec.Block = int(d.varint("block"))
		rec.SharedBase = int(d.varint("shared base"))
		rec.SharedSize = int(d.varint("shared size"))
		rec.Cycle = d.varint("cycle")
	case RecWarpMem:
		rec.Ev = decodeWarpMem(d)
	case RecFence:
		rec.Block = int(d.varint("block"))
		rec.Warp = int(d.varint("warp"))
		rec.FenceID = uint32(d.uvarint("fence id"))
	case RecRace:
		rec.Cycle = d.varint("cycle")
		rec.Race = d.stringVal("race")
	case RecVerdict:
		n := d.uvarint("verdict count")
		if n > uint64(len(d.b)) { // each entry needs >= 1 byte
			d.fail("verdict count")
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			rec.Verdict = append(rec.Verdict, d.stringVal("verdict entry"))
		}
	default:
		return nil, fmt.Errorf("journal: unknown record type %d", payload[0])
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("journal: %d trailing bytes after %v record", len(d.b), rec.Type)
	}
	return rec, nil
}

func decodeWarpMem(d *decoder) *gpu.WarpMemEvent {
	ev := &gpu.WarpMemEvent{}
	ev.Space = isa.Space(d.byteVal("space"))
	flags := d.byteVal("flags")
	ev.Write = flags&1 != 0
	ev.Atomic = flags&2 != 0
	ev.PC = int(d.varint("pc"))
	ev.SM = int(d.varint("sm"))
	ev.Block = int(d.varint("block"))
	ev.WarpInBlock = int(d.varint("warp"))
	ev.Kernel = d.stringVal("kernel")
	ev.Stmt = d.stringVal("stmt")
	ev.SyncID = uint32(d.uvarint("sync id"))
	ev.FenceID = uint32(d.uvarint("fence id"))
	ev.Cycle = d.varint("cycle")
	n := d.uvarint("lane count")
	// Each lane occupies at least 10 bytes; a corrupt count cannot
	// force a large allocation past this check.
	if n > uint64(len(d.b)) {
		d.fail("lane count")
		return ev
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		var la gpu.LaneAccess
		la.Lane = int(d.varint("lane"))
		la.Tid = int(d.varint("tid"))
		la.GTid = int(d.varint("gtid"))
		la.Addr = d.uvarint("addr")
		la.Size = d.byteVal("size")
		la.AtomicSig = bloom.Sig(d.uvarint("sig"))
		la.InCrit = d.boolVal("in-crit")
		la.L1Hit = d.boolVal("l1-hit")
		la.L1Fill = d.varint("l1-fill")
		la.Arrival = d.varint("arrival")
		ev.Lanes = append(ev.Lanes, la)
	}
	return ev
}
