package journal

import (
	"bytes"
	"io"
	"testing"
)

// FuzzJournalReader feeds arbitrary bytes through the full decode
// path — header validation, frame scanning, record decoding. Any
// input must yield a clean error or a salvaged prefix; a panic, an
// unbounded allocation, or a salvage report that overruns the input
// is a bug.
func FuzzJournalReader(f *testing.F) {
	// Seed corpus: a well-formed journal, its truncations, and light
	// corruptions, so the fuzzer starts near the interesting surface.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	for _, rec := range []*Record{
		{Type: RecMeta, Meta: &Meta{Bench: "scan", Detector: "shared+global"}},
		{Type: RecBlockStart, SM: 1, SharedBase: 0, SharedSize: 256},
		{Type: RecWarpMem, Ev: sampleEvent()},
		{Type: RecFence, Block: 2, Warp: 1, FenceID: 3},
		{Type: RecVerdict, Verdict: []string{"race a"}},
	} {
		b, err := AppendRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		if err := w.Append(b); err != nil {
			f.Fatal(err)
		}
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:headerLen])
	f.Add([]byte(Magic))
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/2] ^= 0xff
	f.Add(mutated)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		records := 0
		for {
			payload, err := r.Next()
			if err != nil {
				if err != io.EOF && err != ErrTruncated {
					t.Fatalf("Next returned unexpected error %v", err)
				}
				break
			}
			records++
			// Decoding must be panic-free even on CRC-colliding garbage.
			_, _ = DecodeRecord(payload)
		}
		s := r.Salvage()
		if s.Records != records {
			t.Fatalf("salvage counts %d records, read %d", s.Records, records)
		}
		if s.Bytes < int64(headerLen) || s.Bytes > int64(len(data)) {
			t.Fatalf("salvage offset %d outside [header, %d]", s.Bytes, len(data))
		}
	})
}
