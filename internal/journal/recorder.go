package journal

import (
	"io"
	"sort"

	"haccrg/internal/core"
	"haccrg/internal/gpu"
)

// Recorder implements gpu.Detector: it journals every event it
// forwards to the wrapped detector, including the CurrentFenceID
// responses the detector reads from the device, so the journal alone
// determines the detector's verdicts.
//
// Place the Recorder outermost in a wrapping chain (it must observe
// the same events the inner chain does, and it snapshots the Env the
// device hands to KernelStart). The detector interface returns no
// errors, so write failures are sticky: the first one is remembered,
// recording stops, and Err reports it after the run.
type Recorder struct {
	inner gpu.Detector
	w     *Writer

	kernel   string
	raceBase int
	scratch  []byte
	err      error
}

// NewRecorder starts a journal on w (writing the file header) and
// wraps inner (nil for a record-only run with detection off).
func NewRecorder(w io.Writer, inner gpu.Detector) (*Recorder, error) {
	if inner == nil {
		inner = gpu.NopDetector{}
	}
	jw, err := NewWriter(w)
	if err != nil {
		return nil, err
	}
	return &Recorder{inner: inner, w: jw}, nil
}

// SetMeta journals the run description; call it once, before the run,
// so haccrg-replay can rebuild an equivalent detector.
func (r *Recorder) SetMeta(m *Meta) error {
	r.append(&Record{Type: RecMeta, Meta: m})
	return r.err
}

// Inner returns the wrapped detector (for chain unwrapping).
func (r *Recorder) Inner() gpu.Detector { return r.inner }

// Err returns the first write or encoding failure, if any.
func (r *Recorder) Err() error { return r.err }

// Health forwards the inner detector's degradation report, so
// journaling a detector does not hide it from LaunchStats.
func (r *Recorder) Health() *gpu.DetectorHealth {
	if hr, ok := r.inner.(gpu.HealthReporter); ok {
		return hr.Health()
	}
	return nil
}

func (r *Recorder) append(rec *Record) {
	if r.err != nil {
		return
	}
	b, err := AppendRecord(r.scratch[:0], rec)
	if err != nil {
		r.err = err
		return
	}
	r.scratch = b[:0]
	if err := r.w.Append(b); err != nil {
		r.err = err
	}
}

// Name implements gpu.Detector.
func (r *Recorder) Name() string { return "journal(" + r.inner.Name() + ")" }

// KernelStart implements gpu.Detector: it snapshots the device
// parameters and hands the inner chain a fence-recording Env.
func (r *Recorder) KernelStart(env gpu.Env, kernel string) {
	r.kernel = kernel
	r.append(&Record{
		Type:   RecKernelStart,
		Kernel: kernel,
		Env:    &EnvSnapshot{Config: *env.Config(), GlobalMemSize: env.GlobalMemSize()},
	})
	r.inner.KernelStart(&recordingEnv{Env: env, rec: r}, kernel)
}

// KernelEnd implements gpu.Detector and seals the kernel with a
// verdict record: the cumulative sorted race findings, the ground
// truth Replay's differential oracle compares against.
//
// Asynchronous detection engines (the sharded per-partition RDU) do
// not read CurrentFenceID through the Env — they consume a mirrored
// fence table and log each read. KernelEnd pulls that log and appends
// the fence records here, after the kernel's events: Replay's fence
// cursor spans the whole journal in order, and a serial replay issues
// the identical query sequence, so late emission serves the identical
// responses. A journal torn mid-kernel loses the pending fence log;
// its replay falls back to the cursor's latest-value approximation.
func (r *Recorder) KernelEnd() {
	r.inner.KernelEnd()
	for _, f := range r.takeFenceLog() {
		r.append(&Record{Type: RecFence, Block: f.Block, Warp: f.Warp, FenceID: f.ID})
	}
	r.recordNewRaces(0)
	r.append(&Record{Type: RecKernelEnd, Kernel: r.kernel})
	r.append(&Record{Type: RecVerdict, Verdict: VerdictOf(r.inner)})
}

// takeFenceLog drains the inner chain's buffered fence reads, if the
// chain contains an asynchronous engine (empty for serial detectors,
// whose fence reads were journaled inline by recordingEnv).
func (r *Recorder) takeFenceLog() []gpu.FenceRead {
	for w := r.inner; w != nil; {
		if t, ok := w.(interface{ TakeFenceLog() []gpu.FenceRead }); ok {
			return t.TakeFenceLog()
		}
		u, ok := w.(interface{ Inner() gpu.Detector })
		if !ok {
			return nil
		}
		w = u.Inner()
	}
	return nil
}

// BlockStart implements gpu.Detector.
func (r *Recorder) BlockStart(sm, sharedBase, sharedSize int) {
	r.append(&Record{Type: RecBlockStart, SM: sm, SharedBase: sharedBase, SharedSize: sharedSize})
	r.inner.BlockStart(sm, sharedBase, sharedSize)
}

// WarpMem implements gpu.Detector. The event is journaled before the
// inner detector runs, so the fence responses its verdict consumed
// follow it in the stream — the order Replay reproduces.
func (r *Recorder) WarpMem(ev *gpu.WarpMemEvent) int64 {
	r.append(&Record{Type: RecWarpMem, Ev: ev})
	stall := r.inner.WarpMem(ev)
	r.recordNewRaces(ev.Cycle)
	return stall
}

// Barrier implements gpu.Detector.
func (r *Recorder) Barrier(sm, block, sharedBase, sharedSize int, cycle int64) int64 {
	r.append(&Record{
		Type: RecBarrier, SM: sm, Block: block,
		SharedBase: sharedBase, SharedSize: sharedSize, Cycle: cycle,
	})
	stall := r.inner.Barrier(sm, block, sharedBase, sharedSize, cycle)
	r.recordNewRaces(cycle)
	return stall
}

// recordNewRaces journals race verdicts the inner chain reached since
// the last check, stamped with their detection cycle.
func (r *Recorder) recordNewRaces(cycle int64) {
	races := core.RacesOf(r.inner)
	for ; r.raceBase < len(races); r.raceBase++ {
		rc := races[r.raceBase]
		c := rc.Cycle
		if c == 0 {
			c = cycle
		}
		r.append(&Record{Type: RecRace, Cycle: c, Race: rc.String()})
	}
}

// recordingEnv wraps the device Env, journaling every CurrentFenceID
// response. The fence clock is the only device state a verdict reads
// outside the event stream; with the responses in-stream, replay is a
// pure function of the journal.
type recordingEnv struct {
	gpu.Env
	rec *Recorder
}

func (e *recordingEnv) CurrentFenceID(block, warpInBlock int) uint32 {
	id := e.Env.CurrentFenceID(block, warpInBlock)
	e.rec.append(&Record{Type: RecFence, Block: block, Warp: warpInBlock, FenceID: id})
	return id
}

// VerdictOf renders a detector chain's cumulative race findings in
// canonical form: each race's String(), sorted. Two runs found the
// same races if and only if their verdicts are byte-identical.
func VerdictOf(det gpu.Detector) []string {
	races := core.RacesOf(det)
	out := make([]string, len(races))
	for i, rc := range races {
		out[i] = rc.String()
	}
	sort.Strings(out)
	return out
}
