package journal

import (
	"errors"

	"haccrg/internal/vfs"
)

// FileWriter is the durable sink every file-backed journal goes
// through: an io.Writer over a vfs.FS file (hand it to NewRecorder or
// NewWriter) that adds the two durability obligations a bare file
// handle leaves to chance:
//
//   - Sync surfaces fsync failures as hard write failures (*IOError)
//     and sticky-fails the writer — after a failed sync the bytes on
//     disk are unknowable, so continuing to append would silently
//     build a journal nobody can trust;
//   - Close syncs first, so "the run finished and the journal file is
//     closed without error" implies the whole journal is on stable
//     storage.
type FileWriter struct {
	f   vfs.File
	err error
}

// CreateFile opens a fresh journal sink at path on fsys (vfs.OS when
// fsys is nil).
func CreateFile(fsys vfs.FS, path string) (*FileWriter, error) {
	f, err := vfs.Default(fsys).Create(path)
	if err != nil {
		return nil, &IOError{Op: "create " + path, Err: err}
	}
	return &FileWriter{f: f}, nil
}

// Write implements io.Writer. After a failed Sync (or Close) every
// write fails with the sticky error.
func (fw *FileWriter) Write(p []byte) (int, error) {
	if fw.err != nil {
		return 0, fw.err
	}
	n, err := fw.f.Write(p)
	if err != nil {
		fw.err = &IOError{Op: "write", Err: err}
		return n, fw.err
	}
	return n, nil
}

// Sync flushes the journal to stable storage. A failure is a hard
// write failure: it is returned as an *IOError and sticky-fails the
// writer.
func (fw *FileWriter) Sync() error {
	if fw.err != nil {
		return fw.err
	}
	if err := fw.f.Sync(); err != nil {
		fw.err = &IOError{Op: "sync", Err: err}
		return fw.err
	}
	return nil
}

// Close syncs and closes the file. The first failure — an earlier
// sticky write error, the final sync, or the close itself — is
// returned, so a caller that checks Close cannot mistake a lost
// journal for a recorded one.
func (fw *FileWriter) Close() error {
	sticky := fw.err
	serr := fw.Sync()
	cerr := fw.f.Close()
	if fw.err == nil {
		fw.err = &IOError{Op: "write", Err: errors.New("journal closed")}
	}
	if sticky != nil {
		return sticky
	}
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return &IOError{Op: "close", Err: cerr}
	}
	return nil
}
