// Package journal provides a durable, replayable record of a
// simulation's detector event stream: kernel lifecycle, block
// placement, warp memory events, fence-clock lookups and race
// verdicts, written as a versioned, length-prefixed, CRC32C-framed
// binary log.
//
// The format is built for crash forensics: a Reader never panics on a
// damaged file — it salvages the longest intact prefix of records,
// truncating at the first torn write or corrupt frame, and reports
// exactly what survived. A Recorder slots into the gpu.Detector
// wrapping chain (like trace.Recorder) and captures everything a
// detector's verdict depends on, so Replay can feed the journal back
// through a fresh detector offline and reproduce the recorded race
// findings byte for byte.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic opens every journal file, followed by a little-endian uint32
// format version.
const Magic = "HACCRGJL"

// Version is the current frame-format version. Readers reject files
// with a newer version rather than misparse them.
const Version = 1

// MaxRecordBytes bounds a single record's payload. A corrupt length
// field cannot make the reader allocate more than this.
const MaxRecordBytes = 1 << 24

// headerLen is the file header size: magic plus version.
const headerLen = len(Magic) + 4

// frameLen is the per-record frame header size: payload length plus
// CRC32C of the payload, both little-endian uint32.
const frameLen = 8

// castagnoli is the CRC32C table (the polynomial used by iSCSI and
// most storage formats; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// IOError marks a failure in the journal's underlying storage (as
// opposed to corrupt journal *content*). Consumers use IsIO to
// classify such failures as non-retryable: retrying a simulation on
// top of a half-written journal would corrupt it further.
type IOError struct {
	Op  string
	Err error
}

func (e *IOError) Error() string { return "journal: " + e.Op + ": " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *IOError) Unwrap() error { return e.Err }

// IsIO reports whether err is (or wraps) a journal storage failure.
func IsIO(err error) bool {
	var ioe *IOError
	return errors.As(err, &ioe)
}

// Writer appends CRC-framed records to an underlying stream. It is
// not safe for concurrent use.
type Writer struct {
	w     io.Writer
	frame [frameLen]byte
	err   error
}

// NewWriter starts a fresh journal on w, writing the file header.
func NewWriter(w io.Writer) (*Writer, error) {
	jw := &Writer{w: w}
	var hdr [headerLen]byte
	copy(hdr[:], Magic)
	binary.LittleEndian.PutUint32(hdr[len(Magic):], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		jw.err = &IOError{Op: "write header", Err: err}
		return nil, jw.err
	}
	return jw, nil
}

// ResumeWriter continues an existing journal on w without rewriting
// the file header; the caller must have positioned w at the end of the
// last intact record (see Reader's Salvage).
func ResumeWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Append frames and writes one record payload. After the first
// failure the writer is sticky-failed: every later Append returns the
// same *IOError without touching the stream again.
func (w *Writer) Append(payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("journal: record of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	binary.LittleEndian.PutUint32(w.frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.frame[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.w.Write(w.frame[:]); err != nil {
		w.err = &IOError{Op: "write frame", Err: err}
		return w.err
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = &IOError{Op: "write payload", Err: err}
		return w.err
	}
	return nil
}

// Err returns the writer's sticky error, if any.
func (w *Writer) Err() error { return w.err }

// Salvage reports what a Reader recovered from a journal.
type Salvage struct {
	// Records is how many intact records were read.
	Records int
	// Bytes is the file offset just past the last intact record — the
	// safe truncation point for resuming appends.
	Bytes int64
	// Truncated is true when the journal did not end cleanly: a torn
	// frame, a CRC mismatch, or an implausible length stopped the scan.
	Truncated bool
	// Reason describes why the scan stopped early (empty when clean).
	Reason string
}

func (s Salvage) String() string {
	if !s.Truncated {
		return fmt.Sprintf("clean journal: %d records, %d bytes", s.Records, s.Bytes)
	}
	return fmt.Sprintf("damaged journal: salvaged %d intact records (%d bytes); %s", s.Records, s.Bytes, s.Reason)
}

// ErrTruncated is returned by Reader.Next once the scan hits damage;
// the longest intact prefix has already been delivered.
var ErrTruncated = errors.New("journal: truncated or corrupt tail")

// Reader scans a framed journal, delivering intact record payloads in
// order and stopping — never panicking — at the first sign of damage.
type Reader struct {
	r       io.Reader
	salvage Salvage
	buf     []byte
	done    bool
	err     error
}

// NewReader validates the file header and prepares to scan records.
// A missing or foreign header yields an error immediately; a damaged
// body is reported later, through Next and Salvage.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("journal: reading header: %w", err)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("journal: bad magic %q", hdr[:len(Magic)])
	}
	v := binary.LittleEndian.Uint32(hdr[len(Magic):])
	if v == 0 || v > Version {
		return nil, fmt.Errorf("journal: unsupported format version %d (reader speaks <= %d)", v, Version)
	}
	return &Reader{r: r, salvage: Salvage{Bytes: int64(headerLen)}}, nil
}

// Next returns the next intact record payload. It returns io.EOF at a
// clean end of journal and ErrTruncated when the remaining bytes are
// torn or corrupt; in both cases Salvage describes what was read. The
// returned slice is reused by the following Next call.
func (r *Reader) Next() ([]byte, error) {
	if r.done {
		return nil, r.err
	}
	var frame [frameLen]byte
	n, err := io.ReadFull(r.r, frame[:])
	if err == io.EOF && n == 0 {
		return nil, r.stop(io.EOF, "")
	}
	if err != nil {
		return nil, r.stop(ErrTruncated, fmt.Sprintf("torn frame header (%d of %d bytes)", n, frameLen))
	}
	length := binary.LittleEndian.Uint32(frame[0:4])
	want := binary.LittleEndian.Uint32(frame[4:8])
	if length > MaxRecordBytes {
		return nil, r.stop(ErrTruncated, fmt.Sprintf("implausible record length %d", length))
	}
	if cap(r.buf) < int(length) {
		r.buf = make([]byte, length)
	}
	payload := r.buf[:length]
	if n, err := io.ReadFull(r.r, payload); err != nil {
		return nil, r.stop(ErrTruncated, fmt.Sprintf("torn payload (%d of %d bytes)", n, length))
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, r.stop(ErrTruncated, fmt.Sprintf("CRC mismatch (want %#x, got %#x)", want, got))
	}
	r.salvage.Records++
	r.salvage.Bytes += int64(frameLen) + int64(length)
	return payload, nil
}

func (r *Reader) stop(err error, reason string) error {
	r.done = true
	r.err = err
	if err != io.EOF {
		r.salvage.Truncated = true
		r.salvage.Reason = reason
	}
	return err
}

// Salvage reports the scan outcome so far; it is final once Next has
// returned an error.
func (r *Reader) Salvage() Salvage { return r.salvage }
