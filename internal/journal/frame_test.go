package journal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// buildJournal frames the given payloads into a complete journal.
func buildJournal(t *testing.T, payloads ...[]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// readAll drains a journal, returning the intact payload copies and
// the final salvage report. It fails the test on a reader-construction
// error only; body damage is expected and reported via salvage.
func readAll(t *testing.T, data []byte) ([][]byte, Salvage) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var out [][]byte
	for {
		p, err := r.Next()
		if err != nil {
			if err != io.EOF && !errors.Is(err, ErrTruncated) {
				t.Fatalf("Next: unexpected error %v", err)
			}
			return out, r.Salvage()
		}
		out = append(out, append([]byte(nil), p...))
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma gamma gamma")}
	data := buildJournal(t, payloads...)
	got, s := readAll(t, data)
	if s.Truncated {
		t.Fatalf("clean journal reported truncated: %v", s)
	}
	if s.Records != len(payloads) || int(s.Bytes) != len(data) {
		t.Errorf("salvage = %+v, want %d records / %d bytes", s, len(payloads), len(data))
	}
	if len(got) != len(payloads) {
		t.Fatalf("read %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], payloads[i])
		}
	}
}

// TestTornWrite cuts the journal at every possible byte offset: the
// reader must salvage exactly the records whose frames fit in the
// prefix, and report truncation whenever the cut is mid-record.
func TestTornWrite(t *testing.T) {
	payloads := [][]byte{[]byte("one"), []byte("twotwo"), []byte("three three")}
	data := buildJournal(t, payloads...)
	// A cut exactly at a record boundary is indistinguishable from a
	// clean end; truncation must be reported for every other cut.
	boundaries := map[int]bool{headerLen: true}
	off := headerLen
	for _, p := range payloads {
		off += frameLen + len(p)
		boundaries[off] = true
	}
	for cut := headerLen; cut < len(data); cut++ {
		got, s := readAll(t, data[:cut])
		if int(s.Bytes) > cut {
			t.Fatalf("cut %d: salvage claims %d bytes beyond the file", cut, s.Bytes)
		}
		for i, p := range got {
			if !bytes.Equal(p, payloads[i]) {
				t.Fatalf("cut %d: salvaged record %d = %q, want %q", cut, i, p, payloads[i])
			}
		}
		if s.Truncated == boundaries[cut] {
			t.Errorf("cut %d: truncated=%v, want %v", cut, s.Truncated, !boundaries[cut])
		}
	}
}

// TestBitCorruption flips one bit at every position in the body: the
// reader must never deliver a corrupted payload — every salvaged
// record is an exact prefix of the originals.
func TestBitCorruption(t *testing.T) {
	payloads := [][]byte{[]byte("first record"), []byte("second record"), []byte("third record")}
	data := buildJournal(t, payloads...)
	for pos := headerLen; pos < len(data); pos++ {
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0x40
		got, _ := readAll(t, corrupt)
		if len(got) >= len(payloads) {
			t.Fatalf("flip at %d: all %d records survived corruption", pos, len(got))
		}
		for i, p := range got {
			if !bytes.Equal(p, payloads[i]) {
				t.Fatalf("flip at %d: delivered corrupted record %d: %q", pos, i, p)
			}
		}
	}
}

func TestHeaderValidation(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short":       []byte("HACC"),
		"wrong magic": append([]byte("NOTAJRNL"), 1, 0, 0, 0),
		"version 0":   append([]byte(Magic), 0, 0, 0, 0),
		"future":      append([]byte(Magic), 99, 0, 0, 0),
	}
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Errorf("%s header accepted", name)
		}
	}
}

func TestImplausibleLength(t *testing.T) {
	data := buildJournal(t, []byte("ok"))
	// Append a frame whose length field is absurd.
	data = append(data, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0)
	got, s := readAll(t, data)
	if len(got) != 1 || !s.Truncated {
		t.Errorf("salvaged %d records, truncated=%v; want 1 record and truncation", len(got), s.Truncated)
	}
}

// TestResumeWriter appends through a ResumeWriter at the salvage
// offset and checks the combined file reads back whole.
func TestResumeWriter(t *testing.T) {
	data := buildJournal(t, []byte("kept"), []byte("also kept"))
	// Simulate a torn tail, then resume at the salvage point.
	torn := append(append([]byte(nil), data...), 0x01, 0x02, 0x03)
	_, s := readAll(t, torn)
	if !s.Truncated || int(s.Bytes) != len(data) {
		t.Fatalf("salvage = %+v, want truncation at %d", s, len(data))
	}
	var buf bytes.Buffer
	buf.Write(torn[:s.Bytes])
	w := ResumeWriter(&buf)
	if err := w.Append([]byte("resumed")); err != nil {
		t.Fatal(err)
	}
	got, s2 := readAll(t, buf.Bytes())
	if s2.Truncated || len(got) != 3 || string(got[2]) != "resumed" {
		t.Errorf("after resume: %d records (truncated=%v), want 3 clean", len(got), s2.Truncated)
	}
}

// errWriter fails after n successful writes.
type errWriter struct {
	n   int
	err error
}

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

func TestWriterStickyIOError(t *testing.T) {
	boom := errors.New("disk gone")
	w, err := NewWriter(&errWriter{n: 3, err: boom})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("fits")); err != nil {
		t.Fatalf("first append: %v", err)
	}
	err = w.Append([]byte("fails"))
	if err == nil || !IsIO(err) || !errors.Is(err, boom) {
		t.Fatalf("failed append returned %v, want an IOError wrapping the cause", err)
	}
	if err2 := w.Append([]byte("after")); err2 == nil || !IsIO(err2) {
		t.Fatalf("sticky error lost: %v", err2)
	}
}
