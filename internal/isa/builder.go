package isa

import (
	"fmt"
	"math"
)

// Builder assembles a Program. Methods append instructions; labels are
// resolved when Build is called. Branch reconvergence points are given
// as labels too, so structured control flow (if/loop) written with the
// helpers below always carries correct SIMT reconvergence information.
type Builder struct {
	name   string
	code   []Instr
	labels map[string]int
	fixups []fixup
	errs   []error

	pendPred Pred
	pendNeg  bool
	pendNote string

	ifSeq     int
	loopSeq   int
	ifStack   []int
	loopStack []loopCtx
}

type fixup struct {
	pc     int
	target string // label for Tgt ("" = none)
	reconv string // label for Rcv ("" = none)
}

type loopCtx struct {
	head string
	end  string
}

// NewBuilder returns an empty builder for a kernel named name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		labels:   make(map[string]int),
		pendPred: NoPred,
	}
}

func (b *Builder) emit(in Instr) *Builder {
	// Guards are only attached via P/PN (or the branch helpers, which
	// route through pendPred); a plain emit is unpredicated.
	if b.pendPred != NoPred {
		in.Pred = b.pendPred
		in.PredNeg = b.pendNeg
		b.pendPred = NoPred
		b.pendNeg = false
	} else {
		in.Pred = NoPred
		in.PredNeg = false
	}
	if b.pendNote != "" {
		in.Line = b.pendNote
		b.pendNote = ""
	}
	b.code = append(b.code, in)
	return b
}

// Note annotates the next emitted instruction with a source-level
// description; race reports carry it alongside the PC.
func (b *Builder) Note(text string) *Builder {
	b.pendNote = text
	return b
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("isa: %s: %s", b.name, fmt.Sprintf(format, args...)))
}

// P guards the next emitted instruction with predicate p.
func (b *Builder) P(p Pred) *Builder { b.pendPred, b.pendNeg = p, false; return b }

// PN guards the next emitted instruction with the negation of p.
func (b *Builder) PN(p Pred) *Builder { b.pendPred, b.pendNeg = p, true; return b }

// Label defines a label at the current PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errf("duplicate label %q", name)
	}
	b.labels[name] = len(b.code)
	return b
}

// PC returns the current program counter (index of the next instruction).
func (b *Builder) PC() int { return len(b.code) }

// --- data movement ---

// Mov emits d = a.
func (b *Builder) Mov(d, a Reg) *Builder { return b.emit(Instr{Op: OpMov, Dst: d, SrcA: a}) }

// Movi emits d = imm.
func (b *Builder) Movi(d Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpMov, Dst: d, Imm: imm, UseImm: true})
}

// MovF emits d = float constant f (stored as float64 bits).
func (b *Builder) MovF(d Reg, f float64) *Builder {
	return b.emit(Instr{Op: OpMov, Dst: d, Imm: int64(math.Float64bits(f)), UseImm: true})
}

// Sreg emits d = special register k.
func (b *Builder) Sreg(d Reg, k SregKind) *Builder {
	return b.emit(Instr{Op: OpSreg, Dst: d, Imm: int64(k)})
}

// Selp emits d = p ? a : c.
func (b *Builder) Selp(d Reg, p Pred, a, c Reg) *Builder {
	return b.emit(Instr{Op: OpSelp, Dst: d, SrcA: a, SrcC: c, PD: p})
}

// --- integer ALU ---

func (b *Builder) alu(op Op, d, a, s Reg) *Builder {
	return b.emit(Instr{Op: op, Dst: d, SrcA: a, SrcB: s})
}

func (b *Builder) alui(op Op, d, a Reg, imm int64) *Builder {
	return b.emit(Instr{Op: op, Dst: d, SrcA: a, Imm: imm, UseImm: true})
}

// Add emits d = a + s.
func (b *Builder) Add(d, a, s Reg) *Builder { return b.alu(OpAdd, d, a, s) }

// Addi emits d = a + imm.
func (b *Builder) Addi(d, a Reg, imm int64) *Builder { return b.alui(OpAdd, d, a, imm) }

// Sub emits d = a - s.
func (b *Builder) Sub(d, a, s Reg) *Builder { return b.alu(OpSub, d, a, s) }

// Subi emits d = a - imm.
func (b *Builder) Subi(d, a Reg, imm int64) *Builder { return b.alui(OpSub, d, a, imm) }

// Mul emits d = a * s.
func (b *Builder) Mul(d, a, s Reg) *Builder { return b.alu(OpMul, d, a, s) }

// Muli emits d = a * imm.
func (b *Builder) Muli(d, a Reg, imm int64) *Builder { return b.alui(OpMul, d, a, imm) }

// Div emits d = a / s (signed; division by zero yields 0).
func (b *Builder) Div(d, a, s Reg) *Builder { return b.alu(OpDiv, d, a, s) }

// Divi emits d = a / imm.
func (b *Builder) Divi(d, a Reg, imm int64) *Builder { return b.alui(OpDiv, d, a, imm) }

// Rem emits d = a % s (signed; modulo by zero yields 0).
func (b *Builder) Rem(d, a, s Reg) *Builder { return b.alu(OpRem, d, a, s) }

// Remi emits d = a % imm.
func (b *Builder) Remi(d, a Reg, imm int64) *Builder { return b.alui(OpRem, d, a, imm) }

// Min emits d = min(a, s).
func (b *Builder) Min(d, a, s Reg) *Builder { return b.alu(OpMin, d, a, s) }

// Max emits d = max(a, s).
func (b *Builder) Max(d, a, s Reg) *Builder { return b.alu(OpMax, d, a, s) }

// And emits d = a & s.
func (b *Builder) And(d, a, s Reg) *Builder { return b.alu(OpAnd, d, a, s) }

// Andi emits d = a & imm.
func (b *Builder) Andi(d, a Reg, imm int64) *Builder { return b.alui(OpAnd, d, a, imm) }

// Or emits d = a | s.
func (b *Builder) Or(d, a, s Reg) *Builder { return b.alu(OpOr, d, a, s) }

// Ori emits d = a | imm.
func (b *Builder) Ori(d, a Reg, imm int64) *Builder { return b.alui(OpOr, d, a, imm) }

// Xor emits d = a ^ s.
func (b *Builder) Xor(d, a, s Reg) *Builder { return b.alu(OpXor, d, a, s) }

// Xori emits d = a ^ imm.
func (b *Builder) Xori(d, a Reg, imm int64) *Builder { return b.alui(OpXor, d, a, imm) }

// Not emits d = ^a.
func (b *Builder) Not(d, a Reg) *Builder { return b.emit(Instr{Op: OpNot, Dst: d, SrcA: a}) }

// Shl emits d = a << s.
func (b *Builder) Shl(d, a, s Reg) *Builder { return b.alu(OpShl, d, a, s) }

// Shli emits d = a << imm.
func (b *Builder) Shli(d, a Reg, imm int64) *Builder { return b.alui(OpShl, d, a, imm) }

// Shr emits d = a >> s (arithmetic).
func (b *Builder) Shr(d, a, s Reg) *Builder { return b.alu(OpShr, d, a, s) }

// Shri emits d = a >> imm.
func (b *Builder) Shri(d, a Reg, imm int64) *Builder { return b.alui(OpShr, d, a, imm) }

// Mad emits d = a*s + c.
func (b *Builder) Mad(d, a, s, c Reg) *Builder {
	return b.emit(Instr{Op: OpMad, Dst: d, SrcA: a, SrcB: s, SrcC: c})
}

// --- float ALU ---

// FAdd emits d = a + s (float64).
func (b *Builder) FAdd(d, a, s Reg) *Builder { return b.alu(OpFAdd, d, a, s) }

// FSub emits d = a - s (float64).
func (b *Builder) FSub(d, a, s Reg) *Builder { return b.alu(OpFSub, d, a, s) }

// FMul emits d = a * s (float64).
func (b *Builder) FMul(d, a, s Reg) *Builder { return b.alu(OpFMul, d, a, s) }

// FDiv emits d = a / s (float64).
func (b *Builder) FDiv(d, a, s Reg) *Builder { return b.alu(OpFDiv, d, a, s) }

// FMin emits d = min(a, s) (float64).
func (b *Builder) FMin(d, a, s Reg) *Builder { return b.alu(OpFMin, d, a, s) }

// FMax emits d = max(a, s) (float64).
func (b *Builder) FMax(d, a, s Reg) *Builder { return b.alu(OpFMax, d, a, s) }

// FSqrt emits d = sqrt(a).
func (b *Builder) FSqrt(d, a Reg) *Builder { return b.emit(Instr{Op: OpFSqrt, Dst: d, SrcA: a}) }

// FExp emits d = exp(a).
func (b *Builder) FExp(d, a Reg) *Builder { return b.emit(Instr{Op: OpFExp, Dst: d, SrcA: a}) }

// FLog emits d = log(a).
func (b *Builder) FLog(d, a Reg) *Builder { return b.emit(Instr{Op: OpFLog, Dst: d, SrcA: a}) }

// FSin emits d = sin(a).
func (b *Builder) FSin(d, a Reg) *Builder { return b.emit(Instr{Op: OpFSin, Dst: d, SrcA: a}) }

// FCos emits d = cos(a).
func (b *Builder) FCos(d, a Reg) *Builder { return b.emit(Instr{Op: OpFCos, Dst: d, SrcA: a}) }

// FAbs emits d = |a|.
func (b *Builder) FAbs(d, a Reg) *Builder { return b.emit(Instr{Op: OpFAbs, Dst: d, SrcA: a}) }

// ItoF emits d = float64(int64(a)).
func (b *Builder) ItoF(d, a Reg) *Builder { return b.emit(Instr{Op: OpItoF, Dst: d, SrcA: a}) }

// FtoI emits d = int64(float64(a)), truncating toward zero.
func (b *Builder) FtoI(d, a Reg) *Builder { return b.emit(Instr{Op: OpFtoI, Dst: d, SrcA: a}) }

// --- predicates and control flow ---

// Setp emits p = cmp(a, s) over signed integers.
func (b *Builder) Setp(p Pred, cmp CmpOp, a, s Reg) *Builder {
	return b.emit(Instr{Op: OpSetp, PD: p, Cmp: cmp, SrcA: a, SrcB: s})
}

// Setpi emits p = cmp(a, imm) over signed integers.
func (b *Builder) Setpi(p Pred, cmp CmpOp, a Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpSetp, PD: p, Cmp: cmp, SrcA: a, Imm: imm, UseImm: true})
}

// FSetp emits p = cmp(a, s) over float64.
func (b *Builder) FSetp(p Pred, cmp CmpOp, a, s Reg) *Builder {
	return b.emit(Instr{Op: OpFSetp, PD: p, Cmp: cmp, SrcA: a, SrcB: s})
}

// Jmp emits an unconditional branch to label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), target: label})
	return b.emit(Instr{Op: OpBra})
}

// BraP emits a predicated (possibly divergent) branch: lanes where p
// holds jump to target; the warp reconverges at reconv.
func (b *Builder) BraP(p Pred, target, reconv string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), target: target, reconv: reconv})
	b.pendPred, b.pendNeg = p, false
	return b.emit(Instr{Op: OpBra})
}

// BraPN is BraP guarded on !p.
func (b *Builder) BraPN(p Pred, target, reconv string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), target: target, reconv: reconv})
	b.pendPred, b.pendNeg = p, true
	return b.emit(Instr{Op: OpBra})
}

// Exit emits thread termination for the active lanes.
func (b *Builder) Exit() *Builder { return b.emit(Instr{Op: OpExit}) }

// --- memory ---

// Ld emits d = space[a + off] of the given byte size.
func (b *Builder) Ld(d Reg, space Space, a Reg, off int64, size uint8) *Builder {
	return b.emit(Instr{Op: OpLd, Dst: d, SrcA: a, Imm: off, Space: space, Size: size})
}

// LdF emits a float32 load: d = float64(float32bits(space[a+off])).
func (b *Builder) LdF(d Reg, space Space, a Reg, off int64) *Builder {
	return b.emit(Instr{Op: OpLd, Dst: d, SrcA: a, Imm: off, Space: space, Size: 4, Float: true})
}

// St emits space[a + off] = s of the given byte size.
func (b *Builder) St(space Space, a Reg, off int64, s Reg, size uint8) *Builder {
	return b.emit(Instr{Op: OpSt, SrcA: a, Imm: off, SrcB: s, Space: space, Size: size})
}

// StF emits a float32 store of register s (held as float64).
func (b *Builder) StF(space Space, a Reg, off int64, s Reg) *Builder {
	return b.emit(Instr{Op: OpSt, SrcA: a, Imm: off, SrcB: s, Space: space, Size: 4, Float: true})
}

// Ldp emits d = param[idx]; kernel parameters are 64-bit values.
func (b *Builder) Ldp(d Reg, idx int64) *Builder {
	return b.emit(Instr{Op: OpLd, Dst: d, SrcA: 0, Imm: idx * 8, Space: SpaceParam, Size: 8})
}

// Atom emits d = atomic op on space[a+off] with operands s (and c for CAS).
func (b *Builder) Atom(d Reg, op AtomOp, space Space, a Reg, off int64, s, c Reg) *Builder {
	return b.emit(Instr{Op: OpAtom, Dst: d, AOp: op, SrcA: a, Imm: off, SrcB: s, SrcC: c, Space: space, Size: 4})
}

// --- synchronization ---

// Bar emits a block-wide barrier (__syncthreads).
func (b *Builder) Bar() *Builder { return b.emit(Instr{Op: OpBar}) }

// Membar emits a memory fence (__threadfence).
func (b *Builder) Membar() *Builder { return b.emit(Instr{Op: OpMembar}) }

// AcqMark emits a critical-section begin marker; the lock variable's
// address is in register a. Inserted after the lock-acquire atomic,
// as the paper's marker instructions are.
func (b *Builder) AcqMark(a Reg) *Builder { return b.emit(Instr{Op: OpAcqMark, SrcA: a}) }

// RelMark emits a critical-section end marker, clearing the thread's
// lockset signature. Inserted before the lock-release operation.
func (b *Builder) RelMark() *Builder { return b.emit(Instr{Op: OpRelMark}) }

// --- structured control flow helpers ---

// If opens a divergent region executed by lanes where p holds.
// Must be closed with EndIf.
func (b *Builder) If(p Pred) *Builder {
	b.ifSeq++
	end := fmt.Sprintf(".if%d.end", b.ifSeq)
	b.ifStack = append(b.ifStack, b.ifSeq)
	return b.BraPN(p, end, end)
}

// IfNot opens a divergent region executed by lanes where p does not hold.
func (b *Builder) IfNot(p Pred) *Builder {
	b.ifSeq++
	end := fmt.Sprintf(".if%d.end", b.ifSeq)
	b.ifStack = append(b.ifStack, b.ifSeq)
	return b.BraP(p, end, end)
}

// EndIf closes the innermost If/IfNot region.
func (b *Builder) EndIf() *Builder {
	if len(b.ifStack) == 0 {
		b.errf("EndIf without If")
		return b
	}
	id := b.ifStack[len(b.ifStack)-1]
	b.ifStack = b.ifStack[:len(b.ifStack)-1]
	return b.Label(fmt.Sprintf(".if%d.end", id))
}

// While opens a loop: body executes while cond(p) holds; the predicate
// must be (re)computed before EndWhile via the returned check label
// convention — in practice use Loop below for counted loops.
// While emits the loop head label and the conditional exit branch,
// assuming p has already been set before entry and is updated in the
// body before EndWhile jumps back.
func (b *Builder) While(p Pred) *Builder {
	b.loopSeq++
	head := fmt.Sprintf(".loop%d.head", b.loopSeq)
	end := fmt.Sprintf(".loop%d.end", b.loopSeq)
	b.loopStack = append(b.loopStack, loopCtx{head: head, end: end})
	b.Label(head)
	return b.BraPN(p, end, end)
}

// EndWhile closes the innermost While loop, jumping back to its head.
func (b *Builder) EndWhile() *Builder {
	if len(b.loopStack) == 0 {
		b.errf("EndWhile without While")
		return b
	}
	c := b.loopStack[len(b.loopStack)-1]
	b.loopStack = b.loopStack[:len(b.loopStack)-1]
	b.Jmp(c.head)
	return b.Label(c.end)
}

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	if len(b.ifStack) != 0 {
		b.errf("%d unclosed If regions", len(b.ifStack))
	}
	if len(b.loopStack) != 0 {
		b.errf("%d unclosed While loops", len(b.loopStack))
	}
	for _, f := range b.fixups {
		in := &b.code[f.pc]
		if f.target != "" {
			pc, ok := b.labels[f.target]
			if !ok {
				b.errf("undefined label %q", f.target)
				continue
			}
			in.Tgt = pc
		}
		if f.reconv != "" {
			pc, ok := b.labels[f.reconv]
			if !ok {
				b.errf("undefined reconvergence label %q", f.reconv)
				continue
			}
			in.Rcv = pc
		}
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	// Ensure the program terminates even if the author forgot Exit.
	if n := len(b.code); n == 0 || b.code[n-1].Op != OpExit {
		b.Exit()
	}
	p := &Program{Name: b.name, Code: b.code, Labels: b.labels}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build but panics on error; for use in kernel
// constructors where programs are static.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
