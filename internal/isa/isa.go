// Package isa defines a small PTX-like instruction set for the GPU
// simulator. Programs are sequences of Instr values operating on 32
// per-thread general registers and 8 per-thread predicate registers.
// Control flow uses explicit reconvergence points (the builder computes
// them from structured Label/branch pairs), which drive the SIMT
// divergence stack in the execution engine.
package isa

import "fmt"

// NumRegs is the number of general-purpose registers per thread.
// Registers hold 64-bit values; float operations interpret them as
// IEEE-754 float64 bit patterns.
const NumRegs = 32

// NumPreds is the number of 1-bit predicate registers per thread.
const NumPreds = 8

// Reg names a general-purpose register.
type Reg uint8

// Pred names a predicate register.
type Pred uint8

// NoPred marks an unpredicated instruction.
const NoPred = Pred(0xFF)

// Space identifies a memory space for LD/ST/ATOM instructions.
type Space uint8

// Memory spaces. Param is a small read-only per-kernel argument array;
// Local is per-thread and is carved out of device memory like CUDA
// local memory.
const (
	SpaceShared Space = iota
	SpaceGlobal
	SpaceLocal
	SpaceParam
)

func (s Space) String() string {
	switch s {
	case SpaceShared:
		return "shared"
	case SpaceGlobal:
		return "global"
	case SpaceLocal:
		return "local"
	case SpaceParam:
		return "param"
	}
	return fmt.Sprintf("space(%d)", uint8(s))
}

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	OpNop Op = iota

	// Data movement.
	OpMov  // d = a (or imm)
	OpSreg // d = special register selected by Imm (SregKind)
	OpSelp // d = pred ? a : b

	// Integer ALU (signed 64-bit).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpMin
	OpMax
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShl
	OpShr
	OpMad // d = a*b + c

	// Float ALU (float64 in registers).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFMin
	OpFMax
	OpFSqrt
	OpFExp
	OpFLog
	OpFSin
	OpFCos
	OpFAbs
	OpItoF // d = float(a)
	OpFtoI // d = int(a), truncating

	// Predicates and control flow.
	OpSetp  // preds[PD] = cmp(a, b)
	OpFSetp // float compare
	OpBra   // branch to Target; predicated branches diverge, Reconv set
	OpExit  // thread termination

	// Memory.
	OpLd   // d = mem[a + Imm]
	OpSt   // mem[a + Imm] = b
	OpAtom // d = atomic(mem[a + Imm], b, c)

	// Synchronization.
	OpBar     // block-wide barrier
	OpMembar  // memory fence: increments the warp's fence ID
	OpAcqMark // critical-section begin marker; lock address in a
	OpRelMark // critical-section end marker; clears the thread's lockset

	opMax
)

var opNames = [...]string{
	OpNop: "nop", OpMov: "mov", OpSreg: "sreg", OpSelp: "selp",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpMin: "min", OpMax: "max", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpNot: "not", OpShl: "shl", OpShr: "shr", OpMad: "mad",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFMin: "fmin", OpFMax: "fmax", OpFSqrt: "fsqrt", OpFExp: "fexp",
	OpFLog: "flog", OpFSin: "fsin", OpFCos: "fcos", OpFAbs: "fabs",
	OpItoF: "itof", OpFtoI: "ftoi",
	OpSetp: "setp", OpFSetp: "fsetp", OpBra: "bra", OpExit: "exit",
	OpLd: "ld", OpSt: "st", OpAtom: "atom",
	OpBar: "bar", OpMembar: "membar",
	OpAcqMark: "acqmark", OpRelMark: "relmark",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// SregKind selects a special register for OpSreg.
type SregKind uint8

// Special registers readable by kernels.
const (
	SregTid    SregKind = iota // thread index within block (1-D)
	SregNtid                   // block dimension (threads per block)
	SregCtaid                  // block index within grid (1-D)
	SregNctaid                 // grid dimension (number of blocks)
	SregLane                   // lane index within warp
	SregWarp                   // warp index within block
	SregGtid                   // global thread id: ctaid*ntid + tid
)

// CmpOp is a comparison operator for SETP/FSETP.
type CmpOp uint8

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (c CmpOp) String() string {
	switch c {
	case CmpEQ:
		return "eq"
	case CmpNE:
		return "ne"
	case CmpLT:
		return "lt"
	case CmpLE:
		return "le"
	case CmpGT:
		return "gt"
	case CmpGE:
		return "ge"
	}
	return "cmp?"
}

// AtomOp selects the operation performed by OpAtom. All atomics return
// the previous value of the memory location into Dst.
type AtomOp uint8

// Atomic operations, mirroring the CUDA atomics the paper relies on.
const (
	AtomAdd AtomOp = iota
	AtomInc        // d = old; mem = (old >= b) ? 0 : old+1   (CUDA atomicInc)
	AtomExch
	AtomCAS // d = old; if old == b { mem = c }
	AtomMin
	AtomMax
)

func (a AtomOp) String() string {
	switch a {
	case AtomAdd:
		return "add"
	case AtomInc:
		return "inc"
	case AtomExch:
		return "exch"
	case AtomCAS:
		return "cas"
	case AtomMin:
		return "min"
	case AtomMax:
		return "max"
	}
	return "atom?"
}

// Instr is one decoded instruction. The zero value is a NOP.
type Instr struct {
	Op   Op
	Dst  Reg
	SrcA Reg
	SrcB Reg
	SrcC Reg

	Imm    int64 // immediate operand / LD-ST byte offset / SregKind
	UseImm bool  // SrcB (or SrcA for Mov) replaced by Imm

	PD Pred // destination predicate for SETP/FSETP

	Pred    Pred // guard predicate (NoPred if unpredicated)
	PredNeg bool // guard on !pred

	Space Space // LD/ST/ATOM
	Size  uint8 // access size in bytes: 1, 2, 4 or 8
	Float bool  // LD/ST converts between float32 (Size 4) in memory and float64 in regs

	Cmp CmpOp  // SETP/FSETP
	AOp AtomOp // ATOM
	Tgt int    // branch target PC
	Rcv int    // reconvergence PC for divergent branches

	Line string // optional debug annotation from the builder
}

// IsMem reports whether the instruction accesses memory.
func (i *Instr) IsMem() bool {
	return i.Op == OpLd || i.Op == OpSt || i.Op == OpAtom
}

// String renders a compact disassembly of the instruction.
func (i *Instr) String() string {
	guard := ""
	if i.Pred != NoPred {
		n := ""
		if i.PredNeg {
			n = "!"
		}
		guard = fmt.Sprintf("@%sp%d ", n, i.Pred)
	}
	switch i.Op {
	case OpBra:
		return fmt.Sprintf("%sbra %d (rcv %d)", guard, i.Tgt, i.Rcv)
	case OpSetp, OpFSetp:
		if i.UseImm {
			return fmt.Sprintf("%s%s.%s p%d, r%d, %d", guard, i.Op, i.Cmp, i.PD, i.SrcA, i.Imm)
		}
		return fmt.Sprintf("%s%s.%s p%d, r%d, r%d", guard, i.Op, i.Cmp, i.PD, i.SrcA, i.SrcB)
	case OpLd:
		return fmt.Sprintf("%sld.%s.b%d r%d, [r%d+%d]", guard, i.Space, i.Size*8, i.Dst, i.SrcA, i.Imm)
	case OpSt:
		return fmt.Sprintf("%sst.%s.b%d [r%d+%d], r%d", guard, i.Space, i.Size*8, i.SrcA, i.Imm, i.SrcB)
	case OpAtom:
		return fmt.Sprintf("%satom.%s.%s r%d, [r%d+%d], r%d, r%d", guard, i.Space, i.AOp, i.Dst, i.SrcA, i.Imm, i.SrcB, i.SrcC)
	case OpSreg:
		return fmt.Sprintf("%ssreg r%d, %d", guard, i.Dst, i.Imm)
	default:
		if i.UseImm {
			return fmt.Sprintf("%s%s r%d, r%d, %d", guard, i.Op, i.Dst, i.SrcA, i.Imm)
		}
		return fmt.Sprintf("%s%s r%d, r%d, r%d", guard, i.Op, i.Dst, i.SrcA, i.SrcB)
	}
}

// Program is an assembled kernel body.
type Program struct {
	Name   string
	Code   []Instr
	Labels map[string]int // label name -> PC, for diagnostics
}

// Disassemble renders the whole program, one instruction per line.
func (p *Program) Disassemble() string {
	out := ""
	rev := map[int]string{}
	for l, pc := range p.Labels {
		if prev, ok := rev[pc]; !ok || l < prev {
			rev[pc] = l
		}
	}
	for pc := range p.Code {
		if l, ok := rev[pc]; ok {
			out += l + ":\n"
		}
		out += fmt.Sprintf("  %4d  %s\n", pc, p.Code[pc].String())
	}
	return out
}

// Validate checks structural invariants of the program: branch targets
// in range, reconvergence points set for predicated branches, register
// and predicate indices in range, and memory sizes valid. Failures are
// reported as *ValidateError values carrying the program name, the
// offending pc, and a machine-matchable kind (see validate.go).
func (p *Program) Validate() error {
	n := len(p.Code)
	if n == 0 {
		return p.verr(-1, ErrEmptyProgram, "program has no instructions")
	}
	for pc := range p.Code {
		in := &p.Code[pc]
		if in.Op >= opMax {
			return p.verr(pc, ErrBadOpcode, fmt.Sprintf("bad opcode %d", in.Op))
		}
		if in.Pred != NoPred && in.Pred >= NumPreds {
			return p.verr(pc, ErrPredicateRange, fmt.Sprintf("guard predicate p%d out of range", in.Pred))
		}
		if in.Dst >= NumRegs || in.SrcA >= NumRegs || in.SrcB >= NumRegs || in.SrcC >= NumRegs {
			return p.verr(pc, ErrRegisterRange, "register out of range")
		}
		switch in.Op {
		case OpBra:
			if in.Tgt < 0 || in.Tgt >= n {
				return p.verr(pc, ErrBranchTarget, fmt.Sprintf("branch target %d out of range", in.Tgt))
			}
			if in.Pred != NoPred && (in.Rcv < 0 || in.Rcv > n) {
				return p.verr(pc, ErrReconvergence, fmt.Sprintf("predicated branch reconvergence point %d outside program", in.Rcv))
			}
		case OpSetp, OpFSetp:
			if in.PD >= NumPreds {
				return p.verr(pc, ErrPredicateRange, fmt.Sprintf("predicate p%d out of range", in.PD))
			}
		case OpLd, OpSt, OpAtom:
			switch in.Size {
			case 1, 2, 4, 8:
			default:
				return p.verr(pc, ErrMemSize, fmt.Sprintf("bad access size %d", in.Size))
			}
			if in.Float && in.Size != 4 && in.Size != 8 {
				return p.verr(pc, ErrFloatSize, fmt.Sprintf("float access of %d bytes (want 4 or 8)", in.Size))
			}
		}
	}
	return nil
}
