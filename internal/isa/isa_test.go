package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderLabelsResolve(t *testing.T) {
	b := NewBuilder("t")
	b.Movi(0, 1)
	b.Label("loop")
	b.Addi(0, 0, 1)
	b.Setpi(0, CmpLT, 0, 10)
	b.BraP(0, "loop", "end")
	b.Label("end")
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The branch (pc 3) targets pc 1 and reconverges at pc 4.
	br := p.Code[3]
	if br.Op != OpBra || br.Tgt != 1 || br.Rcv != 4 {
		t.Fatalf("branch = %+v, want tgt 1 rcv 4", br)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Nopish()
	if _, err := b.Label("x").Exit().Build(); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

// Nopish emits a harmless instruction (test helper via exported API).
func (b *Builder) Nopish() *Builder { return b.Movi(0, 0) }

func TestBuilderUnclosedIf(t *testing.T) {
	b := NewBuilder("t")
	b.Setpi(0, CmpEQ, 0, 0)
	b.If(0)
	if _, err := b.Build(); err == nil {
		t.Fatal("unclosed If accepted")
	}
}

func TestBuilderEndIfWithoutIf(t *testing.T) {
	b := NewBuilder("t")
	b.EndIf()
	if _, err := b.Build(); err == nil {
		t.Fatal("stray EndIf accepted")
	}
}

func TestBuilderUnclosedWhile(t *testing.T) {
	b := NewBuilder("t")
	b.Setpi(0, CmpEQ, 0, 0)
	b.While(0)
	if _, err := b.Build(); err == nil {
		t.Fatal("unclosed While accepted")
	}
}

func TestBuilderAppendsExit(t *testing.T) {
	b := NewBuilder("t")
	b.Movi(0, 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[len(p.Code)-1].Op != OpExit {
		t.Fatal("builder did not append a terminating Exit")
	}
}

func TestIfEmitsGuardedBranch(t *testing.T) {
	b := NewBuilder("t")
	b.Setpi(2, CmpLT, 1, 5)
	b.If(2)
	b.Movi(3, 1)
	b.EndIf()
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	br := p.Code[1]
	if br.Op != OpBra || br.Pred != 2 || !br.PredNeg {
		t.Fatalf("If branch = %+v, want @!p2 bra", br)
	}
	if br.Tgt != 3 || br.Rcv != 3 {
		t.Fatalf("If branch targets %d/%d, want 3/3", br.Tgt, br.Rcv)
	}
}

func TestPredicateZeroGuardSurvives(t *testing.T) {
	// Guarding with p0 must not be confused with "unpredicated".
	b := NewBuilder("t")
	b.Setpi(0, CmpEQ, 1, 0)
	b.P(0).Movi(2, 7)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Pred != 0 || p.Code[1].PredNeg {
		t.Fatalf("guard lost: %+v", p.Code[1])
	}
	if p.Code[0].Pred != NoPred {
		t.Fatalf("unguarded instruction got a guard: %+v", p.Code[0])
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		code []Instr
	}{
		{"empty", nil},
		{"bad-target", []Instr{{Op: OpBra, Tgt: 99, Pred: NoPred}}},
		{"bad-size", []Instr{{Op: OpLd, Size: 3, Pred: NoPred}}},
		{"bad-reg", []Instr{{Op: OpAdd, Dst: 200, Pred: NoPred}}},
		{"bad-pred", []Instr{{Op: OpSetp, PD: 99, Pred: NoPred}}},
		{"bad-guard", []Instr{{Op: OpMov, Pred: 99}}},
	}
	for _, tc := range cases {
		p := &Program{Name: tc.name, Code: tc.code}
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", tc.name)
		}
	}
}

func TestMovFRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		b := NewBuilder("t")
		b.MovF(5, v)
		p, err := b.Build()
		if err != nil {
			return false
		}
		return math.Float64frombits(uint64(p.Code[0].Imm)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisassembleMentionsEverything(t *testing.T) {
	b := NewBuilder("t")
	b.Sreg(1, SregTid)
	b.Ld(2, SpaceGlobal, 1, 8, 4)
	b.St(SpaceShared, 1, 0, 2, 4)
	b.Atom(3, AtomAdd, SpaceGlobal, 1, 0, 2, 0)
	b.Bar()
	b.Membar()
	b.Label("end")
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dis := p.Disassemble()
	for _, want := range []string{"sreg", "ld.global", "st.shared", "atom.global.add", "bar", "membar", "exit", "end:"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestOpAndEnumStrings(t *testing.T) {
	if OpFSqrt.String() != "fsqrt" || OpAcqMark.String() != "acqmark" {
		t.Error("op names wrong")
	}
	if SpaceShared.String() != "shared" || SpaceParam.String() != "param" {
		t.Error("space names wrong")
	}
	if CmpGE.String() != "ge" || AtomCAS.String() != "cas" {
		t.Error("enum names wrong")
	}
	if Op(200).String() == "" || Space(9).String() == "" {
		t.Error("out-of-range enums must still render")
	}
}

func TestIsMem(t *testing.T) {
	mem := []Op{OpLd, OpSt, OpAtom}
	for _, op := range mem {
		if in := (&Instr{Op: op}); !in.IsMem() {
			t.Errorf("%s not recognized as memory op", op)
		}
	}
	if in := (&Instr{Op: OpAdd}); in.IsMem() {
		t.Error("add recognized as memory op")
	}
}

func TestNestedStructuredFlow(t *testing.T) {
	// Nested If inside While must balance and validate.
	b := NewBuilder("t")
	b.Movi(1, 0)
	b.Setpi(0, CmpLT, 1, 4)
	b.While(0)
	b.Setpi(1, CmpEQ, 1, 2)
	b.If(1)
	b.Movi(2, 42)
	b.EndIf()
	b.Addi(1, 1, 1)
	b.Setpi(0, CmpLT, 1, 4)
	b.EndWhile()
	b.Exit()
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid program")
		}
	}()
	b := NewBuilder("t")
	b.Jmp("missing")
	b.MustBuild()
}

// Property: every structured program the builder produces validates,
// regardless of the random mix of If/While nesting (within the
// builder's own balance rules).
func TestPropertyStructuredProgramsValidate(t *testing.T) {
	f := func(script []uint8) bool {
		b := NewBuilder("prop")
		b.Sreg(1, SregTid)
		depth := 0
		var kinds []byte // 'i' or 'w'
		for _, op := range script {
			switch op % 8 {
			case 0, 1, 2:
				b.Add(Reg(2+op%4), Reg(2+(op>>2)%4), Reg(2+(op>>4)%4))
			case 3:
				b.Setpi(Pred(op%4), CmpLT, Reg(2+op%4), int64(op))
			case 4:
				if depth < 3 {
					b.Setpi(Pred(op%4), CmpGT, 1, int64(op%16))
					b.If(Pred(op % 4))
					kinds = append(kinds, 'i')
					depth++
				}
			case 5:
				if depth < 3 {
					b.Setpi(Pred(op%4), CmpLT, Reg(2), 1)
					b.While(Pred(op % 4))
					kinds = append(kinds, 'w')
					depth++
				}
			case 6, 7:
				if depth > 0 {
					if kinds[len(kinds)-1] == 'i' {
						b.EndIf()
					} else {
						b.Setpi(0, CmpLT, Reg(2), 0) // loop condition turns false
						b.EndWhile()
					}
					kinds = kinds[:len(kinds)-1]
					depth--
				}
			}
		}
		for depth > 0 {
			if kinds[len(kinds)-1] == 'i' {
				b.EndIf()
			} else {
				b.Setpi(0, CmpLT, Reg(2), 0)
				b.EndWhile()
			}
			kinds = kinds[:len(kinds)-1]
			depth--
		}
		b.Exit()
		p, err := b.Build()
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
