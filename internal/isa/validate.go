package isa

import "fmt"

// ValidateErrKind classifies a structural defect found by
// Program.Validate. Tools that consume validation failures (the
// disassembler, the static analyzer, the kernel cache) switch on the
// kind instead of parsing error strings.
type ValidateErrKind uint8

// Validation failure kinds.
const (
	ErrEmptyProgram ValidateErrKind = iota
	ErrBadOpcode
	ErrRegisterRange
	ErrPredicateRange
	ErrBranchTarget
	ErrReconvergence
	ErrMemSize
	ErrFloatSize
)

func (k ValidateErrKind) String() string {
	switch k {
	case ErrEmptyProgram:
		return "empty-program"
	case ErrBadOpcode:
		return "bad-opcode"
	case ErrRegisterRange:
		return "register-range"
	case ErrPredicateRange:
		return "predicate-range"
	case ErrBranchTarget:
		return "branch-target"
	case ErrReconvergence:
		return "reconvergence"
	case ErrMemSize:
		return "mem-size"
	case ErrFloatSize:
		return "float-size"
	}
	return "validate?"
}

// ValidateError is the typed error returned by Program.Validate.
// PC is -1 for whole-program defects (an empty program).
type ValidateError struct {
	Program string
	PC      int
	Kind    ValidateErrKind
	Detail  string
}

func (e *ValidateError) Error() string {
	if e.PC < 0 {
		return fmt.Sprintf("isa: %q: %s: %s", e.Program, e.Kind, e.Detail)
	}
	return fmt.Sprintf("isa: %q pc %d: %s: %s", e.Program, e.PC, e.Kind, e.Detail)
}

func (p *Program) verr(pc int, kind ValidateErrKind, detail string) error {
	return &ValidateError{Program: p.Name, PC: pc, Kind: kind, Detail: detail}
}
