// Package tlb models the virtual-memory support HAccRG proposes in
// Section IV-B. GPUs with virtual memory translate every global access
// through a TLB; HAccRG additionally needs translations for the shadow
// pages its RDUs touch, which are allocated on demand alongside the
// application's global pages. The paper proposes two mechanisms:
//
//  1. Appended tag bit: the regular GPU TLB's tags grow by one bit
//     distinguishing shadow from application translations. Both
//     classes compete for the same entries, so the effective capacity
//     seen by the application shrinks.
//  2. Separate shadow TLB: a second, smaller TLB dedicated to shadow
//     pages, probed in parallel with the regular one. Faster, and the
//     shadow TLB can be small because only global-space pages have
//     shadow pages.
//
// This package implements both as evaluable models over address
// traces, so the trade-off the paper argues qualitatively can be
// measured (see the harness's TLB study and the ablation benchmarks).
package tlb

import "fmt"

// Mechanism selects one of the paper's two shadow-translation designs.
type Mechanism uint8

// The two proposed mechanisms.
const (
	// AppendedBit: one shared TLB; shadow entries carry a tag bit.
	AppendedBit Mechanism = iota
	// SeparateTLB: a dedicated (smaller) shadow TLB beside the regular one.
	SeparateTLB
)

func (m Mechanism) String() string {
	switch m {
	case AppendedBit:
		return "appended-bit"
	case SeparateTLB:
		return "separate-shadow-tlb"
	}
	return "mechanism?"
}

// Config describes the translation hardware.
type Config struct {
	PageBits int // log2 page size (12 = 4KB)

	Entries int // regular TLB entries
	Assoc   int // regular TLB associativity

	// ShadowEntries/ShadowAssoc size the dedicated shadow TLB
	// (SeparateTLB mechanism only).
	ShadowEntries int
	ShadowAssoc   int

	HitLatency  int64 // translation hit cycles
	MissLatency int64 // page-walk cycles
}

// DefaultConfig models a GPU TLB of the Sandy-Bridge/Fusion era the
// paper cites: 64-entry 4-way regular TLB, 16-entry 4-way shadow TLB,
// 4KB pages.
var DefaultConfig = Config{
	PageBits:      12,
	Entries:       64,
	Assoc:         4,
	ShadowEntries: 16,
	ShadowAssoc:   4,
	HitLatency:    2,
	MissLatency:   200,
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PageBits < 6 || c.PageBits > 30 {
		return fmt.Errorf("tlb: page bits %d out of range", c.PageBits)
	}
	for _, g := range []struct {
		name           string
		entries, assoc int
	}{{"regular", c.Entries, c.Assoc}, {"shadow", c.ShadowEntries, c.ShadowAssoc}} {
		if g.entries <= 0 || g.assoc <= 0 || g.entries%g.assoc != 0 {
			return fmt.Errorf("tlb: %s TLB geometry %d/%d invalid", g.name, g.entries, g.assoc)
		}
		sets := g.entries / g.assoc
		if sets&(sets-1) != 0 {
			return fmt.Errorf("tlb: %s TLB sets %d not a power of two", g.name, sets)
		}
	}
	return nil
}

// shadowClassBit marks shadow-page translations in the appended-bit
// design; it lands in the tag portion of the lookup value.
const shadowClassBit = uint64(1) << 62

type entry struct {
	tag   uint64
	valid bool
	lru   uint64
}

// cache is a small set-associative translation cache.
type cache struct {
	sets  [][]entry
	mask  uint64
	stamp uint64
}

func newCache(entries, assoc int) *cache {
	sets := entries / assoc
	c := &cache{sets: make([][]entry, sets), mask: uint64(sets - 1)}
	for i := range c.sets {
		c.sets[i] = make([]entry, assoc)
	}
	return c
}

// access looks up a tag value (page number, possibly with the shadow
// bit folded in) and fills on miss. Returns whether it hit.
func (c *cache) access(tagVal uint64) bool {
	c.stamp++
	set := c.sets[tagVal&c.mask]
	tag := tagVal >> uint(len64(c.mask))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			return true
		}
	}
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	victim.valid = true
	victim.tag = tag
	victim.lru = c.stamp
	return false
}

func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// Stats aggregates translation outcomes.
type Stats struct {
	RegularHits   int64
	RegularMisses int64
	ShadowHits    int64
	ShadowMisses  int64
	Cycles        int64 // total translation cycles
}

// MissRate returns the overall translation miss rate.
func (s Stats) MissRate() float64 {
	total := s.RegularHits + s.RegularMisses + s.ShadowHits + s.ShadowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RegularMisses+s.ShadowMisses) / float64(total)
}

// Model is one translation design under evaluation.
type Model struct {
	cfg  Config
	mech Mechanism

	regular *cache
	shadow  *cache // nil for AppendedBit

	Stats Stats
}

// New builds a model of the given mechanism.
func New(cfg Config, mech Mechanism) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg, mech: mech, regular: newCache(cfg.Entries, cfg.Assoc)}
	if mech == SeparateTLB {
		m.shadow = newCache(cfg.ShadowEntries, cfg.ShadowAssoc)
	}
	return m, nil
}

// MustNew is New panicking on error.
func MustNew(cfg Config, mech Mechanism) *Model {
	m, err := New(cfg, mech)
	if err != nil {
		panic(err)
	}
	return m
}

// Mechanism returns the modelled design.
func (m *Model) Mechanism() Mechanism { return m.mech }

// Translate processes one access: the application address plus its
// shadow address (both need translations when detection is on; pass
// shadow = 0 and hasShadow = false for detection-off accesses).
func (m *Model) Translate(addr uint64, shadowAddr uint64, hasShadow bool) {
	page := addr >> uint(m.cfg.PageBits)
	switch m.mech {
	case AppendedBit:
		// The class bit extends the TAG (set indexing is unchanged, as
		// in the paper's "appends 1-bit to the tag fields" design).
		if m.regular.access(page) {
			m.Stats.RegularHits++
			m.Stats.Cycles += m.cfg.HitLatency
		} else {
			m.Stats.RegularMisses++
			m.Stats.Cycles += m.cfg.MissLatency
		}
		if hasShadow {
			// Tag bit 1: shadow translation, competing for the same
			// entries (and, since both classes are probed with
			// distinct tags, consuming lookup bandwidth serially).
			sp := shadowAddr >> uint(m.cfg.PageBits)
			if m.regular.access(sp | shadowClassBit) {
				m.Stats.ShadowHits++
				m.Stats.Cycles += m.cfg.HitLatency
			} else {
				m.Stats.ShadowMisses++
				m.Stats.Cycles += m.cfg.MissLatency
			}
		}
	case SeparateTLB:
		// Both structures probe in parallel: the access pays the worse
		// of the two outcomes rather than their sum.
		var lat int64
		if m.regular.access(page) {
			m.Stats.RegularHits++
			lat = m.cfg.HitLatency
		} else {
			m.Stats.RegularMisses++
			lat = m.cfg.MissLatency
		}
		if hasShadow {
			sp := shadowAddr >> uint(m.cfg.PageBits)
			var slat int64
			if m.shadow.access(sp) {
				m.Stats.ShadowHits++
				slat = m.cfg.HitLatency
			} else {
				m.Stats.ShadowMisses++
				slat = m.cfg.MissLatency
			}
			if slat > lat {
				lat = slat
			}
		}
		m.Stats.Cycles += lat
	}
}

// Compare evaluates both mechanisms over the same address trace.
// shadowOf maps an application address to its shadow address.
func Compare(cfg Config, trace []uint64, shadowOf func(uint64) uint64, detectOn bool) (appended, separate Stats, err error) {
	a, err := New(cfg, AppendedBit)
	if err != nil {
		return
	}
	s, err := New(cfg, SeparateTLB)
	if err != nil {
		return
	}
	for _, addr := range trace {
		var sh uint64
		if detectOn {
			sh = shadowOf(addr)
		}
		a.Translate(addr, sh, detectOn)
		s.Translate(addr, sh, detectOn)
	}
	return a.Stats, s.Stats, nil
}
