package tlb

import (
	"math/rand"
	"testing"
)

func shadowOf(addr uint64) uint64 { return 1<<32 + addr*2 }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{PageBits: 2, Entries: 64, Assoc: 4, ShadowEntries: 16, ShadowAssoc: 4},
		{PageBits: 12, Entries: 0, Assoc: 4, ShadowEntries: 16, ShadowAssoc: 4},
		{PageBits: 12, Entries: 64, Assoc: 3, ShadowEntries: 16, ShadowAssoc: 4},
		{PageBits: 12, Entries: 96, Assoc: 4, ShadowEntries: 16, ShadowAssoc: 4}, // 24 sets
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestHitAfterFill(t *testing.T) {
	m := MustNew(DefaultConfig, SeparateTLB)
	m.Translate(0x1000, shadowOf(0x1000), true)
	m.Translate(0x1008, shadowOf(0x1008), true) // same pages
	if m.Stats.RegularHits != 1 || m.Stats.RegularMisses != 1 {
		t.Errorf("regular stats %+v", m.Stats)
	}
	if m.Stats.ShadowHits != 1 || m.Stats.ShadowMisses != 1 {
		t.Errorf("shadow stats %+v", m.Stats)
	}
}

func TestAppendedBitKeepsClassesDistinct(t *testing.T) {
	// A shadow translation of page P must not satisfy an application
	// lookup of page P: the tag bit distinguishes them.
	m := MustNew(DefaultConfig, AppendedBit)
	m.Translate(0x5000, 0x5000, true) // shadow address == app address (adversarial)
	m.Translate(0x5000, 0x5000, true)
	if m.Stats.RegularMisses != 1 || m.Stats.ShadowMisses != 1 {
		t.Errorf("first access must miss both classes: %+v", m.Stats)
	}
	if m.Stats.RegularHits != 1 || m.Stats.ShadowHits != 1 {
		t.Errorf("second access must hit both classes: %+v", m.Stats)
	}
}

// TestCapacityPressure reproduces the paper's argument: with detection
// on, the appended-bit design halves the effective capacity for
// application translations, while the separate shadow TLB preserves it.
func TestCapacityPressure(t *testing.T) {
	cfg := DefaultConfig
	// Working set: exactly the regular TLB's capacity in pages.
	pages := cfg.Entries
	var trace []uint64
	for round := 0; round < 50; round++ {
		for p := 0; p < pages; p++ {
			trace = append(trace, uint64(p)<<uint(cfg.PageBits))
		}
	}
	app, sep, err := Compare(cfg, trace, shadowOf, true)
	if err != nil {
		t.Fatal(err)
	}
	if app.RegularMisses <= sep.RegularMisses {
		t.Fatalf("appended-bit should suffer capacity pressure: %d vs %d regular misses",
			app.RegularMisses, sep.RegularMisses)
	}
	if sep.RegularMisses > int64(pages)*2 {
		t.Fatalf("separate-TLB regular class should fit: %d misses", sep.RegularMisses)
	}
	if sep.Cycles >= app.Cycles {
		t.Fatalf("separate shadow TLB should be faster: %d vs %d cycles", sep.Cycles, app.Cycles)
	}
}

// TestParallelLookupLatency: the separate design pays max(hit,walk),
// the appended design pays the sum of both lookups.
func TestParallelLookupLatency(t *testing.T) {
	cfg := DefaultConfig
	a := MustNew(cfg, AppendedBit)
	s := MustNew(cfg, SeparateTLB)
	a.Translate(0x9000, shadowOf(0x9000), true)
	s.Translate(0x9000, shadowOf(0x9000), true)
	if a.Stats.Cycles != 2*cfg.MissLatency {
		t.Errorf("appended cold access = %d cycles, want %d", a.Stats.Cycles, 2*cfg.MissLatency)
	}
	if s.Stats.Cycles != cfg.MissLatency {
		t.Errorf("separate cold access = %d cycles, want %d", s.Stats.Cycles, cfg.MissLatency)
	}
}

func TestDetectionOffIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var trace []uint64
	for i := 0; i < 5000; i++ {
		trace = append(trace, uint64(rng.Intn(1<<20)))
	}
	app, sep, err := Compare(DefaultConfig, trace, shadowOf, false)
	if err != nil {
		t.Fatal(err)
	}
	if app.RegularMisses != sep.RegularMisses || app.Cycles != sep.Cycles {
		t.Fatalf("with detection off the designs must coincide: %+v vs %+v", app, sep)
	}
	if app.ShadowHits+app.ShadowMisses != 0 {
		t.Fatal("shadow translations counted with detection off")
	}
}

func TestMechanismString(t *testing.T) {
	if AppendedBit.String() != "appended-bit" || SeparateTLB.String() != "separate-shadow-tlb" {
		t.Fatal("mechanism names wrong")
	}
}

func BenchmarkTranslateSeparate(b *testing.B) {
	m := MustNew(DefaultConfig, SeparateTLB)
	for i := 0; i < b.N; i++ {
		a := uint64(i%4096) << 12
		m.Translate(a, shadowOf(a), true)
	}
}
