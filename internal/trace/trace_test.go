package trace

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"haccrg/internal/core"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// racyKernel: two warps collide on shared memory with no barrier.
func racyKernel() *gpu.Kernel {
	b := isa.NewBuilder("traced")
	b.Sreg(1, isa.SregTid)
	b.Remi(2, 1, 32)
	b.Muli(2, 2, 4)
	b.St(isa.SpaceShared, 2, 0, 1, 4)
	b.Bar()
	b.Ld(3, isa.SpaceShared, 2, 0, 4)
	b.Exit()
	return &gpu.Kernel{Name: "traced", Prog: b.MustBuild(), GridDim: 1, BlockDim: 64, SharedBytes: 256}
}

func runTraced(t *testing.T, rec *Recorder) {
	t.Helper()
	dev, err := gpu.NewDevice(gpu.TestConfig(), 1<<14, rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Launch(racyKernel()); err != nil {
		t.Fatal(err)
	}
}

func newHaccrg(t *testing.T) *core.Detector {
	t.Helper()
	opt := core.DefaultOptions()
	opt.Global = false
	opt.DetectStaleL1 = false
	opt.SharedGranularity = 4
	return core.MustNew(opt)
}

func TestRecorderCapturesLifecycle(t *testing.T) {
	rec := New(nil)
	runTraced(t, rec)
	sum := rec.Summary()
	if sum[KindKernelStart] != 1 || sum[KindKernelEnd] != 1 {
		t.Fatalf("kernel lifecycle events missing: %v", sum)
	}
	if sum[KindBarrier] != 1 {
		t.Fatalf("barrier events = %d, want 1", sum[KindBarrier])
	}
	if sum[KindRace] != 0 {
		t.Fatalf("trace-only recorder produced race events: %v", sum)
	}
}

func TestRecorderWrapsDetector(t *testing.T) {
	det := newHaccrg(t)
	rec := New(det)
	runTraced(t, rec)
	// The kernel's first phase writes warp-interleaved; the WAW from
	// the two warps' stores appears before the barrier.
	if len(det.Races()) == 0 {
		t.Fatal("wrapped detector lost its events")
	}
	if rec.Summary()[KindRace] != len(det.Races()) {
		t.Fatalf("race events %d, detector races %d", rec.Summary()[KindRace], len(det.Races()))
	}
	if !strings.Contains(rec.Timeline(), "!!") {
		t.Fatal("timeline does not highlight races")
	}
}

func TestRecorderSampling(t *testing.T) {
	rec := New(nil)
	rec.SampleEvery = 2
	runTraced(t, rec)
	if rec.Summary()[KindMemSample] == 0 {
		t.Fatal("sampling enabled but no samples recorded")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	rec := New(newHaccrg(t))
	runTraced(t, rec)
	var sb strings.Builder
	if err := rec.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	n := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not valid JSON: %v", n, err)
		}
		n++
	}
	if n != len(rec.Events()) {
		t.Fatalf("JSONL emitted %d lines for %d events", n, len(rec.Events()))
	}
}

func TestEventsOrderedBySeq(t *testing.T) {
	rec := New(newHaccrg(t))
	runTraced(t, rec)
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("event sequence numbers not increasing")
		}
	}
	if len(rec.KindsSeen()) < 3 {
		t.Fatalf("expected several event kinds, got %v", rec.KindsSeen())
	}
}
