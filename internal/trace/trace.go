// Package trace records simulation events — kernel launches, barrier
// episodes, fences, race reports — into a structured log that can be
// rendered as a text timeline or exported as JSON lines for external
// tooling. It attaches to the engine through the same gpu.Detector
// hook the race detectors use and can wrap another detector, so a run
// can be traced and checked simultaneously.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"haccrg/internal/core"
	"haccrg/internal/gpu"
)

// Kind labels a recorded event.
type Kind string

// Event kinds.
const (
	KindKernelStart Kind = "kernel-start"
	KindKernelEnd   Kind = "kernel-end"
	KindBarrier     Kind = "barrier"
	KindMemSample   Kind = "mem-sample"
	KindRace        Kind = "race"
)

// Event is one recorded occurrence.
type Event struct {
	Seq    int    `json:"seq"`
	Kind   Kind   `json:"kind"`
	Cycle  int64  `json:"cycle,omitempty"`
	Kernel string `json:"kernel,omitempty"`
	SM     int    `json:"sm,omitempty"`
	Block  int    `json:"block,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Recorder implements gpu.Detector, logging events and optionally
// forwarding everything to an inner detector (e.g. HAccRG).
type Recorder struct {
	inner gpu.Detector

	// SampleEvery records one mem-sample event per N warp memory
	// instructions (0 disables sampling).
	SampleEvery int

	events  []Event
	seq     int
	counter int
	kernel  string

	raceBase int // inner race count at last check
}

// New builds a Recorder wrapping inner (nil for trace-only runs).
func New(inner gpu.Detector) *Recorder {
	if inner == nil {
		inner = gpu.NopDetector{}
	}
	return &Recorder{inner: inner, SampleEvery: 0}
}

// Inner returns the wrapped detector.
func (r *Recorder) Inner() gpu.Detector { return r.inner }

// Health implements gpu.HealthReporter by forwarding to the inner
// detector, so wrapping a detector in a Recorder does not hide its
// degradation report from LaunchStats.
func (r *Recorder) Health() *gpu.DetectorHealth {
	if hr, ok := r.inner.(gpu.HealthReporter); ok {
		return hr.Health()
	}
	return nil
}

// Events returns the recorded log in order.
func (r *Recorder) Events() []Event { return r.events }

func (r *Recorder) add(e Event) {
	r.seq++
	e.Seq = r.seq
	r.events = append(r.events, e)
}

// Name implements gpu.Detector.
func (r *Recorder) Name() string { return "trace(" + r.inner.Name() + ")" }

// KernelStart implements gpu.Detector.
func (r *Recorder) KernelStart(env gpu.Env, kernel string) {
	r.kernel = kernel
	r.add(Event{Kind: KindKernelStart, Kernel: kernel})
	r.inner.KernelStart(env, kernel)
}

// KernelEnd implements gpu.Detector.
func (r *Recorder) KernelEnd() {
	r.add(Event{Kind: KindKernelEnd, Kernel: r.kernel})
	r.inner.KernelEnd()
}

// BlockStart implements gpu.Detector.
func (r *Recorder) BlockStart(sm, base, size int) {
	r.inner.BlockStart(sm, base, size)
}

// WarpMem implements gpu.Detector.
func (r *Recorder) WarpMem(ev *gpu.WarpMemEvent) int64 {
	r.counter++
	if r.SampleEvery > 0 && r.counter%r.SampleEvery == 0 {
		r.add(Event{
			Kind: KindMemSample, Cycle: ev.Cycle, Kernel: r.kernel,
			SM: ev.SM, Block: ev.Block,
			Detail: fmt.Sprintf("%s %s pc=%d lanes=%d", ev.Space, rw(ev), ev.PC, len(ev.Lanes)),
		})
	}
	stall := r.inner.WarpMem(ev)
	r.recordNewRaces(ev.Cycle)
	return stall
}

func rw(ev *gpu.WarpMemEvent) string {
	switch {
	case ev.Atomic:
		return "atomic"
	case ev.Write:
		return "write"
	default:
		return "read"
	}
}

// Barrier implements gpu.Detector.
func (r *Recorder) Barrier(sm, block, base, size int, cycle int64) int64 {
	r.add(Event{Kind: KindBarrier, Cycle: cycle, Kernel: r.kernel, SM: sm, Block: block})
	return r.inner.Barrier(sm, block, base, size, cycle)
}

// recordNewRaces mirrors the inner detector chain's new race records
// into the event log. core.RacesOf unwraps recorder chains, so races
// surface whether the Recorder wraps a hardware detector directly or
// through another recorder (e.g. a journal.Recorder), and for the
// software baselines too.
func (r *Recorder) recordNewRaces(cycle int64) {
	races := core.RacesOf(r.inner)
	for ; r.raceBase < len(races); r.raceBase++ {
		rc := races[r.raceBase]
		r.add(Event{
			Kind: KindRace, Cycle: cycle, Kernel: rc.Kernel,
			Block:  rc.SecondBlock,
			Detail: rc.String(),
		})
	}
}

// WriteJSONL streams the log as JSON lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.events {
		if err := enc.Encode(&r.events[i]); err != nil {
			return err
		}
	}
	return nil
}

// Timeline renders a compact text view: one line per event, indented
// by kernel, with race events highlighted.
func (r *Recorder) Timeline() string {
	var sb strings.Builder
	for i := range r.events {
		e := &r.events[i]
		marker := "  "
		if e.Kind == KindRace {
			marker = "!!"
		}
		fmt.Fprintf(&sb, "%s %6d %-13s %s", marker, e.Cycle, e.Kind, e.Kernel)
		if e.Detail != "" {
			fmt.Fprintf(&sb, "  %s", e.Detail)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Summary tallies events by kind.
func (r *Recorder) Summary() map[Kind]int {
	m := map[Kind]int{}
	for i := range r.events {
		m[r.events[i].Kind]++
	}
	return m
}

// KindsSeen returns the event kinds present, sorted, for reports.
func (r *Recorder) KindsSeen() []Kind {
	m := r.Summary()
	out := make([]Kind, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
