// Package version carries the build stamp shared by every haccrg
// binary. The variables are plain strings so release builds can set
// them through the linker:
//
//	go build -ldflags "-X haccrg/internal/version.Version=v1.2.3 \
//	                   -X haccrg/internal/version.Commit=$(git rev-parse --short HEAD)"
//
// Unstamped builds report "dev".
package version

import (
	"fmt"
	"runtime"
)

// Version is the semantic release tag, stamped via ldflags ("dev" for
// local builds).
var Version = "dev"

// Commit is the VCS revision the binary was built from (empty for
// local builds).
var Commit = ""

// String renders the one-line version banner the CLIs print for
// -version: program name, version, optional commit, and the Go
// toolchain, e.g. "haccrg-server v1.2.3 (abc1234) go1.24.0 linux/amd64".
func String(prog string) string {
	s := prog + " " + Version
	if Commit != "" {
		s += " (" + Commit + ")"
	}
	return fmt.Sprintf("%s %s %s/%s", s, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
