package gpu

import "fmt"

// DetectorHealth reports how much of a run's detection coverage
// survived resource pressure and injected hardware faults. A detector
// that ran fault-free returns all-zero counters with Degraded false;
// any dropped check, applied corruption, quarantine action or
// signature saturation flips Degraded, signalling that race findings
// may have silently diverged from the fault-free run.
type DetectorHealth struct {
	// DroppedChecks counts lane checks the RDU check queues rejected
	// under burst load (each is a potential missed race).
	DroppedChecks int64
	// InjectedFlips counts shadow-entry bit flips actually applied
	// (ECC-corrected flips appear in CorrectedFlips instead).
	InjectedFlips int64
	// CorrectedFlips counts flips the modeled ECC scrub caught.
	CorrectedFlips int64
	// StuckReads counts shadow reads served from stuck-at cells
	// without ECC (silent corruption).
	StuckReads int64
	// QuarantinedGranules counts distinct granules the degradation
	// policy removed from tracking after the scrub flagged them.
	QuarantinedGranules int64
	// QuarantineSkips counts lane checks skipped because their granule
	// was quarantined.
	QuarantineSkips int64
	// ReinitGranules counts conservative entry re-initializations of
	// detected-corrupt granules (the alternative degradation policy).
	ReinitGranules int64
	// SaturatedSigs counts lockset checks whose signature was
	// saturated by the injected Bloom fill.
	SaturatedSigs int64
	// LatencySpikes counts shadow fetches that suffered an injected
	// latency spike.
	LatencySpikes int64

	// SentinelChecks counts kernels the online divergence sentinel
	// cross-checked against a serial reference engine (0 when the
	// sentinel is off or the engine runs serial anyway).
	SentinelChecks int64
	// SentinelMismatches counts sentinel windows whose sharded-engine
	// findings diverged from the serial reference — each one is a
	// caught would-be-silent divergence.
	SentinelMismatches int64
	// StalledDrains counts quiescent-point drains that overran the
	// configured stall budget before a shard worker acknowledged.
	StalledDrains int64
	// EngineFallbacks counts permanent degradations to the serial
	// engine triggered by a sentinel mismatch or a stalled drain.
	EngineFallbacks int64

	// TotalChecks is the lane-check denominator for the exposure
	// estimate (shared + global RDU checks).
	TotalChecks int64
	// BloomFillPct is the average observed lockset-signature fill
	// ratio at lockset checks, in percent (0 when no lockset checks
	// ran). High fill means the filter is saturating and lockset
	// races are being missed.
	BloomFillPct float64

	// Degraded is true when any fault perturbed detection: findings
	// are not guaranteed to match a fault-free run.
	Degraded bool
}

// EstFalseNegPct estimates the fraction of lane checks whose race
// verdict may have been lost — dropped at the queue, skipped by
// quarantine, or computed from silently corrupted shadow state — in
// percent of all checks.
func (h *DetectorHealth) EstFalseNegPct() float64 {
	if h == nil || h.TotalChecks == 0 {
		return 0
	}
	lost := h.DroppedChecks + h.QuarantineSkips + h.StuckReads + h.InjectedFlips
	if lost > h.TotalChecks {
		lost = h.TotalChecks
	}
	return 100 * float64(lost) / float64(h.TotalChecks)
}

// Add accumulates another launch's health (multi-kernel workloads).
func (h *DetectorHealth) Add(o *DetectorHealth) {
	if o == nil {
		return
	}
	// Weight the fill average by lockset activity proxy (SaturatedSigs
	// is not a denominator; use simple max — fills are per-run
	// averages of the same detector, so the max is the conservative
	// "worst kernel" summary).
	if o.BloomFillPct > h.BloomFillPct {
		h.BloomFillPct = o.BloomFillPct
	}
	h.DroppedChecks += o.DroppedChecks
	h.InjectedFlips += o.InjectedFlips
	h.CorrectedFlips += o.CorrectedFlips
	h.StuckReads += o.StuckReads
	h.QuarantinedGranules += o.QuarantinedGranules
	h.QuarantineSkips += o.QuarantineSkips
	h.ReinitGranules += o.ReinitGranules
	h.SaturatedSigs += o.SaturatedSigs
	h.LatencySpikes += o.LatencySpikes
	h.SentinelChecks += o.SentinelChecks
	h.SentinelMismatches += o.SentinelMismatches
	h.StalledDrains += o.StalledDrains
	h.EngineFallbacks += o.EngineFallbacks
	h.TotalChecks += o.TotalChecks
	h.Degraded = h.Degraded || o.Degraded
}

// String renders a one-line summary for CLI output.
func (h *DetectorHealth) String() string {
	if h == nil {
		return "health: n/a"
	}
	if !h.Degraded {
		return fmt.Sprintf("health: ok (%d checks, bloom fill %.1f%%)", h.TotalChecks, h.BloomFillPct)
	}
	s := fmt.Sprintf(
		"health: DEGRADED dropped=%d flips=%d(corrected %d) stuck=%d quarantined=%d(skips %d) reinit=%d satsigs=%d spikes=%d est-false-neg=%.2f%%",
		h.DroppedChecks, h.InjectedFlips, h.CorrectedFlips, h.StuckReads,
		h.QuarantinedGranules, h.QuarantineSkips, h.ReinitGranules,
		h.SaturatedSigs, h.LatencySpikes, h.EstFalseNegPct())
	if h.SentinelMismatches|h.StalledDrains|h.EngineFallbacks != 0 {
		s += fmt.Sprintf(" sentinel-mismatch=%d stalled-drains=%d engine-fallbacks=%d",
			h.SentinelMismatches, h.StalledDrains, h.EngineFallbacks)
	}
	return s
}

// HealthReporter is the optional detector extension surfacing a
// DetectorHealth report. Device.Launch attaches it to LaunchStats when
// the attached detector (or a wrapper forwarding to one) implements it.
type HealthReporter interface {
	Health() *DetectorHealth
}
