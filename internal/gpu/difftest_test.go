package gpu

// Differential testing of the SIMT execution engine: random structured
// programs (ALU ops, predicates, nested If regions, counted While
// loops, private memory traffic) run on the lockstep warp engine with
// its divergence stack, and independently on a scalar per-thread
// reference interpreter. For structured control flow both must produce
// identical architectural state for every thread.

import (
	"fmt"
	"math/rand"
	"testing"

	"haccrg/internal/isa"
)

// progGen builds random structured programs.
type progGen struct {
	rng *rand.Rand
	b   *isa.Builder

	freeRegs  []isa.Reg  // registers the generator may clobber
	freePreds []isa.Pred // predicates the generator may clobber
	depth     int
	budget    int // remaining instructions
}

const (
	dtThreads  = 64
	dtSlotSize = 64 // private global bytes per thread
	dtOutRegs  = 8  // registers dumped at the end
)

func newProgGen(seed int64) *progGen {
	g := &progGen{
		rng: rand.New(rand.NewSource(seed)),
		b:   isa.NewBuilder(fmt.Sprintf("diff-%d", seed)),
	}
	for r := isa.Reg(4); r < 16; r++ {
		g.freeRegs = append(g.freeRegs, r)
	}
	for p := isa.Pred(0); p < 6; p++ {
		g.freePreds = append(g.freePreds, p)
	}
	return g
}

func (g *progGen) reg() isa.Reg   { return g.freeRegs[g.rng.Intn(len(g.freeRegs))] }
func (g *progGen) pred() isa.Pred { return g.freePreds[g.rng.Intn(len(g.freePreds))] }

// reserve temporarily removes a register and predicate from the
// clobber pool (loop counters must stay stable inside bodies).
func (g *progGen) reserve() (isa.Reg, isa.Pred, func()) {
	ri := g.rng.Intn(len(g.freeRegs))
	r := g.freeRegs[ri]
	g.freeRegs = append(g.freeRegs[:ri], g.freeRegs[ri+1:]...)
	pi := g.rng.Intn(len(g.freePreds))
	p := g.freePreds[pi]
	g.freePreds = append(g.freePreds[:pi], g.freePreds[pi+1:]...)
	return r, p, func() {
		g.freeRegs = append(g.freeRegs, r)
		g.freePreds = append(g.freePreds, p)
	}
}

// gen emits one random construct.
func (g *progGen) gen() {
	if g.budget <= 0 {
		return
	}
	g.budget--
	b := g.b
	switch pick := g.rng.Intn(20); {
	case pick < 8: // plain ALU
		ops := []func(d, a, s isa.Reg) *isa.Builder{
			b.Add, b.Sub, b.Mul, b.And, b.Or, b.Xor, b.Min, b.Max,
		}
		ops[g.rng.Intn(len(ops))](g.reg(), g.reg(), g.reg())
	case pick < 10: // immediates
		switch g.rng.Intn(4) {
		case 0:
			b.Movi(g.reg(), int64(g.rng.Intn(1000)-500))
		case 1:
			b.Addi(g.reg(), g.reg(), int64(g.rng.Intn(100)))
		case 2:
			b.Shli(g.reg(), g.reg(), int64(g.rng.Intn(8)))
		case 3:
			b.Andi(g.reg(), g.reg(), int64(g.rng.Intn(1<<16)))
		}
	case pick < 11: // division (defined-by-us semantics for zero)
		if g.rng.Intn(2) == 0 {
			b.Div(g.reg(), g.reg(), g.reg())
		} else {
			b.Rem(g.reg(), g.reg(), g.reg())
		}
	case pick < 13: // predicates and select
		p := g.pred()
		b.Setp(p, isa.CmpOp(g.rng.Intn(6)), g.reg(), g.reg())
		b.Selp(g.reg(), p, g.reg(), g.reg())
	case pick < 15: // private memory round trip
		addr := g.reg()
		val := g.reg()
		off := int64(g.rng.Intn(dtSlotSize/8)) * 8
		// addr = slotBase + tid*slot + off; slotBase in r2, tid in r1.
		b.Muli(addr, 1, dtSlotSize)
		b.Add(addr, addr, 2)
		b.St(isa.SpaceGlobal, addr, off, val, 8)
		b.Ld(val, isa.SpaceGlobal, addr, off, 8)
	case pick < 18: // divergent If region
		if g.depth >= 2 {
			g.gen()
			return
		}
		p := g.pred()
		b.Setp(p, isa.CmpOp(g.rng.Intn(6)), g.reg(), g.reg())
		if g.rng.Intn(2) == 0 {
			b.If(p)
		} else {
			b.IfNot(p)
		}
		g.depth++
		for n := g.rng.Intn(4) + 1; n > 0; n-- {
			g.gen()
		}
		g.depth--
		b.EndIf()
	default: // counted loop with a divergent early-exit style body
		if g.depth >= 2 {
			g.gen()
			return
		}
		ctr, p, release := g.reserve()
		trips := int64(g.rng.Intn(5) + 1)
		b.Movi(ctr, 0)
		b.Setpi(p, isa.CmpLT, ctr, trips)
		b.While(p)
		g.depth++
		for n := g.rng.Intn(3) + 1; n > 0; n-- {
			g.gen()
		}
		g.depth--
		b.Addi(ctr, ctr, 1)
		b.Setpi(p, isa.CmpLT, ctr, trips)
		b.EndWhile()
		release()
	}
}

// build returns the finished random program: preamble seeds registers
// from the thread id, the body is random, and the epilogue dumps
// dtOutRegs registers to the thread's private output slot.
func (g *progGen) build(outBase uint64) *isa.Program {
	b := g.b
	b.Sreg(1, isa.SregTid)
	b.Ldp(2, 0) // scratch slot base
	b.Ldp(3, 1) // output base
	for r := isa.Reg(4); r < 16; r++ {
		b.Muli(r, 1, int64(r)*2654435761)
		b.Addi(r, r, int64(r)*97)
	}
	g.budget = 40 + g.rng.Intn(40)
	for g.budget > 0 {
		g.gen()
	}
	// Epilogue: out[tid*dtOutRegs + i] = r(4+i).
	b.Muli(20, 1, dtOutRegs*8)
	b.Add(20, 20, 3)
	for i := 0; i < dtOutRegs; i++ {
		b.St(isa.SpaceGlobal, 20, int64(i*8), isa.Reg(4+i), 8)
	}
	b.Exit()
	_ = outBase
	return b.MustBuild()
}

// scalarRef executes the program for one thread with purely scalar
// semantics: branches taken iff the guard holds for this thread.
func scalarRef(t *testing.T, prog *isa.Program, tid int, params []uint64, mem []byte) [dtOutRegs]uint64 {
	var ln lane
	pc := 0
	steps := 0
	load := func(addr uint64, size int) uint64 {
		var v uint64
		for i := 0; i < size; i++ {
			v |= uint64(mem[addr+uint64(i)]) << (8 * i)
		}
		return v
	}
	store := func(addr uint64, size int, v uint64) {
		for i := 0; i < size; i++ {
			mem[addr+uint64(i)] = byte(v >> (8 * i))
		}
	}
	for {
		if steps++; steps > 1_000_000 {
			t.Fatalf("scalar reference ran away (tid %d)", tid)
		}
		in := &prog.Code[pc]
		guard := true
		if in.Pred != isa.NoPred {
			guard = ln.preds[in.Pred]
			if in.PredNeg {
				guard = !guard
			}
		}
		switch in.Op {
		case isa.OpExit:
			if guard {
				var out [dtOutRegs]uint64
				copy(out[:], ln.regs[4:4+dtOutRegs])
				return out
			}
			pc++
		case isa.OpBra:
			if guard {
				pc = in.Tgt
			} else {
				pc++
			}
		case isa.OpLd:
			if guard {
				if in.Space == isa.SpaceParam {
					ln.regs[in.Dst] = params[(ln.regs[in.SrcA]+uint64(in.Imm))/8]
				} else {
					ln.regs[in.Dst] = load(ln.regs[in.SrcA]+uint64(in.Imm), int(in.Size))
				}
			}
			pc++
		case isa.OpSt:
			if guard {
				store(ln.regs[in.SrcA]+uint64(in.Imm), int(in.Size), ln.regs[in.SrcB])
			}
			pc++
		default:
			if guard {
				aluLane(in, &ln, func(k isa.SregKind) uint64 {
					switch k {
					case isa.SregTid, isa.SregGtid:
						return uint64(tid)
					case isa.SregNtid:
						return dtThreads
					case isa.SregLane:
						return uint64(tid % 32)
					case isa.SregWarp:
						return uint64(tid / 32)
					}
					return 0
				})
			}
			pc++
		}
	}
}

func TestDifferentialRandomPrograms(t *testing.T) {
	const programs = 60
	for seed := int64(0); seed < programs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g := newProgGen(seed)
			dev, err := NewDevice(TestConfig(), 1<<18, nil)
			if err != nil {
				t.Fatal(err)
			}
			scratch := dev.MustMalloc(dtThreads * dtSlotSize)
			out := dev.MustMalloc(dtThreads * dtOutRegs * 8)
			prog := g.build(out)
			k := &Kernel{
				Name: prog.Name, Prog: prog,
				GridDim: 1, BlockDim: dtThreads,
				Params: []uint64{scratch, out},
			}
			if _, err := dev.Launch(k); err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, prog.Disassemble())
			}
			// Scalar reference over a private copy of the memory image.
			params := []uint64{scratch, out}
			for tid := 0; tid < dtThreads; tid++ {
				mem := make([]byte, 1<<18)
				want := scalarRef(t, prog, tid, params, mem)
				for i := 0; i < dtOutRegs; i++ {
					got, err := dev.Global.Load(out+uint64(tid*dtOutRegs*8+i*8), 8)
					if err != nil {
						t.Fatal(err)
					}
					if got != want[i] {
						t.Fatalf("seed %d tid %d reg r%d: warp engine %#x, scalar ref %#x\n%s",
							seed, tid, 4+i, got, want[i], prog.Disassemble())
					}
				}
			}
		})
	}
}
