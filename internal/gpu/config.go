// Package gpu implements a cycle-level SIMT GPU simulator: streaming
// multiprocessors executing 32-lane warps in lockstep over the
// internal/isa instruction set, with a banked shared memory, per-SM
// non-coherent L1 caches, an interconnect to banked L2 + DRAM memory
// partitions, barriers, memory fences and atomics.
//
// It is the substrate on which HAccRG's race-detection units are
// evaluated, standing in for GPGPU-Sim 3.0.2 in the paper. Timing uses
// resource reservation (see internal/mem); functional execution happens
// at issue, which keeps results deterministic under the round-robin
// warp scheduler while still exposing the cross-warp access
// interleavings that race detection observes.
package gpu

import (
	"fmt"

	"haccrg/internal/bloom"
	"haccrg/internal/mem"
	"haccrg/internal/noc"
)

// Config describes the simulated GPU. DefaultConfig mirrors the
// paper's Table I (NVIDIA Quadro FX5800 with Fermi-style caches).
type Config struct {
	NumSMs          int // streaming multiprocessors
	SIMDWidth       int // SPs per SM; a warp issues over WarpSize/SIMDWidth cycles
	WarpSize        int
	MaxThreadsPerSM int
	MaxBlocksPerSM  int
	RegistersPerSM  int

	Shared mem.SharedConfig
	L1     mem.CacheConfig

	NumPartitions int
	Partition     mem.PartitionConfig
	NoC           noc.Config

	L1Latency     int64 // L1 hit latency
	SharedLatency int64 // shared-memory access latency (no conflicts)
	SFULatency    int64 // special-function (exp/log/sin/cos/sqrt/fdiv) issue cost
	FenceLatency  int64 // fixed pipeline cost of a memory fence

	LocalBytesPerThread int // CUDA local memory carved from device memory

	Bloom bloom.Config // atomic-ID signature layout

	// SegmentBytes is the coalescing segment / cache line size.
	SegmentBytes int

	// AlwaysBumpSyncID disables the paper's optimization of
	// incrementing a block's sync ID only when it accessed global
	// memory since its last barrier. Used by the gating ablation.
	AlwaysBumpSyncID bool

	// Scheduler selects the warp scheduling policy.
	Scheduler SchedPolicy
}

// SchedPolicy selects how an SM picks the next warp to issue.
type SchedPolicy uint8

// Warp scheduling policies.
const (
	// SchedRoundRobin cycles through ready warps (the paper's Table I).
	SchedRoundRobin SchedPolicy = iota
	// SchedGTO (greedy-then-oldest) keeps issuing from the current
	// warp until it stalls, then falls back to the oldest ready warp —
	// a common alternative that improves cache locality.
	SchedGTO
)

func (s SchedPolicy) String() string {
	switch s {
	case SchedRoundRobin:
		return "round-robin"
	case SchedGTO:
		return "gto"
	}
	return "sched?"
}

// DefaultConfig returns the paper's Table I machine.
func DefaultConfig() Config {
	return Config{
		NumSMs:          30,
		SIMDWidth:       8,
		WarpSize:        32,
		MaxThreadsPerSM: 1024,
		MaxBlocksPerSM:  8,
		RegistersPerSM:  16384,
		Shared:          mem.DefaultSharedConfig,
		L1: mem.CacheConfig{
			Name: "L1D", SizeBytes: 48 << 10, Assoc: 6, LineBytes: 128,
		},
		NumPartitions: 8,
		Partition: mem.PartitionConfig{
			L2: mem.CacheConfig{
				Name: "L2", SizeBytes: 64 << 10, Assoc: 8, LineBytes: 128, WriteBack: true,
			},
			DRAM:          mem.DefaultDRAMConfig,
			L2Latency:     40,
			AtomicLatency: 8,
		},
		NoC:                 noc.DefaultConfig,
		L1Latency:           20,
		SharedLatency:       6,
		SFULatency:          16,
		FenceLatency:        8,
		LocalBytesPerThread: 0,
		Bloom:               bloom.DefaultConfig,
		SegmentBytes:        128,
	}
}

// FermiConfig returns an NVIDIA Fermi-class machine, the configuration
// Section VI-C2 sizes HAccRG's storage against: 16 SMs, 48KB shared
// memory and 1536 threads (48 warps) per SM, 8 concurrent blocks.
func FermiConfig() Config {
	c := DefaultConfig()
	c.NumSMs = 16
	c.SIMDWidth = 32
	c.MaxThreadsPerSM = 1536
	c.MaxBlocksPerSM = 8
	c.RegistersPerSM = 32768
	c.Shared.SizeBytes = 48 << 10
	c.Shared.Banks = 32
	c.NumPartitions = 6
	return c
}

// TestConfig returns a scaled-down machine for fast unit tests:
// fewer SMs and partitions, same warp geometry.
func TestConfig() Config {
	c := DefaultConfig()
	c.NumSMs = 4
	c.NumPartitions = 2
	return c
}

// Validate checks configuration invariants.
func (c *Config) Validate() error {
	if c.NumSMs <= 0 || c.NumPartitions <= 0 {
		return fmt.Errorf("gpu: need at least one SM and one partition")
	}
	if c.WarpSize <= 0 || c.WarpSize > 64 {
		return fmt.Errorf("gpu: warp size %d unsupported (1..64)", c.WarpSize)
	}
	if c.SIMDWidth <= 0 || c.WarpSize%c.SIMDWidth != 0 {
		return fmt.Errorf("gpu: SIMD width %d must divide warp size %d", c.SIMDWidth, c.WarpSize)
	}
	if c.MaxThreadsPerSM < c.WarpSize {
		return fmt.Errorf("gpu: MaxThreadsPerSM %d below warp size", c.MaxThreadsPerSM)
	}
	if c.SegmentBytes <= 0 || c.SegmentBytes&(c.SegmentBytes-1) != 0 {
		return fmt.Errorf("gpu: segment size %d not a power of two", c.SegmentBytes)
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.Partition.L2.Validate(); err != nil {
		return err
	}
	if err := c.Bloom.Validate(); err != nil {
		return err
	}
	if c.Shared.SizeBytes <= 0 || c.Shared.Banks <= 0 || c.Shared.BankWidth <= 0 {
		return fmt.Errorf("gpu: invalid shared memory config %+v", c.Shared)
	}
	return nil
}

// IssueInterval returns cycles an SM needs to issue one warp
// instruction through its SIMD pipeline.
func (c *Config) IssueInterval() int64 { return int64(c.WarpSize / c.SIMDWidth) }
