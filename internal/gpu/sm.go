package gpu

import (
	"fmt"
	"math"

	"haccrg/internal/isa"
	"haccrg/internal/mem"
)

// block is a resident thread-block (CTA) on an SM.
type block struct {
	id  int // global block index (bid)
	dim int // threads
	sm  *sm

	warps []*warp

	sharedBase int // offset of this block's slice in the SM shared tile
	sharedSize int

	syncID         uint32 // barrier logical clock (paper Section IV-B)
	globalSinceBar bool   // gate sync-ID increments, per the paper's optimization

	arrived  int // warps waiting at the current barrier
	liveWarp int // warps not yet done
}

// sm is one streaming multiprocessor.
type sm struct {
	id  int
	dev *Device

	shared *mem.Shared
	l1     *mem.Cache

	blocks    []*block // resident blocks (slot-indexed; nil when free)
	warps     []*warp  // flattened resident warps for scheduling
	rr        int      // round-robin pointer
	issueFree int64    // next cycle the issue pipeline is free

	// mshr merges concurrent misses to the same line: a second warp
	// missing on a line already in flight waits for the outstanding
	// fill instead of issuing a duplicate transaction.
	mshr map[uint64]int64

	pendingErr error
}

func newSM(id int, dev *Device) *sm {
	return &sm{
		id:     id,
		dev:    dev,
		shared: mem.NewShared(dev.cfg.Shared),
		l1:     mem.MustNewCache(dev.cfg.L1),
		blocks: make([]*block, dev.cfg.MaxBlocksPerSM),
		mshr:   make(map[uint64]int64),
	}
}

// freeSlot returns a residency slot index for a new block, or -1.
func (s *sm) freeSlot(limit int) int {
	resident := 0
	for _, b := range s.blocks {
		if b != nil {
			resident++
		}
	}
	if resident >= limit {
		return -1
	}
	for i := 0; i < limit && i < len(s.blocks); i++ {
		if s.blocks[i] == nil {
			return i
		}
	}
	return -1
}

// place installs a block into a residency slot and creates its warps.
func (s *sm) place(slot int, bid int, k *Kernel, startCycle int64) {
	ws := s.dev.cfg.WarpSize
	nw := (k.BlockDim + ws - 1) / ws
	b := &block{
		id:         bid,
		dim:        k.BlockDim,
		sm:         s,
		sharedBase: slot * k.SharedBytes,
		sharedSize: k.SharedBytes,
		liveWarp:   nw,
	}
	if k.SharedBytes > 0 {
		s.shared.Clear(b.sharedBase, k.SharedBytes)
	}
	s.dev.detector.BlockStart(s.id, b.sharedBase, k.SharedBytes)
	for wi := 0; wi < nw; wi++ {
		w := newWarp(b, wi, ws)
		w.readyAt = startCycle
		b.warps = append(b.warps, w)
		s.warps = append(s.warps, w)
	}
	s.blocks[slot] = b
}

// retire removes a finished block and returns its slot.
func (s *sm) retire(b *block) int {
	slot := -1
	for i, rb := range s.blocks {
		if rb == b {
			s.blocks[i] = nil
			slot = i
		}
	}
	live := s.warps[:0]
	for _, w := range s.warps {
		if w.block != b {
			live = append(live, w)
		}
	}
	s.warps = live
	if s.rr >= len(s.warps) {
		s.rr = 0
	}
	return slot
}

// earliestReady returns the soonest cycle at which this SM could issue,
// or math.MaxInt64 if no warp is runnable.
func (s *sm) earliestReady() int64 {
	earliest := int64(math.MaxInt64)
	for _, w := range s.warps {
		if w.state != warpReady {
			continue
		}
		t := w.readyAt
		if t < earliest {
			earliest = t
		}
	}
	if earliest == math.MaxInt64 {
		return earliest
	}
	if s.issueFree > earliest {
		earliest = s.issueFree
	}
	return earliest
}

// issue attempts to issue one warp instruction at the given cycle.
// Returns true if an instruction was issued.
func (s *sm) issue(cycle int64, k *Kernel, st *LaunchStats) bool {
	if s.issueFree > cycle || len(s.warps) == 0 {
		return false
	}
	w := s.pick(cycle)
	if w == nil {
		return false
	}
	s.exec(w, cycle, k, st)
	s.issueFree = cycle + s.dev.cfg.IssueInterval()
	return true
}

// pick selects the next warp under the configured scheduling policy.
func (s *sm) pick(cycle int64) *warp {
	n := len(s.warps)
	switch s.dev.cfg.Scheduler {
	case SchedGTO:
		// Greedy: stay on the last-issued warp while it remains ready.
		if s.rr < n {
			if w := s.warps[s.rr]; w.state == warpReady && w.readyAt <= cycle {
				return w
			}
		}
		// Then oldest: scan in residency order (oldest blocks first).
		for i := 0; i < n; i++ {
			w := s.warps[i]
			if w.state == warpReady && w.readyAt <= cycle {
				s.rr = i
				return w
			}
		}
		return nil
	default: // round robin
		for i := 0; i < n; i++ {
			idx := (s.rr + i) % n
			w := s.warps[idx]
			if w.state != warpReady || w.readyAt > cycle {
				continue
			}
			s.rr = (idx + 1) % n
			return w
		}
		return nil
	}
}

// exec executes one instruction of warp w at the given cycle: full
// functional effect plus timing classification.
func (s *sm) exec(w *warp, cycle int64, k *Kernel, st *LaunchStats) {
	w.reconverge()
	if w.state != warpReady { // reconvergence cannot block, but stay safe
		return
	}
	if w.pc >= len(k.Prog.Code) {
		s.fail(fmt.Errorf("gpu: kernel %q: warp ran off the end (pc %d)", k.Name, w.pc))
		w.state = warpDone
		s.blockWarpDone(w)
		return
	}
	in := &k.Prog.Code[w.pc]
	execMask := w.guardMask(in)
	st.WarpInstrs++
	st.ThreadInstrs += int64(popcount64(execMask))
	issueDone := cycle + s.dev.cfg.IssueInterval()

	switch in.Op {
	case isa.OpBra:
		if w.branch(in, execMask) {
			st.Divergences++
		}
		w.readyAt = issueDone
		return

	case isa.OpExit:
		w.exit(execMask)
		if w.state == warpDone {
			s.blockWarpDone(w)
		} else {
			w.readyAt = issueDone
		}
		return

	case isa.OpBar:
		w.pc++
		s.barrier(w, cycle, st)
		return

	case isa.OpMembar:
		w.fenceID++
		if s.dev.fenceObs != nil {
			// Fence-observing detectors mirror the race register file;
			// the advance must be ordered before any later memory event.
			s.dev.fenceObs.FenceAdvance(w.block.id, w.inBlock, w.fenceID)
		}
		st.Fences++
		done := issueDone + s.dev.cfg.FenceLatency
		if w.storeDone > done {
			done = w.storeDone
		}
		w.readyAt = done
		w.pc++
		return

	case isa.OpAcqMark:
		for l := range w.lanes {
			if execMask&(1<<uint(l)) == 0 {
				continue
			}
			ln := &w.lanes[l]
			ln.sig = s.dev.cfg.Bloom.Add(ln.sig, ln.regs[in.SrcA])
			ln.critDepth++
		}
		w.readyAt = issueDone
		w.pc++
		return

	case isa.OpRelMark:
		for l := range w.lanes {
			if execMask&(1<<uint(l)) == 0 {
				continue
			}
			ln := &w.lanes[l]
			if ln.critDepth > 0 {
				ln.critDepth--
			}
			if ln.critDepth == 0 {
				ln.sig = 0 // whole-signature clear, as in the paper
			}
		}
		w.readyAt = issueDone
		w.pc++
		return

	case isa.OpLd, isa.OpSt, isa.OpAtom:
		s.memInstr(w, in, execMask, cycle, k, st)
		w.pc++
		return
	}

	// Plain ALU / SFU instruction.
	for l := range w.lanes {
		if execMask&(1<<uint(l)) == 0 {
			continue
		}
		li := l
		aluLane(in, &w.lanes[l], func(kind isa.SregKind) uint64 {
			return s.sreg(w, li, kind)
		})
	}
	lat := s.dev.cfg.IssueInterval()
	switch in.Op {
	case isa.OpFDiv, isa.OpFSqrt, isa.OpFExp, isa.OpFLog, isa.OpFSin, isa.OpFCos:
		lat = s.dev.cfg.SFULatency
	}
	w.readyAt = cycle + lat
	w.pc++
}

func (s *sm) sreg(w *warp, laneIdx int, kind isa.SregKind) uint64 {
	switch kind {
	case isa.SregTid:
		return uint64(w.tidOf(laneIdx))
	case isa.SregNtid:
		return uint64(w.block.dim)
	case isa.SregCtaid:
		return uint64(w.block.id)
	case isa.SregNctaid:
		return uint64(s.dev.launch.GridDim)
	case isa.SregLane:
		return uint64(laneIdx)
	case isa.SregWarp:
		return uint64(w.inBlock)
	case isa.SregGtid:
		return uint64(w.block.id*w.block.dim + w.tidOf(laneIdx))
	}
	return 0
}

// blockWarpDone bookkeeps a warp's completion; retires the block when
// all of its warps are done, releasing any warps stuck at a barrier
// (a barrier with exited warps releases when remaining warps arrive —
// kernels in this suite exit only at the end, so this is a safety
// valve, matching CUDA's undefined-but-not-hung behaviour).
func (s *sm) blockWarpDone(w *warp) {
	b := w.block
	b.liveWarp--
	if b.liveWarp == 0 {
		slot := s.retire(b)
		s.dev.blockFinished(s, slot)
		return
	}
	if b.arrived >= b.liveWarp {
		s.releaseBarrier(b, w.readyAt, nil)
	}
}

// barrier handles a warp arriving at a block-wide barrier.
func (s *sm) barrier(w *warp, cycle int64, st *LaunchStats) {
	b := w.block
	w.state = warpAtBarrier
	w.readyAt = cycle + s.dev.cfg.IssueInterval()
	b.arrived++
	if b.arrived >= b.liveWarp {
		st.Barriers++
		release := cycle + s.dev.cfg.IssueInterval()
		// Sync-ID increment, gated on global-memory activity since the
		// last barrier (the paper's optimization keeping sync IDs small).
		if b.globalSinceBar || s.dev.cfg.AlwaysBumpSyncID {
			b.syncID++
			b.globalSinceBar = false
		}
		stall := s.dev.detector.Barrier(s.id, b.id, b.sharedBase, b.sharedSize, cycle)
		st.DetectorStall += stall
		s.releaseBarrier(b, release+stall, st)
	}
}

func (s *sm) releaseBarrier(b *block, at int64, _ *LaunchStats) {
	b.arrived = 0
	for _, w := range b.warps {
		if w.state == warpAtBarrier {
			w.state = warpReady
			if w.readyAt < at {
				w.readyAt = at
			}
		}
	}
}

func (s *sm) fail(err error) {
	if s.pendingErr == nil {
		s.pendingErr = err
	}
}

func popcount64(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}
