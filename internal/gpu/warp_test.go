package gpu

import (
	"testing"

	"haccrg/internal/isa"
)

// mkTestWarp builds a bare warp of n lanes for direct unit tests of
// the divergence machinery.
func mkTestWarp(n int) *warp {
	b := &block{id: 0, dim: n}
	return newWarp(b, 0, n)
}

func TestWarpMasksAtCreation(t *testing.T) {
	w := mkTestWarp(32)
	if w.mask != 0xFFFFFFFF || w.alive != 0xFFFFFFFF {
		t.Fatalf("full warp masks wrong: %x %x", w.mask, w.alive)
	}
	// Tail warp of a 40-thread block: warp 1 has 8 lanes.
	b := &block{id: 0, dim: 40}
	tail := newWarp(b, 1, 32)
	if tail.mask != 0xFF || tail.alive != 0xFF {
		t.Fatalf("tail warp masks wrong: %x %x", tail.mask, tail.alive)
	}
	if tail.tidOf(3) != 35 {
		t.Fatalf("tail warp tid mapping wrong: %d", tail.tidOf(3))
	}
}

func TestBranchUniformTaken(t *testing.T) {
	w := mkTestWarp(32)
	in := &isa.Instr{Op: isa.OpBra, Tgt: 7, Pred: isa.NoPred}
	if w.branch(in, w.mask) {
		t.Fatal("unconditional branch reported divergence")
	}
	if w.pc != 7 || len(w.stack) != 0 {
		t.Fatalf("pc=%d stack=%d", w.pc, len(w.stack))
	}
}

func TestBranchDivergesAndReconverges(t *testing.T) {
	w := mkTestWarp(32)
	w.pc = 2
	in := &isa.Instr{Op: isa.OpBra, Tgt: 10, Rcv: 20, Pred: 0}
	taken := uint64(0x0000FFFF) // lanes 0-15 take
	if !w.branch(in, taken) {
		t.Fatal("divergent branch not detected")
	}
	if w.pc != 10 || w.mask != taken || w.rcv != 20 {
		t.Fatalf("taken context wrong: pc=%d mask=%x rcv=%d", w.pc, w.mask, w.rcv)
	}
	if len(w.stack) != 2 {
		t.Fatalf("stack depth %d, want 2", len(w.stack))
	}
	// Taken path reaches the join.
	w.pc = 20
	w.reconverge()
	if w.pc != 3 || w.mask != 0xFFFF0000 {
		t.Fatalf("fall-through context wrong: pc=%d mask=%x", w.pc, w.mask)
	}
	// Fall-through path reaches the join: full mask restored.
	w.pc = 20
	w.reconverge()
	if w.pc != 20 || w.mask != 0xFFFFFFFF || w.rcv != -1 {
		t.Fatalf("post-join context wrong: pc=%d mask=%x rcv=%d", w.pc, w.mask, w.rcv)
	}
	if len(w.stack) != 0 {
		t.Fatal("stack not drained")
	}
}

func TestBranchAllTakenNoDivergence(t *testing.T) {
	w := mkTestWarp(32)
	in := &isa.Instr{Op: isa.OpBra, Tgt: 5, Rcv: 9, Pred: 0}
	if w.branch(in, w.mask) {
		t.Fatal("all-taken branch diverged")
	}
	if w.pc != 5 {
		t.Fatalf("pc=%d", w.pc)
	}
}

func TestBranchNoneTakenNoDivergence(t *testing.T) {
	w := mkTestWarp(32)
	w.pc = 4
	in := &isa.Instr{Op: isa.OpBra, Tgt: 9, Rcv: 12, Pred: 0}
	if w.branch(in, 0) {
		t.Fatal("none-taken branch diverged")
	}
	if w.pc != 5 {
		t.Fatalf("pc=%d, want fall-through 5", w.pc)
	}
}

func TestExitRetiresLanes(t *testing.T) {
	w := mkTestWarp(32)
	w.exit(0x0000FFFF)
	if w.state == warpDone {
		t.Fatal("warp done with half its lanes alive")
	}
	if w.alive != 0xFFFF0000 || w.mask != 0xFFFF0000 {
		t.Fatalf("masks after partial exit: %x %x", w.alive, w.mask)
	}
	w.exit(0xFFFF0000)
	if w.state != warpDone {
		t.Fatal("warp not done after all lanes exited")
	}
}

func TestExitInsideDivergentRegionPops(t *testing.T) {
	w := mkTestWarp(32)
	w.pc = 2
	in := &isa.Instr{Op: isa.OpBra, Tgt: 10, Rcv: 20, Pred: 0}
	w.branch(in, 0x0000FFFF)
	// The taken path (lanes 0-15) exits inside the region: control
	// must pop to the fall-through path, not end the warp.
	w.exit(w.mask)
	if w.state == warpDone {
		t.Fatal("warp ended while the fall-through path was pending")
	}
	if w.mask != 0xFFFF0000 || w.pc != 3 {
		t.Fatalf("post-exit context: pc=%d mask=%x", w.pc, w.mask)
	}
	if w.alive != 0xFFFF0000 {
		t.Fatalf("alive=%x", w.alive)
	}
}

func TestGuardMaskEvaluation(t *testing.T) {
	w := mkTestWarp(32)
	for l := 0; l < 32; l++ {
		w.lanes[l].preds[3] = l%2 == 0
	}
	in := &isa.Instr{Op: isa.OpMov, Pred: 3}
	if m := w.guardMask(in); m != 0x55555555 {
		t.Fatalf("guard mask %x, want alternating", m)
	}
	in.PredNeg = true
	if m := w.guardMask(in); m != 0xAAAAAAAA {
		t.Fatalf("negated guard mask %x", m)
	}
	in.Pred = isa.NoPred
	if m := w.guardMask(in); m != w.mask {
		t.Fatalf("unpredicated guard mask %x", m)
	}
}

func TestNestedDivergenceStack(t *testing.T) {
	w := mkTestWarp(32)
	// Outer divergence at pc 0, reconv 30.
	w.pc = 0
	w.branch(&isa.Instr{Op: isa.OpBra, Tgt: 5, Rcv: 30, Pred: 0}, 0x000000FF)
	// Inner divergence inside taken path at pc 5, reconv 15.
	w.pc = 5
	w.branch(&isa.Instr{Op: isa.OpBra, Tgt: 8, Rcv: 15, Pred: 0}, 0x0000000F)
	if w.mask != 0x0F || w.rcv != 15 {
		t.Fatalf("inner taken: mask=%x rcv=%d", w.mask, w.rcv)
	}
	// Inner taken joins at 15: inner fall-through (lanes 4-7) resumes.
	w.pc = 15
	w.reconverge()
	if w.mask != 0xF0 || w.pc != 6 {
		t.Fatalf("inner fall-through: mask=%x pc=%d", w.mask, w.pc)
	}
	// It joins at 15: outer taken path's full mask (0xFF) resumes at 15.
	w.pc = 15
	w.reconverge()
	if w.mask != 0xFF || w.rcv != 30 {
		t.Fatalf("outer taken resumed wrong: mask=%x rcv=%d", w.mask, w.rcv)
	}
	// Outer taken joins at 30: outer fall-through (lanes 8-31).
	w.pc = 30
	w.reconverge()
	if w.mask != 0xFFFFFF00 || w.pc != 1 {
		t.Fatalf("outer fall-through: mask=%x pc=%d", w.mask, w.pc)
	}
	// Finally everything reconverges at 30.
	w.pc = 30
	w.reconverge()
	if w.mask != 0xFFFFFFFF || len(w.stack) != 0 {
		t.Fatalf("final state: mask=%x stack=%d", w.mask, len(w.stack))
	}
}

func TestFullMaskHelper(t *testing.T) {
	if fullMask(0) != 0 || fullMask(1) != 1 || fullMask(32) != 0xFFFFFFFF || fullMask(64) != ^uint64(0) {
		t.Fatal("fullMask wrong")
	}
}
