package gpu

import (
	"fmt"
	"sort"
	"strings"
)

// HangReason classifies why a launch was aborted.
type HangReason string

// Abort reasons.
const (
	// HangDeadlock: no warp was runnable but blocks remained (e.g. a
	// barrier some warps can never reach).
	HangDeadlock HangReason = "deadlock"
	// HangCycleBudget: the simulated-cycle budget (LaunchLimits
	// MaxCycles) was exhausted.
	HangCycleBudget HangReason = "cycle-budget"
	// HangCanceled: the launch context was canceled or its wall-clock
	// deadline expired (the watchdog).
	HangCanceled HangReason = "canceled"
)

// LaunchLimits bounds a kernel launch. The zero value imposes none.
type LaunchLimits struct {
	// MaxCycles aborts the launch once the simulated clock would pass
	// this budget (0 = unlimited).
	MaxCycles int64
}

// WarpDiag describes one warp's scheduler state at abort time.
type WarpDiag struct {
	Warp    int    // warp index within its block
	State   string // "ready", "at-barrier", "done"
	PC      int    // next fetch PC (for parked warps: where they wait)
	ReadyAt int64  // next cycle the warp could issue
}

// BlockDiag describes one live block's barrier-wait state at abort
// time: which warps are parked at which PC, and how far the block's
// current barrier episode got.
type BlockDiag struct {
	Block     int // global block index
	SM        int
	ArrivedAt int // warps waiting at the current barrier
	LiveWarps int // warps not yet exited
	Warps     []WarpDiag
}

// HangError is the structured abort report of a launch that could not
// run to completion: a deadlock, an exhausted cycle budget, or a
// canceled context. It carries per-SM/per-block barrier-wait
// diagnostics; the partial LaunchStats (cycles executed, blocks
// retired) are returned alongside the error by Launch itself.
type HangError struct {
	Kernel     string
	Reason     HangReason
	Cycle      int64 // simulated cycle at abort
	BlocksLeft int   // blocks that had not retired
	Cause      error // the context error for HangCanceled, else nil

	Blocks []BlockDiag // live blocks, ordered by block index
}

// Error implements error with a one-line summary.
func (e *HangError) Error() string {
	var parked, ready int
	for _, b := range e.Blocks {
		for _, w := range b.Warps {
			switch w.State {
			case "at-barrier":
				parked++
			case "ready":
				ready++
			}
		}
	}
	msg := fmt.Sprintf("gpu: kernel %q aborted (%s) at cycle %d: %d blocks unfinished, %d warps at barriers, %d runnable",
		e.Kernel, e.Reason, e.Cycle, e.BlocksLeft, parked, ready)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap exposes the context error for errors.Is(err, context.…).
func (e *HangError) Unwrap() error { return e.Cause }

// Diagnose renders the per-block barrier-wait table: one line per
// resident warp with its state, PC and readiness cycle.
func (e *HangError) Diagnose() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", e.Error())
	for _, b := range e.Blocks {
		fmt.Fprintf(&sb, "  block %d on SM %d: %d/%d warps at barrier\n",
			b.Block, b.SM, b.ArrivedAt, b.LiveWarps)
		for _, w := range b.Warps {
			fmt.Fprintf(&sb, "    warp %2d  %-10s pc=%-4d readyAt=%d\n",
				w.Warp, w.State, w.PC, w.ReadyAt)
		}
	}
	return sb.String()
}

// hangError snapshots the device's live-block state into a HangError.
func (d *Device) hangError(k *Kernel, reason HangReason, cause error) *HangError {
	he := &HangError{
		Kernel:     k.Name,
		Reason:     reason,
		Cycle:      d.now,
		BlocksLeft: d.blocksLeft,
		Cause:      cause,
	}
	ids := make([]int, 0, len(d.liveBlocks))
	for bid := range d.liveBlocks {
		ids = append(ids, bid)
	}
	sort.Ints(ids)
	for _, bid := range ids {
		b := d.liveBlocks[bid]
		bd := BlockDiag{
			Block:     bid,
			SM:        b.sm.id,
			ArrivedAt: b.arrived,
			LiveWarps: b.liveWarp,
		}
		for wi, w := range b.warps {
			state := "ready"
			switch w.state {
			case warpAtBarrier:
				state = "at-barrier"
			case warpDone:
				state = "done"
			}
			bd.Warps = append(bd.Warps, WarpDiag{
				Warp: wi, State: state, PC: w.pc, ReadyAt: w.readyAt,
			})
		}
		he.Blocks = append(he.Blocks, bd)
	}
	return he
}
