package gpu

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"haccrg/internal/isa"
)

// spinKernel loops forever: rI stays 0, rN stays 1, so the loop
// predicate never falsifies. Every warp is permanently runnable, which
// exercises the cycle-budget and cancellation guard rails (but not the
// deadlock path — a spinning warp keeps the scheduler live).
func spinKernel(grid, blockDim int) *Kernel {
	b := isa.NewBuilder("spin")
	b.Movi(rI, 0)
	b.Movi(rN, 1)
	b.Setp(0, isa.CmpLT, rI, rN)
	b.While(0)
	b.Addi(rVal, rVal, 1)
	b.Setp(0, isa.CmpLT, rI, rN)
	b.EndWhile()
	b.Exit()
	return &Kernel{Name: "spin", Prog: b.MustBuild(), GridDim: grid, BlockDim: blockDim}
}

// barrierHangKernel: the first warp (tid < warp size) arrives at a
// barrier the second warp never reaches, because the second warp spins
// forever. The block can never finish, yet a warp is always runnable,
// so only the cycle budget can stop it — and the diagnostics must show
// the first warp parked at-barrier.
func barrierHangKernel() *Kernel {
	b := isa.NewBuilder("barhang")
	b.Sreg(rTid, isa.SregTid)
	b.Setpi(0, isa.CmpLT, rTid, 32)
	b.If(0)
	b.Bar() // warp 0 parks here forever
	b.EndIf()
	b.Setpi(1, isa.CmpGE, rTid, 32)
	b.While(1)
	b.Addi(rVal, rVal, 1)
	b.Setpi(1, isa.CmpGE, rTid, 32)
	b.EndWhile()
	b.Exit()
	return &Kernel{Name: "barhang", Prog: b.MustBuild(), GridDim: 1, BlockDim: 64}
}

func TestCycleBudgetAbort(t *testing.T) {
	d := testDevice(t, 1<<16)
	st, err := d.LaunchContext(context.Background(), spinKernel(2, 64), LaunchLimits{MaxCycles: 5000})
	if err == nil {
		t.Fatal("spin kernel finished under a 5000-cycle budget")
	}
	var hang *HangError
	if !errors.As(err, &hang) {
		t.Fatalf("error %T is not *HangError: %v", err, err)
	}
	if hang.Reason != HangCycleBudget {
		t.Errorf("reason = %q, want %q", hang.Reason, HangCycleBudget)
	}
	if hang.Kernel != "spin" {
		t.Errorf("kernel = %q, want spin", hang.Kernel)
	}
	if hang.BlocksLeft != 2 {
		t.Errorf("blocks left = %d, want 2", hang.BlocksLeft)
	}
	if st == nil {
		t.Fatal("no partial stats alongside the hang error")
	}
	if st.Cycles <= 0 || st.Cycles > 5000 {
		t.Errorf("partial cycles = %d, want in (0, 5000]", st.Cycles)
	}
	if st.BlocksRetired != 0 {
		t.Errorf("blocks retired = %d, want 0", st.BlocksRetired)
	}
	if st.WarpInstrs == 0 {
		t.Error("partial stats lost the instruction counters")
	}
}

func TestCycleBudgetNotTrippedByFastKernel(t *testing.T) {
	d := testDevice(t, 1<<20)
	n := 2 * 64
	in := d.MustMalloc(n * 4)
	out := d.MustMalloc(n * 4)
	st, err := d.LaunchContext(context.Background(), vecAddKernel(2, 64, in, out),
		LaunchLimits{MaxCycles: 1 << 40})
	if err != nil {
		t.Fatalf("generous budget aborted a normal kernel: %v", err)
	}
	if st.BlocksRetired != 2 {
		t.Errorf("blocks retired = %d, want 2", st.BlocksRetired)
	}
}

func TestLaunchContextPreCanceled(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := d.LaunchContext(ctx, spinKernel(1, 64), LaunchLimits{})
	if err == nil {
		t.Fatal("pre-canceled context launched anyway")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if st != nil {
		t.Errorf("pre-canceled launch returned stats %+v, want nil", st)
	}
}

func TestCancelMidLaunch(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	st, err := d.LaunchContext(ctx, spinKernel(1, 64), LaunchLimits{})
	var hang *HangError
	if !errors.As(err, &hang) {
		t.Fatalf("error %T is not *HangError: %v", err, err)
	}
	if hang.Reason != HangCanceled {
		t.Errorf("reason = %q, want %q", hang.Reason, HangCanceled)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("hang error does not unwrap to context.Canceled: %v", err)
	}
	if st == nil || st.Cycles <= 0 {
		t.Errorf("mid-launch cancel should return partial stats, got %+v", st)
	}
}

func TestHangDiagnosticsShowBarrierWait(t *testing.T) {
	d := testDevice(t, 1<<16)
	_, err := d.LaunchContext(context.Background(), barrierHangKernel(), LaunchLimits{MaxCycles: 20000})
	var hang *HangError
	if !errors.As(err, &hang) {
		t.Fatalf("error %T is not *HangError: %v", err, err)
	}
	if len(hang.Blocks) != 1 {
		t.Fatalf("diagnostics cover %d blocks, want 1", len(hang.Blocks))
	}
	bd := hang.Blocks[0]
	if bd.LiveWarps != 2 {
		t.Errorf("live warps = %d, want 2", bd.LiveWarps)
	}
	if bd.ArrivedAt != 1 {
		t.Errorf("warps at barrier = %d, want 1", bd.ArrivedAt)
	}
	var parked, ready int
	for _, w := range bd.Warps {
		switch w.State {
		case "at-barrier":
			parked++
		case "ready":
			ready++
		}
	}
	if parked != 1 || ready != 1 {
		t.Errorf("warp states parked=%d ready=%d, want 1/1 (diag: %s)", parked, ready, hang.Diagnose())
	}
	txt := hang.Diagnose()
	for _, want := range []string{"at-barrier", "block 0 on SM", "1/2 warps at barrier"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Diagnose() missing %q:\n%s", want, txt)
		}
	}
}
