package gpu

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"haccrg/internal/mem"
	"haccrg/internal/noc"
)

// Device is the simulated GPU: SMs, interconnect, memory partitions
// and the flat device (global) memory, plus an attached race detector.
type Device struct {
	cfg      Config
	Global   *mem.Memory
	parts    []*mem.Partition
	net      *noc.Network
	sms      []*sm
	detector Detector

	// Optional detector extensions, resolved once from the wrapper
	// chain (journal/trace recorders expose Inner) so the per-fence and
	// per-abort hook sites stay a nil check.
	fenceObs FenceObserver
	async    AsyncDetector

	// PartitionFor runs per lane per global access, so the div/mod is
	// hoisted into a shift (SegmentBytes is validated power-of-two) and,
	// when NumPartitions is also a power of two, a mask.
	segShift  uint
	partMask  uint64
	partsPow2 bool

	allocPtr  uint64
	localBase uint64

	// Launch state.
	launch     *Kernel
	nextBlock  int
	blocksLeft int
	now        int64
	liveBlocks map[int]*block
	fenceHist  map[int][]uint32 // retired blocks' final fence IDs
	maxSync    uint32
	maxFence   uint32
}

// NewDevice builds a GPU with the given configuration and device
// memory size. The detector may be nil (detection off).
func NewDevice(cfg Config, globalBytes int, det Detector) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if det == nil {
		det = NopDetector{}
	}
	d := &Device{
		cfg:        cfg,
		Global:     mem.NewMemory("global", globalBytes),
		net:        noc.New(cfg.NoC, cfg.NumPartitions),
		detector:   det,
		liveBlocks: make(map[int]*block),
		fenceHist:  make(map[int][]uint32),
		segShift:   uint(bits.TrailingZeros64(uint64(cfg.SegmentBytes))),
		partMask:   uint64(cfg.NumPartitions - 1),
		partsPow2:  cfg.NumPartitions&(cfg.NumPartitions-1) == 0,
	}
	for w := Detector(det); w != nil; {
		if d.fenceObs == nil {
			if o, ok := w.(FenceObserver); ok {
				d.fenceObs = o
			}
		}
		if d.async == nil {
			if a, ok := w.(AsyncDetector); ok {
				d.async = a
			}
		}
		u, ok := w.(interface{ Inner() Detector })
		if !ok {
			break
		}
		w = u.Inner()
	}
	for i := 0; i < cfg.NumPartitions; i++ {
		p, err := mem.NewPartition(i, cfg.Partition)
		if err != nil {
			return nil, err
		}
		d.parts = append(d.parts, p)
	}
	for i := 0; i < cfg.NumSMs; i++ {
		d.sms = append(d.sms, newSM(i, d))
	}
	return d, nil
}

// MustNewDevice is NewDevice panicking on error, for static setups.
func MustNewDevice(cfg Config, globalBytes int, det Detector) *Device {
	d, err := NewDevice(cfg, globalBytes, det)
	if err != nil {
		panic(err)
	}
	return d
}

// Detector returns the attached race detector.
func (d *Device) Detector() Detector { return d.detector }

// Malloc reserves size bytes of device memory (256-byte aligned, like
// cudaMalloc) and returns the base address.
func (d *Device) Malloc(size int) (uint64, error) {
	base := (d.allocPtr + 255) &^ 255
	if base+uint64(size) > uint64(d.Global.Size()) {
		return 0, fmt.Errorf("gpu: out of device memory (%d requested, %d free)",
			size, uint64(d.Global.Size())-base)
	}
	d.allocPtr = base + uint64(size)
	return base, nil
}

// MustMalloc is Malloc panicking on exhaustion.
func (d *Device) MustMalloc(size int) uint64 {
	a, err := d.Malloc(size)
	if err != nil {
		panic(err)
	}
	return a
}

// ResetAllocator releases all device allocations (workload teardown).
func (d *Device) ResetAllocator() { d.allocPtr = 0 }

// Launch runs a kernel to completion and returns its statistics. It is
// LaunchContext with no cancellation and no limits.
func (d *Device) Launch(k *Kernel) (*LaunchStats, error) {
	return d.LaunchContext(context.Background(), k, LaunchLimits{})
}

// watchdogStride is how many scheduler iterations pass between context
// checks — cheap enough to leave always-on, tight enough that a
// wall-clock deadline aborts a runaway simulation promptly.
const watchdogStride = 1024

// LaunchContext runs a kernel under the given context and limits.
//
// If the kernel deadlocks, exhausts the cycle budget, or the context is
// canceled (the wall-clock watchdog), the returned error is a
// *HangError carrying per-block barrier-wait diagnostics — and the
// returned stats are non-nil, holding the partial run (cycles executed,
// blocks retired, cache/DRAM counters), so aborted runs stay
// analyzable. Execution faults (bad memory accesses) likewise return
// partial stats alongside the error.
func (d *Device) LaunchContext(ctx context.Context, k *Kernel, lim LaunchLimits) (*LaunchStats, error) {
	if err := k.Validate(&d.cfg); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("gpu: kernel %q not launched: %w", k.Name, err)
	}
	if d.cfg.LocalBytesPerThread > 0 {
		need := k.GridDim * k.BlockDim * d.cfg.LocalBytesPerThread
		base, err := d.Malloc(need)
		if err != nil {
			return nil, fmt.Errorf("gpu: local memory: %w", err)
		}
		d.localBase = base
	}

	st := &LaunchStats{Kernel: k.Name}
	d.launch = k
	d.nextBlock = 0
	d.blocksLeft = k.GridDim
	d.now = 0
	d.maxSync = 0
	d.maxFence = 0
	clear(d.liveBlocks)
	clear(d.fenceHist)

	// Fresh per-launch component state: non-coherent L1s are invalid
	// at kernel boundaries; stats counters restart.
	for _, s := range d.sms {
		s.l1.Flush()
		s.l1.Stats = mem.CacheStats{}
		s.issueFree = 0
		s.rr = 0
		s.pendingErr = nil
		clear(s.mshr)
	}
	for _, p := range d.parts {
		p.ResetStats()
	}
	d.net.ResetStats()

	d.detector.KernelStart(d, k.Name)

	// Distribute blocks breadth-first across SMs, as hardware work
	// distribution does.
	limit := k.blocksPerSM(&d.cfg)
	for slot := 0; slot < limit && d.nextBlock < k.GridDim; slot++ {
		for _, s := range d.sms {
			if d.nextBlock >= k.GridDim {
				break
			}
			d.placeNext(s, slot)
		}
	}

	var iter int64
	for d.blocksLeft > 0 {
		iter++
		if iter%watchdogStride == 0 {
			if err := ctx.Err(); err != nil {
				return d.finalize(st, k), d.hangError(k, HangCanceled, err)
			}
		}
		next := int64(math.MaxInt64)
		for _, s := range d.sms {
			if t := s.earliestReady(); t < next {
				next = t
			}
		}
		if next == math.MaxInt64 {
			return d.finalize(st, k), d.hangError(k, HangDeadlock, nil)
		}
		if lim.MaxCycles > 0 && next > lim.MaxCycles {
			return d.finalize(st, k), d.hangError(k, HangCycleBudget, nil)
		}
		d.now = next
		for _, s := range d.sms {
			if len(s.warps) > 0 && s.issueFree <= next {
				st.IssueSlots++
			}
			s.issue(next, k, st)
			if s.pendingErr != nil {
				return d.finalize(st, k), s.pendingErr
			}
		}
	}

	d.detector.KernelEnd()
	return d.finalize(st, k), nil
}

// finalize folds the device-side counters into the launch stats; it is
// shared by the success path and every abort path, so partial runs
// carry real cache/DRAM/detector numbers.
func (d *Device) finalize(st *LaunchStats, k *Kernel) *LaunchStats {
	// Asynchronous detectors must settle before their stats are read:
	// abort paths skip KernelEnd, so without this the health and race
	// counters of a hung launch would reflect an arbitrary pipeline cut.
	if d.async != nil {
		d.async.Quiesce()
		st.DetectQueuePeak = d.async.DetectQueuePeak()
	}
	st.Cycles = d.now
	st.BlocksRetired = int64(k.GridDim - d.blocksLeft)
	st.MaxSyncID = d.maxSync
	st.MaxFenceID = d.maxFence
	for _, s := range d.sms {
		st.L1.ReadHits += s.l1.Stats.ReadHits
		st.L1.ReadMisses += s.l1.Stats.ReadMisses
		st.L1.WriteHits += s.l1.Stats.WriteHits
		st.L1.WriteMisses += s.l1.Stats.WriteMisses
	}
	var util float64
	for _, p := range d.parts {
		st.L2.ReadHits += p.L2.Stats.ReadHits
		st.L2.ReadMisses += p.L2.Stats.ReadMisses
		st.L2.WriteHits += p.L2.Stats.WriteHits
		st.L2.WriteMisses += p.L2.Stats.WriteMisses
		st.DRAMTx += p.DRAM.Reads + p.DRAM.Writes
		st.ShadowTx += p.ShadowAccess
		util += p.DRAM.Utilization(st.Cycles)
	}
	if st.Cycles > 0 {
		st.DRAMUtil = util / float64(len(d.parts))
	}
	st.NoCFlits = d.net.FlitCount
	if hr, ok := d.detector.(HealthReporter); ok {
		st.Health = hr.Health()
	}
	return st
}

// placeNext installs the next pending block on SM s at the given slot.
func (d *Device) placeNext(s *sm, slot int) {
	bid := d.nextBlock
	d.nextBlock++
	s.place(slot, bid, d.launch, d.now)
	d.liveBlocks[bid] = s.blocks[slot]
}

// blockFinished is called by an SM when a block retires.
func (d *Device) blockFinished(s *sm, slot int) {
	// Preserve final fence IDs for late RDU lookups, and track the
	// logical-clock maxima (Section VI-A2's ID-sizing data).
	for bid, b := range d.liveBlocks {
		if b.sm == s && b.liveWarp == 0 {
			ids := make([]uint32, len(b.warps))
			for i, w := range b.warps {
				ids[i] = w.fenceID
				if w.fenceID > d.maxFence {
					d.maxFence = w.fenceID
				}
			}
			if b.syncID > d.maxSync {
				d.maxSync = b.syncID
			}
			d.fenceHist[bid] = ids
			delete(d.liveBlocks, bid)
		}
	}
	d.blocksLeft--
	if d.nextBlock < d.launch.GridDim && slot >= 0 {
		d.placeNext(s, slot)
	}
}

// --- Env implementation (the detector-facing device interface) ---

// Config implements Env.
func (d *Device) Config() *Config { return &d.cfg }

// PartitionFor implements Env: line-interleaved partition mapping.
// It runs per lane per global access, so the general div/mod form is
// reduced to a shift plus (for power-of-two partition counts, the
// common case) a mask precomputed at device construction.
func (d *Device) PartitionFor(addr uint64) int {
	line := addr >> d.segShift
	if d.partsPow2 {
		return int(line & d.partMask)
	}
	return int(line % uint64(d.cfg.NumPartitions))
}

// ShadowTx implements Env: an RDU-side L2/DRAM access at a partition.
func (d *Device) ShadowTx(part int, cycle int64, addr uint64, write bool) int64 {
	line := addr &^ uint64(d.cfg.SegmentBytes-1)
	return d.parts[part].Access(cycle, line, write, false, true)
}

// InstrTx implements Env: a demand global access from SM sm through
// the full L1 -> NoC -> L2/DRAM path (software instrumentation).
func (d *Device) InstrTx(smID int, cycle int64, addr uint64, write bool) int64 {
	s := d.sms[smID]
	seg := uint64(d.cfg.SegmentBytes)
	line := addr &^ (seg - 1)
	part := d.PartitionFor(line)
	res := s.l1.Access(line, write, cycle)
	if write {
		arrive := d.net.Send(part, cycle+1, int(seg))
		return d.parts[part].Access(arrive, line, true, false, false)
	}
	if res.Hit {
		return cycle + d.cfg.L1Latency
	}
	arrive := d.net.Send(part, cycle+d.cfg.L1Latency, 0)
	l2done := d.parts[part].Access(arrive, line, false, false, false)
	return d.net.Reply(part, l2done, int(seg))
}

// InstrAtomicTx implements Env: an atomic read-modify-write from SM
// smID, bypassing the L1 and serializing at the partition.
func (d *Device) InstrAtomicTx(smID int, cycle int64, addr uint64) int64 {
	s := d.sms[smID]
	seg := uint64(d.cfg.SegmentBytes)
	line := addr &^ (seg - 1)
	s.l1.Invalidate(line)
	part := d.PartitionFor(line)
	arrive := d.net.Send(part, cycle+1, 8)
	l2done := d.parts[part].Access(arrive, line, true, true, false)
	return d.net.Reply(part, l2done, 8)
}

// ShadowBase implements Env.
func (d *Device) ShadowBase() uint64 { return uint64(d.Global.Size()) }

// GlobalMemSize implements Env.
func (d *Device) GlobalMemSize() uint64 { return uint64(d.Global.Size()) }

// CurrentFenceID implements Env: the race-register-file lookup.
func (d *Device) CurrentFenceID(blockID, warpInBlock int) uint32 {
	if b, ok := d.liveBlocks[blockID]; ok {
		if warpInBlock < len(b.warps) {
			return b.warps[warpInBlock].fenceID
		}
		return 0
	}
	if ids, ok := d.fenceHist[blockID]; ok && warpInBlock < len(ids) {
		return ids[warpInBlock]
	}
	return 0
}
