package gpu

import (
	"fmt"

	"haccrg/internal/isa"
)

// Kernel is one launchable grid: a program plus launch geometry, the
// per-block shared-memory footprint and the parameter array (read via
// ld.param).
type Kernel struct {
	Name        string
	Prog        *isa.Program
	GridDim     int // blocks in the grid (1-D)
	BlockDim    int // threads per block (1-D)
	SharedBytes int // static shared memory per block
	Params      []uint64
}

// Validate checks launch feasibility against a configuration.
func (k *Kernel) Validate(cfg *Config) error {
	if k.Prog == nil {
		return fmt.Errorf("gpu: kernel %q has no program", k.Name)
	}
	if err := k.Prog.Validate(); err != nil {
		return err
	}
	if k.GridDim <= 0 {
		return fmt.Errorf("gpu: kernel %q: grid dim %d", k.Name, k.GridDim)
	}
	if k.BlockDim <= 0 || k.BlockDim > cfg.MaxThreadsPerSM {
		return fmt.Errorf("gpu: kernel %q: block dim %d exceeds SM capacity %d",
			k.Name, k.BlockDim, cfg.MaxThreadsPerSM)
	}
	if k.SharedBytes > cfg.Shared.SizeBytes {
		return fmt.Errorf("gpu: kernel %q: shared bytes %d exceed SM shared memory %d",
			k.Name, k.SharedBytes, cfg.Shared.SizeBytes)
	}
	return nil
}

// blocksPerSM returns how many blocks of this kernel fit concurrently
// on one SM, limited by thread count, block slots and shared memory.
func (k *Kernel) blocksPerSM(cfg *Config) int {
	n := cfg.MaxBlocksPerSM
	if byThreads := cfg.MaxThreadsPerSM / k.BlockDim; byThreads < n {
		n = byThreads
	}
	if k.SharedBytes > 0 {
		if byShared := cfg.Shared.SizeBytes / k.SharedBytes; byShared < n {
			n = byShared
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}
