package gpu

import (
	"strings"
	"testing"

	"haccrg/internal/isa"
)

// TestLocalMemory exercises the per-thread local space: each thread
// spills and reloads values through its private device-memory slot.
func TestLocalMemory(t *testing.T) {
	cfg := TestConfig()
	cfg.LocalBytesPerThread = 64
	d, err := NewDevice(cfg, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := d.MustMalloc(64 * 4)
	b := isa.NewBuilder("local")
	b.Sreg(rTid, isa.SregTid)
	// local[0] = tid*3; local[8] = tid*5; out[tid] = local[0] + local[8].
	b.Movi(rAddr, 0)
	b.Muli(rVal, rTid, 3)
	b.St(isa.SpaceLocal, rAddr, 0, rVal, 4)
	b.Muli(rVal, rTid, 5)
	b.St(isa.SpaceLocal, rAddr, 32, rVal, 4)
	b.Ld(rTmp, isa.SpaceLocal, rAddr, 0, 4)
	b.Ld(rVal, isa.SpaceLocal, rAddr, 32, 4)
	b.Add(rVal, rVal, rTmp)
	b.Ldp(rBase, 0)
	b.Muli(rAddr, rTid, 4)
	b.Add(rAddr, rBase, rAddr)
	b.St(isa.SpaceGlobal, rAddr, 0, rVal, 4)
	b.Exit()
	k := &Kernel{Name: "local", Prog: b.MustBuild(), GridDim: 2, BlockDim: 32, Params: []uint64{out}}
	st, err := d.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		tid := i % 32
		if got := d.Global.U32(int(out)/4 + tid); got != uint32(tid*8) {
			t.Fatalf("out[%d] = %d, want %d", tid, got, tid*8)
		}
	}
	if st.LocalAccesses != 64*4 {
		t.Errorf("local accesses = %d, want 256", st.LocalAccesses)
	}
}

// TestLocalMemoryNeverRaces confirms the detector ignores the private
// local space even when all threads use identical local offsets.
func TestLocalMemoryIsPrivate(t *testing.T) {
	cfg := TestConfig()
	cfg.LocalBytesPerThread = 16
	det := &countingDetector{}
	d, err := NewDevice(cfg, 1<<20, det)
	if err != nil {
		t.Fatal(err)
	}
	b := isa.NewBuilder("lp")
	b.Movi(rAddr, 0)
	b.Movi(rVal, 7)
	b.St(isa.SpaceLocal, rAddr, 0, rVal, 4)
	b.Ld(rVal, isa.SpaceLocal, rAddr, 0, 4)
	b.Exit()
	k := &Kernel{Name: "lp", Prog: b.MustBuild(), GridDim: 2, BlockDim: 64}
	if _, err := d.Launch(k); err != nil {
		t.Fatal(err)
	}
	if det.globalEvents != 0 {
		t.Errorf("local accesses reached the global RDU: %d events", det.globalEvents)
	}
}

// countingDetector counts the events the engine hands to detectors.
type countingDetector struct {
	NopDetector
	globalEvents int
	sharedEvents int
}

func (c *countingDetector) WarpMem(ev *WarpMemEvent) int64 {
	switch ev.Space {
	case isa.SpaceGlobal:
		c.globalEvents++
	case isa.SpaceShared:
		c.sharedEvents++
	}
	return 0
}

// TestSharedAtomics exercises atomic operations on the shared space.
func TestSharedAtomics(t *testing.T) {
	d := testDevice(t, 1<<16)
	out := d.MustMalloc(4)
	b := isa.NewBuilder("shatom")
	b.Sreg(rTid, isa.SregTid)
	// Clear shared[0] from thread 0, barrier, everyone atomically adds
	// tid, barrier, thread 0 publishes.
	b.Setpi(0, isa.CmpEQ, rTid, 0)
	b.If(0)
	b.Movi(rAddr, 0)
	b.Movi(rVal, 0)
	b.St(isa.SpaceShared, rAddr, 0, rVal, 4)
	b.EndIf()
	b.Bar()
	b.Movi(rAddr, 0)
	b.Atom(rTmp, isa.AtomAdd, isa.SpaceShared, rAddr, 0, rTid, 0)
	b.Bar()
	b.Setpi(0, isa.CmpEQ, rTid, 0)
	b.If(0)
	b.Ld(rVal, isa.SpaceShared, rAddr, 0, 4)
	b.Ldp(rBase, 0)
	b.St(isa.SpaceGlobal, rBase, 0, rVal, 4)
	b.EndIf()
	b.Exit()
	k := &Kernel{Name: "shatom", Prog: b.MustBuild(), GridDim: 1, BlockDim: 128, SharedBytes: 16, Params: []uint64{out}}
	st, err := d.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	want := uint32(128 * 127 / 2)
	if got := d.Global.U32(int(out) / 4); got != want {
		t.Fatalf("shared atomic sum = %d, want %d", got, want)
	}
	if st.SharedAtomics != 128 {
		t.Errorf("shared atomics = %d, want 128", st.SharedAtomics)
	}
}

// TestEarlyExitBeforeBarrier: some warps exit before the barrier; the
// engine's safety valve must release the remaining warps instead of
// hanging (CUDA semantics are undefined but never deadlock the SM
// forever in our model).
func TestEarlyExitBeforeBarrier(t *testing.T) {
	d := testDevice(t, 1<<16)
	b := isa.NewBuilder("early")
	b.Sreg(rTid, isa.SregTid)
	// Warp 0 exits immediately; warps 1-3 hit the barrier.
	b.Setpi(0, isa.CmpLT, rTid, 32)
	b.If(0)
	b.Exit()
	b.EndIf()
	b.Bar()
	b.Exit()
	k := &Kernel{Name: "early", Prog: b.MustBuild(), GridDim: 1, BlockDim: 128}
	if _, err := d.Launch(k); err != nil {
		t.Fatalf("early-exit kernel hung or failed: %v", err)
	}
}

// TestWideWarps runs the engine at warp size 64 (AMD wavefronts, which
// the paper's Section II cites) to confirm the mask logic is width-
// agnostic.
func TestWideWarps(t *testing.T) {
	cfg := TestConfig()
	cfg.WarpSize = 64
	cfg.SIMDWidth = 16
	d, err := NewDevice(cfg, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := d.MustMalloc(256 * 4)
	st, err := d.Launch(vecAddKernel(2, 128, out, out))
	if err != nil {
		t.Fatal(err)
	}
	if st.GlobalWrites != 256 {
		t.Errorf("writes = %d, want 256", st.GlobalWrites)
	}
	for i := 0; i < 256; i++ {
		if got := d.Global.U32(int(out)/4 + i); got != 1 {
			t.Fatalf("out[%d] = %d, want 1", i, got)
		}
	}
}

// TestConfigValidation covers the rejection paths.
func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumSMs = 0 },
		func(c *Config) { c.WarpSize = 65 },
		func(c *Config) { c.SIMDWidth = 7 },
		func(c *Config) { c.MaxThreadsPerSM = 8 },
		func(c *Config) { c.SegmentBytes = 100 },
		func(c *Config) { c.L1.Assoc = 0 },
		func(c *Config) { c.Bloom.SizeBits = 13 },
		func(c *Config) { c.Shared.Banks = 0 },
	}
	for i, mutate := range bad {
		cfg := TestConfig()
		mutate(&cfg)
		if _, err := NewDevice(cfg, 1024, nil); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestStatsPercentages sanity-checks the Table II helpers.
func TestStatsPercentages(t *testing.T) {
	s := LaunchStats{ThreadInstrs: 200, SharedReads: 20, GlobalReads: 50}
	if s.SharedReadPct() != 10 || s.GlobalReadPct() != 25 {
		t.Fatalf("pct helpers wrong: %v %v", s.SharedReadPct(), s.GlobalReadPct())
	}
	var zero LaunchStats
	if zero.SharedReadPct() != 0 || zero.GlobalReadPct() != 0 {
		t.Fatal("zero stats must not divide by zero")
	}
}

// TestDisassemblyInErrors: engine errors carry the kernel name for
// diagnosis.
func TestErrorsNameTheKernel(t *testing.T) {
	d := testDevice(t, 64)
	b := isa.NewBuilder("oops")
	b.Movi(rAddr, 1<<20)
	b.Ld(rVal, isa.SpaceGlobal, rAddr, 0, 4)
	b.Exit()
	k := &Kernel{Name: "oops", Prog: b.MustBuild(), GridDim: 1, BlockDim: 32}
	_, err := d.Launch(k)
	if err == nil || !strings.Contains(err.Error(), "oops") {
		t.Fatalf("error does not identify the kernel: %v", err)
	}
}

// TestNoCContention: many SMs hammering one partition must serialize;
// cycle counts grow superlinearly versus a single-SM run of the same
// per-SM work.
func TestMemoryContentionVisible(t *testing.T) {
	run := func(grid int) int64 {
		d := testDevice(t, 1<<22)
		// All blocks stream the same region: maximal partition pressure.
		buf := d.MustMalloc(1 << 16)
		b := isa.NewBuilder("stream")
		b.Sreg(rTid, isa.SregTid)
		b.Ldp(rBase, 0)
		b.Movi(rI, 0)
		b.Setpi(0, isa.CmpLT, rI, 64)
		b.While(0)
		b.Muli(rAddr, rI, 128*4)
		b.Muli(rTmp, rTid, 4)
		b.Add(rAddr, rAddr, rTmp)
		b.Add(rAddr, rBase, rAddr)
		b.Ld(rVal, isa.SpaceGlobal, rAddr, 0, 4)
		b.Addi(rI, rI, 1)
		b.Setpi(0, isa.CmpLT, rI, 64)
		b.EndWhile()
		b.Exit()
		k := &Kernel{Name: "stream", Prog: b.MustBuild(), GridDim: grid, BlockDim: 128, Params: []uint64{buf}}
		st, err := d.Launch(k)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	one := run(1)
	many := run(8) // 8 blocks across 4 SMs, same footprint
	if many <= one {
		t.Fatalf("no contention visible: 1 block %d cycles, 8 blocks %d", one, many)
	}
}

// BenchmarkSimulatorThroughput measures the engine's host-side speed
// in simulated thread-instructions per wall second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := TestConfig()
	var instrs int64
	for i := 0; i < b.N; i++ {
		d, err := NewDevice(cfg, 1<<20, nil)
		if err != nil {
			b.Fatal(err)
		}
		in := d.MustMalloc(4096 * 4)
		out := d.MustMalloc(4096 * 4)
		st, err := d.Launch(vecAddKernel(64, 64, in, out))
		if err != nil {
			b.Fatal(err)
		}
		instrs += st.ThreadInstrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "thread-instrs/s")
}
