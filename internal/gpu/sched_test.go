package gpu

import (
	"testing"

	"haccrg/internal/isa"
)

// schedKernel: each thread walks a private strided region so that the
// scheduling policy changes the L1 access pattern.
func schedKernel(buf uint64) *Kernel {
	b := isa.NewBuilder("sched")
	b.Sreg(rGtid, isa.SregGtid)
	b.Ldp(rBase, 0)
	b.Movi(rI, 0)
	b.Setpi(0, isa.CmpLT, rI, 32)
	b.While(0)
	b.Muli(rAddr, rI, 512)
	b.Muli(rTmp, rGtid, 4)
	b.Add(rAddr, rAddr, rTmp)
	b.Add(rAddr, rBase, rAddr)
	b.Ld(rVal, isa.SpaceGlobal, rAddr, 0, 4)
	b.Addi(rI, rI, 1)
	b.Setpi(0, isa.CmpLT, rI, 32)
	b.EndWhile()
	b.Exit()
	return &Kernel{Name: "sched", Prog: b.MustBuild(), GridDim: 4, BlockDim: 128, Params: []uint64{buf}}
}

func runSched(t *testing.T, pol SchedPolicy) *LaunchStats {
	t.Helper()
	cfg := TestConfig()
	cfg.Scheduler = pol
	d, err := NewDevice(cfg, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := d.MustMalloc(1 << 16)
	st, err := d.Launch(schedKernel(buf))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSchedulersBothComplete(t *testing.T) {
	rr := runSched(t, SchedRoundRobin)
	gto := runSched(t, SchedGTO)
	// Same functional work under both policies.
	if rr.GlobalReads != gto.GlobalReads || rr.ThreadInstrs != gto.ThreadInstrs {
		t.Fatalf("policies disagree on work: rr %d/%d reads/instrs, gto %d/%d",
			rr.GlobalReads, rr.ThreadInstrs, gto.GlobalReads, gto.ThreadInstrs)
	}
	if rr.Cycles <= 0 || gto.Cycles <= 0 {
		t.Fatal("empty run")
	}
	// The policies must actually schedule differently.
	if rr.Cycles == gto.Cycles && rr.L1.ReadMisses == gto.L1.ReadMisses {
		t.Log("note: policies coincided on this kernel (allowed, but unusual)")
	}
}

func TestSchedulerFunctionalEquivalence(t *testing.T) {
	// Both policies must produce identical results for a deterministic
	// data-parallel kernel.
	run := func(pol SchedPolicy) []byte {
		cfg := TestConfig()
		cfg.Scheduler = pol
		d, err := NewDevice(cfg, 1<<20, nil)
		if err != nil {
			t.Fatal(err)
		}
		in := d.MustMalloc(1024 * 4)
		out := d.MustMalloc(1024 * 4)
		for i := 0; i < 1024; i++ {
			d.Global.SetU32(int(in)/4+i, uint32(i*7))
		}
		if _, err := d.Launch(vecAddKernel(16, 64, in, out)); err != nil {
			t.Fatal(err)
		}
		img := make([]byte, 1024*4)
		copy(img, d.Global.Bytes()[out:out+1024*4])
		return img
	}
	a := run(SchedRoundRobin)
	b := run(SchedGTO)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedulers diverge functionally at byte %d", i)
		}
	}
}

func TestSchedPolicyString(t *testing.T) {
	if SchedRoundRobin.String() != "round-robin" || SchedGTO.String() != "gto" {
		t.Fatal("policy names wrong")
	}
}

func TestMSHRMergesMisses(t *testing.T) {
	// Many warps of one block read the SAME line back to back: with
	// MSHRs only the first miss issues a transaction; the rest merge.
	d := testDevice(t, 1<<16)
	buf := d.MustMalloc(256)
	b := isa.NewBuilder("mshr")
	b.Ldp(rBase, 0)
	b.Ld(rVal, isa.SpaceGlobal, rBase, 0, 4)
	b.Exit()
	k := &Kernel{Name: "mshr", Prog: b.MustBuild(), GridDim: 1, BlockDim: 256, Params: []uint64{buf}}
	st, err := d.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	// 8 warps all read line 0. One transaction fills it; later warps
	// either merge into the in-flight fill or hit the filled line. The
	// partition must not see 8 demand reads.
	if st.L2.ReadMisses+st.L2.ReadHits > 2 {
		t.Fatalf("MSHR failed to merge: %d L2 accesses for one hot line",
			st.L2.ReadMisses+st.L2.ReadHits)
	}
}

func TestFermiConfigValid(t *testing.T) {
	cfg := FermiConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Shared.SizeBytes != 48<<10 || cfg.MaxThreadsPerSM != 1536 {
		t.Fatalf("Fermi geometry wrong: %+v", cfg)
	}
	// And it runs.
	d := MustNewDevice(cfg, 1<<20, nil)
	out := d.MustMalloc(256 * 4)
	if _, err := d.Launch(vecAddKernel(4, 64, out, out)); err != nil {
		t.Fatal(err)
	}
}
