package gpu

import (
	"haccrg/internal/bloom"
	"haccrg/internal/isa"
)

// LaneAccess is one thread's memory access within a warp instruction.
type LaneAccess struct {
	Lane int    // lane index within the warp
	Tid  int    // thread index within its block (the shadow tid field)
	GTid int    // global thread id
	Addr uint64 // byte address (space-relative: shared addresses are block-relative)
	Size uint8

	AtomicSig bloom.Sig // the thread's current lockset signature
	InCrit    bool      // issued inside a critical section
	L1Hit     bool      // global reads: whether the access hit the (stale-prone) L1
	L1Fill    int64     // cycle the hit L1 line's data was last refreshed
	Arrival   int64     // cycle the access reaches the RDU (partition for global)
}

// WarpMemEvent describes one warp-level memory instruction presented to
// a race detector: the per-lane accesses plus the metadata the paper's
// request packets carry (sync ID, fence ID, atomic IDs).
//
// Ownership: the event and its Lanes slice belong to the caller and
// are valid ONLY for the duration of the Detector.WarpMem call — the
// simulator reuses the backing storage for the next instruction.
// Detectors (and recorders) that process events asynchronously or
// journal them must copy what they keep into owned buffers before
// returning; retaining the pointer or the Lanes slice is a data race.
type WarpMemEvent struct {
	Space  isa.Space
	Write  bool
	Atomic bool
	PC     int

	SM          int // sid
	Block       int // bid (global block index)
	WarpInBlock int
	Kernel      string
	Stmt        string // builder annotation of the instruction, if any

	SyncID  uint32 // the block's barrier logical clock
	FenceID uint32 // the warp's fence logical clock
	Cycle   int64  // issue cycle

	Lanes []LaneAccess
}

// Env is the device-side interface a detector uses to model its
// hardware costs: shadow-memory traffic through a partition's L2/DRAM
// (hardware RDUs) or demand traffic from an SM (software
// instrumentation).
type Env interface {
	// Config returns the device configuration.
	Config() *Config
	// PartitionFor maps a global byte address to its memory slice.
	//
	// Contract: the mapping must be line-interleaved — it may depend
	// only on addr / Config().SegmentBytes, so every byte of a
	// coalescing segment (and hence of any tracking granule no larger
	// than a segment) maps to one partition. Sharded per-partition
	// detection relies on this to give each partition a disjoint,
	// densely compactable slice of the global shadow.
	PartitionFor(addr uint64) int
	// ShadowTx performs an RDU-side access at partition part (no NoC
	// traversal: the RDU sits inside the memory slice). Returns the
	// completion cycle; the demand access does NOT wait for it.
	ShadowTx(part int, cycle int64, addr uint64, write bool) int64
	// InstrTx performs a demand global access from SM sm through the
	// full L1/NoC/L2/DRAM path, as software instrumentation would.
	// Returns the completion cycle.
	InstrTx(sm int, cycle int64, addr uint64, write bool) int64
	// InstrAtomicTx performs an atomic demand access (software shadow
	// updates are CAS loops that bypass the L1 and serialize at the
	// partition). Returns the completion cycle.
	InstrAtomicTx(sm int, cycle int64, addr uint64) int64
	// ShadowBase returns the first byte address above the application's
	// global memory, where shadow structures are placed.
	ShadowBase() uint64
	// CurrentFenceID returns warp w of block b's fence clock — the
	// race register file lookup of Section IV-B.
	CurrentFenceID(block, warpInBlock int) uint32
	// GlobalMemSize returns the application-visible global memory size.
	GlobalMemSize() uint64
}

// Detector observes execution and reports races. Implementations:
// internal/core (the paper's hardware HAccRG), internal/swdetect
// (its software build), internal/grace (the GRace-addr baseline).
//
// WarpMem returns extra cycles the issuing warp must stall — zero for
// hardware detection, the instrumentation cost for software schemes.
// The event passed to WarpMem is borrowed, not given: see the
// WarpMemEvent ownership contract.
// Barrier returns extra cycles before the block's warps are released
// (the shared-shadow invalidation cost the paper simulates).
type Detector interface {
	Name() string
	KernelStart(env Env, kernelName string)
	KernelEnd()
	WarpMem(ev *WarpMemEvent) (stall int64)
	Barrier(sm, block int, sharedBase, sharedSize int, cycle int64) (stall int64)
	// BlockStart fires when a fresh block is placed into an SM slot:
	// its shared-memory region (possibly inherited from a retired
	// block) starts a new life, an implicit barrier.
	BlockStart(sm int, sharedBase, sharedSize int)
}

// FenceObserver is an optional Detector extension. The device calls
// FenceAdvance on the simulation thread when warp warpInBlock of the
// given block increments its fence clock (OpMembar), strictly before
// any later memory event is delivered. Detectors that check
// asynchronously use it to keep a private mirror of the race register
// file consistent instead of reading Env.CurrentFenceID concurrently
// with simulation.
type FenceObserver interface {
	FenceAdvance(block, warpInBlock int, id uint32)
}

// AsyncDetector is an optional Detector extension for engines that
// process checks asynchronously (the sharded per-partition RDU).
// Quiesce blocks until every enqueued check has been applied and stops
// the pipeline; the device calls it in finalize so aborted launches —
// which never reach KernelEnd — still report fully drained stats.
// DetectQueuePeak reports the deepest backlog any internal check queue
// reached during the launch (LaunchStats.DetectQueuePeak), making
// shard saturation observable.
type AsyncDetector interface {
	Quiesce()
	DetectQueuePeak() int
}

// FenceRead is one recorded Env.CurrentFenceID response, in the order
// the detection engine consumed it. Asynchronous detectors expose
// their per-kernel log (see journal.Recorder) so a serial replay —
// which issues the identical query sequence — can be fed the identical
// responses.
type FenceRead struct {
	Block int
	Warp  int
	ID    uint32
}

// NopDetector is the baseline: detection disabled.
type NopDetector struct{}

// Name implements Detector.
func (NopDetector) Name() string { return "off" }

// KernelStart implements Detector.
func (NopDetector) KernelStart(Env, string) {}

// KernelEnd implements Detector.
func (NopDetector) KernelEnd() {}

// WarpMem implements Detector.
func (NopDetector) WarpMem(*WarpMemEvent) int64 { return 0 }

// Barrier implements Detector.
func (NopDetector) Barrier(int, int, int, int, int64) int64 { return 0 }

// BlockStart implements Detector.
func (NopDetector) BlockStart(int, int, int) {}
