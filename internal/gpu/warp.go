package gpu

import (
	"math"

	"haccrg/internal/bloom"
	"haccrg/internal/isa"
)

// warpState is the scheduler-visible state of a warp.
type warpState uint8

const (
	warpReady warpState = iota
	warpAtBarrier
	warpDone
)

// divCtx is one SIMT divergence-stack entry: resume execution at pc
// with the given active mask, ending (reconverging) at rcv.
type divCtx struct {
	pc   int
	mask uint64
	rcv  int // -1 for the top-level context
}

// lane holds one thread's architectural state.
type lane struct {
	regs  [isa.NumRegs]uint64
	preds [isa.NumPreds]bool

	sig       bloom.Sig // lockset signature (the paper's atomic ID register)
	critDepth int       // lock nesting depth; signature clears at zero
}

// warp is 32 threads executing in lockstep.
type warp struct {
	block   *block
	inBlock int // warp index within the block

	pc    int
	mask  uint64 // current active mask
	alive uint64 // lanes that have not exited
	rcv   int    // reconvergence PC of the current context
	stack []divCtx

	lanes []lane

	state     warpState
	readyAt   int64
	storeDone int64 // completion cycle of the latest outstanding store

	fenceID uint32 // per-warp fence logical clock (paper Section III-C)
}

func fullMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// newWarp builds warp w of a block; tail warps of a non-multiple block
// dimension start with only the valid lanes alive.
func newWarp(b *block, inBlock, warpSize int) *warp {
	base := inBlock * warpSize
	n := b.dim - base
	if n > warpSize {
		n = warpSize
	}
	w := &warp{
		block:   b,
		inBlock: inBlock,
		rcv:     -1,
		lanes:   make([]lane, warpSize),
		mask:    fullMask(n),
		alive:   fullMask(n),
	}
	return w
}

// tidOf returns the block-relative thread id of a lane.
func (w *warp) tidOf(laneIdx int) int { return w.inBlock*len(w.lanes) + laneIdx }

// guardMask evaluates an instruction's guard over the active lanes.
func (w *warp) guardMask(in *isa.Instr) uint64 {
	if in.Pred == isa.NoPred {
		return w.mask
	}
	var m uint64
	for l := 0; l < len(w.lanes); l++ {
		if w.mask&(1<<uint(l)) == 0 {
			continue
		}
		p := w.lanes[l].preds[in.Pred]
		if in.PredNeg {
			p = !p
		}
		if p {
			m |= 1 << uint(l)
		}
	}
	return m
}

// reconverge pops divergence contexts whose join point has been
// reached. Called before each fetch.
func (w *warp) reconverge() {
	for w.rcv >= 0 && w.pc == w.rcv && len(w.stack) > 0 {
		top := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		w.pc = top.pc
		w.mask = top.mask & w.alive
		w.rcv = top.rcv
	}
}

// branch executes a (possibly divergent) branch over execMask, the
// guard-qualified active lanes. Returns true if the warp diverged.
func (w *warp) branch(in *isa.Instr, execMask uint64) bool {
	if in.Pred == isa.NoPred {
		w.pc = in.Tgt
		return false
	}
	taken := execMask
	notTaken := w.mask &^ execMask
	switch {
	case notTaken == 0:
		w.pc = in.Tgt
		return false
	case taken == 0:
		w.pc++
		return false
	}
	// Divergence: run the taken path first; the fall-through path and
	// the post-join continuation wait on the stack.
	w.stack = append(w.stack,
		divCtx{pc: in.Rcv, mask: w.mask, rcv: w.rcv},
		divCtx{pc: w.pc + 1, mask: notTaken, rcv: in.Rcv},
	)
	w.pc = in.Tgt
	w.mask = taken
	w.rcv = in.Rcv
	return true
}

// exit retires execMask's lanes; the warp finishes when none are left.
func (w *warp) exit(execMask uint64) {
	w.alive &^= execMask
	w.mask &^= execMask
	for w.mask == 0 {
		if len(w.stack) == 0 {
			w.state = warpDone
			return
		}
		top := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		w.pc = top.pc
		w.mask = top.mask & w.alive
		w.rcv = top.rcv
	}
}

// aluLane executes a non-memory, non-control instruction for one lane.
func aluLane(in *isa.Instr, ln *lane, sr func(isa.SregKind) uint64) {
	src := func(r isa.Reg) uint64 { return ln.regs[r] }
	b := func() uint64 {
		if in.UseImm {
			return uint64(in.Imm)
		}
		return src(in.SrcB)
	}
	f := func(r isa.Reg) float64 { return math.Float64frombits(ln.regs[r]) }
	fb := func() float64 {
		if in.UseImm {
			return math.Float64frombits(uint64(in.Imm))
		}
		return f(in.SrcB)
	}
	setF := func(v float64) { ln.regs[in.Dst] = math.Float64bits(v) }

	switch in.Op {
	case isa.OpNop:
	case isa.OpMov:
		if in.UseImm {
			ln.regs[in.Dst] = uint64(in.Imm)
		} else {
			ln.regs[in.Dst] = src(in.SrcA)
		}
	case isa.OpSreg:
		ln.regs[in.Dst] = sr(isa.SregKind(in.Imm))
	case isa.OpSelp:
		if ln.preds[in.PD] {
			ln.regs[in.Dst] = src(in.SrcA)
		} else {
			ln.regs[in.Dst] = src(in.SrcC)
		}
	case isa.OpAdd:
		ln.regs[in.Dst] = src(in.SrcA) + b()
	case isa.OpSub:
		ln.regs[in.Dst] = src(in.SrcA) - b()
	case isa.OpMul:
		ln.regs[in.Dst] = uint64(int64(src(in.SrcA)) * int64(b()))
	case isa.OpDiv:
		d := int64(b())
		if d == 0 {
			ln.regs[in.Dst] = 0
		} else {
			ln.regs[in.Dst] = uint64(int64(src(in.SrcA)) / d)
		}
	case isa.OpRem:
		d := int64(b())
		if d == 0 {
			ln.regs[in.Dst] = 0
		} else {
			ln.regs[in.Dst] = uint64(int64(src(in.SrcA)) % d)
		}
	case isa.OpMin:
		x, y := int64(src(in.SrcA)), int64(b())
		if y < x {
			x = y
		}
		ln.regs[in.Dst] = uint64(x)
	case isa.OpMax:
		x, y := int64(src(in.SrcA)), int64(b())
		if y > x {
			x = y
		}
		ln.regs[in.Dst] = uint64(x)
	case isa.OpAnd:
		ln.regs[in.Dst] = src(in.SrcA) & b()
	case isa.OpOr:
		ln.regs[in.Dst] = src(in.SrcA) | b()
	case isa.OpXor:
		ln.regs[in.Dst] = src(in.SrcA) ^ b()
	case isa.OpNot:
		ln.regs[in.Dst] = ^src(in.SrcA)
	case isa.OpShl:
		ln.regs[in.Dst] = src(in.SrcA) << (b() & 63)
	case isa.OpShr:
		ln.regs[in.Dst] = uint64(int64(src(in.SrcA)) >> (b() & 63))
	case isa.OpMad:
		ln.regs[in.Dst] = uint64(int64(src(in.SrcA))*int64(b()) + int64(src(in.SrcC)))
	case isa.OpFAdd:
		setF(f(in.SrcA) + fb())
	case isa.OpFSub:
		setF(f(in.SrcA) - fb())
	case isa.OpFMul:
		setF(f(in.SrcA) * fb())
	case isa.OpFDiv:
		setF(f(in.SrcA) / fb())
	case isa.OpFMin:
		setF(math.Min(f(in.SrcA), fb()))
	case isa.OpFMax:
		setF(math.Max(f(in.SrcA), fb()))
	case isa.OpFSqrt:
		setF(math.Sqrt(f(in.SrcA)))
	case isa.OpFExp:
		setF(math.Exp(f(in.SrcA)))
	case isa.OpFLog:
		setF(math.Log(f(in.SrcA)))
	case isa.OpFSin:
		setF(math.Sin(f(in.SrcA)))
	case isa.OpFCos:
		setF(math.Cos(f(in.SrcA)))
	case isa.OpFAbs:
		setF(math.Abs(f(in.SrcA)))
	case isa.OpItoF:
		setF(float64(int64(src(in.SrcA))))
	case isa.OpFtoI:
		ln.regs[in.Dst] = uint64(int64(f(in.SrcA)))
	case isa.OpSetp:
		ln.preds[in.PD] = intCmp(in.Cmp, int64(src(in.SrcA)), int64(b()))
	case isa.OpFSetp:
		ln.preds[in.PD] = floatCmp(in.Cmp, f(in.SrcA), fb())
	}
}

func intCmp(c isa.CmpOp, a, b int64) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	}
	return false
}

func floatCmp(c isa.CmpOp, a, b float64) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	}
	return false
}
