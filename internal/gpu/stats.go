package gpu

import "haccrg/internal/mem"

// LaunchStats aggregates one kernel launch's execution statistics.
type LaunchStats struct {
	Kernel string
	Cycles int64

	// BlocksRetired counts thread-blocks that ran to completion. On a
	// full run it equals the grid size; on an aborted launch (see
	// HangError) it shows how far the run got.
	BlocksRetired int64

	WarpInstrs   int64 // issued warp instructions
	ThreadInstrs int64 // lane-level instructions (active lanes summed)

	// Thread-level memory operation counts.
	SharedReads   int64
	SharedWrites  int64
	SharedAtomics int64
	GlobalReads   int64
	GlobalWrites  int64
	GlobalAtomics int64
	LocalAccesses int64

	Barriers    int64 // block-level barrier episodes
	Fences      int64 // warp-level fence completions
	Divergences int64

	MaxSyncID  uint32 // largest barrier logical clock any block reached
	MaxFenceID uint32 // largest fence logical clock any warp reached

	DetectorStall int64 // cycles detectors added (barrier invalidation, instrumentation)

	// IssueSlots counts SM-cycles of issue opportunity (cycles x SMs
	// with resident work); WarpInstrs/IssueSlots approximates issue
	// utilization.
	IssueSlots int64

	L1       mem.CacheStats
	L2       mem.CacheStats
	DRAMUtil float64 // average across channels, of busy cycles / total
	DRAMTx   int64
	NoCFlits int64

	ShadowTx int64 // RDU-injected transactions at the partitions

	// DetectQueuePeak is the deepest backlog any asynchronous detection
	// queue reached during the launch (0 for synchronous detectors).
	// A peak pinned at the ring capacity means the sim thread was
	// backpressured and wall-clock gains are queue-bound.
	DetectQueuePeak int

	// Health is the attached detector's degradation report (nil when
	// the detector does not implement HealthReporter, e.g. NopDetector).
	Health *DetectorHealth
}

// SharedReadPct returns shared-memory reads as a percentage of all
// thread instructions (Table II's "Shared Reads" column).
func (s *LaunchStats) SharedReadPct() float64 {
	if s.ThreadInstrs == 0 {
		return 0
	}
	return 100 * float64(s.SharedReads) / float64(s.ThreadInstrs)
}

// GlobalReadPct returns global-memory reads as a percentage of all
// thread instructions (Table II's "Global Reads" column).
func (s *LaunchStats) GlobalReadPct() float64 {
	if s.ThreadInstrs == 0 {
		return 0
	}
	return 100 * float64(s.GlobalReads) / float64(s.ThreadInstrs)
}

// IssueUtilization returns the fraction of issue opportunities that
// issued an instruction (0 when unknown).
func (s *LaunchStats) IssueUtilization() float64 {
	if s.IssueSlots == 0 {
		return 0
	}
	u := float64(s.WarpInstrs) / float64(s.IssueSlots)
	if u > 1 {
		u = 1
	}
	return u
}

// Add accumulates another launch's statistics (multi-kernel workloads).
func (s *LaunchStats) Add(o *LaunchStats) {
	s.Cycles += o.Cycles
	s.BlocksRetired += o.BlocksRetired
	// Detectors report health cumulatively across a device's launches;
	// keep the latest report rather than double-counting.
	if o.Health != nil {
		s.Health = o.Health
	}
	s.WarpInstrs += o.WarpInstrs
	s.ThreadInstrs += o.ThreadInstrs
	s.SharedReads += o.SharedReads
	s.SharedWrites += o.SharedWrites
	s.SharedAtomics += o.SharedAtomics
	s.GlobalReads += o.GlobalReads
	s.GlobalWrites += o.GlobalWrites
	s.GlobalAtomics += o.GlobalAtomics
	s.LocalAccesses += o.LocalAccesses
	s.Barriers += o.Barriers
	s.Fences += o.Fences
	s.Divergences += o.Divergences
	if o.MaxSyncID > s.MaxSyncID {
		s.MaxSyncID = o.MaxSyncID
	}
	if o.MaxFenceID > s.MaxFenceID {
		s.MaxFenceID = o.MaxFenceID
	}
	s.DetectorStall += o.DetectorStall
	s.IssueSlots += o.IssueSlots
	s.L1.ReadHits += o.L1.ReadHits
	s.L1.ReadMisses += o.L1.ReadMisses
	s.L1.WriteHits += o.L1.WriteHits
	s.L1.WriteMisses += o.L1.WriteMisses
	s.L2.ReadHits += o.L2.ReadHits
	s.L2.ReadMisses += o.L2.ReadMisses
	s.L2.WriteHits += o.L2.WriteHits
	s.L2.WriteMisses += o.L2.WriteMisses
	s.DRAMTx += o.DRAMTx
	s.NoCFlits += o.NoCFlits
	s.ShadowTx += o.ShadowTx
	if o.DetectQueuePeak > s.DetectQueuePeak {
		s.DetectQueuePeak = o.DetectQueuePeak
	}
	// Weighted by cycles so long kernels dominate, as in the paper's
	// whole-benchmark utilization numbers.
	total := s.Cycles
	if total > 0 {
		s.DRAMUtil = (s.DRAMUtil*float64(total-o.Cycles) + o.DRAMUtil*float64(o.Cycles)) / float64(total)
	}
}
