package gpu

import (
	"testing"

	"haccrg/internal/isa"
)

// Register conventions used throughout these tests.
const (
	rTid  = isa.Reg(1)
	rGtid = isa.Reg(2)
	rAddr = isa.Reg(3)
	rVal  = isa.Reg(4)
	rTmp  = isa.Reg(5)
	rI    = isa.Reg(6)
	rN    = isa.Reg(7)
	rBase = isa.Reg(8)
	rTwo  = isa.Reg(9)
)

func testDevice(t *testing.T, globalBytes int) *Device {
	t.Helper()
	d, err := NewDevice(TestConfig(), globalBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// vecAddKernel computes out[gtid] = in[gtid] + 1 over u32 data.
// Param 0 = in base, param 1 = out base.
func vecAddKernel(grid, blockDim int, in, out uint64) *Kernel {
	b := isa.NewBuilder("vecadd")
	b.Sreg(rGtid, isa.SregGtid)
	b.Ldp(rBase, 0)
	b.Muli(rTmp, rGtid, 4)
	b.Add(rAddr, rBase, rTmp)
	b.Ld(rVal, isa.SpaceGlobal, rAddr, 0, 4)
	b.Addi(rVal, rVal, 1)
	b.Ldp(rBase, 1)
	b.Add(rAddr, rBase, rTmp)
	b.St(isa.SpaceGlobal, rAddr, 0, rVal, 4)
	b.Exit()
	return &Kernel{
		Name: "vecadd", Prog: b.MustBuild(),
		GridDim: grid, BlockDim: blockDim,
		Params: []uint64{in, out},
	}
}

func TestVecAdd(t *testing.T) {
	d := testDevice(t, 1<<20)
	n := 4 * 64 // 4 blocks of 64 threads
	in := d.MustMalloc(n * 4)
	out := d.MustMalloc(n * 4)
	for i := 0; i < n; i++ {
		d.Global.SetU32(int(in)/4+i, uint32(i*3))
	}
	st, err := d.Launch(vecAddKernel(4, 64, in, out))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := d.Global.U32(int(out)/4 + i); got != uint32(i*3+1) {
			t.Fatalf("out[%d] = %d, want %d", i, got, i*3+1)
		}
	}
	if st.Cycles <= 0 {
		t.Error("no cycles simulated")
	}
	if st.GlobalReads != int64(n) || st.GlobalWrites != int64(n) {
		t.Errorf("global reads/writes = %d/%d, want %d/%d", st.GlobalReads, st.GlobalWrites, n, n)
	}
	if st.ThreadInstrs == 0 || st.WarpInstrs == 0 {
		t.Error("instruction counters empty")
	}
}

func TestDivergenceIfElsePattern(t *testing.T) {
	// Threads with tid < 16 write 100+tid, others write 200+tid.
	d := testDevice(t, 1<<16)
	out := d.MustMalloc(64 * 4)
	b := isa.NewBuilder("div")
	b.Sreg(rTid, isa.SregTid)
	b.Setpi(0, isa.CmpLT, rTid, 16)
	b.Movi(rVal, 200)
	b.If(0)
	b.Movi(rVal, 100)
	b.EndIf()
	b.Add(rVal, rVal, rTid)
	b.Ldp(rBase, 0)
	b.Muli(rTmp, rTid, 4)
	b.Add(rAddr, rBase, rTmp)
	b.St(isa.SpaceGlobal, rAddr, 0, rVal, 4)
	b.Exit()
	k := &Kernel{Name: "div", Prog: b.MustBuild(), GridDim: 1, BlockDim: 64, Params: []uint64{out}}
	st, err := d.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		want := uint32(200 + i)
		if i < 16 {
			want = uint32(100 + i)
		}
		if got := d.Global.U32(int(out)/4 + i); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	if st.Divergences == 0 {
		t.Error("expected divergence in warp 0")
	}
}

func TestDivergentLoop(t *testing.T) {
	// Each thread loops tid%7+1 times, accumulating; threads in a warp
	// exit at different iterations — divergence-stack stress.
	d := testDevice(t, 1<<16)
	out := d.MustMalloc(96 * 4)
	b := isa.NewBuilder("loop")
	b.Sreg(rTid, isa.SregTid)
	b.Remi(rN, rTid, 7)
	b.Addi(rN, rN, 1) // n = tid%7 + 1
	b.Movi(rI, 0)
	b.Movi(rVal, 0)
	b.Setp(0, isa.CmpLT, rI, rN)
	b.While(0)
	b.Add(rVal, rVal, rI)
	b.Addi(rI, rI, 1)
	b.Setp(0, isa.CmpLT, rI, rN)
	b.EndWhile()
	b.Ldp(rBase, 0)
	b.Muli(rTmp, rTid, 4)
	b.Add(rAddr, rBase, rTmp)
	b.St(isa.SpaceGlobal, rAddr, 0, rVal, 4)
	b.Exit()
	k := &Kernel{Name: "loop", Prog: b.MustBuild(), GridDim: 1, BlockDim: 96, Params: []uint64{out}}
	if _, err := d.Launch(k); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 96; i++ {
		n := i%7 + 1
		want := uint32(n * (n - 1) / 2)
		if got := d.Global.U32(int(out)/4 + i); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestSharedMemoryReverse(t *testing.T) {
	// Block loads tid into shared, barriers, writes shared[dim-1-tid].
	d := testDevice(t, 1<<16)
	out := d.MustMalloc(128 * 4)
	b := isa.NewBuilder("rev")
	b.Sreg(rTid, isa.SregTid)
	b.Sreg(rN, isa.SregNtid)
	b.Muli(rAddr, rTid, 4)
	b.St(isa.SpaceShared, rAddr, 0, rTid, 4)
	b.Bar()
	b.Subi(rTmp, rN, 1)
	b.Sub(rTmp, rTmp, rTid) // dim-1-tid
	b.Muli(rTmp, rTmp, 4)
	b.Ld(rVal, isa.SpaceShared, rTmp, 0, 4)
	b.Sreg(rGtid, isa.SregGtid)
	b.Ldp(rBase, 0)
	b.Muli(rTmp, rGtid, 4)
	b.Add(rAddr, rBase, rTmp)
	b.St(isa.SpaceGlobal, rAddr, 0, rVal, 4)
	b.Exit()
	k := &Kernel{
		Name: "rev", Prog: b.MustBuild(), GridDim: 2, BlockDim: 64,
		SharedBytes: 64 * 4, Params: []uint64{out},
	}
	st, err := d.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	for blk := 0; blk < 2; blk++ {
		for i := 0; i < 64; i++ {
			want := uint32(63 - i)
			if got := d.Global.U32(int(out)/4 + blk*64 + i); got != want {
				t.Fatalf("block %d out[%d] = %d, want %d", blk, i, got, want)
			}
		}
	}
	if st.Barriers != 2 {
		t.Errorf("barriers = %d, want 2 (one per block)", st.Barriers)
	}
	if st.SharedReads != 128 || st.SharedWrites != 128 {
		t.Errorf("shared reads/writes = %d/%d, want 128/128", st.SharedReads, st.SharedWrites)
	}
}

func TestGlobalAtomicAdd(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctr := d.MustMalloc(4)
	b := isa.NewBuilder("atom")
	b.Ldp(rAddr, 0)
	b.Movi(rVal, 1)
	b.Atom(rTmp, isa.AtomAdd, isa.SpaceGlobal, rAddr, 0, rVal, 0)
	b.Exit()
	k := &Kernel{Name: "atom", Prog: b.MustBuild(), GridDim: 3, BlockDim: 96, Params: []uint64{ctr}}
	st, err := d.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Global.U32(int(ctr) / 4); got != 3*96 {
		t.Fatalf("counter = %d, want %d", got, 3*96)
	}
	if st.GlobalAtomics != 3*96 {
		t.Errorf("atomics = %d, want %d", st.GlobalAtomics, 3*96)
	}
}

func TestAtomicCASAndInc(t *testing.T) {
	d := testDevice(t, 1<<16)
	base := d.MustMalloc(8)
	d.Global.SetU32(int(base)/4, 7)
	b := isa.NewBuilder("cas")
	b.Ldp(rAddr, 0)
	b.Sreg(rTid, isa.SregTid)
	// CAS(7 -> 99): exactly one thread wins.
	b.Movi(rVal, 7)
	b.Movi(rTmp, 99)
	b.Atom(rI, isa.AtomCAS, isa.SpaceGlobal, rAddr, 0, rVal, rTmp)
	// atomicInc with wrap at 10 on the second word.
	b.Movi(rVal, 10)
	b.Atom(rI, isa.AtomInc, isa.SpaceGlobal, rAddr, 4, rVal, 0)
	b.Exit()
	k := &Kernel{Name: "cas", Prog: b.MustBuild(), GridDim: 1, BlockDim: 32, Params: []uint64{base}}
	if _, err := d.Launch(k); err != nil {
		t.Fatal(err)
	}
	if got := d.Global.U32(int(base) / 4); got != 99 {
		t.Fatalf("CAS result = %d, want 99", got)
	}
	// 32 atomicInc with limit 10: counts 0..10 then wraps to 0; after
	// 32 ops: 32 mod 11 = 10.
	if got := d.Global.U32(int(base)/4 + 1); got != 10 {
		t.Fatalf("inc result = %d, want 10", got)
	}
}

func TestFenceIncrementsWarpClock(t *testing.T) {
	d := testDevice(t, 1<<16)
	out := d.MustMalloc(4)
	b := isa.NewBuilder("fence")
	b.Ldp(rAddr, 0)
	b.Movi(rVal, 5)
	b.St(isa.SpaceGlobal, rAddr, 0, rVal, 4)
	b.Membar()
	b.Membar()
	b.Exit()
	k := &Kernel{Name: "fence", Prog: b.MustBuild(), GridDim: 1, BlockDim: 64, Params: []uint64{out}}
	st, err := d.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	// 2 warps x 2 fences.
	if st.Fences != 4 {
		t.Errorf("fences = %d, want 4", st.Fences)
	}
}

func TestMultiKernelLaunchesAccumulate(t *testing.T) {
	d := testDevice(t, 1<<20)
	in := d.MustMalloc(256 * 4)
	out := d.MustMalloc(256 * 4)
	k := vecAddKernel(4, 64, in, out)
	s1, err := d.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	k2 := vecAddKernel(4, 64, out, in)
	s2, err := d.Launch(k2)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Global.U32(int(in) / 4); got != 2 {
		t.Fatalf("chained kernels: in[0] = %d, want 2", got)
	}
	total := *s1
	total.Add(s2)
	if total.GlobalReads != s1.GlobalReads+s2.GlobalReads {
		t.Error("stats Add lost reads")
	}
}

func TestOutOfBoundsReported(t *testing.T) {
	d := testDevice(t, 1024)
	b := isa.NewBuilder("oob")
	b.Movi(rAddr, 1<<30)
	b.Ld(rVal, isa.SpaceGlobal, rAddr, 0, 4)
	b.Exit()
	k := &Kernel{Name: "oob", Prog: b.MustBuild(), GridDim: 1, BlockDim: 32}
	if _, err := d.Launch(k); err == nil {
		t.Fatal("out-of-bounds access did not error")
	}
}

func TestSharedOutOfBlockPartitionReported(t *testing.T) {
	d := testDevice(t, 1024)
	b := isa.NewBuilder("oob-shared")
	b.Movi(rAddr, 8192)
	b.Ld(rVal, isa.SpaceShared, rAddr, 0, 4)
	b.Exit()
	k := &Kernel{Name: "oob-shared", Prog: b.MustBuild(), GridDim: 1, BlockDim: 32, SharedBytes: 256}
	if _, err := d.Launch(k); err == nil {
		t.Fatal("shared access beyond the block's partition did not error")
	}
}

func TestMallocExhaustion(t *testing.T) {
	d := testDevice(t, 1024)
	if _, err := d.Malloc(512); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Malloc(1024); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	d.ResetAllocator()
	if _, err := d.Malloc(1024); err != nil {
		t.Fatalf("allocator reset failed: %v", err)
	}
}

func TestKernelValidation(t *testing.T) {
	d := testDevice(t, 1024)
	b := isa.NewBuilder("v")
	b.Exit()
	prog := b.MustBuild()
	cases := []*Kernel{
		{Name: "no-prog", GridDim: 1, BlockDim: 32},
		{Name: "zero-grid", Prog: prog, GridDim: 0, BlockDim: 32},
		{Name: "huge-block", Prog: prog, GridDim: 1, BlockDim: 4096},
		{Name: "huge-shared", Prog: prog, GridDim: 1, BlockDim: 32, SharedBytes: 1 << 20},
	}
	for _, k := range cases {
		if _, err := d.Launch(k); err == nil {
			t.Errorf("kernel %q launched, want error", k.Name)
		}
	}
}

func TestMoreBlocksThanResidency(t *testing.T) {
	// 64 blocks on a 4-SM device: blocks must queue and all complete.
	d := testDevice(t, 1<<20)
	n := 64 * 32
	in := d.MustMalloc(n * 4)
	out := d.MustMalloc(n * 4)
	st, err := d.Launch(vecAddKernel(64, 32, in, out))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := d.Global.U32(int(out)/4 + i); got != 1 {
			t.Fatalf("out[%d] = %d, want 1", i, got)
		}
	}
	if st.GlobalWrites != int64(n) {
		t.Errorf("writes = %d, want %d", st.GlobalWrites, n)
	}
}

func TestNonWarpMultipleBlockDim(t *testing.T) {
	d := testDevice(t, 1<<16)
	out := d.MustMalloc(50 * 4)
	st, err := d.Launch(vecAddKernel(1, 50, out, out))
	if err != nil {
		t.Fatal(err)
	}
	// 50 threads = 1 full warp + 18-lane tail warp.
	if st.GlobalWrites != 50 {
		t.Errorf("writes = %d, want 50", st.GlobalWrites)
	}
}

func TestSelpAndPredicates(t *testing.T) {
	d := testDevice(t, 1<<16)
	out := d.MustMalloc(32 * 4)
	b := isa.NewBuilder("selp")
	b.Sreg(rTid, isa.SregTid)
	b.Setpi(2, isa.CmpGE, rTid, 10)
	b.Movi(rVal, 111)
	b.Movi(rTmp, 222)
	b.Selp(rI, 2, rVal, rTmp) // tid>=10 ? 111 : 222
	b.Ldp(rBase, 0)
	b.Muli(rAddr, rTid, 4)
	b.Add(rAddr, rBase, rAddr)
	b.St(isa.SpaceGlobal, rAddr, 0, rI, 4)
	b.Exit()
	k := &Kernel{Name: "selp", Prog: b.MustBuild(), GridDim: 1, BlockDim: 32, Params: []uint64{out}}
	if _, err := d.Launch(k); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		want := uint32(222)
		if i >= 10 {
			want = 111
		}
		if got := d.Global.U32(int(out)/4 + i); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestFloatPipeline(t *testing.T) {
	d := testDevice(t, 1<<16)
	out := d.MustMalloc(32 * 4)
	b := isa.NewBuilder("fp")
	b.Sreg(rTid, isa.SregTid)
	b.ItoF(rVal, rTid)
	b.MovF(rTmp, 2.0)
	b.FMul(rVal, rVal, rTmp) // 2*tid
	b.MovF(rTmp, 1.0)
	b.FAdd(rVal, rVal, rTmp) // 2*tid+1
	b.FSqrt(rI, rVal)
	b.FMul(rI, rI, rI) // back to ~2*tid+1
	b.Ldp(rBase, 0)
	b.Muli(rAddr, rTid, 4)
	b.Add(rAddr, rBase, rAddr)
	b.StF(isa.SpaceGlobal, rAddr, 0, rI)
	b.Exit()
	k := &Kernel{Name: "fp", Prog: b.MustBuild(), GridDim: 1, BlockDim: 32, Params: []uint64{out}}
	if _, err := d.Launch(k); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		got := d.Global.F32(int(out)/4 + i)
		want := float32(2*i + 1)
		if got < want-0.01 || got > want+0.01 {
			t.Fatalf("out[%d] = %v, want ~%v", i, got, want)
		}
	}
}

func TestDeterministicCycles(t *testing.T) {
	run := func() int64 {
		d := testDevice(t, 1<<20)
		in := d.MustMalloc(1024 * 4)
		out := d.MustMalloc(1024 * 4)
		st, err := d.Launch(vecAddKernel(16, 64, in, out))
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("simulation not deterministic: %d vs %d cycles", a, b)
	}
}

func TestLockMarkersCriticalSection(t *testing.T) {
	// All 32 threads increment a counter under a CAS lock using the
	// GPU-safe retry-loop pattern (a naive intra-warp spin lock
	// deadlocks under SIMT, on this simulator as on pre-Volta GPUs).
	const rDone = rTwo
	d := testDevice(t, 1<<16)
	lock := d.MustMalloc(4)
	data := d.MustMalloc(4)
	b := isa.NewBuilder("lock")
	b.Ldp(rAddr, 0)
	b.Ldp(rBase, 1)
	b.Movi(rDone, 0)
	b.Setpi(1, isa.CmpEQ, rDone, 0)
	b.While(1)
	b.Movi(rVal, 0)
	b.Movi(rTmp, 1)
	b.Atom(rI, isa.AtomCAS, isa.SpaceGlobal, rAddr, 0, rVal, rTmp)
	b.Setpi(0, isa.CmpEQ, rI, 0) // p0: this lane acquired the lock
	b.If(0)
	b.AcqMark(rAddr)
	b.Ld(rVal, isa.SpaceGlobal, rBase, 0, 4)
	b.Addi(rVal, rVal, 1)
	b.St(isa.SpaceGlobal, rBase, 0, rVal, 4)
	b.Membar()
	b.RelMark()
	b.Movi(rN, 0)
	b.Atom(rI, isa.AtomExch, isa.SpaceGlobal, rAddr, 0, rN, 0)
	b.Movi(rDone, 1)
	b.EndIf()
	b.Setpi(1, isa.CmpEQ, rDone, 0)
	b.EndWhile()
	b.Exit()
	k := &Kernel{Name: "lock", Prog: b.MustBuild(), GridDim: 1, BlockDim: 32, Params: []uint64{lock, data}}
	if _, err := d.Launch(k); err != nil {
		t.Fatal(err)
	}
	if got := d.Global.U32(int(data) / 4); got != 32 {
		t.Fatalf("critical-section counter = %d, want 32", got)
	}
}
