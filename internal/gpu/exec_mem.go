package gpu

import (
	"fmt"
	"math"

	"haccrg/internal/isa"
	"haccrg/internal/mem"
)

// memInstr executes one LD/ST/ATOM warp instruction: functional effect
// at issue, timing through the shared-memory banks or the
// L1/NoC/partition path, plus the race-detection event.
func (s *sm) memInstr(w *warp, in *isa.Instr, execMask uint64, cycle int64, k *Kernel, st *LaunchStats) {
	issueDone := cycle + s.dev.cfg.IssueInterval()

	switch in.Space {
	case isa.SpaceParam:
		for l := range w.lanes {
			if execMask&(1<<uint(l)) == 0 {
				continue
			}
			ln := &w.lanes[l]
			addr := ln.regs[in.SrcA] + uint64(in.Imm)
			idx := int(addr / 8)
			if in.Op != isa.OpLd || idx >= len(k.Params) {
				s.fail(fmt.Errorf("gpu: kernel %q pc %d: bad param access (idx %d of %d)",
					k.Name, w.pc, idx, len(k.Params)))
				continue
			}
			ln.regs[in.Dst] = k.Params[idx]
		}
		w.readyAt = issueDone
		return

	case isa.SpaceShared:
		s.sharedInstr(w, in, execMask, cycle, k, st)
		return

	case isa.SpaceGlobal:
		s.globalInstr(w, in, execMask, cycle, k, st, false)
		return

	case isa.SpaceLocal:
		s.globalInstr(w, in, execMask, cycle, k, st, true)
		return
	}
}

// sharedInstr handles shared-memory accesses: bank-conflict timing and
// the shared-memory RDU event. Shared atomics serialize per address.
func (s *sm) sharedInstr(w *warp, in *isa.Instr, execMask uint64, cycle int64, k *Kernel, st *LaunchStats) {
	b := w.block
	var tileAddrs []uint64
	ev := WarpMemEvent{
		Space:       isa.SpaceShared,
		Write:       in.Op == isa.OpSt,
		Atomic:      in.Op == isa.OpAtom,
		PC:          w.pc,
		SM:          s.id,
		Block:       b.id,
		WarpInBlock: w.inBlock,
		Kernel:      k.Name,
		Stmt:        in.Line,
		SyncID:      b.syncID,
		FenceID:     w.fenceID,
		Cycle:       cycle,
	}

	for l := range w.lanes {
		if execMask&(1<<uint(l)) == 0 {
			continue
		}
		ln := &w.lanes[l]
		rel := ln.regs[in.SrcA] + uint64(in.Imm)
		if rel+uint64(in.Size) > uint64(b.sharedSize) {
			s.fail(fmt.Errorf("gpu: kernel %q pc %d: shared access %#x+%d outside block's %d bytes",
				k.Name, w.pc, rel, in.Size, b.sharedSize))
			continue
		}
		tile := uint64(b.sharedBase) + rel
		tileAddrs = append(tileAddrs, tile)
		if err := s.sharedLane(in, ln, tile); err != nil {
			s.fail(err)
			continue
		}
		ev.Lanes = append(ev.Lanes, LaneAccess{
			Lane:      l,
			Tid:       w.tidOf(l),
			GTid:      b.id*b.dim + w.tidOf(l),
			Addr:      tile,
			Size:      in.Size,
			AtomicSig: ln.sig,
			InCrit:    ln.critDepth > 0,
			Arrival:   cycle,
		})
	}

	switch in.Op {
	case isa.OpLd:
		st.SharedReads += int64(len(ev.Lanes))
	case isa.OpSt:
		st.SharedWrites += int64(len(ev.Lanes))
	case isa.OpAtom:
		st.SharedAtomics += int64(len(ev.Lanes))
	}

	conflicts := s.shared.ConflictCyclesFor(tileAddrs)
	lat := s.dev.cfg.SharedLatency + conflicts - 1
	if in.Op == isa.OpAtom {
		lat += conflicts // read-modify-write pass
	}
	stall := s.dev.detector.WarpMem(&ev)
	st.DetectorStall += stall
	w.readyAt = cycle + s.dev.cfg.IssueInterval() + lat + stall
}

// sharedLane applies the functional effect of one lane's shared access.
func (s *sm) sharedLane(in *isa.Instr, ln *lane, tile uint64) error {
	m := s.shared.Mem
	switch in.Op {
	case isa.OpLd:
		return loadReg(m, in, ln, tile)
	case isa.OpSt:
		return storeReg(m, in, ln, tile)
	case isa.OpAtom:
		return atomicApply(m, in, ln, tile)
	}
	return nil
}

// globalInstr handles device-memory accesses (global and local
// spaces): coalescing, L1, interconnect, partitions, and the global
// RDU event for global-space accesses.
func (s *sm) globalInstr(w *warp, in *isa.Instr, execMask uint64, cycle int64, k *Kernel, st *LaunchStats, local bool) {
	dev := s.dev
	b := w.block
	ws := len(w.lanes)

	type laneAddr struct {
		lane int
		addr uint64
	}
	addrs := make([]laneAddr, 0, ws)
	flat := make([]uint64, 0, ws)
	for l := 0; l < ws; l++ {
		if execMask&(1<<uint(l)) == 0 {
			continue
		}
		ln := &w.lanes[l]
		a := ln.regs[in.SrcA] + uint64(in.Imm)
		if local {
			gtid := uint64(b.id*b.dim + w.tidOf(l))
			a = dev.localBase + gtid*uint64(dev.cfg.LocalBytesPerThread) + a
		}
		addrs = append(addrs, laneAddr{l, a})
		flat = append(flat, a)
	}
	if len(addrs) == 0 {
		w.readyAt = cycle + dev.cfg.IssueInterval()
		return
	}

	// Functional effect, in lane order (atomics thereby serialize
	// deterministically within the warp).
	for _, la := range addrs {
		ln := &w.lanes[la.lane]
		var err error
		switch in.Op {
		case isa.OpLd:
			err = loadReg(dev.Global, in, ln, la.addr)
		case isa.OpSt:
			err = storeReg(dev.Global, in, ln, la.addr)
		case isa.OpAtom:
			err = atomicApply(dev.Global, in, ln, la.addr)
		}
		if err != nil {
			s.fail(fmt.Errorf("gpu: kernel %q pc %d: %w", k.Name, w.pc, err))
		}
	}

	if local {
		st.LocalAccesses += int64(len(addrs))
	} else {
		switch in.Op {
		case isa.OpLd:
			st.GlobalReads += int64(len(addrs))
		case isa.OpSt:
			st.GlobalWrites += int64(len(addrs))
		case isa.OpAtom:
			st.GlobalAtomics += int64(len(addrs))
		}
		b.globalSinceBar = true
	}

	// Timing. Atomics issue one partition transaction per unique
	// address; loads/stores coalesce into segments.
	//
	// Accesses inside a critical section behave as volatile (bypass
	// the non-coherent L1): correct GPU lock code must declare the
	// protected data volatile or it breaks under L1 caching, as the
	// paper's Section IV-B discussion notes.
	volatileCS := true
	for _, la := range addrs {
		if w.lanes[la.lane].critDepth == 0 {
			volatileCS = false
			break
		}
	}
	seg := dev.cfg.SegmentBytes
	issueDone := cycle + dev.cfg.IssueInterval()
	maxDone := issueDone
	lineHit := make(map[uint64]bool)
	lineArr := make(map[uint64]int64)
	lineFill := make(map[uint64]int64)

	if in.Op == isa.OpAtom {
		seen := make(map[uint64]int64)
		for _, la := range addrs {
			lineAddr := la.addr &^ uint64(seg-1)
			if done, dup := seen[la.addr]; dup {
				if done > maxDone {
					maxDone = done
				}
				continue
			}
			s.l1.Invalidate(lineAddr) // atomics operate at the partition
			part := dev.PartitionFor(la.addr)
			arrive := dev.net.Send(part, cycle+1, 8)
			l2done := dev.parts[part].Access(arrive, lineAddr, true, true, false)
			done := dev.net.Reply(part, l2done, 8)
			seen[la.addr] = done
			lineArr[la.addr] = arrive
			if done > maxDone {
				maxDone = done
			}
		}
		w.readyAt = maxDone
	} else {
		write := in.Op == isa.OpSt
		lines := mem.Coalesce(flat, int(in.Size), seg)
		for _, line := range lines {
			part := dev.PartitionFor(line)
			if volatileCS && !write {
				s.l1.Invalidate(line) // volatile load: straight to L2
				arrive := dev.net.Send(part, cycle+dev.cfg.L1Latency, 0)
				l2done := dev.parts[part].Access(arrive, line, false, false, false)
				done := dev.net.Reply(part, l2done, seg)
				lineHit[line] = false
				lineArr[line] = arrive
				if done > maxDone {
					maxDone = done
				}
				continue
			}
			res := s.l1.Access(line, write, cycle)
			if write {
				// Write-through, no-allocate: the store always goes to
				// the partition; it does not block the warp.
				arrive := dev.net.Send(part, cycle+1, seg)
				done := dev.parts[part].Access(arrive, line, true, false, false)
				lineHit[line] = res.Hit
				lineArr[line] = arrive
				if done > w.storeDone {
					w.storeDone = done
				}
				continue
			}
			if res.Hit {
				done := cycle + dev.cfg.L1Latency
				lineHit[line] = true
				lineArr[line] = done
				if f, ok := s.l1.FillStamp(line); ok {
					lineFill[line] = f
				}
				if done > maxDone {
					maxDone = done
				}
				continue
			}
			// MSHR merge: an in-flight fill of the same line serves
			// this miss too, without a duplicate transaction.
			if fill, inflight := s.mshr[line]; inflight && fill > cycle {
				lineHit[line] = false
				lineArr[line] = fill
				if fill > maxDone {
					maxDone = fill
				}
				continue
			}
			arrive := dev.net.Send(part, cycle+dev.cfg.L1Latency, 0)
			l2done := dev.parts[part].Access(arrive, line, false, false, false)
			done := dev.net.Reply(part, l2done, seg)
			s.mshr[line] = done
			if len(s.mshr) > 4*dev.cfg.MaxThreadsPerSM {
				for l, f := range s.mshr {
					if f <= cycle {
						delete(s.mshr, l)
					}
				}
			}
			lineHit[line] = false
			lineArr[line] = arrive
			if done > maxDone {
				maxDone = done
			}
		}
		if write {
			w.readyAt = issueDone
		} else {
			w.readyAt = maxDone
		}
	}

	if local {
		return // per-thread memory cannot race
	}

	// Race-detection event: one lane access per active lane, carrying
	// the metadata the paper's request packets transport.
	ev := WarpMemEvent{
		Space:       isa.SpaceGlobal,
		Write:       in.Op == isa.OpSt,
		Atomic:      in.Op == isa.OpAtom,
		PC:          w.pc,
		SM:          s.id,
		Block:       b.id,
		WarpInBlock: w.inBlock,
		Kernel:      k.Name,
		Stmt:        in.Line,
		SyncID:      b.syncID,
		FenceID:     w.fenceID,
		Cycle:       cycle,
	}
	for _, la := range addrs {
		ln := &w.lanes[la.lane]
		key := la.addr
		if in.Op != isa.OpAtom {
			key = la.addr &^ uint64(seg-1)
		}
		arrive, ok := lineArr[key]
		if !ok {
			arrive = cycle + dev.cfg.L1Latency
		}
		ev.Lanes = append(ev.Lanes, LaneAccess{
			Lane:      la.lane,
			Tid:       w.tidOf(la.lane),
			GTid:      b.id*b.dim + w.tidOf(la.lane),
			Addr:      la.addr,
			Size:      in.Size,
			AtomicSig: ln.sig,
			InCrit:    ln.critDepth > 0,
			L1Hit:     lineHit[key],
			L1Fill:    lineFill[key],
			Arrival:   arrive,
		})
	}
	stall := dev.detector.WarpMem(&ev)
	st.DetectorStall += stall
	if stall > 0 {
		w.readyAt += stall
	}
}

// loadReg performs a lane load into the destination register.
func loadReg(m *mem.Memory, in *isa.Instr, ln *lane, addr uint64) error {
	if in.Float && in.Size == 4 {
		f, err := m.LoadF32(addr)
		if err != nil {
			return err
		}
		ln.regs[in.Dst] = math.Float64bits(f)
		return nil
	}
	v, err := m.Load(addr, int(in.Size))
	if err != nil {
		return err
	}
	ln.regs[in.Dst] = v
	return nil
}

// storeReg performs a lane store from the source register.
func storeReg(m *mem.Memory, in *isa.Instr, ln *lane, addr uint64) error {
	if in.Float && in.Size == 4 {
		return m.StoreF32(addr, math.Float64frombits(ln.regs[in.SrcB]))
	}
	return m.Store(addr, int(in.Size), ln.regs[in.SrcB])
}

// atomicApply performs the read-modify-write of an atomic for one
// lane; the old value lands in the destination register.
func atomicApply(m *mem.Memory, in *isa.Instr, ln *lane, addr uint64) error {
	old, err := m.Load(addr, int(in.Size))
	if err != nil {
		return err
	}
	bOp := ln.regs[in.SrcB]
	cOp := ln.regs[in.SrcC]
	var nv uint64
	switch in.AOp {
	case isa.AtomAdd:
		nv = old + bOp
	case isa.AtomInc:
		if old >= bOp {
			nv = 0
		} else {
			nv = old + 1
		}
	case isa.AtomExch:
		nv = bOp
	case isa.AtomCAS:
		if old == bOp {
			nv = cOp
		} else {
			nv = old
		}
	case isa.AtomMin:
		nv = old
		if int64(bOp) < int64(old) {
			nv = bOp
		}
	case isa.AtomMax:
		nv = old
		if int64(bOp) > int64(old) {
			nv = bOp
		}
	}
	if err := m.Store(addr, int(in.Size), nv); err != nil {
		return err
	}
	ln.regs[in.Dst] = old
	return nil
}
