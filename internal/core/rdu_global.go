package core

import (
	"haccrg/internal/fault"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// lineArrival pairs one distinct demand line with the latest lane
// arrival targeting it.
type lineArrival struct {
	line    uint64
	arrival int64
}

// laneAddr pairs one distinct lane byte address with the first lane
// (tid) that touched it within a warp instruction.
type laneAddr struct {
	addr uint64
	tid  int
}

// insertArrival records a lane's (line, arrival) in a slice kept
// sorted by line, retaining the maximum arrival per line. A warp has
// at most WarpSize lanes, so insertion sort into a reused buffer beats
// the map-plus-key-sort the hot path used to allocate — while visiting
// lines in the same ascending address order, which partition port and
// L2 state require for deterministic cycle counts.
func insertArrival(s []lineArrival, line uint64, arrival int64) []lineArrival {
	i := 0
	for ; i < len(s); i++ {
		if s[i].line == line {
			if arrival > s[i].arrival {
				s[i].arrival = arrival
			}
			return s
		}
		if s[i].line > line {
			break
		}
	}
	s = append(s, lineArrival{})
	copy(s[i+1:], s[i:])
	s[i] = lineArrival{line: line, arrival: arrival}
	return s
}

// insertLine records a distinct value in an ascending-sorted slice
// (the Figure 8 shadow-line working set; same determinism argument as
// insertArrival).
func insertLine(s []uint64, v uint64) []uint64 {
	i := 0
	for ; i < len(s); i++ {
		if s[i] == v {
			return s
		}
		if s[i] > v {
			break
		}
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// partitionOf maps a byte address to its memory partition through the
// line-interleaved contract documented on gpu.Env.PartitionFor,
// without the dynamic dispatch of the Env call — the per-lane cost the
// enqueue path cares about.
func (d *Detector) partitionOf(addr uint64) int {
	line := addr >> d.partShift
	if d.partMask != 0 {
		return int(line & d.partMask)
	}
	return int(line % d.parts)
}

// globalRDU runs the global-memory Race Detection Units for one warp
// instruction. Detection happens at the memory partitions where the
// coalesced transactions arrive; the RDU fetches the shadow entries
// covering the transaction through the partition's own L2/DRAM path
// (shadow traffic never blocks the warp but pollutes the L2 — the
// overhead mechanism of Figures 7 and 9).
//
// With the sharded engine live, the lane checks are scattered to the
// partitions' worker rings instead of running inline; the timing model
// and the intra-warp check stay on the simulation thread, which owns
// the partition/L2 state and the report order.
func (d *Detector) globalRDU(ev *gpu.WarpMemEvent) int64 {
	gran := uint64(d.opt.GlobalGranularity)

	// Witness-seeded quarantine: a statically-proven racy granule
	// reports on first touch, before any filtering or engine dispatch.
	// Running here on the simulation thread keeps the report sequence —
	// and therefore the merged findings — byte-identical across the
	// serial and sharded engines and under fault plans.
	if d.seedPend != nil {
		d.fireSeeds(ev, gran)
	}

	// Statically-proven race-free site: the RDUs still fetch and write
	// back the shadow lines (an in-memory filter table would not stop
	// the hardware's traffic, and the L2/partition timing state is
	// order-sensitive), but every check — intra-warp WAW, the state
	// machine, sharded scatter — is skipped. No sequence numbers are
	// reserved, so the merge order of the remaining candidates is the
	// serial order with these events absent, on both engines.
	if d.pcFiltered(ev.PC) {
		if d.opt.ModelTraffic {
			d.modelGlobalTraffic(ev, gran)
		}
		d.stats.FilteredChecks += int64(len(ev.Lanes))
		return 0
	}

	if d.gact {
		return d.globalRDUAsync(ev, gran)
	}

	if ev.Write || ev.Atomic {
		d.intraWarpWAW(ev, isa.SpaceGlobal, gran)
	}

	if d.opt.ModelTraffic {
		d.modelGlobalTraffic(ev, gran)
	}

	u := d.gunits[0]
	h := gev{
		write: ev.Write, atomic: ev.Atomic, pc: ev.PC, stmt: ev.Stmt,
		sm: ev.SM, block: ev.Block, syncID: ev.SyncID, fenceID: ev.FenceID,
		cycle: ev.Cycle,
	}
	for i := range ev.Lanes {
		la := &ev.Lanes[i]
		part := -1
		lv := glane{addr: la.Addr, fill: la.L1Fill, sig: la.AtomicSig, tid: int32(la.Tid), flags: laneFlags(la)}
		if u.inj != nil {
			// Each lane check queues at the partition its address maps
			// to; burst overflow drops the check, never the access.
			part = d.partitionOf(la.Addr)
			if !u.admit(part, la.Arrival) {
				continue
			}
			lv.sig = u.saturate(part, lv.sig, lv.flags&laneCrit != 0)
		}
		u.checks++
		if ev.Atomic {
			continue // atomic operations are synchronization accesses
		}
		u.globalCheck(&h, lv, part, gran)
	}
	return 0
}

// fireSeeds reports every pending witness seed whose granule this warp
// instruction touches, in lane order (granules ascending within a
// straddling lane), then retires the seeds. The report carries the
// statically-proven pair as first accessor and the touching lane as
// second, at the touching pc, tagged StaticWitness.
func (d *Detector) fireSeeds(ev *gpu.WarpMemEvent, gran uint64) {
	for i := range ev.Lanes {
		la := &ev.Lanes[i]
		size := uint64(la.Size)
		if size == 0 {
			size = 1
		}
		g0 := la.Addr / gran
		g1 := (la.Addr + size - 1) / gran
		for g := g0; g <= g1; g++ {
			w, ok := d.seedPend[g]
			if !ok {
				continue
			}
			delete(d.seedPend, g)
			kind, cat := KindWAW, CatCrossBlock
			if w.Class == "same-block-waw" {
				cat = CatBarrier
			}
			d.reportProv("StaticWitness", isa.SpaceGlobal, kind, cat, ev.PC, ev.Stmt,
				g, la.Addr, w.Tid, w.Block, la.Tid, ev.Block, ev.Cycle)
			if len(d.seedPend) == 0 {
				d.seedPend = nil
				return
			}
		}
		if d.seedPend == nil {
			return
		}
	}
}

// modelGlobalTraffic injects the RDUs' shadow-memory traffic for one
// warp instruction: per distinct demand line, read the shadow lines
// covering its granule entries, plus one write for the updates. Always
// runs on the simulation thread — the partition and L2 timing state is
// order-sensitive and belongs to the simulator.
func (d *Detector) modelGlobalTraffic(ev *gpu.WarpMemEvent, gran uint64) {
	seg := uint64(d.env.Config().SegmentBytes)
	arrivals := d.scratch.arrivals[:0]
	for i := range ev.Lanes {
		la := &ev.Lanes[i]
		arrivals = insertArrival(arrivals, la.Addr&^(seg-1), la.Arrival)
	}
	d.scratch.arrivals = arrivals
	const entryBytes = 8 // 52-bit entries padded to a power of two
	// Partition port/L2 state makes transaction order matter, so the
	// lines are visited in sorted address order — arbitrary iteration
	// order would perturb cycle counts from run to run.
	for _, lr := range arrivals {
		line, arrival := lr.line, lr.arrival
		part := d.partitionOf(line)
		if d.inj != nil {
			arrival = d.spiked(fault.UnitGlobal, part, arrival)
		}
		// Entries for one demand line span this many shadow lines.
		granules := seg / gran
		span := granules * entryBytes
		shadowAddr := d.env.ShadowBase() + (line/gran)*entryBytes
		for off := uint64(0); off < span; off += seg {
			d.env.ShadowTx(part, arrival, shadowAddr+off, false)
			d.stats.ShadowReads++
		}
		d.env.ShadowTx(part, arrival+1, shadowAddr, true)
		d.stats.ShadowWrites++
	}
}

// globalCheck applies the full HAccRG decision procedure to one lane
// access: sync-ID ordering, lockset priority, the happens-before state
// machine, fence-ID validation of RAW pairs, and the stale-L1 check.
// It touches only shard-local state (shadow slice, injector streams,
// health) plus the immutable options — the property that lets one
// shard per partition run it concurrently. The entry's state lives in
// one packed meta word (packed.go), so the membership, same-thread and
// state tests below are mask/shift/compare ops on a register.
func (u *gshard) globalCheck(h *gev, la glane, part int, gran uint64) {
	g := la.addr / gran
	li := u.lidx(g)
	write := h.write

	if u.inj != nil && u.faultGlobal(part, g, li) {
		return // granule quarantined by the degradation policy
	}

	e := u.shadow.entry(li)
	m := e.meta
	if m&gwPresent == 0 {
		// State 1: first access claims the entry; a protected access
		// stores its lockset, an unprotected one stores the null set
		// (cleared slots are all-zero, so sig needs no store here).
		m = gwPresent | gwPack(uint16(la.tid), uint32(h.block), uint16(h.sm))
		if write {
			m |= gwM
			e.wcyc = h.cycle
		}
		e.meta = m
		e.sync = packSync(h.syncID, h.fenceID)
		if la.flags&laneCrit != 0 {
			e.sig = la.sig
		}
		return
	}

	etid := uint16(m >> gwTid)
	ebid := uint32(m >> gwBid)
	sameBlock := ebid == uint32(h.block)
	sameThread := sameBlock && etid == uint16(la.tid)
	sameWarp := u.d.opt.WarpAware && sameBlock && u.d.sameWarpID(int(etid), int(la.tid))

	// Sync-ID ordering (Section IV-B): accesses from the entry's own
	// block with a newer sync ID are barrier-ordered after the
	// recorded access — refresh the entry, no race possible.
	if sameBlock && e.syncID() != h.syncID {
		claimEntry(e, h, la, write)
		return
	}

	// Lockset has priority in critical sections (Section III-B).
	entryProtected := e.sig != 0
	if entryProtected || la.flags&laneCrit != 0 {
		u.locksetCheck(e, h, la, g, write, sameThread, sameWarp)
		return
	}

	// Happens-before machine (Figure 3, with bid/sid extensions).
	switch m & (gwM | gwS) {
	case 0:
		// State 2: reads from one thread.
		if !write {
			if !sameThread && !sameWarp {
				e.meta = m | gwS
			}
			return
		}
		if sameThread || sameWarp {
			e.setWriter(uint16(la.tid), uint16(h.sm), h.fenceID, h.cycle)
			return
		}
		u.report(isa.SpaceGlobal, KindWAR, hbCategory(sameBlock), h.pc, h.stmt, g, la.addr,
			int(etid), int(ebid), int(la.tid), h.block, h.cycle)
		claimEntry(e, h, la, true)

	case gwM:
		// State 3: written by the recorded thread.
		if sameThread || sameWarp {
			if write {
				e.setWriter(uint16(la.tid), uint16(h.sm), h.fenceID, h.cycle)
			}
			return
		}
		if write {
			u.report(isa.SpaceGlobal, KindWAW, hbCategory(sameBlock), h.pc, h.stmt, g, la.addr,
				int(etid), int(ebid), int(la.tid), h.block, h.cycle)
			claimEntry(e, h, la, true)
			return
		}
		// RAW: the stale-L1 check first (a hit can return stale data
		// regardless of the producer's fence), then the fence-ID
		// comparison against the race register file.
		// A hit is stale only when the cached copy predates the write.
		if u.d.opt.DetectStaleL1 && la.flags&laneHit != 0 && uint16(m>>gwSid) != uint16(h.sm) && la.fill < e.wcyc {
			u.report(isa.SpaceGlobal, KindRAW, CatStaleL1, h.pc, h.stmt, g, la.addr,
				int(etid), int(ebid), int(la.tid), h.block, h.cycle)
			claimEntry(e, h, la, false)
			return
		}
		cur := u.fenceRead(int(ebid), u.d.warpOf(int(etid)))
		if cur == e.fenceID() {
			// The producer has not fenced since its write: the
			// consumer may observe a partial update.
			cat := CatFence
			if sameBlock {
				cat = CatBarrier
			}
			u.report(isa.SpaceGlobal, KindRAW, cat, h.pc, h.stmt, g, la.addr,
				int(etid), int(ebid), int(la.tid), h.block, h.cycle)
		}
		// Fenced or not, the consumer now owns the entry as a reader.
		claimEntry(e, h, la, false)

	default:
		// State 4: read by multiple warps/blocks (any state with S set,
		// including fault-corrupted M+S patterns — same treatment as
		// the struct encoding gave them).
		if !write {
			return
		}
		u.report(isa.SpaceGlobal, KindWAR, hbCategory(sameBlock), h.pc, h.stmt, g, la.addr,
			int(etid), int(ebid), int(la.tid), h.block, h.cycle)
		claimEntry(e, h, la, true)
	}
}

// claimEntry refreshes a shadow entry with the current access (used
// after barrier-ordered handoffs, reported races, and safe
// consumptions). The write cycle is preserved on reads — only a write
// moves the stale-L1 horizon.
func claimEntry(e *packedGlobal, h *gev, la glane, write bool) {
	m := gwPresent | gwPack(uint16(la.tid), uint32(h.block), uint16(h.sm))
	if write {
		m |= gwM
		e.wcyc = h.cycle
	}
	e.meta = m
	e.sync = packSync(h.syncID, h.fenceID)
	if la.flags&laneCrit != 0 {
		e.sig = la.sig
	} else {
		e.sig = 0
	}
}

// hbCategory labels a happens-before race: same-block races are
// missing barriers; cross-block races are the SCAN/KMEANS-style bugs.
func hbCategory(sameBlock bool) Category {
	if sameBlock {
		return CatBarrier
	}
	return CatCrossBlock
}

// locksetCheck implements Section III-B's two racy scenarios:
// disjoint locksets, and mixed protected/unprotected access.
func (u *gshard) locksetCheck(e *packedGlobal, h *gev, la glane,
	g uint64, write, sameThread, sameWarp bool) {
	m := e.meta
	entryModified := m&gwM != 0
	racy := entryModified || write
	entryProtected := e.sig != 0
	inCrit := la.flags&laneCrit != 0
	u.observeFill(e.sig, la.sig)

	if sameThread {
		// Same thread: refresh.
		if write {
			e.meta = m | gwM
			e.sync = e.sync&((1<<32)-1) | uint64(h.fenceID)<<32
			e.wcyc = h.cycle
		}
		if inCrit {
			if entryProtected {
				e.sig = u.d.opt.Bloom.Intersect(e.sig, la.sig)
			} else {
				e.sig = la.sig
			}
		}
		return
	}

	etid := uint16(m >> gwTid)
	ebid := uint32(m >> gwBid)

	switch {
	case entryProtected && inCrit:
		// Both protected: race iff the lockset intersection is null.
		if racy && !u.d.opt.Bloom.MayIntersect(e.sig, la.sig) && !sameWarp {
			u.report(isa.SpaceGlobal, locksetKind(entryModified, write), CatLockset, h.pc, h.stmt, g, la.addr,
				int(etid), int(ebid), int(la.tid), h.block, h.cycle)
			claimEntry(e, h, la, write)
			return
		}
		// The intersection — the set of locks that protected every
		// access so far — is what the shadow entry keeps.
		e.sig = u.d.opt.Bloom.Intersect(e.sig, la.sig)
		if write {
			e.meta = m&^(gwTidField|gwBidField|gwSidField) | gwM |
				gwPack(uint16(la.tid), uint32(h.block), uint16(h.sm))
			e.sync = e.sync&((1<<32)-1) | uint64(h.fenceID)<<32
			e.wcyc = h.cycle
		}

	default:
		// Mixed protected/unprotected access from different threads.
		if racy && !sameWarp {
			u.report(isa.SpaceGlobal, locksetKind(entryModified, write), CatLockset, h.pc, h.stmt, g, la.addr,
				int(etid), int(ebid), int(la.tid), h.block, h.cycle)
		}
		claimEntry(e, h, la, write)
	}
}

// locksetKind labels a critical-section race by its access pair.
func locksetKind(entryModified, write bool) Kind {
	switch {
	case entryModified && write:
		return KindWAW
	case entryModified:
		return KindRAW
	default:
		return KindWAR
	}
}
