package core

import (
	"haccrg/internal/fault"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// lineArrival pairs one distinct demand line with the latest lane
// arrival targeting it.
type lineArrival struct {
	line    uint64
	arrival int64
}

// laneAddr pairs one distinct lane byte address with the first lane
// (tid) that touched it within a warp instruction.
type laneAddr struct {
	addr uint64
	tid  int
}

// insertArrival records a lane's (line, arrival) in a slice kept
// sorted by line, retaining the maximum arrival per line. A warp has
// at most WarpSize lanes, so insertion sort into a reused buffer beats
// the map-plus-key-sort the hot path used to allocate per event —
// while visiting lines in the same ascending address order, which
// partition port and L2 state require for deterministic cycle counts.
func insertArrival(s []lineArrival, line uint64, arrival int64) []lineArrival {
	i := 0
	for ; i < len(s); i++ {
		if s[i].line == line {
			if arrival > s[i].arrival {
				s[i].arrival = arrival
			}
			return s
		}
		if s[i].line > line {
			break
		}
	}
	s = append(s, lineArrival{})
	copy(s[i+1:], s[i:])
	s[i] = lineArrival{line: line, arrival: arrival}
	return s
}

// insertLine records a distinct value in an ascending-sorted slice
// (the Figure 8 shadow-line working set; same determinism argument as
// insertArrival).
func insertLine(s []uint64, v uint64) []uint64 {
	i := 0
	for ; i < len(s); i++ {
		if s[i] == v {
			return s
		}
		if s[i] > v {
			break
		}
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// globalRDU runs the global-memory Race Detection Units for one warp
// instruction. Detection happens at the memory partitions where the
// coalesced transactions arrive; the RDU fetches the shadow entries
// covering the transaction through the partition's own L2/DRAM path
// (shadow traffic never blocks the warp but pollutes the L2 — the
// overhead mechanism of Figures 7 and 9).
func (d *Detector) globalRDU(ev *gpu.WarpMemEvent) int64 {
	gran := uint64(d.opt.GlobalGranularity)

	if ev.Write || ev.Atomic {
		d.intraWarpWAW(ev, isa.SpaceGlobal, gran)
	}

	// Shadow traffic: per distinct demand line, read the shadow lines
	// covering its granule entries, plus one write for the updates.
	if d.opt.ModelTraffic {
		seg := uint64(d.env.Config().SegmentBytes)
		arrivals := d.scratch.arrivals[:0]
		for i := range ev.Lanes {
			la := &ev.Lanes[i]
			arrivals = insertArrival(arrivals, la.Addr&^(seg-1), la.Arrival)
		}
		d.scratch.arrivals = arrivals
		const entryBytes = 8 // 52-bit entries padded to a power of two
		// Partition port/L2 state makes transaction order matter, so the
		// lines are visited in sorted address order — arbitrary iteration
		// order would perturb cycle counts from run to run.
		for _, lr := range arrivals {
			line, arrival := lr.line, lr.arrival
			part := d.env.PartitionFor(line)
			if d.inj != nil {
				arrival = d.spiked(arrival)
			}
			// Entries for one demand line span this many shadow lines.
			granules := seg / gran
			span := granules * entryBytes
			shadowAddr := d.env.ShadowBase() + (line/gran)*entryBytes
			for off := uint64(0); off < span; off += seg {
				d.env.ShadowTx(part, arrival, shadowAddr+off, false)
				d.stats.ShadowReads++
			}
			d.env.ShadowTx(part, arrival+1, shadowAddr, true)
			d.stats.ShadowWrites++
		}
	}

	for i := range ev.Lanes {
		la := &ev.Lanes[i]
		if d.inj != nil {
			// Each lane check queues at the partition its address maps
			// to; burst overflow drops the check, never the access.
			if !d.admit(fault.UnitGlobal, d.env.PartitionFor(la.Addr), la.Arrival) {
				continue
			}
			d.saturate(la)
		}
		d.stats.GlobalChecks++
		if ev.Atomic {
			continue // atomic operations are synchronization accesses
		}
		d.globalCheck(ev, la, gran)
	}
	return 0
}

// globalCheck applies the full HAccRG decision procedure to one lane
// access: sync-ID ordering, lockset priority, the happens-before state
// machine, fence-ID validation of RAW pairs, and the stale-L1 check.
func (d *Detector) globalCheck(ev *gpu.WarpMemEvent, la *gpu.LaneAccess, gran uint64) {
	g := la.Addr / gran
	write := ev.Write

	if d.inj != nil && d.faultGlobal(g) {
		return // granule quarantined by the degradation policy
	}

	e := d.globalShadow.lookup(g)
	if e == nil {
		// State 1: first access claims the entry; a protected access
		// stores its lockset, an unprotected one stores the null set.
		e = d.globalShadow.entry(g)
		*e = globalEntry{
			tid: uint16(la.Tid), bid: uint32(ev.Block), sid: uint16(ev.SM),
			modified: write, shared: false, present: true,
			syncID: ev.SyncID, fenceID: ev.FenceID,
		}
		if write {
			e.wcycle = ev.Cycle
		}
		if la.InCrit {
			e.sig = la.AtomicSig
		}
		return
	}

	sameBlock := e.bid == uint32(ev.Block)
	sameThread := sameBlock && e.tid == uint16(la.Tid)
	sameWarp := d.opt.WarpAware && sameBlock && int(e.tid)/d.warpSize == la.Tid/d.warpSize

	// Sync-ID ordering (Section IV-B): accesses from the entry's own
	// block with a newer sync ID are barrier-ordered after the
	// recorded access — refresh the entry, no race possible.
	if sameBlock && e.syncID != ev.SyncID {
		d.claim(e, ev, la, write)
		return
	}

	// Lockset has priority in critical sections (Section III-B).
	entryProtected := e.sig != 0
	if entryProtected || la.InCrit {
		d.locksetCheck(e, ev, la, g, write, sameThread, sameWarp)
		return
	}

	// Happens-before machine (Figure 3, with bid/sid extensions).
	switch {
	case !e.modified && !e.shared:
		// State 2: reads from one thread.
		if !write {
			if !sameThread && !sameWarp {
				e.shared = true
			}
			return
		}
		if sameThread || sameWarp {
			e.modified = true
			e.tid = uint16(la.Tid)
			e.sid = uint16(ev.SM)
			e.fenceID = ev.FenceID
			e.wcycle = ev.Cycle
			return
		}
		d.report(isa.SpaceGlobal, KindWAR, d.hbCategory(ev, e, sameBlock), ev.PC, ev.Stmt, g, la.Addr,
			int(e.tid), int(e.bid), la.Tid, ev.Block, ev.Cycle)
		d.claim(e, ev, la, true)

	case e.modified && !e.shared:
		// State 3: written by the recorded thread.
		if sameThread || sameWarp {
			if write {
				e.tid = uint16(la.Tid)
				e.sid = uint16(ev.SM)
				e.fenceID = ev.FenceID
				e.wcycle = ev.Cycle
			}
			return
		}
		if write {
			d.report(isa.SpaceGlobal, KindWAW, d.hbCategory(ev, e, sameBlock), ev.PC, ev.Stmt, g, la.Addr,
				int(e.tid), int(e.bid), la.Tid, ev.Block, ev.Cycle)
			d.claim(e, ev, la, true)
			return
		}
		// RAW: the stale-L1 check first (a hit can return stale data
		// regardless of the producer's fence), then the fence-ID
		// comparison against the race register file.
		// A hit is stale only when the cached copy predates the write.
		if d.opt.DetectStaleL1 && la.L1Hit && e.sid != uint16(ev.SM) && la.L1Fill < e.wcycle {
			d.report(isa.SpaceGlobal, KindRAW, CatStaleL1, ev.PC, ev.Stmt, g, la.Addr,
				int(e.tid), int(e.bid), la.Tid, ev.Block, ev.Cycle)
			d.claim(e, ev, la, false)
			return
		}
		d.stats.FenceLookups++
		cur := d.env.CurrentFenceID(int(e.bid), int(e.tid)/d.warpSize)
		if cur == e.fenceID {
			// The producer has not fenced since its write: the
			// consumer may observe a partial update.
			cat := CatFence
			if sameBlock {
				cat = CatBarrier
			}
			d.report(isa.SpaceGlobal, KindRAW, cat, ev.PC, ev.Stmt, g, la.Addr,
				int(e.tid), int(e.bid), la.Tid, ev.Block, ev.Cycle)
		}
		// Fenced or not, the consumer now owns the entry as a reader.
		d.claim(e, ev, la, false)

	default:
		// State 4: read by multiple warps/blocks.
		if !write {
			return
		}
		d.report(isa.SpaceGlobal, KindWAR, d.hbCategory(ev, e, sameBlock), ev.PC, ev.Stmt, g, la.Addr,
			int(e.tid), int(e.bid), la.Tid, ev.Block, ev.Cycle)
		d.claim(e, ev, la, true)
	}
}

// claim refreshes a shadow entry with the current access (used after
// barrier-ordered handoffs, reported races, and safe consumptions).
func (d *Detector) claim(e *globalEntry, ev *gpu.WarpMemEvent, la *gpu.LaneAccess, write bool) {
	e.tid = uint16(la.Tid)
	e.bid = uint32(ev.Block)
	e.sid = uint16(ev.SM)
	e.modified = write
	e.shared = false
	e.syncID = ev.SyncID
	e.fenceID = ev.FenceID
	if write {
		e.wcycle = ev.Cycle
	}
	if la.InCrit {
		e.sig = la.AtomicSig
	} else {
		e.sig = 0
	}
}

// hbCategory labels a happens-before race: same-block races are
// missing barriers; cross-block races are the SCAN/KMEANS-style bugs.
func (d *Detector) hbCategory(_ *gpu.WarpMemEvent, _ *globalEntry, sameBlock bool) Category {
	if sameBlock {
		return CatBarrier
	}
	return CatCrossBlock
}

// locksetCheck implements Section III-B's two racy scenarios:
// disjoint locksets, and mixed protected/unprotected access.
func (d *Detector) locksetCheck(e *globalEntry, ev *gpu.WarpMemEvent, la *gpu.LaneAccess,
	g uint64, write, sameThread, sameWarp bool) {
	racy := e.modified || write
	entryProtected := e.sig != 0
	d.observeFill(e.sig, la.AtomicSig)

	if sameThread {
		// Same thread: refresh.
		e.modified = e.modified || write
		if write {
			e.fenceID = ev.FenceID
			e.wcycle = ev.Cycle
		}
		if la.InCrit {
			if entryProtected {
				e.sig = d.opt.Bloom.Intersect(e.sig, la.AtomicSig)
			} else {
				e.sig = la.AtomicSig
			}
		}
		return
	}

	switch {
	case entryProtected && la.InCrit:
		// Both protected: race iff the lockset intersection is null.
		if racy && !d.opt.Bloom.MayIntersect(e.sig, la.AtomicSig) && !sameWarp {
			d.report(isa.SpaceGlobal, locksetKind(e.modified, write), CatLockset, ev.PC, ev.Stmt, g, la.Addr,
				int(e.tid), int(e.bid), la.Tid, ev.Block, ev.Cycle)
			d.claim(e, ev, la, write)
			return
		}
		// The intersection — the set of locks that protected every
		// access so far — is what the shadow entry keeps.
		e.sig = d.opt.Bloom.Intersect(e.sig, la.AtomicSig)
		e.modified = e.modified || write
		if write {
			e.tid = uint16(la.Tid)
			e.bid = uint32(ev.Block)
			e.sid = uint16(ev.SM)
			e.fenceID = ev.FenceID
			e.wcycle = ev.Cycle
		}

	default:
		// Mixed protected/unprotected access from different threads.
		if racy && !sameWarp {
			d.report(isa.SpaceGlobal, locksetKind(e.modified, write), CatLockset, ev.PC, ev.Stmt, g, la.Addr,
				int(e.tid), int(e.bid), la.Tid, ev.Block, ev.Cycle)
		}
		d.claim(e, ev, la, write)
	}
}

// locksetKind labels a critical-section race by its access pair.
func locksetKind(entryModified, write bool) Kind {
	switch {
	case entryModified && write:
		return KindWAW
	case entryModified:
		return KindRAW
	default:
		return KindWAR
	}
}
