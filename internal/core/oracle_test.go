package core

// Soundness fuzzing against an exact oracle. The oracle detector keeps
// the FULL access history of every shared-memory word per barrier
// epoch and computes conflicts exactly: two accesses to the same word,
// same epoch, different warps, at least one write. HAccRG's shadow
// entries keep only one accessor, so it may legitimately miss some
// conflicts — but at word granularity with warp-aware reporting every
// race HAccRG reports must exist in the oracle's history (no false
// positives), and on conflict-free kernels it must stay silent.

import (
	"fmt"
	"math/rand"
	"testing"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// oracleDetector records exact per-word access histories per epoch.
type oracleDetector struct {
	gpu.NopDetector
	// epoch counter per (sm, block); bumped at barriers and block starts.
	epochs map[[2]int]int
	// history: (sm, granule) -> accesses in the current epoch.
	hist map[[2]uint64][]oracleAccess
	// conflicts found, keyed by (sm, granule).
	conflicts map[[2]uint64]bool
	gran      uint64
}

type oracleAccess struct {
	warp  int
	write bool
	epoch int
}

func newOracle(gran uint64) *oracleDetector {
	return &oracleDetector{
		epochs:    map[[2]int]int{},
		hist:      map[[2]uint64][]oracleAccess{},
		conflicts: map[[2]uint64]bool{},
		gran:      gran,
	}
}

func (o *oracleDetector) WarpMem(ev *gpu.WarpMemEvent) int64 {
	if ev.Space != isa.SpaceShared || ev.Atomic {
		return 0
	}
	epoch := o.epochs[[2]int{ev.SM, ev.Block}]
	for i := range ev.Lanes {
		la := &ev.Lanes[i]
		key := [2]uint64{uint64(ev.SM), la.Addr / o.gran}
		warp := la.Tid / 32
		for _, prev := range o.hist[key] {
			if prev.epoch == epoch && prev.warp != warp && (prev.write || ev.Write) {
				o.conflicts[key] = true
			}
		}
		o.hist[key] = append(o.hist[key], oracleAccess{warp: warp, write: ev.Write, epoch: epoch})
	}
	return 0
}

func (o *oracleDetector) Barrier(sm, block int, base, size int, cycle int64) int64 {
	o.epochs[[2]int{sm, block}]++
	return 0
}

func (o *oracleDetector) BlockStart(sm, base, size int) {
	// A fresh block in a reused slot starts a new life for the region;
	// clearing all histories on that SM is a safe over-approximation
	// because the fuzzer launches a single block per SM.
	for key := range o.hist {
		if key[0] == uint64(sm) {
			delete(o.hist, key)
		}
	}
}

// multiDetector fans one event stream to both detectors.
type multiDetector struct {
	a, b gpu.Detector
}

func (m *multiDetector) Name() string { return "multi" }
func (m *multiDetector) KernelStart(env gpu.Env, k string) {
	m.a.KernelStart(env, k)
	m.b.KernelStart(env, k)
}
func (m *multiDetector) KernelEnd() { m.a.KernelEnd(); m.b.KernelEnd() }
func (m *multiDetector) WarpMem(ev *gpu.WarpMemEvent) int64 {
	m.a.WarpMem(ev)
	m.b.WarpMem(ev)
	return 0
}
func (m *multiDetector) Barrier(sm, block, base, size int, cycle int64) int64 {
	m.a.Barrier(sm, block, base, size, cycle)
	m.b.Barrier(sm, block, base, size, cycle)
	return 0
}
func (m *multiDetector) BlockStart(sm, base, size int) {
	m.a.BlockStart(sm, base, size)
	m.b.BlockStart(sm, base, size)
}

// randomSharedKernel emits a random mix of shared loads/stores from
// patterned addresses with occasional uniform barriers. Address
// patterns are chosen from a small set so both racy and race-free
// kernels occur.
func randomSharedKernel(rng *rand.Rand) *gpu.Kernel {
	b := isa.NewBuilder(fmt.Sprintf("fuzz-%d", rng.Int63()))
	const (
		rTid  = isa.Reg(1)
		rAddr = isa.Reg(2)
		rVal  = isa.Reg(3)
	)
	b.Sreg(rTid, isa.SregTid)
	steps := rng.Intn(12) + 3
	for i := 0; i < steps; i++ {
		switch rng.Intn(6) {
		case 0: // private slot: shared[tid]
			b.Muli(rAddr, rTid, 4)
		case 1: // reversed: shared[63-tid] (cross-warp aliasing)
			b.Movi(rAddr, 63)
			b.Sub(rAddr, rAddr, rTid)
			b.Muli(rAddr, rAddr, 4)
		case 2: // folded: shared[tid%16] (heavy collisions)
			b.Remi(rAddr, rTid, 16)
			b.Muli(rAddr, rAddr, 4)
		case 3: // shifted: shared[(tid+8)%64]
			b.Addi(rAddr, rTid, 8)
			b.Remi(rAddr, rAddr, 64)
			b.Muli(rAddr, rAddr, 4)
		case 4: // broadcast word
			b.Movi(rAddr, int64(rng.Intn(64))*4)
		case 5: // barrier instead of an access
			b.Bar()
			continue
		}
		if rng.Intn(2) == 0 {
			b.Ld(rVal, isa.SpaceShared, rAddr, 0, 4)
		} else {
			b.St(isa.SpaceShared, rAddr, 0, rTid, 4)
		}
	}
	b.Exit()
	return &gpu.Kernel{
		Name: "fuzz", Prog: b.MustBuild(),
		GridDim: 1, BlockDim: 64, SharedBytes: 64 * 4,
	}
}

// TestOracleSoundness: every granule HAccRG flags must be a real
// conflict in the oracle's exact history.
func TestOracleSoundness(t *testing.T) {
	const trials = 120
	totalFlagged, totalConflicts := 0, 0
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := randomSharedKernel(rng)

		opt := DefaultOptions()
		opt.Global = false
		opt.DetectStaleL1 = false
		opt.SharedGranularity = 4
		opt.ModelTraffic = false
		hacc := MustNew(opt)
		oracle := newOracle(4)
		dev, err := gpu.NewDevice(gpu.TestConfig(), 1<<12, &multiDetector{a: hacc, b: oracle})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dev.Launch(k); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, k.Prog.Disassemble())
		}

		for _, r := range hacc.Races() {
			if r.Category == CatIntraWarp {
				continue // exact-address intra-instruction check: outside the oracle's model
			}
			key := [2]uint64{0, r.Granule}
			// The single block lands on SM 0 under breadth-first placement.
			if !oracle.conflicts[key] {
				t.Fatalf("seed %d: HAccRG flagged granule %d with no oracle conflict (%v)\n%s",
					seed, r.Granule, r, k.Prog.Disassemble())
			}
			totalFlagged++
		}
		totalConflicts += len(oracle.conflicts)
		// Race-free kernels must be silent.
		if len(oracle.conflicts) == 0 && len(hacc.Races()) != 0 {
			t.Fatalf("seed %d: false positive on conflict-free kernel: %v", seed, hacc.Races())
		}
	}
	if totalConflicts == 0 {
		t.Fatal("fuzzer generated no racy kernels; patterns too tame")
	}
	if totalFlagged == 0 {
		t.Fatal("HAccRG detected nothing across all racy kernels")
	}
	t.Logf("fuzz: %d HAccRG reports validated against %d oracle-conflicting granules over %d kernels",
		totalFlagged, totalConflicts, trials)
}

// TestOracleRecall measures the flip side: what fraction of the
// oracle's conflicting granules HAccRG flags. Single-accessor shadow
// entries can legitimately miss conflicts (the entry was claimed away
// before the conflicting access arrived), but recall should stay high
// — the mechanism would be useless otherwise. The paper's injection
// study found 41/41, so we hold recall above 80% across random
// kernels as a regression floor.
func TestOracleRecall(t *testing.T) {
	const trials = 120
	conflictGranules, hitGranules := 0, 0
	for seed := int64(5000); seed < 5000+trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := randomSharedKernel(rng)

		opt := DefaultOptions()
		opt.Global = false
		opt.DetectStaleL1 = false
		opt.SharedGranularity = 4
		opt.ModelTraffic = false
		hacc := MustNew(opt)
		oracle := newOracle(4)
		dev, err := gpu.NewDevice(gpu.TestConfig(), 1<<12, &multiDetector{a: hacc, b: oracle})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dev.Launch(k); err != nil {
			t.Fatal(err)
		}
		flagged := map[uint64]bool{}
		for _, r := range hacc.Races() {
			flagged[r.Granule] = true
		}
		for key := range oracle.conflicts {
			conflictGranules++
			if flagged[key[1]] {
				hitGranules++
			}
		}
	}
	if conflictGranules == 0 {
		t.Fatal("no conflicts generated")
	}
	recall := float64(hitGranules) / float64(conflictGranules)
	t.Logf("recall: HAccRG flagged %d of %d oracle-conflicting granules (%.1f%%)",
		hitGranules, conflictGranules, 100*recall)
	if recall < 0.8 {
		t.Fatalf("recall %.2f below the 0.8 regression floor", recall)
	}
}
