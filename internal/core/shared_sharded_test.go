package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"haccrg/internal/fault"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// This file is the determinism sweep for the per-SM shared engine: the
// same mixed shared+global event stream runs under every engine combo
// (serial, global-sharded, shared-sharded, fully-sharded), under fault
// plans, both degradation policies and the static filter, and every
// configuration must land on a byte-identical digest. The companion
// tiny-kernel test pins the deferred-engagement fix: kernels below
// engageLanes never touch the rings at all.

// sharedStreamEvent emits one deterministic pseudo-random shared-memory
// warp instruction: full and partial warps, coalesced runs and
// scattered bank-hopping lanes, four SMs, some atomics.
func sharedStreamEvent(rng *rand.Rand, cycle int64) *gpu.WarpMemEvent {
	nlanes := 32
	if rng.Intn(8) == 0 {
		nlanes = 1 + rng.Intn(32)
	}
	sm := rng.Intn(4) // TestConfig has 4 SMs
	warp := rng.Intn(2)
	ev := &gpu.WarpMemEvent{
		Space:       isa.SpaceShared,
		Write:       rng.Intn(2) == 0,
		PC:          4 * (1 + rng.Intn(6)),
		SM:          sm,
		Block:       sm, // one resident block per SM
		WarpInBlock: warp,
		Kernel:      "stream",
		Cycle:       cycle,
		Lanes:       make([]gpu.LaneAccess, nlanes),
	}
	if rng.Intn(16) == 0 {
		ev.Atomic, ev.Write = true, true
	}
	base := uint64(rng.Intn(64)) * 64
	scattered := rng.Intn(4) == 0
	for l := 0; l < nlanes; l++ {
		tid := warp*32 + l
		addr := base + uint64(l)*4
		if scattered {
			addr = uint64(rng.Intn(1024)) * 4 // lanes hop granules and banks
		}
		ev.Lanes[l] = gpu.LaneAccess{
			Lane: l, Tid: tid, GTid: sm*64 + tid,
			Addr: addr, Size: 4, Arrival: cycle,
		}
	}
	return ev
}

const testSharedSize = 48 << 10 // TestConfig Shared.SizeBytes

// runFullStream drives one detector through a mixed shared+global
// stream — alternating spaces, block starts, barriers with real shared
// extents, fences, a mid-kernel stats read — and returns a digest of
// everything the determinism contract covers. events sets the stream
// length: 400 alternating events put ~6.4K lanes through each engine
// (past engageLanes); short streams stay inline.
func runFullStream(t *testing.T, events int, mutate func(*Options), filter bool) string {
	t.Helper()
	opt := DefaultOptions()
	opt.ModelTraffic = false
	if mutate != nil {
		mutate(&opt)
	}
	d := MustNew(opt)
	if filter {
		// Mask the even-numbered sites the stream generator emits
		// (PC = 4..24): filtering must commute with every engine.
		mask := make([]bool, 32)
		for pc := 8; pc < len(mask); pc += 8 {
			mask[pc] = true
		}
		d.SetStaticFilter(maskFilter{"full0": mask, "full1": mask})
	}
	env := newFakeEnv()
	for k := 0; k < 2; k++ {
		rng := rand.New(rand.NewSource(777)) // same stream every kernel
		env.fenceIDs = map[[2]int]uint32{}
		d.KernelStart(env, fmt.Sprintf("full%d", k))
		for sm := 0; sm < 4; sm++ {
			d.BlockStart(sm, 0, testSharedSize)
		}
		for i := 0; i < events; i++ {
			cycle := int64(100 + i)
			if i%2 == 0 {
				d.WarpMem(sharedStreamEvent(rng, cycle))
			} else {
				d.WarpMem(streamEvent(rng, cycle))
			}
			if i%97 == 0 {
				block, warp := i%3, i%2
				id := uint32(i/97 + 1)
				env.fenceIDs[[2]int{block, warp}] = id
				d.FenceAdvance(block, warp, id)
			}
			if i%151 == 150 {
				// Epoch barrier with a real shared extent: quiesces both
				// engines and resets one SM's shadow tile.
				d.Barrier(i%4, i%4, 0, testSharedSize, cycle)
			}
			if i%131 == 130 {
				// Mid-kernel block rotation: with the shared engine
				// running this reset rides the rings in-band (segReset).
				d.BlockStart(i%4, 0, testSharedSize/2)
			}
			if i == events/2 {
				_ = d.Stats() // reader-triggered quiescent point
			}
		}
		d.KernelEnd()
	}
	digest := ""
	for _, r := range d.SortedRaces() {
		digest += fmt.Sprintf("%s count=%d\n", r, r.Count)
	}
	digest += fmt.Sprintf("stats=%+v\nhealth=%+v", d.Stats(), *d.Health())
	return digest
}

// engineCombos are the four detector pipelines that must agree.
var engineCombos = []struct {
	name        string
	par, shared bool
}{
	{"serial", false, false},
	{"global-sharded", true, false},
	{"shared-sharded", false, true},
	{"fully-sharded", true, true},
}

// TestSharedShardedDifferentialSweep runs the stream under every
// engine combo crossed with fault plans, degradation policies, the
// static filter and the Figure 8 fallback, asserting byte-identical
// findings throughout. This is the determinism contract of the per-SM
// engine in one table.
func TestSharedShardedDifferentialSweep(t *testing.T) {
	variants := []struct {
		name   string
		opt    func(*Options)
		filter bool
	}{
		{"plain", nil, false},
		{"filtered", nil, true},
		{"flip-ecc", func(o *Options) {
			o.Fault = &fault.Plan{FlipRate: 0.02, ECC: true}
		}, false},
		{"flip-raw", func(o *Options) {
			o.Fault = &fault.Plan{FlipRate: 0.02}
		}, false},
		{"stuck-quarantine", func(o *Options) {
			o.Fault = &fault.Plan{StuckPerKi: 8, ECC: true}
			o.Degradation = DegradeQuarantine
		}, false},
		{"stuck-reinit", func(o *Options) {
			o.Fault = &fault.Plan{StuckPerKi: 8, ECC: true}
			o.Degradation = DegradeReinit
		}, false},
		{"queue-cap", func(o *Options) {
			o.Fault = &fault.Plan{QueueCap: 64, QueueDrain: 2}
		}, false},
		{"bloom-fill", func(o *Options) {
			o.Fault = &fault.Plan{BloomFill: 0.5}
		}, false},
		{"fig8-fallback", func(o *Options) {
			// SharedShadowInGlobal is infeasible for the per-SM engine:
			// ParallelShared must silently fall back to the serial
			// shared path and still match.
			o.SharedShadowInGlobal = true
		}, false},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			var want string
			for _, combo := range engineCombos {
				mutate := func(o *Options) {
					if v.opt != nil {
						v.opt(o)
					}
					o.Parallel = combo.par
					o.ParallelShared = combo.shared
				}
				got := runFullStream(t, 400, mutate, v.filter)
				if combo.name == "serial" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s diverged from serial:\n--- serial\n%s\n--- %s\n%s",
						combo.name, want, combo.name, got)
				}
			}
		})
	}
}

// TestSharedWorkerCountIndependence pins GOMAXPROCS to several values
// while the full pipeline builds its worker pools: the worker count
// (and the global/shared budget split) is an execution detail, so
// every setting must reproduce the serial findings exactly.
func TestSharedWorkerCountIndependence(t *testing.T) {
	want := runFullStream(t, 400, func(o *Options) {
		o.Parallel, o.ParallelShared = false, false
	}, false)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 3, 8} {
		runtime.GOMAXPROCS(procs)
		got := runFullStream(t, 400, func(o *Options) {
			o.Parallel, o.ParallelShared = true, true
		}, false)
		if got != want {
			t.Errorf("GOMAXPROCS=%d: fully-sharded digest diverged from serial:\n--- serial\n%s\n--- sharded\n%s",
				procs, want, got)
		}
	}
}

// TestTinyKernelStaysInline pins the deferred-engagement fix for the
// BENCH_PR6 hash regression: a kernel whose lane volume stays below
// engageLanes must never engage the rings — the armed engines process
// inline on the sim thread (DetectQueuePeak stays zero, the
// never-engaged proxy) and the findings still match serial exactly.
func TestTinyKernelStaysInline(t *testing.T) {
	// 60 alternating events ≈ 960 lanes per engine, far below the
	// 4096-lane threshold.
	want := runFullStream(t, 60, func(o *Options) {
		o.Parallel, o.ParallelShared = false, false
	}, false)
	for _, combo := range engineCombos[1:] {
		opt := DefaultOptions()
		opt.ModelTraffic = false
		opt.Parallel = combo.par
		opt.ParallelShared = combo.shared
		d := MustNew(opt)
		env := newFakeEnv()
		rng := rand.New(rand.NewSource(777))
		d.KernelStart(env, "full0")
		for sm := 0; sm < 4; sm++ {
			d.BlockStart(sm, 0, testSharedSize)
		}
		for i := 0; i < 60; i++ {
			cycle := int64(100 + i)
			if i%2 == 0 {
				d.WarpMem(sharedStreamEvent(rng, cycle))
			} else {
				d.WarpMem(streamEvent(rng, cycle))
			}
		}
		d.KernelEnd()
		if peak := d.DetectQueuePeak(); peak != 0 {
			t.Errorf("%s: tiny kernel engaged the rings (queue peak %d, want 0)", combo.name, peak)
		}
		// The digest comparison reruns through the shared driver so the
		// sequencing (fences, barriers, stats reads) matches `want`.
		got := runFullStream(t, 60, func(o *Options) {
			o.Parallel = combo.par
			o.ParallelShared = combo.shared
		}, false)
		if got != want {
			t.Errorf("%s: tiny-kernel digest diverged from serial:\n--- serial\n%s\n--- inline\n%s",
				combo.name, want, got)
		}
	}
}

// TestLargeKernelEngages is the counterpart guard: the long stream
// must actually cross engageLanes and run through the rings, so the
// sweep above is exercising the worker paths and not quietly running
// everything inline.
func TestLargeKernelEngages(t *testing.T) {
	opt := DefaultOptions()
	opt.ModelTraffic = false
	opt.Parallel, opt.ParallelShared = true, true
	d := MustNew(opt)
	env := newFakeEnv()
	rng := rand.New(rand.NewSource(777))
	d.KernelStart(env, "big")
	for sm := 0; sm < 4; sm++ {
		d.BlockStart(sm, 0, testSharedSize)
	}
	for i := 0; i < 400; i++ {
		cycle := int64(100 + i)
		if i%2 == 0 {
			d.WarpMem(sharedStreamEvent(rng, cycle))
		} else {
			d.WarpMem(streamEvent(rng, cycle))
		}
	}
	d.KernelEnd()
	if peak := d.DetectQueuePeak(); peak == 0 {
		t.Fatal("long stream never engaged the rings; the differential sweep is not testing the worker paths")
	}
}
