package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"haccrg/internal/fault"
)

// runSentinelStream drives a parallel detector with the sentinel armed
// through the sharded_test event stream and returns it for inspection.
func runSentinelStream(t *testing.T, opt Options, kernels int) *Detector {
	t.Helper()
	d := MustNew(opt)
	env := newFakeEnv()
	for k := 0; k < kernels; k++ {
		rng := rand.New(rand.NewSource(1234))
		env.fenceIDs = map[[2]int]uint32{}
		d.KernelStart(env, fmt.Sprintf("stream%d", k))
		for i := 0; i < 400; i++ {
			cycle := int64(100 + i)
			d.WarpMem(streamEvent(rng, cycle))
			if i%97 == 0 {
				block, warp := i%3, i%2
				id := uint32(i/97 + 1)
				env.fenceIDs[[2]int{block, warp}] = id
				d.FenceAdvance(block, warp, id)
			}
			if i%151 == 0 {
				d.Barrier(0, 0, 0, 0, cycle)
			}
		}
		d.KernelEnd()
	}
	return d
}

func sentinelBaseOptions() Options {
	opt := DefaultOptions()
	opt.Shared = false
	opt.ModelTraffic = false
	opt.Parallel = true
	opt.SentinelEvery = 1
	return opt
}

// TestSentinelCleanRun: on a healthy engine the sentinel observes
// kernels, finds no divergence, and perturbs nothing — findings stay
// byte-identical to a sentinel-free run.
func TestSentinelCleanRun(t *testing.T) {
	d := runSentinelStream(t, sentinelBaseOptions(), 2)
	h := d.Health()
	if h.SentinelChecks != 2 {
		t.Errorf("SentinelChecks = %d, want 2", h.SentinelChecks)
	}
	if h.SentinelMismatches != 0 || h.EngineFallbacks != 0 {
		t.Errorf("clean run recorded incidents: %+v", *h)
	}
	if h.Degraded {
		t.Errorf("clean sentinel run reports Degraded")
	}
	if d.EngineFallback() {
		t.Errorf("clean run fell back to serial")
	}

	got, want := "", ""
	for _, r := range d.SortedRaces() {
		got += fmt.Sprintf("%s count=%d\n", r, r.Count)
	}
	for _, r := range runShardedStreamDetector(t, true, 2).SortedRaces() {
		want += fmt.Sprintf("%s count=%d\n", r, r.Count)
	}
	if got != want {
		t.Errorf("sentinel perturbed findings:\n--- without\n%s\n--- with\n%s", want, got)
	}
}

// runShardedStreamDetector is runShardedStream returning the detector
// (sentinel off) for race-list comparison.
func runShardedStreamDetector(t *testing.T, parallel bool, kernels int) *Detector {
	t.Helper()
	opt := DefaultOptions()
	opt.Shared = false
	opt.ModelTraffic = false
	opt.Parallel = parallel
	return runSentinelStream(t, opt, kernels)
}

// TestSentinelSamplingSkipsKernels: SentinelEvery=3 observes kernels
// 0 and 3 of four.
func TestSentinelSamplingSkipsKernels(t *testing.T) {
	opt := sentinelBaseOptions()
	opt.SentinelEvery = 3
	d := runSentinelStream(t, opt, 4)
	if h := d.Health(); h.SentinelChecks != 2 {
		t.Errorf("SentinelChecks = %d, want 2 (kernels 0 and 3)", h.SentinelChecks)
	}
}

// TestSentinelWithFaultPlan: with a fault plan attached the sentinel
// must observe every kernel (stream alignment) and still agree — the
// reference draws the identical fault decisions from its own
// identically-seeded injector.
func TestSentinelWithFaultPlan(t *testing.T) {
	opt := sentinelBaseOptions()
	opt.SentinelEvery = 5 // ignored: fault plan forces every kernel
	p, err := fault.Parse("queue:cap=8,drain=1;flip:rate=2e-4")
	if err != nil {
		t.Fatal(err)
	}
	opt.Fault = p
	opt.FaultSeed = 42
	d := runSentinelStream(t, opt, 3)
	h := d.Health()
	if h.SentinelChecks != 3 {
		t.Errorf("SentinelChecks = %d, want 3 (fault plans observe every kernel)", h.SentinelChecks)
	}
	if h.SentinelMismatches != 0 {
		t.Errorf("false sentinel mismatch under fault plan: %+v", *h)
	}
	if d.EngineFallback() {
		t.Errorf("false fallback under fault plan")
	}
}

// TestSentinelCatchesDivergence plants a divergence with the chaos
// drop hook — the reference misses the whole first kernel — and
// requires the sentinel to catch it, record it, and degrade the engine
// to serial for subsequent kernels.
func TestSentinelCatchesDivergence(t *testing.T) {
	opt := sentinelBaseOptions()
	opt.Chaos = &ChaosHooks{
		DropSentinelEvent: func(kernel string, n int) bool { return kernel == "stream0" },
	}
	d := runSentinelStream(t, opt, 3)
	h := d.Health()
	if h.SentinelMismatches != 1 {
		t.Fatalf("SentinelMismatches = %d, want 1", h.SentinelMismatches)
	}
	if h.EngineFallbacks != 1 {
		t.Errorf("EngineFallbacks = %d, want 1", h.EngineFallbacks)
	}
	if !h.Degraded {
		t.Errorf("caught divergence did not set Degraded")
	}
	if !d.EngineFallback() {
		t.Fatalf("engine did not fall back after mismatch")
	}
	if d.parMode {
		t.Errorf("engine still sharded after fallback")
	}
	// The degraded (serial) engine still detects: kernels 1 and 2 ran
	// serial and their races are present.
	if len(d.SortedRaces()) == 0 {
		t.Errorf("no races recorded after fallback — serial engine not working")
	}
	// Exactly one kernel was checked: the mismatch retires the sentinel.
	if h.SentinelChecks != 1 {
		t.Errorf("SentinelChecks = %d, want 1 (sentinel retires after mismatch)", h.SentinelChecks)
	}
}

// TestStallWatchdog wedges a shard worker past the stall budget and
// requires the watchdog to record the stall, complete the drain
// correctly anyway, and degrade to serial at the next launch.
func TestStallWatchdog(t *testing.T) {
	opt := sentinelBaseOptions()
	opt.SentinelEvery = 0
	opt.StallBudget = 5 * time.Millisecond
	var once sync.Once
	opt.Chaos = &ChaosHooks{
		WorkerStall: func(part int) {
			once.Do(func() { time.Sleep(150 * time.Millisecond) })
		},
	}
	d := runSentinelStream(t, opt, 2)
	h := d.Health()
	if h.StalledDrains == 0 {
		t.Fatalf("watchdog recorded no stalled drains")
	}
	if h.EngineFallbacks != 1 {
		t.Errorf("EngineFallbacks = %d, want 1", h.EngineFallbacks)
	}
	if !h.Degraded {
		t.Errorf("stall did not set Degraded")
	}
	if !d.EngineFallback() {
		t.Fatalf("engine did not fall back after stall")
	}
	if d.parMode {
		t.Errorf("engine still sharded after stall fallback")
	}
	// The stalled drain still completed: kernel 0's findings must equal
	// the serial reference (merge integrity preserved under the stall).
	want := runShardedStreamDetector(t, false, 2)
	got, ref := "", ""
	for _, r := range d.SortedRaces() {
		got += fmt.Sprintf("%s count=%d\n", r, r.Count)
	}
	for _, r := range want.SortedRaces() {
		ref += fmt.Sprintf("%s count=%d\n", r, r.Count)
	}
	if got != ref {
		t.Errorf("stalled run's findings diverged from serial:\n--- serial\n%s\n--- stalled\n%s", ref, got)
	}
}

// TestSentinelReset: Reset clears the fallback and re-arms the engine.
func TestSentinelReset(t *testing.T) {
	opt := sentinelBaseOptions()
	opt.Chaos = &ChaosHooks{
		DropSentinelEvent: func(kernel string, n int) bool { return kernel == "stream0" },
	}
	d := runSentinelStream(t, opt, 1)
	if !d.EngineFallback() {
		t.Fatalf("setup: no fallback")
	}
	d.Reset()
	if d.EngineFallback() {
		t.Errorf("Reset did not clear the engine fallback")
	}
	if d.Health().SentinelMismatches != 0 {
		t.Errorf("Reset did not clear sentinel health counters")
	}
}
