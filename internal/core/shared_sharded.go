package core

import (
	"haccrg/internal/fault"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// This file is the sharded per-SM shared-memory RDU engine — the
// shared-memory counterpart of sharded.go's per-partition global
// engine, mirroring its architecture one level up the memory
// hierarchy.
//
// HAccRG puts one shared-memory RDU beside each SM's scratchpad banks;
// the units share nothing — an SM's shadow tile is touched only by
// warps resident on that SM. sshard is the determinism unit: one per
// SM, owning that SM's slice of the shared shadow, quarantine set,
// fault-injector streams, health counters and report buffer. The
// execution units are the same gworker goroutines as the global
// engine (with the shared flag set), fed SoA batches of (addr, tid)
// pairs over the same bounded SPSC rings, drained at the same
// quiescent points, with reports merged through the same
// sequence-tagged raceCand machinery.
//
// The determinism contract is inherited verbatim: findings are
// byte-identical to the serial engine and independent of the worker
// count. Disjointness comes from the per-SM shadow tiles; ordering
// from the sim-thread sequence reservation; and the injector draws
// from per-(mechanism, UnitShared, sm) streams, so the serial and
// sharded layouts consume identical random decisions.
//
// Block-start shadow resets are the one event class the global engine
// does not have: a retiring block's shared region must read as fresh
// to its successor. With live workers the reset rides the owning SM's
// ring as a segReset segment — in stream order with the lane checks,
// so no drain (and no pipeline bubble) per block rotation.
type sshard struct {
	d  *Detector
	sm int

	// shadow aliases d.sharedShadow[sm]; refreshed every KernelStart
	// (the backing slices reallocate when the device geometry changes).
	shadow []sharedWord

	quar map[uint64]struct{} // quarantined granules (keyed by granule)

	// inj is this shard's fault injector: the serial layout shares the
	// detector's, the sharded layout owns an identically-seeded instance
	// (per-key streams make the two draw identical decisions).
	inj *fault.Injector

	checks int64 // lane checks serviced (Stats.SharedChecks share)
	health gpu.DetectorHealth

	curSeq  uint64     // sequence number of the lane being checked
	pending []raceCand // buffered reports, ascending curSeq order
}

// sharedParallelFeasible reports whether the sharded shared engine can
// run under this configuration: more than one SM, hardware-mode shadow
// (the Figure 8 shared-shadow-in-global layout threads shadow fetches
// through the timing model on the sim thread, so it stays serial), and
// no standing engine fallback.
func (d *Detector) sharedParallelFeasible(cfg *gpu.Config) bool {
	return d.opt.ParallelShared && d.opt.Shared && !d.opt.SharedShadowInGlobal &&
		!d.engineFallback && cfg.NumSMs > 1
}

// buildSharedUnits (re)creates the per-SM shared RDU units. Unlike the
// global engine, the units exist in both layouts — the serial engine
// runs them inline on the sim thread — so only the injector ownership
// and the worker pool differ. splitBudget is set when the global
// engine also shards (the two engines divide the processors; global
// rounds up as the heavier path).
func (d *Detector) buildSharedUnits(nsm int, splitBudget, parallel bool) {
	d.sunits = make([]*sshard, nsm)
	for sm := 0; sm < nsm; sm++ {
		u := &sshard{d: d, sm: sm, inj: d.inj}
		if parallel {
			u.inj = fault.New(d.opt.Fault, d.opt.FaultSeed)
		}
		d.sunits[sm] = u
	}
	if !parallel {
		d.sworkers = nil
		d.sworkerOf = nil
		return
	}
	nw := workerBudget(nsm, splitBudget, false)
	d.sworkers = newWorkers(d, nw, true)
	d.sworkerOf = make([]*gworker, nsm)
	for sm := 0; sm < nsm; sm++ {
		d.sworkerOf[sm] = d.sworkers[sm%nw]
	}
}

// startSharedWorkers launches the shared worker goroutines with fresh
// rings — the engagement point once a kernel's shared lane volume
// crosses engageLanes.
func (d *Detector) startSharedWorkers() {
	d.srunning = true
	for _, w := range d.sworkers {
		w.start(&d.wg)
	}
}

// sharedRDUAsync is the parallel enqueue path of sharedRDU: reserve
// report sequence numbers, run the intra-warp check on the simulation
// thread, then hand the lanes to the owning SM's worker. All lanes of
// a shared-memory instruction live on one SM, so an event is always a
// single segment. Hardware-mode shared checks are free, so the stall
// is always zero here (feasibility excludes the Figure 8 layout).
func (d *Detector) sharedRDUAsync(ev *gpu.WarpMemEvent, gran uint64) int64 {
	// Sequence reservation, identical to the global engine's: WAW
	// reports first (evBase…), then lane reports ascending from
	// evBase+L — merged order equals serial report order.
	evBase := d.seq
	lcount := uint64(len(ev.Lanes))
	if ev.Write || ev.Atomic {
		d.intraWarpWAW(ev, isa.SpaceShared, gran)
	}
	d.seq = evBase + 2*lcount
	base := evBase + lcount

	u := d.sunits[ev.SM]
	if !d.srunning {
		d.slanes += len(ev.Lanes)
		if d.slanes < engageLanes {
			// Inline phase: same units, same seq tags, same injector
			// draws as the worker loop — findings cannot depend on
			// whether the kernel ever crosses the threshold.
			for i := range ev.Lanes {
				la := &ev.Lanes[i]
				u.curSeq = base + uint64(i)
				u.checkLane(la.Addr, uint16(la.Tid), ev.Write, ev.Atomic,
					ev.PC, ev.Stmt, ev.Block, ev.Cycle, gran)
			}
			return 0
		}
		d.startSharedWorkers()
	}

	w := d.sworkerOf[ev.SM]
	b := w.openBatch()
	b.segs = append(b.segs, gseg{
		ev: gev{
			write: ev.Write, atomic: ev.Atomic, pc: ev.PC, stmt: ev.Stmt,
			sm: ev.SM, block: ev.Block, cycle: ev.Cycle,
		},
		seq0: base, part: int32(ev.SM), start: int32(len(b.addr)),
	})
	for i := range ev.Lanes {
		la := &ev.Lanes[i]
		b.addr = append(b.addr, la.Addr)
		b.tid = append(b.tid, int32(la.Tid))
	}
	if len(b.addr)+d.warpSize > cap(b.addr) || len(b.segs)+d.warpSize > cap(b.segs) {
		w.flush()
	}
	return 0
}

// enqueueSharedReset rides a block-start shadow reset down the owning
// SM's ring in stream order: checks enqueued before it see the old
// entries, checks after it see fresh ones — exactly the serial
// interleaving.
func (d *Detector) enqueueSharedReset(sm, lo, hi int) {
	w := d.sworkerOf[sm]
	b := w.openBatch()
	b.segs = append(b.segs, gseg{
		kind: segReset, part: int32(sm),
		start: int32(len(b.addr)), lo: int32(lo), hi: int32(hi),
	})
	if len(b.segs)+d.warpSize > cap(b.segs) {
		w.flush()
	}
}

// processShared services one batch against the per-SM shared shards:
// the same admit/fault/check sequence as the serial per-lane loop,
// touching the segment's shard alone.
func (w *gworker) processShared(b *gbatch) {
	if h := w.d.opt.Chaos; h != nil && h.WorkerStall != nil && len(b.segs) > 0 {
		h.WorkerStall(int(b.segs[0].part))
	}
	gran := uint64(w.d.opt.SharedGranularity)
	units := w.d.sunits
	for s := range b.segs {
		seg := &b.segs[s]
		u := units[seg.part]
		if seg.kind == segReset {
			resetShared(u.shadow[seg.lo:seg.hi])
			continue
		}
		end := len(b.addr)
		if s+1 < len(b.segs) {
			end = int(b.segs[s+1].start)
		}
		for i := int(seg.start); i < end; i++ {
			u.curSeq = seg.seq0 + uint64(i-int(seg.start))
			u.checkLane(b.addr[i], uint16(b.tid[i]), seg.ev.write, seg.ev.atomic,
				seg.ev.pc, seg.ev.stmt, seg.ev.block, seg.ev.cycle, gran)
		}
	}
}

// checkLane runs one shared-memory lane check against this SM's
// shadow: queue admission, bounds, shadow-cell faults, then the packed
// Figure 3 state machine. Identical across the serial inline path and
// the worker loop — the engine layouts differ only in where it runs.
func (u *sshard) checkLane(addr uint64, tid uint16, write, atomic bool,
	pc int, stmt string, block int, cycle int64, gran uint64) {
	if u.inj != nil && !u.admit(cycle) {
		return // check-queue overflow: dropped, counted, access unaffected
	}
	u.checks++
	g := addr / gran
	if g >= uint64(len(u.shadow)) {
		return // engine bounds-checks; stay safe
	}
	if atomic {
		return // atomics are synchronization operations
	}
	if u.inj != nil && u.faultShared(g) {
		return // cell quarantined by the degradation policy
	}
	nw, kind, first, raced := u.d.sharedCheckWord(u.shadow[g], tid, write)
	u.shadow[g] = nw
	if raced {
		u.report(isa.SpaceShared, kind, CatBarrier, pc, stmt, g, addr,
			int(first), block, int(tid), block, cycle)
	}
}

// admit runs one lane check through the RDU check queue; false means
// the queue overflowed and the check is dropped (and counted). The
// stream key (UnitShared, sm) is identical in both engine layouts.
func (u *sshard) admit(cycle int64) bool {
	if u.inj.Admit(fault.UnitShared, u.sm, cycle, 1) == 1 {
		return true
	}
	u.health.DroppedChecks++
	return false
}

// report buffers (sharded layout) or applies (serial layout) one race
// report.
func (u *sshard) report(space isa.Space, kind Kind, cat Category, pc int, stmt string, granule, addr uint64,
	firstTid, firstBlock, secondTid, secondBlock int, cycle int64) {
	if !u.d.sact {
		u.d.report(space, kind, cat, pc, stmt, granule, addr,
			firstTid, firstBlock, secondTid, secondBlock, cycle)
		return
	}
	u.pending = append(u.pending, raceCand{
		seq: u.curSeq, kernel: u.d.kernel,
		space: space, kind: kind, cat: cat, pc: pc, stmt: stmt,
		granule: granule, addr: addr,
		firstTid: firstTid, firstBlock: firstBlock,
		secondTid: secondTid, secondBlock: secondBlock,
		cycle: cycle,
	})
}

// faultShared applies shadow-cell faults to granule g before its check
// runs; true means the check is skipped. Quarantine is per physical
// cell; the stuck-cell stream key (sm<<40 | g) and the flip stream key
// (UnitShared, sm) match the serial engine's bit for bit.
func (u *sshard) faultShared(g uint64) (skip bool) {
	if _, q := u.quar[g]; q {
		u.health.QuarantineSkips++
		return true
	}
	key := uint64(u.sm)<<40 | g
	if pat, stuck := u.inj.Stuck(fault.UnitShared, key); stuck {
		if u.inj.ECC() {
			if u.d.opt.Degradation == DegradeReinit {
				u.shadow[g] = swFresh
				u.health.ReinitGranules++
				return false
			}
			if u.quar == nil {
				u.quar = make(map[uint64]struct{})
			}
			u.quar[g] = struct{}{}
			u.health.QuarantinedGranules++
			u.health.QuarantineSkips++
			return true
		}
		u.shadow[g] = sharedWord(pat) & (1<<sharedEntryBits - 1)
		u.health.StuckReads++
		return false
	}
	if bit, hit := u.inj.FlipBit(fault.UnitShared, u.sm, sharedEntryBits); hit {
		if u.inj.ECC() {
			u.health.CorrectedFlips++
		} else {
			u.shadow[g] ^= 1 << bit
			u.health.InjectedFlips++
		}
	}
	return false
}
