package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// fakeEnv satisfies gpu.Env for direct detector-level property tests,
// without spinning up the full simulator.
type fakeEnv struct {
	cfg      gpu.Config
	fenceIDs map[[2]int]uint32
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{cfg: gpu.TestConfig(), fenceIDs: map[[2]int]uint32{}}
}

func (f *fakeEnv) Config() *gpu.Config                     { return &f.cfg }
func (f *fakeEnv) PartitionFor(addr uint64) int            { return int(addr>>7) % f.cfg.NumPartitions }
func (f *fakeEnv) ShadowTx(int, int64, uint64, bool) int64 { return 0 }
func (f *fakeEnv) InstrTx(int, int64, uint64, bool) int64  { return 0 }
func (f *fakeEnv) InstrAtomicTx(int, int64, uint64) int64  { return 0 }
func (f *fakeEnv) ShadowBase() uint64                      { return 1 << 30 }
func (f *fakeEnv) GlobalMemSize() uint64                   { return 1 << 30 }
func (f *fakeEnv) CurrentFenceID(block, warp int) uint32 {
	return f.fenceIDs[[2]int{block, warp}]
}

// mkEvent builds a single-lane global event.
func mkEvent(block, tid, sm int, addr uint64, write bool, syncID, fenceID uint32) *gpu.WarpMemEvent {
	return &gpu.WarpMemEvent{
		Space: isa.SpaceGlobal, Write: write,
		SM: sm, Block: block, WarpInBlock: tid / 32,
		SyncID: syncID, FenceID: fenceID,
		Lanes: []gpu.LaneAccess{{Lane: tid % 32, Tid: tid, Addr: addr, Size: 4}},
	}
}

func newDirectDetector(t *testing.T) (*Detector, *fakeEnv) {
	t.Helper()
	opt := DefaultOptions()
	opt.Shared = false
	opt.DetectStaleL1 = false
	opt.ModelTraffic = false
	d := MustNew(opt)
	env := newFakeEnv()
	d.KernelStart(env, "prop")
	return d, env
}

// Property: accesses from a single thread never race, whatever the
// read/write sequence.
func TestPropertySingleThreadNeverRaces(t *testing.T) {
	f := func(writes []bool, addrSeed uint8) bool {
		d, _ := newDirectDetector(t)
		addr := uint64(addrSeed) * 4
		for _, w := range writes {
			d.WarpMem(mkEvent(3, 7, 1, addr, w, 0, 0))
		}
		return len(d.Races()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: same-warp accesses never race under warp-aware reporting.
func TestPropertySameWarpNeverRaces(t *testing.T) {
	f := func(ops []uint8) bool {
		d, _ := newDirectDetector(t)
		for _, op := range ops {
			tid := int(op % 32) // all within warp 0
			write := op&0x80 != 0
			d.WarpMem(mkEvent(0, tid, 0, 64, write, 0, 0))
		}
		return len(d.Races()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: read-only workloads never race, regardless of thread or
// block mixture.
func TestPropertyReadsNeverRace(t *testing.T) {
	f := func(tids []uint16) bool {
		d, _ := newDirectDetector(t)
		for _, raw := range tids {
			block := int(raw >> 10)
			tid := int(raw & 0x3FF)
			d.WarpMem(mkEvent(block, tid, block%4, 128, false, 0, 0))
		}
		return len(d.Races()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a cross-warp write after any access from another warp
// reports exactly one kind of race at that granule.
func TestPropertyCrossWarpWriteRaces(t *testing.T) {
	f := func(firstWrite bool) bool {
		d, _ := newDirectDetector(t)
		d.WarpMem(mkEvent(0, 1, 0, 256, firstWrite, 0, 0))
		d.WarpMem(mkEvent(0, 40, 0, 256, true, 0, 0)) // warp 1, write
		return len(d.Races()) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: barrier ordering (sync-ID advance) suppresses the race the
// unsynchronized version reports.
func TestPropertySyncIDAlwaysOrders(t *testing.T) {
	f := func(tidA, tidB uint8, wA, wB bool) bool {
		a := int(tidA)
		bb := int(tidB)
		if a/32 == bb/32 {
			return true // same warp: ordered anyway
		}
		race := wA || wB
		// Unsynchronized: same sync ID.
		d1, _ := newDirectDetector(t)
		d1.WarpMem(mkEvent(0, a, 0, 512, wA, 5, 0))
		d1.WarpMem(mkEvent(0, bb, 0, 512, wB, 5, 0))
		unsync := len(d1.Races())
		// Barrier between: sync ID advances.
		d2, _ := newDirectDetector(t)
		d2.WarpMem(mkEvent(0, a, 0, 512, wA, 5, 0))
		d2.WarpMem(mkEvent(0, bb, 0, 512, wB, 6, 0))
		synced := len(d2.Races())
		if synced != 0 {
			return false
		}
		if race && wB && unsync == 0 {
			return false // a write must have been flagged
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: fence-ID advance makes cross-block RAW consumption safe;
// no advance makes it a race.
func TestPropertyFenceGatesRAW(t *testing.T) {
	f := func(fenceAfterWrite bool) bool {
		d, env := newDirectDetector(t)
		d.WarpMem(mkEvent(0, 0, 0, 1024, true, 0, 3))
		if fenceAfterWrite {
			env.fenceIDs[[2]int{0, 0}] = 4
		} else {
			env.fenceIDs[[2]int{0, 0}] = 3
		}
		d.WarpMem(mkEvent(1, 0, 1, 1024, false, 0, 0))
		raced := len(d.Races()) > 0
		return raced != fenceAfterWrite
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: dedup never loses dynamic counts — the sum of per-race
// Counts equals the number of dynamic reports.
func TestPropertyDedupPreservesCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		d, _ := newDirectDetector(t)
		for i := 0; i < 200; i++ {
			block := rng.Intn(3)
			tid := rng.Intn(96)
			addr := uint64(rng.Intn(8)) * 4
			d.WarpMem(mkEvent(block, tid, block, addr, rng.Intn(2) == 0, 0, 0))
		}
		var sum int64
		for _, r := range d.Races() {
			sum += r.Count
		}
		if sum != d.Stats().Reports {
			t.Fatalf("trial %d: dedup counts %d != dynamic reports %d", trial, sum, d.Stats().Reports)
		}
	}
}

// Property: kernel boundaries reset all shadow state — replaying the
// same racy access pair in a new kernel reports it again, and the
// first access of the new kernel never races against the old one.
func TestPropertyKernelBoundaryResets(t *testing.T) {
	d, env := newDirectDetector(t)
	d.WarpMem(mkEvent(0, 0, 0, 2048, true, 0, 0))
	d.KernelStart(env, "second")
	d.WarpMem(mkEvent(1, 50, 1, 2048, false, 0, 0))
	if len(d.Races()) != 0 {
		t.Fatalf("access raced against a previous kernel's shadow state: %v", d.Races())
	}
}

// Nested critical sections: signatures must survive inner releases and
// clear only at depth zero (engine-level test through a real kernel).
func TestNestedLockDepth(t *testing.T) {
	opt := DefaultOptions()
	opt.Shared = false
	opt.DetectStaleL1 = false
	det := MustNew(opt)
	dev := gpu.MustNewDevice(gpu.TestConfig(), 1<<16, det)
	lockA := dev.MustMalloc(4)
	lockB := dev.MustMalloc(4)
	data := dev.MustMalloc(4)

	b := isa.NewBuilder("nested")
	b.Sreg(1, isa.SregCtaid)
	b.Ldp(2, 0)
	b.Ldp(3, 1)
	b.Ldp(4, 2)
	// Outer: lock A; inner: lock B; write data between inner release
	// and outer release — still protected by A.
	b.AcqMark(2)
	b.AcqMark(3)
	b.RelMark() // release B: depth 1, signature must persist
	b.Ld(5, isa.SpaceGlobal, 4, 0, 4)
	b.Addi(5, 5, 1)
	b.St(isa.SpaceGlobal, 4, 0, 5, 4)
	b.RelMark() // release A: depth 0, signature clears
	b.Exit()
	k := &gpu.Kernel{Name: "nested", Prog: b.MustBuild(),
		GridDim: 2, BlockDim: 1, Params: []uint64{lockA, lockB, data}}
	if _, err := dev.Launch(k); err != nil {
		t.Fatal(err)
	}
	// Both blocks held lock A around the write: common lockset, no race.
	for _, r := range det.Races() {
		if r.Category == CatLockset {
			t.Fatalf("nested-lock write flagged despite common outer lock: %v", r)
		}
	}
}

// Sorted output must be stable and ordered.
func TestSortedRacesOrder(t *testing.T) {
	d, _ := newDirectDetector(t)
	for i := 5; i >= 0; i-- {
		d.WarpMem(mkEvent(0, 0, 0, uint64(i)*4, true, 0, 0))
		d.WarpMem(mkEvent(0, 40, 0, uint64(i)*4, true, 0, 0))
	}
	sorted := d.SortedRaces()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Granule > sorted[i].Granule {
			t.Fatalf("races not sorted by granule: %v", sorted)
		}
	}
}
