package core

import (
	"math/bits"
	"sort"
	"sync"

	"haccrg/internal/bloom"
	"haccrg/internal/fault"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// sharedEntry is one shared-memory shadow entry: the paper's 12-bit
// format (1-bit modified, 1-bit shared, 10-bit tid). The zero value is
// NOT the reset state; reset() puts entries into the "no prior access"
// state (M=true, S=true).
type sharedEntry struct {
	tid      uint16
	modified bool
	shared   bool
	fresh    bool // M=true ∧ S=true encoding of "no access yet"
}

// globalEntry is one global-memory shadow entry: modified, shared,
// tid, bid, sid, sync ID, fence ID and the atomic-ID lockset signature
// (Section IV-B). present is the simulator-side "this granule has been
// claimed" marker — the flat-array shadow's replacement for map
// membership; it is not part of the architectural 52-bit word.
type globalEntry struct {
	tid      uint16
	bid      uint32
	sid      uint16
	modified bool
	shared   bool
	present  bool
	syncID   uint32
	fenceID  uint32
	sig      bloom.Sig
	wcycle   int64 // issue cycle of the recorded write (stale-L1 check)
}

// Detector is the HAccRG race-detection engine, implementing
// gpu.Detector. One Detector instance models all RDUs of the device:
// the per-SM shared-memory units and the per-partition global units.
// With Options.Parallel the global units run as asynchronous
// per-partition shards (see sharded.go); findings stay byte-identical
// to the serial engine.
type Detector struct {
	opt Options
	env gpu.Env

	kernel   string
	warpSize int

	// sharedShadow[sm][granule]; covers each SM's full shared tile.
	sharedShadow [][]sharedEntry

	// Cached partition mapping (the line-interleaved contract
	// documented on gpu.Env.PartitionFor): partition = (addr >>
	// partShift) mod parts. Hoisting it out of the Env interface saves
	// a dynamic call per lane on the global hot path.
	partShift uint
	parts     uint64
	partMask  uint64 // parts-1 when parts is a power of two, else 0

	// gunits are the global-memory RDU units: one serial unit, or one
	// shard per memory partition when the parallel engine is active.
	// Each unit owns its slice of the global shadow. gworkers are the
	// goroutines servicing them — min(partitions, GOMAXPROCS-1), with
	// workerOf mapping each partition to its (fixed) worker.
	gunits   []*gshard
	gworkers []*gworker
	workerOf []*gworker
	parMode  bool // the engine was built sharded for this device
	running  bool // shard workers are live (between KernelStart and end)
	wg       sync.WaitGroup

	// Sequence-tagged report merging (sharded.go): the sim thread
	// assigns seq in serial report order; quiescent points merge
	// simPending with the shards' buffers by seq.
	seq        uint64
	simPending []raceCand
	mergeBuf   []raceCand

	// Fence mirror and replay log for the sharded engine.
	fenceTab map[uint64]uint32
	fenceLog []gpu.FenceRead
	fenceBuf []fenceRead

	races []*Race
	seen  map[raceKey]*Race
	sites map[siteKey]struct{}

	// siteFilter is the running kernel's static race-freedom mask
	// (Options.StaticFilter), cached at KernelStart; siteFilter[pc]
	// true lets the RDUs skip that pc's checks. nil when no filter is
	// attached, the kernel is unknown to it, or a fault plan is live
	// (filtering would desynchronize the injector streams).
	siteFilter []bool

	stats Stats

	// scratch holds small per-event buffers reused across WarpMem
	// calls. A warp instruction touches at most WarpSize lanes, so
	// insertion-sorted slices replace the per-event maps the hot path
	// used to allocate; each buffer is dead once WarpMem returns, and
	// events arrive from one simulation goroutine, so reuse is
	// race-free.
	scratch struct {
		arrivals []lineArrival // distinct demand lines, sorted by line
		lines    []uint64      // distinct shadow lines, sorted (Fig. 8 mode)
		seen     []laneAddr    // intra-warp WAW dedup, insertion order
	}

	// Fault-injection state (see health.go). inj is non-nil only when
	// Options.Fault holds a non-empty plan; all fault hooks are gated
	// on it so the fault-free path stays byte-identical to a build
	// without the subsystem. Global-side fault state lives in the
	// gunits; this injector serves the shared-memory RDUs and the
	// sim-thread latency spikes.
	inj        *fault.Injector
	health     gpu.DetectorHealth
	quarShared map[uint64]struct{} // quarantined shared cells, (sm<<40 | granule)

	// Self-healing state (see sentinel.go): the online divergence
	// sentinel, and the fallback switch it (or the drain-stall
	// watchdog) throws to permanently degrade to the serial engine.
	sent           *sentinel
	engineFallback bool
}

// New builds a detector; options must validate.
func New(opt Options) (*Detector, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &Detector{
		opt:   opt,
		seen:  make(map[raceKey]*Race),
		sites: make(map[siteKey]struct{}),
		inj:   fault.New(opt.Fault, opt.FaultSeed),
	}, nil
}

// MustNew is New panicking on invalid options.
func MustNew(opt Options) *Detector {
	d, err := New(opt)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements gpu.Detector.
func (d *Detector) Name() string {
	switch {
	case d.opt.Shared && d.opt.Global:
		return "haccrg(shared+global)"
	case d.opt.Shared:
		return "haccrg(shared)"
	default:
		return "haccrg(global)"
	}
}

// Options returns the active configuration.
func (d *Detector) Options() Options { return d.opt }

// SetStaticFilter attaches (or, with nil, detaches) a static
// race-freedom filter after construction — the harness builds the
// detector first, derives the analyzer configuration from its options,
// and only then has kernels to analyze. Takes effect at the next
// KernelStart.
func (d *Detector) SetStaticFilter(f StaticFilter) { d.opt.StaticFilter = f }

// pcFiltered reports whether the running kernel's mask proves the
// site at pc race-free.
func (d *Detector) pcFiltered(pc int) bool {
	return d.siteFilter != nil && pc >= 0 && pc < len(d.siteFilter) && d.siteFilter[pc]
}

// Stats returns detection activity counters. With the sharded engine
// the per-unit counters are folded in after a drain, so mid-kernel
// reads see a serial-consistent cut.
func (d *Detector) Stats() Stats {
	d.quiesce()
	s := d.stats
	for _, u := range d.gunits {
		s.GlobalChecks += u.checks
		s.FenceLookups += u.fenceLookups
	}
	return s
}

// Races returns the distinct detected races, ordered by first
// detection. It deliberately does NOT drain the sharded engine —
// wrappers (journal.Recorder, trace.Recorder) poll it per event, and
// a drain per event would serialize the pipeline. Under the sharded
// engine it returns the races merged as of the last quiescent point;
// KernelEnd merges everything.
func (d *Detector) Races() []*Race { return d.races }

// SiteCount returns the number of distinct (kind, granule) race sites
// in the given space — the unit Table III counts false races in.
func (d *Detector) SiteCount(space isa.Space) int {
	d.quiesce()
	n := 0
	for k := range d.sites {
		if k.space == space {
			n++
		}
	}
	return n
}

// RaceGroups returns the set of distinct (space, kind, category)
// combinations among detected races — a PC-independent fingerprint
// used to tell whether an injected defect introduced a new kind of
// race relative to a baseline run.
func (d *Detector) RaceGroups() map[string]int {
	d.quiesce()
	m := make(map[string]int)
	for _, r := range d.races {
		m[r.Space.String()+"/"+r.Kind.String()+"/"+r.Category.String()]++
	}
	return m
}

// CategoryCounts returns distinct race counts per category.
func (d *Detector) CategoryCounts() map[Category]int {
	d.quiesce()
	m := make(map[Category]int)
	for _, r := range d.races {
		m[r.Category]++
	}
	return m
}

// Reset drops all recorded races and shadow state (between
// experiments; kernel boundaries reset shadow state automatically).
func (d *Detector) Reset() {
	d.Quiesce() // stop any live shard workers before tearing state down
	d.races = nil
	d.seen = make(map[raceKey]*Race)
	d.sites = make(map[siteKey]struct{})
	d.sharedShadow = nil
	d.siteFilter = nil
	d.stats = Stats{}
	d.seq = 0
	d.simPending = nil
	d.fenceLog = nil
	d.resetFaultState()
	d.gunits = nil // rebuilt (against the fresh injector) at next KernelStart
	d.gworkers = nil
	d.workerOf = nil
	d.sent = nil
	d.engineFallback = false
}

// KernelStart implements gpu.Detector: kernel launch is an implicit
// barrier; all shadow entries reset to the no-access state (the
// paper's cudaMemset of the global shadow at kernel boundaries).
func (d *Detector) KernelStart(env gpu.Env, kernelName string) {
	d.Quiesce() // defensive: a prior kernel that skipped KernelEnd
	d.env = env
	d.kernel = kernelName
	d.warpSize = env.Config().WarpSize
	d.siteFilter = nil
	if f := d.opt.StaticFilter; f != nil && d.inj == nil {
		d.siteFilter = f.FilterSites(kernelName)
	}
	d.partShift = uint(bits.TrailingZeros64(uint64(env.Config().SegmentBytes)))
	d.parts = uint64(env.Config().NumPartitions)
	d.partMask = 0
	if d.parts&(d.parts-1) == 0 {
		d.partMask = d.parts - 1
	}
	nsm := env.Config().NumSMs
	entries := env.Config().Shared.SizeBytes / d.opt.SharedGranularity
	if d.sharedShadow == nil || len(d.sharedShadow) != nsm || len(d.sharedShadow[0]) != entries {
		d.sharedShadow = make([][]sharedEntry, nsm)
		for i := range d.sharedShadow {
			d.sharedShadow[i] = make([]sharedEntry, entries)
		}
	}
	for i := range d.sharedShadow {
		resetShared(d.sharedShadow[i])
	}
	par := d.parallelFeasible(env.Config())
	want := 1
	if par {
		want = env.Config().NumPartitions
	}
	if d.gunits == nil || d.parMode != par || len(d.gunits) != want {
		d.buildUnits(env.Config(), par)
		d.parMode = par
	}
	for _, u := range d.gunits {
		u.shadow.reset()
		if u.inj != nil && u.inj != d.inj {
			u.inj.Reset()
		}
	}
	d.fenceLog = nil
	for k := range d.fenceTab {
		delete(d.fenceTab, k)
	}
	if d.inj != nil {
		// The launch's cycle clock restarts at zero, so queue and spike
		// phase state restart with it; the PRNG streams and the
		// quarantine sets persist (stuck cells are physical).
		d.inj.Reset()
	}
	if d.parMode {
		d.startWorkers()
	}
	d.sentinelStart(env, kernelName)
}

// KernelEnd implements gpu.Detector: bring the sharded engine to
// quiescence — drain the rings, merge buffered reports in serial
// order, collect the fence-read log — and park the workers. An
// observed kernel's divergence-sentinel verdict lands here, after the
// primary engine has fully settled.
func (d *Detector) KernelEnd() {
	d.Quiesce()
	d.sentinelEnd()
}

func resetShared(es []sharedEntry) {
	for i := range es {
		es[i] = sharedEntry{fresh: true, modified: true, shared: true}
	}
}

// BlockStart implements gpu.Detector: a new block's shared region is
// fresh; its slot's shadow entries reset (block start is an implicit
// barrier, and the region may be inherited from a retired block).
func (d *Detector) BlockStart(sm int, sharedBase, sharedSize int) {
	if s := d.sent; s != nil && s.active {
		s.ref.BlockStart(sm, sharedBase, sharedSize)
	}
	if !d.opt.Shared || sharedSize == 0 || d.sharedShadow == nil {
		return
	}
	lo := sharedBase / d.opt.SharedGranularity
	hi := (sharedBase + sharedSize + d.opt.SharedGranularity - 1) / d.opt.SharedGranularity
	shadow := d.sharedShadow[sm]
	if hi > len(shadow) {
		hi = len(shadow)
	}
	resetShared(shadow[lo:hi])
}

// Barrier implements gpu.Detector: reset the block's shared shadow
// entries and charge the invalidation cycles the paper simulates
// (entries are cleared one row per bank per cycle).
func (d *Detector) Barrier(sm, blockID int, sharedBase, sharedSize int, cycle int64) int64 {
	// Epoch barrier: a natural quiescent point for the sharded engine —
	// in-flight global checks drain and buffered reports merge, keeping
	// race visibility bounded by barrier intervals.
	d.quiesce()
	if s := d.sent; s != nil && s.active {
		s.ref.Barrier(sm, blockID, sharedBase, sharedSize, cycle)
	}
	if !d.opt.Shared || sharedSize == 0 {
		return 0
	}
	lo := sharedBase / d.opt.SharedGranularity
	hi := (sharedBase + sharedSize + d.opt.SharedGranularity - 1) / d.opt.SharedGranularity
	shadow := d.sharedShadow[sm]
	if hi > len(shadow) {
		hi = len(shadow)
	}
	resetShared(shadow[lo:hi])
	d.stats.BarrierInval++
	if !d.opt.ModelTraffic {
		return 0 // software builds charge their own costs
	}

	entries := int64(hi - lo)
	banks := int64(d.env.Config().Shared.Banks)
	stall := (entries + banks - 1) / banks

	if d.opt.SharedShadowInGlobal {
		// Invalidation becomes a sweep of global-memory shadow lines
		// written through this SM's L1.
		entryBytes := int64(2) // 12-bit entries rounded up
		lineBytes := int64(d.env.Config().SegmentBytes)
		base := d.sharedShadowBase(sm) + uint64(int64(lo)*entryBytes)
		span := entries * entryBytes
		var done int64 = cycle
		for off := int64(0); off < span; off += lineBytes {
			start := cycle
			if d.inj != nil {
				start = d.spiked(fault.UnitShared, sm, start)
			}
			t := d.env.InstrTx(sm, start, base+uint64(off), true)
			if t > done {
				done = t
			}
			d.stats.ShadowWrites++
		}
		return done - cycle
	}
	return stall
}

// sharedShadowBase returns where SM sm's software shared-shadow region
// lives in device memory (above the global shadow region).
func (d *Detector) sharedShadowBase(sm int) uint64 {
	globalSpan := d.env.GlobalMemSize() / uint64(d.opt.GlobalGranularity) * 8
	tile := uint64(d.env.Config().Shared.SizeBytes / d.opt.SharedGranularity * 2)
	return d.env.ShadowBase() + globalSpan + uint64(sm)*tile
}

// WarpMem implements gpu.Detector: dispatch one warp memory
// instruction to the shared- or global-memory RDU. On sentinel-
// observed kernels the event is also forwarded (as a copy) to the
// serial reference after the primary dispatch — the primary's
// parallel path has already detached the lanes into owned batches by
// the time it returns, so the caller's storage is intact.
func (d *Detector) WarpMem(ev *gpu.WarpMemEvent) int64 {
	var stall int64
	switch ev.Space {
	case isa.SpaceShared:
		if !d.opt.Shared {
			return 0
		}
		stall = d.sharedRDU(ev)
	case isa.SpaceGlobal:
		if !d.opt.Global {
			return 0
		}
		stall = d.globalRDU(ev)
	default:
		return 0
	}
	if s := d.sent; s != nil && s.active {
		s.observe(ev)
	}
	return stall
}

// report records one dynamic race occurrence from the simulation
// thread (shared-memory RDUs and the intra-warp check). Every report —
// applied now or buffered for a shard-merge — consumes one global
// sequence number, so a quiescent-point merge replays the serial
// report order exactly.
func (d *Detector) report(space isa.Space, kind Kind, cat Category, pc int, stmt string, granule, addr uint64,
	firstTid int, firstBlock int, secondTid, secondBlock int, cycle int64) {
	c := raceCand{
		seq: d.seq, kernel: d.kernel,
		space: space, kind: kind, cat: cat, pc: pc, stmt: stmt,
		granule: granule, addr: addr,
		firstTid: firstTid, firstBlock: firstBlock,
		secondTid: secondTid, secondBlock: secondBlock,
		cycle: cycle,
	}
	d.seq++
	if d.running {
		d.simPending = append(d.simPending, c)
		return
	}
	d.applyCand(&c)
}

// applyCand materializes one race report: dedup against the seen map,
// dynamic counting, and the MaxRaces cap — the order-sensitive tail of
// detection, always executed in serial report order.
func (d *Detector) applyCand(c *raceCand) {
	d.stats.Reports++
	if c.space == isa.SpaceShared {
		d.stats.SharedReports++
	} else {
		d.stats.GlobalReports++
	}
	d.sites[siteKey{c.space, c.kind, c.granule}] = struct{}{}
	key := raceKey{c.kernel, c.space, c.kind, c.cat, c.pc, c.granule}
	if r, ok := d.seen[key]; ok {
		r.Count++
		return
	}
	if d.opt.MaxRaces > 0 && len(d.races) >= d.opt.MaxRaces {
		return
	}
	r := &Race{
		Kernel: c.kernel, Space: c.space, Kind: c.kind, Category: c.cat,
		PC: c.pc, Stmt: c.stmt, Granule: c.granule, Addr: c.addr,
		FirstTid: c.firstTid, FirstBlock: c.firstBlock,
		SecondTid: c.secondTid, SecondBlock: c.secondBlock,
		Cycle: c.cycle, Count: 1,
	}
	d.seen[key] = r
	d.races = append(d.races, r)
}

// SortedRaces returns races ordered by (kernel, pc, granule) for
// stable reporting.
func (d *Detector) SortedRaces() []*Race {
	d.quiesce()
	out := make([]*Race, len(d.races))
	copy(out, d.races)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		return a.Granule < b.Granule
	})
	return out
}
