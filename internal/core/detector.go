package core

import (
	"math/bits"
	"sort"
	"sync"

	"haccrg/internal/fault"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// Detector is the HAccRG race-detection engine, implementing
// gpu.Detector. One Detector instance models all RDUs of the device:
// the per-SM shared-memory units and the per-partition global units.
// With Options.Parallel the global units run as asynchronous
// per-partition shards (sharded.go); with Options.ParallelShared the
// shared-memory units do the same per SM (shared_sharded.go). Findings
// stay byte-identical to the serial engine in every combination.
type Detector struct {
	opt Options
	env gpu.Env

	kernel   string
	warpSize int
	// warpShift strength-reduces the warp-ID division on the check hot
	// path: tid>>warpShift when the warp size is a power of two (every
	// shipped config), -1 to fall back to division when it is not.
	warpShift int

	// sharedShadow[sm][granule] of packed 12-bit entries; covers each
	// SM's full shared tile. The per-SM units alias these slices.
	sharedShadow [][]sharedWord

	// Cached partition mapping (the line-interleaved contract
	// documented on gpu.Env.PartitionFor): partition = (addr >>
	// partShift) mod parts. Hoisting it out of the Env interface saves
	// a dynamic call per lane on the global hot path.
	partShift uint
	parts     uint64
	partMask  uint64 // parts-1 when parts is a power of two, else 0

	// gunits are the global-memory RDU units: one serial unit, or one
	// shard per memory partition when the parallel engine is active.
	// Each unit owns its slice of the global shadow. gworkers are the
	// goroutines servicing them, with workerOf mapping each partition
	// to its (fixed) worker.
	gunits   []*gshard
	gworkers []*gworker
	workerOf []*gworker
	parMode  bool // the global engine was built sharded for this device

	// sunits are the per-SM shared-memory RDU units (built in both
	// serial and sharded modes — the serial engine runs them inline on
	// the sim thread). sworkers/sworkerOf mirror the global layout when
	// Options.ParallelShared shards them.
	sunits    []*sshard
	sworkers  []*gworker
	sworkerOf []*gworker
	sparMode  bool // the shared engine was built sharded for this device

	// Per-kernel engine state. gact/sact arm the async dispatch paths
	// at KernelStart; grunning/srunning flip when a kernel's lane volume
	// crosses engageLanes and the rings actually engage (tiny kernels
	// stay inline on the sim thread — ring hand-off costs more than it
	// buys below a few thousand lanes). glanes/slanes count dispatched
	// lanes toward that threshold.
	gact     bool
	sact     bool
	grunning bool
	srunning bool
	glanes   int
	slanes   int
	wg       sync.WaitGroup

	// Sequence-tagged report merging (sharded.go): the sim thread
	// assigns seq in serial report order; quiescent points merge
	// simPending with the shards' buffers by seq.
	seq        uint64
	simPending []raceCand
	mergeBuf   []raceCand

	// Fence mirror and replay log for the sharded engine.
	fenceTab map[uint64]uint32
	fenceLog []gpu.FenceRead
	fenceBuf []fenceRead

	races []*Race
	seen  map[raceKey]*Race
	sites map[siteKey]struct{}

	// siteFilter is the running kernel's static race-freedom mask
	// (Options.StaticFilter), cached at KernelStart; siteFilter[pc]
	// true lets the RDUs skip that pc's checks. nil when no filter is
	// attached, the kernel is unknown to it, or a fault plan is live
	// (filtering would desynchronize the injector streams).
	siteFilter []bool

	// seedPend maps pending witness-seeded global granules to their
	// seeds (Options.WitnessSeeds), populated at KernelStart; the first
	// touching lane fires the report and retires the entry. Unlike the
	// filter it is NOT inert under fault plans — seeds add a report on
	// the simulation thread without consuming injector randomness or
	// altering the check stream.
	seedPend map[uint64]*SeedWitness

	stats Stats

	// scratch holds small per-event buffers reused across WarpMem
	// calls. A warp instruction touches at most WarpSize lanes, so
	// insertion-sorted slices replace the per-event maps the hot path
	// used to allocate; each buffer is dead once WarpMem returns, and
	// events arrive from one simulation goroutine, so reuse is
	// race-free.
	scratch struct {
		arrivals []lineArrival // distinct demand lines, sorted by line
		lines    []uint64      // distinct shadow lines, sorted (Fig. 8 mode)
		seen     []laneAddr    // intra-warp WAW dedup, insertion order
	}

	// Fault-injection state (see health.go). inj is non-nil only when
	// Options.Fault holds a non-empty plan; all fault hooks are gated
	// on it so the fault-free path stays byte-identical to a build
	// without the subsystem. Per-unit fault state (quarantine sets,
	// incident counters) lives in the gunits and sunits; this injector
	// backs the serial-mode units and the sim-thread latency spikes.
	inj    *fault.Injector
	health gpu.DetectorHealth

	// Self-healing state (see sentinel.go): the online divergence
	// sentinel, and the fallback switch it (or the drain-stall
	// watchdog) throws to permanently degrade to the serial engine.
	sent           *sentinel
	engineFallback bool
}

// New builds a detector; options must validate.
func New(opt Options) (*Detector, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &Detector{
		opt:   opt,
		seen:  make(map[raceKey]*Race),
		sites: make(map[siteKey]struct{}),
		inj:   fault.New(opt.Fault, opt.FaultSeed),
	}, nil
}

// MustNew is New panicking on invalid options.
func MustNew(opt Options) *Detector {
	d, err := New(opt)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements gpu.Detector.
func (d *Detector) Name() string {
	switch {
	case d.opt.Shared && d.opt.Global:
		return "haccrg(shared+global)"
	case d.opt.Shared:
		return "haccrg(shared)"
	default:
		return "haccrg(global)"
	}
}

// Options returns the active configuration.
func (d *Detector) Options() Options { return d.opt }

// SetStaticFilter attaches (or, with nil, detaches) a static
// race-freedom filter after construction — the harness builds the
// detector first, derives the analyzer configuration from its options,
// and only then has kernels to analyze. Takes effect at the next
// KernelStart.
func (d *Detector) SetStaticFilter(f StaticFilter) { d.opt.StaticFilter = f }

// SetWitnessSeeds attaches (or, with nil, detaches) a witness seeder
// after construction, mirroring SetStaticFilter. Mutating d.opt means
// a divergence sentinel built later clones the seeds into its serial
// reference. Takes effect at the next KernelStart.
func (d *Detector) SetWitnessSeeds(s WitnessSeeder) { d.opt.WitnessSeeds = s }

// pcFiltered reports whether the running kernel's mask proves the
// site at pc race-free.
func (d *Detector) pcFiltered(pc int) bool {
	return d.siteFilter != nil && pc >= 0 && pc < len(d.siteFilter) && d.siteFilter[pc]
}

// Stats returns detection activity counters. With the sharded engine
// the per-unit counters are folded in after a drain, so mid-kernel
// reads see a serial-consistent cut.
func (d *Detector) Stats() Stats {
	d.quiesce()
	s := d.stats
	for _, u := range d.gunits {
		s.GlobalChecks += u.checks
		s.FenceLookups += u.fenceLookups
	}
	for _, u := range d.sunits {
		s.SharedChecks += u.checks
	}
	return s
}

// Races returns the distinct detected races, ordered by first
// detection. It deliberately does NOT drain the sharded engine —
// wrappers (journal.Recorder, trace.Recorder) poll it per event, and
// a drain per event would serialize the pipeline. Under the sharded
// engine it returns the races merged as of the last quiescent point;
// KernelEnd merges everything.
func (d *Detector) Races() []*Race { return d.races }

// SiteCount returns the number of distinct (kind, granule) race sites
// in the given space — the unit Table III counts false races in.
func (d *Detector) SiteCount(space isa.Space) int {
	d.quiesce()
	n := 0
	for k := range d.sites {
		if k.space == space {
			n++
		}
	}
	return n
}

// RaceGroups returns the set of distinct (space, kind, category)
// combinations among detected races — a PC-independent fingerprint
// used to tell whether an injected defect introduced a new kind of
// race relative to a baseline run.
func (d *Detector) RaceGroups() map[string]int {
	d.quiesce()
	m := make(map[string]int)
	for _, r := range d.races {
		m[r.Space.String()+"/"+r.Kind.String()+"/"+r.Category.String()]++
	}
	return m
}

// CategoryCounts returns distinct race counts per category.
func (d *Detector) CategoryCounts() map[Category]int {
	d.quiesce()
	m := make(map[Category]int)
	for _, r := range d.races {
		m[r.Category]++
	}
	return m
}

// Reset drops all recorded races and shadow state (between
// experiments; kernel boundaries reset shadow state automatically).
func (d *Detector) Reset() {
	d.Quiesce() // stop any live shard workers before tearing state down
	d.races = nil
	d.seen = make(map[raceKey]*Race)
	d.sites = make(map[siteKey]struct{})
	d.sharedShadow = nil
	d.siteFilter = nil
	d.seedPend = nil
	d.stats = Stats{}
	d.seq = 0
	d.simPending = nil
	d.fenceLog = nil
	d.resetFaultState()
	d.gunits = nil // rebuilt (against the fresh injector) at next KernelStart
	d.gworkers = nil
	d.workerOf = nil
	d.sunits = nil
	d.sworkers = nil
	d.sworkerOf = nil
	d.sent = nil
	d.engineFallback = false
}

// KernelStart implements gpu.Detector: kernel launch is an implicit
// barrier; all shadow entries reset to the no-access state (the
// paper's cudaMemset of the global shadow at kernel boundaries).
func (d *Detector) KernelStart(env gpu.Env, kernelName string) {
	d.Quiesce() // defensive: a prior kernel that skipped KernelEnd
	d.env = env
	d.kernel = kernelName
	d.warpSize = env.Config().WarpSize
	d.warpShift = -1
	if d.warpSize&(d.warpSize-1) == 0 {
		d.warpShift = bits.TrailingZeros(uint(d.warpSize))
	}
	d.siteFilter = nil
	if f := d.opt.StaticFilter; f != nil && d.inj == nil {
		d.siteFilter = f.FilterSites(kernelName)
	}
	d.seedPend = nil
	if s := d.opt.WitnessSeeds; s != nil {
		for _, w := range s.WitnessSeeds(kernelName) {
			if w.Space != isa.SpaceGlobal {
				continue
			}
			if d.seedPend == nil {
				d.seedPend = make(map[uint64]*SeedWitness)
			}
			seed := w
			d.seedPend[w.Granule] = &seed
		}
	}
	d.partShift = uint(bits.TrailingZeros64(uint64(env.Config().SegmentBytes)))
	d.parts = uint64(env.Config().NumPartitions)
	d.partMask = 0
	if d.parts&(d.parts-1) == 0 {
		d.partMask = d.parts - 1
	}
	nsm := env.Config().NumSMs
	entries := env.Config().Shared.SizeBytes / d.opt.SharedGranularity
	if d.sharedShadow == nil || len(d.sharedShadow) != nsm || len(d.sharedShadow[0]) != entries {
		d.sharedShadow = make([][]sharedWord, nsm)
		for i := range d.sharedShadow {
			d.sharedShadow[i] = make([]sharedWord, entries)
		}
		d.sunits = nil // shadow geometry changed; units alias stale slices
	}
	for i := range d.sharedShadow {
		resetShared(d.sharedShadow[i])
	}
	par := d.parallelFeasible(env.Config())
	spar := d.sharedParallelFeasible(env.Config())
	want := 1
	if par {
		want = env.Config().NumPartitions
	}
	if d.gunits == nil || d.parMode != par || len(d.gunits) != want {
		d.buildUnits(env.Config(), par, spar)
		d.parMode = par
	}
	if d.sunits == nil || d.sparMode != spar || len(d.sunits) != nsm {
		d.buildSharedUnits(nsm, par, spar)
		d.sparMode = spar
	}
	for sm, u := range d.sunits {
		u.shadow = d.sharedShadow[sm]
		if u.inj != nil && u.inj != d.inj {
			u.inj.Reset()
		}
	}
	for _, u := range d.gunits {
		u.shadow.reset()
		if u.inj != nil && u.inj != d.inj {
			u.inj.Reset()
		}
	}
	d.fenceLog = nil
	if (par || spar) && d.fenceTab == nil {
		d.fenceTab = make(map[uint64]uint32)
	}
	for k := range d.fenceTab {
		delete(d.fenceTab, k)
	}
	if d.inj != nil {
		// The launch's cycle clock restarts at zero, so queue and spike
		// phase state restart with it; the PRNG streams and the
		// quarantine sets persist (stuck cells are physical).
		d.inj.Reset()
	}
	// Arm the async engines; the rings engage lazily once the kernel's
	// lane volume proves it is worth it (see engageLanes).
	d.gact = par
	d.sact = spar
	d.glanes, d.slanes = 0, 0
	d.resetQueueStats()
	d.sentinelStart(env, kernelName)
}

// KernelEnd implements gpu.Detector: bring the sharded engine to
// quiescence — drain the rings, merge buffered reports in serial
// order, collect the fence-read log — and park the workers. An
// observed kernel's divergence-sentinel verdict lands here, after the
// primary engine has fully settled.
func (d *Detector) KernelEnd() {
	d.Quiesce()
	d.sentinelEnd()
}

// BlockStart implements gpu.Detector: a new block's shared region is
// fresh; its slot's shadow entries reset (block start is an implicit
// barrier, and the region may be inherited from a retired block).
// Under the sharded shared engine with live workers the reset rides
// the owning SM's ring in stream order — a drain here would serialize
// on every block rotation.
func (d *Detector) BlockStart(sm int, sharedBase, sharedSize int) {
	if s := d.sent; s != nil && s.active {
		s.ref.BlockStart(sm, sharedBase, sharedSize)
	}
	if !d.opt.Shared || sharedSize == 0 || d.sharedShadow == nil {
		return
	}
	lo := sharedBase / d.opt.SharedGranularity
	hi := (sharedBase + sharedSize + d.opt.SharedGranularity - 1) / d.opt.SharedGranularity
	shadow := d.sharedShadow[sm]
	if hi > len(shadow) {
		hi = len(shadow)
	}
	if d.srunning {
		d.enqueueSharedReset(sm, lo, hi)
		return
	}
	resetShared(shadow[lo:hi])
}

// Barrier implements gpu.Detector: reset the block's shared shadow
// entries and charge the invalidation cycles the paper simulates
// (entries are cleared one row per bank per cycle).
func (d *Detector) Barrier(sm, blockID int, sharedBase, sharedSize int, cycle int64) int64 {
	// Epoch barrier: a natural quiescent point for the sharded engine —
	// in-flight global checks drain and buffered reports merge, keeping
	// race visibility bounded by barrier intervals.
	d.quiesce()
	if s := d.sent; s != nil && s.active {
		s.ref.Barrier(sm, blockID, sharedBase, sharedSize, cycle)
	}
	if !d.opt.Shared || sharedSize == 0 {
		return 0
	}
	lo := sharedBase / d.opt.SharedGranularity
	hi := (sharedBase + sharedSize + d.opt.SharedGranularity - 1) / d.opt.SharedGranularity
	shadow := d.sharedShadow[sm]
	if hi > len(shadow) {
		hi = len(shadow)
	}
	resetShared(shadow[lo:hi])
	d.stats.BarrierInval++
	if !d.opt.ModelTraffic {
		return 0 // software builds charge their own costs
	}

	entries := int64(hi - lo)
	banks := int64(d.env.Config().Shared.Banks)
	stall := (entries + banks - 1) / banks

	if d.opt.SharedShadowInGlobal {
		// Invalidation becomes a sweep of global-memory shadow lines
		// written through this SM's L1.
		entryBytes := int64(2) // 12-bit entries rounded up
		lineBytes := int64(d.env.Config().SegmentBytes)
		base := d.sharedShadowBase(sm) + uint64(int64(lo)*entryBytes)
		span := entries * entryBytes
		var done int64 = cycle
		for off := int64(0); off < span; off += lineBytes {
			start := cycle
			if d.inj != nil {
				start = d.spiked(fault.UnitShared, sm, start)
			}
			t := d.env.InstrTx(sm, start, base+uint64(off), true)
			if t > done {
				done = t
			}
			d.stats.ShadowWrites++
		}
		return done - cycle
	}
	return stall
}

// sharedShadowBase returns where SM sm's software shared-shadow region
// lives in device memory (above the global shadow region).
func (d *Detector) sharedShadowBase(sm int) uint64 {
	globalSpan := d.env.GlobalMemSize() / uint64(d.opt.GlobalGranularity) * 8
	tile := uint64(d.env.Config().Shared.SizeBytes / d.opt.SharedGranularity * 2)
	return d.env.ShadowBase() + globalSpan + uint64(sm)*tile
}

// WarpMem implements gpu.Detector: dispatch one warp memory
// instruction to the shared- or global-memory RDU. On sentinel-
// observed kernels the event is also forwarded (as a copy) to the
// serial reference after the primary dispatch — the primary's
// parallel path has already detached the lanes into owned batches by
// the time it returns, so the caller's storage is intact.
func (d *Detector) WarpMem(ev *gpu.WarpMemEvent) int64 {
	var stall int64
	switch ev.Space {
	case isa.SpaceShared:
		if !d.opt.Shared {
			return 0
		}
		stall = d.sharedRDU(ev)
	case isa.SpaceGlobal:
		if !d.opt.Global {
			return 0
		}
		stall = d.globalRDU(ev)
	default:
		return 0
	}
	if s := d.sent; s != nil && s.active {
		s.observe(ev)
	}
	return stall
}

// report records one dynamic race occurrence from the simulation
// thread (shared-memory RDUs and the intra-warp check). Every report —
// applied now or buffered for a shard-merge — consumes one global
// sequence number, so a quiescent-point merge replays the serial
// report order exactly.
func (d *Detector) report(space isa.Space, kind Kind, cat Category, pc int, stmt string, granule, addr uint64,
	firstTid int, firstBlock int, secondTid, secondBlock int, cycle int64) {
	d.reportProv("", space, kind, cat, pc, stmt, granule, addr,
		firstTid, firstBlock, secondTid, secondBlock, cycle)
}

// reportProv is report with an explicit provenance tag; pre-seeded
// witness races pass "StaticWitness", the state machine passes "".
func (d *Detector) reportProv(prov string, space isa.Space, kind Kind, cat Category, pc int, stmt string, granule, addr uint64,
	firstTid int, firstBlock int, secondTid, secondBlock int, cycle int64) {
	c := raceCand{
		seq: d.seq, kernel: d.kernel,
		space: space, kind: kind, cat: cat, pc: pc, stmt: stmt,
		granule: granule, addr: addr,
		firstTid: firstTid, firstBlock: firstBlock,
		secondTid: secondTid, secondBlock: secondBlock,
		prov:  prov,
		cycle: cycle,
	}
	d.seq++
	if d.gact || d.sact {
		d.simPending = append(d.simPending, c)
		return
	}
	d.applyCand(&c)
}

// applyCand materializes one race report: dedup against the seen map,
// dynamic counting, and the MaxRaces cap — the order-sensitive tail of
// detection, always executed in serial report order.
func (d *Detector) applyCand(c *raceCand) {
	d.stats.Reports++
	if c.space == isa.SpaceShared {
		d.stats.SharedReports++
	} else {
		d.stats.GlobalReports++
	}
	d.sites[siteKey{c.space, c.kind, c.granule}] = struct{}{}
	key := raceKey{c.kernel, c.space, c.kind, c.cat, c.pc, c.granule}
	if r, ok := d.seen[key]; ok {
		r.Count++
		return
	}
	if d.opt.MaxRaces > 0 && len(d.races) >= d.opt.MaxRaces {
		return
	}
	r := &Race{
		Kernel: c.kernel, Space: c.space, Kind: c.kind, Category: c.cat,
		PC: c.pc, Stmt: c.stmt, Granule: c.granule, Addr: c.addr,
		FirstTid: c.firstTid, FirstBlock: c.firstBlock,
		SecondTid: c.secondTid, SecondBlock: c.secondBlock,
		Provenance: c.prov,
		Cycle:      c.cycle, Count: 1,
	}
	d.seen[key] = r
	d.races = append(d.races, r)
}

// SortedRaces returns races ordered by (kernel, pc, granule) for
// stable reporting.
func (d *Detector) SortedRaces() []*Race {
	d.quiesce()
	out := make([]*Race, len(d.races))
	copy(out, d.races)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		return a.Granule < b.Granule
	})
	return out
}
