package core

import (
	"sort"

	"haccrg/internal/bloom"
	"haccrg/internal/fault"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// sharedEntry is one shared-memory shadow entry: the paper's 12-bit
// format (1-bit modified, 1-bit shared, 10-bit tid). The zero value is
// NOT the reset state; reset() puts entries into the "no prior access"
// state (M=true, S=true).
type sharedEntry struct {
	tid      uint16
	modified bool
	shared   bool
	fresh    bool // M=true ∧ S=true encoding of "no access yet"
}

// globalEntry is one global-memory shadow entry: modified, shared,
// tid, bid, sid, sync ID, fence ID and the atomic-ID lockset signature
// (Section IV-B). present is the simulator-side "this granule has been
// claimed" marker — the flat-array shadow's replacement for map
// membership; it is not part of the architectural 52-bit word.
type globalEntry struct {
	tid      uint16
	bid      uint32
	sid      uint16
	modified bool
	shared   bool
	present  bool
	syncID   uint32
	fenceID  uint32
	sig      bloom.Sig
	wcycle   int64 // issue cycle of the recorded write (stale-L1 check)
}

// Detector is the HAccRG race-detection engine, implementing
// gpu.Detector. One Detector instance models all RDUs of the device:
// the per-SM shared-memory units and the per-partition global units.
type Detector struct {
	opt Options
	env gpu.Env

	kernel   string
	warpSize int

	// sharedShadow[sm][granule]; covers each SM's full shared tile.
	sharedShadow [][]sharedEntry
	globalShadow pagedShadow

	races []*Race
	seen  map[raceKey]*Race
	sites map[siteKey]struct{}

	stats Stats

	// scratch holds small per-event buffers reused across WarpMem
	// calls. A warp instruction touches at most WarpSize lanes, so
	// insertion-sorted slices replace the per-event maps the hot path
	// used to allocate; each buffer is dead once WarpMem returns, and
	// one Detector serves one device on one goroutine, so reuse is
	// race-free.
	scratch struct {
		arrivals []lineArrival // distinct demand lines, sorted by line
		lines    []uint64      // distinct shadow lines, sorted (Fig. 8 mode)
		seen     []laneAddr    // intra-warp WAW dedup, insertion order
	}

	// Fault-injection state (see health.go). inj is non-nil only when
	// Options.Fault holds a non-empty plan; all fault hooks are gated
	// on it so the fault-free path stays byte-identical to a build
	// without the subsystem.
	inj        *fault.Injector
	health     gpu.DetectorHealth
	quarShared map[uint64]struct{} // quarantined shared cells, (sm<<40 | granule)
	quarGlobal map[uint64]struct{} // quarantined global granules
	fillSum    float64             // summed lockset-signature fill ratios
	fillN      int64               // observations behind fillSum
}

// New builds a detector; options must validate.
func New(opt Options) (*Detector, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &Detector{
		opt:   opt,
		seen:  make(map[raceKey]*Race),
		sites: make(map[siteKey]struct{}),
		inj:   fault.New(opt.Fault, opt.FaultSeed),
	}, nil
}

// MustNew is New panicking on invalid options.
func MustNew(opt Options) *Detector {
	d, err := New(opt)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements gpu.Detector.
func (d *Detector) Name() string {
	switch {
	case d.opt.Shared && d.opt.Global:
		return "haccrg(shared+global)"
	case d.opt.Shared:
		return "haccrg(shared)"
	default:
		return "haccrg(global)"
	}
}

// Options returns the active configuration.
func (d *Detector) Options() Options { return d.opt }

// Stats returns detection activity counters.
func (d *Detector) Stats() Stats { return d.stats }

// Races returns the distinct detected races, ordered by first
// detection.
func (d *Detector) Races() []*Race { return d.races }

// SiteCount returns the number of distinct (kind, granule) race sites
// in the given space — the unit Table III counts false races in.
func (d *Detector) SiteCount(space isa.Space) int {
	n := 0
	for k := range d.sites {
		if k.space == space {
			n++
		}
	}
	return n
}

// RaceGroups returns the set of distinct (space, kind, category)
// combinations among detected races — a PC-independent fingerprint
// used to tell whether an injected defect introduced a new kind of
// race relative to a baseline run.
func (d *Detector) RaceGroups() map[string]int {
	m := make(map[string]int)
	for _, r := range d.races {
		m[r.Space.String()+"/"+r.Kind.String()+"/"+r.Category.String()]++
	}
	return m
}

// CategoryCounts returns distinct race counts per category.
func (d *Detector) CategoryCounts() map[Category]int {
	m := make(map[Category]int)
	for _, r := range d.races {
		m[r.Category]++
	}
	return m
}

// Reset drops all recorded races and shadow state (between
// experiments; kernel boundaries reset shadow state automatically).
func (d *Detector) Reset() {
	d.races = nil
	d.seen = make(map[raceKey]*Race)
	d.sites = make(map[siteKey]struct{})
	d.globalShadow.drop()
	d.sharedShadow = nil
	d.stats = Stats{}
	d.resetFaultState()
}

// KernelStart implements gpu.Detector: kernel launch is an implicit
// barrier; all shadow entries reset to the no-access state (the
// paper's cudaMemset of the global shadow at kernel boundaries).
func (d *Detector) KernelStart(env gpu.Env, kernelName string) {
	d.env = env
	d.kernel = kernelName
	d.warpSize = env.Config().WarpSize
	nsm := env.Config().NumSMs
	entries := env.Config().Shared.SizeBytes / d.opt.SharedGranularity
	if d.sharedShadow == nil || len(d.sharedShadow) != nsm || len(d.sharedShadow[0]) != entries {
		d.sharedShadow = make([][]sharedEntry, nsm)
		for i := range d.sharedShadow {
			d.sharedShadow[i] = make([]sharedEntry, entries)
		}
	}
	for i := range d.sharedShadow {
		resetShared(d.sharedShadow[i])
	}
	d.globalShadow.reset()
	if d.inj != nil {
		// The launch's cycle clock restarts at zero, so queue and spike
		// phase state restart with it; the PRNG stream and the
		// quarantine set persist (stuck cells are physical).
		d.inj.Reset()
	}
}

// KernelEnd implements gpu.Detector.
func (d *Detector) KernelEnd() {}

func resetShared(es []sharedEntry) {
	for i := range es {
		es[i] = sharedEntry{fresh: true, modified: true, shared: true}
	}
}

// BlockStart implements gpu.Detector: a new block's shared region is
// fresh; its slot's shadow entries reset (block start is an implicit
// barrier, and the region may be inherited from a retired block).
func (d *Detector) BlockStart(sm int, sharedBase, sharedSize int) {
	if !d.opt.Shared || sharedSize == 0 || d.sharedShadow == nil {
		return
	}
	lo := sharedBase / d.opt.SharedGranularity
	hi := (sharedBase + sharedSize + d.opt.SharedGranularity - 1) / d.opt.SharedGranularity
	shadow := d.sharedShadow[sm]
	if hi > len(shadow) {
		hi = len(shadow)
	}
	resetShared(shadow[lo:hi])
}

// Barrier implements gpu.Detector: reset the block's shared shadow
// entries and charge the invalidation cycles the paper simulates
// (entries are cleared one row per bank per cycle).
func (d *Detector) Barrier(sm, blockID int, sharedBase, sharedSize int, cycle int64) int64 {
	if !d.opt.Shared || sharedSize == 0 {
		return 0
	}
	lo := sharedBase / d.opt.SharedGranularity
	hi := (sharedBase + sharedSize + d.opt.SharedGranularity - 1) / d.opt.SharedGranularity
	shadow := d.sharedShadow[sm]
	if hi > len(shadow) {
		hi = len(shadow)
	}
	resetShared(shadow[lo:hi])
	d.stats.BarrierInval++
	if !d.opt.ModelTraffic {
		return 0 // software builds charge their own costs
	}

	entries := int64(hi - lo)
	banks := int64(d.env.Config().Shared.Banks)
	stall := (entries + banks - 1) / banks

	if d.opt.SharedShadowInGlobal {
		// Invalidation becomes a sweep of global-memory shadow lines
		// written through this SM's L1.
		entryBytes := int64(2) // 12-bit entries rounded up
		lineBytes := int64(d.env.Config().SegmentBytes)
		base := d.sharedShadowBase(sm) + uint64(int64(lo)*entryBytes)
		span := entries * entryBytes
		var done int64 = cycle
		for off := int64(0); off < span; off += lineBytes {
			start := cycle
			if d.inj != nil {
				start = d.spiked(start)
			}
			t := d.env.InstrTx(sm, start, base+uint64(off), true)
			if t > done {
				done = t
			}
			d.stats.ShadowWrites++
		}
		return done - cycle
	}
	return stall
}

// sharedShadowBase returns where SM sm's software shared-shadow region
// lives in device memory (above the global shadow region).
func (d *Detector) sharedShadowBase(sm int) uint64 {
	globalSpan := d.env.GlobalMemSize() / uint64(d.opt.GlobalGranularity) * 8
	tile := uint64(d.env.Config().Shared.SizeBytes / d.opt.SharedGranularity * 2)
	return d.env.ShadowBase() + globalSpan + uint64(sm)*tile
}

// WarpMem implements gpu.Detector: dispatch one warp memory
// instruction to the shared- or global-memory RDU.
func (d *Detector) WarpMem(ev *gpu.WarpMemEvent) int64 {
	switch ev.Space {
	case isa.SpaceShared:
		if !d.opt.Shared {
			return 0
		}
		return d.sharedRDU(ev)
	case isa.SpaceGlobal:
		if !d.opt.Global {
			return 0
		}
		return d.globalRDU(ev)
	}
	return 0
}

// report records one dynamic race occurrence.
func (d *Detector) report(space isa.Space, kind Kind, cat Category, pc int, stmt string, granule, addr uint64,
	firstTid int, firstBlock int, secondTid, secondBlock int, cycle int64) {
	d.stats.Reports++
	if space == isa.SpaceShared {
		d.stats.SharedReports++
	} else {
		d.stats.GlobalReports++
	}
	d.sites[siteKey{space, kind, granule}] = struct{}{}
	key := raceKey{d.kernel, space, kind, cat, pc, granule}
	if r, ok := d.seen[key]; ok {
		r.Count++
		return
	}
	if d.opt.MaxRaces > 0 && len(d.races) >= d.opt.MaxRaces {
		return
	}
	r := &Race{
		Kernel: d.kernel, Space: space, Kind: kind, Category: cat,
		PC: pc, Stmt: stmt, Granule: granule, Addr: addr,
		FirstTid: firstTid, FirstBlock: firstBlock,
		SecondTid: secondTid, SecondBlock: secondBlock,
		Cycle: cycle, Count: 1,
	}
	d.seen[key] = r
	d.races = append(d.races, r)
}

// SortedRaces returns races ordered by (kernel, pc, granule) for
// stable reporting.
func (d *Detector) SortedRaces() []*Race {
	out := make([]*Race, len(d.races))
	copy(out, d.races)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		return a.Granule < b.Granule
	})
	return out
}
