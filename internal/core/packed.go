package core

import "haccrg/internal/bloom"

// This file is the single source of truth for HAccRG's shadow-word
// encodings. The paper stores shared-memory shadow entries as 12-bit
// words beside the banks and global-memory entries as 52-bit words in
// device memory; the simulator used to model both as structs of bools
// and ints, which made the hot-path state check a chain of field loads
// and the fault-corruption layout (health.go) and the hardware cost
// model (cost.go) two hand-maintained copies of the same bit layout.
// Both entries are now bit-packed words: the architectural field
// offsets below drive the state machines, the corruption model, and
// the Section VI-C2 cost arithmetic, so none of the three can drift.

// Architectural field widths (bits) of the paper's shadow formats
// (Table I machine: 1024 threads/SM, 8 blocks/SM, 30 SMs, 10-bit
// logical clocks). The corruption model flips and sticks bits at
// exactly these positions regardless of the simulated config — stuck
// cells are physical, their geometry does not scale with the launch.
const (
	archTidBits   = 10 // thread id within its block
	archBidBits   = 12 // global block id
	archSidBits   = 5  // SM id
	archSyncBits  = 10 // barrier logical clock
	archFenceBits = 10 // fence logical clock
	archSigBits   = 3  // atomic-ID signature bits stored in-entry

	// Bit offsets within the architectural global word: M, S, then the
	// fields above in order.
	archTidShift   = 2
	archBidShift   = archTidShift + archTidBits     // 12
	archSidShift   = archBidShift + archBidBits     // 24
	archSyncShift  = archSidShift + archSidBits     // 29
	archFenceShift = archSyncShift + archSyncBits   // 39
	archSigShift   = archFenceShift + archFenceBits // 49

	// sharedEntryBits and globalEntryBits are the architectural word
	// sizes: the 12-bit shared entry (M, S, 10-bit tid) and the 52-bit
	// global entry. cost.go derives its storage arithmetic from these.
	sharedEntryBits = 2 + archTidBits            // 12
	globalEntryBits = archSigShift + archSigBits // 52
)

// sharedWord is one shared-memory shadow entry: the paper's 12-bit
// format bit-packed into a uint16 — bit 0 = modified, bit 1 = shared,
// bits 2.. = tid. M=S=1 encodes "no prior access" (fresh): no granule
// is simultaneously exclusively-written and read-shared, so the
// combination is free for the reset state and every state test is a
// mask/compare on the word.
type sharedWord uint16

const (
	swM     sharedWord = 1 << 0
	swS     sharedWord = 1 << 1
	swFresh sharedWord = swM | swS
	swTid              = 2 // tid shift
)

// resetShared puts every entry into the no-access state (the reset
// value is NOT zero: zero decodes as "read by thread 0").
func resetShared(es []sharedWord) {
	for i := range es {
		es[i] = swFresh
	}
}

// sharedCheckWord applies the Figure 3 happens-before state machine to
// one packed entry: (M,S) = (1,1) fresh, (0,0) read by a single
// thread, (1,0) modified, (0,1) read-shared. It returns the updated
// word plus, when the access races with the recorded one, the report
// kind and the recorded thread. A pure function of the word and the
// access — the property that lets the per-SM shard workers and the
// serial engine share one implementation.
func (d *Detector) sharedCheckWord(w sharedWord, tid uint16, write bool) (nw sharedWord, kind Kind, firstTid uint16, raced bool) {
	// State 1: no prior access claims the entry.
	if w&swFresh == swFresh {
		nw = sharedWord(tid) << swTid
		if write {
			nw |= swM
		}
		return nw, 0, 0, false
	}
	etid := uint16(w >> swTid)
	sameThread := etid == tid
	sameWarp := d.opt.WarpAware && d.sameWarpID(int(etid), int(tid))

	switch w & swFresh {
	case 0:
		// State 2: reads from a single thread so far.
		if !write {
			if !sameThread && !sameWarp {
				w |= swS
			}
			return w, 0, 0, false
		}
		nw = sharedWord(tid)<<swTid | swM
		if sameThread || sameWarp {
			return nw, 0, 0, false
		}
		return nw, KindWAR, etid, true

	case swM:
		// State 3: written by thread etid.
		if sameThread || sameWarp {
			if write {
				return sharedWord(tid)<<swTid | swM, 0, 0, false
			}
			return w, 0, 0, false
		}
		if write {
			return sharedWord(tid)<<swTid | swM, KindWAW, etid, true
		}
		return w, KindRAW, etid, true

	default:
		// State 4: read by multiple warps (or a corrupted M+S pattern,
		// which the struct encoding also treated as read-shared).
		if !write {
			return w, 0, 0, false
		}
		return sharedWord(tid)<<swTid | swM, KindWAR, etid, true
	}
}

// sameWarpID reports whether two thread IDs fall in the same warp —
// a shift/compare on the hot path for power-of-two warp sizes (see
// Detector.warpShift), division otherwise.
func (d *Detector) sameWarpID(a, b int) bool {
	if s := d.warpShift; s >= 0 {
		return a>>uint(s) == b>>uint(s)
	}
	return a/d.warpSize == b/d.warpSize
}

// warpOf maps a thread ID to its warp index within the block.
func (d *Detector) warpOf(tid int) int {
	if s := d.warpShift; s >= 0 {
		return tid >> uint(s)
	}
	return tid / d.warpSize
}

// packedGlobal is one global-memory shadow entry with the
// architectural state bit-packed into a single word. The simulator
// widens the fields past their architectural widths (tid 16, bid 32,
// sid 13 bits) so no launch geometry silently truncates — findings
// must never depend on the packing — but the hot-path membership and
// same-thread/same-block tests are single mask/shift/compare ops on
// meta. sync pairs the two logical clocks in one word; sig and wcyc
// are the simulator-side companions the architectural word does not
// model bit-exactly (the full signature, and the write cycle the
// stale-L1 check compares against).
type packedGlobal struct {
	meta uint64    // M | S<<1 | present<<2 | tid<<3 | bid<<19 | sid<<51
	sync uint64    // syncID | fenceID<<32
	sig  bloom.Sig // atomic-ID lockset signature (0 = null set)
	wcyc int64     // issue cycle of the recorded write (stale-L1 check)
}

const (
	gwM       uint64 = 1 << 0
	gwS       uint64 = 1 << 1
	gwPresent uint64 = 1 << 2
	gwTid            = 3  // tid shift (16 bits)
	gwBid            = 19 // bid shift (32 bits)
	gwSid            = 51 // sid shift (13 bits)

	gwTidField uint64 = ((1 << 16) - 1) << gwTid
	gwBidField uint64 = ((1 << 32) - 1) << gwBid
	gwSidField uint64 = ((1 << 13) - 1) << gwSid
)

// gwPack assembles the identity fields of a meta word.
func gwPack(tid uint16, bid uint32, sid uint16) uint64 {
	return uint64(tid)<<gwTid | uint64(bid)<<gwBid | uint64(sid)<<gwSid
}

// packSync pairs the logical clocks.
func packSync(syncID, fenceID uint32) uint64 {
	return uint64(syncID) | uint64(fenceID)<<32
}

func (e *packedGlobal) syncID() uint32  { return uint32(e.sync) }
func (e *packedGlobal) fenceID() uint32 { return uint32(e.sync >> 32) }

// setWriter refreshes the entry for a same-thread/same-warp write
// (state 2 and 3 refreshes): new writer identity, fence clock and
// write cycle; block, sync ID and signature keep their values.
func (e *packedGlobal) setWriter(tid, sid uint16, fenceID uint32, cycle int64) {
	e.meta = e.meta&^(gwTidField|gwSidField) | uint64(tid)<<gwTid | uint64(sid)<<gwSid | gwM
	e.sync = e.sync&((1<<32)-1) | uint64(fenceID)<<32
	e.wcyc = cycle
}

// glane is the per-lane view the global decision procedure consumes:
// the LaneAccess fields it actually reads, compacted so batch storage
// can hold them SoA-style and the check never touches caller-owned
// event memory.
type glane struct {
	addr  uint64
	fill  int64 // cycle the hit L1 line was last refreshed
	sig   bloom.Sig
	tid   int32
	flags uint8
}

const (
	laneCrit uint8 = 1 << 0 // issued inside a critical section
	laneHit  uint8 = 1 << 1 // global read hit the (stale-prone) L1
)
