package core

import "haccrg/internal/gpu"

// This file is the self-healing layer of the detection pipeline: an
// online divergence sentinel that cross-checks the sharded engine
// against a private serial reference on sampled kernels, and the
// engine-fallback switch both it and the drain-stall watchdog
// (sharded.go) throw when the sharded engine can no longer be trusted.
//
// The sharded engine's determinism contract says its findings are
// byte-identical to the serial engine. The sentinel enforces that
// contract at runtime instead of only in tests: every observed kernel
// is fed — as defensive copies, the reference never touches
// caller-owned lanes — to a serial Detector built from the same
// options (Parallel off, ModelTraffic off; timing is irrelevant to
// findings), and at KernelEnd the kernel's race deltas are compared by
// raceKey membership. A divergence increments
// DetectorHealth.SentinelMismatches and EngineFallbacks and flips
// engineFallback, which parallelFeasible consults: from the next
// kernel launch on, the detector runs the serial engine — correct by
// construction — instead of the suspect sharded one. The incident is
// loud (Health().Degraded) and permanent until Reset.
//
// Why raceKey membership rather than comparing race lists: the seen
// map dedups across launches of a same-named kernel, so a sampled
// window's delta can legitimately be empty on one side when the other
// side first saw the race in an unobserved earlier launch. Each
// side's per-kernel delta is therefore checked for membership in the
// other side's full seen map. Race counts are not compared — the
// reference misses unobserved kernels' increments by design.
//
// Fence reads: the reference must NOT read fence IDs through the
// detector's Env — under journal recording that would append spurious
// fence records and break replay-equals-live. sentinelEnv overrides
// CurrentFenceID to read the primary's fenceTab mirror, which on the
// simulation thread holds exactly the serially-consistent value.
type sentinel struct {
	d   *Detector
	ref *Detector

	every    int
	always   bool // fault plan attached: every kernel must be observed
	kernels  int  // parallel kernels seen since the sentinel was armed
	active   bool // observing the current kernel
	disabled bool // permanently retired (fallback fired or infeasible)

	priMark int // len(d.races) at the observed kernel's start
	refMark int // len(ref.races) at the observed kernel's start
	evCount int // events forwarded this kernel (chaos drop hook counter)

	evCopy  gpu.WarpMemEvent
	laneBuf []gpu.LaneAccess
}

// sentinelEnv is the reference detector's device view: everything
// forwards to the real Env except the race-register-file lookup, which
// reads the primary's fence mirror (see the file comment).
type sentinelEnv struct {
	gpu.Env
	d *Detector
}

func (e *sentinelEnv) CurrentFenceID(block, warpInBlock int) uint32 {
	return e.d.fenceTab[fenceTabKey(block, warpInBlock)]
}

// sentinelStart decides whether the launching kernel is observed and,
// if so, starts the reference detector on it. Called at the end of
// KernelStart, after the engine mode for the kernel is settled.
func (d *Detector) sentinelStart(env gpu.Env, kernel string) {
	if d.opt.SentinelEvery <= 0 || d.opt.MaxRaces > 0 {
		return
	}
	s := d.sent
	if s == nil {
		s = &sentinel{d: d, every: d.opt.SentinelEvery, always: d.inj != nil}
		d.sent = s
	}
	s.active = false
	if s.disabled {
		return
	}
	if !d.parMode && !d.sparMode {
		// Both engines serial: correct by construction, nothing to
		// check. In always mode the reference's fault streams would
		// desynchronize across the unobserved kernel, so the sentinel
		// retires rather than resuming later with misaligned streams.
		if s.always {
			s.disabled = true
		}
		return
	}
	s.kernels++
	if !s.always && (s.kernels-1)%s.every != 0 {
		return
	}
	if s.ref == nil {
		ro := d.opt
		ro.Parallel = false
		ro.ParallelShared = false
		ro.ModelTraffic = false // findings are timing-independent
		ro.SentinelEvery = 0
		ro.StallBudget = 0
		ro.Chaos = nil
		ref, err := New(ro)
		if err != nil {
			s.disabled = true
			return
		}
		s.ref = ref
	}
	s.active = true
	s.evCount = 0
	s.priMark = len(d.races)
	s.refMark = len(s.ref.races)
	s.ref.KernelStart(&sentinelEnv{Env: env, d: d}, kernel)
}

// observe forwards one warp memory event to the reference as a
// defensive copy: the event storage belongs to the simulator, and the
// WarpMemEvent ownership contract forbids handing a second detector a
// borrowed event whose lanes the primary may still reference.
func (s *sentinel) observe(ev *gpu.WarpMemEvent) {
	if h := s.d.opt.Chaos; h != nil && h.DropSentinelEvent != nil {
		n := s.evCount
		s.evCount++
		if h.DropSentinelEvent(s.d.kernel, n) {
			return
		}
	}
	c := &s.evCopy
	*c = *ev
	s.laneBuf = append(s.laneBuf[:0], ev.Lanes...)
	c.Lanes = s.laneBuf
	s.ref.WarpMem(c)
}

// sentinelEnd closes an observed kernel: end the reference, compare
// the two engines' race deltas, and on divergence record the incident
// and throw the fallback switch. Called from KernelEnd after the
// primary has fully quiesced.
func (d *Detector) sentinelEnd() {
	s := d.sent
	if s == nil || !s.active {
		return
	}
	s.active = false
	s.ref.KernelEnd()
	d.health.SentinelChecks++
	if !s.diverged() {
		return
	}
	d.health.SentinelMismatches++
	d.health.EngineFallbacks++
	d.engineFallback = true
	s.disabled = true
}

// diverged compares the observed kernel's findings by raceKey
// membership (see the file comment for why not list equality).
func (s *sentinel) diverged() bool {
	for _, r := range s.d.races[s.priMark:] {
		if _, ok := s.ref.seen[keyOfRace(r)]; !ok {
			return true
		}
	}
	for _, r := range s.ref.races[s.refMark:] {
		if _, ok := s.d.seen[keyOfRace(r)]; !ok {
			return true
		}
	}
	return false
}

func keyOfRace(r *Race) raceKey {
	return raceKey{r.Kernel, r.Space, r.Kind, r.Category, r.PC, r.Granule}
}

// EngineFallback reports whether the detector has permanently degraded
// to the serial engine (sentinel mismatch or stalled drain). Cleared
// by Reset.
func (d *Detector) EngineFallback() bool { return d.engineFallback }
