// Package core implements HAccRG, the paper's hardware-accelerated
// data-race detector for GPUs: per-SM shared-memory Race Detection
// Units, per-partition global-memory RDUs with shadow entries stored
// in device memory, a happens-before state machine over
// (tid, modified, shared) shadow fields, sync-ID and fence-ID logical
// clocks, and Bloom-filter lockset checking for critical sections.
package core

import (
	"fmt"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// Kind classifies a race by the conflicting access pair.
type Kind uint8

// Race kinds, as in the paper's Figure 3 state machine.
const (
	KindWAR Kind = iota // write after read
	KindRAW             // read after write
	KindWAW             // write after write
)

func (k Kind) String() string {
	switch k {
	case KindWAR:
		return "WAR"
	case KindRAW:
		return "RAW"
	case KindWAW:
		return "WAW"
	}
	return "kind?"
}

// Category classifies a race by the synchronization defect that
// allowed it, following the paper's four evaluation categories.
type Category uint8

// Race categories.
const (
	// CatBarrier: conflicting accesses from different warps of the
	// same thread-block between two barriers (missing __syncthreads).
	CatBarrier Category = iota
	// CatCrossBlock: conflicting accesses from different thread-blocks
	// with no lock or fence discipline (e.g. single-block kernels
	// launched with many blocks, as in SCAN and KMEANS).
	CatCrossBlock
	// CatLockset: critical-section races — disjoint locksets or mixed
	// protected/unprotected access.
	CatLockset
	// CatFence: a consumer read a producer's write before the producer
	// executed a memory fence (fence-ID clocks matched).
	CatFence
	// CatStaleL1: a read hit the reader SM's non-coherent L1 while a
	// different SM had modified the location (Section IV-B).
	CatStaleL1
	// CatIntraWarp: two lanes of one warp instruction wrote the same
	// address (detected before the request issues).
	CatIntraWarp
)

func (c Category) String() string {
	switch c {
	case CatBarrier:
		return "barrier"
	case CatCrossBlock:
		return "cross-block"
	case CatLockset:
		return "lockset"
	case CatFence:
		return "fence"
	case CatStaleL1:
		return "stale-l1"
	case CatIntraWarp:
		return "intra-warp"
	}
	return "cat?"
}

// Race is one distinct detected race, deduplicated by
// (kernel, space, kind, category, pc, granule). Count tracks how many
// dynamic instances collapsed into it.
type Race struct {
	Kernel   string
	Space    isa.Space
	Kind     Kind
	Category Category
	PC       int
	Stmt     string // builder annotation of the offending instruction
	Granule  uint64 // granule index within the space
	Addr     uint64 // first offending byte address observed

	FirstTid    int // the shadow entry's recorded accessor
	FirstBlock  int
	SecondTid   int // the accessor that exposed the race
	SecondBlock int

	// Provenance marks reports not produced by the shadow state
	// machine: "StaticWitness" for quarantine pre-seeded races (a
	// verified static witness fired on first touch). Empty for ordinary
	// dynamic reports.
	Provenance string

	Cycle int64
	Count int64
}

func (r *Race) String() string {
	stmt := ""
	if r.Stmt != "" {
		stmt = " [" + r.Stmt + "]"
	}
	prov := ""
	if r.Provenance != "" {
		prov = " <" + r.Provenance + ">"
	}
	return fmt.Sprintf("%s race (%s) in %s: %s addr %#x granule %d pc %d%s%s: T(b%d,t%d) vs T(b%d,t%d) x%d",
		r.Kind, r.Category, r.Kernel, r.Space, r.Addr, r.Granule, r.PC, stmt, prov,
		r.FirstBlock, r.FirstTid, r.SecondBlock, r.SecondTid, r.Count)
}

// RacesOf returns the distinct races recorded by det or by any
// detector it wraps, unwrapping recorder chains (trace, journal) until
// it finds a race source. Detectors that track no races yield nil.
func RacesOf(det gpu.Detector) []*Race {
	for det != nil {
		if src, ok := det.(interface{ Races() []*Race }); ok {
			return src.Races()
		}
		unwrap, ok := det.(interface{ Inner() gpu.Detector })
		if !ok {
			return nil
		}
		det = unwrap.Inner()
	}
	return nil
}

type raceKey struct {
	kernel  string
	space   isa.Space
	kind    Kind
	cat     Category
	pc      int
	granule uint64
}

type siteKey struct {
	space   isa.Space
	kind    Kind
	granule uint64
}
