package core

import (
	"haccrg/internal/fault"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// sharedRDU runs the shared-memory Race Detection Unit for one warp
// instruction: the Figure 3 happens-before state machine over the
// block's shadow entries, with warp-aware reporting.
//
// In hardware mode the checks are free (parallel comparators beside
// the banks); the returned stall is non-zero only in the
// shared-shadow-in-global configuration of Figure 8, where shadow
// entries must be fetched from device memory through the L1.
func (d *Detector) sharedRDU(ev *gpu.WarpMemEvent) int64 {
	gran := uint64(d.opt.SharedGranularity)

	// Statically-proven race-free site: skip every check. In hardware
	// mode the checks are the only work, so the event is free; in the
	// Figure 8 configuration the shadow-line fetches below still run —
	// the hardware would still move the shadow lines — so cycle counts
	// are identical with the filter on or off.
	filtered := d.pcFiltered(ev.PC)
	if filtered && !d.opt.SharedShadowInGlobal {
		d.stats.FilteredChecks += int64(len(ev.Lanes))
		return 0
	}

	// Sharded shared engine: the event's lanes detach onto the owning
	// SM's shard (feasibility excludes Figure 8 mode, so no stall).
	if d.sact {
		return d.sharedRDUAsync(ev, gran)
	}

	u := d.sunits[ev.SM]
	shadow := u.shadow

	// Intra-warp WAW: two lanes of this instruction writing the same
	// byte address, checked before the request issues.
	if !filtered && (ev.Write || ev.Atomic) {
		d.intraWarpWAW(ev, isa.SpaceShared, gran)
	}

	inGlobal := d.opt.SharedShadowInGlobal
	shadowLines := d.scratch.lines[:0]

	for i := range ev.Lanes {
		la := &ev.Lanes[i]
		if filtered {
			// Fig. 8 mode: collect the shadow lines (timing) but skip
			// the check. The filter is inert under fault plans, so the
			// admit/quarantine hooks below cannot be reached filtered.
			d.stats.FilteredChecks++
			g := la.Addr / gran
			if g < uint64(len(shadow)) {
				entryAddr := d.sharedShadowBase(ev.SM) + g*2
				shadowLines = insertLine(shadowLines, entryAddr&^uint64(d.env.Config().SegmentBytes-1))
			}
			continue
		}
		if !inGlobal {
			u.checkLane(la.Addr, uint16(la.Tid), ev.Write, ev.Atomic, ev.PC, ev.Stmt, ev.Block, ev.Cycle, gran)
			continue
		}
		// Fig. 8 mode interleaves the shadow-line collection into the
		// per-lane sequence, so it keeps the expanded form.
		if u.inj != nil && !u.admit(ev.Cycle) {
			continue // check-queue overflow: dropped, counted, access unaffected
		}
		u.checks++
		g := la.Addr / gran
		if g >= uint64(len(shadow)) {
			continue // engine bounds-checks; stay safe
		}
		entryAddr := d.sharedShadowBase(ev.SM) + g*2
		shadowLines = insertLine(shadowLines, entryAddr&^uint64(d.env.Config().SegmentBytes-1))
		if ev.Atomic {
			continue // atomics are synchronization operations
		}
		if u.inj != nil && u.faultShared(g) {
			continue // cell quarantined by the degradation policy
		}
		nw, kind, first, raced := d.sharedCheckWord(shadow[g], uint16(la.Tid), ev.Write)
		shadow[g] = nw
		if raced {
			u.report(isa.SpaceShared, kind, CatBarrier, ev.PC, ev.Stmt, g, la.Addr,
				int(first), ev.Block, la.Tid, ev.Block, ev.Cycle)
		}
	}

	d.scratch.lines = shadowLines
	if !inGlobal {
		return 0
	}
	// Figure 8 mode: fetch every distinct shadow line through the
	// demand path before the check can run — the warp waits on the
	// reads, while the updates write through without blocking (GPU
	// stores are fire-and-forget). Sorted order keeps the L1/partition
	// state — and hence cycle counts — deterministic.
	var done int64 = ev.Cycle
	for _, line := range shadowLines {
		start := ev.Cycle
		if d.inj != nil {
			start = d.spiked(fault.UnitShared, ev.SM, start)
		}
		t := d.env.InstrTx(ev.SM, start, line, false)
		d.stats.ShadowReads++
		d.env.InstrTx(ev.SM, t, line, true)
		d.stats.ShadowWrites++
		if t > done {
			done = t
		}
	}
	return done - ev.Cycle
}

// intraWarpWAW reports same-address writes by different lanes of one
// warp instruction. Exact-address comparison avoids granularity
// artifacts: lanes writing adjacent words are implicitly ordered by
// SIMD execution even when they share a shadow granule.
func (d *Detector) intraWarpWAW(ev *gpu.WarpMemEvent, space isa.Space, gran uint64) {
	if len(ev.Lanes) < 2 {
		return
	}
	// Coalesced stores put the lanes in strictly increasing address
	// order — all distinct, nothing to report. One linear pass settles
	// that without the quadratic dup scan below.
	mono := true
	for i := 1; i < len(ev.Lanes); i++ {
		if ev.Lanes[i].Addr <= ev.Lanes[i-1].Addr {
			mono = false
			break
		}
	}
	if mono {
		return
	}
	// At most WarpSize lanes per instruction: a linear scan over a
	// reused buffer replaces the per-event map allocation.
	seen := d.scratch.seen[:0]
	for i := range ev.Lanes {
		la := &ev.Lanes[i]
		first, dup := 0, false
		for j := range seen {
			if seen[j].addr == la.Addr {
				first, dup = seen[j].tid, true
				break
			}
		}
		if dup {
			if ev.Atomic {
				continue // atomics to the same address serialize
			}
			d.report(space, KindWAW, CatIntraWarp, ev.PC, ev.Stmt, la.Addr/gran, la.Addr,
				first, ev.Block, la.Tid, ev.Block, ev.Cycle)
			continue
		}
		seen = append(seen, laneAddr{addr: la.Addr, tid: la.Tid})
	}
	d.scratch.seen = seen
}
