package core

// The global shadow is the detector's model of the per-granule shadow
// entries HAccRG keeps in device memory. It used to be a Go map keyed
// by granule number, which put a hash lookup, a heap-allocated entry
// and map-growth churn on every global-memory lane check — the per
// access metadata cost the paper moves into hardware. It is now a
// paged flat array: granule g lives at pages[g>>shadowPageShift][g&
// shadowPageMask], pages allocate lazily on first touch, and kernel
// boundaries wipe entries in place (the paper's cudaMemset of the
// shadow region) instead of reallocating, so the steady-state hot
// path is two shifts, a bounds check and a pointer chase with zero
// allocations.

const (
	// shadowPageShift sizes a page at 4Ki entries: big enough that the
	// page table stays tiny for every benchmark footprint, small enough
	// that sparse address spaces don't materialize dead entries.
	shadowPageShift = 12
	shadowPageLen   = 1 << shadowPageShift
	shadowPageMask  = shadowPageLen - 1
)

// shadowPage is one fixed-size block of shadow entries. Pages never
// move once allocated, so *packedGlobal pointers into them stay valid
// across later insertions (unlike map entries).
type shadowPage [shadowPageLen]packedGlobal

// pagedShadow is the paged flat-array global shadow. The zero value is
// an empty shadow ready for use.
type pagedShadow struct {
	pages []*shadowPage
}

// lookup returns granule g's entry, or nil when no access has claimed
// it (the map version's "not in the map").
func (s *pagedShadow) lookup(g uint64) *packedGlobal {
	idx := g >> shadowPageShift
	if idx >= uint64(len(s.pages)) {
		return nil
	}
	p := s.pages[idx]
	if p == nil {
		return nil
	}
	e := &p[g&shadowPageMask]
	if e.meta&gwPresent == 0 {
		return nil
	}
	return e
}

// entry returns a pointer to granule g's slot, allocating its page on
// first touch. The slot may hold a cleared entry; the caller claims it
// by storing a meta word with the present bit set.
func (s *pagedShadow) entry(g uint64) *packedGlobal {
	idx := g >> shadowPageShift
	if idx >= uint64(len(s.pages)) {
		grown := make([]*shadowPage, idx+1)
		copy(grown, s.pages)
		s.pages = grown
	}
	p := s.pages[idx]
	if p == nil {
		p = new(shadowPage)
		s.pages[idx] = p
	}
	return &p[g&shadowPageMask]
}

// clear forgets granule g's access history (the degradation policy's
// reinit: the granule stays tracked, its next access is a first
// access).
func (s *pagedShadow) clear(g uint64) {
	if e := s.lookup(g); e != nil {
		*e = packedGlobal{}
	}
}

// reset wipes every entry in place while keeping the allocated pages,
// so per-kernel resets stop paying map reallocation and GC churn.
func (s *pagedShadow) reset() {
	for _, p := range s.pages {
		if p != nil {
			*p = shadowPage{}
		}
	}
}

// drop releases the pages entirely (Detector.Reset between
// experiments).
func (s *pagedShadow) drop() { s.pages = nil }

// entries counts present entries (tests and diagnostics only; walks
// every allocated page).
func (s *pagedShadow) entries() int {
	n := 0
	for _, p := range s.pages {
		if p == nil {
			continue
		}
		for i := range p {
			if p[i].meta&gwPresent != 0 {
				n++
			}
		}
	}
	return n
}
