package core

// Global-memory soundness fuzzing: random multi-block kernels with
// global accesses checked against an exact-history oracle. The oracle
// tracks barrier epochs per block; two accesses conflict when they
// touch the same word with at least one write and are not ordered —
// same block requires different warps in the same epoch, different
// blocks are always concurrent. Fence and stale-L1 refinements only
// SUPPRESS reports, so HAccRG's reported granules must always be a
// subset of the oracle's conflicting granules.

import (
	"fmt"
	"math/rand"
	"testing"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

type gOracleAccess struct {
	block, warp, epoch int
	write              bool
}

type globalOracle struct {
	gpu.NopDetector
	epochs    map[int]int // per block
	hist      map[uint64][]gOracleAccess
	conflicts map[uint64]bool
}

func newGlobalOracle() *globalOracle {
	return &globalOracle{
		epochs:    map[int]int{},
		hist:      map[uint64][]gOracleAccess{},
		conflicts: map[uint64]bool{},
	}
}

func (o *globalOracle) WarpMem(ev *gpu.WarpMemEvent) int64 {
	if ev.Space != isa.SpaceGlobal || ev.Atomic {
		return 0
	}
	epoch := o.epochs[ev.Block]
	for i := range ev.Lanes {
		la := &ev.Lanes[i]
		g := la.Addr / 4
		warp := la.Tid / 32
		for _, prev := range o.hist[g] {
			if !prev.write && !ev.Write {
				continue
			}
			concurrent := prev.block != ev.Block ||
				(prev.warp != warp && prev.epoch == epoch)
			if concurrent {
				o.conflicts[g] = true
			}
		}
		o.hist[g] = append(o.hist[g], gOracleAccess{
			block: ev.Block, warp: warp, epoch: epoch, write: ev.Write,
		})
	}
	return 0
}

func (o *globalOracle) Barrier(sm, block, base, size int, cycle int64) int64 {
	o.epochs[block]++
	return 0
}

// randomGlobalKernel mixes per-thread, per-block-overlapping and
// broadcast global word accesses with occasional barriers.
func randomGlobalKernel(rng *rand.Rand, base uint64) *gpu.Kernel {
	b := isa.NewBuilder(fmt.Sprintf("gfuzz-%d", rng.Int63()))
	const (
		rTid  = isa.Reg(1)
		rGtid = isa.Reg(2)
		rAddr = isa.Reg(3)
		rVal  = isa.Reg(4)
		rBase = isa.Reg(5)
	)
	b.Sreg(rTid, isa.SregTid)
	b.Sreg(rGtid, isa.SregGtid)
	b.Ldp(rBase, 0)
	steps := rng.Intn(10) + 3
	for i := 0; i < steps; i++ {
		switch rng.Intn(6) {
		case 0: // private: buf[gtid]
			b.Muli(rAddr, rGtid, 4)
		case 1: // block-overlapping: buf[tid] (all blocks collide)
			b.Muli(rAddr, rTid, 4)
		case 2: // folded: buf[gtid%32]
			b.Remi(rAddr, rGtid, 32)
			b.Muli(rAddr, rAddr, 4)
		case 3: // broadcast word
			b.Movi(rAddr, int64(rng.Intn(128))*4)
		case 4: // strided private: buf[64 + gtid*2]
			b.Muli(rAddr, rGtid, 8)
			b.Addi(rAddr, rAddr, 256)
		case 5:
			b.Bar()
			continue
		}
		b.Add(rAddr, rBase, rAddr)
		if rng.Intn(2) == 0 {
			b.Ld(rVal, isa.SpaceGlobal, rAddr, 0, 4)
		} else {
			b.St(isa.SpaceGlobal, rAddr, 0, rTid, 4)
		}
	}
	b.Exit()
	return &gpu.Kernel{
		Name: "gfuzz", Prog: b.MustBuild(),
		GridDim: rng.Intn(3) + 2, BlockDim: 64,
	}
}

func TestGlobalOracleSoundness(t *testing.T) {
	const trials = 100
	totalFlagged, totalConflicts := 0, 0
	for seed := int64(1000); seed < 1000+trials; seed++ {
		rng := rand.New(rand.NewSource(seed))

		opt := DefaultOptions()
		opt.Shared = false
		opt.DetectStaleL1 = true // include the stale-L1 refinement
		opt.ModelTraffic = false
		hacc := MustNew(opt)
		oracle := newGlobalOracle()
		dev, err := gpu.NewDevice(gpu.TestConfig(), 1<<16, &multiDetector{a: hacc, b: oracle})
		if err != nil {
			t.Fatal(err)
		}
		buf := dev.MustMalloc(1 << 14)
		k := randomGlobalKernel(rng, buf)
		k.Params = []uint64{buf}
		if _, err := dev.Launch(k); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, k.Prog.Disassemble())
		}

		for _, r := range hacc.Races() {
			if r.Category == CatIntraWarp {
				continue
			}
			if !oracle.conflicts[r.Granule] {
				t.Fatalf("seed %d: HAccRG flagged granule %d with no oracle conflict (%v)\n%s",
					seed, r.Granule, r, k.Prog.Disassemble())
			}
			totalFlagged++
		}
		totalConflicts += len(oracle.conflicts)
		if len(oracle.conflicts) == 0 {
			for _, r := range hacc.Races() {
				if r.Category != CatIntraWarp {
					t.Fatalf("seed %d: false positive on conflict-free kernel: %v", seed, r)
				}
			}
		}
	}
	if totalConflicts == 0 || totalFlagged == 0 {
		t.Fatalf("fuzzer ineffective: %d conflicts, %d flagged", totalConflicts, totalFlagged)
	}
	t.Logf("global fuzz: %d HAccRG reports validated against %d oracle-conflicting granules over %d kernels",
		totalFlagged, totalConflicts, trials)
}
