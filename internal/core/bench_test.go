package core

import (
	"testing"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// benchEnv is a minimal gpu.Env: fixed-latency memory, no queueing.
// The RDU micro-benchmarks isolate the detector's own per-access cost
// (shadow lookup, state machine, scratch management) from the timing
// model, so allocs/op here is exactly the hot-path churn the paged
// shadow and scratch buffers are meant to eliminate.
type benchEnv struct{ cfg *gpu.Config }

func (e *benchEnv) Config() *gpu.Config { return e.cfg }

// PartitionFor is the line-interleaved mapping the Env contract
// requires: line index (SegmentBytes = 128) modulo partition count.
func (e *benchEnv) PartitionFor(addr uint64) int {
	return int(addr>>7) % e.cfg.NumPartitions
}
func (e *benchEnv) ShadowTx(part int, cycle int64, addr uint64, write bool) int64 {
	return cycle + 40
}
func (e *benchEnv) InstrTx(sm int, cycle int64, addr uint64, write bool) int64 {
	return cycle + 100
}
func (e *benchEnv) InstrAtomicTx(sm int, cycle int64, addr uint64) int64 {
	return cycle + 120
}
func (e *benchEnv) ShadowBase() uint64                 { return 1 << 26 }
func (e *benchEnv) CurrentFenceID(block, w int) uint32 { return 1 }
func (e *benchEnv) GlobalMemSize() uint64              { return 1 << 26 }

// benchDetector builds a detector attached to the stub env.
func benchDetector(b *testing.B, opt Options) *Detector {
	b.Helper()
	d, err := New(opt)
	if err != nil {
		b.Fatal(err)
	}
	cfg := gpu.TestConfig()
	d.KernelStart(&benchEnv{cfg: &cfg}, "bench")
	return d
}

// warpEvent builds a race-free full-warp access: each lane stays on
// its own granule, so the detector exercises claim/refresh without
// materializing race records (which would dominate allocs).
func warpEvent(space isa.Space, write bool, lanes int, base uint64, stride uint64) *gpu.WarpMemEvent {
	ev := &gpu.WarpMemEvent{
		Space: space, Write: write,
		PC: 4, SM: 0, Block: 0, Kernel: "bench",
		SyncID: 1, FenceID: 1, Cycle: 100,
		Lanes: make([]gpu.LaneAccess, lanes),
	}
	for l := 0; l < lanes; l++ {
		ev.Lanes[l] = gpu.LaneAccess{
			Lane: l, Tid: l, GTid: l,
			Addr: base + uint64(l)*stride, Size: 4,
			Arrival: 100,
		}
	}
	return ev
}

// BenchmarkRDUHotPath measures the per-warp-instruction detector cost
// on the global and shared RDU paths. The interesting number is
// allocs/op: the steady state must not allocate.
func BenchmarkRDUHotPath(b *testing.B) {
	const lanes = 32
	b.Run("global-write", func(b *testing.B) {
		d := benchDetector(b, DefaultOptions())
		ev := warpEvent(isa.SpaceGlobal, true, lanes, 0, 4)
		// Warm-up claims the working set (first touch allocates shadow
		// pages); the timed loop is the steady-state refresh path.
		const workingSet = 1 << 16
		for base := uint64(0); base < workingSet; base += lanes * 4 {
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := uint64(i*lanes*4) % workingSet
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
	})
	b.Run("global-read", func(b *testing.B) {
		d := benchDetector(b, DefaultOptions())
		ev := warpEvent(isa.SpaceGlobal, false, lanes, 0, 4)
		const workingSet = 1 << 16
		for base := uint64(0); base < workingSet; base += lanes * 4 {
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := uint64(i*lanes*4) % workingSet
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
	})
	b.Run("shared-write", func(b *testing.B) {
		d := benchDetector(b, DefaultOptions())
		ev := warpEvent(isa.SpaceShared, true, lanes, 0, 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := uint64(i*lanes*4) % (1 << 12)
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
	})
	// Filtered variants: the same event streams with the site statically
	// proven race-free. The gap against the unfiltered runs is exactly
	// the check work the static filter saves; shadow traffic still runs
	// on the global path (the timing model is preserved).
	filteredOpt := func() Options {
		opt := DefaultOptions()
		mask := make([]bool, 8)
		mask[4] = true // warpEvent PCs
		opt.StaticFilter = maskFilter{"bench": mask}
		return opt
	}
	b.Run("global-write-filtered", func(b *testing.B) {
		d := benchDetector(b, filteredOpt())
		ev := warpEvent(isa.SpaceGlobal, true, lanes, 0, 4)
		const workingSet = 1 << 16
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := uint64(i*lanes*4) % workingSet
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
		b.StopTimer()
		if st := d.Stats(); st.GlobalChecks != 0 || st.FilteredChecks == 0 {
			b.Fatalf("filter not engaged: checks=%d filtered=%d", st.GlobalChecks, st.FilteredChecks)
		}
	})
	b.Run("shared-write-filtered", func(b *testing.B) {
		d := benchDetector(b, filteredOpt())
		ev := warpEvent(isa.SpaceShared, true, lanes, 0, 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := uint64(i*lanes*4) % (1 << 12)
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
		b.StopTimer()
		if st := d.Stats(); st.SharedChecks != 0 || st.FilteredChecks == 0 {
			b.Fatalf("filter not engaged: checks=%d filtered=%d", st.SharedChecks, st.FilteredChecks)
		}
	})
}

// BenchmarkShardedRDU compares the serial and sharded global-memory
// RDU engines on a detection-bound event stream: full-warp coalesced
// accesses sweeping a working set of lines, so consecutive events
// rotate round-robin over the 8 partitions (the paper's Table I
// machine). Run with -cpu 1,4,8 to see the scaling; the sharded
// engine's enqueue path must stay allocation-free, and the reported
// queue-peak metric is the deepest any partition's ring got (pinned at
// ring capacity means the sim thread was backpressured).
func BenchmarkShardedRDU(b *testing.B) {
	const (
		lanes = 32
		lines = 1 << 16 // large working set: shadow footprint far past LLC
	)
	cfg := gpu.DefaultConfig()
	run := func(b *testing.B, parallel bool) {
		opt := DefaultOptions()
		opt.Shared = false
		opt.ModelTraffic = false
		opt.Parallel = parallel
		d := MustNew(opt)
		d.KernelStart(&benchEnv{cfg: &cfg}, "bench")
		ev := warpEvent(isa.SpaceGlobal, true, lanes, 0, 4)
		setBase := func(i int) {
			base := uint64(i%lines) * uint64(cfg.SegmentBytes)
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
		}
		// Warm-up claims the working set (first touch allocates shadow
		// pages); the timed loop is the steady-state refresh path.
		for i := 0; i < lines; i++ {
			setBase(i)
			d.WarpMem(ev)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			setBase(i)
			d.WarpMem(ev)
		}
		b.StopTimer()
		d.KernelEnd()
		if races := d.Races(); len(races) != 0 {
			b.Fatalf("race-free stream produced %d races", len(races))
		}
		if parallel {
			b.ReportMetric(float64(d.DetectQueuePeak()), "queue-peak")
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, false) })
	b.Run("sharded", func(b *testing.B) { run(b, true) })
}

// BenchmarkGlobalShadow measures the shadow structure itself:
// steady-state lookup/claim over a fixed working set, plus the
// per-kernel wipe. The paged flat array must be allocation-free once
// its pages exist.
func BenchmarkGlobalShadow(b *testing.B) {
	b.Run("lookup-claim", func(b *testing.B) {
		var s pagedShadow
		const granules = 1 << 16
		for g := uint64(0); g < granules; g++ {
			e := s.entry(g)
			e.present = true
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A deterministic stride that wanders the whole set.
			g := uint64(i*2654435761) % granules
			e := s.lookup(g)
			if e == nil {
				b.Fatal("present entry not found")
			}
			e.tid = uint16(i)
		}
	})
	b.Run("kernel-reset", func(b *testing.B) {
		var s pagedShadow
		const granules = 1 << 16
		for g := uint64(0); g < granules; g++ {
			s.entry(g).present = true
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.reset()
		}
	})
	b.Run("first-touch", func(b *testing.B) {
		// Cold claims: page allocation amortized over a page of claims.
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var s pagedShadow
			for g := uint64(0); g < shadowPageLen; g++ {
				s.entry(g).present = true
			}
		}
	})
}
