package core

import (
	"testing"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// benchEnv is a minimal gpu.Env: fixed-latency memory, no queueing.
// The RDU micro-benchmarks isolate the detector's own per-access cost
// (shadow lookup, state machine, scratch management) from the timing
// model, so allocs/op here is exactly the hot-path churn the paged
// shadow and scratch buffers are meant to eliminate.
type benchEnv struct{ cfg *gpu.Config }

func (e *benchEnv) Config() *gpu.Config { return e.cfg }

// PartitionFor is the line-interleaved mapping the Env contract
// requires: line index (SegmentBytes = 128) modulo partition count.
func (e *benchEnv) PartitionFor(addr uint64) int {
	return int(addr>>7) % e.cfg.NumPartitions
}
func (e *benchEnv) ShadowTx(part int, cycle int64, addr uint64, write bool) int64 {
	return cycle + 40
}
func (e *benchEnv) InstrTx(sm int, cycle int64, addr uint64, write bool) int64 {
	return cycle + 100
}
func (e *benchEnv) InstrAtomicTx(sm int, cycle int64, addr uint64) int64 {
	return cycle + 120
}
func (e *benchEnv) ShadowBase() uint64                 { return 1 << 26 }
func (e *benchEnv) CurrentFenceID(block, w int) uint32 { return 1 }
func (e *benchEnv) GlobalMemSize() uint64              { return 1 << 26 }

// benchDetector builds a detector attached to the stub env.
func benchDetector(b *testing.B, opt Options) *Detector {
	b.Helper()
	d, err := New(opt)
	if err != nil {
		b.Fatal(err)
	}
	cfg := gpu.TestConfig()
	d.KernelStart(&benchEnv{cfg: &cfg}, "bench")
	return d
}

// warpEvent builds a race-free full-warp access: each lane stays on
// its own granule, so the detector exercises claim/refresh without
// materializing race records (which would dominate allocs).
func warpEvent(space isa.Space, write bool, lanes int, base uint64, stride uint64) *gpu.WarpMemEvent {
	ev := &gpu.WarpMemEvent{
		Space: space, Write: write,
		PC: 4, SM: 0, Block: 0, Kernel: "bench",
		SyncID: 1, FenceID: 1, Cycle: 100,
		Lanes: make([]gpu.LaneAccess, lanes),
	}
	for l := 0; l < lanes; l++ {
		ev.Lanes[l] = gpu.LaneAccess{
			Lane: l, Tid: l, GTid: l,
			Addr: base + uint64(l)*stride, Size: 4,
			Arrival: 100,
		}
	}
	return ev
}

// BenchmarkRDUHotPath measures the per-warp-instruction detector cost
// on the global and shared RDU paths. The interesting number is
// allocs/op: the steady state must not allocate.
func BenchmarkRDUHotPath(b *testing.B) {
	const lanes = 32
	b.Run("global-write", func(b *testing.B) {
		d := benchDetector(b, DefaultOptions())
		ev := warpEvent(isa.SpaceGlobal, true, lanes, 0, 4)
		// Warm-up claims the working set (first touch allocates shadow
		// pages); the timed loop is the steady-state refresh path.
		const workingSet = 1 << 16
		for base := uint64(0); base < workingSet; base += lanes * 4 {
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := uint64(i*lanes*4) % workingSet
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
	})
	b.Run("global-read", func(b *testing.B) {
		d := benchDetector(b, DefaultOptions())
		ev := warpEvent(isa.SpaceGlobal, false, lanes, 0, 4)
		const workingSet = 1 << 16
		for base := uint64(0); base < workingSet; base += lanes * 4 {
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := uint64(i*lanes*4) % workingSet
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
	})
	b.Run("shared-write", func(b *testing.B) {
		d := benchDetector(b, DefaultOptions())
		ev := warpEvent(isa.SpaceShared, true, lanes, 0, 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := uint64(i*lanes*4) % (1 << 12)
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
	})
	// Filtered variants: the same event streams with the site statically
	// proven race-free. The gap against the unfiltered runs is exactly
	// the check work the static filter saves; shadow traffic still runs
	// on the global path (the timing model is preserved).
	filteredOpt := func() Options {
		opt := DefaultOptions()
		mask := make([]bool, 8)
		mask[4] = true // warpEvent PCs
		opt.StaticFilter = maskFilter{"bench": mask}
		return opt
	}
	b.Run("global-write-filtered", func(b *testing.B) {
		d := benchDetector(b, filteredOpt())
		ev := warpEvent(isa.SpaceGlobal, true, lanes, 0, 4)
		const workingSet = 1 << 16
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := uint64(i*lanes*4) % workingSet
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
		b.StopTimer()
		if st := d.Stats(); st.GlobalChecks != 0 || st.FilteredChecks == 0 {
			b.Fatalf("filter not engaged: checks=%d filtered=%d", st.GlobalChecks, st.FilteredChecks)
		}
	})
	b.Run("shared-write-filtered", func(b *testing.B) {
		d := benchDetector(b, filteredOpt())
		ev := warpEvent(isa.SpaceShared, true, lanes, 0, 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := uint64(i*lanes*4) % (1 << 12)
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
		b.StopTimer()
		if st := d.Stats(); st.SharedChecks != 0 || st.FilteredChecks == 0 {
			b.Fatalf("filter not engaged: checks=%d filtered=%d", st.SharedChecks, st.FilteredChecks)
		}
	})
}

// BenchmarkShardedRDU compares the serial and sharded global-memory
// RDU engines on a detection-bound event stream: full-warp coalesced
// accesses sweeping a working set of lines, so consecutive events
// rotate round-robin over the 8 partitions (the paper's Table I
// machine). Run with -cpu 1,4,8 to see the scaling; the sharded
// engine's enqueue path must stay allocation-free, and the reported
// queue-peak metric is the deepest any partition's ring got (pinned at
// ring capacity means the sim thread was backpressured).
func BenchmarkShardedRDU(b *testing.B) {
	const (
		lanes = 32
		lines = 1 << 16 // large working set: shadow footprint far past LLC
	)
	cfg := gpu.DefaultConfig()
	run := func(b *testing.B, parallel bool) {
		opt := DefaultOptions()
		opt.Shared = false
		opt.ModelTraffic = false
		opt.Parallel = parallel
		d := MustNew(opt)
		d.KernelStart(&benchEnv{cfg: &cfg}, "bench")
		ev := warpEvent(isa.SpaceGlobal, true, lanes, 0, 4)
		setBase := func(i int) {
			base := uint64(i%lines) * uint64(cfg.SegmentBytes)
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
		}
		// Warm-up claims the working set (first touch allocates shadow
		// pages); the timed loop is the steady-state refresh path.
		for i := 0; i < lines; i++ {
			setBase(i)
			d.WarpMem(ev)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			setBase(i)
			d.WarpMem(ev)
		}
		b.StopTimer()
		d.KernelEnd()
		if races := d.Races(); len(races) != 0 {
			b.Fatalf("race-free stream produced %d races", len(races))
		}
		if parallel {
			b.ReportMetric(float64(d.DetectQueuePeak()), "queue-peak")
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, false) })
	b.Run("sharded", func(b *testing.B) { run(b, true) })

	// Shared-memory engine, same contract: events rotate round-robin
	// over the SMs (each block resident on its own SM), so the per-SM
	// shards load-balance the same way the partitions do above.
	runShared := func(b *testing.B, parallel bool) {
		opt := DefaultOptions()
		opt.Global = false
		opt.ModelTraffic = false
		opt.ParallelShared = parallel
		d := MustNew(opt)
		d.KernelStart(&benchEnv{cfg: &cfg}, "bench")
		ev := warpEvent(isa.SpaceShared, true, lanes, 0, 4)
		tile := cfg.Shared.SizeBytes
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.SM = i % cfg.NumSMs
			base := uint64(i*lanes*4) % uint64(tile)
			for l := range ev.Lanes {
				ev.Lanes[l].Addr = base + uint64(l)*4
			}
			d.WarpMem(ev)
		}
		b.StopTimer()
		d.KernelEnd()
		if races := d.Races(); len(races) != 0 {
			b.Fatalf("race-free stream produced %d races", len(races))
		}
		if parallel {
			b.ReportMetric(float64(d.DetectQueuePeak()), "queue-peak")
		}
	}
	b.Run("shared-serial", func(b *testing.B) { runShared(b, false) })
	b.Run("shared-sharded", func(b *testing.B) { runShared(b, true) })
}

// BenchmarkGlobalShadow measures the shadow structure itself:
// steady-state lookup/claim over a fixed working set, plus the
// per-kernel wipe. The paged flat array must be allocation-free once
// its pages exist.
func BenchmarkGlobalShadow(b *testing.B) {
	b.Run("lookup-claim", func(b *testing.B) {
		var s pagedShadow
		const granules = 1 << 16
		for g := uint64(0); g < granules; g++ {
			e := s.entry(g)
			e.meta |= gwPresent
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A deterministic stride that wanders the whole set.
			g := uint64(i*2654435761) % granules
			e := s.lookup(g)
			if e == nil {
				b.Fatal("present entry not found")
			}
			e.meta = e.meta&^gwTidField | uint64(uint16(i))<<gwTid
		}
	})
	b.Run("kernel-reset", func(b *testing.B) {
		var s pagedShadow
		const granules = 1 << 16
		for g := uint64(0); g < granules; g++ {
			s.entry(g).meta |= gwPresent
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.reset()
		}
	})
	b.Run("first-touch", func(b *testing.B) {
		// Cold claims: page allocation amortized over a page of claims.
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var s pagedShadow
			for g := uint64(0); g < shadowPageLen; g++ {
				s.entry(g).meta |= gwPresent
			}
		}
	})
}

// legacySharedEntry is the pre-packing struct encoding of a shared
// shadow entry, kept here (test-only) as the baseline for the packed
// word's speedup claim. The logic below is the old field-wise Figure 3
// state machine, verbatim — including the division-based same-warp
// test the old hot path paid on every non-fresh check.
type legacySharedEntry struct {
	fresh    bool
	modified bool
	shared   bool
	tid      uint16
}

func legacySharedCheck(e *legacySharedEntry, tid uint16, write bool, warpSize int) (kind Kind, first uint16, raced bool) {
	if e.fresh {
		e.fresh = false
		e.shared = false
		e.modified = write
		e.tid = tid
		return 0, 0, false
	}
	sameThread := e.tid == tid
	sameWarp := int(e.tid)/warpSize == int(tid)/warpSize
	switch {
	case !e.modified && !e.shared:
		if !write {
			if !sameThread && !sameWarp {
				e.shared = true
			}
			return 0, 0, false
		}
		if sameThread || sameWarp {
			e.modified = true
			e.tid = tid
			return 0, 0, false
		}
		first := e.tid
		e.tid, e.modified = tid, true
		return KindWAR, first, true
	case e.modified && !e.shared:
		if sameThread || sameWarp {
			if write {
				e.tid = tid
			}
			return 0, 0, false
		}
		first := e.tid
		if write {
			e.tid = tid
			return KindWAW, first, true
		}
		return KindRAW, first, true
	default:
		if !write {
			return 0, 0, false
		}
		first := e.tid
		e.tid, e.modified, e.shared = tid, true, false
		return KindWAR, first, true
	}
}

// BenchmarkSharedEntryEncoding isolates the shared-memory hot-path
// check — the M/S/tid state machine — against the two encodings: the
// old struct-of-bools shadow and the packed 12-bit word. Same access
// stream (alternating writers over a 4K-granule tile, so every check
// takes the report-free WAW-refresh and claim paths), zero allocs/op
// required of both; the packed word's margin is the tentpole's ≥1.3x
// claim.
func BenchmarkSharedEntryEncoding(b *testing.B) {
	const granules = 1 << 12
	b.Run("struct", func(b *testing.B) {
		shadow := make([]legacySharedEntry, granules)
		for g := range shadow {
			shadow[g] = legacySharedEntry{fresh: true}
		}
		// The warp size is loaded from the detector exactly as the old
		// hot path loaded it — a runtime value, so the baseline pays the
		// genuine division, not a constant-folded shift.
		warpSize := benchDetector(b, DefaultOptions()).warpSize
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g := i & (granules - 1)
			_, _, _ = legacySharedCheck(&shadow[g], uint16(i&1), i&1 == 0, warpSize)
		}
	})
	b.Run("packed", func(b *testing.B) {
		d := benchDetector(b, DefaultOptions())
		shadow := make([]sharedWord, granules)
		resetShared(shadow)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g := i & (granules - 1)
			nw, _, _, _ := d.sharedCheckWord(shadow[g], uint16(i&1), i&1 == 0)
			shadow[g] = nw
		}
	})
}
