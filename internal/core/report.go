package core

import (
	"encoding/json"
	"io"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// Report is the machine-readable summary of a detection run, suitable
// for CI integration or downstream tooling.
type Report struct {
	Kernel   string       `json:"kernel,omitempty"`
	Detector string       `json:"detector"`
	Options  ReportOpts   `json:"options"`
	Summary  ReportTotals `json:"summary"`
	// Health is the degradation report; present only when the run was
	// degraded (dropped checks, injected faults, quarantines), so
	// fault-free reports stay byte-identical to earlier versions.
	Health *gpu.DetectorHealth `json:"health,omitempty"`
	Races  []ReportRace        `json:"races"`
}

// ReportOpts records the detection configuration of the run.
type ReportOpts struct {
	Shared            bool `json:"shared"`
	Global            bool `json:"global"`
	SharedGranularity int  `json:"shared_granularity"`
	GlobalGranularity int  `json:"global_granularity"`
	WarpAware         bool `json:"warp_aware"`
	BloomBits         int  `json:"bloom_bits"`
	BloomBins         int  `json:"bloom_bins"`
}

// ReportTotals aggregates counts.
type ReportTotals struct {
	Distinct       int              `json:"distinct_races"`
	DynamicReports int64            `json:"dynamic_reports"`
	SharedSites    int              `json:"shared_sites"`
	GlobalSites    int              `json:"global_sites"`
	ByKind         map[string]int   `json:"by_kind"`
	ByCategory     map[string]int   `json:"by_category"`
	Checks         map[string]int64 `json:"checks"`
}

// ReportRace is one distinct race in serializable form.
type ReportRace struct {
	Kernel      string `json:"kernel"`
	Space       string `json:"space"`
	Kind        string `json:"kind"`
	Category    string `json:"category"`
	PC          int    `json:"pc"`
	Stmt        string `json:"stmt,omitempty"`
	Address     uint64 `json:"address"`
	Granule     uint64 `json:"granule"`
	FirstTid    int    `json:"first_tid"`
	FirstBlock  int    `json:"first_block"`
	SecondTid   int    `json:"second_tid"`
	SecondBlock int    `json:"second_block"`
	Count       int64  `json:"count"`
	// Provenance is "StaticWitness" for quarantine pre-seeded reports;
	// omitted for ordinary state-machine reports, so unseeded runs stay
	// byte-identical to earlier report versions.
	Provenance string `json:"provenance,omitempty"`
}

// Report builds the machine-readable summary of everything detected
// so far.
func (d *Detector) Report() *Report {
	st := d.Stats()
	rep := &Report{
		Detector: d.Name(),
		Options: ReportOpts{
			Shared:            d.opt.Shared,
			Global:            d.opt.Global,
			SharedGranularity: d.opt.SharedGranularity,
			GlobalGranularity: d.opt.GlobalGranularity,
			WarpAware:         d.opt.WarpAware,
			BloomBits:         d.opt.Bloom.SizeBits,
			BloomBins:         d.opt.Bloom.Bins,
		},
		Summary: ReportTotals{
			Distinct:       len(d.races),
			DynamicReports: st.Reports,
			SharedSites:    d.SiteCount(isa.SpaceShared),
			GlobalSites:    d.SiteCount(isa.SpaceGlobal),
			ByKind:         map[string]int{},
			ByCategory:     map[string]int{},
			Checks: map[string]int64{
				"shared": st.SharedChecks,
				"global": st.GlobalChecks,
			},
		},
	}
	if st.FilteredChecks > 0 {
		// Only present when the static filter actually skipped work, so
		// filter-off reports stay byte-identical to earlier versions.
		rep.Summary.Checks["filtered"] = st.FilteredChecks
	}
	if h := d.Health(); h.Degraded {
		rep.Health = h
	}
	for _, r := range d.SortedRaces() {
		rep.Summary.ByKind[r.Kind.String()]++
		rep.Summary.ByCategory[r.Category.String()]++
		rep.Races = append(rep.Races, ReportRace{
			Kernel:      r.Kernel,
			Space:       r.Space.String(),
			Kind:        r.Kind.String(),
			Category:    r.Category.String(),
			PC:          r.PC,
			Stmt:        r.Stmt,
			Address:     r.Addr,
			Granule:     r.Granule,
			FirstTid:    r.FirstTid,
			FirstBlock:  r.FirstBlock,
			SecondTid:   r.SecondTid,
			SecondBlock: r.SecondBlock,
			Count:       r.Count,
			Provenance:  r.Provenance,
		})
	}
	return rep
}

// WriteJSON serializes the report with indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
