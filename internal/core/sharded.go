package core

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"time"

	"haccrg/internal/bloom"
	"haccrg/internal/fault"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// This file is the sharded per-partition global-memory RDU engine.
//
// HAccRG puts one Race Detection Unit inside each memory partition;
// the units share nothing — a granule's shadow entry lives in exactly
// the partition its line is interleaved to. The serial engine already
// exploits that for correctness (checks at different partitions never
// touch the same entry); this engine exploits it for wall-clock: each
// partition's checks run off the simulation thread against a private
// slice of the shadow, fed by bounded SPSC rings of batched lane
// events, while the simulation thread only enqueues and moves on.
//
// Two kinds of object split the work:
//
//   - gshard is the determinism unit: one per partition, owning that
//     partition's shadow slice, quarantine set, fault-injector
//     streams, health counters and report buffer. Nothing here is
//     shared between partitions.
//
//   - gworker is the execution unit: a goroutine with an SPSC ring,
//     servicing the shards of one or more partitions. Worker count
//     adapts to GOMAXPROCS (the simulation thread needs a processor
//     too); partition-to-worker assignment is static for a kernel, so
//     each partition's checks still execute in enqueue order on a
//     single goroutine.
//
// Determinism contract: findings are byte-identical to the serial
// engine — and independent of the worker count, so any machine
// reproduces any other machine's findings. Three mechanisms:
//
//   - Disjoint state. A shard owns the shadow entries, quarantine set
//     and fault-injector streams of its partition alone; the
//     internal/fault injector draws every random decision from a
//     per-(mechanism, unit, id) stream, so the sequence one partition
//     sees is independent of how the others interleave with it.
//
//   - Sequence-tagged reports. The simulation thread assigns every
//     potential race report a global sequence number in serial report
//     order before the work is enqueued; shards buffer their reports
//     as raceCands, and quiescent points merge all buffers in
//     sequence order through applyCand — replaying the serial
//     dedup/count/cap behaviour exactly.
//
//   - Fence mirroring. Shards never read device state. The device
//     calls FenceAdvance on the simulation thread at every fence;
//     the engine drains in-flight checks first, then updates a
//     private mirror of the race register file, so a shard-side
//     fence-ID read returns exactly what the serial engine would
//     have read at that point in the event stream.
//
// Quiescent (drain) points: Barrier, FenceAdvance, KernelEnd,
// Quiesce (called by the device on abort paths), and the stats/
// health/race readers. Ring-full enqueue blocks the sim thread
// (backpressure) rather than dropping checks.
type gshard struct {
	d    *Detector
	part int // owning partition; -1 for the serial (unsharded) unit

	// Shadow-index compaction: partition p owns lines p, p+P, p+2P, …
	// (the device's line-interleaved mapping), so granule g of line
	// l is stored densely at (l/P)<<gplShift | (g & gplMask). The
	// serial unit stores granule g at g directly.
	gplShift uint   // log2(granules per coalescing segment)
	gplMask  uint64 // granules-per-segment - 1
	nparts   uint64
	npShift  uint // log2(nparts) when nparts is a power of two
	npPow2   bool

	shadow pagedShadow
	quar   map[uint64]struct{} // quarantined granules (keyed by real granule)

	// inj is this shard's fault injector: the serial unit shares the
	// detector's, parallel shards own an identically-seeded instance
	// (per-key streams make the two layouts draw identical decisions).
	inj *fault.Injector

	checks       int64 // lane checks serviced (Stats.GlobalChecks share)
	fenceLookups int64 // race-register-file reads (Stats.FenceLookups share)
	health       gpu.DetectorHealth
	fillBits     int64 // summed popcounts of observed lockset signatures
	fillN        int64

	curSeq  uint64     // sequence number of the lane being checked
	pending []raceCand // buffered reports, ascending curSeq order
	fences  []fenceRead
}

// gworker is one detection goroutine: an SPSC ring of batches from the
// simulation thread, multiplexing the shards of the partitions — or,
// with shared set, the SMs — assigned to it. The rings are rebuilt on
// engagement (KernelEnd parks the workers by closing them); the batch
// storage itself persists, so the steady state never allocates.
type gworker struct {
	d      *Detector
	shared bool // services per-SM shared shards instead of partitions

	// SPSC rings. free holds recycled batches (capacity = ring size,
	// prefilled); work holds batches in flight plus one slot for the
	// drain sentinel, so a drain request never deadlocks behind data.
	work       chan *gbatch
	free       chan *gbatch
	batches    []*gbatch // the worker's batch storage, recycled via free
	drainBatch *gbatch
	drainDone  chan struct{}

	open  *gbatch // producer-side open batch (sim thread only)
	dirty bool    // batches enqueued since the last drain
	qpeak int     // deepest work-queue backlog observed
}

// gev is the per-warp-instruction header a global check needs — the
// WarpMemEvent fields minus the lanes, copied so a batch never aliases
// the caller-owned event (see the WarpMemEvent ownership contract).
type gev struct {
	write   bool
	atomic  bool
	pc      int
	stmt    string
	sm      int
	block   int
	syncID  uint32
	fenceID uint32
	cycle   int64
}

// gseg is one unit-contiguous run of one warp instruction's lanes:
// the shared header, the owning unit (partition, or SM for shared
// batches), the index of the run's first lane (its lanes extend to
// the next segment's start, or the end of the batch), and the report
// sequence number of that first lane. A run's lanes are consecutive
// in the original instruction, so their sequence numbers are
// consecutive from seq0 — one tag replaces a per-lane array. A
// segReset segment carries no lanes; it is a block-start shadow reset
// riding the ring in stream order ([lo, hi) granules of the unit).
type gseg struct {
	ev     gev
	seq0   uint64
	part   int32
	start  int32
	lo, hi int32
	kind   uint8
}

const (
	segLanes uint8 = iota
	segReset
)

// gbatch is one enqueued unit of work: many consecutive warp
// instructions' lanes with their unit runs. Batching across events is
// what makes the pipeline pay: handing a goroutine one instruction at
// a time loses more to the wakeup than the checks cost. Lane storage
// is owned by the batch, laid out SoA-style — parallel per-lane
// arrays instead of an array of LaneAccess structs, so the check loop
// streams the two or three fields it reads (addresses, tids) without
// dragging the rest of the 56-byte struct through the cache — and
// recycled through the free ring. Shared-memory batches fill only
// addr and tid.
type gbatch struct {
	drain bool
	segs  []gseg
	addr  []uint64
	tid   []int32
	arr   []int64 // lane arrival cycles (queue-admission fault hook)
	fill  []int64 // L1 fill cycles (stale-L1 check)
	sig   []bloom.Sig
	flags []uint8 // laneCrit | laneHit
}

// reset empties a recycled batch for refill (capacities persist).
func (b *gbatch) reset() {
	b.segs = b.segs[:0]
	b.addr = b.addr[:0]
	b.tid = b.tid[:0]
	b.arr = b.arr[:0]
	b.fill = b.fill[:0]
	b.sig = b.sig[:0]
	b.flags = b.flags[:0]
}

// raceCand is a buffered race report: everything applyCand needs to
// replay Detector.report later, in global sequence order.
type raceCand struct {
	seq                    uint64
	kernel                 string
	space                  isa.Space
	kind                   Kind
	cat                    Category
	pc                     int
	stmt                   string
	granule                uint64
	addr                   uint64
	firstTid, firstBlock   int
	secondTid, secondBlock int
	prov                   string // report provenance ("" = state machine)
	cycle                  int64
}

// fenceRead is a shard-side race-register-file read, logged so the
// journal can serve the identical response sequence to a serial
// replay.
type fenceRead struct {
	seq   uint64
	block int
	warp  int
	id    uint32
}

// gringBatches sizes each worker's ring: deep enough that the sim
// thread rides out consumer scheduling latency, small enough that a
// drain is cheap.
const gringBatches = 8

// gbatchLanes is a batch's lane capacity (64 full-warp events): a
// goroutine wakeup costs tens of microseconds on a loaded host, so a
// handoff has to carry enough checks to amortize it. Backpressure
// still engages before unbounded buffering: a worker's ring caps out
// at gringBatches*gbatchLanes lanes.
const gbatchLanes = 2048

// gsegCap bounds a batch's segment count. A warp instruction adds at
// most WarpSize runs, so the enqueue path flushes early when either
// lanes or segments could overflow — keeping the append calls
// allocation-free.
const gsegCap = 256

// engageLanes is the per-kernel lane volume below which an armed async
// engine keeps its checks inline on the sim thread (against the same
// shard units, with the same sequence tags and injector draws, so
// findings cannot depend on whether the threshold is crossed). A ring
// hand-off costs a goroutine wakeup — tens of microseconds on a loaded
// host — which a kernel issuing a few hundred warp events never earns
// back; BENCH_PR6's hash row (0.47x) was exactly this tax. Workers
// launch at the first event that pushes the kernel past the threshold.
const engageLanes = 4096

// parallelFeasible reports whether the sharded engine can run under
// this configuration: more than one partition, granules that never
// straddle a coalescing segment (so every granule maps to exactly one
// partition — the disjointness the shards rely on), and no standing
// engine fallback (a sentinel mismatch or stalled drain permanently
// degrades the detector to the serial engine; see sentinel.go).
func (d *Detector) parallelFeasible(cfg *gpu.Config) bool {
	return d.opt.Parallel && d.opt.Global && !d.engineFallback &&
		cfg.NumPartitions > 1 &&
		d.opt.GlobalGranularity <= cfg.SegmentBytes
}

// buildUnits (re)creates the global RDU units for the current mode:
// one serial unit (part = -1) sharing the detector's injector, or one
// shard per partition with private injectors, serviced by dedicated
// workers. The worker count is an execution detail — findings do not
// depend on it. splitBudget is set when the shared engine also shards,
// so the two engines divide the available processors between them.
func (d *Detector) buildUnits(cfg *gpu.Config, parallel, splitBudget bool) {
	if !parallel {
		d.gunits = []*gshard{{d: d, part: -1, inj: d.inj}}
		d.gworkers = nil
		d.workerOf = nil
		return
	}
	nparts := cfg.NumPartitions
	gpl := uint64(cfg.SegmentBytes / d.opt.GlobalGranularity)
	shift := uint(0)
	for 1<<shift != gpl {
		shift++
	}
	npPow2 := nparts&(nparts-1) == 0
	d.gunits = make([]*gshard, nparts)
	for p := 0; p < nparts; p++ {
		d.gunits[p] = &gshard{
			d: d, part: p,
			gplShift: shift, gplMask: gpl - 1,
			nparts:  uint64(nparts),
			npShift: uint(bits.TrailingZeros64(uint64(nparts))), npPow2: npPow2,
			inj: fault.New(d.opt.Fault, d.opt.FaultSeed),
		}
	}
	nw := workerBudget(nparts, splitBudget, true)
	d.gworkers = newWorkers(d, nw, false)
	d.workerOf = make([]*gworker, nparts)
	for p := 0; p < nparts; p++ {
		d.workerOf[p] = d.gworkers[p%nw]
	}
	if d.fenceTab == nil {
		d.fenceTab = make(map[uint64]uint32)
	}
}

// workerBudget sizes one engine's worker pool: the sim thread keeps a
// processor, and when both engines shard they split the remainder
// (global rounds up — it is the heavier path on every bench).
func workerBudget(units int, split, roundUp bool) int {
	avail := runtime.GOMAXPROCS(0) - 1
	if split {
		if roundUp {
			avail = (avail + 1) / 2
		} else {
			avail = avail / 2
		}
	}
	if avail < 1 {
		avail = 1
	}
	if avail > units {
		avail = units
	}
	return avail
}

// newWorkers allocates n parked workers with their persistent batch
// storage.
func newWorkers(d *Detector, n int, shared bool) []*gworker {
	ws := make([]*gworker, n)
	for i := range ws {
		w := &gworker{d: d, shared: shared, drainBatch: &gbatch{drain: true}}
		w.batches = make([]*gbatch, gringBatches)
		for j := range w.batches {
			w.batches[j] = &gbatch{
				segs:  make([]gseg, 0, gsegCap),
				addr:  make([]uint64, 0, gbatchLanes),
				tid:   make([]int32, 0, gbatchLanes),
				arr:   make([]int64, 0, gbatchLanes),
				fill:  make([]int64, 0, gbatchLanes),
				sig:   make([]bloom.Sig, 0, gbatchLanes),
				flags: make([]uint8, 0, gbatchLanes),
			}
		}
		ws[i] = w
	}
	return ws
}

// lidx maps a real granule number to this shard's local shadow index.
func (u *gshard) lidx(g uint64) uint64 {
	if u.part < 0 {
		return g
	}
	line := g >> u.gplShift
	if u.npPow2 {
		return (line>>u.npShift)<<u.gplShift | (g & u.gplMask)
	}
	return (line/u.nparts)<<u.gplShift | (g & u.gplMask)
}

// startWorkers launches the global worker goroutines with fresh rings
// (the engagement point once a kernel's lane volume crosses
// engageLanes); KernelEnd (or Quiesce) joins them. The rings are
// per-engagement — stopWorkers closes them — but the batches they
// circulate persist on the worker, so relaunching costs two channel
// allocations and no batch storage.
func (d *Detector) startWorkers() {
	d.grunning = true
	for _, w := range d.gworkers {
		w.start(&d.wg)
	}
}

func (w *gworker) start(wg *sync.WaitGroup) {
	w.work = make(chan *gbatch, gringBatches+1)
	w.free = make(chan *gbatch, gringBatches)
	w.drainDone = make(chan struct{}, 1)
	for _, b := range w.batches {
		w.free <- b
	}
	w.open = nil
	w.dirty = false
	wg.Add(1)
	go w.run(wg)
}

func (w *gworker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for b := range w.work {
		if b.drain {
			w.drainDone <- struct{}{}
			continue
		}
		if w.shared {
			w.processShared(b)
		} else {
			w.process(b)
		}
		w.free <- b
	}
}

// openBatch returns the worker's open batch, pulling a recycled one
// from the free ring (backpressure point) when none is open.
func (w *gworker) openBatch() *gbatch {
	b := w.open
	if b == nil {
		b = <-w.free // ring-full backpressure
		b.reset()
		w.open = b
	}
	return b
}

// process services one batch, segment by segment, against the
// segment's partition shard: the same admit/saturate/check sequence as
// the serial per-lane loop, touching that shard's state only.
func (w *gworker) process(b *gbatch) {
	if h := w.d.opt.Chaos; h != nil && h.WorkerStall != nil && len(b.segs) > 0 {
		h.WorkerStall(int(b.segs[0].part))
	}
	gran := uint64(w.d.opt.GlobalGranularity)
	units := w.d.gunits
	for s := range b.segs {
		seg := &b.segs[s]
		end := len(b.addr)
		if s+1 < len(b.segs) {
			end = int(b.segs[s+1].start)
		}
		u := units[seg.part]
		for i := int(seg.start); i < end; i++ {
			u.curSeq = seg.seq0 + uint64(i-int(seg.start))
			if u.inj != nil && !u.admit(u.part, b.arr[i]) {
				continue
			}
			lv := glane{addr: b.addr[i], fill: b.fill[i], sig: b.sig[i], tid: b.tid[i], flags: b.flags[i]}
			if u.inj != nil {
				lv.sig = u.saturate(u.part, lv.sig, lv.flags&laneCrit != 0)
			}
			u.checks++
			if seg.ev.atomic {
				continue // atomic operations are synchronization accesses
			}
			u.globalCheck(&seg.ev, lv, u.part, gran)
		}
	}
}

// flushAndSignal flushes the open batches of a worker set and sends
// the drain sentinel to every dirty worker; true means at least one
// acknowledgement is owed.
func flushAndSignal(ws []*gworker) bool {
	any := false
	for _, w := range ws {
		w.flush()
		if w.dirty {
			w.work <- w.drainBatch
			any = true
		}
	}
	return any
}

// awaitDrain collects the drain acknowledgements of a worker set —
// the rings are FIFO, so an acknowledgement means every batch
// enqueued before it has been fully processed.
func (d *Detector) awaitDrain(ws []*gworker) {
	for _, w := range ws {
		if !w.dirty {
			continue
		}
		if budget := d.opt.StallBudget; budget > 0 {
			// Stall watchdog: a worker that overruns the budget is
			// recorded and the engine falls back to serial at the next
			// kernel launch. The drain still waits for the real
			// acknowledgement — walking away from a live worker would
			// corrupt the sequence merge; the budget makes the stall
			// loud, it does not cap the wait.
			t := time.NewTimer(budget)
			select {
			case <-w.drainDone:
				t.Stop()
			case <-t.C:
				d.health.StalledDrains++
				if !d.engineFallback {
					d.health.EngineFallbacks++
					d.engineFallback = true
				}
				<-w.drainDone
			}
		} else {
			<-w.drainDone
		}
		w.dirty = false
	}
}

// drainDirty brings every engaged worker of both engines to
// quiescence. Sentinels go out to all dirty workers before any wait,
// so the two engines drain concurrently.
func (d *Detector) drainDirty() {
	anyG, anyS := false, false
	if d.grunning {
		anyG = flushAndSignal(d.gworkers)
	}
	if d.srunning {
		anyS = flushAndSignal(d.sworkers)
	}
	if anyG {
		d.awaitDrain(d.gworkers)
	}
	if anyS {
		d.awaitDrain(d.sworkers)
	}
}

// quiesce is the mid-kernel drain point: all enqueued checks applied,
// all buffered reports merged. A no-op when the engines are serial or
// between kernels.
func (d *Detector) quiesce() {
	if !d.gact && !d.sact {
		return
	}
	d.drainDirty()
	d.mergePending()
}

// Quiesce implements gpu.AsyncDetector: drain, merge, and stop the
// pipeline. The device calls it in finalize so aborted launches —
// which never reach KernelEnd — still settle before stats are read.
func (d *Detector) Quiesce() {
	if !d.gact && !d.sact {
		return
	}
	d.drainDirty()
	d.mergePending()
	d.collectFences()
	d.stopWorkers()
	d.gact, d.sact = false, false
}

func (d *Detector) stopWorkers() {
	if d.grunning {
		for _, w := range d.gworkers {
			close(w.work)
		}
	}
	if d.srunning {
		for _, w := range d.sworkers {
			close(w.work)
		}
	}
	d.wg.Wait()
	d.grunning, d.srunning = false, false
}

// resetQueueStats clears the queue-peak gauges at kernel launch (the
// workers themselves may never engage for a tiny kernel, so the reset
// cannot live in start()).
func (d *Detector) resetQueueStats() {
	for _, w := range d.gworkers {
		w.qpeak = 0
	}
	for _, w := range d.sworkers {
		w.qpeak = 0
	}
}

// DetectQueuePeak implements gpu.AsyncDetector. Zero for kernels that
// never engaged the rings (the inline phase below engageLanes).
func (d *Detector) DetectQueuePeak() int {
	p := 0
	for _, w := range d.gworkers {
		if w.qpeak > p {
			p = w.qpeak
		}
	}
	for _, w := range d.sworkers {
		if w.qpeak > p {
			p = w.qpeak
		}
	}
	return p
}

// FenceAdvance implements gpu.FenceObserver: the device announces a
// warp's fence-clock increment on the simulation thread. Draining the
// dirty global workers first preserves the serial semantics — checks
// enqueued before the fence read the old value, checks after read the
// new one — and establishes the happens-before edge that makes the
// plain map below safe (all global workers are parked between the
// drain acknowledgement and their next channel receive). Shared-memory
// checks never consult fences, so the shared rings keep flowing.
func (d *Detector) FenceAdvance(block, warpInBlock int, id uint32) {
	if !d.gact && !d.sact {
		return
	}
	if d.grunning && flushAndSignal(d.gworkers) {
		d.awaitDrain(d.gworkers)
	}
	d.fenceTab[fenceTabKey(block, warpInBlock)] = id
}

func fenceTabKey(block, warp int) uint64 {
	return uint64(uint32(block))<<32 | uint64(uint32(warp))
}

// fenceRead performs one race-register-file lookup. The serial unit
// reads the live device (through any recording Env wrapper); a shard
// reads the mirror and logs the response so journals stay replayable.
func (u *gshard) fenceRead(block, warp int) uint32 {
	u.fenceLookups++
	if u.part < 0 {
		return u.d.env.CurrentFenceID(block, warp)
	}
	id := u.d.fenceTab[fenceTabKey(block, warp)]
	u.fences = append(u.fences, fenceRead{seq: u.curSeq, block: block, warp: warp, id: id})
	return id
}

// report buffers (shards) or applies (serial unit) one race report.
func (u *gshard) report(space isa.Space, kind Kind, cat Category, pc int, stmt string, granule, addr uint64,
	firstTid, firstBlock, secondTid, secondBlock int, cycle int64) {
	if u.part < 0 {
		u.d.report(space, kind, cat, pc, stmt, granule, addr,
			firstTid, firstBlock, secondTid, secondBlock, cycle)
		return
	}
	u.pending = append(u.pending, raceCand{
		seq: u.curSeq, kernel: u.d.kernel,
		space: space, kind: kind, cat: cat, pc: pc, stmt: stmt,
		granule: granule, addr: addr,
		firstTid: firstTid, firstBlock: firstBlock,
		secondTid: secondTid, secondBlock: secondBlock,
		cycle: cycle,
	})
}

// mergePending applies all buffered reports — the simulation thread's
// and every shard's — in global sequence order, replaying the exact
// serial dedup, count and cap behaviour. Sequence numbers are unique,
// so the sort is a total order.
func (d *Detector) mergePending() {
	buf := d.mergeBuf[:0]
	buf = append(buf, d.simPending...)
	d.simPending = d.simPending[:0]
	for _, u := range d.gunits {
		buf = append(buf, u.pending...)
		u.pending = u.pending[:0]
	}
	for _, u := range d.sunits {
		buf = append(buf, u.pending...)
		u.pending = u.pending[:0]
	}
	if len(buf) == 0 {
		return
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].seq < buf[j].seq })
	for i := range buf {
		d.applyCand(&buf[i])
	}
	d.mergeBuf = buf[:0]
}

// collectFences merges the shards' fence-read logs in sequence order
// into the kernel's fence log (see TakeFenceLog).
func (d *Detector) collectFences() {
	buf := d.fenceBuf[:0]
	for _, u := range d.gunits {
		buf = append(buf, u.fences...)
		u.fences = u.fences[:0]
	}
	if len(buf) == 0 {
		return
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].seq < buf[j].seq })
	for _, f := range buf {
		d.fenceLog = append(d.fenceLog, gpu.FenceRead{Block: f.block, Warp: f.warp, ID: f.id})
	}
	d.fenceBuf = buf[:0]
}

// TakeFenceLog hands over (and clears) the fence reads the sharded
// engine consumed this kernel, in consumption order. journal.Recorder
// appends them as fence records at kernel end, so a serial replay —
// which issues the identical query sequence — is served the identical
// responses. Empty in serial mode, where fence reads go through the
// recording Env inline.
func (d *Detector) TakeFenceLog() []gpu.FenceRead {
	out := d.fenceLog
	d.fenceLog = nil
	return out
}

// globalRDUAsync is the parallel enqueue path of globalRDU: reserve
// report sequence numbers, run the intra-warp check and the timing
// model on the simulation thread, then scatter the lanes to their
// partitions' workers. It never blocks on detection (only on a full
// ring) and performs no steady-state allocation.
func (d *Detector) globalRDUAsync(ev *gpu.WarpMemEvent, gran uint64) int64 {
	// Sequence reservation: the intra-warp WAW check emits at most
	// len(Lanes)-1 reports (numbered evBase…), and each lane check at
	// most one (numbered evBase+L+i), so merged order equals the
	// serial report order: WAW reports first, then lanes ascending.
	evBase := d.seq
	lcount := uint64(len(ev.Lanes))
	if ev.Write || ev.Atomic {
		d.intraWarpWAW(ev, isa.SpaceGlobal, gran)
	}
	d.seq = evBase + 2*lcount

	if d.opt.ModelTraffic {
		d.modelGlobalTraffic(ev, gran)
	}

	base := evBase + lcount
	if !d.grunning {
		d.glanes += len(ev.Lanes)
		if d.glanes < engageLanes {
			d.globalInline(ev, base, gran)
			return 0
		}
		d.startWorkers()
	}

	h := gev{
		write: ev.Write, atomic: ev.Atomic, pc: ev.PC, stmt: ev.Stmt,
		sm: ev.SM, block: ev.Block, syncID: ev.SyncID, fenceID: ev.FenceID,
		cycle: ev.Cycle,
	}
	// Scatter by partition in runs: coalesced warps keep consecutive
	// lanes on one line, so the common case is one segment and one
	// field-wise copy per event (the event is borrowed; the copy
	// detaches the batch from caller-owned lane storage). A batch stays
	// open across events until the next warp might not fit; only then
	// does it cross to the worker. Drain points flush the open batches
	// regardless of fill.
	lanes := ev.Lanes
	for i := 0; i < len(lanes); {
		p := d.partitionOf(lanes[i].Addr)
		j := i + 1
		for j < len(lanes) && d.partitionOf(lanes[j].Addr) == p {
			j++
		}
		w := d.workerOf[p]
		b := w.openBatch()
		b.segs = append(b.segs, gseg{ev: h, seq0: base + uint64(i), part: int32(p), start: int32(len(b.addr))})
		for k := i; k < j; k++ {
			la := &lanes[k]
			b.addr = append(b.addr, la.Addr)
			b.tid = append(b.tid, int32(la.Tid))
			b.arr = append(b.arr, la.Arrival)
			b.fill = append(b.fill, la.L1Fill)
			b.sig = append(b.sig, la.AtomicSig)
			b.flags = append(b.flags, laneFlags(la))
		}
		if len(b.addr)+d.warpSize > cap(b.addr) || len(b.segs)+d.warpSize > cap(b.segs) {
			w.flush()
		}
		i = j
	}
	return 0
}

// globalInline services one event's lane checks on the sim thread
// against the per-partition shards — the armed engine's phase before
// the rings engage. The per-lane sequence, seq tags and injector
// draws are identical to the worker loop's, so findings cannot depend
// on when (or whether) the kernel crosses the engagement threshold.
func (d *Detector) globalInline(ev *gpu.WarpMemEvent, base uint64, gran uint64) {
	h := gev{
		write: ev.Write, atomic: ev.Atomic, pc: ev.PC, stmt: ev.Stmt,
		sm: ev.SM, block: ev.Block, syncID: ev.SyncID, fenceID: ev.FenceID,
		cycle: ev.Cycle,
	}
	for i := range ev.Lanes {
		la := &ev.Lanes[i]
		p := d.partitionOf(la.Addr)
		u := d.gunits[p]
		u.curSeq = base + uint64(i)
		if u.inj != nil && !u.admit(p, la.Arrival) {
			continue
		}
		lv := glane{addr: la.Addr, fill: la.L1Fill, sig: la.AtomicSig, tid: int32(la.Tid), flags: laneFlags(la)}
		if u.inj != nil {
			lv.sig = u.saturate(p, lv.sig, lv.flags&laneCrit != 0)
		}
		u.checks++
		if ev.Atomic {
			continue
		}
		u.globalCheck(&h, lv, p, gran)
	}
}

// laneFlags packs a lane's booleans for batch storage.
func laneFlags(la *gpu.LaneAccess) uint8 {
	var f uint8
	if la.InCrit {
		f |= laneCrit
	}
	if la.L1Hit {
		f |= laneHit
	}
	return f
}

// flush hands the worker's open batch to its goroutine (a no-op when
// nothing is buffered).
func (w *gworker) flush() {
	b := w.open
	if b == nil || (len(b.addr) == 0 && len(b.segs) == 0) {
		return
	}
	w.work <- b
	w.open = nil
	w.dirty = true
	if n := len(w.work); n > w.qpeak {
		w.qpeak = n
	}
}

// Shard-local fault hooks: the gshard counterparts of the detector's
// shared-memory hooks in health.go, drawing from the owning
// partition's injector streams and accounting into shard-local health.

func (u *gshard) admit(part int, cycle int64) bool {
	if u.inj.Admit(fault.UnitGlobal, part, cycle, 1) == 1 {
		return true
	}
	u.health.DroppedChecks++
	return false
}

// saturate returns the lane's signature, possibly saturated by the
// injector. Pure — the caller-owned lane is never mutated, so the
// sentinel's observed copy and the recorded journal always carry the
// original signature regardless of engine or engagement phase.
func (u *gshard) saturate(part int, sig bloom.Sig, inCrit bool) bloom.Sig {
	if !inCrit {
		return sig
	}
	if sat, changed := u.inj.Saturate(fault.UnitGlobal, part, uint64(sig), uint64(u.d.opt.Bloom.Mask())); changed {
		u.health.SaturatedSigs++
		return bloom.Sig(sat)
	}
	return sig
}

func (u *gshard) observeFill(sigs ...bloom.Sig) {
	for _, s := range sigs {
		if s == 0 {
			continue // null set: the signature is not in use
		}
		u.fillBits += int64(bits.OnesCount64(uint64(s)))
		u.fillN++
	}
}

// faultGlobal applies shadow-cell faults to granule g (stored at local
// index li) before its check runs; true means the check is skipped.
func (u *gshard) faultGlobal(part int, g, li uint64) (skip bool) {
	if _, q := u.quar[g]; q {
		u.health.QuarantineSkips++
		return true
	}
	if pat, stuck := u.inj.Stuck(fault.UnitGlobal, g); stuck {
		if u.inj.ECC() {
			if u.d.opt.Degradation == DegradeReinit {
				u.shadow.clear(li)
				u.health.ReinitGranules++
				return false
			}
			u.quarantineGlobal(g)
			return true
		}
		if e := u.shadow.lookup(li); e != nil {
			stuckGlobalEntry(e, pat)
			u.health.StuckReads++
		}
		return false
	}
	if e := u.shadow.lookup(li); e != nil {
		if bit, hit := u.inj.FlipBit(fault.UnitGlobal, part, globalEntryBits); hit {
			if u.inj.ECC() {
				u.health.CorrectedFlips++
			} else {
				flipGlobalEntry(e, bit)
				u.health.InjectedFlips++
			}
		}
	}
	return false
}

func (u *gshard) quarantineGlobal(g uint64) {
	if u.quar == nil {
		u.quar = make(map[uint64]struct{})
	}
	u.quar[g] = struct{}{}
	u.health.QuarantinedGranules++
	u.health.QuarantineSkips++
}
