package core

import (
	"testing"

	"haccrg/internal/gpu"
)

func TestHardwareCostGT200(t *testing.T) {
	cfg := gpu.DefaultConfig()
	opt := DefaultOptions()
	c := ComputeHardwareCost(&cfg, opt)

	// 1 modified + 1 shared + 10-bit tid = 12-bit shared entries.
	if c.SharedEntryBits != 12 {
		t.Errorf("shared entry bits = %d, want 12", c.SharedEntryBits)
	}
	// 16KB shared at 16B granularity: 1024 entries, 1.5KB per SM.
	if c.SharedEntries != 1024 {
		t.Errorf("shared entries = %d, want 1024", c.SharedEntries)
	}
	if c.SharedShadowBytesPerSM != 1536 {
		t.Errorf("shared shadow bytes = %d, want 1536", c.SharedShadowBytesPerSM)
	}
	// 16 banks x 4B / 16B granularity = 4 comparators... the paper's
	// 8 arises from half-warp banking; our formula gives banks*width/g.
	if c.SharedComparatorsPerSM < 1 {
		t.Errorf("no shared comparators")
	}
	// Base global entry: 2 + 10 tid + 3 bid + 5 sid + 8 sync = 28 bits.
	if c.GlobalEntryBitsBase != 28 {
		t.Errorf("global entry bits = %d, want 28", c.GlobalEntryBitsBase)
	}
	if c.GlobalEntryBitsFence != 36 {
		t.Errorf("global+fence bits = %d, want 36", c.GlobalEntryBitsFence)
	}
	if c.GlobalEntryBitsAtomic != 52 {
		t.Errorf("global+fence+atomic bits = %d, want 52", c.GlobalEntryBitsAtomic)
	}
	// 128B line / 4B granularity = 32 base comparators, 16 ID ones.
	if c.GlobalComparatorsPerSlice != 32 || c.IDComparatorsPerSlice != 16 {
		t.Errorf("comparators = %d/%d, want 32/16", c.GlobalComparatorsPerSlice, c.IDComparatorsPerSlice)
	}
	// Race register file: 30 SMs x 32 warps x 1B = 960B (~0.75-1KB).
	if c.RaceRegisterFileBytes != 960 {
		t.Errorf("race register file = %dB, want 960", c.RaceRegisterFileBytes)
	}
}

func TestHardwareCostFermi(t *testing.T) {
	// The paper's Fermi sizing: 48KB shared/SM -> 4.5KB shadow;
	// 8 blocks + 48 warps + 1536 threads -> ~3KB of IDs per SM.
	cfg := gpu.DefaultConfig()
	cfg.Shared.SizeBytes = 48 << 10
	cfg.MaxThreadsPerSM = 1536
	cfg.MaxBlocksPerSM = 8
	opt := DefaultOptions()
	c := ComputeHardwareCost(&cfg, opt)

	// 48KB/16B = 3072 entries; tid needs 11 bits for 1536 threads, but
	// the paper keeps 12-bit entries (10-bit tid) — our model derives
	// 13 bits; verify the byte count tracks entries*bits/8.
	wantBytes := (c.SharedEntries*c.SharedEntryBits + 7) / 8
	if c.SharedShadowBytesPerSM != wantBytes {
		t.Errorf("shadow bytes inconsistent: %d vs %d", c.SharedShadowBytesPerSM, wantBytes)
	}
	if c.SharedEntries != 3072 {
		t.Errorf("Fermi shared entries = %d, want 3072", c.SharedEntries)
	}
	// IDs: 8 sync bytes + 48 fence bytes + 1536*2 atomic bytes = 3128B.
	if c.IDBytesPerSM != 8+48+3072 {
		t.Errorf("ID bytes per SM = %d, want 3128", c.IDBytesPerSM)
	}
}

func TestGlobalShadowBytes(t *testing.T) {
	opt := DefaultOptions()
	// 4B granularity with 7-byte packed entries: 1MB of data -> 1.75MB.
	if got := GlobalShadowBytes(1<<20, opt); got != (1<<20)/4*7 {
		t.Errorf("shadow bytes for 1MB = %d, want %d", got, (1<<20)/4*7)
	}
	// Coarser granularity shrinks the overhead linearly.
	opt.GlobalGranularity = 64
	if got := GlobalShadowBytes(1<<20, opt); got != (1<<20)/64*7 {
		t.Errorf("shadow bytes at 64B = %d", got)
	}
	// Non-multiple sizes round the granule count up.
	opt.GlobalGranularity = 4
	if got := GlobalShadowBytes(5, opt); got != 2*7 {
		t.Errorf("shadow bytes for 5B = %d, want 14", got)
	}
}
