package core

import (
	"testing"

	"haccrg/internal/gpu"
)

func TestHardwareCostGT200(t *testing.T) {
	cfg := gpu.DefaultConfig()
	opt := DefaultOptions()
	c := ComputeHardwareCost(&cfg, opt)

	// 1 modified + 1 shared + 10-bit tid = 12-bit shared entries.
	if c.SharedEntryBits != 12 {
		t.Errorf("shared entry bits = %d, want 12", c.SharedEntryBits)
	}
	// 16KB shared at 16B granularity: 1024 entries, 1.5KB per SM.
	if c.SharedEntries != 1024 {
		t.Errorf("shared entries = %d, want 1024", c.SharedEntries)
	}
	if c.SharedShadowBytesPerSM != 1536 {
		t.Errorf("shared shadow bytes = %d, want 1536", c.SharedShadowBytesPerSM)
	}
	// 16 banks x 4B / 16B granularity = 4 comparators... the paper's
	// 8 arises from half-warp banking; our formula gives banks*width/g.
	if c.SharedComparatorsPerSM < 1 {
		t.Errorf("no shared comparators")
	}
	// Base global entry, from the packed architectural layout:
	// 2 + 10 tid + 12 bid + 5 sid + 10 sync = 39 bits.
	if c.GlobalEntryBitsBase != 39 {
		t.Errorf("global entry bits = %d, want 39", c.GlobalEntryBitsBase)
	}
	if c.GlobalEntryBitsFence != 49 {
		t.Errorf("global+fence bits = %d, want 49", c.GlobalEntryBitsFence)
	}
	// The full word is the engine's architectural 52-bit entry — the
	// same constant the fault injector's corruption masks span.
	if c.GlobalEntryBitsAtomic != globalEntryBits {
		t.Errorf("global+fence+atomic bits = %d, want %d", c.GlobalEntryBitsAtomic, globalEntryBits)
	}
	if globalEntryBits != 52 {
		t.Errorf("architectural global entry = %d bits, want 52", globalEntryBits)
	}
	// 128B line / 4B granularity = 32 base comparators, 16 ID ones.
	if c.GlobalComparatorsPerSlice != 32 || c.IDComparatorsPerSlice != 16 {
		t.Errorf("comparators = %d/%d, want 32/16", c.GlobalComparatorsPerSlice, c.IDComparatorsPerSlice)
	}
	// Per-SM ID storage at architectural widths: 8 blocks x 10b sync =
	// 10B, 32 warps x 10b fence = 40B, 1024 threads x 16b sigs = 2048B.
	if c.SyncIDBytesPerSM != 10 || c.FenceIDBytesPerSM != 40 || c.AtomicIDBytesPerSM != 2048 {
		t.Errorf("ID bytes = %d/%d/%d, want 10/40/2048",
			c.SyncIDBytesPerSM, c.FenceIDBytesPerSM, c.AtomicIDBytesPerSM)
	}
	// Race register file: 30 SMs x 32 warps x 10 bits = 1200B (~1.2KB).
	if c.RaceRegisterFileBytes != 1200 {
		t.Errorf("race register file = %dB, want 1200", c.RaceRegisterFileBytes)
	}
}

func TestHardwareCostFermi(t *testing.T) {
	// The paper's Fermi sizing: 48KB shared/SM -> 4.5KB shadow;
	// 8 blocks + 48 warps + 1536 threads -> ~3KB of IDs per SM.
	cfg := gpu.DefaultConfig()
	cfg.Shared.SizeBytes = 48 << 10
	cfg.MaxThreadsPerSM = 1536
	cfg.MaxBlocksPerSM = 8
	opt := DefaultOptions()
	c := ComputeHardwareCost(&cfg, opt)

	// 48KB/16B = 3072 entries at the architectural 12-bit width (the
	// paper keeps 10-bit tids even on Fermi's 1536-thread SMs): 4.5KB.
	if c.SharedEntries != 3072 {
		t.Errorf("Fermi shared entries = %d, want 3072", c.SharedEntries)
	}
	if c.SharedEntryBits != 12 {
		t.Errorf("Fermi shared entry bits = %d, want 12 (architectural)", c.SharedEntryBits)
	}
	if c.SharedShadowBytesPerSM != 4608 {
		t.Errorf("Fermi shadow bytes = %d, want 4608", c.SharedShadowBytesPerSM)
	}
	// IDs: 10 sync bytes + 60 fence bytes + 1536*2 atomic bytes = 3142B.
	if c.IDBytesPerSM != 10+60+3072 {
		t.Errorf("ID bytes per SM = %d, want 3142", c.IDBytesPerSM)
	}
}

func TestGlobalShadowBytes(t *testing.T) {
	opt := DefaultOptions()
	// 4B granularity with 7-byte packed entries: 1MB of data -> 1.75MB.
	if got := GlobalShadowBytes(1<<20, opt); got != (1<<20)/4*7 {
		t.Errorf("shadow bytes for 1MB = %d, want %d", got, (1<<20)/4*7)
	}
	// Coarser granularity shrinks the overhead linearly.
	opt.GlobalGranularity = 64
	if got := GlobalShadowBytes(1<<20, opt); got != (1<<20)/64*7 {
		t.Errorf("shadow bytes at 64B = %d", got)
	}
	// Non-multiple sizes round the granule count up.
	opt.GlobalGranularity = 4
	if got := GlobalShadowBytes(5, opt); got != 2*7 {
		t.Errorf("shadow bytes for 5B = %d, want 14", got)
	}
}
