package core

import (
	"haccrg/internal/fault"
	"haccrg/internal/gpu"
)

// This file is the detector side of the fault-injection subsystem: it
// applies an internal/fault plan to the RDU pipeline (queue admission,
// shadow-cell corruption, signature saturation, fetch-latency spikes)
// and keeps the DetectorHealth accounting that makes the degradation
// visible instead of silent.
//
// Invariant relied on by the harness property test: every code path
// that can perturb detection results increments at least one health
// counter, so findings can only diverge from a fault-free run when
// Health().Degraded is true. ECC-corrected flips are the one
// non-perturbing event and are counted separately.

// Shadow-entry bit widths for corruption purposes: the paper's 12-bit
// shared entry (M, S, 10-bit tid) and the 52-bit global entry base
// (M, S, 10-bit tid, 12-bit bid, 5-bit sid, 10-bit sync ID, 10-bit
// fence ID, low atomic-ID bits).
const (
	sharedEntryBits = 12
	globalEntryBits = 52
)

// Health implements gpu.HealthReporter. Counters accumulate across the
// detector's launches until Reset. Global-side fault accounting lives
// in the per-partition units (sharded.go) and is folded in here after
// a drain.
func (d *Detector) Health() *gpu.DetectorHealth {
	d.quiesce()
	h := d.health
	var checks, fillBits, fillN int64
	for _, u := range d.gunits {
		h.DroppedChecks += u.health.DroppedChecks
		h.InjectedFlips += u.health.InjectedFlips
		h.CorrectedFlips += u.health.CorrectedFlips
		h.StuckReads += u.health.StuckReads
		h.QuarantinedGranules += u.health.QuarantinedGranules
		h.QuarantineSkips += u.health.QuarantineSkips
		h.ReinitGranules += u.health.ReinitGranules
		h.SaturatedSigs += u.health.SaturatedSigs
		h.LatencySpikes += u.health.LatencySpikes
		checks += u.checks
		fillBits += u.fillBits
		fillN += u.fillN
	}
	// Dropped checks never reached the RDU, so they are not in the
	// check counters; the exposure denominator is demand, not service.
	h.TotalChecks = d.stats.SharedChecks + checks + h.DroppedChecks
	if fillN > 0 {
		// Summed popcounts instead of summed ratios: integer
		// accumulation is order-independent, so the shard-partitioned
		// engine reports the identical value as the serial one.
		h.BloomFillPct = 100 * float64(fillBits) / (float64(d.opt.Bloom.SizeBits) * float64(fillN))
	}
	h.Degraded = h.DroppedChecks|h.InjectedFlips|h.StuckReads|
		h.QuarantinedGranules|h.QuarantineSkips|h.ReinitGranules|
		h.SaturatedSigs|h.LatencySpikes|
		h.SentinelMismatches|h.StalledDrains|h.EngineFallbacks != 0
	return &h
}

// resetFaultState restores the injector and health accounting to a
// just-constructed detector's (used by Reset for reproducible reruns).
// The global-side units are rebuilt separately (Reset drops them).
func (d *Detector) resetFaultState() {
	d.inj = fault.New(d.opt.Fault, d.opt.FaultSeed)
	d.health = gpu.DetectorHealth{}
	d.quarShared = nil
}

// admit runs one lane check through the RDU check queue; false means
// the queue overflowed and the check is dropped (and counted).
func (d *Detector) admit(unit fault.Unit, id int, cycle int64) bool {
	if d.inj.Admit(unit, id, cycle, 1) == 1 {
		return true
	}
	d.health.DroppedChecks++
	return false
}

// spiked returns cycle plus any injected shadow-fetch latency spike at
// the given unit (a memory partition's RDU or an SM's demand path).
func (d *Detector) spiked(unit fault.Unit, id int, cycle int64) int64 {
	if extra := d.inj.SpikeDelay(unit, id); extra > 0 {
		d.health.LatencySpikes++
		return cycle + extra
	}
	return cycle
}

// faultShared is faultGlobal's shared-memory counterpart; quarantine is
// per physical cell, keyed by (SM, granule index).
func (d *Detector) faultShared(sm int, g uint64, e *sharedEntry) (skip bool) {
	key := uint64(sm)<<40 | g
	if _, q := d.quarShared[key]; q {
		d.health.QuarantineSkips++
		return true
	}
	if pat, stuck := d.inj.Stuck(fault.UnitShared, key); stuck {
		if d.inj.ECC() {
			if d.opt.Degradation == DegradeReinit {
				*e = sharedEntry{fresh: true, modified: true, shared: true}
				d.health.ReinitGranules++
				return false
			}
			if d.quarShared == nil {
				d.quarShared = make(map[uint64]struct{})
			}
			d.quarShared[key] = struct{}{}
			d.health.QuarantinedGranules++
			d.health.QuarantineSkips++
			return true
		}
		stuckSharedEntry(e, pat)
		d.health.StuckReads++
		return false
	}
	if bit, hit := d.inj.FlipBit(fault.UnitShared, sm, sharedEntryBits); hit {
		if d.inj.ECC() {
			d.health.CorrectedFlips++
		} else {
			flipSharedEntry(e, bit)
			d.health.InjectedFlips++
		}
	}
	return false
}

// flipGlobalEntry flips one bit of the architectural 52-bit entry
// layout: [0]=M, [1]=S, [2..11]=tid, [12..23]=bid, [24..28]=sid,
// [29..38]=sync ID, [39..48]=fence ID, [49..51]=atomic-ID low bits.
func flipGlobalEntry(e *globalEntry, bit int) {
	switch {
	case bit == 0:
		e.modified = !e.modified
	case bit == 1:
		e.shared = !e.shared
	case bit < 12:
		e.tid ^= 1 << (bit - 2)
	case bit < 24:
		e.bid ^= 1 << (bit - 12)
	case bit < 29:
		e.sid ^= 1 << (bit - 24)
	case bit < 39:
		e.syncID ^= 1 << (bit - 29)
	case bit < 49:
		e.fenceID ^= 1 << (bit - 39)
	default:
		e.sig ^= 1 << (bit - 49)
	}
}

// stuckGlobalEntry overwrites the entry's architectural fields with the
// cell's stuck-at pattern (the lockset signature and the simulator-side
// wcycle bookkeeping are outside the modeled 52-bit word).
func stuckGlobalEntry(e *globalEntry, pat uint64) {
	e.modified = pat&1 != 0
	e.shared = pat&2 != 0
	e.tid = uint16(pat>>2) & 1023
	e.bid = uint32(pat>>12) & 4095
	e.sid = uint16(pat>>24) & 31
	e.syncID = uint32(pat>>29) & 1023
	e.fenceID = uint32(pat>>39) & 1023
}

// flipSharedEntry flips one bit of the 12-bit shared entry layout:
// [0]=M, [1]=S, [2..11]=tid. fresh is the M=S=1 encoding, recomputed
// so the corrupted entry stays in a representable state.
func flipSharedEntry(e *sharedEntry, bit int) {
	switch {
	case bit == 0:
		e.modified = !e.modified
	case bit == 1:
		e.shared = !e.shared
	default:
		e.tid ^= 1 << (bit - 2)
	}
	e.fresh = e.modified && e.shared
}

// stuckSharedEntry overwrites the entry from the stuck-at pattern.
func stuckSharedEntry(e *sharedEntry, pat uint64) {
	e.modified = pat&1 != 0
	e.shared = pat&2 != 0
	e.tid = uint16(pat>>2) & 1023
	e.fresh = e.modified && e.shared
}
