package core

import (
	"haccrg/internal/fault"
	"haccrg/internal/gpu"
)

// This file is the detector side of the fault-injection subsystem: it
// applies an internal/fault plan to the RDU pipeline (queue admission,
// shadow-cell corruption, signature saturation, fetch-latency spikes)
// and keeps the DetectorHealth accounting that makes the degradation
// visible instead of silent.
//
// Invariant relied on by the harness property test: every code path
// that can perturb detection results increments at least one health
// counter, so findings can only diverge from a fault-free run when
// Health().Degraded is true. ECC-corrected flips are the one
// non-perturbing event and are counted separately.

// Health implements gpu.HealthReporter. Counters accumulate across the
// detector's launches until Reset. Fault accounting lives in the
// per-partition and per-SM units (sharded.go, shared_sharded.go) and
// is folded in here after a drain.
func (d *Detector) Health() *gpu.DetectorHealth {
	d.quiesce()
	h := d.health
	var checks, fillBits, fillN int64
	for _, u := range d.gunits {
		foldHealth(&h, &u.health)
		checks += u.checks
		fillBits += u.fillBits
		fillN += u.fillN
	}
	var schecks int64
	for _, u := range d.sunits {
		foldHealth(&h, &u.health)
		schecks += u.checks
	}
	// Dropped checks never reached the RDU, so they are not in the
	// check counters; the exposure denominator is demand, not service.
	h.TotalChecks = d.stats.SharedChecks + schecks + checks + h.DroppedChecks
	if fillN > 0 {
		// Summed popcounts instead of summed ratios: integer
		// accumulation is order-independent, so the shard-partitioned
		// engine reports the identical value as the serial one.
		h.BloomFillPct = 100 * float64(fillBits) / (float64(d.opt.Bloom.SizeBits) * float64(fillN))
	}
	h.Degraded = h.DroppedChecks|h.InjectedFlips|h.StuckReads|
		h.QuarantinedGranules|h.QuarantineSkips|h.ReinitGranules|
		h.SaturatedSigs|h.LatencySpikes|
		h.SentinelMismatches|h.StalledDrains|h.EngineFallbacks != 0
	return &h
}

// foldHealth accumulates one unit's fault counters into the aggregate.
func foldHealth(h, u *gpu.DetectorHealth) {
	h.DroppedChecks += u.DroppedChecks
	h.InjectedFlips += u.InjectedFlips
	h.CorrectedFlips += u.CorrectedFlips
	h.StuckReads += u.StuckReads
	h.QuarantinedGranules += u.QuarantinedGranules
	h.QuarantineSkips += u.QuarantineSkips
	h.ReinitGranules += u.ReinitGranules
	h.SaturatedSigs += u.SaturatedSigs
	h.LatencySpikes += u.LatencySpikes
}

// resetFaultState restores the injector and health accounting to a
// just-constructed detector's (used by Reset for reproducible reruns).
// The per-unit fault state is rebuilt separately (Reset drops the
// units).
func (d *Detector) resetFaultState() {
	d.inj = fault.New(d.opt.Fault, d.opt.FaultSeed)
	d.health = gpu.DetectorHealth{}
}

// spiked returns cycle plus any injected shadow-fetch latency spike at
// the given unit (a memory partition's RDU or an SM's demand path).
func (d *Detector) spiked(unit fault.Unit, id int, cycle int64) int64 {
	if extra := d.inj.SpikeDelay(unit, id); extra > 0 {
		d.health.LatencySpikes++
		return cycle + extra
	}
	return cycle
}

// flipGlobalEntry flips one bit of the architectural 52-bit entry
// layout (see packed.go's arch* constants): [0]=M, [1]=S, [2..11]=tid,
// [12..23]=bid, [24..28]=sid, [29..38]=sync ID, [39..48]=fence ID,
// [49..51]=atomic-ID low bits. The architectural bit index is mapped
// onto whichever packed word holds that field.
func flipGlobalEntry(e *packedGlobal, bit int) {
	switch {
	case bit == 0:
		e.meta ^= gwM
	case bit == 1:
		e.meta ^= gwS
	case bit < archBidShift:
		e.meta ^= 1 << (gwTid + bit - archTidShift)
	case bit < archSidShift:
		e.meta ^= 1 << (gwBid + bit - archBidShift)
	case bit < archSyncShift:
		e.meta ^= 1 << (gwSid + bit - archSidShift)
	case bit < archFenceShift:
		e.sync ^= 1 << (bit - archSyncShift)
	case bit < archSigShift:
		e.sync ^= 1 << (32 + bit - archFenceShift)
	default:
		e.sig ^= 1 << (bit - archSigShift)
	}
}

// stuckGlobalEntry overwrites the entry's architectural fields with the
// cell's stuck-at pattern (the lockset signature and the simulator-side
// wcyc bookkeeping are outside the modeled 52-bit word; the present
// bit is simulator-side too and survives).
func stuckGlobalEntry(e *packedGlobal, pat uint64) {
	e.meta = e.meta&^(gwM|gwS|gwTidField|gwBidField|gwSidField) |
		pat&(gwM|gwS) |
		(pat>>archTidShift)&(1<<archTidBits-1)<<gwTid |
		(pat>>archBidShift)&(1<<archBidBits-1)<<gwBid |
		(pat>>archSidShift)&(1<<archSidBits-1)<<gwSid
	e.sync = packSync(
		uint32(pat>>archSyncShift)&(1<<archSyncBits-1),
		uint32(pat>>archFenceShift)&(1<<archFenceBits-1))
}
