package core

import (
	"testing"

	"haccrg/internal/fault"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// maskFilter is a StaticFilter stub: a fixed per-kernel mask.
type maskFilter map[string][]bool

func (m maskFilter) FilterSites(kernel string) []bool { return m[kernel] }

// privateStoreKernel: every thread stores to its own global word —
// trivially race-free, the canonical filterable site.
func privateStoreKernel(out uint64) *gpu.Kernel {
	b := isa.NewBuilder("private-store")
	b.Sreg(rGtid, isa.SregGtid)
	b.Movi(rBase, int64(out))
	b.Muli(rAddr, rGtid, 4)
	b.Add(rAddr, rBase, rAddr)
	b.St(isa.SpaceGlobal, rAddr, 0, rGtid, 4)
	b.Exit()
	return &gpu.Kernel{
		Name: "private-store", Prog: b.MustBuild(),
		GridDim: 2, BlockDim: 64,
	}
}

// storePC locates the kernel's single global store.
func storePC(t *testing.T, k *gpu.Kernel) int {
	t.Helper()
	for pc, in := range k.Prog.Code {
		if in.Op == isa.OpSt {
			return pc
		}
	}
	t.Fatal("no store in program")
	return -1
}

// fullMask marks exactly the given pcs filtered.
func fullMask(k *gpu.Kernel, pcs ...int) []bool {
	m := make([]bool, len(k.Prog.Code))
	for _, pc := range pcs {
		m[pc] = true
	}
	return m
}

// TestStaticFilterSkipsGlobalChecks: with the store site masked, the
// global RDU performs zero lane checks for it, counts the skips, and
// the launch's cycle count is unchanged (shadow traffic preserved).
func TestStaticFilterSkipsGlobalChecks(t *testing.T) {
	opt := DefaultOptions()
	run := func(filter bool) (*gpu.LaunchStats, Stats, []*Race) {
		dev, det := newHarness(t, opt, 1<<16)
		k := privateStoreKernel(4096)
		if filter {
			det.SetStaticFilter(maskFilter{k.Name: fullMask(k, storePC(t, k))})
		}
		st := launch(t, dev, k)
		return st, det.Stats(), det.Races()
	}
	stOff, statsOff, racesOff := run(false)
	stOn, statsOn, racesOn := run(true)

	if statsOn.FilteredChecks == 0 {
		t.Fatal("filter attached but FilteredChecks = 0")
	}
	if statsOn.GlobalChecks >= statsOff.GlobalChecks {
		t.Fatalf("global checks not reduced: on=%d off=%d",
			statsOn.GlobalChecks, statsOff.GlobalChecks)
	}
	if got, want := statsOn.GlobalChecks+statsOn.FilteredChecks, statsOff.GlobalChecks; got != want {
		t.Fatalf("checks+filtered = %d, want %d (every skip accounted)", got, want)
	}
	if statsOn.ShadowReads != statsOff.ShadowReads || statsOn.ShadowWrites != statsOff.ShadowWrites {
		t.Fatalf("shadow traffic changed: on=%d/%d off=%d/%d",
			statsOn.ShadowReads, statsOn.ShadowWrites, statsOff.ShadowReads, statsOff.ShadowWrites)
	}
	if stOn.Cycles != stOff.Cycles {
		t.Fatalf("cycle count changed: on=%d off=%d", stOn.Cycles, stOff.Cycles)
	}
	if len(racesOn) != 0 || len(racesOff) != 0 {
		t.Fatalf("clean kernel reported races: on=%d off=%d", len(racesOn), len(racesOff))
	}
}

// TestStaticFilterSkipsSharedChecks: same property for the shared RDU.
func TestStaticFilterSkipsSharedChecks(t *testing.T) {
	opt := DefaultOptions()
	opt.Global = false
	opt.DetectStaleL1 = false
	opt.SharedGranularity = 4

	build := func() *gpu.Kernel {
		b := isa.NewBuilder("private-shared")
		b.Sreg(rTid, isa.SregTid)
		b.Muli(rAddr, rTid, 4)
		b.St(isa.SpaceShared, rAddr, 0, rTid, 4)
		b.Exit()
		return &gpu.Kernel{
			Name: "private-shared", Prog: b.MustBuild(),
			GridDim: 1, BlockDim: 64, SharedBytes: 256,
		}
	}
	dev, det := newHarness(t, opt, 1<<16)
	k := build()
	det.SetStaticFilter(maskFilter{k.Name: fullMask(k, storePC(t, k))})
	launch(t, dev, k)
	st := det.Stats()
	if st.SharedChecks != 0 {
		t.Fatalf("SharedChecks = %d, want 0 (all filtered)", st.SharedChecks)
	}
	if st.FilteredChecks != 64 {
		t.Fatalf("FilteredChecks = %d, want 64", st.FilteredChecks)
	}
}

// TestStaticFilterPreservesRaces: a mask covering only a safe site must
// leave findings on the racy site byte-identical to the unfiltered run.
func TestStaticFilterPreservesRaces(t *testing.T) {
	opt := DefaultOptions()
	run := func(filter bool) []*Race {
		dev, det := newHarness(t, opt, 1<<16)
		k := crossBlockKernel(4096)
		if filter {
			// Mask nothing real: an all-false mask must be a no-op.
			det.SetStaticFilter(maskFilter{k.Name: make([]bool, len(k.Prog.Code))})
		}
		launch(t, dev, k)
		return det.SortedRaces()
	}
	off := run(false)
	on := run(true)
	if len(off) == 0 {
		t.Fatal("cross-block kernel produced no races")
	}
	if len(on) != len(off) {
		t.Fatalf("race count changed: on=%d off=%d", len(on), len(off))
	}
	for i := range off {
		if *on[i] != *off[i] {
			t.Fatalf("race %d diverged:\n on=%+v\noff=%+v", i, on[i], off[i])
		}
	}
}

// TestStaticFilterInertUnderFaultPlan: with a fault plan attached the
// filter must not engage — dropping checks would desynchronize the
// injector's PRNG streams.
func TestStaticFilterInertUnderFaultPlan(t *testing.T) {
	opt := DefaultOptions()
	opt.Fault = &fault.Plan{FlipRate: 0.01, ECC: true}
	dev, det := newHarness(t, opt, 1<<16)
	k := privateStoreKernel(4096)
	det.SetStaticFilter(maskFilter{k.Name: fullMask(k, storePC(t, k))})
	launch(t, dev, k)
	st := det.Stats()
	if st.FilteredChecks != 0 {
		t.Fatalf("FilteredChecks = %d under a fault plan, want 0", st.FilteredChecks)
	}
	if st.GlobalChecks == 0 {
		t.Fatal("no global checks ran at all")
	}
}
