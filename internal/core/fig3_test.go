package core

// Table-driven reproduction of the paper's Figure 3: the shadow-entry
// state machine. Each case drives the shared-memory RDU through an
// access sequence and checks the reported race (or its absence) and
// the resulting shadow state. Thread ids are chosen so that "other
// thread" cases split into same-warp (suppressed) and cross-warp
// (reported) variants, covering the warp-aware refinement of
// Section III-A.

import (
	"testing"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// access is one scripted step: thread tid reads or writes granule 0.
type access struct {
	tid   int
	write bool
}

// fig3Case drives accesses and expects the given races in order.
type fig3Case struct {
	name     string
	accs     []access
	expected []Kind // reported races, in order (empty = none)
}

func runFig3(t *testing.T, tc fig3Case) {
	t.Helper()
	opt := DefaultOptions()
	opt.Global = false
	opt.DetectStaleL1 = false
	opt.SharedGranularity = 4
	opt.ModelTraffic = false
	d := MustNew(opt)
	env := newFakeEnv()
	d.KernelStart(env, "fig3")
	for _, a := range tc.accs {
		ev := &gpu.WarpMemEvent{
			Space: isa.SpaceShared, Write: a.write,
			SM: 0, Block: 0, WarpInBlock: a.tid / 32,
			Lanes: []gpu.LaneAccess{{Lane: a.tid % 32, Tid: a.tid, Addr: 0, Size: 4}},
		}
		d.WarpMem(ev)
	}
	races := d.Races()
	if len(races) != len(tc.expected) {
		t.Fatalf("%s: %d races, want %d (%v)", tc.name, len(races), len(tc.expected), races)
	}
	for i, want := range tc.expected {
		if races[i].Kind != want {
			t.Fatalf("%s: race %d is %v, want %v", tc.name, i, races[i].Kind, want)
		}
	}
}

// Threads: 0 and 1 share warp 0; 40 lives in warp 1; 70 in warp 2.
func TestFigure3StateMachine(t *testing.T) {
	cases := []fig3Case{
		// State 1 -> State 2 (first access a read).
		{"first-read-sets-owner", []access{{0, false}}, nil},
		// State 1 -> State 3 (first access a write).
		{"first-write-sets-modified", []access{{0, true}}, nil},

		// State 2 transitions.
		{"state2-read-same-thread", []access{{0, false}, {0, false}}, nil},
		{"state2-read-same-warp", []access{{0, false}, {1, false}}, nil},
		{"state2-read-other-warp-sets-shared", []access{{0, false}, {40, false}}, nil},
		{"state2-write-same-thread", []access{{0, false}, {0, true}}, nil},
		{"state2-write-same-warp", []access{{0, false}, {1, true}}, nil},
		{"state2-write-other-warp-WAR", []access{{0, false}, {40, true}}, []Kind{KindWAR}},

		// State 3 transitions.
		{"state3-read-same-thread", []access{{0, true}, {0, false}}, nil},
		{"state3-read-same-warp", []access{{0, true}, {1, false}}, nil},
		{"state3-read-other-warp-RAW", []access{{0, true}, {40, false}}, []Kind{KindRAW}},
		{"state3-write-same-thread", []access{{0, true}, {0, true}}, nil},
		{"state3-write-same-warp", []access{{0, true}, {1, true}}, nil},
		{"state3-write-other-warp-WAW", []access{{0, true}, {40, true}}, []Kind{KindWAW}},

		// State 4 (read by multiple warps).
		{"state4-reads-stay-silent", []access{{0, false}, {40, false}, {70, false}}, nil},
		{"state4-any-write-WAR", []access{{0, false}, {40, false}, {0, true}}, []Kind{KindWAR}},
		{"state4-foreign-write-WAR", []access{{0, false}, {40, false}, {70, true}}, []Kind{KindWAR}},

		// Post-race ownership: after a reported WAW the writer owns the
		// entry, so its own re-read is silent but a third warp's read
		// races again.
		{"post-race-claim", []access{{0, true}, {40, true}, {40, false}}, []Kind{KindWAW}},
		{"post-race-new-reader-RAW", []access{{0, true}, {40, true}, {70, false}}, []Kind{KindWAW, KindRAW}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) { runFig3(t, tc) })
	}
}

// TestFigure3BarrierResets: the barrier invalidation returns every
// entry to State 1, so the same cross-warp pattern is silent after a
// barrier and racy without one.
func TestFigure3BarrierResets(t *testing.T) {
	opt := DefaultOptions()
	opt.Global = false
	opt.DetectStaleL1 = false
	opt.SharedGranularity = 4
	opt.ModelTraffic = false
	d := MustNew(opt)
	env := newFakeEnv()
	d.KernelStart(env, "fig3-bar")
	mk := func(tid int, write bool) *gpu.WarpMemEvent {
		return &gpu.WarpMemEvent{
			Space: isa.SpaceShared, Write: write, SM: 0, Block: 0,
			Lanes: []gpu.LaneAccess{{Lane: tid % 32, Tid: tid, Addr: 8, Size: 4}},
		}
	}
	d.WarpMem(mk(0, true))
	d.Barrier(0, 0, 0, 1024, 100)
	d.WarpMem(mk(40, false))
	if len(d.Races()) != 0 {
		t.Fatalf("barrier did not reset the state machine: %v", d.Races())
	}
	// Same pattern without the barrier races (a fresh barrier first
	// clears the reader state the previous phase left behind).
	d.Barrier(0, 0, 0, 1024, 200)
	d.WarpMem(mk(0, true))
	d.WarpMem(mk(70, false))
	if len(d.Races()) != 1 {
		t.Fatalf("unbarriered RAW not reported: %v", d.Races())
	}
}

// TestFigure3IntraWarpInstructionWAW: the one intra-warp case the
// paper does flag — two lanes of a single instruction writing the same
// address, caught before the request issues.
func TestFigure3IntraWarpInstructionWAW(t *testing.T) {
	opt := DefaultOptions()
	opt.Global = false
	opt.DetectStaleL1 = false
	opt.SharedGranularity = 4
	opt.ModelTraffic = false
	d := MustNew(opt)
	d.KernelStart(newFakeEnv(), "iw")
	ev := &gpu.WarpMemEvent{
		Space: isa.SpaceShared, Write: true, SM: 0, Block: 0,
		Lanes: []gpu.LaneAccess{
			{Lane: 3, Tid: 3, Addr: 16, Size: 4},
			{Lane: 9, Tid: 9, Addr: 16, Size: 4},
		},
	}
	d.WarpMem(ev)
	found := false
	for _, r := range d.Races() {
		if r.Category == CatIntraWarp && r.Kind == KindWAW {
			found = true
		}
	}
	if !found {
		t.Fatalf("intra-warp same-address WAW not reported: %v", d.Races())
	}
	// Different addresses within the same granule must NOT trigger it.
	d2 := MustNew(opt)
	d2.KernelStart(newFakeEnv(), "iw2")
	opt.SharedGranularity = 64
	ev2 := &gpu.WarpMemEvent{
		Space: isa.SpaceShared, Write: true, SM: 0, Block: 0,
		Lanes: []gpu.LaneAccess{
			{Lane: 3, Tid: 3, Addr: 16, Size: 4},
			{Lane: 9, Tid: 9, Addr: 20, Size: 4},
		},
	}
	d2.WarpMem(ev2)
	for _, r := range d2.Races() {
		if r.Category == CatIntraWarp {
			t.Fatalf("granule-sharing lanes falsely flagged as intra-warp WAW: %v", r)
		}
	}
}
