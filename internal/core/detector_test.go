package core

import (
	"encoding/json"
	"strings"
	"testing"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// Register conventions for the test kernels.
const (
	rTid  = isa.Reg(1)
	rGtid = isa.Reg(2)
	rAddr = isa.Reg(3)
	rVal  = isa.Reg(4)
	rTmp  = isa.Reg(5)
	rI    = isa.Reg(6)
	rBase = isa.Reg(7)
	rBid  = isa.Reg(8)
	rDone = isa.Reg(9)
	rLock = isa.Reg(10)
)

func newHarness(t *testing.T, opt Options, globalBytes int) (*gpu.Device, *Detector) {
	t.Helper()
	det, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := gpu.NewDevice(gpu.TestConfig(), globalBytes, det)
	if err != nil {
		t.Fatal(err)
	}
	return dev, det
}

func launch(t *testing.T, dev *gpu.Device, k *gpu.Kernel) *gpu.LaunchStats {
	t.Helper()
	st, err := dev.Launch(k)
	if err != nil {
		t.Fatalf("launch %s: %v", k.Name, err)
	}
	return st
}

// sharedRaceKernel: warp 0 writes shared[tid*4..], warp 1 reads warp
// 0's area. withBarrier inserts the missing __syncthreads.
func sharedRaceKernel(withBarrier bool) *gpu.Kernel {
	b := isa.NewBuilder("shared-race")
	b.Sreg(rTid, isa.SregTid)
	// Warp 0 (tid < 32) writes shared[tid].
	b.Setpi(0, isa.CmpLT, rTid, 32)
	b.If(0)
	b.Muli(rAddr, rTid, 4)
	b.St(isa.SpaceShared, rAddr, 0, rTid, 4)
	b.EndIf()
	if withBarrier {
		b.Bar()
	}
	// Warp 1 (tid >= 32) reads shared[tid-32].
	b.Setpi(1, isa.CmpGE, rTid, 32)
	b.If(1)
	b.Subi(rTmp, rTid, 32)
	b.Muli(rAddr, rTmp, 4)
	b.Ld(rVal, isa.SpaceShared, rAddr, 0, 4)
	b.EndIf()
	b.Exit()
	return &gpu.Kernel{
		Name: "shared-race", Prog: b.MustBuild(),
		GridDim: 1, BlockDim: 64, SharedBytes: 256,
	}
}

func TestSharedRAWDetected(t *testing.T) {
	opt := DefaultOptions()
	opt.Global = false
	opt.DetectStaleL1 = false
	opt.SharedGranularity = 4
	dev, det := newHarness(t, opt, 1<<16)
	launch(t, dev, sharedRaceKernel(false))
	races := det.Races()
	if len(races) == 0 {
		t.Fatal("missing barrier: no shared race detected")
	}
	found := false
	for _, r := range races {
		if r.Space == isa.SpaceShared && r.Kind == KindRAW && r.Category == CatBarrier {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shared RAW barrier race among %v", races)
	}
}

func TestSharedBarrierSuppressesRace(t *testing.T) {
	opt := DefaultOptions()
	opt.Global = false
	opt.DetectStaleL1 = false
	opt.SharedGranularity = 4
	dev, det := newHarness(t, opt, 1<<16)
	launch(t, dev, sharedRaceKernel(true))
	if n := len(det.Races()); n != 0 {
		t.Fatalf("barrier present but %d races reported: %v", n, det.Races()[0])
	}
}

func TestSharedWAWAndWARDetected(t *testing.T) {
	// Warp 0 writes shared[0..31]; warp 1 writes the same area (WAW);
	// then warp 0 reads while warp 2's write follows a read (covered
	// by WAW + RAW paths).
	b := isa.NewBuilder("waw")
	b.Sreg(rTid, isa.SregTid)
	b.Remi(rTmp, rTid, 32) // lane
	b.Muli(rAddr, rTmp, 4)
	b.St(isa.SpaceShared, rAddr, 0, rTid, 4) // warps collide per lane slot
	b.Exit()
	k := &gpu.Kernel{Name: "waw", Prog: b.MustBuild(), GridDim: 1, BlockDim: 64, SharedBytes: 128}

	opt := DefaultOptions()
	opt.Global = false
	opt.DetectStaleL1 = false
	opt.SharedGranularity = 4
	dev, det := newHarness(t, opt, 1<<16)
	launch(t, dev, k)
	foundWAW := false
	for _, r := range det.Races() {
		if r.Kind == KindWAW && r.Space == isa.SpaceShared {
			foundWAW = true
		}
	}
	if !foundWAW {
		t.Fatalf("no WAW detected: %v", det.Races())
	}
}

func TestWarpAwareSuppressionAtCoarseGranularity(t *testing.T) {
	// A single warp writes 32 consecutive words: at 64-byte granularity
	// 16 lanes share each granule, but same-warp accesses are
	// implicitly ordered — no race (Section VI-A1's explanation for
	// the regular benchmarks).
	b := isa.NewBuilder("warp-regular")
	b.Sreg(rTid, isa.SregTid)
	b.Muli(rAddr, rTid, 4)
	b.St(isa.SpaceShared, rAddr, 0, rTid, 4)
	b.Ld(rVal, isa.SpaceShared, rAddr, 0, 4)
	b.Exit()
	k := &gpu.Kernel{Name: "warp-regular", Prog: b.MustBuild(), GridDim: 1, BlockDim: 32, SharedBytes: 128}

	opt := DefaultOptions()
	opt.Global = false
	opt.DetectStaleL1 = false
	opt.SharedGranularity = 64
	dev, det := newHarness(t, opt, 1<<16)
	launch(t, dev, k)
	if n := len(det.Races()); n != 0 {
		t.Fatalf("intra-warp regular access at coarse granularity reported %d races: %v", n, det.Races()[0])
	}
}

func TestCoarseGranularityFalsePositivesAcrossWarps(t *testing.T) {
	// Two warps write interleaved words: warp 0 the even words, warp 1
	// the odd ones. At 4B granularity accesses are disjoint (no race);
	// at 64B granularity both warps map into every granule, producing
	// the false races of Table III.
	build := func() *gpu.Kernel {
		b := isa.NewBuilder("falsepos")
		b.Sreg(rTid, isa.SregTid)
		b.Remi(rTmp, rTid, 32) // lane
		b.Divi(rI, rTid, 32)   // warp
		b.Muli(rAddr, rTmp, 8)
		b.Muli(rI, rI, 4)
		b.Add(rAddr, rAddr, rI) // lane*8 + warp*4
		b.St(isa.SpaceShared, rAddr, 0, rTid, 4)
		b.Exit()
		return &gpu.Kernel{Name: "falsepos", Prog: b.MustBuild(), GridDim: 1, BlockDim: 64, SharedBytes: 512}
	}
	for _, tc := range []struct {
		gran     int
		expected bool
	}{{4, false}, {64, true}} {
		opt := DefaultOptions()
		opt.Global = false
		opt.DetectStaleL1 = false
		opt.SharedGranularity = tc.gran
		dev, det := newHarness(t, opt, 1<<16)
		launch(t, dev, build())
		got := len(det.Races()) > 0
		if got != tc.expected {
			t.Errorf("granularity %d: races=%v, want %v (races: %v)", tc.gran, got, tc.expected, det.Races())
		}
	}
}

// crossBlockKernel: every block writes the same global array — the
// SCAN/KMEANS bug pattern.
func crossBlockKernel(out uint64) *gpu.Kernel {
	b := isa.NewBuilder("crossblock")
	b.Sreg(rTid, isa.SregTid)
	b.Ldp(rBase, 0)
	b.Muli(rAddr, rTid, 4)
	b.Add(rAddr, rBase, rAddr)
	b.St(isa.SpaceGlobal, rAddr, 0, rTid, 4)
	b.Exit()
	return &gpu.Kernel{Name: "crossblock", Prog: b.MustBuild(), GridDim: 2, BlockDim: 32, Params: []uint64{out}}
}

func TestGlobalCrossBlockWAW(t *testing.T) {
	opt := DefaultOptions()
	opt.Shared = false
	dev, det := newHarness(t, opt, 1<<16)
	out := dev.MustMalloc(128)
	launch(t, dev, crossBlockKernel(out))
	found := false
	for _, r := range det.Races() {
		if r.Space == isa.SpaceGlobal && r.Kind == KindWAW && r.Category == CatCrossBlock {
			found = true
		}
	}
	if !found {
		t.Fatalf("cross-block WAW not detected: %v", det.Races())
	}
}

func TestSingleBlockNoCrossBlockRace(t *testing.T) {
	opt := DefaultOptions()
	opt.Shared = false
	dev, det := newHarness(t, opt, 1<<16)
	out := dev.MustMalloc(128)
	k := crossBlockKernel(out)
	k.GridDim = 1 // as designed: one block
	launch(t, dev, k)
	if n := len(det.Races()); n != 0 {
		t.Fatalf("single-block run reported %d races: %v", n, det.Races()[0])
	}
}

// syncIDKernel: warp 0 writes out[i], barrier, warp 1 reads out[i].
// The sync-ID mechanism must recognize the barrier ordering without
// any shadow invalidation of global entries.
func syncIDKernel(out uint64, withBarrier bool) *gpu.Kernel {
	b := isa.NewBuilder("syncid")
	b.Sreg(rTid, isa.SregTid)
	b.Ldp(rBase, 0)
	b.Setpi(0, isa.CmpLT, rTid, 32)
	b.If(0)
	b.Muli(rAddr, rTid, 4)
	b.Add(rAddr, rBase, rAddr)
	b.St(isa.SpaceGlobal, rAddr, 0, rTid, 4)
	b.EndIf()
	if withBarrier {
		b.Bar()
	}
	b.Setpi(1, isa.CmpGE, rTid, 32)
	b.If(1)
	b.Subi(rTmp, rTid, 32)
	b.Muli(rAddr, rTmp, 4)
	b.Add(rAddr, rBase, rAddr)
	b.Ld(rVal, isa.SpaceGlobal, rAddr, 0, 4)
	b.EndIf()
	b.Exit()
	return &gpu.Kernel{Name: "syncid", Prog: b.MustBuild(), GridDim: 1, BlockDim: 64, Params: []uint64{out}}
}

func TestSyncIDOrdersGlobalAccesses(t *testing.T) {
	opt := DefaultOptions()
	opt.Shared = false
	dev, det := newHarness(t, opt, 1<<16)
	out := dev.MustMalloc(256)
	launch(t, dev, syncIDKernel(out, true))
	if n := len(det.Races()); n != 0 {
		t.Fatalf("barrier-ordered global accesses reported %d races: %v", n, det.Races()[0])
	}
}

func TestMissingBarrierGlobalRAW(t *testing.T) {
	opt := DefaultOptions()
	opt.Shared = false
	dev, det := newHarness(t, opt, 1<<16)
	out := dev.MustMalloc(256)
	launch(t, dev, syncIDKernel(out, false))
	found := false
	for _, r := range det.Races() {
		if r.Space == isa.SpaceGlobal && r.Kind == KindRAW && r.Category == CatBarrier {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing-barrier global RAW not detected: %v", det.Races())
	}
}

// fenceKernel builds the producer-consumer pattern of Figure 4:
// block 0 writes X then raises a flag (atomically); block 1 polls the
// flag and reads X. withFence inserts the membar between the write
// and the flag update.
func fenceKernel(x, flag uint64, withFence bool) *gpu.Kernel {
	b := isa.NewBuilder("fence-pc")
	b.Sreg(rBid, isa.SregCtaid)
	b.Ldp(rBase, 0) // X
	b.Ldp(rLock, 1) // flag
	b.Setpi(0, isa.CmpEQ, rBid, 0)
	b.If(0)
	// Producer: X = 42; [fence]; atomicExch(flag, 1).
	b.Movi(rVal, 42)
	b.St(isa.SpaceGlobal, rBase, 0, rVal, 4)
	if withFence {
		b.Membar()
	}
	b.Movi(rTmp, 1)
	b.Atom(rI, isa.AtomExch, isa.SpaceGlobal, rLock, 0, rTmp, 0)
	b.EndIf()
	b.Setpi(1, isa.CmpEQ, rBid, 1)
	b.If(1)
	// Consumer: while atomicAdd(flag, 0) == 0 {}; read X.
	b.Movi(rDone, 0)
	b.Setpi(2, isa.CmpEQ, rDone, 0)
	b.While(2)
	b.Movi(rTmp, 0)
	b.Atom(rDone, isa.AtomAdd, isa.SpaceGlobal, rLock, 0, rTmp, 0)
	b.Setpi(2, isa.CmpEQ, rDone, 0)
	b.EndWhile()
	b.Ld(rVal, isa.SpaceGlobal, rBase, 0, 4)
	b.EndIf()
	b.Exit()
	return &gpu.Kernel{Name: "fence-pc", Prog: b.MustBuild(), GridDim: 2, BlockDim: 32, Params: []uint64{x, flag}}
}

func TestMissingFenceRAWDetected(t *testing.T) {
	opt := DefaultOptions()
	opt.Shared = false
	opt.DetectStaleL1 = false // isolate the fence mechanism
	dev, det := newHarness(t, opt, 1<<16)
	x := dev.MustMalloc(4)
	flag := dev.MustMalloc(4)
	launch(t, dev, fenceKernel(x, flag, false))
	found := false
	for _, r := range det.Races() {
		if r.Kind == KindRAW && r.Category == CatFence {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing-fence RAW not detected: %v", det.Races())
	}
}

func TestFencePresentSafeConsumption(t *testing.T) {
	opt := DefaultOptions()
	opt.Shared = false
	opt.DetectStaleL1 = false
	dev, det := newHarness(t, opt, 1<<16)
	x := dev.MustMalloc(4)
	flag := dev.MustMalloc(4)
	launch(t, dev, fenceKernel(x, flag, true))
	for _, r := range det.Races() {
		if r.Kind == KindRAW && r.Category == CatFence {
			t.Fatalf("fence present but fence race reported: %v", r)
		}
	}
}

// locksetKernel: block 0's thread 0 and block 1's thread 0 both update
// a word inside critical sections. If sameLock, both use lock 0;
// otherwise each uses its own lock — a classic lockset race.
func locksetKernel(locks, data uint64, sameLock bool) *gpu.Kernel {
	b := isa.NewBuilder("lockset")
	b.Sreg(rBid, isa.SregCtaid)
	b.Sreg(rTid, isa.SregTid)
	b.Ldp(rBase, 0) // locks base
	b.Ldp(rLock, 1) // data
	// Only thread 0 of each block participates.
	b.Setpi(0, isa.CmpEQ, rTid, 0)
	b.If(0)
	if sameLock {
		b.Movi(rTmp, 0)
	} else {
		b.Mov(rTmp, rBid)
	}
	b.Muli(rTmp, rTmp, 4)
	b.Add(rAddr, rBase, rTmp) // &locks[lockIdx]
	// Acquire via CAS retry.
	b.Movi(rDone, 0)
	b.Setpi(1, isa.CmpEQ, rDone, 0)
	b.While(1)
	b.Movi(rVal, 0)
	b.Movi(rI, 1)
	b.Atom(rGtid, isa.AtomCAS, isa.SpaceGlobal, rAddr, 0, rVal, rI)
	b.Setpi(2, isa.CmpEQ, rGtid, 0)
	b.If(2)
	b.AcqMark(rAddr)
	b.Ld(rVal, isa.SpaceGlobal, rLock, 0, 4)
	b.Addi(rVal, rVal, 1)
	b.St(isa.SpaceGlobal, rLock, 0, rVal, 4)
	b.Membar()
	b.RelMark()
	b.Movi(rI, 0)
	b.Atom(rGtid, isa.AtomExch, isa.SpaceGlobal, rAddr, 0, rI, 0)
	b.Movi(rDone, 1)
	b.EndIf()
	b.Setpi(1, isa.CmpEQ, rDone, 0)
	b.EndWhile()
	b.EndIf()
	b.Exit()
	return &gpu.Kernel{Name: "lockset", Prog: b.MustBuild(), GridDim: 2, BlockDim: 32, Params: []uint64{locks, data}}
}

func TestLocksetDifferentLocksRace(t *testing.T) {
	opt := DefaultOptions()
	opt.Shared = false
	opt.DetectStaleL1 = false
	dev, det := newHarness(t, opt, 1<<16)
	locks := dev.MustMalloc(64)
	data := dev.MustMalloc(4)
	launch(t, dev, locksetKernel(locks, data, false))
	found := false
	for _, r := range det.Races() {
		if r.Category == CatLockset {
			found = true
		}
	}
	if !found {
		t.Fatalf("different-locks race not detected: %v", det.Races())
	}
}

func TestLocksetCommonLockSafe(t *testing.T) {
	opt := DefaultOptions()
	opt.Shared = false
	opt.DetectStaleL1 = false
	dev, det := newHarness(t, opt, 1<<16)
	locks := dev.MustMalloc(64)
	data := dev.MustMalloc(4)
	launch(t, dev, locksetKernel(locks, data, true))
	for _, r := range det.Races() {
		if r.Category == CatLockset {
			t.Fatalf("common lock but lockset race reported: %v", r)
		}
	}
	if got := dev.Global.U32(int(data) / 4); got != 2 {
		t.Fatalf("critical-section counter = %d, want 2", got)
	}
}

// mixedProtectionKernel: block 0 updates data under a lock; block 1
// updates it bare.
func mixedProtectionKernel(lock, data uint64) *gpu.Kernel {
	b := isa.NewBuilder("mixed")
	b.Sreg(rBid, isa.SregCtaid)
	b.Sreg(rTid, isa.SregTid)
	b.Ldp(rAddr, 0) // lock
	b.Ldp(rLock, 1) // data
	b.Setpi(0, isa.CmpEQ, rTid, 0)
	b.If(0)
	b.Setpi(1, isa.CmpEQ, rBid, 0)
	b.If(1)
	// Protected update.
	b.Movi(rDone, 0)
	b.Setpi(2, isa.CmpEQ, rDone, 0)
	b.While(2)
	b.Movi(rVal, 0)
	b.Movi(rI, 1)
	b.Atom(rGtid, isa.AtomCAS, isa.SpaceGlobal, rAddr, 0, rVal, rI)
	b.Setpi(3, isa.CmpEQ, rGtid, 0)
	b.If(3)
	b.AcqMark(rAddr)
	b.Ld(rVal, isa.SpaceGlobal, rLock, 0, 4)
	b.Addi(rVal, rVal, 1)
	b.St(isa.SpaceGlobal, rLock, 0, rVal, 4)
	b.RelMark()
	b.Movi(rI, 0)
	b.Atom(rGtid, isa.AtomExch, isa.SpaceGlobal, rAddr, 0, rI, 0)
	b.Movi(rDone, 1)
	b.EndIf()
	b.Setpi(2, isa.CmpEQ, rDone, 0)
	b.EndWhile()
	b.EndIf()
	b.Setpi(4, isa.CmpEQ, rBid, 1)
	b.If(4)
	// Unprotected update.
	b.Ld(rVal, isa.SpaceGlobal, rLock, 0, 4)
	b.Addi(rVal, rVal, 10)
	b.St(isa.SpaceGlobal, rLock, 0, rVal, 4)
	b.EndIf()
	b.EndIf()
	b.Exit()
	return &gpu.Kernel{Name: "mixed", Prog: b.MustBuild(), GridDim: 2, BlockDim: 32, Params: []uint64{lock, data}}
}

func TestMixedProtectedUnprotectedRace(t *testing.T) {
	opt := DefaultOptions()
	opt.Shared = false
	opt.DetectStaleL1 = false
	dev, det := newHarness(t, opt, 1<<16)
	lock := dev.MustMalloc(4)
	data := dev.MustMalloc(4)
	launch(t, dev, mixedProtectionKernel(lock, data))
	found := false
	for _, r := range det.Races() {
		if r.Category == CatLockset {
			found = true
		}
	}
	if !found {
		t.Fatalf("mixed protected/unprotected race not detected: %v", det.Races())
	}
}

func TestStaleL1Detection(t *testing.T) {
	// Block 0 (SM 0) reads X twice; between the reads, block 1 (SM 1)
	// writes X. The second read hits block 0's stale L1 line.
	b := isa.NewBuilder("stale")
	b.Sreg(rBid, isa.SregCtaid)
	b.Sreg(rTid, isa.SregTid)
	b.Ldp(rBase, 0) // X
	b.Ldp(rLock, 1) // flag
	b.Setpi(0, isa.CmpEQ, rTid, 0)
	b.If(0)
	b.Setpi(1, isa.CmpEQ, rBid, 0)
	b.If(1)
	b.Ld(rVal, isa.SpaceGlobal, rBase, 0, 4) // fill L1
	// Wait for block 1's signal.
	b.Movi(rDone, 0)
	b.Setpi(2, isa.CmpEQ, rDone, 0)
	b.While(2)
	b.Movi(rTmp, 0)
	b.Atom(rDone, isa.AtomAdd, isa.SpaceGlobal, rLock, 0, rTmp, 0)
	b.Setpi(2, isa.CmpEQ, rDone, 0)
	b.EndWhile()
	b.Ld(rVal, isa.SpaceGlobal, rBase, 0, 4) // stale L1 hit
	b.EndIf()
	b.Setpi(3, isa.CmpEQ, rBid, 1)
	b.If(3)
	b.Movi(rVal, 7)
	b.St(isa.SpaceGlobal, rBase, 0, rVal, 4)
	b.Membar()
	b.Movi(rTmp, 1)
	b.Atom(rI, isa.AtomExch, isa.SpaceGlobal, rLock, 0, rTmp, 0)
	b.EndIf()
	b.EndIf()
	b.Exit()
	k := &gpu.Kernel{Name: "stale", Prog: b.MustBuild(), GridDim: 2, BlockDim: 32, Params: nil}

	opt := DefaultOptions()
	opt.Shared = false
	dev, det := newHarness(t, opt, 1<<16)
	x := dev.MustMalloc(4)
	flag := dev.MustMalloc(4)
	k.Params = []uint64{x, flag}
	launch(t, dev, k)
	found := false
	for _, r := range det.Races() {
		if r.Category == CatStaleL1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale-L1 read not detected: %v", det.Races())
	}
}

func TestIntraWarpWAWSameAddress(t *testing.T) {
	// All 32 lanes write the same global word in one instruction.
	b := isa.NewBuilder("iwaw")
	b.Ldp(rBase, 0)
	b.Movi(rVal, 1)
	b.St(isa.SpaceGlobal, rBase, 0, rVal, 4)
	b.Exit()
	k := &gpu.Kernel{Name: "iwaw", Prog: b.MustBuild(), GridDim: 1, BlockDim: 32}

	opt := DefaultOptions()
	opt.Shared = false
	opt.DetectStaleL1 = false
	dev, det := newHarness(t, opt, 1<<16)
	out := dev.MustMalloc(4)
	k.Params = []uint64{out}
	launch(t, dev, k)
	found := false
	for _, r := range det.Races() {
		if r.Category == CatIntraWarp && r.Kind == KindWAW {
			found = true
		}
	}
	if !found {
		t.Fatalf("intra-warp same-address WAW not detected: %v", det.Races())
	}
}

func TestDetectorStatsAndDedup(t *testing.T) {
	opt := DefaultOptions()
	opt.Shared = false
	dev, det := newHarness(t, opt, 1<<16)
	out := dev.MustMalloc(128)
	launch(t, dev, crossBlockKernel(out))
	st := det.Stats()
	if st.GlobalChecks == 0 {
		t.Error("no global checks counted")
	}
	if st.Reports == 0 {
		t.Error("no dynamic reports counted")
	}
	if st.ShadowReads == 0 || st.ShadowWrites == 0 {
		t.Error("no shadow traffic modelled")
	}
	// 32 conflicting words -> 32 distinct granule sites.
	if n := det.SiteCount(isa.SpaceGlobal); n != 32 {
		t.Errorf("global race sites = %d, want 32", n)
	}
	det.Reset()
	if len(det.Races()) != 0 || det.SiteCount(isa.SpaceGlobal) != 0 {
		t.Error("Reset left state")
	}
}

func TestMaxRacesCap(t *testing.T) {
	opt := DefaultOptions()
	opt.Shared = false
	opt.MaxRaces = 3
	dev, det := newHarness(t, opt, 1<<16)
	out := dev.MustMalloc(128)
	launch(t, dev, crossBlockKernel(out))
	if n := len(det.Races()); n > 3 {
		t.Errorf("race cap exceeded: %d records", n)
	}
	if det.Stats().Reports <= 3 {
		t.Errorf("reports should keep counting past the cap: %d", det.Stats().Reports)
	}
}

func TestBarrierInvalidationStall(t *testing.T) {
	opt := DefaultOptions()
	opt.Global = false
	opt.DetectStaleL1 = false
	dev, _ := newHarness(t, opt, 1<<16)
	st := launch(t, dev, sharedRaceKernel(true))
	if st.DetectorStall == 0 {
		t.Error("shared detection at a barrier should cost invalidation cycles")
	}
}

func TestSharedShadowInGlobalMode(t *testing.T) {
	opt := DefaultOptions()
	opt.SharedShadowInGlobal = true
	dev, det := newHarness(t, opt, 1<<18)
	launch(t, dev, sharedRaceKernel(false))
	if len(det.Races()) == 0 {
		t.Fatal("figure-8 mode lost detection capability")
	}
	if det.Stats().ShadowReads == 0 {
		t.Error("figure-8 mode should fetch shadow lines from global memory")
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{},
		{Shared: true, SharedGranularity: 3, GlobalGranularity: 4},
		{Shared: true, SharedGranularity: 16, GlobalGranularity: 0},
		{Global: true, SharedGranularity: 16, GlobalGranularity: 4, SharedShadowInGlobal: true},
		{Shared: true, SharedGranularity: 16, GlobalGranularity: 4, DetectStaleL1: true},
	}
	for i, o := range bad {
		if o.Bloom.SizeBits == 0 {
			o.Bloom = DefaultOptions().Bloom
		}
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate(%+v) = nil, want error", i, o)
		}
	}
	good := DefaultOptions()
	if err := good.Validate(); err != nil {
		t.Errorf("DefaultOptions invalid: %v", err)
	}
}

func TestJSONReport(t *testing.T) {
	opt := DefaultOptions()
	opt.Shared = false
	dev, det := newHarness(t, opt, 1<<16)
	out := dev.MustMalloc(128)
	launch(t, dev, crossBlockKernel(out))
	rep := det.Report()
	if rep.Summary.Distinct != len(det.Races()) {
		t.Errorf("report distinct = %d, races = %d", rep.Summary.Distinct, len(det.Races()))
	}
	if rep.Summary.ByKind["WAW"] == 0 {
		t.Error("report lost the WAW kind")
	}
	if rep.Options.GlobalGranularity != 4 || !rep.Options.Global {
		t.Errorf("report options wrong: %+v", rep.Options)
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Summary.Distinct != rep.Summary.Distinct {
		t.Error("JSON round trip lost data")
	}
}
