package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"haccrg/internal/bloom"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// shardedStreamEnv extends fakeEnv bookkeeping for direct sharded-vs-
// serial comparisons: the serial engine reads fence IDs from the env,
// the sharded engine from its FenceAdvance-fed mirror, so the driver
// below updates both on every fence.

// streamEvent emits one deterministic pseudo-random warp instruction:
// full warps, mixed spaces of addresses (coalesced single-line runs
// and scattered multi-partition runs), several blocks and warps, some
// critical sections, some atomics — every enqueue shape the scatter
// path has.
func streamEvent(rng *rand.Rand, cycle int64) *gpu.WarpMemEvent {
	nlanes := 32
	if rng.Intn(8) == 0 {
		nlanes = 1 + rng.Intn(32) // partial warp
	}
	block := rng.Intn(3)
	warp := rng.Intn(2)
	ev := &gpu.WarpMemEvent{
		Space:       isa.SpaceGlobal,
		Write:       rng.Intn(2) == 0,
		PC:          4 * (1 + rng.Intn(6)),
		SM:          block % 2,
		Block:       block,
		WarpInBlock: warp,
		Kernel:      "stream",
		SyncID:      uint32(rng.Intn(2)),
		Cycle:       cycle,
		Lanes:       make([]gpu.LaneAccess, nlanes),
	}
	if rng.Intn(16) == 0 {
		ev.Atomic = true
		ev.Write = true
	}
	base := uint64(rng.Intn(64)) * 128
	scattered := rng.Intn(4) == 0
	inCrit := rng.Intn(8) == 0
	for l := 0; l < nlanes; l++ {
		tid := warp*32 + l
		addr := base + uint64(l)*4
		if scattered {
			addr = uint64(rng.Intn(2048)) * 4 // lanes hop lines and partitions
		}
		ev.Lanes[l] = gpu.LaneAccess{
			Lane: l, Tid: tid, GTid: block*64 + tid,
			Addr: addr, Size: 4, Arrival: cycle,
		}
		if inCrit {
			ev.Lanes[l].InCrit = true
			ev.Lanes[l].AtomicSig = bloom.Sig(1) << (rng.Intn(2) * 7)
		}
	}
	return ev
}

// runShardedStream drives one detector through kernels× the identical
// event stream (fences, barriers and mid-stream stats reads included)
// and returns a digest of everything the determinism contract covers.
func runShardedStream(t *testing.T, parallel bool, kernels int, mutate bool) string {
	t.Helper()
	opt := DefaultOptions()
	opt.Shared = false
	opt.ModelTraffic = false
	opt.Parallel = parallel
	d := MustNew(opt)
	env := newFakeEnv()
	for k := 0; k < kernels; k++ {
		rng := rand.New(rand.NewSource(1234)) // same stream every kernel
		// A launch resets the device's fence clocks (the engine's mirror
		// resets with it at KernelStart).
		env.fenceIDs = map[[2]int]uint32{}
		d.KernelStart(env, fmt.Sprintf("stream%d", k))
		for i := 0; i < 400; i++ {
			cycle := int64(100 + i)
			ev := streamEvent(rng, cycle)
			d.WarpMem(ev)
			if mutate {
				// The ownership contract: the event is borrowed only for
				// the duration of the call. Scribbling over it afterwards
				// must affect nothing (and trips -race on any aliasing).
				for l := range ev.Lanes {
					ev.Lanes[l] = gpu.LaneAccess{Addr: ^uint64(0), Tid: -1}
				}
				ev.Lanes = ev.Lanes[:0]
			}
			if i%97 == 0 {
				block, warp := i%3, i%2
				id := uint32(i/97 + 1)
				env.fenceIDs[[2]int{block, warp}] = id
				d.FenceAdvance(block, warp, id)
			}
			if i%151 == 0 {
				d.Barrier(0, 0, 0, 0, cycle) // drain point mid-kernel
			}
			if i == 250 {
				_ = d.Stats() // reader-triggered quiescent point
			}
		}
		d.KernelEnd()
	}
	digest := ""
	for _, r := range d.SortedRaces() {
		digest += fmt.Sprintf("%s count=%d\n", r, r.Count)
	}
	digest += fmt.Sprintf("stats=%+v\nhealth=%+v", d.Stats(), *d.Health())
	return digest
}

// TestShardedStreamMatchesSerial compares the engines event for event
// on a direct randomized stream — finer-grained than the harness-level
// sweep because it hits partial warps, scattered multi-partition
// events, mid-kernel fences and drain points explicitly.
func TestShardedStreamMatchesSerial(t *testing.T) {
	serial := runShardedStream(t, false, 1, false)
	sharded := runShardedStream(t, true, 1, false)
	if serial != sharded {
		t.Errorf("sharded digest diverged from serial:\n--- serial\n%s\n--- sharded\n%s", serial, sharded)
	}
}

// TestShardedMultiKernel runs several kernels through one detector:
// the workers park at KernelEnd and must come back with fresh rings at
// the next KernelStart (a regression test — the rings are closed when
// the workers park, so relaunching must rebuild them).
func TestShardedMultiKernel(t *testing.T) {
	serial := runShardedStream(t, false, 3, false)
	sharded := runShardedStream(t, true, 3, false)
	if serial != sharded {
		t.Errorf("multi-kernel sharded digest diverged from serial:\n--- serial\n%s\n--- sharded\n%s", serial, sharded)
	}
}

// TestShardedWorkerCountIndependence pins GOMAXPROCS to several values
// while building the engine: the worker count is an execution detail,
// so every setting must reproduce the serial findings exactly.
func TestShardedWorkerCountIndependence(t *testing.T) {
	want := runShardedStream(t, false, 1, false)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 3, 8} {
		runtime.GOMAXPROCS(procs)
		if got := runShardedStream(t, true, 1, false); got != want {
			t.Errorf("GOMAXPROCS=%d: sharded digest diverged from serial:\n--- serial\n%s\n--- sharded\n%s",
				procs, want, got)
		}
	}
}

// TestWarpMemEventOwnership enforces the WarpMemEvent ownership
// contract against the asynchronous engine: the caller mutates and
// truncates every event immediately after WarpMem returns, while the
// shard workers are still processing the copied lanes. Findings must
// be untouched, and `go test -race` proves the engine retained no
// reference into caller-owned storage.
func TestWarpMemEventOwnership(t *testing.T) {
	clean := runShardedStream(t, true, 1, false)
	mutated := runShardedStream(t, true, 1, true)
	if clean != mutated {
		t.Errorf("mutating events after WarpMem changed the findings:\n--- clean\n%s\n--- mutated\n%s", clean, mutated)
	}
}
