package core

import (
	"fmt"
	"time"

	"haccrg/internal/bloom"
	"haccrg/internal/fault"
	"haccrg/internal/isa"
)

// DegradationPolicy selects what the detector does with shadow
// granules the modeled ECC scrub flags as corrupt (stuck-at cells).
type DegradationPolicy uint8

// Degradation policies.
const (
	// DegradeQuarantine removes flagged granules from tracking; later
	// checks on them are skipped and counted as false-negative
	// exposure in DetectorHealth.
	DegradeQuarantine DegradationPolicy = iota
	// DegradeReinit conservatively re-initializes flagged entries to
	// the no-access state, keeping the granule tracked at the cost of
	// forgetting its access history (possible missed races, never
	// spurious ones).
	DegradeReinit
)

func (p DegradationPolicy) String() string {
	if p == DegradeReinit {
		return "reinit"
	}
	return "quarantine"
}

// StaticFilter supplies per-kernel masks of access sites a static
// analysis proved race-free (internal/staticrace implements it). The
// detector consults the mask at each warp memory event and skips the
// shadow lookups and state-machine checks for proven sites; the RDUs'
// shadow *traffic* is still modeled, so cycle counts are unchanged and
// only check work disappears. The filter is inert when a fault plan is
// attached: dropping checks would desynchronize the injector streams
// and change which faults land.
type StaticFilter interface {
	// FilterSites returns the mask for the named kernel: mask[pc] true
	// means every access issued by that program counter is provably
	// race-free. A nil mask means no information (nothing filtered).
	FilterSites(kernel string) []bool
}

// SeedWitness is one statically-proven racy granule handed to the
// detector for quarantine pre-seeding: the static analyzer found and
// machine-verified a concrete racing write pair on the granule, so the
// detector reports it on first touch — with StaticWitness provenance —
// instead of waiting for the dynamic pair to line up. Only global
// seeds are honored (shared shadow windows are recycled per block and
// reset at barriers; a static shared seed has no stable runtime key).
type SeedWitness struct {
	Space   isa.Space
	Granule uint64 // granule index within the space
	Class   string // staticrace witness class (guarantee argument)

	// The statically-proven racing pair, reported as the race's
	// first/second accessors.
	PC, PC2                  int
	Block, Tid, Block2, Tid2 int
	Stmt                     string
}

// WitnessSeeder supplies the per-kernel seed set; the static analyzer
// layer implements it (structurally, like StaticFilter — core must not
// import staticrace).
type WitnessSeeder interface {
	// WitnessSeeds returns the verified racy granules for the named
	// kernel, or nil when none are known.
	WitnessSeeds(kernel string) []SeedWitness
}

// Options configures HAccRG detection.
type Options struct {
	// Shared enables the per-SM shared-memory RDUs.
	Shared bool
	// Global enables the per-partition global-memory RDUs.
	Global bool

	// SharedGranularity maps this many consecutive shared-memory bytes
	// to one shadow entry. The paper settles on 16 bytes (7 of 10
	// benchmarks show no false positives there, Section VI-A1).
	SharedGranularity int
	// GlobalGranularity is the global-memory tracking granularity; the
	// paper keeps 4 bytes since device memory is plentiful.
	GlobalGranularity int

	// SharedShadowInGlobal stores the shared-memory shadow entries in
	// global memory instead of SM hardware, fetched through the L1
	// (the Figure 8 experiment).
	SharedShadowInGlobal bool

	// WarpAware suppresses races between lanes of the same warp, which
	// execute in lockstep and are implicitly ordered. Disable it when
	// modelling dynamic warp re-grouping (Section III-A).
	WarpAware bool

	// DetectStaleL1 enables the L1-hit stale-read check of Section
	// IV-B (needs Global).
	DetectStaleL1 bool

	// Bloom is the atomic-ID signature layout.
	Bloom bloom.Config

	// Parallel runs the global-memory RDUs as per-partition engines on
	// their own goroutines, fed by bounded rings of batched lane
	// events — the paper's one-RDU-per-memory-partition hardware
	// layout, exploited for wall-clock speedup. Findings (races,
	// stats, health, journal verdicts) are byte-identical to the
	// serial engine; only wall-clock time changes. Ignored (serial
	// fallback) when the device has a single partition or a tracking
	// granule can straddle a coalescing segment.
	Parallel bool

	// ParallelShared does the same for the shared-memory RDUs: one
	// engine per SM (the paper's one-RDU-per-SM layout), fed over the
	// same ring machinery and merged through the same sequence-tagged
	// report path, so findings stay byte-identical to the serial engine
	// in every engine combination. Ignored (serial fallback) when the
	// device has a single SM or the Figure 8 shared-shadow-in-global
	// layout is active (its shadow fetches thread through the timing
	// model on the simulation thread).
	ParallelShared bool

	// ModelTraffic injects the hardware RDUs' shadow-memory traffic
	// and barrier-invalidation stalls into the timing model. Software
	// reimplementations (internal/swdetect, internal/grace) disable it
	// and charge their own instrumentation costs instead.
	ModelTraffic bool

	// MaxRaces caps distinct recorded races (0 = unlimited); detection
	// continues counting but stops materializing new records.
	MaxRaces int

	// StaticFilter optionally skips RDU checks at statically-proven
	// race-free sites (see the StaticFilter interface). Findings must
	// stay byte-identical with the filter on; shadow traffic and cycle
	// counts are preserved. Ignored while a fault plan is attached.
	StaticFilter StaticFilter

	// WitnessSeeds optionally pre-seeds detector quarantine with
	// statically-proven racy granules (see SeedWitness): the first
	// global access touching a seeded granule reports the witnessed
	// race immediately, tagged with StaticWitness provenance. Seeds
	// fire on the simulation thread before engine dispatch, so findings
	// are byte-identical across the serial and sharded engines and
	// under fault plans. Stored in Options so the divergence sentinel's
	// serial reference detector inherits the same seed set.
	WitnessSeeds WitnessSeeder

	// Fault optionally attaches a deterministic fault-injection plan
	// to the RDUs and shadow memory (nil or empty = fault-free, the
	// paper's idealized hardware). See internal/fault.
	Fault *fault.Plan
	// FaultSeed seeds the injector's PRNG: the same (Fault, FaultSeed)
	// pair reproduces the same fault sequence byte for byte.
	FaultSeed int64
	// Degradation selects the corrupt-granule policy (quarantine by
	// default).
	Degradation DegradationPolicy

	// SentinelEvery arms the online divergence sentinel: every Nth
	// kernel the sharded engine's findings are cross-checked against a
	// private serial reference detector fed copies of the same event
	// stream (see sentinel.go). On a mismatch the engine records the
	// incident in DetectorHealth and permanently degrades to the serial
	// engine for subsequent kernels. 0 disables the sentinel. With a
	// fault plan attached every kernel is observed regardless of N —
	// the injector's PRNG streams advance per event, so the reference
	// must see the full stream to draw identical fault decisions. The
	// sentinel is inert when MaxRaces > 0 (the cap makes the two
	// engines' recorded sets legitimately diverge) and when the engine
	// runs serial anyway.
	SentinelEvery int
	// StallBudget bounds how long a quiescent-point drain waits on a
	// shard worker before declaring it stalled: the incident is
	// recorded in DetectorHealth and the engine degrades to serial at
	// the next kernel launch (the drain still waits for the real
	// acknowledgement — abandoning a worker would corrupt the merge).
	// 0 disables the watchdog.
	StallBudget time.Duration
	// Chaos optionally installs chaos-engineering perturbation points
	// (see ChaosHooks). nil in production.
	Chaos *ChaosHooks
}

// ChaosHooks are deliberate perturbation points for chaos campaigns
// and tests: they let a harness manufacture the failure modes — a hung
// shard worker, a divergent engine — that the self-healing machinery
// exists to catch, without planting a real bug. All hooks are nil in
// production builds.
type ChaosHooks struct {
	// WorkerStall, when set, is called by a shard worker before it
	// processes each batch, with the partition of the batch's first
	// segment. Campaigns block in it to model a hung worker and
	// exercise the StallBudget watchdog. Called off the simulation
	// thread; implementations must be safe for concurrent use.
	WorkerStall func(part int)
	// DropSentinelEvent, when set, is consulted once per WarpMem event
	// forwarded to the divergence sentinel's reference detector, with
	// the launching kernel's name and the event's index within the
	// kernel (from 0). Returning true drops the event from the
	// reference's view, manufacturing a divergence the sentinel must
	// catch.
	DropSentinelEvent func(kernel string, n int) bool
}

// DefaultOptions returns the configuration evaluated in the paper:
// both RDUs enabled, 16-byte shared and 4-byte global granularity,
// warp-aware reporting, 16-bit 2-bin signatures.
func DefaultOptions() Options {
	return Options{
		Shared:            true,
		Global:            true,
		SharedGranularity: 16,
		GlobalGranularity: 4,
		WarpAware:         true,
		DetectStaleL1:     true,
		Bloom:             bloom.DefaultConfig,
		ModelTraffic:      true,
	}
}

// Validate checks the options.
func (o *Options) Validate() error {
	if !o.Shared && !o.Global {
		return fmt.Errorf("core: at least one of Shared/Global must be enabled")
	}
	if o.SharedGranularity <= 0 || o.SharedGranularity&(o.SharedGranularity-1) != 0 {
		return fmt.Errorf("core: shared granularity %d not a power of two", o.SharedGranularity)
	}
	if o.GlobalGranularity <= 0 || o.GlobalGranularity&(o.GlobalGranularity-1) != 0 {
		return fmt.Errorf("core: global granularity %d not a power of two", o.GlobalGranularity)
	}
	if err := o.Bloom.Validate(); err != nil {
		return err
	}
	if o.SharedShadowInGlobal && !o.Shared {
		return fmt.Errorf("core: SharedShadowInGlobal requires Shared")
	}
	if o.DetectStaleL1 && !o.Global {
		return fmt.Errorf("core: DetectStaleL1 requires Global")
	}
	if o.Fault != nil {
		if err := o.Fault.Validate(); err != nil {
			return err
		}
	}
	if o.SentinelEvery < 0 {
		return fmt.Errorf("core: SentinelEvery %d is negative", o.SentinelEvery)
	}
	if o.StallBudget < 0 {
		return fmt.Errorf("core: StallBudget %v is negative", o.StallBudget)
	}
	return nil
}

// Stats aggregates detection activity.
type Stats struct {
	SharedChecks  int64 // lane-level shared-memory RDU checks
	GlobalChecks  int64 // lane-level global-memory RDU checks
	ShadowReads   int64 // shadow transactions injected (reads)
	ShadowWrites  int64 // shadow transactions injected (writes)
	Reports       int64 // dynamic race reports (before dedup)
	SharedReports int64 // dynamic reports in the shared space
	GlobalReports int64 // dynamic reports in the global space
	BarrierInval  int64 // shared shadow invalidation episodes
	FenceLookups  int64 // race-register-file fence-ID reads
	// FilteredChecks counts lane checks skipped because their site was
	// statically proven race-free (Options.StaticFilter). Each filtered
	// lane would otherwise have been a SharedChecks or GlobalChecks.
	FilteredChecks int64
}
