package core

import (
	"fmt"

	"haccrg/internal/bloom"
)

// Options configures HAccRG detection.
type Options struct {
	// Shared enables the per-SM shared-memory RDUs.
	Shared bool
	// Global enables the per-partition global-memory RDUs.
	Global bool

	// SharedGranularity maps this many consecutive shared-memory bytes
	// to one shadow entry. The paper settles on 16 bytes (7 of 10
	// benchmarks show no false positives there, Section VI-A1).
	SharedGranularity int
	// GlobalGranularity is the global-memory tracking granularity; the
	// paper keeps 4 bytes since device memory is plentiful.
	GlobalGranularity int

	// SharedShadowInGlobal stores the shared-memory shadow entries in
	// global memory instead of SM hardware, fetched through the L1
	// (the Figure 8 experiment).
	SharedShadowInGlobal bool

	// WarpAware suppresses races between lanes of the same warp, which
	// execute in lockstep and are implicitly ordered. Disable it when
	// modelling dynamic warp re-grouping (Section III-A).
	WarpAware bool

	// DetectStaleL1 enables the L1-hit stale-read check of Section
	// IV-B (needs Global).
	DetectStaleL1 bool

	// Bloom is the atomic-ID signature layout.
	Bloom bloom.Config

	// ModelTraffic injects the hardware RDUs' shadow-memory traffic
	// and barrier-invalidation stalls into the timing model. Software
	// reimplementations (internal/swdetect, internal/grace) disable it
	// and charge their own instrumentation costs instead.
	ModelTraffic bool

	// MaxRaces caps distinct recorded races (0 = unlimited); detection
	// continues counting but stops materializing new records.
	MaxRaces int
}

// DefaultOptions returns the configuration evaluated in the paper:
// both RDUs enabled, 16-byte shared and 4-byte global granularity,
// warp-aware reporting, 16-bit 2-bin signatures.
func DefaultOptions() Options {
	return Options{
		Shared:            true,
		Global:            true,
		SharedGranularity: 16,
		GlobalGranularity: 4,
		WarpAware:         true,
		DetectStaleL1:     true,
		Bloom:             bloom.DefaultConfig,
		ModelTraffic:      true,
	}
}

// Validate checks the options.
func (o *Options) Validate() error {
	if !o.Shared && !o.Global {
		return fmt.Errorf("core: at least one of Shared/Global must be enabled")
	}
	if o.SharedGranularity <= 0 || o.SharedGranularity&(o.SharedGranularity-1) != 0 {
		return fmt.Errorf("core: shared granularity %d not a power of two", o.SharedGranularity)
	}
	if o.GlobalGranularity <= 0 || o.GlobalGranularity&(o.GlobalGranularity-1) != 0 {
		return fmt.Errorf("core: global granularity %d not a power of two", o.GlobalGranularity)
	}
	if err := o.Bloom.Validate(); err != nil {
		return err
	}
	if o.SharedShadowInGlobal && !o.Shared {
		return fmt.Errorf("core: SharedShadowInGlobal requires Shared")
	}
	if o.DetectStaleL1 && !o.Global {
		return fmt.Errorf("core: DetectStaleL1 requires Global")
	}
	return nil
}

// Stats aggregates detection activity.
type Stats struct {
	SharedChecks int64 // lane-level shared-memory RDU checks
	GlobalChecks int64 // lane-level global-memory RDU checks
	ShadowReads  int64 // shadow transactions injected (reads)
	ShadowWrites int64 // shadow transactions injected (writes)
	Reports       int64 // dynamic race reports (before dedup)
	SharedReports int64 // dynamic reports in the shared space
	GlobalReports int64 // dynamic reports in the global space
	BarrierInval int64 // shared shadow invalidation episodes
	FenceLookups int64 // race-register-file fence-ID reads
}
