package core

import "haccrg/internal/gpu"

// HardwareCost reports the control-logic and storage overhead of
// HAccRG for a given machine, reproducing the arithmetic of Section
// VI-C2. All byte figures are exact (fractional KB kept as bytes).
//
// The bit widths are not re-derived from the device configuration:
// they are the architectural field widths of the packed shadow words
// the engine actually implements (packed.go's arch* constants), so the
// cost model, the fault injector's corruption masks and the hot-path
// encodings can never disagree about the entry layout. Entry and
// comparator counts remain configuration-derived.
type HardwareCost struct {
	// Shared-memory RDU.
	SharedEntryBits        int // 1 modified + 1 shared + tid bits
	SharedEntries          int // per SM
	SharedShadowBytesPerSM int
	SharedComparatorsPerSM int // parallel comparisons across banks

	// Global-memory RDU.
	GlobalEntryBitsBase       int // modified + shared + tid + bid + sid + sync ID
	GlobalEntryBitsFence      int // base + fence ID
	GlobalEntryBitsAtomic     int // base + fence ID + atomic-ID low bits
	GlobalComparatorsPerSlice int
	IDComparatorsPerSlice     int

	// Per-SM ID storage for global detection.
	SyncIDBytesPerSM   int
	FenceIDBytesPerSM  int
	AtomicIDBytesPerSM int
	IDBytesPerSM       int

	// Race register file (fence IDs of all SMs), replicated per slice.
	RaceRegisterFileBytes int
}

// ComputeHardwareCost evaluates the overhead model for a device
// configuration and detector options.
func ComputeHardwareCost(cfg *gpu.Config, opt Options) HardwareCost {
	var c HardwareCost

	c.SharedEntryBits = sharedEntryBits // 2 + archTidBits
	c.SharedEntries = cfg.Shared.SizeBytes / opt.SharedGranularity
	c.SharedShadowBytesPerSM = (c.SharedEntries*c.SharedEntryBits + 7) / 8
	// One comparator per bank at the tracking granularity; the paper's
	// 8 comparators arise from 16 banks * 4B served per 16B granule.
	c.SharedComparatorsPerSM = cfg.Shared.Banks * cfg.Shared.BankWidth / opt.SharedGranularity
	if c.SharedComparatorsPerSM < 1 {
		c.SharedComparatorsPerSM = 1
	}

	c.GlobalEntryBitsBase = 2 + archTidBits + archBidBits + archSidBits + archSyncBits
	c.GlobalEntryBitsFence = c.GlobalEntryBitsBase + archFenceBits
	c.GlobalEntryBitsAtomic = c.GlobalEntryBitsFence + archSigBits // == globalEntryBits
	// One comparator per granule in a cache line for the base entries,
	// plus one per two granules for fence/atomic IDs (Section VI-C2).
	granulesPerLine := cfg.SegmentBytes / opt.GlobalGranularity
	c.GlobalComparatorsPerSlice = granulesPerLine
	c.IDComparatorsPerSlice = granulesPerLine / 2

	// The per-SM ID tables hold the full-width IDs the RDUs compare
	// entry fields against: architectural sync/fence widths, and the
	// configured Bloom signature for atomic IDs (only its low
	// archSigBits land in the shadow entry).
	warpsPerSM := cfg.MaxThreadsPerSM / cfg.WarpSize
	c.SyncIDBytesPerSM = cfg.MaxBlocksPerSM * archSyncBits / 8
	c.FenceIDBytesPerSM = warpsPerSM * archFenceBits / 8
	c.AtomicIDBytesPerSM = cfg.MaxThreadsPerSM * opt.Bloom.SizeBits / 8
	c.IDBytesPerSM = c.SyncIDBytesPerSM + c.FenceIDBytesPerSM + c.AtomicIDBytesPerSM

	c.RaceRegisterFileBytes = cfg.NumSMs * warpsPerSM * archFenceBits / 8
	return c
}

// GlobalShadowBytes returns the device-memory footprint of the global
// shadow entries for a kernel touching appBytes of global data at the
// configured granularity (Table IV). Entries are stored packed at the
// full fence+atomic format's byte-rounded size.
func GlobalShadowBytes(appBytes int, opt Options) int64 {
	entryBytes := int64((globalEntryBits + 7) / 8) // 52 bits -> 7 bytes packed
	granules := (appBytes + opt.GlobalGranularity - 1) / opt.GlobalGranularity
	return int64(granules) * entryBytes
}
