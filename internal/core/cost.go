package core

import "haccrg/internal/gpu"

// HardwareCost reports the control-logic and storage overhead of
// HAccRG for a given machine, reproducing the arithmetic of Section
// VI-C2. All byte figures are exact (fractional KB kept as bytes).
type HardwareCost struct {
	// Shared-memory RDU.
	SharedEntryBits        int // 1 modified + 1 shared + tid bits
	SharedEntries          int // per SM
	SharedShadowBytesPerSM int
	SharedComparatorsPerSM int // parallel comparisons across banks

	// Global-memory RDU.
	GlobalEntryBitsBase       int // modified + shared + tid + bid + sid + sync ID
	GlobalEntryBitsFence      int // base + fence ID
	GlobalEntryBitsAtomic     int // base + atomic ID
	GlobalComparatorsPerSlice int
	IDComparatorsPerSlice     int

	// Per-SM ID storage for global detection.
	SyncIDBytesPerSM   int
	FenceIDBytesPerSM  int
	AtomicIDBytesPerSM int
	IDBytesPerSM       int

	// Race register file (fence IDs of all SMs), replicated per slice.
	RaceRegisterFileBytes int
}

// bitsFor returns the minimum number of bits addressing n values.
func bitsFor(n int) int {
	b := 0
	for (1 << b) < n {
		b++
	}
	return b
}

// ComputeHardwareCost evaluates the overhead model for a device
// configuration and detector options.
func ComputeHardwareCost(cfg *gpu.Config, opt Options) HardwareCost {
	var c HardwareCost

	tidBits := bitsFor(cfg.MaxThreadsPerSM) // 10 for 1024 threads/SM
	c.SharedEntryBits = 2 + tidBits
	c.SharedEntries = cfg.Shared.SizeBytes / opt.SharedGranularity
	c.SharedShadowBytesPerSM = (c.SharedEntries*c.SharedEntryBits + 7) / 8
	// One comparator per bank at the tracking granularity; the paper's
	// 8 comparators arise from 16 banks * 4B served per 16B granule.
	c.SharedComparatorsPerSM = cfg.Shared.Banks * cfg.Shared.BankWidth / opt.SharedGranularity
	if c.SharedComparatorsPerSM < 1 {
		c.SharedComparatorsPerSM = 1
	}

	const syncIDBits, fenceIDBits = 8, 8
	atomicIDBits := opt.Bloom.SizeBits
	bidBits := bitsFor(cfg.MaxBlocksPerSM) // 3 for 8 blocks
	sidBits := bitsFor(cfg.NumSMs)         // 5 for 30 SMs
	c.GlobalEntryBitsBase = 2 + tidBits + bidBits + sidBits + syncIDBits
	c.GlobalEntryBitsFence = c.GlobalEntryBitsBase + fenceIDBits
	c.GlobalEntryBitsAtomic = c.GlobalEntryBitsBase + fenceIDBits + atomicIDBits
	// One comparator per granule in a cache line for the base entries,
	// plus one per two granules for fence/atomic IDs (Section VI-C2).
	granulesPerLine := cfg.SegmentBytes / opt.GlobalGranularity
	c.GlobalComparatorsPerSlice = granulesPerLine
	c.IDComparatorsPerSlice = granulesPerLine / 2

	warpsPerSM := cfg.MaxThreadsPerSM / cfg.WarpSize
	c.SyncIDBytesPerSM = cfg.MaxBlocksPerSM * syncIDBits / 8
	c.FenceIDBytesPerSM = warpsPerSM * fenceIDBits / 8
	c.AtomicIDBytesPerSM = cfg.MaxThreadsPerSM * atomicIDBits / 8
	c.IDBytesPerSM = c.SyncIDBytesPerSM + c.FenceIDBytesPerSM + c.AtomicIDBytesPerSM

	c.RaceRegisterFileBytes = cfg.NumSMs * warpsPerSM * fenceIDBits / 8
	return c
}

// GlobalShadowBytes returns the device-memory footprint of the global
// shadow entries for a kernel touching appBytes of global data at the
// configured granularity (Table IV). Entries are stored packed at the
// full 52-bit (fence+atomic) format's byte-rounded size.
func GlobalShadowBytes(appBytes int, opt Options) int64 {
	entryBytes := (52 + 7) / 8 // 6.5 bits rounded: 7 bytes packed
	granules := (appBytes + opt.GlobalGranularity - 1) / opt.GlobalGranularity
	return int64(granules) * int64(entryBytes)
}
