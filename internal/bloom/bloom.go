// Package bloom implements the Bloom-filter signatures HAccRG uses as
// per-thread "atomic IDs": compact sets of lock-variable addresses.
//
// A signature is a bit vector of SizeBits total bits divided into Bins
// equal bins. Adding an address sets one bit per bin; the bit within
// each bin is selected by direct indexing with consecutive low-order
// address bits (after discarding the 2 word-offset bits), following the
// paper's design (after Hu/Wood-style signatures). Set intersection is
// bitwise AND; two signatures may share a lock iff every bin's AND is
// non-zero. Removal is whole-signature clearing, which matches the
// paper's "clear on releasing all locks" policy.
package bloom

import (
	"fmt"
	"math/bits"
)

// Sig is a Bloom-filter signature value. Signatures of up to 64 bits
// are supported (the paper evaluates 8-, 16- and 32-bit signatures).
type Sig uint64

// Config describes a signature layout.
type Config struct {
	SizeBits int // total signature size in bits (power of two, <= 64)
	Bins     int // number of bins (power of two, >= 1)
}

// DefaultConfig is the configuration HAccRG settles on: 16-bit
// signatures with 2 bins (Section VI-A2).
var DefaultConfig = Config{SizeBits: 16, Bins: 2}

// Validate checks that the configuration is realizable.
func (c Config) Validate() error {
	if c.SizeBits <= 0 || c.SizeBits > 64 || c.SizeBits&(c.SizeBits-1) != 0 {
		return fmt.Errorf("bloom: SizeBits must be a power of two in (0,64], got %d", c.SizeBits)
	}
	if c.Bins <= 0 || c.Bins&(c.Bins-1) != 0 {
		return fmt.Errorf("bloom: Bins must be a positive power of two, got %d", c.Bins)
	}
	if c.Bins > c.SizeBits {
		return fmt.Errorf("bloom: Bins (%d) exceeds SizeBits (%d)", c.Bins, c.SizeBits)
	}
	if c.SizeBits/c.Bins < 2 {
		return fmt.Errorf("bloom: bins of %d bits cannot index", c.SizeBits/c.Bins)
	}
	return nil
}

// BinBits returns the number of bits per bin.
func (c Config) BinBits() int { return c.SizeBits / c.Bins }

// indexBits returns how many address bits select a bit within one bin.
func (c Config) indexBits() int { return bits.Len(uint(c.BinBits())) - 1 }

// Add returns s with addr inserted. One bit per bin is set; every bin
// is indexed directly by the k = log2(bin bits) low-order address bits
// (after discarding the 2 word-offset bits, as lock variables are
// word-aligned). Indexing each bin with the same low-order bits is
// what reproduces the paper's measured miss rates — 25%, 12.5% and
// 6.25% for 8-, 16- and 32-bit 2-bin signatures, i.e. 2^-k — and its
// observation that 2 bins beat 4 bins at equal size (fewer, larger
// bins mean more index bits per bin).
func (c Config) Add(s Sig, addr uint64) Sig {
	k := uint(c.indexBits())
	idx := (addr >> 2) & (1<<k - 1)
	binBits := uint(c.BinBits())
	for i := 0; i < c.Bins; i++ {
		s |= 1 << (uint(i)*binBits + uint(idx))
	}
	return s
}

// MayIntersect reports whether two signatures may represent sets with a
// common element: every bin's intersection must be non-empty. An empty
// signature never intersects anything.
func (c Config) MayIntersect(a, b Sig) bool {
	if a == 0 || b == 0 {
		return false
	}
	binBits := uint(c.BinBits())
	mask := Sig(1)<<binBits - 1
	x := a & b
	for i := 0; i < c.Bins; i++ {
		if (x>>(uint(i)*binBits))&mask == 0 {
			return false
		}
	}
	return true
}

// Intersect returns the bitwise intersection of two signatures. This is
// what the RDU stores back into the shadow entry's atomic-ID field:
// the set of locks that have protected the variable so far.
func (c Config) Intersect(a, b Sig) Sig { return a & b }

// Empty reports whether the signature represents the empty lockset.
func (c Config) Empty(s Sig) bool { return s == 0 }

// Mask returns the valid-bit mask for this configuration, useful for
// hardware-cost accounting and tests.
func (c Config) Mask() Sig {
	if c.SizeBits == 64 {
		return ^Sig(0)
	}
	return Sig(1)<<uint(c.SizeBits) - 1
}

// AliasProbability returns the analytical probability that a second,
// distinct uniformly random address produces the same signature as a
// given one: 2^-k with k index bits per bin. This is the "missed
// race" rate of the paper's stress test — 25% / 12.5% / 6.25% for
// 8/16/32-bit 2-bin signatures.
func (c Config) AliasProbability() float64 {
	p := 1.0
	for i := 0; i < c.indexBits(); i++ {
		p /= 2
	}
	return p
}
