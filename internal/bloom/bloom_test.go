package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{{8, 2}, {16, 2}, {32, 2}, {8, 4}, {16, 4}, {32, 4}, {64, 2}, {16, 1}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{{0, 2}, {12, 2}, {128, 2}, {16, 3}, {16, 0}, {16, 32}, {2, 2}, {-8, 2}}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestDefaultConfigIsPaperChoice(t *testing.T) {
	if DefaultConfig.SizeBits != 16 || DefaultConfig.Bins != 2 {
		t.Fatalf("DefaultConfig = %+v, want 16-bit/2-bin per Section VI-A2", DefaultConfig)
	}
	if err := DefaultConfig.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddSetsOneBitPerBin(t *testing.T) {
	c := Config{SizeBits: 16, Bins: 2}
	s := c.Add(0, 0x1234)
	binBits := Sig(1)<<uint(c.BinBits()) - 1
	lo := s & binBits
	hi := (s >> uint(c.BinBits())) & binBits
	if popcount(lo) != 1 || popcount(hi) != 1 {
		t.Fatalf("Add set %d/%d bits in bins, want 1/1 (sig %016b)", popcount(lo), popcount(hi), s)
	}
}

func popcount(s Sig) int {
	n := 0
	for ; s != 0; s &= s - 1 {
		n++
	}
	return n
}

func TestSelfIntersection(t *testing.T) {
	c := DefaultConfig
	f := func(addr uint64) bool {
		s := c.Add(0, addr)
		return c.MayIntersect(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyNeverIntersects(t *testing.T) {
	c := DefaultConfig
	f := func(addr uint64) bool {
		s := c.Add(0, addr)
		return !c.MayIntersect(s, 0) && !c.MayIntersect(0, s) && !c.MayIntersect(0, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// No false negatives: if two threads hold a common lock, their
// signatures always intersect.
func TestCommonLockAlwaysIntersects(t *testing.T) {
	for _, c := range []Config{{8, 2}, {16, 2}, {32, 2}, {16, 4}} {
		f := func(common, extraA, extraB uint64) bool {
			a := c.Add(c.Add(0, common), extraA)
			b := c.Add(c.Add(0, common), extraB)
			return c.MayIntersect(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("config %+v: %v", c, err)
		}
	}
}

// Superset property: adding an address never clears bits.
func TestAddMonotone(t *testing.T) {
	c := DefaultConfig
	f := func(seed Sig, addr uint64) bool {
		seed &= c.Mask()
		s := c.Add(seed, addr)
		return s&seed == seed && s&^c.Mask() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectIsAnd(t *testing.T) {
	c := DefaultConfig
	f := func(a, b Sig) bool { return c.Intersect(a, b) == a&b }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistinctAddressesCanBeDistinguished(t *testing.T) {
	c := Config{SizeBits: 32, Bins: 2}
	a := c.Add(0, 4)  // word index 1
	b := c.Add(0, 32) // word index 8
	if c.MayIntersect(a, b) {
		t.Fatalf("addresses 4 and 32 alias in a 32-bit signature: %x vs %x", a, b)
	}
}

// TestAliasRateMatchesPaper reproduces the stress test of Section
// VI-A2: inject conflicting accesses over many random lock addresses
// and measure how many the signature cannot distinguish. The paper
// reports 25% / 12.5% / 6.25% misses for 8/16/32-bit 2-bin signatures.
func TestAliasRateMatchesPaper(t *testing.T) {
	cases := []struct {
		cfg  Config
		want float64
	}{
		{Config{8, 2}, 0.25},
		{Config{16, 2}, 0.125},
		{Config{32, 2}, 0.0625},
	}
	rng := rand.New(rand.NewSource(42))
	const trials = 200000
	for _, tc := range cases {
		misses := 0
		for i := 0; i < trials; i++ {
			a := uint64(rng.Int63()) &^ 3
			b := uint64(rng.Int63()) &^ 3
			if a == b {
				continue
			}
			// Thread 1 holds lock a, thread 2 holds lock b: a race
			// unless the lockset intersection is non-null. An aliasing
			// signature hides ("misses") the race.
			if tc.cfg.MayIntersect(tc.cfg.Add(0, a), tc.cfg.Add(0, b)) {
				misses++
			}
		}
		got := float64(misses) / trials
		if got < tc.want*0.9 || got > tc.want*1.1 {
			t.Errorf("config %+v: miss rate %.4f, want ~%.4f", tc.cfg, got, tc.want)
		}
		if ap := tc.cfg.AliasProbability(); ap != tc.want {
			t.Errorf("config %+v: AliasProbability() = %v, want %v", tc.cfg, ap, tc.want)
		}
	}
}

// TestTwoBinsBeatFourBins verifies the paper's observation that for a
// fixed signature size, 2 bins are more accurate than 4.
func TestTwoBinsBeatFourBins(t *testing.T) {
	for _, size := range []int{16, 32} {
		two := Config{size, 2}.AliasProbability()
		four := Config{size, 4}.AliasProbability()
		if two >= four {
			t.Errorf("size %d: 2-bin alias %.4f not better than 4-bin %.4f", size, two, four)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	c := DefaultConfig
	var s Sig
	for i := 0; i < b.N; i++ {
		s = c.Add(s, uint64(i)<<2)
	}
	_ = s
}

func BenchmarkMayIntersect(b *testing.B) {
	c := DefaultConfig
	x := c.Add(0, 1024)
	y := c.Add(0, 2048)
	for i := 0; i < b.N; i++ {
		_ = c.MayIntersect(x, y)
	}
}
