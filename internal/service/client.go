package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to a haccrg daemon, absorbing its backpressure: 429 and
// 503 responses (and transport errors) are retried with exponential
// backoff plus jitter, and a server-provided Retry-After always wins
// over the computed backoff. Bodies are buffered before sending so a
// retry replays identical bytes.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenant is sent as the tenant identity header ("" = anonymous).
	Tenant string
	// HTTPClient overrides the transport (nil = a client with a 30s
	// request timeout).
	HTTPClient *http.Client
	// MaxAttempts bounds retries per call (default 8).
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule (default 250ms).
	BaseBackoff time.Duration

	// sleep is injectable for tests; nil honors real time.
	sleep func(ctx context.Context, d time.Duration) error
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 8
}

func (c *Client) backoff(attempt int) time.Duration {
	base := c.BaseBackoff
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	d := base << uint(attempt)
	if max := 15 * time.Second; d > max {
		d = max
	}
	// Full jitter: spread retries over [d/2, d] so a herd of clients
	// released by the same 429 does not re-saturate the queue in step.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

func (c *Client) wait(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryable says whether a response status is worth another attempt.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// retryAfter extracts the server's Retry-After hint, if any.
func retryAfter(resp *http.Response) (time.Duration, bool) {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second, true
		}
	}
	return 0, false
}

// do sends one request (re-built per attempt from body bytes) until it
// gets a non-retryable response or runs out of attempts.
func (c *Client) do(ctx context.Context, method, path string, body []byte, hdr http.Header) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			d := c.backoff(attempt - 1)
			if lastResp, ok := lastErr.(*retryAfterError); ok && lastResp.after > 0 {
				d = lastResp.after
			}
			if err := c.wait(ctx, d); err != nil {
				return nil, fmt.Errorf("service client: %s %s: %w (last: %v)", method, path, err, lastErr)
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.BaseURL, "/")+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		for k, vs := range hdr {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		if c.Tenant != "" {
			req.Header.Set(TenantHeader, c.Tenant)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			// Transport failure (daemon restarting, connection refused):
			// retryable.
			lastErr = err
			continue
		}
		if retryable(resp.StatusCode) {
			ra, _ := retryAfter(resp)
			msg := readAPIError(resp)
			resp.Body.Close()
			lastErr = &retryAfterError{status: resp.StatusCode, msg: msg, after: ra}
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("service client: %s %s: gave up after %d attempts: %v", method, path, c.attempts(), lastErr)
}

type retryAfterError struct {
	status int
	msg    string
	after  time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.status, e.msg)
}

// readAPIError pulls the error envelope out of a failed response.
func readAPIError(resp *http.Response) string {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var ae apiError
	if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
		return ae.Error
	}
	return strings.TrimSpace(string(data))
}

// decode reads a JSON success body, converting non-2xx into errors.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("service client: HTTP %d: %s", resp.StatusCode, readAPIError(resp))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Submit sends a bench or analyze job and returns its ID.
func (c *Client) Submit(ctx context.Context, spec *JobSpec) (string, error) {
	var path string
	switch spec.Kind {
	case JobBench:
		path = "/v1/jobs/bench"
	case JobAnalyze:
		path = "/v1/jobs/analyze"
	default:
		return "", fmt.Errorf("service client: Submit does not handle kind %q", spec.Kind)
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	hdr := http.Header{"Content-Type": []string{"application/json"}}
	resp, err := c.do(ctx, http.MethodPost, path, body, hdr)
	if err != nil {
		return "", err
	}
	var sr submitResponse
	if err := decode(resp, &sr); err != nil {
		return "", err
	}
	return sr.ID, nil
}

// SubmitReplay uploads a journal (fully buffered so retries replay the
// same bytes) and returns the replay job's ID.
func (c *Client) SubmitReplay(ctx context.Context, journal []byte, detector string) (string, error) {
	path := "/v1/jobs/replay"
	if detector != "" {
		path += "?detector=" + detector
	}
	resp, err := c.do(ctx, http.MethodPost, path, journal,
		http.Header{"Content-Type": []string{"application/octet-stream"}})
	if err != nil {
		return "", err
	}
	var sr submitResponse
	if err := decode(resp, &sr); err != nil {
		return "", err
	}
	return sr.ID, nil
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil)
	if err != nil {
		return nil, err
	}
	var st JobStatus
	if err := decode(resp, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// terminal says whether a job state is final for this daemon process.
// An interrupted job will resume after a restart, but from this
// client's perspective the wait is over.
func terminal(state string) bool {
	switch state {
	case StateDone, StateFailed, StateInterrupted:
		return true
	}
	return false
}

// Wait polls a job until it reaches a terminal state or ctx ends.
func (c *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	delay := 100 * time.Millisecond
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if terminal(st.State) {
			return st, nil
		}
		if err := c.wait(ctx, delay); err != nil {
			return st, err
		}
		if delay < 2*time.Second {
			delay *= 2
		}
	}
}

// Run submits a bench/analyze job and waits for its result.
func (c *Client) Run(ctx context.Context, spec *JobSpec) (*JobStatus, error) {
	id, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, id)
}

// Stats fetches the daemon's /statsz snapshot.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	resp, err := c.do(ctx, http.MethodGet, "/statsz", nil, nil)
	if err != nil {
		return nil, err
	}
	var st Stats
	if err := decode(resp, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
