package service

import (
	"context"
	"errors"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"haccrg/internal/journal"
)

func testLogger(t *testing.T) *log.Logger {
	t.Helper()
	return log.New(io.Discard, "", 0)
}

// openTenants is a tenant config that never rejects, for tests aimed
// at other gates.
var openTenants = TenantConfig{Rate: 1e6, Burst: 1000, MaxConcurrent: 0}

func newTestServer(t *testing.T, mod func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		DataDir:  t.TempDir(),
		SmallGPU: true,
		Workers:  1,
		Tenant:   openTenants,
		Log:      testLogger(t),
	}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// expiredCtx is a context whose deadline has already passed — the
// zero-length drain window.
func expiredCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t.Cleanup(cancel)
	return ctx
}

func analyzeSpec() *JobSpec {
	return &JobSpec{Kind: JobAnalyze, Benches: []string{"psum"}}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Drain(expiredCtx(t))
	cases := []*JobSpec{
		{Kind: "bogus"},
		{Kind: JobBench},
		{Kind: JobBench, Benches: []string{"no-such-bench"}},
		{Kind: JobAnalyze, Benches: []string{"psum"}, TimeoutMS: -1},
		{Kind: JobBench, Benches: []string{"psum"}, Degradation: "explode"},
	}
	for _, sp := range cases {
		if _, _, err := s.Submit("t", sp); err == nil {
			t.Errorf("Submit(%+v) accepted, want validation error", sp)
		}
	}
	if n := len(s.Jobs("")); n != 0 {
		t.Fatalf("rejected specs left %d jobs behind", n)
	}
}

func TestQueueSaturationShedsLoad(t *testing.T) {
	// Workers never started: everything submitted stays queued, so the
	// third submission must hit the bounded queue, be refused with a
	// retry hint, and leave no trace in the spool.
	s := newTestServer(t, func(c *Config) { c.QueueDepth = 2 })
	for i := 0; i < 2; i++ {
		if _, _, err := s.Submit("t", analyzeSpec()); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	_, retry, err := s.Submit("t", analyzeSpec())
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on full queue: err = %v, want ErrQueueFull", err)
	}
	if retry <= 0 {
		t.Fatalf("Submit on full queue: retry hint = %v, want > 0", retry)
	}
	specs, _ := filepath.Glob(filepath.Join(s.spool.dir, "jobs", "*.spec.json"))
	if len(specs) != 2 {
		t.Fatalf("spool holds %d specs after shed submission, want 2", len(specs))
	}
	st := s.Stats()
	if st.Rejected.QueueFull != 1 {
		t.Fatalf("Stats.Rejected.QueueFull = %d, want 1", st.Rejected.QueueFull)
	}
	// The shed admission was refunded: the tenant's bucket is not
	// charged for work the daemon refused.
	if got := st.Tenants["t"].Admitted; got != 2 {
		t.Fatalf("tenant admitted = %d after refund, want 2", got)
	}
	rep := s.Drain(expiredCtx(t))
	if rep.Requeued != 2 {
		t.Fatalf("Drain.Requeued = %d, want 2 (accepted jobs are never dropped)", rep.Requeued)
	}
}

func TestTenantQuotaExhaustion(t *testing.T) {
	clock := time.Unix(1000, 0)
	ts := newTenants(TenantConfig{Rate: 1, Burst: 2, MaxConcurrent: 10}, func() time.Time { return clock })
	for i := 0; i < 2; i++ {
		if _, err := ts.admit("a"); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	retry, err := ts.admit("a")
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("admit past burst: err = %v, want ErrQuota", err)
	}
	if retry < time.Second {
		t.Fatalf("quota retry hint = %v, want >= 1s", retry)
	}
	// Another tenant is unaffected.
	if _, err := ts.admit("b"); err != nil {
		t.Fatalf("tenant b: %v", err)
	}
	// Time refills the bucket.
	clock = clock.Add(3 * time.Second)
	if _, err := ts.admit("a"); err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
}

func TestTenantConcurrencyCap(t *testing.T) {
	ts := newTenants(TenantConfig{Rate: 0, MaxConcurrent: 2}, nil)
	for i := 0; i < 2; i++ {
		if _, err := ts.admit("a"); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if _, err := ts.admit("a"); !errors.Is(err, ErrConcurrency) {
		t.Fatalf("admit past cap: err = %v, want ErrConcurrency", err)
	}
	ts.release("a")
	if _, err := ts.admit("a"); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestAnalyzeJobAndReportCache(t *testing.T) {
	s := newTestServer(t, nil)
	s.Start()
	defer s.Drain(expiredCtx(t))

	run := func() JobStatus {
		id, _, err := s.Submit("t", analyzeSpec())
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		st, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if st.State != StateDone {
			t.Fatalf("job state %s (%s), want done", st.State, st.Error)
		}
		return st
	}
	first, second := run(), run()
	if first.Analyze == nil || second.Analyze == nil {
		t.Fatal("analyze summaries missing")
	}
	if first.CacheHit {
		t.Fatal("first analysis claims a cache hit")
	}
	if !second.CacheHit {
		t.Fatal("second identical analysis missed the cache")
	}
	if first.Analyze.ProgramHash != second.Analyze.ProgramHash {
		t.Fatalf("program hashes differ: %s vs %s", first.Analyze.ProgramHash, second.Analyze.ProgramHash)
	}
	if string(first.Analyze.Report) != string(second.Analyze.Report) {
		t.Fatal("cached report differs from computed report")
	}
	if st := s.Stats(); st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", st.Cache)
	}
}

func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, nil)
	// A job with a nil spec crashes the executor; the worker must
	// survive and report the crash as a structured failure.
	j := &job{done: make(chan struct{}), status: JobStatus{ID: "jpanic", Tenant: "t"}}
	s.mu.Lock()
	s.jobs["jpanic"] = j
	s.outstanding++
	s.mu.Unlock()
	s.runJob(j)
	st := j.snapshot()
	if st.State != StateFailed {
		t.Fatalf("panicked job state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "panicked") {
		t.Fatalf("panicked job error = %q, want a panic report", st.Error)
	}
	if got := s.Stats().Panicked; got != 1 {
		t.Fatalf("Stats.Panicked = %d, want 1", got)
	}
	select {
	case <-j.done:
	default:
		t.Fatal("panicked job's done gate never closed")
	}
}

func TestJobDeadlineClamp(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.DefaultDeadline = time.Minute
		c.MaxDeadline = 2 * time.Minute
	})
	defer s.Drain(expiredCtx(t))
	if d := s.jobDeadline(&JobSpec{}); d != time.Minute {
		t.Fatalf("default deadline = %v, want 1m", d)
	}
	if d := s.jobDeadline(&JobSpec{TimeoutMS: 30_000}); d != 30*time.Second {
		t.Fatalf("requested deadline = %v, want 30s", d)
	}
	if d := s.jobDeadline(&JobSpec{TimeoutMS: int64(time.Hour / time.Millisecond)}); d != 2*time.Minute {
		t.Fatalf("oversized deadline = %v, want clamped to 2m", d)
	}
}

// TestDrainCheckpointResume is the core robustness invariant: a drain
// that cuts a bench job mid-sweep leaves resumable state, and a
// restarted daemon finishes the job with findings byte-identical to an
// uninterrupted run.
func TestDrainCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	// hist finishes first and lands in the job's manifest; mcarlo is
	// still simulating when the drain cancels it.
	spec := &JobSpec{Kind: JobBench, Benches: []string{"hist", "mcarlo"}, Scale: 8}

	// Control: the same spec run to completion without interruption.
	control := newTestServer(t, func(c *Config) { c.SmallGPU = false })
	control.Start()
	cid, _, err := control.Submit("t", spec)
	if err != nil {
		t.Fatalf("control Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	want, err := control.Wait(ctx, cid)
	if err != nil || want.State != StateDone {
		t.Fatalf("control job: state %s, err %v (%s)", want.State, err, want.Error)
	}
	control.Drain(expiredCtx(t))

	dir := t.TempDir()
	s, err := New(Config{DataDir: dir, Workers: 1, Tenant: openTenants, Log: testLogger(t)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	id, _, err := s.Submit("t", spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait for the first completed run to be checkpointed — the
	// journal header alone does not count, only an intact record —
	// then slam the drain window shut while the second is mid-flight.
	manifest := s.spool.manifestPath(id)
	for deadline := time.Now().Add(time.Minute); ; {
		if manifestRecords(manifest) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("manifest never got its first checkpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep := s.Drain(expiredCtx(t))
	st, ok := s.Job(id)
	if !ok {
		t.Fatal("job vanished during drain")
	}
	if st.State != StateInterrupted {
		t.Fatalf("drained job state = %s (%s), want interrupted", st.State, st.Error)
	}
	if rep.Interrupted != 1 {
		t.Fatalf("DrainReport.Interrupted = %d, want 1", rep.Interrupted)
	}

	// Restart over the same data directory: the job is recovered,
	// resumed from its manifest, and completed.
	s2, err := New(Config{DataDir: dir, Workers: 1, Tenant: openTenants, Log: testLogger(t)})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	s2.Start()
	defer s2.Drain(expiredCtx(t))
	got, err := s2.Wait(ctx, id)
	if err != nil {
		t.Fatalf("resumed Wait: %v", err)
	}
	if got.State != StateDone {
		t.Fatalf("resumed job state = %s (%s), want done", got.State, got.Error)
	}

	if len(got.Runs) != len(want.Runs) {
		t.Fatalf("resumed job has %d runs, control %d", len(got.Runs), len(want.Runs))
	}
	resumedAny := false
	for i := range got.Runs {
		g, w := got.Runs[i], want.Runs[i]
		if g.Bench != w.Bench || g.Detector != w.Detector || g.Cycles != w.Cycles {
			t.Errorf("run %d: got %s/%s %d cycles, control %s/%s %d cycles",
				i, g.Bench, g.Detector, g.Cycles, w.Bench, w.Detector, w.Cycles)
		}
		if strings.Join(g.Races, "\n") != strings.Join(w.Races, "\n") {
			t.Errorf("run %d (%s): races differ from uninterrupted control\n got: %v\nwant: %v",
				i, g.Bench, g.Races, w.Races)
		}
		resumedAny = resumedAny || g.Resumed
	}
	if !resumedAny {
		t.Error("no run was served from the checkpoint manifest")
	}
}

// manifestRecords counts the intact framed records in a (possibly
// still-growing) manifest file, without disturbing it.
func manifestRecords(path string) int {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	r, err := journal.NewReader(f)
	if err != nil {
		return 0
	}
	n := 0
	for {
		if _, err := r.Next(); err != nil {
			return n
		}
		n++
	}
}

func TestRecoverRequeuesSpooledJobs(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{DataDir: dir, SmallGPU: true, Workers: 1, Tenant: openTenants, Log: testLogger(t)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Accept a job but never start workers, then drain: the job stays
	// spooled.
	id, _, err := s.Submit("t", analyzeSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if rep := s.Drain(expiredCtx(t)); rep.Requeued != 1 {
		t.Fatalf("Drain.Requeued = %d, want 1", rep.Requeued)
	}

	s2, err := New(Config{DataDir: dir, SmallGPU: true, Workers: 1, Tenant: openTenants, Log: testLogger(t)})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	s2.Start()
	defer s2.Drain(expiredCtx(t))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := s2.Wait(ctx, id)
	if err != nil || st.State != StateDone {
		t.Fatalf("recovered job: state %s, err %v (%s)", st.State, err, st.Error)
	}
	if st.Analyze == nil || st.Analyze.ProgramHash == "" {
		t.Fatal("recovered analyze job produced no report")
	}
}
