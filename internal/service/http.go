package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"haccrg/internal/version"
)

// maxJournalBytes bounds an uploaded replay journal. Larger uploads
// are rejected with 413 instead of filling the spool disk.
const maxJournalBytes = 256 << 20

// TenantHeader names the request header carrying the tenant identity.
// When absent, a Bearer token in Authorization identifies the tenant;
// with neither, the request is billed to the shared "anonymous"
// tenant (which has the same quotas as everyone else — no free tier).
const TenantHeader = "X-Haccrg-Tenant"

// requestTenant extracts the tenant identity from a request.
func requestTenant(r *http.Request) string {
	if t := strings.TrimSpace(r.Header.Get(TenantHeader)); t != "" {
		return t
	}
	if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
		if t := strings.TrimSpace(strings.TrimPrefix(auth, "Bearer ")); t != "" {
			return t
		}
	}
	return "anonymous"
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeAdmissionError maps an admission failure to its HTTP shape:
// 400 for bad specs, 429 + Retry-After for quota and queue pressure,
// 503 + Retry-After while draining.
func writeAdmissionError(w http.ResponseWriter, retryAfter time.Duration, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQuota), errors.Is(err, ErrConcurrency):
		code = http.StatusTooManyRequests
	}
	secs := 0
	if retryAfter > 0 {
		secs = int((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, code, apiError{Error: err.Error(), RetryAfter: secs})
}

// submitResponse acknowledges an accepted job.
type submitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs/bench     submit a benchmark job (JSON JobSpec body)
//	POST /v1/jobs/analyze   submit a static-analysis job (JSON JobSpec body)
//	POST /v1/jobs/replay    submit a replay job (body = journal bytes;
//	                        ?detector= overrides the journaled detector)
//	GET  /v1/jobs           list this tenant's jobs
//	GET  /v1/jobs/{id}      one job's status (404 across tenants)
//	GET  /v1/benches        the benchmark suite
//	GET  /healthz           process liveness (always 200 while serving)
//	GET  /readyz            admission readiness (503 while draining)
//	GET  /statsz            queue, tenant, cache, and health counters
//
// Submissions are acknowledged with 202 and a job ID once the job is
// durably spooled; saturation and quota exhaustion answer 429 with
// Retry-After, and a draining daemon answers 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	submitJSON := func(kind JobKind) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var spec JobSpec
			dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&spec); err != nil {
				writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("decoding job spec: %v", err)})
				return
			}
			spec.Kind = kind
			id, retry, err := s.Submit(requestTenant(r), &spec)
			if err != nil {
				writeAdmissionError(w, retry, err)
				return
			}
			writeJSON(w, http.StatusAccepted, submitResponse{ID: id, State: StateQueued})
		}
	}
	mux.HandleFunc("POST /v1/jobs/bench", submitJSON(JobBench))
	mux.HandleFunc("POST /v1/jobs/analyze", submitJSON(JobAnalyze))

	mux.HandleFunc("POST /v1/jobs/replay", func(w http.ResponseWriter, r *http.Request) {
		spec := JobSpec{Kind: JobReplay, Detector: r.URL.Query().Get("detector")}
		if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
			v, err := strconv.ParseInt(ms, 10, 64)
			if err != nil || v < 0 {
				writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid timeout_ms"})
				return
			}
			spec.TimeoutMS = v
		}
		body := http.MaxBytesReader(w, r.Body, maxJournalBytes)
		id, retry, err := s.SubmitReplay(requestTenant(r), &spec, body)
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeJSON(w, http.StatusRequestEntityTooLarge,
					apiError{Error: fmt.Sprintf("journal exceeds %d bytes", tooBig.Limit)})
				return
			}
			writeAdmissionError(w, retry, err)
			return
		}
		writeJSON(w, http.StatusAccepted, submitResponse{ID: id, State: StateQueued})
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs(requestTenant(r)))
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		st, ok := s.Job(id)
		// Cross-tenant probes get the same 404 as missing jobs: job IDs
		// are not enumerable across tenants.
		if !ok || st.Tenant != requestTenant(r) {
			writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("unknown job %q", id)})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/benches", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"benches": BenchNames()})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "version": version.Version})
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			w.Header().Set("Retry-After", "10")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})

	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	return mux
}
