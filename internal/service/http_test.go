package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"haccrg"
)

func newHTTPServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, mod)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func postJSON(t *testing.T, url string, tenant string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPSubmitAndStatus(t *testing.T) {
	s, hs := newHTTPServer(t, nil)
	s.Start()
	defer s.Drain(expiredCtx(t))

	resp := postJSON(t, hs.URL+"/v1/jobs/analyze", "alice", analyzeSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.ID == "" {
		t.Fatal("submit response has no job ID")
	}

	// The submitting tenant sees the job; another tenant gets the same
	// 404 a missing job would.
	for tenant, want := range map[string]int{"alice": 200, "mallory": 404} {
		req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/jobs/"+sr.ID, nil)
		req.Header.Set(TenantHeader, tenant)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != want {
			t.Fatalf("GET job as %s: HTTP %d, want %d", tenant, r.StatusCode, want)
		}
	}

	cl := &Client{BaseURL: hs.URL, Tenant: "alice"}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := cl.Wait(ctx, sr.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
}

func TestHTTPBadSpecIs400(t *testing.T) {
	s, hs := newHTTPServer(t, nil)
	defer s.Drain(expiredCtx(t))
	resp := postJSON(t, hs.URL+"/v1/jobs/bench", "t", map[string]any{"benches": []string{"no-such"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestHTTPQueueFullIs429(t *testing.T) {
	s, hs := newHTTPServer(t, func(c *Config) { c.QueueDepth = 1 })
	defer s.Drain(expiredCtx(t)) // workers never started: first job occupies the queue
	if resp := postJSON(t, hs.URL+"/v1/jobs/analyze", "t", analyzeSpec()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	resp := postJSON(t, hs.URL+"/v1/jobs/analyze", "t", analyzeSpec())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
}

func TestHTTPQuotaIs429(t *testing.T) {
	s, hs := newHTTPServer(t, func(c *Config) {
		c.Tenant = TenantConfig{Rate: 0.001, Burst: 1, MaxConcurrent: 100}
		c.QueueDepth = 16
	})
	defer s.Drain(expiredCtx(t))
	if resp := postJSON(t, hs.URL+"/v1/jobs/analyze", "greedy", analyzeSpec()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	resp := postJSON(t, hs.URL+"/v1/jobs/analyze", "greedy", analyzeSpec())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 carries no Retry-After")
	}
	// A different tenant is not starved by the greedy one.
	if resp := postJSON(t, hs.URL+"/v1/jobs/analyze", "patient", analyzeSpec()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant: HTTP %d, want 202", resp.StatusCode)
	}
}

func TestHTTPReadyzFlipsWhileDraining(t *testing.T) {
	s, hs := newHTTPServer(t, nil)
	s.Start()
	check := func(path string, want int) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: HTTP %d, want %d", path, resp.StatusCode, want)
		}
	}
	check("/healthz", 200)
	check("/readyz", 200)
	s.Drain(expiredCtx(t))
	check("/healthz", 200) // the process is alive even while refusing work
	check("/readyz", http.StatusServiceUnavailable)
	resp := postJSON(t, hs.URL+"/v1/jobs/analyze", "t", analyzeSpec())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d, want 503", resp.StatusCode)
	}
}

func TestHTTPStatsz(t *testing.T) {
	s, hs := newHTTPServer(t, nil)
	s.Start()
	defer s.Drain(expiredCtx(t))
	cl := &Client{BaseURL: hs.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := cl.Run(ctx, analyzeSpec()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Accepted != 1 || st.Completed != 1 {
		t.Fatalf("stats accepted/completed = %d/%d, want 1/1", st.Accepted, st.Completed)
	}
	if st.QueueCap == 0 || st.Workers == 0 {
		t.Fatalf("stats missing capacity figures: %+v", st)
	}
	if _, ok := st.Tenants["anonymous"]; !ok {
		t.Fatal("stats missing the anonymous tenant")
	}
}

// TestReplayRoundTrip records a live run's journal through the facade,
// uploads it, and checks the daemon replays it to the recorded verdict.
func TestReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cfg := haccrg.SmallGPU()
	d := haccrg.DefaultDetection()
	_, err := haccrg.RunBenchmark("psum", haccrg.RunOptions{
		GPU: &cfg, Detection: &d, Inject: []string{"psum.fence0"}, Record: &buf,
	})
	if err != nil {
		t.Fatalf("recording run: %v", err)
	}

	s, hs := newHTTPServer(t, nil)
	s.Start()
	defer s.Drain(expiredCtx(t))
	cl := &Client{BaseURL: hs.URL, Tenant: "t"}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	id, err := cl.SubmitReplay(ctx, buf.Bytes(), "")
	if err != nil {
		t.Fatalf("SubmitReplay: %v", err)
	}
	st, err := cl.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("replay job state = %s (%s), want done", st.State, st.Error)
	}
	if st.Replay == nil {
		t.Fatal("replay job has no summary")
	}
	if st.Replay.Match == nil || !*st.Replay.Match {
		t.Fatalf("replayed verdict does not match the recorded one: %+v", st.Replay)
	}
	if len(st.Replay.Races) == 0 {
		t.Fatal("injected psum.fence0 replayed with no races")
	}
}

func TestClientRetriesHonorRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var slept []time.Duration
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"saturated"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"j1","state":"queued"}`)
	})
	hs := httptest.NewServer(h)
	defer hs.Close()
	cl := &Client{
		BaseURL: hs.URL,
		sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	id, err := cl.Submit(context.Background(), analyzeSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if id != "j1" {
		t.Fatalf("Submit id = %q, want j1", id)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Fatalf("client slept %v, want exactly the server's 7s Retry-After", slept)
	}
}

func TestClientGivesUpEventually(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer hs.Close()
	cl := &Client{
		BaseURL:     hs.URL,
		MaxAttempts: 3,
		sleep:       func(ctx context.Context, d time.Duration) error { return nil },
	}
	_, err := cl.Submit(context.Background(), analyzeSpec())
	if err == nil || !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Fatalf("Submit err = %v, want exhausted retries", err)
	}
}
