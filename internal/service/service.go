// Package service is race-detection-as-a-service: a hardened,
// multi-tenant daemon core around the haccrg job engine. It accepts
// benchmark jobs, uploaded journal streams, and static-analysis
// requests over HTTP+JSON and executes them on the same
// harness.ExecContext job core every CLI uses.
//
// Robustness is the design center, not an afterthought:
//
//   - a bounded job queue with explicit admission control — saturation
//     sheds load with 429 + Retry-After, never unbounded goroutines;
//   - per-tenant token-bucket quotas and concurrent-job caps;
//   - per-job deadlines wired through context into the simulator's
//     cycle-budget/watchdog guard rails;
//   - panic-isolated workers: a crashed job becomes a structured error
//     report, not a dead daemon;
//   - a content-addressed cache of static-analysis reports keyed on
//     program hash;
//   - durable admission (job specs sync to the spool before the 202)
//     and graceful drain: in-flight bench jobs checkpoint through the
//     sweep-manifest resume path and finish byte-identically after a
//     restart.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"haccrg/internal/harness"
	"haccrg/internal/version"
	"haccrg/internal/vfs"
)

// Config parameterizes the daemon. Zero values select the documented
// defaults.
type Config struct {
	// DataDir is the durable root: job spool, manifests, uploaded
	// journals. Required.
	DataDir string
	// FS is the filesystem the spool and job manifests live on (nil =
	// the real one). Chaos campaigns inject a fault-carrying FS here to
	// harden the durability paths.
	FS vfs.FS
	// QueueDepth bounds the admission queue (default 64). A full queue
	// is the backpressure signal: submissions get 429 + Retry-After.
	QueueDepth int
	// Workers is the number of concurrent job executors (default
	// GOMAXPROCS).
	Workers int
	// Tenant bounds each tenant (default: 5 jobs/s sustained, burst
	// 10, 4 concurrent).
	Tenant TenantConfig
	// DefaultDeadline is the per-job wall-clock deadline when the spec
	// requests none (default 5m); MaxDeadline clamps spec requests
	// (default 30m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// CacheEntries bounds the static-report cache (default 128).
	CacheEntries int
	// SmallGPU makes every job run on the 4-SM test device regardless
	// of its spec — the fast configuration tests and smoke jobs use.
	SmallGPU bool
	// Log receives the daemon's decision log (nil = standard logger).
	Log *log.Logger

	// now is the injectable clock (tests); nil = time.Now.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Tenant == (TenantConfig{}) {
		c.Tenant = TenantConfig{Rate: 5, Burst: 10, MaxConcurrent: 4}
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Minute
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Minute
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// job is one admitted unit of work.
type job struct {
	mu     sync.Mutex
	status JobStatus
	spec   *JobSpec
	done   chan struct{}
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	return st
}

func (j *job) setState(state string, at time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status.State = state
	switch state {
	case StateRunning:
		j.status.StartedAt = at
	case StateDone, StateFailed, StateInterrupted:
		j.status.FinishedAt = at
	}
}

// Server is the daemon core. Create with New, serve its Handler, stop
// with Drain.
type Server struct {
	cfg     Config
	spool   *spool
	tenants *tenants
	cache   *reportCache

	queue    chan *job
	stop     chan struct{} // closed by Drain: workers exit once queue is empty
	stopOnce sync.Once

	mu          sync.Mutex
	jobs        map[string]*job
	draining    bool
	outstanding int // admitted jobs not yet terminal (queued + running)

	workers sync.WaitGroup

	jobsCtx    context.Context // cancelled to hard-stop in-flight jobs at drain deadline
	cancelJobs context.CancelFunc

	// counters for /statsz
	accepted     atomic.Int64
	completed    atomic.Int64
	failed       atomic.Int64
	interrupted  atomic.Int64
	panicked     atomic.Int64
	rejQueueFull atomic.Int64
	rejQuota     atomic.Int64
	rejDraining  atomic.Int64
	healthRuns   atomic.Int64
	degradedRuns atomic.Int64

	// self-healing roll-up across every bench run's detector health
	sentinelMismatches atomic.Int64
	engineFallbacks    atomic.Int64
	stalledDrains      atomic.Int64

	// seq is the admission sequence counter: each accepted job records
	// the next value in its spool spec so recovery preserves FIFO order.
	// Initialized past the largest recovered Seq.
	seq atomic.Int64

	// recoveredOrder is the IDs of unfinished jobs re-admitted at
	// startup, in re-admission order — the observable the FIFO-recovery
	// contract (and the chaos campaign's job-drop invariant) is checked
	// against.
	recoveredOrder []string
}

// New builds a Server over DataDir, recovering any jobs a previous
// process accepted but never finished: their specs re-enter the queue,
// and bench jobs resume from their sweep manifests.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: Config.DataDir is required")
	}
	sp, err := openSpool(cfg.FS, cfg.DataDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		spool:      sp,
		tenants:    newTenants(cfg.Tenant, cfg.now),
		cache:      newReportCache(cfg.CacheEntries),
		queue:      make(chan *job, cfg.QueueDepth),
		stop:       make(chan struct{}),
		jobs:       map[string]*job{},
		jobsCtx:    ctx,
		cancelJobs: cancel,
	}
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

// recover reloads the spool: finished jobs become queryable history,
// unfinished ones are re-admitted — in original submission order, the
// spool's Seq ordering — ahead of any new traffic.
func (s *Server) recover() error {
	entries, skipped, err := s.spool.load()
	if err != nil {
		return err
	}
	for _, path := range skipped {
		s.cfg.Log.Printf("service: spool: skipping unreadable entry %s", path)
	}
	requeued := 0
	for _, e := range entries {
		if e.Seq > s.seq.Load() {
			s.seq.Store(e.Seq)
		}
		j := &job{
			spec: e.Spec,
			done: make(chan struct{}),
			status: JobStatus{
				ID: e.ID, Tenant: e.Tenant, Kind: e.Spec.Kind, State: StateQueued,
			},
		}
		if e.Status != nil {
			// Terminal before the restart: history only.
			j.status = *e.Status
			close(j.done)
			s.jobs[e.ID] = j
			continue
		}
		if len(s.queue) == cap(s.queue) {
			// More recovered jobs than queue slots: a misconfigured
			// restart (depth shrank). Refuse rather than silently drop.
			return fmt.Errorf("service: %d recovered jobs exceed queue depth %d", requeued+1, cap(s.queue))
		}
		s.jobs[e.ID] = j
		s.tenants.restore(e.Tenant)
		s.outstanding++
		s.queue <- j
		s.recoveredOrder = append(s.recoveredOrder, e.ID)
		requeued++
	}
	if requeued > 0 {
		s.cfg.Log.Printf("service: recovered %d unfinished job(s) from spool; resuming", requeued)
	}
	return nil
}

// RecoveredOrder returns the IDs of the unfinished jobs this process
// re-admitted at startup, in re-admission order. The contract is FIFO:
// original submission order (the spool's Seq), not directory-listing
// order of the random job IDs.
func (s *Server) RecoveredOrder() []string {
	return append([]string(nil), s.recoveredOrder...)
}

// Start launches the worker pool.
func (s *Server) Start() {
	s.workers.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go func() {
			defer s.workers.Done()
			for {
				select {
				case j := <-s.queue:
					s.runJob(j)
				case <-s.stop:
					// Drain closed the stop gate; finish whatever is
					// still queued, then exit.
					select {
					case j := <-s.queue:
						s.runJob(j)
					default:
						return
					}
				}
			}
		}()
	}
}

// newJobID returns a collision-resistant job identifier.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: job id: %w", err)
	}
	return "j" + hex.EncodeToString(b[:]), nil
}

// admission failure classes surfaced by Submit.
var (
	// ErrDraining: the daemon is shutting down; nothing new is
	// admitted.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrQueueFull: the bounded queue is saturated — the backpressure
	// signal.
	ErrQueueFull = errors.New("service: job queue is full")
)

// Submit runs admission control for a validated spec on behalf of
// tenant and, if every gate passes, durably spools and enqueues the
// job. The returned Retry-After hint is non-zero exactly when err is
// one of the retryable rejections (ErrQueueFull, ErrQuota,
// ErrConcurrency, ErrDraining).
func (s *Server) Submit(tenant string, spec *JobSpec) (id string, retryAfter time.Duration, err error) {
	return s.submit(tenant, spec, nil)
}

// SubmitReplay admits a replay job whose journal bytes come from
// journalBody. The journal is durably stored alongside the spec before
// admission is acknowledged, so a restarted daemon can still execute
// the job.
func (s *Server) SubmitReplay(tenant string, spec *JobSpec, journalBody io.Reader) (id string, retryAfter time.Duration, err error) {
	if spec.Kind != JobReplay {
		return "", 0, fmt.Errorf("service: SubmitReplay requires a %q spec", JobReplay)
	}
	if journalBody == nil {
		return "", 0, fmt.Errorf("service: replay job needs a journal body")
	}
	return s.submit(tenant, spec, journalBody)
}

func (s *Server) submit(tenant string, spec *JobSpec, journalBody io.Reader) (id string, retryAfter time.Duration, err error) {
	if err := spec.validate(); err != nil {
		return "", 0, err
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.rejDraining.Add(1)
		return "", 10 * time.Second, ErrDraining
	}
	if retry, err := s.tenants.admit(tenant); err != nil {
		s.rejQuota.Add(1)
		return "", retry, err
	}
	id, err = newJobID()
	if err != nil {
		s.tenants.refund(tenant)
		return "", 0, err
	}
	// Durability before acknowledgement: once the spec (and, for
	// replay, the journal) is on disk the job survives any crash; only
	// then is it visible and queued. The journal lands first — an
	// orphaned journal without a spec is inert, while a spec whose
	// journal vanished would fail its job.
	if journalBody != nil {
		if err := spoolJournal(s.spool.fsys, s.spool.journalPath(id), journalBody); err != nil {
			s.tenants.refund(tenant)
			return "", 0, err
		}
	}
	if err := s.spool.putSpec(id, s.seq.Add(1), tenant, spec); err != nil {
		s.spool.dropJournal(id)
		s.tenants.refund(tenant)
		return "", 0, err
	}
	j := &job{
		spec: spec,
		done: make(chan struct{}),
		status: JobStatus{
			ID: id, Tenant: tenant, Kind: spec.Kind, State: StateQueued,
			EnqueuedAt: s.cfg.now(),
		},
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.spool.drop(id)
		s.tenants.refund(tenant)
		s.rejDraining.Add(1)
		return "", 10 * time.Second, ErrDraining
	}
	select {
	case s.queue <- j:
		s.jobs[id] = j
		s.outstanding++
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.spool.drop(id)
		s.tenants.refund(tenant)
		s.rejQueueFull.Add(1)
		return "", 2 * time.Second, ErrQueueFull
	}
	s.accepted.Add(1)
	s.cfg.Log.Printf("service: job %s accepted (%s, tenant %s)", id, spec.Kind, tenant)
	return id, 0, nil
}

// JournalPath returns where a replay job's uploaded journal must be
// stored before submission.
func (s *Server) JournalPath(id string) string { return s.spool.journalPath(id) }

// Job returns a job's status snapshot.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return JobStatus{}, false
	}
	return j.snapshot(), true
}

// Jobs lists status snapshots for one tenant (all tenants when tenant
// is empty), newest first by enqueue time.
func (s *Server) Jobs(tenant string) []JobStatus {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		st := j.snapshot()
		if tenant == "" || st.Tenant == tenant {
			out = append(out, st)
		}
	}
	s.mu.Unlock()
	return out
}

// Wait blocks until the job reaches a terminal state or ctx ends.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return JobStatus{}, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return j.snapshot(), ctx.Err()
	}
}

// jobDeadline clamps a spec's requested deadline to policy.
func (s *Server) jobDeadline(spec *JobSpec) time.Duration {
	d := s.cfg.DefaultDeadline
	if spec.TimeoutMS > 0 {
		d = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// runJob executes one job with panic isolation, a deadline, and the
// drain-aware terminal-state protocol: context cancellation from a
// drain leaves the job interrupted-but-resumable (no terminal status
// spooled, checkpoint manifest intact), every other outcome is
// terminal and durably recorded.
func (s *Server) runJob(j *job) {
	st := j.snapshot()
	defer func() {
		if r := recover(); r != nil {
			// A crashed job is a structured error report, not a dead
			// daemon. The worker survives to take the next job.
			s.panicked.Add(1)
			s.finish(j, StateFailed, fmt.Errorf("job panicked: %v", r))
		}
	}()
	j.setState(StateRunning, s.cfg.now())
	ctx, cancel := context.WithTimeout(s.jobsCtx, s.jobDeadline(j.spec))
	defer cancel()

	var err error
	switch j.spec.Kind {
	case JobBench:
		err = s.runBenchJob(ctx, j)
	case JobReplay:
		var sum *ReplaySummary
		sum, err = execReplay(ctx, j.spec, s.spool.journalPath(st.ID))
		if err == nil {
			j.mu.Lock()
			j.status.Replay = sum
			j.mu.Unlock()
		}
	case JobAnalyze:
		var sum *AnalyzeSummary
		var hit bool
		sum, hit, err = execAnalyze(ctx, j.spec, s.cache, s.cfg.SmallGPU)
		if err == nil {
			j.mu.Lock()
			j.status.Analyze = sum
			j.status.CacheHit = hit
			j.mu.Unlock()
		}
	default:
		err = fmt.Errorf("service: unknown job kind %q", j.spec.Kind)
	}

	switch {
	case err == nil:
		s.finish(j, StateDone, nil)
	case s.jobsCtx.Err() != nil && errors.Is(err, context.Canceled):
		// Drained mid-flight: resumable, not failed. The spool spec
		// stays; a restart re-admits the job and the bench manifest
		// serves every pre-drain completion.
		s.interrupted.Add(1)
		j.setState(StateInterrupted, s.cfg.now())
		s.release(j)
		s.cfg.Log.Printf("service: job %s interrupted by drain (resumable)", st.ID)
	default:
		s.finish(j, StateFailed, err)
	}
}

// runBenchJob executes a bench job's sweep against its per-job
// checkpoint manifest and folds health into the daemon roll-up.
func (s *Server) runBenchJob(ctx context.Context, j *job) error {
	st := j.snapshot()
	m, salvage, err := harness.OpenManifestFS(s.spool.fsys, s.spool.manifestPath(st.ID), true)
	if err != nil {
		return err
	}
	defer m.Close()
	if salvage.Records > 0 {
		s.cfg.Log.Printf("service: job %s resuming from manifest (%d checkpointed run(s))", st.ID, salvage.Records)
	}
	runs, err := execBench(ctx, j.spec, m, s.cfg.SmallGPU)
	if err != nil {
		return err
	}
	for _, r := range runs {
		s.healthRuns.Add(1)
		if r.Degraded {
			s.degradedRuns.Add(1)
		}
		s.sentinelMismatches.Add(r.SentinelMismatches)
		s.engineFallbacks.Add(r.EngineFallbacks)
		s.stalledDrains.Add(r.StalledDrains)
	}
	j.mu.Lock()
	j.status.Runs = runs
	j.mu.Unlock()
	return nil
}

// finish moves a job to a terminal state, records it durably, and
// releases its tenant slot.
func (s *Server) finish(j *job, state string, jobErr error) {
	j.mu.Lock()
	j.status.State = state
	j.status.FinishedAt = s.cfg.now()
	if jobErr != nil {
		j.status.Error = jobErr.Error()
	}
	st := j.status
	j.mu.Unlock()
	if err := s.spool.putStatus(&st); err != nil {
		// The result is still served from memory; the restart will
		// re-run the job (idempotent for bench jobs via the manifest).
		s.cfg.Log.Printf("service: job %s: persisting status: %v", st.ID, err)
	}
	switch state {
	case StateDone:
		s.completed.Add(1)
		s.cfg.Log.Printf("service: job %s done", st.ID)
	case StateFailed:
		s.failed.Add(1)
		s.cfg.Log.Printf("service: job %s failed: %v", st.ID, jobErr)
	}
	s.release(j)
}

// release closes the job's done gate and frees its accounting.
func (s *Server) release(j *job) {
	st := j.snapshot()
	s.tenants.release(st.Tenant)
	s.mu.Lock()
	s.outstanding--
	s.mu.Unlock()
	close(j.done)
}

// DrainReport says how a drain ended.
type DrainReport struct {
	// Completed is how many jobs reached a terminal state during the
	// drain window.
	Completed int64
	// Interrupted is how many in-flight jobs were checkpointed when
	// the window closed.
	Interrupted int64
	// Requeued is how many accepted jobs never started; they remain
	// spooled for the next process.
	Requeued int
}

// Drain gracefully shuts the daemon down: admission stops immediately
// (readyz goes not-ready, submissions get 503), queued and running
// jobs are given until ctx ends to finish, and whatever is still in
// flight after that is cancelled — bench jobs checkpoint through their
// manifests and everything unfinished stays spooled, so a restarted
// daemon resumes to byte-identical findings. Drain returns once every
// worker has exited.
func (s *Server) Drain(ctx context.Context) DrainReport {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	s.mu.Unlock()
	if !alreadyDraining {
		s.cfg.Log.Printf("service: draining: admission stopped")
	}

	doneBefore := s.completed.Load() + s.failed.Load()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
wait:
	for {
		s.mu.Lock()
		idle := s.outstanding == 0
		s.mu.Unlock()
		if idle {
			break
		}
		select {
		case <-ctx.Done():
			// Window closed: hard-stop in-flight jobs. They observe the
			// cancellation through their contexts, checkpoint, and are
			// classified interrupted by runJob.
			s.cfg.Log.Printf("service: drain window closed; checkpointing in-flight jobs")
			s.cancelJobs()
			break wait
		case <-tick.C:
		}
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.workers.Wait()

	s.mu.Lock()
	requeued := 0
	for _, j := range s.jobs {
		if st := j.snapshot(); st.State == StateQueued {
			requeued++
		}
	}
	s.mu.Unlock()
	rep := DrainReport{
		Completed:   s.completed.Load() + s.failed.Load() - doneBefore,
		Interrupted: s.interrupted.Load(),
		Requeued:    requeued,
	}
	s.cfg.Log.Printf("service: drained: %d completed, %d interrupted (resumable), %d still queued",
		rep.Completed, rep.Interrupted, rep.Requeued)
	return rep
}

// Draining reports whether admission is stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats is the /statsz snapshot.
type Stats struct {
	Version  string `json:"version"`
	Draining bool   `json:"draining"`

	QueueLen   int            `json:"queue_len"`
	QueueCap   int            `json:"queue_cap"`
	Workers    int            `json:"workers"`
	InFlight   int            `json:"in_flight"` // queued + running
	KnownJobs  int            `json:"known_jobs"`
	JobsStates map[string]int `json:"jobs_by_state"`

	Accepted    int64 `json:"accepted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Interrupted int64 `json:"interrupted"`
	Panicked    int64 `json:"panicked"`

	Rejected struct {
		QueueFull int64 `json:"queue_full"`
		Quota     int64 `json:"quota"`
		Draining  int64 `json:"draining"`
	} `json:"rejected"`

	Cache   CacheStats             `json:"cache"`
	Tenants map[string]TenantStats `json:"tenants"`

	// Health is the DetectorHealth roll-up over every bench run the
	// daemon executed: how many ran, how many ran degraded (their
	// findings may under-report), and the self-healing incident
	// counters — divergence-sentinel mismatches, drain-stall watchdog
	// firings, and engine fallbacks to serial.
	Health struct {
		Runs               int64 `json:"runs"`
		Degraded           int64 `json:"degraded"`
		SentinelMismatches int64 `json:"sentinel_mismatches"`
		StalledDrains      int64 `json:"stalled_drains"`
		EngineFallbacks    int64 `json:"engine_fallbacks"`
	} `json:"health"`
}

// Stats snapshots the daemon.
func (s *Server) Stats() Stats {
	st := Stats{
		Version:  version.Version,
		Draining: s.Draining(),
		QueueLen: len(s.queue),
		QueueCap: cap(s.queue),
		Workers:  s.cfg.Workers,

		Accepted:    s.accepted.Load(),
		Completed:   s.completed.Load(),
		Failed:      s.failed.Load(),
		Interrupted: s.interrupted.Load(),
		Panicked:    s.panicked.Load(),
		Cache:       s.cache.stats(),
		Tenants:     s.tenants.snapshot(),
		JobsStates:  map[string]int{},
	}
	st.Rejected.QueueFull = s.rejQueueFull.Load()
	st.Rejected.Quota = s.rejQuota.Load()
	st.Rejected.Draining = s.rejDraining.Load()
	st.Health.Runs = s.healthRuns.Load()
	st.Health.Degraded = s.degradedRuns.Load()
	st.Health.SentinelMismatches = s.sentinelMismatches.Load()
	st.Health.StalledDrains = s.stalledDrains.Load()
	st.Health.EngineFallbacks = s.engineFallbacks.Load()
	s.mu.Lock()
	st.InFlight = s.outstanding
	st.KnownJobs = len(s.jobs)
	for _, j := range s.jobs {
		st.JobsStates[j.snapshot().State]++
	}
	s.mu.Unlock()
	return st
}
