package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"haccrg/internal/gpu"
	"haccrg/internal/harness"
	"haccrg/internal/journal"
	"haccrg/internal/kernels"
	"haccrg/internal/staticrace"
)

// JobKind names the three workloads the daemon executes.
type JobKind string

// Job kinds.
const (
	// JobBench simulates one or more benchmarks under a detector
	// configuration — the journaled job class: every completed run is
	// checkpointed to a per-job manifest, so a drain or crash mid-job
	// resumes instead of restarting.
	JobBench JobKind = "bench"
	// JobReplay feeds an uploaded event journal through a detector
	// offline and compares the replayed verdict with the recorded one.
	JobReplay JobKind = "replay"
	// JobAnalyze runs the static race analyzer (CFG, lint passes,
	// race-freedom prover) over a benchmark's kernels without
	// simulating; results are served from the content-addressed report
	// cache when the program hash matches a prior submission.
	JobAnalyze JobKind = "analyze"
)

// JobSpec is a submitted job: the client-controlled description of
// what to execute. It is the durable identity of the job — specs are
// spooled to disk before admission is acknowledged, so an accepted job
// survives a daemon restart.
type JobSpec struct {
	Kind JobKind `json:"kind"`

	// Benches are the benchmark names to run or analyze (bench and
	// analyze kinds). A bench job runs them as one sweep under one
	// manifest.
	Benches []string `json:"benches,omitempty"`
	// Detector is the harness.DetectorKind to run under (bench kind;
	// default shared+global). For replay jobs it overrides the
	// journaled detector when non-empty.
	Detector string `json:"detector,omitempty"`

	Scale             int      `json:"scale,omitempty"`
	SingleBlock       bool     `json:"single_block,omitempty"`
	Inject            []string `json:"inject,omitempty"`
	SharedGranularity int      `json:"shared_granularity,omitempty"`
	GlobalGranularity int      `json:"global_granularity,omitempty"`
	DetectParallel    bool     `json:"detect_parallel,omitempty"`
	// DetectParallelShared shards the shared-memory RDUs per SM (the
	// shared-engine counterpart of detect_parallel).
	DetectParallelShared bool `json:"detect_parallel_shared,omitempty"`
	SentinelEvery        int  `json:"sentinel_every,omitempty"`
	StaticFilter         bool `json:"static_filter,omitempty"`
	// WitnessSeed pre-seeds the detector's global RDU with the static
	// analyzer's verified race witnesses, so statically-proven racy
	// granules report on first touch with StaticWitness provenance.
	WitnessSeed bool   `json:"witness_seed,omitempty"`
	FaultPlan   string `json:"fault_plan,omitempty"`
	FaultSeed   int64  `json:"fault_seed,omitempty"`
	Degradation string `json:"degradation,omitempty"`

	// SmallGPU runs on the 4-SM test device instead of the Table I
	// machine.
	SmallGPU bool `json:"small_gpu,omitempty"`
	// MaxCycles bounds each run's simulated clock (0 = server default).
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// TimeoutMS requests a per-job wall-clock deadline in milliseconds;
	// the server clamps it to its configured maximum. 0 means the
	// server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Job states.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted" // drained mid-flight; resumes on restart
)

// RunSummary is one benchmark run's findings inside a bench job: the
// serializable verdict the byte-identical-resume invariant is stated
// over.
type RunSummary struct {
	Bench    string   `json:"bench"`
	Detector string   `json:"detector"`
	Cycles   int64    `json:"cycles"`
	Races    []string `json:"races"`
	Attempts int      `json:"attempts"`
	// Resumed is true when this run was served from the job's manifest
	// (a pre-drain completion) rather than simulated in this process.
	Resumed bool `json:"resumed,omitempty"`
	// Degraded is true when the detector's health report shows dropped
	// checks, corruption, or quarantines — findings may under-report.
	Degraded bool `json:"degraded,omitempty"`
	// Self-healing incident counters from the detector's health report:
	// divergence-sentinel mismatches, drain-stall watchdog firings, and
	// permanent fallbacks to the serial engine during this run.
	SentinelMismatches int64 `json:"sentinel_mismatches,omitempty"`
	StalledDrains      int64 `json:"stalled_drains,omitempty"`
	EngineFallbacks    int64 `json:"engine_fallbacks,omitempty"`
}

// ReplaySummary is a replay job's outcome.
type ReplaySummary struct {
	Detector  string   `json:"detector"`
	Kernels   int      `json:"kernels"`
	MemEvents int      `json:"mem_events"`
	Truncated bool     `json:"truncated,omitempty"`
	Races     []string `json:"races"`
	// Match reports the replay-equals-live oracle: true when the
	// journal recorded a verdict and the replayed one equals it byte
	// for byte. Nil when the journal holds no verdict to compare.
	Match *bool `json:"match,omitempty"`
}

// AnalyzeSummary is a static-analysis job's outcome.
type AnalyzeSummary struct {
	// ProgramHash is the content address of the analyzed kernels: the
	// SHA-256 of their canonical disassembly plus the analyzer
	// configuration. Identical programs hash identically, so repeat
	// submissions are served from the report cache without re-proving.
	ProgramHash string `json:"program_hash"`
	Findings    int    `json:"findings"`
	// Witnesses counts the checker-verified race witnesses across all
	// analyzed kernels (each one a concrete racing thread pair).
	Witnesses int `json:"witnesses"`
	// Report is the full staticrace suite report, embedded verbatim.
	Report json.RawMessage `json:"report"`
}

// JobStatus is the client-visible state of a job, also the durable
// completion record the spool persists.
type JobStatus struct {
	ID     string  `json:"id"`
	Tenant string  `json:"tenant"`
	Kind   JobKind `json:"kind"`
	State  string  `json:"state"`
	Error  string  `json:"error,omitempty"`

	Runs     []RunSummary    `json:"runs,omitempty"`
	Replay   *ReplaySummary  `json:"replay,omitempty"`
	Analyze  *AnalyzeSummary `json:"analyze,omitempty"`
	CacheHit bool            `json:"cache_hit,omitempty"`

	EnqueuedAt time.Time `json:"enqueued_at"`
	StartedAt  time.Time `json:"started_at,omitempty"`
	FinishedAt time.Time `json:"finished_at,omitempty"`
}

// validate rejects malformed specs at admission, before any resources
// are committed to them.
func (sp *JobSpec) validate() error {
	switch sp.Kind {
	case JobBench, JobAnalyze:
		if len(sp.Benches) == 0 {
			return fmt.Errorf("service: %s job needs at least one benchmark", sp.Kind)
		}
		for _, b := range sp.Benches {
			if kernels.Get(b) == nil {
				return fmt.Errorf("service: unknown benchmark %q", b)
			}
		}
	case JobReplay:
		// The journal body is validated at execution; nothing to check
		// up front beyond the kind itself.
	default:
		return fmt.Errorf("service: unknown job kind %q", sp.Kind)
	}
	if sp.TimeoutMS < 0 || sp.MaxCycles < 0 || sp.Scale < 0 || sp.SentinelEvery < 0 {
		return fmt.Errorf("service: negative limits are not valid")
	}
	switch sp.Degradation {
	case "", "quarantine", "reinit":
	default:
		return fmt.Errorf("service: unknown degradation policy %q", sp.Degradation)
	}
	return nil
}

// runConfigs expands a bench spec into the harness configurations its
// sweep executes — deterministically, so the same spec always maps to
// the same manifest keys and a resumed job lines up with its
// checkpoint.
func (sp *JobSpec) runConfigs(smallGPU bool) []harness.RunConfig {
	det := harness.DetectorKind(sp.Detector)
	if det == "" {
		det = harness.DetSharedGlobal
	}
	var cfg *gpu.Config
	if sp.SmallGPU || smallGPU {
		c := gpu.TestConfig()
		cfg = &c
	}
	cfgs := make([]harness.RunConfig, 0, len(sp.Benches))
	for _, b := range sp.Benches {
		cfgs = append(cfgs, harness.RunConfig{
			Bench:                b,
			Detector:             det,
			Scale:                sp.Scale,
			SingleBlock:          sp.SingleBlock,
			Inject:               sp.Inject,
			SharedGranularity:    sp.SharedGranularity,
			GlobalGranularity:    sp.GlobalGranularity,
			DetectParallel:       sp.DetectParallel,
			DetectParallelShared: sp.DetectParallelShared,
			SentinelEvery:        sp.SentinelEvery,
			StaticFilter:         sp.StaticFilter,
			WitnessSeed:          sp.WitnessSeed,
			GPU:                  cfg,
			FaultPlan:            sp.FaultPlan,
			FaultSeed:            sp.FaultSeed,
			Degradation:          sp.Degradation,
			MaxCycles:            sp.MaxCycles,
		})
	}
	return cfgs
}

// execBench runs a bench job's sweep against its per-job manifest.
// Completed configurations already in the manifest are served from it
// (Resumed=true); fresh completions are appended and synced one by
// one, so a cancellation at any point leaves resumable state.
func execBench(ctx context.Context, sp *JobSpec, m *harness.Manifest, smallGPU bool) ([]RunSummary, error) {
	cfgs := sp.runConfigs(smallGPU)
	resumable := make([]bool, len(cfgs))
	if m != nil {
		for i, rc := range cfgs {
			_, resumable[i] = m.Lookup(harness.WithSweepDefaults(rc))
		}
	}
	results, err := harness.Sweep(ctx, cfgs, m)
	if err != nil {
		return nil, err
	}
	out := make([]RunSummary, 0, len(results))
	for i, r := range results {
		races := make([]string, 0, len(r.Races))
		for _, race := range r.Races {
			races = append(races, race.String())
		}
		sum := RunSummary{
			Bench:    r.Config.Bench,
			Detector: string(r.Config.Detector),
			Cycles:   r.Stats.Cycles,
			Races:    races,
			Attempts: r.Attempts,
			Resumed:  resumable[i],
			Degraded: r.Health != nil && r.Health.Degraded,
		}
		if r.Health != nil {
			sum.SentinelMismatches = r.Health.SentinelMismatches
			sum.StalledDrains = r.Health.StalledDrains
			sum.EngineFallbacks = r.Health.EngineFallbacks
		}
		out = append(out, sum)
	}
	return out, nil
}

// execReplay replays an uploaded journal through the recorded detector
// (or an override) and reports the oracle verdict.
func execReplay(ctx context.Context, sp *JobSpec, journalPath string) (*ReplaySummary, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	meta, err := readJournalMeta(journalPath)
	if err != nil {
		return nil, err
	}
	rc := harness.RunConfig{Detector: harness.DetSharedGlobal}
	if meta != nil {
		rc = harness.RunConfig{
			Bench:             meta.Bench,
			Detector:          harness.DetectorKind(meta.Detector),
			SharedGranularity: meta.SharedGranularity,
			GlobalGranularity: meta.GlobalGranularity,
			FaultPlan:         meta.FaultPlan,
			FaultSeed:         meta.FaultSeed,
			Degradation:       meta.Degradation,
		}
	}
	if sp.Detector != "" {
		rc.Detector = harness.DetectorKind(sp.Detector)
	}
	det, err := harness.DetectorFor(rc)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(journalPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := journal.Replay(f, det)
	if err != nil {
		return nil, err
	}
	sum := &ReplaySummary{
		Detector:  string(rc.Detector),
		Kernels:   res.Kernels,
		MemEvents: res.MemEvents,
		Truncated: res.Salvage.Truncated,
		Races:     append([]string{}, res.Replayed...),
	}
	if res.Recorded != nil {
		match := res.Match
		sum.Match = &match
	}
	return sum, nil
}

// readJournalMeta scans a journal file for its meta record (nil when
// none survived — replay still works, just with the default detector).
func readJournalMeta(path string) (*journal.Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := journal.NewReader(f)
	if err != nil {
		return nil, err
	}
	for {
		payload, err := r.Next()
		if err != nil {
			return nil, nil
		}
		rec, err := journal.DecodeRecord(payload)
		if err != nil {
			return nil, nil
		}
		if rec.Type == journal.RecMeta {
			return rec.Meta, nil
		}
	}
}

// analyzeConf is the analyzer configuration a spec implies.
func (sp *JobSpec) analyzeConf(smallGPU bool) (staticrace.Config, gpu.Config) {
	cfg := gpu.DefaultConfig()
	if sp.SmallGPU || smallGPU {
		cfg = gpu.TestConfig()
	}
	conf := staticrace.Config{
		WarpSize:          cfg.WarpSize,
		WarpAware:         true,
		SharedGranularity: sp.SharedGranularity,
		GlobalGranularity: sp.GlobalGranularity,
	}
	if conf.SharedGranularity == 0 {
		conf.SharedGranularity = 16
	}
	if conf.GlobalGranularity == 0 {
		conf.GlobalGranularity = 4
	}
	return conf, cfg
}

// buildKernels builds the spec's benchmark plans without running them
// and returns every kernel in deterministic (bench, plan) order.
func (sp *JobSpec) buildKernels(cfg gpu.Config) ([]*gpu.Kernel, error) {
	var out []*gpu.Kernel
	scale := sp.Scale
	if scale < 1 {
		scale = 1
	}
	p := kernels.Params{Scale: scale, SingleBlock: sp.SingleBlock}
	if len(sp.Inject) > 0 {
		p.Inject = make(map[string]bool, len(sp.Inject))
		for _, id := range sp.Inject {
			p.Inject[id] = true
		}
	}
	for _, b := range sp.Benches {
		bm := kernels.Get(b)
		if bm == nil {
			return nil, fmt.Errorf("service: unknown benchmark %q", b)
		}
		dev, err := gpu.NewDevice(cfg, bm.GlobalBytes(scale), nil)
		if err != nil {
			return nil, err
		}
		plan, err := bm.Build(dev, p)
		if err != nil {
			return nil, err
		}
		out = append(out, plan.Kernels...)
	}
	return out, nil
}

// programHash content-addresses a set of kernels under an analyzer
// configuration: the SHA-256 of each kernel's identity (name, launch
// geometry, shared allocation, parameters) and canonical disassembly,
// plus the granularities and warp size the prover models. Two
// submissions that assemble the same programs hash identically no
// matter which benchmark names produced them.
func programHash(conf staticrace.Config, ks []*gpu.Kernel) string {
	h := sha256.New()
	fmt.Fprintf(h, "haccrg-analyze/2 warp=%d aware=%t sg=%d gg=%d\n",
		conf.WarpSize, conf.WarpAware, conf.SharedGranularity, conf.GlobalGranularity)
	for _, k := range ks {
		fmt.Fprintf(h, "kernel %s grid=%d block=%d shared=%d params=%v\n",
			k.Name, k.GridDim, k.BlockDim, k.SharedBytes, k.Params)
		for pc := range k.Prog.Code {
			fmt.Fprintf(h, "%d %s\n", pc, k.Prog.Code[pc].String())
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// execAnalyze runs (or serves from cache) a static-analysis job.
func execAnalyze(ctx context.Context, sp *JobSpec, cache *reportCache, smallGPU bool) (*AnalyzeSummary, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	conf, cfg := sp.analyzeConf(smallGPU)
	ks, err := sp.buildKernels(cfg)
	if err != nil {
		return nil, false, err
	}
	hash := programHash(conf, ks)
	if cache != nil {
		if rep, findings, witnesses, ok := cache.get(hash); ok {
			return &AnalyzeSummary{ProgramHash: hash, Findings: findings, Witnesses: witnesses, Report: rep}, true, nil
		}
	}
	var analyses []*staticrace.Analysis
	for _, k := range ks {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		a, err := staticrace.Analyze(k, conf)
		if err != nil {
			return nil, false, fmt.Errorf("service: static analysis of kernel %s: %w", k.Name, err)
		}
		analyses = append(analyses, a)
	}
	rep := staticrace.BuildReport(analyses, true)
	raw := json.RawMessage(rep.JSON())
	if cache != nil {
		cache.put(hash, raw, rep.Findings, rep.Witnesses)
	}
	return &AnalyzeSummary{ProgramHash: hash, Findings: rep.Findings, Witnesses: rep.Witnesses, Report: raw}, false, nil
}

// BenchNames returns the simulator's benchmark suite in canonical
// order — what a client sees on the discovery endpoint.
func BenchNames() []string {
	var out []string
	for _, b := range kernels.All() {
		out = append(out, b.Name)
	}
	sort.Strings(out)
	return out
}
