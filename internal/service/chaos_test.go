package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestClientCancelMidBackoff pins the retry loop's context contract:
// when the caller cancels while the client is sleeping out a backoff,
// the call must return promptly with the context error wrapped (so
// errors.Is sees context.Canceled), not sit out the full backoff.
func TestClientCancelMidBackoff(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	cl := &Client{
		BaseURL:     hs.URL,
		MaxAttempts: 5,
		BaseBackoff: time.Hour, // without prompt cancellation the test times out
		// sleep deliberately nil: the real timer path is under test.
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond) // let the first 503 land and backoff start
		cancel()
	}()
	start := time.Now()
	_, err := cl.Submit(ctx, analyzeSpec())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Submit succeeded against an always-503 server")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Submit took %v to notice cancellation; the backoff sleep is not context-aware", elapsed)
	}
}

// TestSpoolRecoveryFIFO pins satellite: recovery re-admits unfinished
// jobs in original submission order (ascending Seq), not directory
// order. The IDs are chosen so lexicographic directory order is the
// exact reverse of admission order.
func TestSpoolRecoveryFIFO(t *testing.T) {
	dir := t.TempDir()
	sp, err := openSpool(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"jzz", "jmm", "jaa"} // admission order; glob order is jaa,jmm,jzz
	for i, id := range ids {
		if err := sp.putSpec(id, int64(i+1), "t", analyzeSpec()); err != nil {
			t.Fatal(err)
		}
	}
	entries, skipped, err := sp.load()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped %v", skipped)
	}
	if len(entries) != len(ids) {
		t.Fatalf("loaded %d entries, want %d", len(entries), len(ids))
	}
	for i, e := range entries {
		if e.ID != ids[i] {
			t.Fatalf("entry %d = %s, want %s (submission order, not directory order)", i, e.ID, ids[i])
		}
	}
}

// TestServerRecoveryFIFO drives the same contract end to end: jobs
// submitted to a daemon that never ran them come back, in order, on a
// fresh daemon over the same spool — and the seq counter resumes past
// the recovered jobs so new admissions sort after them.
func TestServerRecoveryFIFO(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Server {
		s, err := New(Config{DataDir: dir, SmallGPU: true, Tenant: openTenants, Log: testLogger(t)})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := mk() // workers never started: everything stays queued
	var acked []string
	for i := 0; i < 5; i++ {
		id, _, err := s1.Submit("t", analyzeSpec())
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		acked = append(acked, id)
	}

	s2 := mk()
	rec := s2.RecoveredOrder()
	if len(rec) != len(acked) {
		t.Fatalf("recovered %d jobs %v, want %d %v", len(rec), rec, len(acked), acked)
	}
	for i := range acked {
		if rec[i] != acked[i] {
			t.Fatalf("recovery order %v diverges from submission order %v at %d", rec, acked, i)
		}
	}
	// New admissions must sort after every recovered job on the next
	// recovery — the counter may not restart at 1.
	late, _, err := s2.Submit("t", analyzeSpec())
	if err != nil {
		t.Fatal(err)
	}
	s3 := mk()
	rec3 := s3.RecoveredOrder()
	if len(rec3) != len(acked)+1 || rec3[len(rec3)-1] != late {
		t.Fatalf("post-recovery admission %s must recover last: %v", late, rec3)
	}
}
