package service

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"haccrg/internal/vfs"
)

// The spool is the daemon's durable job store: an accepted job's spec
// is written and synced here before the 202 goes out, its status
// record lands here when it reaches a terminal state, and anything
// with a spec but no terminal status is re-admitted on startup. That
// is the whole never-drop-an-accepted-job contract: the spool entry,
// plus the per-job sweep manifest for bench jobs, is exactly the state
// a restart needs to finish the work.
//
// Every spool I/O goes through a vfs.FS (the real filesystem in
// production) so chaos campaigns can interpose fault injection —
// short writes, failed fsyncs, torn renames, crashes between ops.
//
// Layout under dir:
//
//	jobs/<id>.spec.json    the accepted JobSpec + identity (synced)
//	jobs/<id>.status.json  the terminal JobStatus (synced)
//	jobs/<id>.manifest     bench jobs: the sweep checkpoint (PR 3 format)
//	jobs/<id>.journal      replay jobs: the uploaded journal bytes
type spool struct {
	dir  string
	fsys vfs.FS
}

// spoolSpec is the durable admission record. Seq is the admission
// sequence number: recovery re-admits unfinished jobs in ascending Seq
// — original submission order — not in directory-listing order of
// their random IDs. Older spools without Seq (all zero) fall back to
// ID order, matching their pre-Seq behavior.
type spoolSpec struct {
	ID     string   `json:"id"`
	Seq    int64    `json:"seq,omitempty"`
	Tenant string   `json:"tenant"`
	Spec   *JobSpec `json:"spec"`
}

func openSpool(fsys vfs.FS, dir string) (*spool, error) {
	fsys = vfs.Default(fsys)
	if err := fsys.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("service: spool: %w", err)
	}
	return &spool{dir: dir, fsys: fsys}, nil
}

func (s *spool) specPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".spec.json")
}
func (s *spool) statusPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".status.json")
}

// manifestPath is the bench job's sweep checkpoint file.
func (s *spool) manifestPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".manifest")
}

// journalPath is the replay job's uploaded journal.
func (s *spool) journalPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".journal")
}

// writeSynced writes data to path through a temp file, fsyncs, and
// renames — a crash leaves either the old file or the new one, never a
// torn half of each. An fsync failure is a hard write failure: the
// temp file is removed and the target untouched.
func writeSynced(fsys vfs.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.Rename(tmp, path)
}

// putSpec durably records an accepted job under its admission sequence
// number. Admission must not be acknowledged before this returns.
func (s *spool) putSpec(id string, seq int64, tenant string, spec *JobSpec) error {
	data, err := json.Marshal(&spoolSpec{ID: id, Seq: seq, Tenant: tenant, Spec: spec})
	if err != nil {
		return fmt.Errorf("service: spool spec: %w", err)
	}
	return writeSynced(s.fsys, s.specPath(id), data)
}

// putStatus durably records a terminal status.
func (s *spool) putStatus(st *JobStatus) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("service: spool status: %w", err)
	}
	return writeSynced(s.fsys, s.statusPath(st.ID), data)
}

// drop removes every trace of a job that was never fully admitted
// (e.g. spec persisted, then the queue turned out to be full).
func (s *spool) drop(id string) {
	s.fsys.Remove(s.specPath(id))
	s.fsys.Remove(s.journalPath(id))
}

// dropJournal removes just the uploaded journal (spec write failed
// after the journal landed).
func (s *spool) dropJournal(id string) {
	s.fsys.Remove(s.journalPath(id))
}

// spoolJournal streams an uploaded journal to path and syncs it, via
// the same temp-and-rename discipline as every other spool write.
func spoolJournal(fsys vfs.FS, path string, src io.Reader) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, src); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("service: spool journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.Rename(tmp, path)
}

// spoolEntry is one recovered job: its admission record and, when the
// job finished before the restart, its terminal status.
type spoolEntry struct {
	spoolSpec
	Status *JobStatus
}

// load recovers every spooled job in admission order: ascending Seq,
// ID as the tiebreak (and as the whole order for pre-Seq spools).
// Unreadable specs are skipped with their paths reported, not fatal —
// one corrupt file must not hold the daemon down.
func (s *spool) load() (entries []spoolEntry, skipped []string, err error) {
	glob, err := s.fsys.Glob(filepath.Join(s.dir, "jobs", "*.spec.json"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(glob)
	for _, path := range glob {
		data, rerr := s.fsys.ReadFile(path)
		if rerr != nil {
			skipped = append(skipped, path)
			continue
		}
		var sp spoolSpec
		if jerr := json.Unmarshal(data, &sp); jerr != nil || sp.ID == "" || sp.Spec == nil {
			skipped = append(skipped, path)
			continue
		}
		if want := s.specPath(sp.ID); want != path && !strings.HasSuffix(path, filepath.Base(want)) {
			skipped = append(skipped, path)
			continue
		}
		e := spoolEntry{spoolSpec: sp}
		if sdata, serr := s.fsys.ReadFile(s.statusPath(sp.ID)); serr == nil {
			var st JobStatus
			if json.Unmarshal(sdata, &st) == nil && st.ID == sp.ID {
				e.Status = &st
			}
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Seq != entries[j].Seq {
			return entries[i].Seq < entries[j].Seq
		}
		return entries[i].ID < entries[j].ID
	})
	return entries, skipped, nil
}
