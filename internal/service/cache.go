package service

import (
	"container/list"
	"encoding/json"
	"sync"
)

// reportCache is the content-addressed static-analysis cache: report
// JSON keyed on program hash, LRU-bounded so a stream of distinct
// programs cannot grow the daemon without limit. Static analysis is a
// pure function of the program and the analyzer configuration (both
// folded into the key), so a hit is exact — repeat submissions skip
// the prover entirely.
type reportCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	m      map[string]*list.Element
	hits   int64
	misses int64
}

type cacheEntry struct {
	key       string
	report    json.RawMessage
	findings  int
	witnesses int
}

// CacheStats is the cache's /statsz snapshot.
type CacheStats struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

func newReportCache(capacity int) *reportCache {
	if capacity < 1 {
		capacity = 1
	}
	return &reportCache{cap: capacity, ll: list.New(), m: map[string]*list.Element{}}
}

// get returns the cached report, finding count, and verified witness
// count for a program hash.
func (c *reportCache) get(key string) (json.RawMessage, int, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, 0, 0, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.report, e.findings, e.witnesses, true
}

// put inserts (or refreshes) a report, evicting the least recently
// used entry past capacity.
func (c *reportCache) put(key string, report json.RawMessage, findings, witnesses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.report = report
		e.findings = findings
		e.witnesses = witnesses
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, report: report, findings: findings, witnesses: witnesses})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// stats snapshots the cache counters.
func (c *reportCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: c.ll.Len(), Hits: c.hits, Misses: c.misses}
}
