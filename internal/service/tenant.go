package service

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// TenantConfig bounds what one tenant can do to the daemon. The quota
// is a token bucket over admissions (sustained Rate jobs/sec with
// Burst headroom) plus a cap on jobs in flight; both exist so one
// hot tenant degrades into its own 429s instead of starving everyone
// else or growing the queue without bound.
type TenantConfig struct {
	// Rate is the sustained admission rate in jobs per second
	// (<= 0 disables the rate quota).
	Rate float64 `json:"rate"`
	// Burst is the bucket capacity — how many admissions a tenant can
	// front-load before the rate limit bites (min 1 when Rate is on).
	Burst int `json:"burst"`
	// MaxConcurrent caps a tenant's queued+running jobs
	// (<= 0 = unlimited).
	MaxConcurrent int `json:"max_concurrent"`
}

// Admission rejections, distinguished so the HTTP layer can map them
// to precise responses and the stats can count them separately.
var (
	// ErrQuota: the tenant's token bucket is empty. Retryable after the
	// hinted refill interval.
	ErrQuota = errors.New("service: tenant admission quota exhausted")
	// ErrConcurrency: the tenant is at its concurrent-job cap.
	// Retryable once one of its jobs finishes.
	ErrConcurrency = errors.New("service: tenant concurrent-job cap reached")
)

// TenantStats is one tenant's usage snapshot for /statsz.
type TenantStats struct {
	Active   int     `json:"active"`
	Admitted int64   `json:"admitted"`
	Rejected int64   `json:"rejected"`
	Tokens   float64 `json:"tokens"`
}

// tenants is the registry of per-tenant buckets. Time is injected so
// tests can drive refill deterministically.
type tenants struct {
	mu  sync.Mutex
	cfg TenantConfig
	m   map[string]*tenant
	now func() time.Time
}

type tenant struct {
	tokens   float64
	last     time.Time
	active   int
	admitted int64
	rejected int64
}

func newTenants(cfg TenantConfig, now func() time.Time) *tenants {
	if cfg.Rate > 0 && cfg.Burst < 1 {
		cfg.Burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &tenants{cfg: cfg, m: map[string]*tenant{}, now: now}
}

// refill advances t's bucket to the current instant.
func (ts *tenants) refill(t *tenant, at time.Time) {
	if ts.cfg.Rate <= 0 {
		return
	}
	dt := at.Sub(t.last).Seconds()
	if dt > 0 {
		t.tokens = math.Min(float64(ts.cfg.Burst), t.tokens+dt*ts.cfg.Rate)
		t.last = at
	}
}

// admit charges one admission to name. On success the tenant holds an
// active slot until release. On failure it returns ErrQuota or
// ErrConcurrency plus the interval after which retrying could succeed
// (the Retry-After hint).
func (ts *tenants) admit(name string) (time.Duration, error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	at := ts.now()
	t := ts.m[name]
	if t == nil {
		t = &tenant{tokens: float64(ts.cfg.Burst), last: at}
		ts.m[name] = t
	}
	ts.refill(t, at)
	if ts.cfg.MaxConcurrent > 0 && t.active >= ts.cfg.MaxConcurrent {
		t.rejected++
		// No refill schedule to predict: a slot opens when a job ends.
		return time.Second, fmt.Errorf("%w (%d in flight)", ErrConcurrency, t.active)
	}
	if ts.cfg.Rate > 0 && t.tokens < 1 {
		t.rejected++
		wait := time.Duration((1 - t.tokens) / ts.cfg.Rate * float64(time.Second))
		if wait < time.Second {
			wait = time.Second
		}
		return wait, ErrQuota
	}
	if ts.cfg.Rate > 0 {
		t.tokens--
	}
	t.active++
	t.admitted++
	return 0, nil
}

// refund undoes an admit whose job was never accepted (e.g. the global
// queue was full): the token goes back and the active slot frees, so a
// shed job does not burn the tenant's quota.
func (ts *tenants) refund(name string) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t := ts.m[name]; t != nil {
		if ts.cfg.Rate > 0 {
			t.tokens = math.Min(float64(ts.cfg.Burst), t.tokens+1)
		}
		if t.active > 0 {
			t.active--
		}
		t.admitted--
		t.rejected++
	}
}

// release frees the active slot admit took, when its job finishes (in
// any terminal state).
func (ts *tenants) release(name string) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t := ts.m[name]; t != nil && t.active > 0 {
		t.active--
	}
}

// restore re-registers an active job after a daemon restart (spooled
// jobs re-enter the queue already admitted; their tenants must still
// count them against the concurrency cap).
func (ts *tenants) restore(name string) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	at := ts.now()
	t := ts.m[name]
	if t == nil {
		t = &tenant{tokens: float64(ts.cfg.Burst), last: at}
		ts.m[name] = t
	}
	t.active++
	t.admitted++
}

// snapshot renders per-tenant usage with names sorted for stable
// output.
func (ts *tenants) snapshot() map[string]TenantStats {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	at := ts.now()
	names := make([]string, 0, len(ts.m))
	for n := range ts.m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make(map[string]TenantStats, len(names))
	for _, n := range names {
		t := ts.m[n]
		ts.refill(t, at)
		out[n] = TenantStats{
			Active:   t.active,
			Admitted: t.admitted,
			Rejected: t.rejected,
			Tokens:   math.Round(t.tokens*100) / 100,
		}
	}
	return out
}
