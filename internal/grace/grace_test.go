package grace

import (
	"testing"

	"haccrg/internal/core"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// sharedRaceKernel: warp 0 writes shared, warp 1 reads it, no barrier.
func sharedRaceKernel() *gpu.Kernel {
	b := isa.NewBuilder("sr")
	b.Sreg(1, isa.SregTid)
	b.Setpi(0, isa.CmpLT, 1, 32)
	b.If(0)
	b.Muli(2, 1, 4)
	b.St(isa.SpaceShared, 2, 0, 1, 4)
	b.EndIf()
	b.Setpi(1, isa.CmpGE, 1, 32)
	b.If(1)
	b.Subi(3, 1, 32)
	b.Muli(2, 3, 4)
	b.Ld(3, isa.SpaceShared, 2, 0, 4)
	b.EndIf()
	b.Exit()
	return &gpu.Kernel{Name: "sr", Prog: b.MustBuild(), GridDim: 1, BlockDim: 64, SharedBytes: 256}
}

func opts() core.Options {
	o := core.DefaultOptions()
	o.SharedGranularity = 4
	return o
}

func TestDetectsSharedRaces(t *testing.T) {
	g := MustNew(opts(), DefaultCostModel)
	dev := gpu.MustNewDevice(gpu.TestConfig(), 1<<16, g)
	if _, err := dev.Launch(sharedRaceKernel()); err != nil {
		t.Fatal(err)
	}
	if len(g.Races()) == 0 {
		t.Fatal("GRace model missed a shared race")
	}
}

func TestGRaceIgnoresGlobalMemory(t *testing.T) {
	b := isa.NewBuilder("g")
	b.Sreg(1, isa.SregTid)
	b.Ldp(2, 0)
	b.Muli(3, 1, 4)
	b.Add(2, 2, 3)
	b.St(isa.SpaceGlobal, 2, 0, 1, 4)
	b.Exit()
	k := &gpu.Kernel{Name: "g", Prog: b.MustBuild(), GridDim: 2, BlockDim: 32}

	g := MustNew(opts(), DefaultCostModel)
	dev := gpu.MustNewDevice(gpu.TestConfig(), 1<<16, g)
	out := dev.MustMalloc(256)
	k.Params = []uint64{out}
	if _, err := dev.Launch(k); err != nil {
		t.Fatal(err)
	}
	if len(g.Races()) != 0 {
		t.Errorf("GRace covers only shared memory, yet reported %v", g.Races()[0])
	}
	if g.LogRecords != 0 {
		t.Errorf("GRace logged global accesses: %d records", g.LogRecords)
	}
}

func TestLoggingAndScanCosts(t *testing.T) {
	run := func(det gpu.Detector) int64 {
		dev := gpu.MustNewDevice(gpu.TestConfig(), 1<<16, det)
		st, err := dev.Launch(sharedRaceKernel())
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	base := run(nil)
	g := MustNew(opts(), DefaultCostModel)
	graceCycles := run(g)
	if graceCycles <= base {
		t.Fatalf("GRace instrumentation free: %d vs %d", graceCycles, base)
	}
	if g.LogRecords == 0 || g.LogBytes != g.LogRecords*int64(DefaultCostModel.RecordBytes) {
		t.Errorf("log accounting wrong: %d records, %d bytes", g.LogRecords, g.LogBytes)
	}
	if g.BookkeepTx == 0 {
		t.Error("no bookkeeping traffic modelled")
	}
}

func TestBarrierScanChargesPerRecord(t *testing.T) {
	// A kernel with a barrier: the scan cost appears as detector stall.
	b := isa.NewBuilder("bar")
	b.Sreg(1, isa.SregTid)
	b.Muli(2, 1, 4)
	b.St(isa.SpaceShared, 2, 0, 1, 4)
	b.Bar()
	b.Ld(3, isa.SpaceShared, 2, 0, 4)
	b.Exit()
	k := &gpu.Kernel{Name: "bar", Prog: b.MustBuild(), GridDim: 1, BlockDim: 64, SharedBytes: 256}

	g := MustNew(opts(), DefaultCostModel)
	dev := gpu.MustNewDevice(gpu.TestConfig(), 1<<16, g)
	st, err := dev.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if st.DetectorStall == 0 {
		t.Error("barrier-time analysis cost not charged")
	}
	if len(g.Races()) != 0 {
		t.Errorf("barrier-synchronized kernel reported races: %v", g.Races()[0])
	}
}
