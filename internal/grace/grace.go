// Package grace models GRace-addr (Zheng et al., PPoPP 2011), the
// instrumentation-based shared-memory race detector the paper uses as
// its prior-work baseline. The published mechanism instruments every
// shared-memory access to record (warp, address, access-type)
// bookkeeping in device memory, and runs an analysis pass at every
// barrier that compares the recorded accesses of different warps.
//
// The paper measures GRace-addr roughly two orders of magnitude slower
// than the software HAccRG build, with a larger memory footprint
// (per-access logs instead of per-location shadow state). This model
// charges exactly those costs: per-access bookkeeping writes through
// the demand path plus an O(accesses) barrier-time scan, and it tracks
// the log footprint.
package grace

import (
	"haccrg/internal/core"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// CostModel parameterizes the instrumentation charges.
type CostModel struct {
	// ALUPerAccess: inline bookkeeping instructions per access
	// (computing table slots, masks, flags).
	ALUPerAccess int
	// RecordBytes is the per-access bookkeeping record size.
	RecordBytes int
	// ScanCyclesPerRecord is the barrier-time analysis cost per logged
	// access (pairwise warp-table comparisons serialized on the SM).
	ScanCyclesPerRecord int64
}

// DefaultCostModel follows the GRace-addr design point.
var DefaultCostModel = CostModel{ALUPerAccess: 30, RecordBytes: 16, ScanCyclesPerRecord: 500}

// Detector implements gpu.Detector with GRace-addr's cost profile.
// Detection semantics reuse the core shared-memory state machine so
// that race *findings* remain comparable; GRace does not cover global
// memory, so global accesses are neither checked nor instrumented.
type Detector struct {
	inner *core.Detector
	cost  CostModel
	env   gpu.Env

	logged map[int]int64 // per-SM records since the last barrier

	// Stats.
	InstrStallCycles int64
	LogBytes         int64
	LogRecords       int64
	BookkeepTx       int64
}

// New builds the GRace-addr model. The options' Global flag is forced
// off (GRace is a shared-memory tool).
func New(opt core.Options, cost CostModel) (*Detector, error) {
	opt.Global = false
	opt.DetectStaleL1 = false
	opt.SharedShadowInGlobal = false
	opt.ModelTraffic = false
	opt.Shared = true
	inner, err := core.New(opt)
	if err != nil {
		return nil, err
	}
	return &Detector{inner: inner, cost: cost, logged: make(map[int]int64)}, nil
}

// MustNew is New panicking on invalid options.
func MustNew(opt core.Options, cost CostModel) *Detector {
	d, err := New(opt, cost)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements gpu.Detector.
func (d *Detector) Name() string { return "grace-addr" }

// Races returns the detected (shared-memory) races.
func (d *Detector) Races() []*core.Race { return d.inner.Races() }

// KernelStart implements gpu.Detector.
func (d *Detector) KernelStart(env gpu.Env, kernel string) {
	d.env = env
	d.inner.KernelStart(env, kernel)
	d.logged = make(map[int]int64)
}

// KernelEnd implements gpu.Detector.
func (d *Detector) KernelEnd() {}

// BlockStart implements gpu.Detector.
func (d *Detector) BlockStart(sm int, sharedBase, sharedSize int) {
	d.inner.BlockStart(sm, sharedBase, sharedSize)
}

// WarpMem implements gpu.Detector.
func (d *Detector) WarpMem(ev *gpu.WarpMemEvent) int64 {
	if ev.Space != isa.SpaceShared {
		return 0
	}
	d.inner.WarpMem(ev)

	cfg := d.env.Config()
	stall := int64(d.cost.ALUPerAccess) * cfg.IssueInterval()
	// Bookkeeping record per lane, coalescing into table lines: GRace
	// keeps per-warp tables, so a warp's records land in 1-2 lines.
	n := int64(len(ev.Lanes))
	d.LogRecords += n
	d.LogBytes += n * int64(d.cost.RecordBytes)
	d.logged[ev.SM] += n
	recBytes := n * int64(d.cost.RecordBytes)
	lines := (recBytes + int64(cfg.SegmentBytes) - 1) / int64(cfg.SegmentBytes)
	latest := ev.Cycle + stall
	for i := int64(0); i < lines; i++ {
		t := d.env.InstrTx(ev.SM, latest, d.env.ShadowBase()+uint64(i*int64(cfg.SegmentBytes)), true)
		d.BookkeepTx++
		if t > latest {
			latest = t
		}
	}
	stall = latest - ev.Cycle
	d.InstrStallCycles += stall
	return stall
}

// Barrier implements gpu.Detector: the barrier-time analysis scans
// every record logged since the previous barrier.
func (d *Detector) Barrier(sm, block int, sharedBase, sharedSize int, cycle int64) int64 {
	d.inner.Barrier(sm, block, sharedBase, sharedSize, cycle)
	records := d.logged[sm]
	d.logged[sm] = 0
	stall := records * d.cost.ScanCyclesPerRecord
	d.InstrStallCycles += stall
	return stall
}
