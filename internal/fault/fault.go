// Package fault implements a deterministic, seedable fault-injection
// framework for the simulated HAccRG detection pipeline. A Plan
// describes which hardware faults to model — RDU check-queue overflow
// under burst load, shadow-memory bit flips and stuck-at cells (with
// an optional modeled ECC scrub), Bloom-filter saturation, and
// shadow-fetch latency spikes at the memory partitions — and an
// Injector executes the plan with a seeded PRNG so that the same
// (plan, seed) pair reproduces the same fault sequence byte for byte.
//
// The injector is pure mechanism: it decides *when* a fault fires and
// *which* bit or granule it hits; the detector (internal/core) applies
// the consequence and its degradation policy, and accounts the damage
// in its DetectorHealth report.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Unit identifies which RDU class a check queue belongs to.
type Unit uint8

// RDU unit classes. Shared-memory RDUs are per-SM; global-memory RDUs
// are per-partition.
const (
	UnitShared Unit = iota
	UnitGlobal
)

// Plan is a declarative fault-injection configuration. The zero value
// injects nothing. Plans parse from and render to a compact spec
// string (see Parse) so they can travel through CLI flags and CSV
// metadata unchanged.
type Plan struct {
	// QueueCap bounds each RDU's check queue (lane checks). 0 models
	// the paper's idealized unbounded queue; a positive value drops —
	// and counts — checks that arrive while the queue is full.
	QueueCap int
	// QueueDrain is how many queued checks an RDU retires per cycle
	// (default 1 when QueueCap > 0).
	QueueDrain int

	// FlipRate is the per-shadow-entry-read probability of a single-bit
	// soft error in the entry's architectural bits.
	FlipRate float64
	// ECC models a SECDED scrub beside the shadow SRAM: single-bit
	// flips are detected and corrected (counted, not applied), and
	// stuck-at cells are *detected*, handing the granule to the
	// detector's degradation policy instead of silently corrupting it.
	ECC bool

	// StuckPerKi makes roughly StuckPerKi out of every 1024 shadow
	// granules stuck-at: their entries always read back a fixed
	// corrupted pattern derived from the granule index and seed.
	StuckPerKi int

	// BloomFill saturates lockset signatures: before each lockset
	// check, random bits are OR-ed into the access's signature until
	// its fill ratio reaches this target (0 disables, 1 = all ones).
	// A saturated filter intersects with everything, so protected
	// accesses stop reporting lockset races — the classic silent
	// false-negative mode of Bloom-based detectors.
	BloomFill float64

	// SpikeExtra adds this many cycles to every SpikePeriod-th shadow
	// fetch (0 disables either way), modeling shadow-SRAM/DRAM
	// contention spikes at the partitions.
	SpikeExtra  int64
	SpikePeriod int64
}

// Validate checks plan parameters.
func (p *Plan) Validate() error {
	if p.QueueCap < 0 {
		return fmt.Errorf("fault: queue cap %d negative", p.QueueCap)
	}
	if p.QueueCap > 0 && p.QueueDrain < 0 {
		return fmt.Errorf("fault: queue drain %d negative", p.QueueDrain)
	}
	if p.FlipRate < 0 || p.FlipRate > 1 {
		return fmt.Errorf("fault: flip rate %g outside [0,1]", p.FlipRate)
	}
	if p.StuckPerKi < 0 || p.StuckPerKi > 1024 {
		return fmt.Errorf("fault: stuck per-Ki %d outside [0,1024]", p.StuckPerKi)
	}
	if p.BloomFill < 0 || p.BloomFill > 1 {
		return fmt.Errorf("fault: bloom fill %g outside [0,1]", p.BloomFill)
	}
	if p.SpikeExtra < 0 || p.SpikePeriod < 0 {
		return fmt.Errorf("fault: spike extra/period negative")
	}
	return nil
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (p.QueueCap == 0 && p.FlipRate == 0 && p.StuckPerKi == 0 &&
		p.BloomFill == 0 && (p.SpikeExtra == 0 || p.SpikePeriod == 0))
}

// Parse builds a plan from its spec string: semicolon-separated
// clauses, each "kind" or "kind:key=value,key=value".
//
//	queue:cap=16,drain=1      bounded RDU check queues
//	flip:rate=1e-5,ecc        shadow bit flips (ecc enables the scrub)
//	stuck:perki=4,ecc         ~4 of every 1024 granules stuck-at
//	                          (ecc detects them and hands them to the
//	                          degradation policy)
//	bloom:fill=0.9            lockset-signature saturation
//	spike:extra=400,period=64 every 64th shadow fetch takes +400 cycles
//
// An empty spec yields an empty plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, args, _ := strings.Cut(clause, ":")
		kv := map[string]string{}
		if args != "" {
			for _, a := range strings.Split(args, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(a), "=")
				if !ok {
					v = "true" // bare flags like "ecc"
				}
				kv[k] = v
			}
		}
		var err error
		switch kind {
		case "queue":
			p.QueueCap, err = intArg(kv, "cap", p.QueueCap)
			if err == nil {
				p.QueueDrain, err = intArg(kv, "drain", 1)
			}
		case "flip":
			p.FlipRate, err = floatArg(kv, "rate", p.FlipRate)
			if _, ok := kv["ecc"]; ok {
				p.ECC = true
			}
			delete(kv, "ecc")
		case "stuck":
			p.StuckPerKi, err = intArg(kv, "perki", p.StuckPerKi)
			if _, ok := kv["ecc"]; ok {
				p.ECC = true
			}
			delete(kv, "ecc")
		case "bloom":
			p.BloomFill, err = floatArg(kv, "fill", p.BloomFill)
		case "spike":
			var e, per int
			e, err = intArg(kv, "extra", 0)
			if err == nil {
				per, err = intArg(kv, "period", 1)
			}
			p.SpikeExtra, p.SpikePeriod = int64(e), int64(per)
		default:
			return nil, fmt.Errorf("fault: unknown clause %q (want queue/flip/stuck/bloom/spike)", kind)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
		for _, k := range usedKeys[kind] {
			delete(kv, k)
		}
		if len(kv) > 0 {
			return nil, fmt.Errorf("fault: clause %q: unknown keys %v", clause, sortedKeys(kv))
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

var usedKeys = map[string][]string{
	"queue": {"cap", "drain"},
	"flip":  {"rate"},
	"stuck": {"perki"},
	"bloom": {"fill"},
	"spike": {"extra", "period"},
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func intArg(kv map[string]string, key string, def int) (int, error) {
	v, ok := kv[key]
	if !ok {
		return def, nil
	}
	return strconv.Atoi(v)
}

func floatArg(kv map[string]string, key string, def float64) (float64, error) {
	v, ok := kv[key]
	if !ok {
		return def, nil
	}
	return strconv.ParseFloat(v, 64)
}

// String renders the plan in canonical spec form (parseable by Parse).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.QueueCap > 0 {
		parts = append(parts, fmt.Sprintf("queue:cap=%d,drain=%d", p.QueueCap, p.QueueDrain))
	}
	if p.FlipRate > 0 || p.ECC {
		s := fmt.Sprintf("flip:rate=%g", p.FlipRate)
		if p.ECC {
			s += ",ecc"
		}
		parts = append(parts, s)
	}
	if p.StuckPerKi > 0 {
		parts = append(parts, fmt.Sprintf("stuck:perki=%d", p.StuckPerKi))
	}
	if p.BloomFill > 0 {
		parts = append(parts, fmt.Sprintf("bloom:fill=%g", p.BloomFill))
	}
	if p.SpikeExtra > 0 && p.SpikePeriod > 0 {
		parts = append(parts, fmt.Sprintf("spike:extra=%d,period=%d", p.SpikeExtra, p.SpikePeriod))
	}
	return strings.Join(parts, ";")
}

// Injector executes a plan deterministically. Every random decision is
// drawn from an independent per-(mechanism, unit, id) PRNG stream
// seeded from the run seed, so the fault sequence one RDU observes
// depends only on its own check sequence — never on how checks from
// other RDUs interleave with it. That partition-determinism is what
// lets the sharded per-partition detector reproduce the serial
// detector's faults byte for byte: each shard owns a private Injector
// built from the same (plan, seed) and replays exactly its own streams.
//
// An Injector is not safe for concurrent use; callers that check in
// parallel give each worker its own instance.
type Injector struct {
	plan Plan
	seed int64

	queues  map[uint32]*queueState
	streams map[uint64]*stream
}

type queueState struct {
	depth int
	last  int64
}

// stream is one mechanism's PRNG state for one RDU instance.
type stream struct {
	rng     *rand.Rand
	fetches int64 // shadow fetches seen (spike phase accumulator)
}

// Fault-mechanism tags: each mechanism draws from its own stream
// family so enabling one clause never shifts another's sequence.
const (
	mechFlip = iota
	mechSaturate
	mechSpike
)

// stream returns the PRNG stream for (mech, unit, id), creating it on
// first use with a seed mixed from the run seed and the key.
func (in *Injector) stream(mech int, unit Unit, id int) *stream {
	key := uint64(mech)<<40 | uint64(unit)<<32 | uint64(uint32(id))
	s := in.streams[key]
	if s == nil {
		s = &stream{rng: rand.New(rand.NewSource(int64(splitmix64(uint64(in.seed) ^ splitmix64(key)))))}
		in.streams[key] = s
	}
	return s
}

// New builds an injector for the plan (nil or empty plans yield a nil
// injector, which every method treats as "no faults").
func New(p *Plan, seed int64) *Injector {
	if p.Empty() {
		return nil
	}
	cp := *p
	if cp.QueueCap > 0 && cp.QueueDrain == 0 {
		cp.QueueDrain = 1
	}
	return &Injector{
		plan:    cp,
		seed:    seed,
		queues:  make(map[uint32]*queueState),
		streams: make(map[uint64]*stream),
	}
}

// Plan returns the injector's plan (zero Plan for nil injectors).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Seed returns the injector's PRNG seed.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Reset clears dynamic state (queue depths, spike phases) between
// kernels while preserving the PRNG streams, so multi-kernel plans
// stay reproducible end to end.
func (in *Injector) Reset() {
	if in == nil {
		return
	}
	in.queues = make(map[uint32]*queueState)
	for _, s := range in.streams {
		s.fetches = 0
	}
}

// Admit models one burst of n lane checks arriving at the RDU queue of
// (unit, id) at the given cycle and returns how many the queue accepts;
// the caller drops (and counts) the rest. The queue drains QueueDrain
// checks per cycle since its last arrival.
func (in *Injector) Admit(unit Unit, id int, cycle int64, n int) int {
	if in == nil || in.plan.QueueCap <= 0 || n <= 0 {
		return n
	}
	key := uint32(unit)<<24 | uint32(id)&0xffffff
	q := in.queues[key]
	if q == nil {
		q = &queueState{}
		in.queues[key] = q
	}
	if dt := cycle - q.last; dt > 0 {
		drained := dt * int64(in.plan.QueueDrain)
		if drained >= int64(q.depth) {
			q.depth = 0
		} else {
			q.depth -= int(drained)
		}
	}
	q.last = cycle
	free := in.plan.QueueCap - q.depth
	if free < 0 {
		free = 0
	}
	if n > free {
		n = free
	}
	q.depth += n
	return n
}

// FlipBit draws one shadow-entry read's soft-error outcome at the RDU
// (unit, id): ok is true when a flip fires, and bit is the flipped
// position in [0, width). The RDU's flip stream advances exactly once
// per call regardless of outcome, so fault sequences are stable across
// plan variations of the same seed.
func (in *Injector) FlipBit(unit Unit, id, width int) (bit int, ok bool) {
	if in == nil || in.plan.FlipRate <= 0 {
		return 0, false
	}
	draw := in.stream(mechFlip, unit, id).rng.Float64()
	if draw >= in.plan.FlipRate {
		return 0, false
	}
	// Derive the position from the same draw: uniform over width.
	return int(draw / in.plan.FlipRate * float64(width)), true
}

// ECC reports whether the plan models the SECDED scrub.
func (in *Injector) ECC() bool { return in != nil && in.plan.ECC }

// Stuck reports whether the shadow granule g of the given unit class is
// a stuck-at cell under this seed, and returns the fixed pattern its
// entry reads back as. The decision is a pure hash of (seed, unit, g),
// so it is stable across the whole run.
func (in *Injector) Stuck(unit Unit, g uint64) (pattern uint64, ok bool) {
	if in == nil || in.plan.StuckPerKi <= 0 {
		return 0, false
	}
	h := splitmix64(g<<1 ^ uint64(unit) ^ uint64(in.seed)*0x9e3779b97f4a7c15)
	if h&1023 >= uint64(in.plan.StuckPerKi) {
		return 0, false
	}
	return splitmix64(h), true
}

// Saturate ORs random bits into a lockset signature at the RDU
// (unit, id) until its fill ratio over mask reaches the plan's
// BloomFill target. Returns the (possibly) saturated signature and
// whether it changed.
func (in *Injector) Saturate(unit Unit, id int, sig, mask uint64) (out uint64, changed bool) {
	if in == nil || in.plan.BloomFill <= 0 {
		return sig, false
	}
	total := popcount(mask)
	if total == 0 {
		return sig, false
	}
	want := int(in.plan.BloomFill * float64(total))
	out = sig
	rng := in.stream(mechSaturate, unit, id).rng
	for popcount(out&mask) < want {
		out |= 1 << (rng.Intn(64)) & mask
	}
	return out, out != sig
}

// SpikeDelay returns the extra cycles the next shadow fetch at the
// memory unit (unit, id) suffers (0 for most fetches; SpikeExtra every
// SpikePeriod-th fetch at that unit).
func (in *Injector) SpikeDelay(unit Unit, id int) int64 {
	if in == nil || in.plan.SpikeExtra <= 0 || in.plan.SpikePeriod <= 0 {
		return 0
	}
	s := in.stream(mechSpike, unit, id)
	s.fetches++
	if s.fetches%in.plan.SpikePeriod == 0 {
		return in.plan.SpikeExtra
	}
	return 0
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// splitmix64 is the SplitMix64 finalizer: a cheap, high-quality
// stateless hash used for stuck-cell selection.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
