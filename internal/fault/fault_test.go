package fault

import (
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"queue:cap=16,drain=1",
		"flip:rate=1e-05,ecc",
		"stuck:perki=4",
		"bloom:fill=0.9",
		"spike:extra=400,period=64",
		"queue:cap=8,drain=2;flip:rate=0.001;stuck:perki=16;bloom:fill=0.5;spike:extra=100,period=32",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		back, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", spec, p.String(), err)
		}
		if *back != *p {
			t.Errorf("round trip %q: %+v vs %+v", spec, p, back)
		}
	}
}

// TestPlanStringIsCanonical: String() must be a fixed point of
// Parse∘String — the property journals and manifests rely on when they
// store a plan by its spec and rebuild it on replay. The specs here
// mirror the fault study's plan list plus the ecc-on-stuck combos
// whose flags String redistributes across clauses.
func TestPlanStringIsCanonical(t *testing.T) {
	specs := []string{
		"",
		"queue:cap=8,drain=1",
		"flip:rate=2e-4",
		"flip:rate=2e-4,ecc",
		"stuck:perki=8",
		"stuck:perki=8,ecc",
		"bloom:fill=0.9",
		"spike:extra=500,period=32",
		"flip:rate=2e-4;queue:cap=8,drain=1",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q: not parseable: %v", spec, canon, err)
		}
		if *p2 != *p {
			t.Errorf("plan %q changed across canonicalization: %+v vs %+v", spec, p, p2)
		}
		if again := p2.String(); again != canon {
			t.Errorf("String not a fixed point for %q: %q then %q", spec, canon, again)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus:x=1",
		"queue:cap=-3",
		"flip:rate=2",
		"flip:rate=abc",
		"queue:cap=4,unknown=1",
		"stuck:perki=9999",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}

func TestEmptyPlan(t *testing.T) {
	p, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Errorf("empty spec: Empty() = false")
	}
	if in := New(p, 1); in != nil {
		t.Errorf("New(empty) = %v, want nil", in)
	}
	// Nil injectors are inert on every path.
	var in *Injector
	if got := in.Admit(UnitGlobal, 0, 100, 32); got != 32 {
		t.Errorf("nil Admit = %d, want 32", got)
	}
	if _, ok := in.FlipBit(UnitGlobal, 0, 52); ok {
		t.Error("nil FlipBit fired")
	}
	if _, ok := in.Stuck(UnitShared, 7); ok {
		t.Error("nil Stuck fired")
	}
	if _, ch := in.Saturate(UnitShared, 0, 1, 0xffff); ch {
		t.Error("nil Saturate changed signature")
	}
	if in.SpikeDelay(UnitGlobal, 0) != 0 {
		t.Error("nil SpikeDelay non-zero")
	}
}

func TestQueueAdmission(t *testing.T) {
	in := New(&Plan{QueueCap: 8, QueueDrain: 2}, 1)
	// Burst of 32 at cycle 0: only 8 fit.
	if got := in.Admit(UnitGlobal, 0, 0, 32); got != 8 {
		t.Fatalf("burst admit = %d, want 8", got)
	}
	// One cycle later only 2 have drained.
	if got := in.Admit(UnitGlobal, 0, 1, 32); got != 2 {
		t.Fatalf("admit after 1 cycle = %d, want 2", got)
	}
	// After a long idle gap the queue is empty again.
	if got := in.Admit(UnitGlobal, 0, 1000, 5); got != 5 {
		t.Fatalf("admit after drain = %d, want 5", got)
	}
	// Queues are per-unit: a different partition is unaffected.
	if got := in.Admit(UnitGlobal, 1, 1000, 8); got != 8 {
		t.Fatalf("other unit admit = %d, want 8", got)
	}
}

func TestStuckDeterministicFraction(t *testing.T) {
	in := New(&Plan{StuckPerKi: 64}, 42)
	stuck := 0
	const N = 1 << 14
	for g := uint64(0); g < N; g++ {
		p1, ok1 := in.Stuck(UnitGlobal, g)
		p2, ok2 := in.Stuck(UnitGlobal, g)
		if ok1 != ok2 || p1 != p2 {
			t.Fatalf("Stuck(%d) not stable", g)
		}
		if ok1 {
			stuck++
		}
	}
	// ~64/1024 = 6.25% of granules; allow generous tolerance.
	frac := float64(stuck) / N
	if frac < 0.03 || frac > 0.12 {
		t.Errorf("stuck fraction %.4f far from 1/16", frac)
	}
	// A different seed picks a different set.
	in2 := New(&Plan{StuckPerKi: 64}, 43)
	same := 0
	for g := uint64(0); g < N; g++ {
		_, a := in.Stuck(UnitGlobal, g)
		_, b := in2.Stuck(UnitGlobal, g)
		if a && b {
			same++
		}
	}
	if same == stuck {
		t.Error("stuck sets identical across seeds")
	}
}

func TestFlipDeterminism(t *testing.T) {
	run := func() []int {
		in := New(&Plan{FlipRate: 0.25}, 7)
		var out []int
		for i := 0; i < 1000; i++ {
			if bit, ok := in.FlipBit(UnitGlobal, 3, 52); ok {
				out = append(out, bit)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no flips at rate 0.25")
	}
	if len(a) != len(b) {
		t.Fatalf("flip sequence lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flip %d differs: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= 52 {
			t.Fatalf("flip bit %d outside entry", a[i])
		}
	}
}

func TestSaturateReachesFill(t *testing.T) {
	in := New(&Plan{BloomFill: 1}, 3)
	const mask = 0xffff
	out, changed := in.Saturate(UnitShared, 2, 0x0101, mask)
	if !changed {
		t.Fatal("saturation did not change a sparse signature")
	}
	if out&mask != mask {
		t.Errorf("fill=1 signature = %#x, want all of %#x", out, mask)
	}
	if out&^mask != 0 {
		t.Errorf("saturation leaked outside mask: %#x", out)
	}
}

func TestSpikePeriod(t *testing.T) {
	in := New(&Plan{SpikeExtra: 100, SpikePeriod: 4}, 1)
	var spikes int
	for i := 0; i < 16; i++ {
		if d := in.SpikeDelay(UnitGlobal, 1); d != 0 {
			if d != 100 {
				t.Fatalf("spike delay = %d, want 100", d)
			}
			spikes++
		}
	}
	if spikes != 4 {
		t.Errorf("spikes in 16 fetches = %d, want 4", spikes)
	}
	// Spike phases are per-unit: fetches at another partition do not
	// advance this one's phase.
	if d := in.SpikeDelay(UnitGlobal, 2); d != 0 {
		t.Errorf("first fetch at fresh unit spiked: %d", d)
	}
}

// TestStreamIndependence: the fault sequence one RDU draws must not
// depend on how checks at other RDUs interleave with it — the property
// the sharded per-partition detector relies on to reproduce serial
// fault decisions exactly.
func TestStreamIndependence(t *testing.T) {
	draw := func(in *Injector, id, n int) []int {
		var out []int
		for i := 0; i < n; i++ {
			if bit, ok := in.FlipBit(UnitGlobal, id, 52); ok {
				out = append(out, bit)
			}
		}
		return out
	}
	// Solo run: partition 0 alone.
	solo := draw(New(&Plan{FlipRate: 0.25}, 7), 0, 500)
	// Interleaved run: partition 1 draws between every partition-0 draw.
	in := New(&Plan{FlipRate: 0.25}, 7)
	var inter []int
	for i := 0; i < 500; i++ {
		if bit, ok := in.FlipBit(UnitGlobal, 0, 52); ok {
			inter = append(inter, bit)
		}
		in.FlipBit(UnitGlobal, 1, 52)
	}
	if len(solo) == 0 {
		t.Fatal("no flips at rate 0.25")
	}
	if len(solo) != len(inter) {
		t.Fatalf("interleaving changed flip count: %d vs %d", len(solo), len(inter))
	}
	for i := range solo {
		if solo[i] != inter[i] {
			t.Fatalf("flip %d differs under interleaving: %d vs %d", i, solo[i], inter[i])
		}
	}
	// Distinct units draw distinct sequences.
	a := draw(New(&Plan{FlipRate: 0.5}, 9), 0, 400)
	b := draw(New(&Plan{FlipRate: 0.5}, 9), 1, 400)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("partitions 0 and 1 drew identical flip sequences")
		}
	}
}
