package staticrace

import (
	"fmt"

	"haccrg/internal/isa"
)

// BBlock is a maximal straight-line run of instructions. The range is
// half-open: [Start, End).
type BBlock struct {
	Index      int
	Start, End int
	Succs      []int
	Preds      []int
}

// CFG is the control-flow graph of one isa.Program. Edges follow the
// per-thread view of execution: a predicated branch forks into its
// taken target and its fall-through; reconvergence is implicit in the
// paths re-merging at the join block. That is exactly the set of paths
// an individual thread can take under the executor's divergence-stack
// scheduling, which is what the dataflow analysis needs.
type CFG struct {
	Prog    *isa.Program
	Blocks  []*BBlock
	blockOf []int // pc -> block index
	idom    []int // block -> immediate dominator (-1 for entry/unreachable)
}

// BlockOf returns the basic block containing pc, or -1.
func (g *CFG) BlockOf(pc int) int {
	if pc < 0 || pc >= len(g.blockOf) {
		return -1
	}
	return g.blockOf[pc]
}

// Idom returns the immediate dominator of block b (-1 for the entry
// block and for blocks unreachable from it).
func (g *CFG) Idom(b int) int {
	if b < 0 || b >= len(g.idom) {
		return -1
	}
	return g.idom[b]
}

// Dominates reports whether block a dominates block b.
func (g *CFG) Dominates(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = g.idom[b]
	}
	return false
}

// BuildCFG splits the program into basic blocks and wires successor /
// predecessor edges. The program must already pass isa.Validate; on a
// malformed program BuildCFG returns an error rather than panicking
// (the fuzz harness feeds it raw builder output).
func BuildCFG(p *isa.Program) (*CFG, error) {
	n := len(p.Code)
	if n == 0 {
		return nil, fmt.Errorf("staticrace: empty program %q", p.Name)
	}
	// Leaders: entry, every branch target, every reconvergence point,
	// and every instruction after a branch or exit.
	leader := make([]bool, n+1)
	leader[0] = true
	for pc, in := range p.Code {
		switch in.Op {
		case isa.OpBra:
			if in.Tgt < 0 || in.Tgt >= n {
				return nil, fmt.Errorf("staticrace: %s pc %d: branch target %d out of range", p.Name, pc, in.Tgt)
			}
			leader[in.Tgt] = true
			if pc+1 <= n {
				leader[pc+1] = true
			}
			if in.Pred != isa.NoPred {
				if in.Rcv < 0 || in.Rcv > n {
					return nil, fmt.Errorf("staticrace: %s pc %d: reconvergence %d out of range", p.Name, pc, in.Rcv)
				}
				leader[in.Rcv] = true
			}
		case isa.OpExit:
			if pc+1 <= n {
				leader[pc+1] = true
			}
		}
	}
	g := &CFG{Prog: p, blockOf: make([]int, n)}
	start := 0
	for pc := 1; pc <= n; pc++ {
		if pc == n || leader[pc] {
			b := &BBlock{Index: len(g.Blocks), Start: start, End: pc}
			g.Blocks = append(g.Blocks, b)
			for i := start; i < pc; i++ {
				g.blockOf[i] = b.Index
			}
			start = pc
		}
	}
	// Successor edges, per the executor's per-thread semantics.
	for _, b := range g.Blocks {
		last := p.Code[b.End-1]
		switch last.Op {
		case isa.OpBra:
			g.addEdge(b.Index, g.blockOf[last.Tgt])
			if last.Pred != isa.NoPred && b.End < n {
				// Fall-through for the lanes whose guard is false.
				g.addEdge(b.Index, g.blockOf[b.End])
			}
		case isa.OpExit:
			if last.Pred != isa.NoPred && b.End < n {
				// Lanes whose guard is false keep running.
				g.addEdge(b.Index, g.blockOf[b.End])
			}
		default:
			if b.End < n {
				g.addEdge(b.Index, g.blockOf[b.End])
			}
		}
	}
	g.computeIdom()
	return g, nil
}

func (g *CFG) addEdge(from, to int) {
	fb, tb := g.Blocks[from], g.Blocks[to]
	for _, s := range fb.Succs {
		if s == to {
			return
		}
	}
	fb.Succs = append(fb.Succs, to)
	tb.Preds = append(tb.Preds, from)
}

// computeIdom runs the Cooper–Harvey–Kennedy iterative dominator
// algorithm over a reverse-postorder numbering.
func (g *CFG) computeIdom() {
	nb := len(g.Blocks)
	g.idom = make([]int, nb)
	for i := range g.idom {
		g.idom[i] = -1
	}
	rpo := g.reversePostorder()
	rpoNum := make([]int, nb)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range rpo {
		rpoNum[b] = i
	}
	if len(rpo) == 0 {
		return
	}
	g.idom[rpo[0]] = rpo[0]
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if rpoNum[p] == -1 || g.idom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = g.intersect(newIdom, p, rpoNum)
				}
			}
			if newIdom != -1 && g.idom[b] != newIdom {
				g.idom[b] = newIdom
				changed = true
			}
		}
	}
	// Convention: the entry's idom is -1 (it has no strict dominator).
	g.idom[rpo[0]] = -1
}

func (g *CFG) intersect(a, b int, rpoNum []int) int {
	for a != b {
		for rpoNum[a] > rpoNum[b] {
			a = g.idom[a]
		}
		for rpoNum[b] > rpoNum[a] {
			b = g.idom[b]
		}
	}
	return a
}

// reversePostorder returns reachable blocks in reverse postorder from
// the entry block.
func (g *CFG) reversePostorder() []int {
	seen := make([]bool, len(g.Blocks))
	var post []int
	var walk func(int)
	walk = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				walk(s)
			}
		}
		post = append(post, b)
	}
	if len(g.Blocks) > 0 {
		walk(0)
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
