package staticrace

import "math"

// symID names a symbolic value the affine domain ranges over. The
// fixed symbols are the thread coordinates; everything above
// symFirstPhi is a φ-symbol the interpreter mints at control-flow
// joins (loop counters, if/else merges, weak updates).
type symID int32

// Fixed symbols. Block dimension, grid dimension and kernel parameters
// are *not* symbols: the analyzer consumes a launched gpu.Kernel, so
// they are concrete constants.
const (
	SymTid  symID = iota // thread id within its block
	SymBid               // block id within the grid
	SymLane              // lane within the warp (tid mod warpSize)
	SymWarp              // warp within the block (tid div warpSize)
	symFirstPhi
)

// Interval bounds. The sentinels mean "unbounded"; interval arithmetic
// saturates into them instead of wrapping.
const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
)

// ival is an inclusive signed interval.
type ival struct{ lo, hi int64 }

func (v ival) empty() bool           { return v.lo > v.hi }
func (v ival) bounded() bool         { return v.lo != negInf && v.hi != posInf }
func (v ival) contains(x int64) bool { return x >= v.lo && x <= v.hi }

func (v ival) union(o ival) ival {
	if v.empty() {
		return o
	}
	if o.empty() {
		return v
	}
	if o.lo < v.lo {
		v.lo = o.lo
	}
	if o.hi > v.hi {
		v.hi = o.hi
	}
	return v
}

func (v ival) intersect(o ival) ival {
	if o.lo > v.lo {
		v.lo = o.lo
	}
	if o.hi < v.hi {
		v.hi = o.hi
	}
	return v
}

// addSat / mulSat are saturating interval helpers for bound
// arithmetic: once a bound leaves the representable range it pins to
// the matching infinity, which the analyzer treats as "unbounded".
func addSat(a, b int64) int64 {
	if a == negInf || b == negInf {
		return negInf
	}
	if a == posInf || b == posInf {
		return posInf
	}
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		if b > 0 {
			return posInf
		}
		return negInf
	}
	return s
}

func mulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	if a == negInf || a == posInf || b == negInf || b == posInf {
		if neg {
			return negInf
		}
		return posInf
	}
	p := a * b
	if p/b != a {
		if neg {
			return negInf
		}
		return posInf
	}
	return p
}

// ivalAdd returns the interval sum.
func ivalAdd(a, b ival) ival {
	return ival{addSat(a.lo, b.lo), addSat(a.hi, b.hi)}
}

// ivalScale multiplies an interval by a constant.
func ivalScale(a ival, k int64) ival {
	x, y := mulSat(a.lo, k), mulSat(a.hi, k)
	if x > y {
		x, y = y, x
	}
	return ival{x, y}
}

// mulOvf multiplies two constants, reporting overflow instead of
// wrapping (wrapped coefficients would silently corrupt footprints).
func mulOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// term is one symbol with its coefficient.
type term struct {
	sym  symID
	coef int64
}

// Expr is an abstract register value: either an affine combination
// c + Σ coefᵢ·symᵢ (terms sorted by symbol, no zero coefficients), or
// Top (statically unknown). The zero value is the constant 0 — exactly
// the executor's register-file reset state.
type Expr struct {
	top   bool
	c     int64
	terms []term
}

func exprTop() Expr          { return Expr{top: true} }
func exprConst(c int64) Expr { return Expr{c: c} }
func exprSym(s symID) Expr   { return Expr{terms: []term{{sym: s, coef: 1}}} }

// IsTop reports whether the value is statically unknown.
func (e Expr) IsTop() bool { return e.top }

// Const returns the constant value and whether the expression is one.
func (e Expr) Const() (int64, bool) {
	if e.top || len(e.terms) != 0 {
		return 0, false
	}
	return e.c, true
}

// singleTerm returns (sym, coef, const) when the expression is
// k·sym + c with exactly one symbol.
func (e Expr) singleTerm() (symID, int64, int64, bool) {
	if e.top || len(e.terms) != 1 {
		return 0, 0, 0, false
	}
	return e.terms[0].sym, e.terms[0].coef, e.c, true
}

// termCoef returns the coefficient of sym (0 when absent).
func (e Expr) termCoef(s symID) int64 {
	for _, t := range e.terms {
		if t.sym == s {
			return t.coef
		}
	}
	return 0
}

// hasSym reports whether sym appears with a nonzero coefficient.
func (e Expr) hasSym(s symID) bool {
	for _, t := range e.terms {
		if t.sym == s {
			return true
		}
	}
	return false
}

func (e Expr) equal(o Expr) bool {
	if e.top != o.top {
		return false
	}
	if e.top {
		return true
	}
	if e.c != o.c || len(e.terms) != len(o.terms) {
		return false
	}
	for i := range e.terms {
		if e.terms[i] != o.terms[i] {
			return false
		}
	}
	return true
}

// add returns e + o (Top-absorbing, overflow-checked).
func (e Expr) add(o Expr) Expr {
	if e.top || o.top {
		return exprTop()
	}
	out := Expr{}
	var ok bool
	if out.c, ok = addOvf(e.c, o.c); !ok {
		return exprTop()
	}
	i, j := 0, 0
	for i < len(e.terms) || j < len(o.terms) {
		switch {
		case j >= len(o.terms) || (i < len(e.terms) && e.terms[i].sym < o.terms[j].sym):
			out.terms = append(out.terms, e.terms[i])
			i++
		case i >= len(e.terms) || o.terms[j].sym < e.terms[i].sym:
			out.terms = append(out.terms, o.terms[j])
			j++
		default:
			c, ok := addOvf(e.terms[i].coef, o.terms[j].coef)
			if !ok {
				return exprTop()
			}
			if c != 0 {
				out.terms = append(out.terms, term{sym: e.terms[i].sym, coef: c})
			}
			i++
			j++
		}
	}
	return out
}

func addOvf(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// neg returns -e.
func (e Expr) neg() Expr { return e.scale(-1) }

// sub returns e - o.
func (e Expr) sub(o Expr) Expr { return e.add(o.neg()) }

// scale returns k·e.
func (e Expr) scale(k int64) Expr {
	if e.top {
		return exprTop()
	}
	if k == 0 {
		return exprConst(0)
	}
	out := Expr{}
	var ok bool
	if out.c, ok = mulOvf(e.c, k); !ok {
		return exprTop()
	}
	for _, t := range e.terms {
		c, ok := mulOvf(t.coef, k)
		if !ok {
			return exprTop()
		}
		out.terms = append(out.terms, term{sym: t.sym, coef: c})
	}
	return out
}

// addConst returns e + k.
func (e Expr) addConst(k int64) Expr { return e.add(exprConst(k)) }
