// Package staticrace is a static analyzer for isa.Program kernels: a
// CFG + abstract-interpretation framework with an affine symbolic
// domain over {tid, bid, lane, warp, params, constants}, used for
//
//   - lint passes (barrier divergence, uninitialized reads, provable
//     shared-memory OOB, fence misuse around election atomics);
//   - a race-freedom prover that classifies each LD/ST/ATOM site per
//     memory space;
//   - the RDU static filter (core.Options.StaticFilter) that lets the
//     dynamic detector skip shadow work for proven-race-free sites.
package staticrace

import (
	"fmt"
	"sort"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// Config carries the launch- and detector-side constants the analysis
// needs. Granularities must match the dynamic detector's options for
// the filter classifications to be sound.
type Config struct {
	WarpSize           int
	SharedGranularity  int
	GlobalGranularity  int
	MaxFootprintPoints int64 // 0 = default (1<<22)
}

// Finding is one lint diagnostic, addressed by PC.
type Finding struct {
	Pass    string `json:"pass"`
	Kernel  string `json:"kernel"`
	PC      int    `json:"pc"`
	Msg     string `json:"msg"`
	Related []int  `json:"related,omitempty"` // other PCs involved
}

// SiteInfo is the prover's verdict for one memory site.
type SiteInfo struct {
	PC       int       `json:"pc"`
	Space    string    `json:"space"`
	Op       string    `json:"op"`
	Class    SiteClass `json:"-"`
	ClassStr string    `json:"class"`
	Granules int       `json:"granules"`
	Dead     bool      `json:"dead,omitempty"`
}

// Analysis is the result of analyzing one launched kernel.
type Analysis struct {
	Kernel     string
	CFG        *CFG
	Findings   []Finding
	Sites      []*SiteInfo // sorted by PC
	Filterable []bool      // pc-indexed; true = detector may skip checks
}

// Analyze runs the full static analysis for one launched kernel: CFG
// construction, the abstract-interpretation fixpoint, the lint passes
// and the race-freedom prover.
func Analyze(k *gpu.Kernel, conf Config) (*Analysis, error) {
	if k == nil || k.Prog == nil {
		return nil, fmt.Errorf("staticrace: nil kernel")
	}
	if err := k.Prog.Validate(); err != nil {
		return nil, err
	}
	if conf.WarpSize <= 0 {
		conf.WarpSize = 32
	}
	if conf.SharedGranularity <= 0 {
		conf.SharedGranularity = 4
	}
	if conf.GlobalGranularity <= 0 {
		conf.GlobalGranularity = 4
	}
	cfg, err := BuildCFG(k.Prog)
	if err != nil {
		return nil, err
	}
	a := newAnalyzer(k, cfg, conf)
	a.run()

	res := &Analysis{
		Kernel:     k.Name,
		CFG:        cfg,
		Filterable: make([]bool, len(k.Prog.Code)),
	}

	// Prover: per-space classification of every live site.
	infos := map[int]*SiteInfo{}
	for pc, s := range a.sites {
		in := &k.Prog.Code[pc]
		infos[pc] = &SiteInfo{
			PC:    pc,
			Space: s.space.String(),
			Op:    in.Op.String(),
			Dead:  s.dead,
		}
	}
	a.proveSpace(isa.SpaceShared, conf.SharedGranularity, infos)
	a.proveSpace(isa.SpaceGlobal, conf.GlobalGranularity, infos)
	for pc, info := range infos {
		if a.sites[pc].dead {
			// Provably never executed: trivially race-free.
			info.Class = ClassPrivate
		}
		info.ClassStr = info.Class.String()
		if info.Class != ClassUnknown {
			res.Filterable[pc] = true
		}
		res.Sites = append(res.Sites, info)
	}
	sort.Slice(res.Sites, func(i, j int) bool { return res.Sites[i].PC < res.Sites[j].PC })

	// Lints.
	res.Findings = append(res.Findings, a.lintBarrierDivergence()...)
	res.Findings = append(res.Findings, a.lintUninit()...)
	res.Findings = append(res.Findings, a.lintSharedOOB()...)
	res.Findings = append(res.Findings, a.lintFenceMisuse()...)
	for i := range res.Findings {
		res.Findings[i].Kernel = k.Name
	}
	sort.SliceStable(res.Findings, func(i, j int) bool {
		if res.Findings[i].PC != res.Findings[j].PC {
			return res.Findings[i].PC < res.Findings[j].PC
		}
		return res.Findings[i].Pass < res.Findings[j].Pass
	})
	return res, nil
}
