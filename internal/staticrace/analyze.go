// Package staticrace is a static analyzer for isa.Program kernels: a
// CFG + abstract-interpretation framework with an affine symbolic
// domain over {tid, bid, lane, warp, params, constants}, used for
//
//   - lint passes (barrier divergence, uninitialized reads, provable
//     shared-memory OOB, fence misuse around election atomics);
//   - a race-freedom prover that classifies each LD/ST/ATOM site per
//     memory space;
//   - the RDU static filter (core.Options.StaticFilter) that lets the
//     dynamic detector skip shadow work for proven-race-free sites.
package staticrace

import (
	"fmt"
	"sort"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// Config carries the launch- and detector-side constants the analysis
// needs. Granularities must match the dynamic detector's options for
// the filter classifications to be sound.
type Config struct {
	WarpSize           int
	SharedGranularity  int
	GlobalGranularity  int
	MaxFootprintPoints int64 // 0 = default (1<<22)

	// WarpAware mirrors core.Options.WarpAware: when set, the dynamic
	// detector treats same-warp conflicts as benign lockstep sharing,
	// and the prover may discharge conflicts confined to one warp.
	WarpAware bool

	// Replay budgets for the concrete witness engine; zero selects the
	// defaults (1<<23 total steps, 8192 threads).
	MaxReplaySteps   int64
	MaxReplayThreads int
}

// Finding is one lint diagnostic, addressed by PC.
type Finding struct {
	Pass     string `json:"pass"`
	Kernel   string `json:"kernel"`
	PC       int    `json:"pc"`
	Msg      string `json:"msg"`
	Severity string `json:"severity"`          // "warn", or "error" when witnessed
	Related  []int  `json:"related,omitempty"` // other PCs involved
}

// SiteInfo is the prover's verdict for one memory site.
type SiteInfo struct {
	PC       int       `json:"pc"`
	Space    string    `json:"space"`
	Op       string    `json:"op"`
	Class    SiteClass `json:"-"`
	ClassStr string    `json:"class"`
	Granules int       `json:"granules"`
	Dead     bool      `json:"dead,omitempty"`
}

// Analysis is the result of analyzing one launched kernel.
type Analysis struct {
	Kernel     string
	CFG        *CFG
	Findings   []Finding
	Sites      []*SiteInfo // sorted by PC
	Filterable []bool      // pc-indexed; true = detector may skip checks

	// Presence proofs: every entry passed the independent checker.
	Witnesses []Witness
	// Conflicts counts sites whose race-free proof coexisted with a
	// verified witness; the proof is dropped (sound direction) and the
	// conflict recorded — a healthy analyzer reports zero.
	Conflicts int
	// WitnessDropped counts witnesses the checker rejected or the
	// per-kernel cap discarded.
	WitnessDropped int
}

// Analyze runs the full static analysis for one launched kernel: CFG
// construction, the abstract-interpretation fixpoint, the lint passes
// and the race-freedom prover.
func Analyze(k *gpu.Kernel, conf Config) (*Analysis, error) {
	if k == nil || k.Prog == nil {
		return nil, fmt.Errorf("staticrace: nil kernel")
	}
	if err := k.Prog.Validate(); err != nil {
		return nil, err
	}
	if conf.WarpSize <= 0 {
		conf.WarpSize = 32
	}
	if conf.SharedGranularity <= 0 {
		conf.SharedGranularity = 4
	}
	if conf.GlobalGranularity <= 0 {
		conf.GlobalGranularity = 4
	}
	cfg, err := BuildCFG(k.Prog)
	if err != nil {
		return nil, err
	}
	a := newAnalyzer(k, cfg, conf)
	a.run()

	res := &Analysis{
		Kernel:     k.Name,
		CFG:        cfg,
		Filterable: make([]bool, len(k.Prog.Code)),
	}

	// Prover: per-space classification of every live site.
	infos := map[int]*SiteInfo{}
	for pc, s := range a.sites {
		in := &k.Prog.Code[pc]
		infos[pc] = &SiteInfo{
			PC:    pc,
			Space: s.space.String(),
			Op:    in.Op.String(),
			Dead:  s.dead,
		}
	}
	a.proveSpace(isa.SpaceShared, conf.SharedGranularity, infos)
	a.proveSpace(isa.SpaceGlobal, conf.GlobalGranularity, infos)
	for pc, info := range infos {
		if a.sites[pc].dead {
			// Provably never executed: trivially race-free.
			info.Class = ClassPrivate
		}
		res.Sites = append(res.Sites, info)
	}
	sort.Slice(res.Sites, func(i, j int) bool { return res.Sites[i].PC < res.Sites[j].PC })

	// Lints.
	res.Findings = append(res.Findings, a.lintBarrierDivergence()...)
	res.Findings = append(res.Findings, a.lintUninit()...)
	res.Findings = append(res.Findings, a.lintSharedOOB()...)
	res.Findings = append(res.Findings, a.lintFenceMisuse()...)

	// Concrete replay: quiet-granule refinement plus the witness
	// engine. Everything downstream re-checks its own claims.
	a.witnessPhase(res, infos)

	for _, info := range infos {
		info.ClassStr = info.Class.String()
		if info.Class.filterable() {
			res.Filterable[info.PC] = true
		}
	}
	for i := range res.Findings {
		res.Findings[i].Kernel = k.Name
		if res.Findings[i].Severity == "" {
			res.Findings[i].Severity = "warn"
		}
	}
	sort.SliceStable(res.Findings, func(i, j int) bool {
		if res.Findings[i].PC != res.Findings[j].PC {
			return res.Findings[i].PC < res.Findings[j].PC
		}
		return res.Findings[i].Pass < res.Findings[j].Pass
	})
	return res, nil
}

// witnessPhase runs the concrete replay and everything derived from
// it: the quiet-granule upgrade of unknown sites, the three classes of
// guaranteed race witnesses, the lint-tied divergence/oob/fence
// witnesses, the independent checker pass, and the proof/witness
// consistency sweep. Witness emission order is deterministic (sorted
// granule keys, sorted accesses).
func (a *analyzer) witnessPhase(res *Analysis, infos map[int]*SiteInfo) {
	rr := a.replayKernel()
	var pending []Witness

	if rr != nil && rr.complete && !rr.acqMark {
		for _, sp := range [2]struct {
			space isa.Space
			gran  int
		}{{isa.SpaceShared, a.conf.SharedGranularity}, {isa.SpaceGlobal, a.conf.GlobalGranularity}} {
			groups := groupGranules(rr, sp.space, sp.gran)
			keys := make([]uint64, 0, len(groups))
			for key := range groups {
				keys = append(keys, key)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

			quiet := map[uint64]bool{}
			racy := map[uint64]bool{}
			for _, key := range keys {
				quiet[key] = quietGranule(groups[key], sp.space, rr.blockBars, a.conf.WarpAware, a.conf.WarpSize)
				if w := raceWitness(a.k.Name, sp.space, key, groups[key], rr.blockBars, a.conf.WarpSize, sp.gran); w != nil {
					racy[key] = true
					pending = append(pending, *w)
				}
			}

			// Per-site replayed footprints: with a complete replay these
			// are exact, so "every touched granule is quiet" upgrades an
			// unknown site, and "some touched granule is witnessed racy"
			// pins the site to the hot path.
			siteKeys := map[int]map[uint64]bool{}
			for ti := range rr.threads {
				th := &rr.threads[ti]
				for i := range th.acc {
					ac := &th.acc[i]
					if ac.shared() != (sp.space == isa.SpaceShared) {
						continue
					}
					m := siteKeys[int(ac.pc)]
					if m == nil {
						m = map[uint64]bool{}
						siteKeys[int(ac.pc)] = m
					}
					g0 := ac.addr / uint64(sp.gran)
					g1 := (ac.addr + uint64(ac.size) - 1) / uint64(sp.gran)
					for g := g0; g <= g1; g++ {
						m[granuleKey(sp.space, th.bid, g)] = true
					}
				}
			}
			for _, s := range a.sites {
				if s.space != sp.space || s.dead {
					continue
				}
				info := infos[s.pc]
				allQuiet, anyRacy := true, false
				for key := range siteKeys[s.pc] {
					if !quiet[key] {
						allQuiet = false
					}
					if racy[key] {
						anyRacy = true
					}
				}
				if anyRacy {
					if info.Class.filterable() {
						res.Conflicts++
					}
					info.Class = ClassRacy
					continue
				}
				if info.Class == ClassUnknown && allQuiet {
					info.Class = ClassQuiet
				}
			}
		}
	}

	if rr != nil {
		pending = append(pending, a.divergenceWitnesses(rr, res.Findings)...)
		pending = append(pending, a.oobWitnesses(rr)...)
	}
	pending = append(pending, a.fenceWitnesses(res.Findings, a.conf.GlobalGranularity)...)

	// Checker pass: nothing ships unverified.
	for i := range pending {
		w := &pending[i]
		if len(res.Witnesses) >= witnessCap {
			res.WitnessDropped++
			continue
		}
		ok := false
		switch w.Kind {
		case WitnessRace:
			ok = a.verifyRaceWitness(w, spaceOf(w.Space), a.granOf(w.Space))
		case WitnessDivergence:
			ok = a.verifyDivergenceWitness(w)
		case WitnessOOB:
			ok = a.verifyOOBWitness(w)
		case WitnessFence:
			ok = a.verifyFenceWitness(w, a.conf.GlobalGranularity)
		}
		if !ok {
			res.WitnessDropped++
			continue
		}
		w.Verified = true
		res.Witnesses = append(res.Witnesses, *w)
	}

	// Witnessed lint findings graduate from advisory to error.
	for i := range res.Findings {
		f := &res.Findings[i]
		for _, w := range res.Witnesses {
			if w.PC != f.PC {
				continue
			}
			switch {
			case w.Kind == WitnessDivergence && f.Pass == PassBarrierDivergence,
				w.Kind == WitnessOOB && f.Pass == PassSharedOOB,
				w.Kind == WitnessFence && f.Pass == PassFenceMisuse:
				f.Severity = "error"
			}
		}
	}
}

func spaceOf(s string) isa.Space {
	if s == isa.SpaceShared.String() {
		return isa.SpaceShared
	}
	return isa.SpaceGlobal
}

func (a *analyzer) granOf(space string) int {
	if space == isa.SpaceShared.String() {
		return a.conf.SharedGranularity
	}
	return a.conf.GlobalGranularity
}
